// hi_campaign — the resumable (and now sharded multi-process) campaign
// runner.  This file is deliberately a thin argv shim: all campaign
// logic lives in hi::campaign (src/campaign/) — CampaignPlan resolves
// the grid, run_single()/run_fleet() execute it, and the report types
// own the output formats.  Tests drive the library directly; this
// binary only parses flags and maps results to exit codes.
//
//   hi_campaign --store FILE [options]        single-process campaign
//   hi_campaign --shard-dir DIR --workers N   sharded worker fleet with
//                                             work-stealing dispatch
//   hi_campaign --merge DIR                   fold DIR's shard stores
//                                             into DIR/merged.store
//   hi_campaign --audit FILE                  integrity-scan a store
//   hi_campaign --compact FILE                rewrite a store, dropping
//                                             superseded/corrupt records
//   hi_campaign --dump-scenario               print the paper's Sec. 4.1
//                                             scenario as editable JSON
//
// Exit codes: 0 success (fleet: campaign complete), 2 usage error,
// 3 fleet ran but the grid is incomplete (re-run with --resume).
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/plan.hpp"
#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "obs/metrics.hpp"
#include "store/serialize.hpp"
#include "store/store.hpp"

namespace {

bool parse_u64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  out = v;
  return true;
}

bool parse_f64(const char* s, double& out) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0') return false;
  out = v;
  return true;
}

bool parse_pdr_grid(const std::string& list, std::vector<double>& out) {
  out.clear();
  std::stringstream ss(list);
  std::string item;
  while (std::getline(ss, item, ',')) {
    double v = 0.0;
    if (!parse_f64(item.c_str(), v) || v < 0.0 || v > 1.0) return false;
    out.push_back(v);
  }
  return !out.empty();
}

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " --store FILE [options]\n"
      << "       " << argv0 << " --shard-dir DIR --workers N [options]\n"
      << "       " << argv0
      << " --audit FILE | --compact FILE | --merge DIR\n"
      << "       " << argv0 << " --dump-scenario\n"
      << "\n"
      << "campaign options:\n"
      << "  --scenario FILE   scenario JSON (repeatable; see --dump-scenario)\n"
      << "  --gen-seed N      generated check scenario (repeatable)\n"
      << "  --pdr-min LIST    comma-separated PDRmin grid (default "
         "0.5,0.7,0.9)\n"
      << "  --explorer NAME   alg1 | exhaustive | annealing | fast-ilp\n"
      << "                    (default alg1)\n"
      << "  --budget N        explorer iteration budget (default: strategy's)\n"
      << "  --gamma N         Bertsimas-Sim protection budget (default 0)\n"
      << "  --realizations N  independent channel realizations per design\n"
      << "                    (default 1; >1 reports worst-case + CI)\n"
      << "  --confidence P    PDR confidence-interval level (default 0.95)\n"
      << "  --threads N       worker threads per cell (default 0 = serial)\n"
      << "  --tsim SEC        Tsim for JSON scenarios (default 600)\n"
      << "  --runs N          replications per design point (default 3)\n"
      << "  --seed N          experiment seed root (default 1)\n"
      << "  --fsync MODE      none | checkpoint | always (default checkpoint)\n"
      << "  --resume          skip cells already checkpointed in the store\n"
      << "  --json            machine-readable report on stdout\n"
      << "  --cell-delay-ms N sleep after each completed cell (test hook)\n"
      << "\n"
      << "fleet options (with --shard-dir):\n"
      << "  --workers N       worker processes (each owns one shard store)\n"
      << "  --lease-ms N      claim lease before a silent worker is stolen\n"
      << "                    from (default 2000)\n"
      << "  --no-steal        never take over stale claims (crash -> exit 3;\n"
      << "                    finish with --resume)\n"
      << "  --kill-slot N     fault injection: worker N SIGKILLs itself...\n"
      << "  --kill-after-cells N  ...after completing N cells (test hook)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  hi::campaign::PlanSpec spec;
  hi::campaign::RunConfig cfg;
  std::string audit_path;
  std::string compact_path;
  std::string merge_dir;
  bool dump_scenario = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::uint64_t u = 0;
    const bool has_value = i + 1 < argc;
    if (arg == "--store" && has_value) {
      cfg.store_path = argv[++i];
    } else if (arg == "--shard-dir" && has_value) {
      cfg.shard_dir = argv[++i];
    } else if (arg == "--workers" && has_value && parse_u64(argv[++i], u)) {
      cfg.workers = static_cast<int>(u);
    } else if (arg == "--lease-ms" && has_value && parse_u64(argv[++i], u) &&
               u > 0) {
      cfg.lease_ms = static_cast<int>(u);
    } else if (arg == "--no-steal") {
      cfg.steal = false;
    } else if (arg == "--kill-slot" && has_value && parse_u64(argv[++i], u)) {
      cfg.kill_slot = static_cast<int>(u);
    } else if (arg == "--kill-after-cells" && has_value &&
               parse_u64(argv[++i], u) && u > 0) {
      cfg.kill_after_cells = u;
    } else if (arg == "--audit" && has_value) {
      audit_path = argv[++i];
    } else if (arg == "--compact" && has_value) {
      compact_path = argv[++i];
    } else if (arg == "--merge" && has_value) {
      merge_dir = argv[++i];
    } else if (arg == "--dump-scenario") {
      dump_scenario = true;
    } else if (arg == "--scenario" && has_value) {
      spec.scenario_files.emplace_back(argv[++i]);
    } else if (arg == "--gen-seed" && has_value && parse_u64(argv[++i], u)) {
      spec.gen_seeds.push_back(u);
    } else if (arg == "--pdr-min" && has_value &&
               parse_pdr_grid(argv[i + 1], spec.pdr_grid)) {
      ++i;
    } else if (arg == "--explorer" && has_value) {
      const std::string name = argv[++i];
      if (name == "alg1") {
        spec.explorer = hi::dse::ExplorerKind::kAlgorithm1;
      } else if (name == "exhaustive") {
        spec.explorer = hi::dse::ExplorerKind::kExhaustive;
      } else if (name == "annealing") {
        spec.explorer = hi::dse::ExplorerKind::kAnnealing;
      } else if (name == "fast-ilp") {
        spec.explorer = hi::dse::ExplorerKind::kFastIlp;
      } else {
        return usage(argv[0]);
      }
    } else if (arg == "--budget" && has_value && parse_u64(argv[++i], u)) {
      spec.budget = static_cast<int>(u);
    } else if (arg == "--gamma" && has_value && parse_u64(argv[++i], u)) {
      spec.robust.gamma = static_cast<int>(u);
    } else if (arg == "--realizations" && has_value && parse_u64(argv[++i], u) &&
               u > 0) {
      spec.robust.realizations = static_cast<int>(u);
    } else if (arg == "--confidence" && has_value &&
               parse_f64(argv[i + 1], spec.robust.confidence)) {
      ++i;
    } else if (arg == "--threads" && has_value && parse_u64(argv[++i], u)) {
      spec.threads = static_cast<int>(u);
    } else if (arg == "--tsim" && has_value &&
               parse_f64(argv[i + 1], spec.tsim_s)) {
      ++i;
    } else if (arg == "--runs" && has_value && parse_u64(argv[++i], u)) {
      spec.runs = static_cast<int>(u);
    } else if (arg == "--seed" && has_value && parse_u64(argv[++i], u)) {
      spec.seed = u;
    } else if (arg == "--fsync" && has_value) {
      const std::string mode = argv[++i];
      if (mode == "none") {
        cfg.fsync = hi::store::FsyncPolicy::kNone;
      } else if (mode == "checkpoint") {
        cfg.fsync = hi::store::FsyncPolicy::kCheckpoint;
      } else if (mode == "always") {
        cfg.fsync = hi::store::FsyncPolicy::kAlways;
      } else {
        return usage(argv[0]);
      }
    } else if (arg == "--resume") {
      cfg.resume = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--cell-delay-ms" && has_value &&
               parse_u64(argv[++i], u)) {
      cfg.cell_delay_ms = static_cast<int>(u);
    } else {
      return usage(argv[0]);
    }
  }

  if (dump_scenario) {
    std::cout << hi::store::scenario_to_json(hi::model::Scenario{});
    return 0;
  }
  if (!audit_path.empty()) {
    const hi::store::RecoveryStats st = hi::store::EvalStore::audit(audit_path);
    std::cout << "records=" << st.records
              << " corrupt_dropped=" << st.corrupt_dropped
              << " tail_truncated=" << (st.tail_truncated ? "yes" : "no")
              << " desynced=" << (st.desynced ? "yes" : "no")
              << " truncated_bytes=" << st.truncated_bytes
              << (st.clean() ? "  [clean]" : "  [repaired on next open]")
              << "\n";
    return st.clean() ? 0 : 1;
  }
  if (!compact_path.empty()) {
    const auto st = hi::store::EvalStore::compact(compact_path);
    std::cout << "compacted: " << st.records_before << " -> "
              << st.records_after << " records, " << st.bytes_before << " -> "
              << st.bytes_after << " bytes\n";
    return 0;
  }
  if (!merge_dir.empty()) {
    const auto st = hi::store::EvalStore::merge(
        hi::campaign::list_shards(merge_dir),
        hi::campaign::merged_path(merge_dir));
    std::cout << "merged " << st.shards.size() << " shard(s): " << st.evals
              << " evaluations / " << st.cells << " checkpoints ("
              << st.duplicate_evals << " duplicate evals, "
              << st.superseded_cells << " duplicate checkpoints folded)"
              << (st.clean() ? "" : "  [shard damage dropped]") << " -> "
              << hi::campaign::merged_path(merge_dir) << "\n";
    return st.clean() ? 0 : 1;
  }

  const bool fleet_mode = !cfg.shard_dir.empty() || cfg.workers > 0;
  if (fleet_mode && (cfg.shard_dir.empty() || cfg.workers < 1)) {
    return usage(argv[0]);
  }
  if (!fleet_mode && cfg.store_path.empty()) {
    return usage(argv[0]);
  }

  std::string err;
  const auto plan = hi::campaign::CampaignPlan::build(spec, &err);
  if (!plan) {
    std::cerr << "error: " << err << "\n";
    return 2;
  }

  hi::obs::MetricsRegistry metrics;
  if (fleet_mode) {
    const hi::campaign::FleetReport fleet =
        hi::campaign::run_fleet(*plan, cfg, &metrics);
    fleet.print(std::cout, json);
    return fleet.complete ? 0 : 3;
  }
  if (!json) {
    cfg.recovery_warnings = &std::cout;
  }
  const hi::campaign::CampaignReport report =
      hi::campaign::run_single(*plan, cfg, &metrics);
  report.print(std::cout, json);
  return 0;
}
