// hi_campaign — the resumable multi-scenario campaign runner.
//
// Fans a grid of (scenario × PDRmin) cells through one explorer, sharing
// a single durable hi::store::EvalStore across all of them: every cell's
// evaluator is warm-started from the store (results other cells — or
// previous runs — already paid for are served as dse.store_hits, not
// re-simulated), every fresh simulation is written through as it
// happens, and every finished cell is checkpointed with an fsync.  Kill
// the process at any point and `--resume` picks up where it left off:
// checkpointed cells are skipped outright (zero re-simulation) and
// interrupted cells replay from the stored evaluations.
//
//   hi_campaign --store FILE [options]        run a campaign
//   hi_campaign --audit FILE                  integrity-scan a store
//   hi_campaign --compact FILE                rewrite a store, dropping
//                                             superseded/corrupt records
//   hi_campaign --dump-scenario               print the paper's Sec. 4.1
//                                             scenario as editable JSON
//
// Scenarios come from JSON files (--scenario, the scenario_to_json
// interchange form) and/or the hi::check generator (--gen-seed); with
// neither, the paper's Sec. 4.1 scenario is the grid's single row.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "check/scenario_gen.hpp"
#include "dse/explorer.hpp"
#include "model/design_space.hpp"
#include "obs/metrics.hpp"
#include "store/serialize.hpp"
#include "store/store.hpp"

namespace {

using hi::store::Digest;

struct ScenarioEntry {
  std::string name;
  hi::model::Scenario scenario;
  hi::dse::EvaluatorSettings settings;
};

struct Options {
  std::string store_path;
  std::vector<std::string> scenario_files;
  std::vector<std::uint64_t> gen_seeds;
  std::vector<double> pdr_grid{0.5, 0.7, 0.9};
  hi::dse::ExplorerKind explorer = hi::dse::ExplorerKind::kAlgorithm1;
  int budget = -1;
  int threads = 0;
  double tsim_s = 600.0;
  int runs = 3;
  std::uint64_t seed = 1;
  hi::store::FsyncPolicy fsync = hi::store::FsyncPolicy::kCheckpoint;
  bool resume = false;
  bool json = false;
  int cell_delay_ms = 0;  ///< test hook: widen the window between cells
};

bool parse_u64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  out = v;
  return true;
}

bool parse_f64(const char* s, double& out) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0') return false;
  out = v;
  return true;
}

bool parse_pdr_grid(const std::string& list, std::vector<double>& out) {
  out.clear();
  std::stringstream ss(list);
  std::string item;
  while (std::getline(ss, item, ',')) {
    double v = 0.0;
    if (!parse_f64(item.c_str(), v) || v < 0.0 || v > 1.0) return false;
    out.push_back(v);
  }
  return !out.empty();
}

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " --store FILE [options]\n"
      << "       " << argv0 << " --audit FILE | --compact FILE\n"
      << "       " << argv0 << " --dump-scenario\n"
      << "\n"
      << "campaign options:\n"
      << "  --scenario FILE   scenario JSON (repeatable; see --dump-scenario)\n"
      << "  --gen-seed N      generated check scenario (repeatable)\n"
      << "  --pdr-min LIST    comma-separated PDRmin grid (default "
         "0.5,0.7,0.9)\n"
      << "  --explorer NAME   alg1 | exhaustive | annealing (default alg1)\n"
      << "  --budget N        explorer iteration budget (default: strategy's)\n"
      << "  --threads N       worker threads per cell (default 0 = serial)\n"
      << "  --tsim SEC        Tsim for JSON scenarios (default 600)\n"
      << "  --runs N          replications per design point (default 3)\n"
      << "  --seed N          experiment seed root (default 1)\n"
      << "  --fsync MODE      none | checkpoint | always (default checkpoint)\n"
      << "  --resume          skip cells already checkpointed in the store\n"
      << "  --json            machine-readable report on stdout\n"
      << "  --cell-delay-ms N sleep after each completed cell (test hook)\n";
  return 2;
}

std::string json_escape(std::string_view s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// One row of the final report.
struct CellReport {
  std::string scenario;
  double pdr_min = 0.0;
  bool skipped = false;  ///< served from a --resume checkpoint
  hi::store::CellResult result;
  std::uint64_t store_hits = 0;  ///< store-served points (0 when skipped)
};

void print_report(const Options& opt, const hi::store::EvalStore& store,
                  const std::vector<CellReport>& cells) {
  std::uint64_t total_sims = 0;
  std::uint64_t total_store_hits = 0;
  std::size_t skipped = 0;
  for (const CellReport& c : cells) {
    total_sims += c.skipped ? 0 : c.result.simulations;
    total_store_hits += c.store_hits;
    skipped += c.skipped ? 1 : 0;
  }
  if (opt.json) {
    std::ostream& os = std::cout;
    os << "{\n  \"store\": \"" << json_escape(store.path()) << "\",\n"
       << "  \"recovery\": {\"records\": " << store.recovery().records
       << ", \"corrupt_dropped\": " << store.recovery().corrupt_dropped
       << ", \"tail_truncated\": "
       << (store.recovery().tail_truncated ? "true" : "false") << "},\n"
       << "  \"cells\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const CellReport& c = cells[i];
      os << "    {\"scenario\": \"" << json_escape(c.scenario)
         << "\", \"pdr_min\": " << c.pdr_min
         << ", \"skipped\": " << (c.skipped ? "true" : "false")
         << ", \"feasible\": " << (c.result.feasible ? "true" : "false")
         << ", \"best\": \"" << json_escape(c.result.best.label())
         << "\", \"best_power_mw\": " << c.result.best_power_mw
         << ", \"best_pdr\": " << c.result.best_pdr
         << ", \"simulations\": " << c.result.simulations
         << ", \"store_hits\": " << c.store_hits << "}"
         << (i + 1 < cells.size() ? "," : "") << "\n";
    }
    os << "  ],\n"
       << "  \"totals\": {\"cells\": " << cells.size()
       << ", \"skipped\": " << skipped
       << ", \"fresh_simulations\": " << total_sims
       << ", \"store_hits\": " << total_store_hits
       << ", \"stored_evals\": " << store.eval_count()
       << ", \"stored_cells\": " << store.cell_count() << "}\n}\n";
    return;
  }
  for (const CellReport& c : cells) {
    std::cout << c.scenario << " @ PDRmin=" << c.pdr_min << ": ";
    if (c.skipped) {
      std::cout << "checkpointed (skipped), ";
    }
    if (c.result.feasible) {
      std::cout << c.result.best.label() << "  P=" << c.result.best_power_mw
                << " mW  PDR=" << c.result.best_pdr;
    } else {
      std::cout << "infeasible";
    }
    std::cout << "  [sims=" << c.result.simulations
              << " store_hits=" << c.store_hits << "]\n";
  }
  std::cout << "campaign: " << cells.size() << " cells (" << skipped
            << " resumed), " << total_sims << " fresh simulations, "
            << total_store_hits << " store hits; store holds "
            << store.eval_count() << " evaluations / " << store.cell_count()
            << " cell checkpoints\n";
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  std::string audit_path;
  std::string compact_path;
  bool dump_scenario = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::uint64_t u = 0;
    const bool has_value = i + 1 < argc;
    if (arg == "--store" && has_value) {
      opt.store_path = argv[++i];
    } else if (arg == "--audit" && has_value) {
      audit_path = argv[++i];
    } else if (arg == "--compact" && has_value) {
      compact_path = argv[++i];
    } else if (arg == "--dump-scenario") {
      dump_scenario = true;
    } else if (arg == "--scenario" && has_value) {
      opt.scenario_files.emplace_back(argv[++i]);
    } else if (arg == "--gen-seed" && has_value && parse_u64(argv[++i], u)) {
      opt.gen_seeds.push_back(u);
    } else if (arg == "--pdr-min" && has_value &&
               parse_pdr_grid(argv[i + 1], opt.pdr_grid)) {
      ++i;
    } else if (arg == "--explorer" && has_value) {
      const std::string name = argv[++i];
      if (name == "alg1") {
        opt.explorer = hi::dse::ExplorerKind::kAlgorithm1;
      } else if (name == "exhaustive") {
        opt.explorer = hi::dse::ExplorerKind::kExhaustive;
      } else if (name == "annealing") {
        opt.explorer = hi::dse::ExplorerKind::kAnnealing;
      } else {
        return usage(argv[0]);
      }
    } else if (arg == "--budget" && has_value && parse_u64(argv[++i], u)) {
      opt.budget = static_cast<int>(u);
    } else if (arg == "--threads" && has_value && parse_u64(argv[++i], u)) {
      opt.threads = static_cast<int>(u);
    } else if (arg == "--tsim" && has_value &&
               parse_f64(argv[i + 1], opt.tsim_s)) {
      ++i;
    } else if (arg == "--runs" && has_value && parse_u64(argv[++i], u)) {
      opt.runs = static_cast<int>(u);
    } else if (arg == "--seed" && has_value && parse_u64(argv[++i], u)) {
      opt.seed = u;
    } else if (arg == "--fsync" && has_value) {
      const std::string mode = argv[++i];
      if (mode == "none") {
        opt.fsync = hi::store::FsyncPolicy::kNone;
      } else if (mode == "checkpoint") {
        opt.fsync = hi::store::FsyncPolicy::kCheckpoint;
      } else if (mode == "always") {
        opt.fsync = hi::store::FsyncPolicy::kAlways;
      } else {
        return usage(argv[0]);
      }
    } else if (arg == "--resume") {
      opt.resume = true;
    } else if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--cell-delay-ms" && has_value &&
               parse_u64(argv[++i], u)) {
      opt.cell_delay_ms = static_cast<int>(u);
    } else {
      return usage(argv[0]);
    }
  }

  if (dump_scenario) {
    std::cout << hi::store::scenario_to_json(hi::model::Scenario{});
    return 0;
  }
  if (!audit_path.empty()) {
    const hi::store::RecoveryStats st = hi::store::EvalStore::audit(audit_path);
    std::cout << "records=" << st.records
              << " corrupt_dropped=" << st.corrupt_dropped
              << " tail_truncated=" << (st.tail_truncated ? "yes" : "no")
              << " desynced=" << (st.desynced ? "yes" : "no")
              << " truncated_bytes=" << st.truncated_bytes
              << (st.clean() ? "  [clean]" : "  [repaired on next open]")
              << "\n";
    return st.clean() ? 0 : 1;
  }
  if (!compact_path.empty()) {
    const auto st = hi::store::EvalStore::compact(compact_path);
    std::cout << "compacted: " << st.records_before << " -> "
              << st.records_after << " records, " << st.bytes_before << " -> "
              << st.bytes_after << " bytes\n";
    return 0;
  }
  if (opt.store_path.empty()) {
    return usage(argv[0]);
  }

  // Assemble the scenario rows.
  std::vector<ScenarioEntry> rows;
  hi::dse::EvaluatorSettings base;
  base.sim.duration_s = opt.tsim_s;
  base.sim.seed = opt.seed;
  base.runs = opt.runs;
  for (const std::string& file : opt.scenario_files) {
    std::ifstream in(file);
    if (!in) {
      std::cerr << "error: cannot open scenario file '" << file << "'\n";
      return 2;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    std::string err;
    const auto sc = hi::store::scenario_from_json(buf.str(), &err);
    if (!sc) {
      std::cerr << "error: " << file << ": " << err << "\n";
      return 2;
    }
    rows.push_back({file, *sc, base});
  }
  for (const std::uint64_t seed : opt.gen_seeds) {
    hi::check::ScenarioSpec spec = hi::check::make_scenario(seed);
    rows.push_back({"gen-" + std::to_string(seed), spec.scenario,
                    std::move(spec.settings)});
  }
  if (rows.empty()) {
    rows.push_back({"paper-4.1", hi::model::Scenario{}, base});
  }

  hi::obs::MetricsRegistry metrics;
  hi::store::StoreOptions store_opt;
  store_opt.fsync = opt.fsync;
  store_opt.metrics = &metrics;
  hi::store::EvalStore store(opt.store_path, store_opt);
  if (!store.recovery().clean() && !opt.json) {
    std::cout << "store recovery: dropped "
              << store.recovery().corrupt_dropped << " corrupt record(s), "
              << "truncated " << store.recovery().truncated_bytes
              << " trailing byte(s)\n";
  }

  const hi::dse::Explorer explorer = [&] {
    switch (opt.explorer) {
      case hi::dse::ExplorerKind::kExhaustive:
        return hi::dse::Explorer::exhaustive();
      case hi::dse::ExplorerKind::kAnnealing:
        return hi::dse::Explorer::annealing();
      case hi::dse::ExplorerKind::kAlgorithm1:
        break;
    }
    return hi::dse::Explorer::algorithm1();
  }();

  std::vector<CellReport> cells;
  for (const ScenarioEntry& row : rows) {
    const Digest scenario_fp = hi::store::scenario_fingerprint(row.scenario);
    hi::dse::Evaluator eval(row.settings);
    const hi::store::WarmStartStats warm = hi::store::warm_start(eval, store);
    for (const double pdr_min : opt.pdr_grid) {
      hi::dse::ExplorationOptions run_opt;
      run_opt.pdr_min = pdr_min;
      run_opt.budget = opt.budget;
      run_opt.threads = opt.threads;
      run_opt.metrics = &metrics;
      const hi::store::CellKey key{
          scenario_fp, warm.settings_fp,
          hi::store::options_fingerprint(run_opt, opt.explorer), pdr_min};
      CellReport report;
      report.scenario = row.name;
      report.pdr_min = pdr_min;
      if (opt.resume) {
        if (const auto done = store.find_cell(key)) {
          report.skipped = true;
          report.result = *done;
          cells.push_back(std::move(report));
          continue;
        }
      }
      const hi::dse::ExplorationResult res =
          explorer.run(row.scenario, eval, run_opt);
      report.result.feasible = res.feasible;
      report.result.best = res.best;
      report.result.best_power_mw = res.best_power_mw;
      report.result.best_pdr = res.best_pdr;
      report.result.best_nlt_s = res.best_nlt_s;
      report.result.simulations = res.simulations;
      report.result.iterations = res.iterations;
      report.store_hits = res.metrics.counter("dse.store_hits");
      store.put_cell(key, report.result);  // fsynced checkpoint
      cells.push_back(std::move(report));
      if (opt.cell_delay_ms > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(opt.cell_delay_ms));
      }
    }
  }
  print_report(opt, store, cells);
  return 0;
}
