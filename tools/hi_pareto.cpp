// hi_pareto — Pareto frontier runner (DESIGN.md §14).  A thin argv shim
// over hi::pareto: sweep logic lives in src/pareto/, this binary parses
// flags, wires an optional warm hi::store, and emits the front as
// versioned `hi-pareto/v1` JSON.
//
//   hi_pareto [options]                 ladder sweep of the paper scenario
//   hi_pareto --mode exhaustive         full-space exact front
//   hi_pareto --store FILE ...          resumable: warm-start from FILE and
//                                       write every fresh simulation through;
//                                       a rerun re-simulates zero points
//   hi_pareto --dump-scenario           print the paper scenario as JSON
//
// Sharding across the campaign fabric: run disjoint --pdr-min slices
// into per-shard stores, `hi_campaign --merge DIR`, then rerun the full
// ladder against the merged store — every point is already paid for.
//
// Exit codes: 0 success, 2 usage error.
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <charconv>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "check/scenario_gen.hpp"
#include "model/design_space.hpp"
#include "pareto/sweep.hpp"
#include "store/serialize.hpp"
#include "store/store.hpp"

namespace {

bool parse_u64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  out = v;
  return true;
}

bool parse_f64(const char* s, double& out) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0') return false;
  out = v;
  return true;
}

bool parse_pdr_list(const std::string& list, std::vector<double>& out) {
  out.clear();
  std::stringstream ss(list);
  std::string item;
  while (std::getline(ss, item, ',')) {
    double v = 0.0;
    if (!parse_f64(item.c_str(), v) || v < 0.0 || v > 1.0) return false;
    out.push_back(v);
  }
  return !out.empty();
}

/// Shortest exact decimal rendering (round-trips through strtod).
std::string fmt_double(double v) {
  std::array<char, 40> buf{};
  const auto [end, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  if (ec != std::errc{}) return "0";
  return std::string(buf.data(), end);
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

void emit_point(std::ostream& os, const hi::pareto::FrontPoint& p,
                const char* indent) {
  os << indent << "{\"label\": \"" << json_escape(p.cfg.label()) << "\", "
     << "\"design_key\": " << p.cfg.design_key() << ", "
     << "\"power_mw\": " << fmt_double(p.power_mw) << ", "
     << "\"pdr\": " << fmt_double(p.pdr) << ", "
     << "\"p95_s\": " << fmt_double(p.p95_s) << ", "
     << "\"nlt_s\": " << fmt_double(p.nlt_s) << ", "
     << "\"pdr_lo\": " << fmt_double(p.pdr_lo) << ", "
     << "\"pdr_hi\": " << fmt_double(p.pdr_hi) << ", "
     << "\"protection_mw\": " << fmt_double(p.protection_mw) << "}";
}

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "       " << argv0 << " --dump-scenario\n"
      << "\n"
      << "options:\n"
      << "  --mode NAME       ladder | exhaustive (default ladder)\n"
      << "  --scenario FILE   scenario JSON (see --dump-scenario)\n"
      << "  --gen-seed N      generated check scenario instead of the paper's\n"
      << "  --pdr-min LIST    comma-separated PDRmin ladder\n"
      << "                    (default 0.5,0.6,0.7,0.8,0.9,0.95,0.99)\n"
      << "  --gamma N         Bertsimas-Sim protection budget (default 0)\n"
      << "  --realizations N  channel realizations per design (default 1)\n"
      << "  --confidence P    PDR confidence-interval level (default 0.95)\n"
      << "  --epsilon-power MW  epsilon-dominance knobs (default 0 = exact\n"
      << "  --epsilon-pdr P     strict dominance)\n"
      << "  --epsilon-p95 SEC\n"
      << "  --no-latency      skip latency collection (p95 objective = 0;\n"
      << "                    keeps pre-latency store fingerprints)\n"
      << "  --store FILE      warm-start + write-through evaluation store\n"
      << "  --out FILE        write the JSON report to FILE (default stdout)\n"
      << "  --threads N       worker threads (default 0 = serial)\n"
      << "  --tsim SEC        simulated seconds per run (default 600)\n"
      << "  --runs N          replications per design point (default 3)\n"
      << "  --seed N          experiment seed root (default 1)\n"
      << "  --max-rounds N    MILP round safety valve (default 10000)\n"
      << "  --kill-after-rounds N  SIGKILL self after N completed rounds\n"
      << "                    (crash-injection test hook; store is synced\n"
      << "                    after every round first)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode = "ladder";
  std::string scenario_path;
  std::optional<std::uint64_t> gen_seed;
  std::string store_path;
  std::string out_path;
  bool dump_scenario = false;
  bool collect_latency = true;
  int kill_after_rounds = -1;
  hi::pareto::SweepOptions sweep;
  hi::dse::EvaluatorSettings settings;
  settings.sim.duration_s = 600.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::uint64_t u = 0;
    double f = 0.0;
    const bool has_value = i + 1 < argc;
    if (arg == "--mode" && has_value) {
      mode = argv[++i];
      if (mode != "ladder" && mode != "exhaustive") return usage(argv[0]);
    } else if (arg == "--scenario" && has_value) {
      scenario_path = argv[++i];
    } else if (arg == "--gen-seed" && has_value && parse_u64(argv[++i], u)) {
      gen_seed = u;
    } else if (arg == "--pdr-min" && has_value) {
      if (!parse_pdr_list(argv[++i], sweep.pdr_ladder)) return usage(argv[0]);
    } else if (arg == "--gamma" && has_value && parse_u64(argv[++i], u)) {
      sweep.robust.gamma = static_cast<int>(u);
    } else if (arg == "--realizations" && has_value &&
               parse_u64(argv[++i], u) && u >= 1) {
      sweep.robust.realizations = static_cast<int>(u);
    } else if (arg == "--confidence" && has_value && parse_f64(argv[++i], f)) {
      sweep.robust.confidence = f;
    } else if (arg == "--epsilon-power" && has_value &&
               parse_f64(argv[++i], f) && f >= 0.0) {
      sweep.front.epsilon_power_mw = f;
    } else if (arg == "--epsilon-pdr" && has_value && parse_f64(argv[++i], f) &&
               f >= 0.0) {
      sweep.front.epsilon_pdr = f;
    } else if (arg == "--epsilon-p95" && has_value && parse_f64(argv[++i], f) &&
               f >= 0.0) {
      sweep.front.epsilon_p95_s = f;
    } else if (arg == "--no-latency") {
      collect_latency = false;
    } else if (arg == "--store" && has_value) {
      store_path = argv[++i];
    } else if (arg == "--out" && has_value) {
      out_path = argv[++i];
    } else if (arg == "--threads" && has_value && parse_u64(argv[++i], u)) {
      sweep.threads = static_cast<int>(u);
    } else if (arg == "--tsim" && has_value && parse_f64(argv[++i], f) &&
               f > 0.0) {
      settings.sim.duration_s = f;
    } else if (arg == "--runs" && has_value && parse_u64(argv[++i], u) &&
               u >= 1) {
      settings.runs = static_cast<int>(u);
    } else if (arg == "--seed" && has_value && parse_u64(argv[++i], u)) {
      settings.sim.seed = u;
    } else if (arg == "--max-rounds" && has_value && parse_u64(argv[++i], u)) {
      sweep.max_rounds = static_cast<int>(u);
    } else if (arg == "--kill-after-rounds" && has_value &&
               parse_u64(argv[++i], u)) {
      kill_after_rounds = static_cast<int>(u);
    } else if (arg == "--dump-scenario") {
      dump_scenario = true;
    } else {
      return usage(argv[0]);
    }
  }

  if (dump_scenario) {
    std::cout << hi::store::scenario_to_json(hi::model::Scenario{}) << "\n";
    return 0;
  }

  // ---- resolve the scenario ----------------------------------------------
  hi::model::Scenario scenario;  // default: the paper's Sec. 4.1 instance
  if (!scenario_path.empty() && gen_seed.has_value()) {
    std::cerr << "hi_pareto: --scenario and --gen-seed are exclusive\n";
    return 2;
  }
  if (!scenario_path.empty()) {
    std::ifstream in(scenario_path);
    if (!in) {
      std::cerr << "hi_pareto: cannot read " << scenario_path << "\n";
      return 2;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    const auto parsed = hi::store::scenario_from_json(buf.str());
    if (!parsed.has_value()) {
      std::cerr << "hi_pareto: invalid scenario JSON in " << scenario_path
                << "\n";
      return 2;
    }
    scenario = *parsed;
  } else if (gen_seed.has_value()) {
    const hi::check::ScenarioSpec spec = hi::check::make_scenario(*gen_seed);
    scenario = spec.scenario;
    const double tsim = settings.sim.duration_s;
    const std::uint64_t seed = settings.sim.seed;
    const int runs = settings.runs;
    settings = spec.settings;  // generated scenarios carry their settings
    settings.sim.duration_s = tsim;
    settings.sim.seed = seed;
    settings.runs = runs;
  }
  settings.sim.collect_latency = collect_latency;

  hi::dse::Evaluator eval(settings);

  // ---- optional durable store --------------------------------------------
  std::unique_ptr<hi::store::EvalStore> store;
  hi::store::WarmStartStats warm{};
  if (!store_path.empty()) {
    store = std::make_unique<hi::store::EvalStore>(store_path);
    warm = hi::store::warm_start(eval, *store, sweep.robust.realizations);
  }

  sweep.progress = [&](int rounds) {
    if (store != nullptr) {
      store->sync();  // a killed run never loses a completed round
    }
    if (kill_after_rounds >= 0 && rounds >= kill_after_rounds) {
      std::raise(SIGKILL);
    }
  };

  const hi::pareto::SweepResult res =
      mode == "exhaustive" ? hi::pareto::exhaustive_front(scenario, eval, sweep)
                           : hi::pareto::ladder_front(scenario, eval, sweep);
  if (store != nullptr) {
    store->sync();
  }

  // ---- hi-pareto/v1 report -----------------------------------------------
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"hi-pareto/v1\",\n";
  os << "  \"mode\": \"" << mode << "\",\n";
  const std::string tag =
      store != nullptr ? store->channel_tag() : std::string("default");
  os << "  \"scenario_fp\": \""
     << hi::store::scenario_fingerprint(scenario).hex() << "\",\n";
  os << "  \"settings_fp\": \""
     << hi::store::settings_fingerprint(settings, tag).hex() << "\",\n";
  os << "  \"collect_latency\": " << (collect_latency ? "true" : "false")
     << ",\n";
  os << "  \"robust\": {\"gamma\": " << sweep.robust.gamma
     << ", \"realizations\": " << sweep.robust.realizations
     << ", \"confidence\": " << fmt_double(sweep.robust.confidence) << "},\n";
  os << "  \"epsilon\": {\"power_mw\": "
     << fmt_double(sweep.front.epsilon_power_mw)
     << ", \"pdr\": " << fmt_double(sweep.front.epsilon_pdr)
     << ", \"p95_s\": " << fmt_double(sweep.front.epsilon_p95_s) << "},\n";
  os << "  \"front\": [\n";
  for (std::size_t i = 0; i < res.front.size(); ++i) {
    emit_point(os, res.front[i], "    ");
    os << (i + 1 < res.front.size() ? ",\n" : "\n");
  }
  os << "  ],\n";
  os << "  \"rungs\": [\n";
  for (std::size_t i = 0; i < res.rungs.size(); ++i) {
    const hi::pareto::RungResult& rr = res.rungs[i];
    os << "    {\"pdr_min\": " << fmt_double(rr.pdr_min) << ", \"feasible\": "
       << (rr.feasible ? "true" : "false");
    if (rr.feasible) {
      os << ", \"best\": ";
      emit_point(os, rr.best, "");
    }
    os << "}" << (i + 1 < res.rungs.size() ? ",\n" : "\n");
  }
  os << "  ],\n";
  os << "  \"counters\": {\"evaluated\": " << res.evaluated
     << ", \"simulations\": " << res.simulations
     << ", \"store_hits\": " << res.store_hits
     << ", \"milp_rounds\": " << res.milp_rounds
     << ", \"milp_bnb_nodes\": " << res.milp_bnb_nodes
     << ", \"preloaded\": " << warm.preloaded << "},\n";
  os << "  \"complete\": " << (res.complete ? "true" : "false") << ",\n";
  os << "  \"wall_s\": " << fmt_double(res.wall_time_s) << "\n";
  os << "}\n";

  if (out_path.empty()) {
    std::cout << os.str();
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "hi_pareto: cannot write " << out_path << "\n";
      return 2;
    }
    out << os.str();
  }
  return 0;
}
