// hi_crowd — crowd (multi-body) simulation runner (DESIGN.md §15).  A
// thin argv shim over hi::crowd: the simulation and sweep logic live in
// src/crowd/, this binary parses flags, wires an optional durable
// hi::store, and emits the sweep as versioned `hi-crowd/v1` JSON.
//
//   hi_crowd --bodies 8 --sweep         PDR vs crowd size, M = 1..8
//   hi_crowd --bodies 4                 one point, M = 4
//   hi_crowd --list 1,2,4,8             explicit body-count list
//   hi_crowd --store FILE --resume ...  durable: completed points are
//                                       served from FILE; a rerun after a
//                                       crash re-simulates zero points
//   hi_crowd --dump-scenario            print the default crowd scenario
//
// Exit codes: 0 success, 2 usage error.
#include <array>
#include <charconv>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "crowd/crowd.hpp"
#include "store/crowd_codec.hpp"
#include "store/store.hpp"

namespace {

bool parse_u64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  out = v;
  return true;
}

bool parse_f64(const char* s, double& out) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0') return false;
  out = v;
  return true;
}

bool parse_int_list(const std::string& list, std::vector<int>& out) {
  out.clear();
  std::stringstream ss(list);
  std::string item;
  while (std::getline(ss, item, ',')) {
    std::uint64_t v = 0;
    if (!parse_u64(item.c_str(), v) || v < 1 || v > 64) return false;
    out.push_back(static_cast<int>(v));
  }
  return !out.empty();
}

/// Shortest exact decimal rendering (round-trips through strtod).
std::string fmt_double(double v) {
  std::array<char, 40> buf{};
  const auto [end, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  if (ec != std::errc{}) return "0";
  return std::string(buf.data(), end);
}

/// The default crowd scenario: the paper's full 10-node star network
/// replicated on a grid, one meter apart.
hi::model::CrowdScenario default_scenario() {
  hi::model::CrowdScenario sc;
  sc.cfg.topology = hi::model::Topology::from_mask(0x3FF);
  return sc;
}

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "       " << argv0 << " --dump-scenario\n"
      << "\n"
      << "options:\n"
      << "  --bodies M        crowd size (default 1)\n"
      << "  --sweep           sweep M = 1..bodies instead of one point\n"
      << "  --list M1,M2,...  explicit body-count list (overrides --sweep)\n"
      << "  --spacing M       grid pitch in meters (default 1)\n"
      << "  --cols N          grid columns (default 0 = square-ish)\n"
      << "  --scenario FILE   crowd scenario JSON (see --dump-scenario)\n"
      << "  --store FILE      durable evaluation store (write-through)\n"
      << "  --resume          require --store; assert-friendly alias — a\n"
      << "                    warm store serves completed points as hits\n"
      << "  --out FILE        write the JSON report to FILE (default stdout)\n"
      << "  --threads N       worker threads (default 0 = serial)\n"
      << "  --tsim SEC        simulated seconds per run (default 60)\n"
      << "  --runs N          replications per point (default 3)\n"
      << "  --seed N          experiment seed root (default 1)\n"
      << "  --kill-after-points N  SIGKILL self after N completed points\n"
      << "                    (crash-injection test hook; the store is\n"
      << "                    synced after every point first)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  int bodies = 1;
  bool sweep_mode = false;
  bool dump_scenario = false;
  bool resume = false;
  std::vector<int> list;
  std::string scenario_path, store_path, out_path;
  int kill_after_points = -1;
  hi::model::CrowdScenario base = default_scenario();
  hi::net::SimParams sim;
  sim.duration_s = 60.0;
  hi::crowd::SweepOptions opt;
  opt.runs = 3;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::uint64_t u = 0;
    double f = 0.0;
    const bool has_value = i + 1 < argc;
    if (arg == "--bodies" && has_value && parse_u64(argv[++i], u) && u >= 1 &&
        u <= 64) {
      bodies = static_cast<int>(u);
    } else if (arg == "--sweep") {
      sweep_mode = true;
    } else if (arg == "--list" && has_value) {
      if (!parse_int_list(argv[++i], list)) return usage(argv[0]);
    } else if (arg == "--spacing" && has_value && parse_f64(argv[++i], f) &&
               f > 0.0) {
      base.spacing_m = f;
    } else if (arg == "--cols" && has_value && parse_u64(argv[++i], u)) {
      base.cols = static_cast<int>(u);
    } else if (arg == "--scenario" && has_value) {
      scenario_path = argv[++i];
    } else if (arg == "--store" && has_value) {
      store_path = argv[++i];
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg == "--out" && has_value) {
      out_path = argv[++i];
    } else if (arg == "--threads" && has_value && parse_u64(argv[++i], u)) {
      opt.threads = static_cast<int>(u);
    } else if (arg == "--tsim" && has_value && parse_f64(argv[++i], f) &&
               f > 0.0) {
      sim.duration_s = f;
    } else if (arg == "--runs" && has_value && parse_u64(argv[++i], u) &&
               u >= 1) {
      opt.runs = static_cast<int>(u);
    } else if (arg == "--seed" && has_value && parse_u64(argv[++i], u)) {
      sim.seed = u;
    } else if (arg == "--kill-after-points" && has_value &&
               parse_u64(argv[++i], u)) {
      kill_after_points = static_cast<int>(u);
    } else if (arg == "--dump-scenario") {
      dump_scenario = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (resume && store_path.empty()) {
    std::cerr << "hi_crowd: --resume requires --store\n";
    return 2;
  }

  // ---- resolve the scenario ----------------------------------------------
  if (!scenario_path.empty()) {
    std::ifstream in(scenario_path);
    if (!in) {
      std::cerr << "hi_crowd: cannot read " << scenario_path << "\n";
      return 2;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    std::string err;
    const auto parsed = hi::store::crowd_scenario_from_json(buf.str(), &err);
    if (!parsed.has_value()) {
      std::cerr << "hi_crowd: invalid crowd scenario JSON in " << scenario_path
                << ": " << err << "\n";
      return 2;
    }
    base = *parsed;
    if (base.bodies > bodies) bodies = base.bodies;
  }
  base.bodies = bodies;
  if (dump_scenario) {
    std::cout << hi::store::crowd_scenario_to_json(base);
    return 0;
  }

  if (!list.empty()) {
    opt.bodies = list;
  } else if (sweep_mode) {
    for (int m = 1; m <= bodies; ++m) opt.bodies.push_back(m);
  } else {
    opt.bodies.push_back(bodies);
  }

  // ---- optional durable store --------------------------------------------
  std::unique_ptr<hi::store::EvalStore> store;
  if (!store_path.empty()) {
    store = std::make_unique<hi::store::EvalStore>(store_path);
    opt.store = store.get();
  }

  int completed = 0;
  opt.progress = [&](const hi::crowd::SweepPoint&) {
    ++completed;
    if (store != nullptr) {
      store->sync();  // a killed run never loses a completed point
    }
    if (kill_after_points >= 0 && completed >= kill_after_points) {
      std::raise(SIGKILL);
    }
  };

  const hi::crowd::SweepResult res = hi::crowd::sweep(base, sim, opt);

  // ---- hi-crowd/v1 report ------------------------------------------------
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"hi-crowd/v1\",\n";
  os << "  \"scenario_fp\": \"" << hi::store::crowd_fingerprint(base).hex()
     << "\",\n";
  os << "  \"settings\": {\"tsim_s\": " << fmt_double(sim.duration_s)
     << ", \"runs\": " << opt.runs << ", \"seed\": " << sim.seed
     << ", \"spacing_m\": " << fmt_double(base.spacing_m)
     << ", \"capture_db\": " << fmt_double(sim.capture_db) << "},\n";
  os << "  \"points\": [\n";
  for (std::size_t i = 0; i < res.points.size(); ++i) {
    const hi::crowd::SweepPoint& p = res.points[i];
    const hi::net::SimResult& d = p.eval.detail;
    os << "    {\"bodies\": " << p.bodies
       << ", \"pdr\": " << fmt_double(p.eval.pdr)
       << ", \"min_body_pdr\": " << fmt_double(d.crowd.min_body_pdr)
       << ", \"worst_power_mw\": " << fmt_double(p.eval.power_mw)
       << ", \"mean_power_mw\": " << fmt_double(d.mean_power_mw)
       << ", \"nlt_s\": " << fmt_double(p.eval.nlt_s)
       << ", \"cross_offered\": " << d.crowd.cross_offered
       << ", \"cross_below_sensitivity\": " << d.crowd.cross_below_sensitivity
       << ", \"foreign_heard\": " << d.crowd.foreign_heard
       << ", \"foreign_decoded\": " << d.crowd.foreign_decoded
       << ", \"from_store\": " << (p.from_store ? "true" : "false")
       << ", \"per_body\": [";
    for (std::size_t b = 0; b < d.nodes.size(); ++b) {
      if (b > 0) os << ", ";
      os << "{\"body\": " << d.nodes[b].location
         << ", \"pdr\": " << fmt_double(d.nodes[b].pdr)
         << ", \"worst_power_mw\": " << fmt_double(d.nodes[b].power_mw)
         << "}";
    }
    os << "]}" << (i + 1 < res.points.size() ? ",\n" : "\n");
  }
  os << "  ],\n";
  os << "  \"store\": {\"store_hits\": " << res.store_hits
     << ", \"simulations\": " << res.simulations << "},\n";
  os << "  \"complete\": true\n";
  os << "}\n";

  if (out_path.empty()) {
    std::cout << os.str();
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "hi_crowd: cannot write " << out_path << "\n";
      return 2;
    }
    out << os.str();
  }
  return 0;
}
