// Example: everyday fitness monitoring.
//
// The paper's motivating low-criticality application: "for an everyday
// physical activity monitoring application, achieving the longest
// possible battery lifetime is preferred, while a few packet drops can
// occasionally be tolerated."  We set PDRmin = 60%, run the DSE, and
// inspect the selected network in detail (per-node budgets, where the
// losses happen).
#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "dse/explorer.hpp"
#include "model/power.hpp"

int main() {
  using namespace hi;
  model::Scenario scenario;

  dse::EvaluatorSettings es;
  es.sim.duration_s = 120.0;
  es.sim.seed = 7;
  es.runs = 3;
  dse::Evaluator eval(es);

  dse::ExplorationOptions opt;
  opt.pdr_min = 0.60;  // a few drops are fine; lifetime is king
  const dse::ExplorationResult res =
      dse::run_algorithm1(scenario, eval, opt);
  if (!res.feasible) {
    std::cout << "no configuration meets PDRmin = "
              << fmt_percent(opt.pdr_min) << "\n";
    return 1;
  }

  std::cout << "Fitness tracker design @ PDRmin = "
            << fmt_percent(opt.pdr_min) << "\n"
            << "  selected: " << res.best.label() << "\n"
            << "  PDR " << fmt_percent(res.best_pdr) << ", lifetime "
            << fmt_double(seconds_to_days(res.best_nlt_s), 1)
            << " days on a CR2032\n"
            << "  found with " << res.simulations
            << " simulated design points (exhaustive space: "
            << scenario.feasible_configs().size() << ")\n\n";

  // Detailed look at the winning network.
  const dse::Evaluation& ev = eval.evaluate(res.best);
  TextTable nodes;
  nodes.set_header({"node", "role", "PDR", "power (mW)", "life (days)",
                    "tx pkts", "rx ok", "collisions"});
  for (const auto& n : ev.detail.nodes) {
    const bool coor = res.best.routing.protocol ==
                          model::RoutingProtocol::kStar &&
                      n.location == res.best.routing.coordinator;
    nodes.add_row(
        {std::string(channel::location_name(n.location)),
         coor ? "coordinator" : "sensor", fmt_percent(n.pdr, 1),
         fmt_double(n.power_mw, 3),
         fmt_double(seconds_to_days(
                        model::lifetime_s(res.best.battery_j, n.power_mw)),
                    1),
         std::to_string(n.radio.tx_packets), std::to_string(n.radio.rx_ok),
         std::to_string(n.radio.rx_corrupted)});
  }
  nodes.print(std::cout);
  std::cout << "\nthe ankle node's deep-faded links dominate the loss "
               "budget; at this PDRmin the optimizer rightly refuses to "
               "pay for a mesh to fix them\n";
  return 0;
}
