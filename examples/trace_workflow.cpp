// Example: the measured-trace workflow.
//
// The paper evaluates on measured path-loss traces.  This example shows
// the full loop a user with their own measurement campaign would run:
// (1) record a channel realization into a trace (here: freeze one
// Gauss-Markov realization — with real data you would write the CSV
// yourself), (2) save/load it as CSV, (3) replay it deterministically
// through the simulator, and (4) confirm that two replays agree exactly
// while a fresh stochastic channel does not.
#include <iostream>
#include <sstream>

#include "channel/trace.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "model/design_space.hpp"
#include "net/network.hpp"

int main() {
  using namespace hi;

  // (1) Record 120 s of the default body channel at 10 Hz.
  auto live = channel::make_default_body_channel(2017);
  const channel::ChannelTrace trace =
      channel::record_trace(*live, 120.0, 0.1);
  std::cout << "recorded " << trace.samples() << " samples x 45 pairs ("
            << trace.duration_s() << " s at " << trace.dt_s() << " s)\n";

  // (2) Round-trip through CSV (in-memory here; a file in practice).
  std::stringstream csv;
  trace.save_csv(csv);
  std::cout << "CSV size: " << csv.str().size() / 1024 << " KiB\n";
  const channel::ChannelTrace loaded = channel::ChannelTrace::load_csv(csv);

  // (3) Replay through the simulator.
  model::Scenario scenario;
  const auto cfg = scenario.make_config(
      model::Topology::from_locations({0, 1, 3, 5}), 2,
      model::MacProtocol::kTdma, model::RoutingProtocol::kStar);
  net::SimParams sp;
  sp.duration_s = 120.0;
  sp.seed = 7;

  channel::TraceChannel replay_a(loaded);
  channel::TraceChannel replay_b(loaded);
  const net::SimResult a = net::simulate(cfg, replay_a, sp);
  const net::SimResult b = net::simulate(cfg, replay_b, sp);
  auto fresh = channel::make_default_body_channel(999);
  const net::SimResult c = net::simulate(cfg, *fresh, sp);

  TextTable table;
  table.set_header({"channel", "PDR", "P (mW)"});
  table.add_row({"trace replay #1", fmt_percent(a.pdr, 2),
                 fmt_double(a.worst_power_mw, 4)});
  table.add_row({"trace replay #2", fmt_percent(b.pdr, 2),
                 fmt_double(b.worst_power_mw, 4)});
  table.add_row({"fresh stochastic channel", fmt_percent(c.pdr, 2),
                 fmt_double(c.worst_power_mw, 4)});
  table.print(std::cout);

  // (4) Replays are bit-identical; the stochastic channel is not.
  const bool identical = a.pdr == b.pdr && a.worst_power_mw ==
                                               b.worst_power_mw;
  std::cout << "\nreplays identical: " << (identical ? "yes" : "NO")
            << " — a frozen trace turns the whole evaluation into a "
               "reproducible artifact\n";
  return identical ? 0 : 1;
}
