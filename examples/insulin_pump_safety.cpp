// Example: safety-critical wearable (insulin delivery).
//
// The paper's other extreme: "when a safety-critical node such as a
// wearable insulin delivery device is part of the network, reliability
// becomes of utmost importance."  We demand near-perfect delivery
// (PDRmin = 99.9%, the paper's "100%" within its measurement tolerance)
// and show what it costs: the routing flips to a mesh, an extra node is
// worth adding for redundancy, and the lifetime collapses from a month
// to days.
#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "dse/explorer.hpp"

int main() {
  using namespace hi;
  model::Scenario scenario;

  dse::EvaluatorSettings es;
  es.sim.duration_s = 120.0;
  es.sim.seed = 11;
  es.runs = 3;
  dse::Evaluator eval(es);  // one cache for the whole comparison

  TextTable ladder;
  ladder.set_header({"requirement", "selected configuration", "PDR",
                     "lifetime (days)"});
  for (double pdr_min : {0.90, 0.99, 0.999}) {
    dse::ExplorationOptions opt;
    opt.pdr_min = pdr_min;
    const dse::ExplorationResult res =
        dse::run_algorithm1(scenario, eval, opt);
    ladder.add_row({fmt_percent(pdr_min, 1),
                    res.feasible ? res.best.label() : "(infeasible)",
                    res.feasible ? fmt_percent(res.best_pdr, 2) : "-",
                    res.feasible
                        ? fmt_double(seconds_to_days(res.best_nlt_s), 1)
                        : "-"});
  }
  std::cout << "Safety-critical design: the price of reliability\n";
  ladder.print(std::cout);

  // Why a star cannot serve this application: evaluate the best star at
  // full power against the requirement.
  const auto star = scenario.make_config(
      model::Topology::from_locations({0, 1, 3, 5}), 2,
      model::MacProtocol::kTdma, model::RoutingProtocol::kStar);
  const dse::Evaluation& sev = eval.evaluate(star);
  std::cout << "\nfor reference, the best-effort star (" << star.label()
            << ", TDMA) reaches only " << fmt_percent(sev.pdr, 2)
            << ": packets to the ankle die in deep fades that no Tx-power "
               "increase fixes — only the mesh's path diversity does "
               "(cf. Natarajan et al., 'To hop or not to hop')\n";
  return 0;
}
