// Example: inspecting the body-channel model.
//
// Prints the calibrated average path-loss matrix (the stand-in for the
// paper's measured dataset), the per-link fade parameters, a short fade
// trace, and the per-link outage probabilities at each CC2650 Tx level —
// the raw material behind the star/mesh reliability ladder.
#include <iostream>

#include "channel/channel.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "model/library.hpp"

int main() {
  using namespace hi;
  using namespace hi::channel;

  const PathLossMatrix& pl = calibrated_body_path_loss();

  std::cout << "Average path loss PL̄(i,j) in dB "
               "(calibrated stand-in for the measured dataset):\n\n";
  TextTable matrix;
  std::vector<std::string> header{""};
  for (int j = 0; j < kNumLocations; ++j) {
    header.push_back(std::string(location_name(j)));
  }
  matrix.set_header(header);
  for (int i = 0; i < kNumLocations; ++i) {
    std::vector<std::string> row{std::string(location_name(i))};
    for (int j = 0; j < kNumLocations; ++j) {
      row.push_back(i == j ? "-" : fmt_double(pl.db(i, j), 0));
    }
    matrix.add_row(row);
  }
  matrix.print(std::cout);

  // Fade trace on the worst link.
  std::cout << "\nGauss-Markov fade trace, chest->l-ankle (1 sample/s):\n  ";
  BodyChannel body(pl, BodyChannelParams{}, Rng{42});
  for (int t = 0; t < 15; ++t) {
    std::cout << fmt_double(body.path_loss_db(kChest, kLeftAnkle,
                                              static_cast<double>(t)),
                            1)
              << (t + 1 < 15 ? " " : "\n");
  }

  // Outage probability per link and Tx level (Monte Carlo).
  const model::RadioChip& chip = model::cc2650();
  std::cout << "\nLink outage probability (fade below sensitivity), "
            << chip.name << ":\n\n";
  TextTable outage;
  outage.set_header({"link", "PL̄ (dB)", "sigma (dB)", "-20dBm", "-10dBm",
                     "0dBm"});
  const std::vector<std::pair<int, int>> links = {
      {kChest, kLeftHip},   {kChest, kLeftWrist}, {kChest, kBack},
      {kChest, kLeftAnkle}, {kLeftHip, kLeftAnkle},
      {kLeftWrist, kLeftAnkle}};
  for (const auto& [a, b] : links) {
    BodyChannel mc(pl, BodyChannelParams{}, Rng{1234});
    std::vector<int> outages(chip.num_tx_levels(), 0);
    const int samples = 20'000;
    double t = 0.0;
    for (int s = 0; s < samples; ++s) {
      t += 2.0;  // beyond tau: nearly independent draws
      const double loss = mc.path_loss_db(a, b, t);
      for (int k = 0; k < chip.num_tx_levels(); ++k) {
        if (chip.tx_levels[static_cast<std::size_t>(k)].dbm - loss <
            chip.rx_dbm) {
          ++outages[static_cast<std::size_t>(k)];
        }
      }
    }
    std::vector<std::string> row{
        std::string(location_name(a)) + "->" +
            std::string(location_name(b)),
        fmt_double(pl.db(a, b), 0), fmt_double(mc.link_sigma_db(a, b), 1)};
    for (int k = 0; k < chip.num_tx_levels(); ++k) {
      row.push_back(fmt_percent(
          static_cast<double>(outages[static_cast<std::size_t>(k)]) /
              samples,
          1));
    }
    outage.add_row(row);
  }
  outage.print(std::cout);
  std::cout << "\ntrunk links are safe at any level; ankle links stay "
               "lossy even at 0 dBm — the deep-fade regime that makes the "
               "paper switch from star to mesh\n";
  return 0;
}
