// hi-opt quickstart: simulate a handful of Human-Intranet configurations
// and run Algorithm 1 once.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>
#include <sstream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "dse/explorer.hpp"
#include "model/power.hpp"
#include "obs/trace.hpp"

int main() {
  using namespace hi;

  // The Sec. 4.1 design example: chest + hip + foot + wrist (+ extras),
  // CC2650 radio, 100-byte packets at 10 pkt/s, CR2032 batteries.
  model::Scenario scenario;

  // --- 1. Simulate a few hand-picked configurations. -----------------------
  dse::EvaluatorSettings es;
  es.sim.duration_s = 60.0;  // scaled-down Tsim for a fast demo
  es.sim.seed = 42;
  es.runs = 3;
  dse::Evaluator eval(es);

  TextTable table;
  table.set_header({"configuration", "PDR", "NLT (days)", "P (mW)",
                    "analytic P (mW)"});
  const model::Topology four =
      model::Topology::from_locations({0, 1, 3, 5});
  for (const auto rt :
       {model::RoutingProtocol::kStar, model::RoutingProtocol::kMesh}) {
    for (int lvl = 0; lvl < scenario.chip.num_tx_levels(); ++lvl) {
      const model::NetworkConfig cfg =
          scenario.make_config(four, lvl, model::MacProtocol::kCsma, rt);
      const dse::Evaluation& ev = eval.evaluate(cfg);
      table.add_row({cfg.label(), fmt_percent(ev.pdr),
                     fmt_double(seconds_to_days(ev.nlt_s), 1),
                     fmt_double(ev.power_mw, 3),
                     fmt_double(model::node_power_mw(cfg), 3)});
    }
  }
  std::cout << "Hand-picked configurations (Tsim = "
            << es.sim.duration_s << " s, " << es.runs << " runs):\n";
  table.print(std::cout);

  // --- 2. Run the paper's DSE loop. ----------------------------------------
  dse::ExplorationOptions opt;
  opt.pdr_min = 0.90;
  const dse::ExplorationResult res =
      dse::run_algorithm1(scenario, eval, opt);
  std::cout << "\nAlgorithm 1 @ PDRmin = " << fmt_percent(opt.pdr_min)
            << ":\n";
  if (res.feasible) {
    std::cout << "  optimum: " << res.best.label() << "\n"
              << "  simulated PDR " << fmt_percent(res.best_pdr) << ", NLT "
              << fmt_double(seconds_to_days(res.best_nlt_s), 1)
              << " days, power " << fmt_double(res.best_power_mw, 3)
              << " mW\n";
  } else {
    std::cout << "  infeasible at this PDRmin\n";
  }
  std::cout << "  " << res.iterations << " iterations, " << res.simulations
            << " design points simulated, "
            << fmt_double(res.wall_time_s, 1) << " s\n"
            << "  cache hits: " << res.metrics.counter("dse.cache_hits")
            << ", MILP B&B nodes: " << res.milp_bnb_nodes << "\n";

  // --- 3. Trace one run as JSON-lines. -------------------------------------
  // Attach a sink to SimParams::trace and every packet tx/rx/drop, MAC
  // backoff, and per-node energy summary streams out with simulation
  // timestamps (point the sink at a file to keep the full log).
  std::ostringstream jsonl;
  obs::JsonlTraceSink sink(jsonl);
  const obs::RunTrace trace(&sink);
  net::SimParams sp = es.sim;
  sp.duration_s = 2.0;
  sp.trace = &trace;
  const auto channel = es.channel(/*seed=*/42);
  const model::NetworkConfig cfg = scenario.make_config(
      four, 2, model::MacProtocol::kTdma, model::RoutingProtocol::kStar);
  (void)net::simulate(cfg, *channel, sp);
  std::istringstream lines(jsonl.str());
  std::string line;
  std::size_t count = 0;
  std::cout << "\nJSON-lines trace of one 2 s run (first 3 of ";
  while (std::getline(lines, line)) ++count;
  std::cout << count << " events):\n";
  lines = std::istringstream(jsonl.str());
  for (int i = 0; i < 3 && std::getline(lines, line); ++i) {
    std::cout << "  " << line << "\n";
  }
  return 0;
}
