// Example: extending the component library and the scenario.
//
// Everything the DSE consumes is data: this example builds a network
// around a hypothetical lower-power radio, adds an application
// requirement (a head-mounted node for EEG), tightens the node budget,
// swaps in a harsher custom channel, and runs the full exploration —
// without touching library code.
#include <iostream>

#include "channel/channel.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "dse/explorer.hpp"

int main() {
  using namespace hi;

  // --- A custom radio: slower but thriftier than the CC2650. -------------
  model::RadioChip thrifty;
  thrifty.name = "hypothetical sub-mW WBAN radio";
  thrifty.fc_hz = 2.4e9;
  thrifty.bit_rate_bps = 250e3;   // 802.15.4-class rate: 4x longer packets
  thrifty.rx_dbm = -100.0;        // more sensitive receiver
  thrifty.rx_mw = 6.0;
  thrifty.tx_levels = {{-16.0, 4.2}, {-8.0, 5.5}, {0.0, 8.9}};

  // --- A customized scenario. ---------------------------------------------
  model::Scenario scenario;
  scenario.chip = thrifty;
  scenario.required_locations = {0, 8};  // chest + head (EEG)
  scenario.coverage = {
      {{1, 2}, "gait (hip)"},
      {{3, 4}, "gait (foot)"},
      {{5, 6}, "vitals (wrist)"},
  };
  scenario.min_nodes = 5;  // the four roles + head
  scenario.max_nodes = 6;
  scenario.app.throughput_pps = 5.0;  // EEG summary frames, not raw data
  scenario.tdma_slot_s = 4e-3;  // the slower radio needs 3.2 ms per packet

  // --- A harsher channel than the default calibration. --------------------
  channel::BodyChannelParams fading;
  fading.sigma_base_db = 6.0;
  fading.sigma_per_m_db = 5.0;
  fading.sigma_max_db = 12.0;
  fading.tau_s = 0.5;  // faster body dynamics

  dse::EvaluatorSettings es;
  es.sim.duration_s = 120.0;
  es.sim.seed = 23;
  es.runs = 3;
  es.channel = [fading](std::uint64_t seed) {
    return channel::make_default_body_channel(seed, fading);
  };
  dse::Evaluator eval(es);

  std::cout << "Custom scenario: " << thrifty.name << ", head node "
            << "required, harsher fading\n"
            << "design space: " << scenario.feasible_configs().size()
            << " configurations\n\n";

  TextTable table;
  table.set_header({"PDRmin", "selected configuration", "PDR",
                    "lifetime (days)", "sims"});
  for (double pdr_min : {0.70, 0.90, 0.99}) {
    dse::ExplorationOptions opt;
    opt.pdr_min = pdr_min;
    const dse::ExplorationResult res =
        dse::run_algorithm1(scenario, eval, opt);
    table.add_row({fmt_percent(pdr_min, 0),
                   res.feasible ? res.best.label() : "(infeasible)",
                   res.feasible ? fmt_percent(res.best_pdr, 1) : "-",
                   res.feasible
                       ? fmt_double(seconds_to_days(res.best_nlt_s), 1)
                       : "-",
                   std::to_string(res.simulations)});
  }
  table.print(std::cout);
  std::cout << "\nnote the lifetime scale: the thrifty radio plus the "
               "lower report rate stretch the battery far beyond the "
               "CC2650 baseline, while the harsher channel pulls the "
               "star->mesh crossover to a lower PDRmin\n";
  return 0;
}
