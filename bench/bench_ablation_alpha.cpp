// Ablation: the α-based early-termination of Algorithm 1 (Sec. 3,
// line 5).  With the α test disabled the loop drains the MILP of every
// power level; with it enabled the search stops as soon as the
// discounted analytic power of the next level provably exceeds the
// simulated incumbent.  Both variants must return the same optimum.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "dse/explorer.hpp"

int main() {
  using namespace hi;
  const dse::EvaluatorSettings settings = bench::experiment_settings();
  bench::banner("Ablation: alpha-based early termination of Algorithm 1",
                settings);

  model::Scenario scenario;
  dse::Evaluator eval(settings);  // one cache; counters reset per run
  TextTable table;
  table.set_header({"PDRmin", "optimum match", "iters w/ alpha",
                    "iters w/o", "sims w/ alpha", "sims w/o", "saved"});
  for (double pdr_min : {0.50, 0.70, 0.90, 0.95, 0.99}) {
    eval.reset_counters();
    dse::ExplorationOptions on;
    on.pdr_min = pdr_min;
    const dse::ExplorationResult with_alpha =
        dse::run_algorithm1(scenario, eval, on);

    eval.reset_counters();
    dse::ExplorationOptions off = on;
    off.use_alpha_termination = false;
    const dse::ExplorationResult without =
        dse::run_algorithm1(scenario, eval, off);

    const bool match =
        with_alpha.feasible == without.feasible &&
        (!with_alpha.feasible ||
         with_alpha.best_power_mw == without.best_power_mw);
    const double saved =
        without.simulations > 0
            ? 1.0 - static_cast<double>(with_alpha.simulations) /
                        static_cast<double>(without.simulations)
            : 0.0;
    table.add_row({fmt_percent(pdr_min, 0), match ? "yes" : "NO",
                   std::to_string(with_alpha.iterations),
                   std::to_string(without.iterations),
                   std::to_string(with_alpha.simulations),
                   std::to_string(without.simulations),
                   fmt_percent(saved, 1)});
  }
  table.print(std::cout);
  std::cout << "\ntermination uses the sound per-cell routing-free floors "
               "(see DESIGN.md); bench_alg1_vs_exhaustive compares them "
               "against the paper's literal alpha rule\n";

  // ---- Kappa sweep: how conservative can the bound be before the -------
  // ---- savings vanish, and does the optimum survive throughout? --------
  std::cout << "\nLoss-discount safety factor sweep (PDRmin = 90%):\n";
  TextTable ks;
  ks.set_header({"kappa", "sims", "iterations", "optimum P (mW)"});
  for (double kappa : {1.0, 0.8, 0.6, 0.4, 0.2}) {
    eval.reset_counters();
    dse::ExplorationOptions opt;
    opt.pdr_min = 0.90;
    opt.alpha_kappa = kappa;
    const dse::ExplorationResult res =
        dse::run_algorithm1(scenario, eval, opt);
    ks.add_row({fmt_double(kappa, 1), std::to_string(res.simulations),
                std::to_string(res.iterations),
                res.feasible ? fmt_double(res.best_power_mw, 3) : "-"});
  }
  ks.print(std::cout);
  std::cout << "\nexpected: the optimum power is identical for every kappa; "
               "smaller kappa only buys more simulations\n";
  return 0;
}
