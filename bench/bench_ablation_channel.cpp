// Ablation: channel fading parameters.  Sweeps the fade standard
// deviation and decorrelation time of the Gauss-Markov temporal model
// and reports the reference configurations' PDR, showing how the
// star/mesh reliability gap depends on the channel dynamics the paper's
// measured dataset embodies.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "net/network.hpp"

int main() {
  using namespace hi;
  const dse::EvaluatorSettings base = bench::experiment_settings();
  bench::banner("Ablation: fade sigma / tau vs reliability", base);

  model::Scenario scenario;
  const auto t4 = model::Topology::from_locations({0, 1, 3, 5});
  const auto star = scenario.make_config(t4, 2, model::MacProtocol::kTdma,
                                         model::RoutingProtocol::kStar);
  const auto mesh = scenario.make_config(t4, 2, model::MacProtocol::kTdma,
                                         model::RoutingProtocol::kMesh);

  TextTable table;
  table.set_header({"sigma scale", "tau (s)", "PDR star/0dBm",
                    "PDR mesh/0dBm", "mesh advantage"});
  for (double sigma_scale : {0.5, 0.75, 1.0, 1.25, 1.5}) {
    for (double tau : {0.25, 1.0, 4.0}) {
      channel::BodyChannelParams cp;
      cp.sigma_base_db *= sigma_scale;
      cp.sigma_per_m_db *= sigma_scale;
      cp.sigma_max_db *= sigma_scale;
      cp.tau_s = tau;
      net::ChannelFactory factory = [cp](std::uint64_t seed) {
        return channel::make_default_body_channel(seed, cp);
      };
      net::SimParams sp = base.sim;
      const net::SimResult rs =
          net::simulate_averaged(star, sp, base.runs, factory);
      const net::SimResult rm =
          net::simulate_averaged(mesh, sp, base.runs, factory);
      table.add_row({fmt_double(sigma_scale, 2), fmt_double(tau, 2),
                     fmt_percent(rs.pdr, 1), fmt_percent(rm.pdr, 1),
                     fmt_double((rm.pdr - rs.pdr) * 100.0, 1) + " pp"});
    }
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: stronger fading widens the mesh-over-star "
               "advantage (path diversity beats deep fades); with mild "
               "fading both approach 100% and the star's lifetime "
               "advantage dominates the design choice\n";
  return 0;
}
