// Perf microbenchmark for the campaign fabric (hi::campaign): the
// lease-based claim protocol (claim/done/release cycles per second on
// the filesystem), the shard merge (frames folded per second plus the
// exact-gated merged record counts), and a real 2-worker fleet over the
// generated-scenario grid (fork + shards + merge end to end, with the
// fleet's fresh-simulation count exact-gated against the cold cost —
// the fabric's zero-duplicate-work economy as a regression gate).
//
// Emits the canonical "hi-bench/v1" JSON on stdout (schema in
// DESIGN.md §11); committed baseline BENCH_campaign.json, run and gated
// by scripts/bench.sh.  HI_BENCH_QUICK shrinks the workloads; extensive
// counts are then emitted with gate=false as usual.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <unistd.h>
#include <vector>

#include "bench_util.hpp"
#include "campaign/claims.hpp"
#include "campaign/plan.hpp"
#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "common/assert.hpp"
#include "store/store.hpp"

namespace {

using namespace hi;

void remove_tree(const std::string& dir) {
  const std::string cmd = "rm -rf '" + dir + "'";
  [[maybe_unused]] const int rc = std::system(cmd.c_str());
}

campaign::CampaignPlan build_plan(const std::vector<std::uint64_t>& seeds,
                                  const std::vector<double>& grid) {
  campaign::PlanSpec spec;
  spec.gen_seeds = seeds;
  spec.pdr_grid = grid;
  std::string err;
  const auto plan = campaign::CampaignPlan::build(spec, &err);
  HI_ASSERT_MSG(plan.has_value(), "plan build failed: " << err);
  return *plan;
}

}  // namespace

int main() {
  using namespace hi;
  const bool quick = bench::quick_mode();
  const std::string tag = std::to_string(::getpid());

  dse::EvaluatorSettings banner_settings;  // the plan's pinned settings
  banner_settings.sim.duration_s = campaign::PlanSpec{}.tsim_s;
  banner_settings.sim.seed = campaign::PlanSpec{}.seed;
  banner_settings.runs = campaign::PlanSpec{}.runs;
  bench::BenchReport report("campaign", banner_settings);
  std::cerr << "bench_campaign_fabric: quick=" << quick
            << " (hi-bench/v1 JSON on stdout)\n";

  // ---- Claim protocol: acquire -> done -> release cycles on disk.
  {
    // Not shrunk in quick mode: the full loop is ~0.1 s, and short runs
    // are dominated by directory warm-up, skewing the rate.
    const std::uint64_t cycles = 2000;
    const std::string dir = "bench_claims-" + tag;
    remove_tree(dir);
    campaign::ClaimBoard board(dir, /*run_id=*/1, /*slot=*/0,
                               /*lease_ms=*/60000, nullptr);
    const double wall = bench::time_best_of(1, [&] {
      for (std::uint64_t i = 0; i < cycles; ++i) {
        const std::string token = "row-" + std::to_string(i) + "-bench";
        HI_ASSERT(board.try_claim(token, true) ==
                  campaign::ClaimOutcome::kAcquired);
        board.mark_done(token);
        board.release(token);
      }
    });
    // gate=false: filesystem timing on a shared box varies several-fold
    // run to run (journal batching); trajectory data only.
    report.add(bench::BenchMetric{"claim_cycles", "cycles/s",
                                  wall > 0.0 ? cycles / wall : 0.0, "higher",
                                  false, cycles, wall});
    std::cerr << "  claims: " << cycles << " cycles in " << wall << " s\n";
    remove_tree(dir);
  }

  // ---- Shard merge: fold three real shards into a canonical store.
  std::uint64_t fleet_cold_evals = 0;
  {
    const std::vector<std::uint64_t> seeds = {5, 6, 7};
    const std::vector<double> grid =
        quick ? std::vector<double>{0.5} : std::vector<double>{0.5, 0.7, 0.9};
    std::vector<std::string> shards;
    std::uint64_t frames = 0;
    for (const std::uint64_t seed : seeds) {
      const std::string path =
          "bench_merge_shard" + std::to_string(seed) + "-" + tag + ".store";
      std::remove(path.c_str());
      campaign::RunConfig cfg;
      cfg.store_path = path;
      const campaign::CampaignReport rep =
          campaign::run_single(build_plan({seed}, grid), cfg, nullptr);
      frames += rep.stored_evals + rep.stored_cells;
      if (seed != 7) fleet_cold_evals += rep.stored_evals;
      shards.push_back(path);
    }
    const std::string out = "bench_merge_out-" + tag + ".store";
    store::EvalStore::MergeStats st;
    const double wall = bench::time_best_of(quick ? 2 : 5, [&] {
      std::remove(out.c_str());
      st = store::EvalStore::merge(shards, out);
    });
    HI_ASSERT_MSG(st.clean() && st.frames == frames,
                  "merge lost records: " << st.frames << " != " << frames);
    report.add(bench::BenchMetric{"merge_frames", "frames/s",
                                  wall > 0.0 ? frames / wall : 0.0, "higher",
                                  false, frames, wall});
    report.add(bench::BenchMetric{"merge_frames_total", "count",
                                  static_cast<double>(frames), "exact",
                                  !quick, frames, 0.0});
    report.add(bench::BenchMetric{"merge_duplicate_evals", "count",
                                  static_cast<double>(st.duplicate_evals),
                                  "exact", !quick, 0, 0.0});
    std::cerr << "  merge: " << frames << " frames in " << wall << " s\n";
    for (const std::string& s : shards) std::remove(s.c_str());
    std::remove(out.c_str());
  }

  // ---- Fleet end to end: 2 workers, 2 rows, fork + shards + merge.
  {
    const std::vector<double> grid =
        quick ? std::vector<double>{0.5} : std::vector<double>{0.5, 0.7, 0.9};
    const auto plan = build_plan({5, 6}, grid);
    const std::string dir = "bench_fleet-" + tag;
    remove_tree(dir);
    campaign::RunConfig cfg;
    cfg.shard_dir = dir;
    cfg.workers = 2;
    const campaign::FleetReport fleet = campaign::run_fleet(plan, cfg, nullptr);
    HI_ASSERT_MSG(fleet.complete, "bench fleet did not complete");
    const campaign::WorkerReport totals = fleet.totals();
    // The economy gate: a crash-free fleet pays exactly the cold cost.
    HI_ASSERT_MSG(totals.fresh_simulations == fleet_cold_evals,
                  "fleet re-simulated: " << totals.fresh_simulations
                                         << " != " << fleet_cold_evals);
    report.add(bench::BenchMetric{"fleet_wall", "s", fleet.wall_s, "lower",
                                  false, plan.cell_count(), fleet.wall_s});
    report.add(bench::BenchMetric{"fleet_cells_per_s", "cells/s",
                                  fleet.throughput_cells_per_s(), "higher",
                                  false, plan.cell_count(), fleet.wall_s});
    report.add(bench::BenchMetric{"fleet_fresh_simulations", "count",
                                  static_cast<double>(totals.fresh_simulations),
                                  "exact", !quick, totals.fresh_simulations,
                                  0.0});
    std::cerr << "  fleet: " << plan.cell_count() << " cells in "
              << fleet.wall_s << " s across 2 workers\n";
    remove_tree(dir);
  }

  report.write(std::cout);
  return 0;
}
