// hi-opt: shared plumbing for the experiment harness binaries.
//
// Every bench honours two environment variables:
//   HI_TSIM  — simulation duration per run in seconds (default 60; the
//              paper uses 600, which scales all sample counts by 10x but
//              does not move the means beyond their ~0.5% error bars)
//   HI_RUNS  — replications averaged per design point (default 3, as in
//              the paper)
//   HI_SEED  — experiment root seed (default 2017)
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "dse/evaluator.hpp"
#include "model/design_space.hpp"

namespace hi::bench {

inline double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atof(v) : fallback;
}

inline long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atol(v) : fallback;
}

/// Evaluation settings shared by all experiment benches.
inline dse::EvaluatorSettings experiment_settings() {
  dse::EvaluatorSettings s;
  s.sim.duration_s = env_double("HI_TSIM", 60.0);
  s.sim.seed = static_cast<std::uint64_t>(env_long("HI_SEED", 2017));
  s.runs = static_cast<int>(env_long("HI_RUNS", 3));
  return s;
}

/// Prints the standard experiment banner.
inline void banner(const std::string& title,
                   const dse::EvaluatorSettings& s) {
  std::cout << "=== " << title << " ===\n"
            << "settings: Tsim=" << s.sim.duration_s << " s, runs=" << s.runs
            << ", seed=" << s.sim.seed
            << "  (HI_TSIM / HI_RUNS / HI_SEED to override; paper: 600 s, "
               "3 runs)\n\n";
}

}  // namespace hi::bench
