// hi-opt: shared plumbing for the experiment and benchmark binaries.
//
// Every bench honours these environment variables:
//   HI_TSIM  — simulation duration per run in seconds (default 60; the
//              paper uses 600, which scales all sample counts by 10x but
//              does not move the means beyond their ~0.5% error bars)
//   HI_RUNS  — replications averaged per design point (default 3, as in
//              the paper)
//   HI_SEED  — experiment root seed (default 2017)
//
// The perf microbenches (bench_des_perf, bench_milp_perf,
// bench_parallel_speedup) additionally honour
//   HI_BENCH_QUICK — nonzero shrinks workloads for CI smoke runs
// and emit the canonical "hi-bench/v1" JSON document on stdout
// (BenchReport below; schema and gating rules in DESIGN.md §11,
// validated/compared by scripts/bench_gate.py).
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "dse/evaluator.hpp"
#include "model/design_space.hpp"

namespace hi::bench {

inline double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atof(v) : fallback;
}

inline long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atol(v) : fallback;
}

/// True when HI_BENCH_QUICK is set: CI smoke mode, scaled-down
/// workloads.  Rate metrics (anything per-second) stay comparable with
/// full runs; extensive metrics (counts, wall times) do not and must be
/// emitted with gate=false in quick mode.
inline bool quick_mode() { return env_long("HI_BENCH_QUICK", 0) != 0; }

/// Evaluation settings shared by all experiment benches.
inline dse::EvaluatorSettings experiment_settings() {
  dse::EvaluatorSettings s;
  s.sim.duration_s = env_double("HI_TSIM", 60.0);
  s.sim.seed = static_cast<std::uint64_t>(env_long("HI_SEED", 2017));
  s.runs = static_cast<int>(env_long("HI_RUNS", 3));
  return s;
}

/// Prints the standard experiment banner.
inline void banner(const std::string& title,
                   const dse::EvaluatorSettings& s) {
  std::cout << "=== " << title << " ===\n"
            << "settings: Tsim=" << s.sim.duration_s << " s, runs=" << s.runs
            << ", seed=" << s.sim.seed
            << "  (HI_TSIM / HI_RUNS / HI_SEED to override; paper: 600 s, "
               "3 runs)\n\n";
}

/// Wall-clock of `fn()`, best of `reps` repetitions (min, not mean — the
/// minimum is the least-noise estimate on a shared machine).
template <typename F>
double time_best_of(int reps, F&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

/// One measured metric of a bench run ("hi-bench/v1").
struct BenchMetric {
  std::string name;    ///< stable identifier, compared across runs by name
  std::string unit;    ///< "events/s", "solves/s", "s", "count", "mW", ...
  double value = 0.0;
  /// Regression direction: "higher" / "lower" = value should not move
  /// the other way by more than the gate tolerance; "exact" = value is
  /// deterministic and must match the baseline bit-for-bit (counts,
  /// optimizer results).
  std::string better = "higher";
  /// False exempts the metric from scripts/bench_gate.py comparison
  /// (trajectory-only data: wall clocks on a shared box, quick-mode
  /// extensive counts).
  bool gate = true;
  std::uint64_t items = 0;  ///< work items behind `value` (0 = n/a)
  double wall_s = 0.0;      ///< wall clock of the measurement (0 = n/a)
};

/// Canonical machine-readable bench report (schema "hi-bench/v1"),
/// written to stdout as the bench's only stdout output and committed at
/// the repo root as BENCH_<name>.json.  scripts/bench_gate.py validates
/// the schema and gates regressions against the committed baseline.
class BenchReport {
 public:
  BenchReport(std::string bench, const dse::EvaluatorSettings& s)
      : bench_(std::move(bench)), tsim_s_(s.sim.duration_s), runs_(s.runs),
        seed_(s.sim.seed) {}

  void add(BenchMetric m) { metrics_.push_back(std::move(m)); }

  /// Convenience: a rate metric (work/second), gated by default.
  void add_rate(const std::string& name, const std::string& unit,
                std::uint64_t items, double wall_s) {
    add(BenchMetric{name, unit, wall_s > 0.0 ? items / wall_s : 0.0,
                    "higher", true, items, wall_s});
  }

  void write(std::ostream& os) const {
    os.precision(17);
    os << "{\n"
       << "  \"schema\": \"hi-bench/v1\",\n"
       << "  \"bench\": \"" << bench_ << "\",\n"
       << "  \"quick\": " << (quick_mode() ? "true" : "false") << ",\n"
       << "  \"settings\": {\"tsim_s\": " << tsim_s_ << ", \"runs\": "
       << runs_ << ", \"seed\": " << seed_ << "},\n"
       << "  \"metrics\": [\n";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      const BenchMetric& m = metrics_[i];
      os << "    {\"name\": \"" << m.name << "\", \"unit\": \"" << m.unit
         << "\", \"value\": " << m.value << ", \"better\": \"" << m.better
         << "\", \"gate\": " << (m.gate ? "true" : "false")
         << ", \"items\": " << m.items << ", \"wall_s\": " << m.wall_s
         << "}" << (i + 1 < metrics_.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
  }

 private:
  std::string bench_;
  double tsim_s_;
  int runs_;
  std::uint64_t seed_;
  std::vector<BenchMetric> metrics_;
};

}  // namespace hi::bench
