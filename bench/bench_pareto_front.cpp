// Perf benchmark for the hi::pareto frontier engine (DESIGN.md §14):
// the exhaustive three-objective front vs the MILP ladder sweep on the
// paper scenario, with latency collection on.  Front sizes, evaluation
// counts, and per-rung feasibility are deterministic and exact-gated;
// throughput rates are gated with the usual tolerance; wall clocks are
// trajectory-only.
//
// The bench also re-asserts the engine's core contract inline (cheap,
// and a broken contract should fail the bench run, not just tier-1):
// every ladder front point must appear in the exhaustive front with
// bit-identical objectives, and the ladder must never simulate more.
//
// Emits the canonical "hi-bench/v1" JSON on stdout (committed baseline
// BENCH_pareto.json, run and gated by scripts/bench.sh).
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>

#include "bench_util.hpp"
#include "common/assert.hpp"
#include "dse/evaluator.hpp"
#include "pareto/sweep.hpp"

namespace {

using namespace hi;

dse::EvaluatorSettings pinned_settings(bool quick) {
  dse::EvaluatorSettings s;
  s.sim.duration_s = quick ? 2.0 : 5.0;
  s.sim.seed = 2017;
  s.runs = 1;
  s.sim.collect_latency = true;  // the third objective
  return s;
}

}  // namespace

int main() {
  using namespace hi;
  const bool quick = bench::quick_mode();
  const dse::EvaluatorSettings settings = pinned_settings(quick);
  const model::Scenario scenario{};  // the paper example
  bench::BenchReport report("pareto", settings);
  std::cerr << "bench_pareto_front: quick=" << quick
            << " (hi-bench/v1 JSON on stdout)\n";

  pareto::SweepOptions opt;  // default PDRmin ladder (Fig. 3 range)

  // ---- Exhaustive front: the definitive oracle. --------------------------
  dse::Evaluator ex_eval(settings);
  const pareto::SweepResult ex =
      pareto::exhaustive_front(scenario, ex_eval, opt);
  HI_ASSERT_MSG(!ex.front.empty(), "paper scenario produced an empty front");
  report.add(bench::BenchMetric{"exhaustive_front_size", "count",
                                static_cast<double>(ex.front.size()), "exact",
                                !quick, ex.front.size(), 0.0});
  report.add(bench::BenchMetric{"exhaustive_evaluated", "count",
                                static_cast<double>(ex.evaluated), "exact",
                                !quick, ex.evaluated, 0.0});
  report.add_rate("exhaustive_eval_rate", "evals/s", ex.simulations,
                  ex.wall_time_s);
  report.add(bench::BenchMetric{"exhaustive_wall", "s", ex.wall_time_s,
                                "lower", false, 0, ex.wall_time_s});
  std::cerr << "  exhaustive: " << ex.front.size() << " front points from "
            << ex.evaluated << " evaluations (" << ex.wall_time_s << " s)\n";

  // ---- Ladder front: one MILP encoding, shared pools. --------------------
  dse::Evaluator ld_eval(settings);
  const pareto::SweepResult ld = pareto::ladder_front(scenario, ld_eval, opt);
  HI_ASSERT_MSG(ld.complete, "ladder sweep hit max_rounds");
  HI_ASSERT_MSG(ld.simulations <= ex.simulations,
                "ladder simulated more than exhaustive");
  for (const pareto::FrontPoint& p : ld.front) {
    const auto it = std::find_if(
        ex.front.begin(), ex.front.end(), [&](const pareto::FrontPoint& q) {
          return q.cfg.design_key() == p.cfg.design_key();
        });
    HI_ASSERT_MSG(it != ex.front.end() && it->power_mw == p.power_mw &&
                      it->pdr == p.pdr && it->p95_s == p.p95_s,
                  "ladder front point " << p.cfg.label()
                                        << " not on the exhaustive front");
  }
  report.add(bench::BenchMetric{"ladder_front_size", "count",
                                static_cast<double>(ld.front.size()), "exact",
                                !quick, ld.front.size(), 0.0});
  report.add(bench::BenchMetric{"ladder_evaluated", "count",
                                static_cast<double>(ld.evaluated), "exact",
                                !quick, ld.evaluated, 0.0});
  report.add(bench::BenchMetric{"ladder_milp_rounds", "count",
                                static_cast<double>(ld.milp_rounds), "exact",
                                !quick, ld.milp_rounds, 0.0});
  report.add(bench::BenchMetric{"ladder_feasible_rungs", "count",
                                static_cast<double>(std::count_if(
                                    ld.rungs.begin(), ld.rungs.end(),
                                    [](const pareto::RungResult& r) {
                                      return r.feasible;
                                    })),
                                "exact", !quick, 0, 0.0});
  report.add(bench::BenchMetric{"ladder_wall", "s", ld.wall_time_s, "lower",
                                false, 0, ld.wall_time_s});
  std::cerr << "  ladder: " << ld.front.size() << " front points, "
            << ld.milp_rounds << " MILP rounds, " << ld.evaluated
            << " evaluations (" << ld.wall_time_s << " s)\n";

  report.write(std::cout);
  return 0;
}
