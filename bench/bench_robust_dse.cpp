// Perf microbenchmark for robust evaluation (DESIGN.md §13): the
// multi-realization evaluation throughput (design evaluations per
// second at K = 1, 2, 4 channel realizations, with the realization-fold
// cost exact-gated), and the robust Algorithm 1 vs fast-ILP heuristic
// trade (wall clock, simulation counts, and the heuristic's optimality
// gap on the paper example — all exact-gated, since both explorers are
// deterministic).
//
// Emits the canonical "hi-bench/v1" JSON on stdout (schema in
// DESIGN.md §11); committed baseline BENCH_robust.json, run and gated
// by scripts/bench.sh.  HI_BENCH_QUICK shrinks the workloads; extensive
// counts are then emitted with gate=false as usual.
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/assert.hpp"
#include "dse/explorer.hpp"

namespace {

using namespace hi;

/// Pinned settings: the exact-gated metrics (simulation counts, robust
/// optima) are only reproducible under these, so the env knobs are
/// deliberately ignored (as in bench_campaign_fabric).
dse::EvaluatorSettings pinned_settings(bool quick) {
  dse::EvaluatorSettings s;
  s.sim.duration_s = quick ? 2.0 : 10.0;
  s.sim.seed = 2017;
  s.runs = 1;
  return s;
}

}  // namespace

int main() {
  using namespace hi;
  const bool quick = bench::quick_mode();
  const dse::EvaluatorSettings settings = pinned_settings(quick);
  const model::Scenario scenario{};  // the paper example
  bench::BenchReport report("robust", settings);
  std::cerr << "bench_robust_dse: quick=" << quick
            << " (hi-bench/v1 JSON on stdout)\n";

  // ---- Multi-realization throughput: exhaustive sweep at K = 1, 2, 4.
  // Each leg runs on a fresh evaluator (no cache carry-over), so the
  // rate is the true cost of folding K realizations into every design
  // evaluation.  Γ = 1 keeps the robust machinery engaged at K = 1 too
  // (Γ-protection is closed-form and does not add simulations).
  for (const int k : {1, 2, 4}) {
    dse::ExplorationOptions opt;
    opt.pdr_min = 0.9;
    opt.robust = dse::RobustnessOptions{1, k, 0.95};
    dse::ExplorationResult res;
    const double wall = bench::time_best_of(quick ? 1 : 3, [&] {
      dse::Evaluator eval(settings);
      res = dse::run_exhaustive(scenario, eval, opt);
    });
    HI_ASSERT_MSG(res.feasible, "paper example infeasible at PDRmin=0.9");
    HI_ASSERT_MSG(res.realizations == k,
                  "realization echo broken: " << res.realizations);
    // res.simulations counts realization-sims; designs = sims / K.
    const std::uint64_t designs = res.simulations / static_cast<std::uint64_t>(k);
    HI_ASSERT_MSG(designs * static_cast<std::uint64_t>(k) == res.simulations,
                  "realization fold not a multiple of K");
    const std::string suffix = "_k" + std::to_string(k);
    report.add_rate("eval_rate" + suffix, "evals/s", designs, wall);
    report.add(bench::BenchMetric{"realization_sims" + suffix, "count",
                                  static_cast<double>(res.simulations),
                                  "exact", !quick, res.simulations, 0.0});
    report.add(bench::BenchMetric{"best_power" + suffix, "mW",
                                  res.best_power_mw, "exact", !quick,
                                  0, 0.0});
    std::cerr << "  K=" << k << ": " << designs << " designs ("
              << res.simulations << " sims) in " << wall << " s\n";
  }

  // ---- Robust Algorithm 1 vs the fast-ILP heuristic at Γ=2, K=2,
  // across the PDRmin ladder (the EXPERIMENTS.md table).  Both
  // explorers are deterministic, so simulation counts, optima, and the
  // heuristic's gap are exact-gated; wall clocks are trajectory data.
  // The contracts mirror the tier-1 FastIlp tests: identical
  // feasibility verdicts, heuristic never beats the exact optimum,
  // never simulates more.
  {
    double alg1_wall = 0.0, fi_wall = 0.0;
    std::uint64_t robust_cuts = 0;
    for (const double pdr_min : {0.5, 0.7, 0.9, 0.95, 0.99}) {
      dse::ExplorationOptions opt;
      opt.pdr_min = pdr_min;
      opt.robust = dse::RobustnessOptions{2, 2, 0.95};
      dse::Evaluator eval_alg1(settings);
      const dse::ExplorationResult alg1 =
          dse::run_algorithm1(scenario, eval_alg1, opt);
      dse::Evaluator eval_fi(settings);
      const dse::ExplorationResult fi =
          dse::run_fast_ilp(scenario, eval_fi, opt);

      HI_ASSERT_MSG(fi.feasible == alg1.feasible,
                    "feasibility verdicts disagree at PDRmin=" << pdr_min);
      const double gap_mw = fi.best_power_mw - alg1.best_power_mw;
      HI_ASSERT_MSG(gap_mw >= -1e-12, "heuristic beat the exact optimum");
      HI_ASSERT_MSG(fi.simulations <= alg1.simulations,
                    "heuristic simulated more than Algorithm 1");

      alg1_wall += alg1.wall_time_s;
      fi_wall += fi.wall_time_s;
      robust_cuts += alg1.metrics.counter("dse.robust_cuts");
      const std::string suffix =
          "_p" + std::to_string(static_cast<int>(pdr_min * 100.0));
      report.add(bench::BenchMetric{"alg1_sims" + suffix, "count",
                                    static_cast<double>(alg1.simulations),
                                    "exact", !quick, alg1.simulations, 0.0});
      report.add(bench::BenchMetric{"fast_ilp_sims" + suffix, "count",
                                    static_cast<double>(fi.simulations),
                                    "exact", !quick, fi.simulations, 0.0});
      report.add(bench::BenchMetric{"alg1_robust_power" + suffix, "mW",
                                    alg1.best_power_mw, "exact", !quick,
                                    0, 0.0});
      report.add(bench::BenchMetric{"fast_ilp_gap" + suffix, "mW", gap_mw,
                                    "exact", !quick, 0, 0.0});
      std::cerr << "  PDRmin=" << pdr_min << ": alg1 " << alg1.simulations
                << " sims, " << alg1.best_power_mw << " mW ("
                << alg1.wall_time_s << " s); fast-ilp " << fi.simulations
                << " sims, gap " << gap_mw << " mW (" << fi.wall_time_s
                << " s)\n";
    }
    report.add(bench::BenchMetric{"alg1_wall", "s", alg1_wall, "lower",
                                  false, 0, alg1_wall});
    report.add(bench::BenchMetric{"fast_ilp_wall", "s", fi_wall, "lower",
                                  false, 0, fi_wall});
    report.add(bench::BenchMetric{"alg1_robust_cuts", "count",
                                  static_cast<double>(robust_cuts), "exact",
                                  !quick, 0, 0.0});
  }

  report.write(std::cout);
  return 0;
}
