// Ablation: mesh flooding depth Nhops.  The paper fixes Nhops = 2; this
// sweep shows why — one hop forfeits most of the path diversity, three
// hops explode the relay traffic (and the TDMA queue load) for almost no
// extra reliability on a body-sized network.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "net/network.hpp"

int main() {
  using namespace hi;
  const dse::EvaluatorSettings base = bench::experiment_settings();
  bench::banner("Ablation: mesh flooding depth Nhops", base);

  model::Scenario scenario;
  TextTable table;
  table.set_header({"topology", "Nhops", "MAC", "PDR", "P (mW)",
                    "NLT (days)", "tx/packet"});
  for (const auto& topo :
       {model::Topology::from_locations({0, 1, 3, 5}),
        model::Topology::from_locations({0, 1, 3, 5, 7})}) {
    for (int hops : {1, 2, 3}) {
      for (const auto mac :
           {model::MacProtocol::kCsma, model::MacProtocol::kTdma}) {
        model::Scenario sc = scenario;
        sc.max_hops = hops;
        const auto cfg = sc.make_config(topo, 2, mac,
                                        model::RoutingProtocol::kMesh);
        const net::SimResult r =
            net::simulate_averaged(cfg, base.sim, base.runs);
        std::uint64_t sent = 0;
        for (const auto& n : r.nodes) sent += n.app_sent;
        const double tx_per_packet =
            sent > 0 ? static_cast<double>(r.medium.transmissions) /
                           static_cast<double>(sent)
                     : 0.0;
        table.add_row({topo.to_string(), std::to_string(hops),
                       model::to_string(mac), fmt_percent(r.pdr, 2),
                       fmt_double(r.worst_power_mw, 3),
                       fmt_double(seconds_to_days(r.nlt_s), 1),
                       fmt_double(tx_per_packet, 2)});
      }
    }
  }
  table.print(std::cout);
  std::cout << "\npaper's choice Nhops = 2: the knee of the "
               "reliability/lifetime curve (NreTx bound: N^2-4N+5 "
               "transmissions per packet at depth 2)\n";
  return 0;
}
