// Reproduces the paper's Sec. 4.2 qualitative result: how the selected
// configuration climbs the power ladder as the reliability bound rises —
// star at -10 dBm, star at 0 dBm, 4-node mesh, then a fifth node added
// to the mesh for the highest reliability (at the cost of a much shorter
// lifetime).
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "dse/explorer.hpp"

int main() {
  using namespace hi;
  const dse::EvaluatorSettings settings = bench::experiment_settings();
  bench::banner("Sec. 4.2: optimal configuration ladder vs PDRmin",
                settings);

  model::Scenario scenario;
  dse::Evaluator eval(settings);  // shared cache across the sweep

  TextTable table;
  table.set_header({"PDRmin", "topology", "N", "routing", "MAC", "Tx",
                    "PDR (%)", "NLT (days)"});
  // The top rungs stand in for the paper's "100% reliability" point: a
  // finite simulation estimates PDR within the ~0.5% tolerance the paper
  // quotes, so "100%" is encoded as PDRmin = 99.9..99.95%.
  for (double pdr_min :
       {0.40, 0.45, 0.50, 0.55, 0.60, 0.65, 0.70, 0.75, 0.80, 0.85, 0.90,
        0.925, 0.95, 0.975, 0.99, 0.995, 0.999, 0.9995}) {
    dse::ExplorationOptions opt;
    opt.pdr_min = pdr_min;
    const dse::ExplorationResult res =
        dse::run_algorithm1(scenario, eval, opt);
    if (!res.feasible) {
      table.add_row({fmt_percent(pdr_min, 1), "(infeasible)"});
      continue;
    }
    const auto& cfg = res.best;
    table.add_row({fmt_percent(pdr_min, 1), cfg.topology.to_string(),
                   std::to_string(cfg.topology.count()),
                   model::to_string(cfg.routing.protocol),
                   model::to_string(cfg.mac.protocol),
                   fmt_double(cfg.radio.tx_dbm, 0) + "dBm",
                   fmt_double(res.best_pdr * 100.0, 2),
                   fmt_double(seconds_to_days(res.best_nlt_s), 1)});
  }
  table.print(std::cout);
  std::cout << "\npaper's ladder: star/-10dBm below ~60% -> star/0dBm to "
               "~90% -> mesh/0dBm above 90% -> fifth node (shoulder) for "
               "~100%, dropping NLT to a couple of days\n";
  return 0;
}
