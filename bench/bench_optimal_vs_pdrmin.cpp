// Reproduces the paper's Sec. 4.2 qualitative result: how the selected
// configuration climbs the power ladder as the reliability bound rises —
// star at -10 dBm, star at 0 dBm, 4-node mesh, then a fifth node added
// to the mesh for the highest reliability (at the cost of a much shorter
// lifetime).
//
// Emits the canonical "hi-bench/v1" JSON on stdout (committed baseline
// BENCH_pdrmin.json, run and gated by scripts/bench.sh); the human-
// readable ladder table goes to stderr.  Settings are pinned (as in
// bench_robust_dse) so the exact-gated metrics — distinct ladder steps,
// the highest feasible rung, rung optima, total simulations — are
// reproducible.
#include <cstdint>
#include <iostream>
#include <string>
#include <unordered_set>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "dse/explorer.hpp"

namespace {

using namespace hi;

dse::EvaluatorSettings pinned_settings(bool quick) {
  dse::EvaluatorSettings s;
  s.sim.duration_s = quick ? 2.0 : 5.0;
  s.sim.seed = 2017;
  s.runs = 1;
  return s;
}

}  // namespace

int main() {
  using namespace hi;
  const bool quick = bench::quick_mode();
  const dse::EvaluatorSettings settings = pinned_settings(quick);
  const model::Scenario scenario{};  // the paper example
  bench::BenchReport report("pdrmin", settings);
  std::cerr << "bench_optimal_vs_pdrmin: quick=" << quick
            << " (hi-bench/v1 JSON on stdout)\n";

  dse::Evaluator eval(settings);  // shared cache across the sweep

  TextTable table;
  table.set_header({"PDRmin", "topology", "N", "routing", "MAC", "Tx",
                    "PDR (%)", "NLT (days)"});
  // The top rungs stand in for the paper's "100% reliability" point: a
  // finite simulation estimates PDR within the ~0.5% tolerance the paper
  // quotes, so "100%" is encoded as PDRmin = 99.9..99.95%.
  const std::vector<double> ladder = {
      0.40, 0.45, 0.50, 0.55, 0.60, 0.65, 0.70, 0.75, 0.80, 0.85, 0.90,
      0.925, 0.95, 0.975, 0.99, 0.995, 0.999, 0.9995};
  std::unordered_set<std::uint64_t> distinct_optima;
  double top_feasible = 0.0;
  for (const double pdr_min : ladder) {
    dse::ExplorationOptions opt;
    opt.pdr_min = pdr_min;
    const dse::ExplorationResult res =
        dse::run_algorithm1(scenario, eval, opt);
    if (!res.feasible) {
      table.add_row({fmt_percent(pdr_min, 1), "(infeasible)"});
      continue;
    }
    top_feasible = pdr_min;
    distinct_optima.insert(res.best.design_key());
    const auto& cfg = res.best;
    table.add_row({fmt_percent(pdr_min, 1), cfg.topology.to_string(),
                   std::to_string(cfg.topology.count()),
                   model::to_string(cfg.routing.protocol),
                   model::to_string(cfg.mac.protocol),
                   fmt_double(cfg.radio.tx_dbm, 0) + "dBm",
                   fmt_double(res.best_pdr * 100.0, 2),
                   fmt_double(seconds_to_days(res.best_nlt_s), 1)});
    if (pdr_min == 0.50 || pdr_min == 0.80 || pdr_min == 0.95) {
      const std::string suffix =
          "_p" + std::to_string(static_cast<int>(pdr_min * 100.0));
      report.add(bench::BenchMetric{"rung_power" + suffix, "mW",
                                    res.best_power_mw, "exact", !quick,
                                    0, 0.0});
    }
  }
  table.print(std::cerr);
  std::cerr << "paper's ladder: star/-10dBm below ~60% -> star/0dBm to "
               "~90% -> mesh/0dBm above 90% -> fifth node (shoulder) for "
               "~100%, dropping NLT to a couple of days\n";

  // The qualitative result, made gateable: how many distinct optima the
  // ladder climbs through, and the highest feasible rung.  The whole
  // sweep shares one cache, so total_sims is the cost of the LADDER, not
  // rungs-times-exhaustive.
  report.add(bench::BenchMetric{"ladder_steps", "count",
                                static_cast<double>(distinct_optima.size()),
                                "exact", !quick, distinct_optima.size(),
                                0.0});
  report.add(bench::BenchMetric{"top_feasible_pdrmin", "ratio", top_feasible,
                                "exact", !quick, 0, 0.0});
  report.add(bench::BenchMetric{"total_sims", "count",
                                static_cast<double>(eval.simulations()),
                                "exact", !quick, eval.simulations(), 0.0});

  report.write(std::cout);
  return 0;
}
