// Measures what hi::store warm start is worth: the same Algorithm 1 run
// executed cold (fresh store, every point simulated) and then warm (a
// second process-like pass preloading the store), with wall-clock and
// hit-rate emitted as JSON on stdout.
//
// The correctness contracts are asserted on the fly, mirroring the
// hi::check warm-start determinism property: the warmed run must return
// the cold run's optimum bit-for-bit, pay for zero fresh simulations
// (Algorithm 1 is deterministic, so a full store answers everything),
// and account every served point in dse.store_hits.
//
// The usual HI_TSIM / HI_RUNS / HI_SEED knobs apply; HI_PDR_MIN
// (default 0.9) picks the reliability bound.
#include <cstdio>
#include <iostream>
#include <string>
#include <unistd.h>

#include "bench_util.hpp"
#include "common/assert.hpp"
#include "dse/explorer.hpp"
#include "store/store.hpp"

namespace {

struct Leg {
  double wall_s = 0.0;
  std::uint64_t simulations = 0;
  std::uint64_t store_hits = 0;
  std::size_t preloaded = 0;
  bool feasible = false;
  double best_power_mw = 0.0;
};

Leg run_leg(const hi::dse::EvaluatorSettings& base,
            const std::string& store_path, double pdr_min) {
  using namespace hi;
  store::EvalStore st(store_path);
  dse::Evaluator eval(base);
  const store::WarmStartStats warm = store::warm_start(eval, st);
  dse::ExplorationOptions opt;
  opt.pdr_min = pdr_min;
  const dse::ExplorationResult r =
      dse::run_algorithm1(model::Scenario{}, eval, opt);
  return Leg{r.wall_time_s, r.simulations,   eval.store_hits(),
             warm.preloaded, r.feasible,     r.best_power_mw};
}

void print_leg(const char* name, const Leg& leg, bool last) {
  std::cout << "  \"" << name << "\": {\"wall_s\": " << leg.wall_s
            << ", \"simulations\": " << leg.simulations
            << ", \"store_hits\": " << leg.store_hits
            << ", \"preloaded\": " << leg.preloaded
            << ", \"feasible\": " << (leg.feasible ? "true" : "false")
            << ", \"best_power_mw\": " << leg.best_power_mw << "}"
            << (last ? "" : ",") << "\n";
}

}  // namespace

int main() {
  using namespace hi;
  const dse::EvaluatorSettings base = bench::experiment_settings();
  const double pdr_min = bench::env_double("HI_PDR_MIN", 0.9);
  const std::string store_path =
      "bench_warmstart-" + std::to_string(::getpid()) + ".store";

  std::cerr << "bench_store_warmstart: Tsim=" << base.sim.duration_s
            << " s, runs=" << base.runs << ", seed=" << base.sim.seed
            << ", pdr_min=" << pdr_min << " (JSON on stdout)\n";

  // Cold leg: empty store, write-through fills it as Algorithm 1 runs.
  const Leg cold = run_leg(base, store_path, pdr_min);
  std::cerr << "  cold: " << cold.wall_s << " s, " << cold.simulations
            << " simulations\n";

  // Warm leg: a fresh evaluator (as a new process would have) preloaded
  // from the store the cold leg just wrote.
  const Leg warm = run_leg(base, store_path, pdr_min);
  std::cerr << "  warm: " << warm.wall_s << " s, " << warm.store_hits
            << " store hits\n";

  HI_ASSERT_MSG(cold.store_hits == 0 && cold.preloaded == 0,
                "cold leg was not cold — stale " << store_path << "?");
  HI_ASSERT_MSG(warm.feasible == cold.feasible &&
                    warm.best_power_mw == cold.best_power_mw,
                "warm start changed the optimum — determinism contract "
                "violated");
  HI_ASSERT_MSG(warm.simulations + warm.store_hits == cold.simulations,
                "warm accounting broken: " << warm.simulations << " + "
                                           << warm.store_hits
                                           << " != " << cold.simulations);
  HI_ASSERT_MSG(warm.simulations == 0,
                "a deterministic replay re-simulated "
                    << warm.simulations << " point(s)");

  const double hit_rate =
      cold.simulations > 0
          ? static_cast<double>(warm.store_hits) /
                static_cast<double>(cold.simulations)
          : 0.0;
  std::cout << "{\n"
            << "  \"tsim_s\": " << base.sim.duration_s << ",\n"
            << "  \"runs\": " << base.runs << ",\n"
            << "  \"seed\": " << base.sim.seed << ",\n"
            << "  \"pdr_min\": " << pdr_min << ",\n";
  print_leg("cold", cold, /*last=*/false);
  print_leg("warm", warm, /*last=*/false);
  std::cout << "  \"hit_rate\": " << hit_rate << ",\n"
            << "  \"speedup\": "
            << (warm.wall_s > 0.0 ? cold.wall_s / warm.wall_s : 0.0) << "\n"
            << "}\n";
  std::remove(store_path.c_str());
  return 0;
}
