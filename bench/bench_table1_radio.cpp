// Reproduces paper Table 1: TI CC2650 radio specifications, plus the
// quantities the models derive from it (Tpkt, per-level analytic node
// powers and lifetimes for the 4-node star/mesh reference topologies).
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "model/power.hpp"

int main() {
  using namespace hi;
  model::Scenario scenario;
  const model::RadioChip& chip = scenario.chip;

  std::cout << "=== Table 1: " << chip.name << " radio specifications ===\n\n";
  TextTable spec;
  spec.set_header({"parameter", "value"});
  spec.add_row({"fc", fmt_double(chip.fc_hz / 1e9, 1) + " GHz"});
  spec.add_row({"BR", fmt_double(chip.bit_rate_bps / 1e3, 0) + " kbps"});
  spec.add_row({"RxdBm", fmt_double(chip.rx_dbm, 0) + " dBm"});
  spec.add_row({"RxmW", fmt_double(chip.rx_mw, 1) + " mW"});
  spec.print(std::cout);

  std::cout << "\nTx modes:\n";
  TextTable tx;
  tx.set_header({"mode", "TxdBm", "TxmW"});
  for (int k = 0; k < chip.num_tx_levels(); ++k) {
    tx.add_row({"p" + std::to_string(k + 1),
                fmt_double(chip.tx_levels[static_cast<std::size_t>(k)].dbm, 0),
                fmt_double(chip.tx_levels[static_cast<std::size_t>(k)].mw, 2)});
  }
  tx.print(std::cout);

  const model::Topology t4 = model::Topology::from_locations({0, 1, 3, 5});
  const model::NetworkConfig ref =
      scenario.make_config(t4, 2, model::MacProtocol::kCsma,
                           model::RoutingProtocol::kStar);
  std::cout << "\nDerived quantities (Sec. 2.1 / 4.1):\n";
  TextTable derived;
  derived.set_header({"quantity", "value"});
  derived.add_row({"Tpkt = 8L/BR (L=100 B)",
                   fmt_double(model::packet_duration_s(ref.radio, ref.app) *
                                  1e6,
                              2) +
                       " us"});
  derived.add_row({"CR2032 energy", fmt_double(ref.battery_j, 0) + " J"});
  derived.add_row(
      {"NreTx (N=4,5,6)",
       fmt_double(model::mesh_retx_bound(4), 0) + " / " +
           fmt_double(model::mesh_retx_bound(5), 0) + " / " +
           fmt_double(model::mesh_retx_bound(6), 0)});
  derived.print(std::cout);

  std::cout << "\nAnalytic node power P̄ (Eq. 9) and lifetime for N=4:\n";
  TextTable power;
  power.set_header({"Tx level", "star P̄ (mW)", "star NLT (d)",
                    "mesh P̄ (mW)", "mesh NLT (d)"});
  for (int k = 0; k < chip.num_tx_levels(); ++k) {
    const auto star = scenario.make_config(t4, k, model::MacProtocol::kCsma,
                                           model::RoutingProtocol::kStar);
    const auto mesh = scenario.make_config(t4, k, model::MacProtocol::kCsma,
                                           model::RoutingProtocol::kMesh);
    power.add_row(
        {fmt_double(star.radio.tx_dbm, 0) + " dBm",
         fmt_double(model::node_power_mw(star), 3),
         fmt_double(seconds_to_days(model::analytic_nlt_s(star)), 1),
         fmt_double(model::node_power_mw(mesh), 3),
         fmt_double(seconds_to_days(model::analytic_nlt_s(mesh)), 1)});
  }
  power.print(std::cout);
  return 0;
}
