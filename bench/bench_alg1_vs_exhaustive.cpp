// Reproduces the paper's Sec. 4.2 efficiency claim: Algorithm 1 needs
// ~87% fewer simulations than exhaustive search while returning the same
// (simulation-accurate) optimum.
//
// One shared evaluation cache backs both explorers; the counters measure
// how many *distinct* design points each explorer requested, i.e. the
// simulations it would have paid for standalone.
#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "dse/explorer.hpp"
#include "obs/metrics.hpp"

int main() {
  using namespace hi;
  const dse::EvaluatorSettings settings = bench::experiment_settings();
  bench::banner("Sec. 4.2: Algorithm 1 vs exhaustive search (simulation "
                "count)",
                settings);

  model::Scenario scenario;
  dse::Evaluator eval(settings);
  // One registry accumulates the whole experiment; its snapshot is
  // emitted as JSON at the end so the perf trajectory gains counter
  // baselines (cache hits, B&B nodes, LP pivots, ...).
  obs::MetricsRegistry registry;

  // The exhaustive baseline simulates the whole feasible space once; its
  // per-PDRmin optimum is a post-processing step over that history.
  dse::ExplorationOptions sweep;
  sweep.pdr_min = 0.0;
  sweep.metrics = &registry;
  const dse::ExplorationResult exh_all =
      dse::run_exhaustive(scenario, eval, sweep);
  const std::uint64_t exhaustive_sims = exh_all.simulations;

  TextTable table;
  table.set_header({"PDRmin", "sound: match", "sound: sims",
                    "sound: reduction", "paper-alpha: match",
                    "paper-alpha: sims", "paper-alpha: reduction"});
  RunningStats red_sound, red_paper;
  for (double pdr_min : {0.50, 0.60, 0.70, 0.80, 0.90, 0.95, 0.99}) {
    // Exhaustive optimum at this bound, from the full sweep.
    bool exh_feasible = false;
    double exh_power = 0.0;
    for (const auto& rec : exh_all.history) {
      if (rec.sim_pdr >= pdr_min &&
          (!exh_feasible || rec.sim_power_mw < exh_power)) {
        exh_feasible = true;
        exh_power = rec.sim_power_mw;
      }
    }

    const auto run_mode = [&](dse::TerminationBound bound) {
      eval.reset_counters();
      dse::ExplorationOptions opt;
      opt.pdr_min = pdr_min;
      opt.bound = bound;
      opt.metrics = &registry;
      return dse::run_algorithm1(scenario, eval, opt);
    };
    const dse::ExplorationResult sound =
        run_mode(dse::TerminationBound::kSoundFloor);
    const dse::ExplorationResult paper =
        run_mode(dse::TerminationBound::kPaperAlpha);

    const auto match = [&](const dse::ExplorationResult& r) {
      return r.feasible == exh_feasible &&
             (!r.feasible || r.best_power_mw == exh_power);
    };
    const auto reduction = [&](const dse::ExplorationResult& r) {
      return 1.0 - static_cast<double>(r.simulations) /
                       static_cast<double>(exhaustive_sims);
    };
    red_sound.add(reduction(sound));
    red_paper.add(reduction(paper));
    table.add_row({fmt_percent(pdr_min, 0), match(sound) ? "yes" : "NO",
                   std::to_string(sound.simulations),
                   fmt_percent(reduction(sound), 1),
                   match(paper) ? "yes" : "NO",
                   std::to_string(paper.simulations),
                   fmt_percent(reduction(paper), 1)});
  }
  table.print(std::cout);
  std::cout << "\nfeasible design space: " << exhaustive_sims
            << " configurations\n"
            << "average reduction — sound floor: "
            << fmt_percent(red_sound.mean(), 1)
            << ", paper-literal alpha: " << fmt_percent(red_paper.mean(), 1)
            << "  (paper reports 87%)\n"
            << "the sound floor is guaranteed to match exhaustive search; "
               "the paper-literal alpha reproduces the 87% saving but can "
               "miss a cheap lossy configuration hiding on a pruned level "
               "(see DESIGN.md)\n";
  std::cout << "\nobs: ";
  registry.snapshot().write_json(std::cout);
  std::cout << "\n";
  return 0;
}
