// Ablation: MAC protocol choice (CSMA vs TDMA) across routing schemes
// and Tx power levels on the reference topologies.  Shows the mechanism
// behind the paper's MAC switches along the optimal ladder: CSMA is
// slightly cheaper when collisions are rare, but its relay-storm
// collisions cap the mesh PDR, which only TDMA's collision-free slots
// unlock.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "dse/evaluator.hpp"

int main() {
  using namespace hi;
  const dse::EvaluatorSettings settings = bench::experiment_settings();
  bench::banner("Ablation: CSMA vs TDMA across routing and Tx power",
                settings);

  model::Scenario scenario;
  dse::Evaluator eval(settings);

  TextTable table;
  table.set_header({"topology", "routing", "Tx", "PDR CSMA", "PDR TDMA",
                    "P CSMA (mW)", "P TDMA (mW)", "collisions CSMA",
                    "collisions TDMA"});
  for (const auto& topo :
       {model::Topology::from_locations({0, 1, 3, 5}),
        model::Topology::from_locations({0, 1, 3, 5, 7})}) {
    for (const auto rt :
         {model::RoutingProtocol::kStar, model::RoutingProtocol::kMesh}) {
      for (int lvl = 0; lvl < scenario.chip.num_tx_levels(); ++lvl) {
        const auto csma = scenario.make_config(
            topo, lvl, model::MacProtocol::kCsma, rt);
        const auto tdma = scenario.make_config(
            topo, lvl, model::MacProtocol::kTdma, rt);
        const dse::Evaluation& ec = eval.evaluate(csma);
        const dse::Evaluation& et = eval.evaluate(tdma);
        auto collisions = [](const net::SimResult& r) {
          std::uint64_t c = 0;
          for (const auto& n : r.nodes) c += n.radio.rx_corrupted;
          return c;
        };
        table.add_row({topo.to_string(), model::to_string(rt),
                       fmt_double(csma.radio.tx_dbm, 0) + "dBm",
                       fmt_percent(ec.pdr, 1), fmt_percent(et.pdr, 1),
                       fmt_double(ec.power_mw, 3), fmt_double(et.power_mw, 3),
                       std::to_string(collisions(ec.detail)),
                       std::to_string(collisions(et.detail))});
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: TDMA-CSMA PDR gap small for star, large "
               "for mesh (relay storms); TDMA mesh pays the full NreTx "
               "energy while CSMA mesh loses relays to collisions\n";
  return 0;
}
