// Measures the wall-clock speedup of hi::exec parallel batch evaluation
// for both explorers (exhaustive search and Algorithm 1) on the paper
// scenario, across thread counts, and emits a JSON report on stdout.
//
// Determinism is asserted on the fly: every thread count must return the
// same incumbent power and the same simulation count as the serial run
// (seed-from-design-key + common random numbers; see DESIGN.md
// "Execution model").  Each run gets a fresh Evaluator so no run is
// flattered by another's warm cache.
//
// Extra knobs: HI_THREADS_MAX (default 8) caps the sweep 0,1,2,4,...;
// the usual HI_TSIM / HI_RUNS / HI_SEED apply.
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/assert.hpp"
#include "dse/explorer.hpp"
#include "obs/snapshot.hpp"

namespace {

struct Point {
  int threads = 0;
  double wall_s = 0.0;
  std::uint64_t simulations = 0;
  double best_power_mw = 0.0;
  hi::obs::Snapshot obs;  ///< the run's metric delta
};

void print_points(const std::vector<Point>& points, const char* name,
                  bool last) {
  std::cout << "  \"" << name << "\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    const double serial = points.front().wall_s;
    std::cout << "    {\"threads\": " << p.threads << ", \"wall_s\": "
              << p.wall_s << ", \"simulations\": " << p.simulations
              << ", \"best_power_mw\": " << p.best_power_mw
              << ", \"speedup_vs_serial\": "
              << (p.wall_s > 0.0 ? serial / p.wall_s : 0.0) << ", \"obs\": ";
    p.obs.write_json(std::cout);
    std::cout << "}" << (i + 1 < points.size() ? "," : "") << "\n";
  }
  std::cout << "  ]" << (last ? "" : ",") << "\n";
}

}  // namespace

int main() {
  using namespace hi;
  const dse::EvaluatorSettings base = bench::experiment_settings();
  const long max_threads = bench::env_long("HI_THREADS_MAX", 8);
  std::vector<int> sweep{0, 1};
  for (int t = 2; t <= max_threads; t *= 2) {
    sweep.push_back(t);
  }

  std::cerr << "bench_parallel_speedup: Tsim=" << base.sim.duration_s
            << " s, runs=" << base.runs << ", seed=" << base.sim.seed
            << ", hardware threads=" << std::thread::hardware_concurrency()
            << " (JSON on stdout)\n";

  model::Scenario scenario;
  const double pdr_min = 0.9;

  std::vector<Point> exhaustive, algorithm1;
  for (const int threads : sweep) {
    // The thread count is an exploration knob now (ExplorationOptions),
    // not an evaluator setting: one options bag drives both explorers.
    dse::ExplorationOptions opt;
    opt.pdr_min = pdr_min;
    opt.threads = threads;
    {
      dse::Evaluator eval(base);
      const dse::ExplorationResult r =
          dse::run_exhaustive(scenario, eval, opt);
      exhaustive.push_back(Point{threads, r.wall_time_s, r.simulations,
                                 r.best_power_mw, r.metrics});
    }
    {
      dse::Evaluator eval(base);
      const dse::ExplorationResult r =
          dse::run_algorithm1(scenario, eval, opt);
      algorithm1.push_back(Point{threads, r.wall_time_s, r.simulations,
                                 r.best_power_mw, r.metrics});
    }
    std::cerr << "  threads=" << threads << ": exhaustive "
              << exhaustive.back().wall_s << " s, algorithm1 "
              << algorithm1.back().wall_s << " s\n";
  }

  // Determinism across thread counts is the subsystem's contract — and
  // the metric snapshot must mirror the legacy counter bit-for-bit.
  for (const std::vector<Point>* pts : {&exhaustive, &algorithm1}) {
    for (const Point& p : *pts) {
      HI_ASSERT_MSG(p.best_power_mw == pts->front().best_power_mw &&
                        p.simulations == pts->front().simulations,
                    "thread count " << p.threads
                                    << " changed the result — determinism "
                                       "contract violated");
      HI_ASSERT_MSG(p.obs.counter("dse.simulations") == p.simulations,
                    "snapshot dse.simulations diverged from the legacy "
                    "field at thread count "
                        << p.threads);
    }
  }

  std::cout << "{\n"
            << "  \"tsim_s\": " << base.sim.duration_s << ",\n"
            << "  \"runs\": " << base.runs << ",\n"
            << "  \"seed\": " << base.sim.seed << ",\n"
            << "  \"pdr_min\": " << pdr_min << ",\n"
            << "  \"hardware_threads\": "
            << std::thread::hardware_concurrency() << ",\n";
  print_points(exhaustive, "exhaustive", /*last=*/false);
  print_points(algorithm1, "algorithm1", /*last=*/true);
  std::cout << "}\n";
  return 0;
}
