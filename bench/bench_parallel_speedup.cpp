// Measures the wall-clock speedup of hi::exec parallel batch evaluation
// for both explorers (exhaustive search and Algorithm 1) on the paper
// scenario, across thread counts, and emits the "hi-bench/v1" JSON
// report on stdout (committed baseline: BENCH_parallel.json; DESIGN.md
// §11).
//
// Determinism is asserted on the fly: every thread count must return
// the same incumbent power and the same simulation count as the serial
// run (seed-from-design-key + common random numbers; see DESIGN.md
// "Execution model").  Each run gets a fresh Evaluator so no run is
// flattered by another's warm cache.  The deterministic outcomes
// (simulation counts, best power) are emitted as exact-gated metrics —
// the regression gate catches any behaviour change bit-for-bit — while
// wall clocks and speedups are trajectory-only (gate=false: this may
// run on a loaded 1-CPU container).
//
// Extra knobs: HI_THREADS_MAX (default 4) caps the sweep 0,1,2,4,...;
// the usual HI_TSIM / HI_RUNS / HI_SEED apply.
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/assert.hpp"
#include "dse/explorer.hpp"

namespace {

struct Point {
  int threads = 0;
  double wall_s = 0.0;
  std::uint64_t simulations = 0;
  double best_power_mw = 0.0;
};

void emit(hi::bench::BenchReport& rep, const std::vector<Point>& points,
          const std::string& name, bool gate_exact) {
  using hi::bench::BenchMetric;
  for (const Point& p : points) {
    const std::string t = "_t" + std::to_string(p.threads);
    rep.add(BenchMetric{name + "_wall" + t, "s", p.wall_s, "lower",
                        /*gate=*/false, p.simulations, p.wall_s});
    if (p.threads > 0) {
      const double serial = points.front().wall_s;
      rep.add(BenchMetric{name + "_speedup" + t, "x",
                          p.wall_s > 0.0 ? serial / p.wall_s : 0.0, "higher",
                          /*gate=*/false, 0, p.wall_s});
    }
  }
  // The deterministic outcome of the sweep — identical at every thread
  // count (asserted below), so emitted once.
  rep.add(BenchMetric{name + "_simulations", "count",
                      static_cast<double>(points.front().simulations),
                      "exact", gate_exact, points.front().simulations, 0.0});
  rep.add(BenchMetric{name + "_best_power_mw", "mW",
                      points.front().best_power_mw, "exact", gate_exact, 0,
                      0.0});
}

}  // namespace

int main() {
  using namespace hi;
  const dse::EvaluatorSettings base = bench::experiment_settings();
  const long max_threads = bench::env_long("HI_THREADS_MAX", 4);
  std::vector<int> sweep{0, 1};
  for (int t = 2; t <= max_threads; t *= 2) {
    sweep.push_back(t);
  }

  std::cerr << "bench_parallel_speedup: Tsim=" << base.sim.duration_s
            << " s, runs=" << base.runs << ", seed=" << base.sim.seed
            << ", hardware threads=" << std::thread::hardware_concurrency()
            << " (JSON on stdout)\n";

  model::Scenario scenario;
  const double pdr_min = 0.9;

  std::vector<Point> exhaustive, algorithm1;
  for (const int threads : sweep) {
    // The thread count is an exploration knob (ExplorationOptions): one
    // options bag drives both explorers.
    dse::ExplorationOptions opt;
    opt.pdr_min = pdr_min;
    opt.threads = threads;
    {
      dse::Evaluator eval(base);
      const dse::ExplorationResult r =
          dse::run_exhaustive(scenario, eval, opt);
      exhaustive.push_back(
          Point{threads, r.wall_time_s, r.simulations, r.best_power_mw});
      HI_ASSERT_MSG(r.metrics.counter("dse.simulations") == r.simulations,
                    "snapshot dse.simulations diverged from the legacy field "
                    "at thread count "
                        << threads);
    }
    {
      dse::Evaluator eval(base);
      const dse::ExplorationResult r =
          dse::run_algorithm1(scenario, eval, opt);
      algorithm1.push_back(
          Point{threads, r.wall_time_s, r.simulations, r.best_power_mw});
    }
    std::cerr << "  threads=" << threads << ": exhaustive "
              << exhaustive.back().wall_s << " s, algorithm1 "
              << algorithm1.back().wall_s << " s\n";
  }

  // Determinism across thread counts is the subsystem's contract.
  for (const std::vector<Point>* pts : {&exhaustive, &algorithm1}) {
    for (const Point& p : *pts) {
      HI_ASSERT_MSG(p.best_power_mw == pts->front().best_power_mw &&
                        p.simulations == pts->front().simulations,
                    "thread count " << p.threads
                                    << " changed the result — determinism "
                                       "contract violated");
    }
  }

  // Extensive counts depend on Tsim/runs, so they are only gateable when
  // the settings match the committed full-run baseline.
  const bool gate_exact = !bench::quick_mode();
  bench::BenchReport rep("parallel", base);
  emit(rep, exhaustive, "exhaustive", gate_exact);
  emit(rep, algorithm1, "algorithm1", gate_exact);
  rep.write(std::cout);
  return 0;
}
