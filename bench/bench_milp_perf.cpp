// Microbenchmarks of the optimization stack (google-benchmark): dense
// simplex solves, branch-and-bound, alternative-optimum enumeration, and
// the full DSE MILP round.  These are the knobs that decide whether the
// MILP half of Algorithm 1 is negligible next to the simulations (it
// must be — in the paper CPLEX solves are instant next to Castalia).
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "dse/milp_encoding.hpp"
#include "lp/simplex.hpp"
#include "milp/solver.hpp"
#include "model/design_space.hpp"

namespace {

using namespace hi;

/// Random dense-ish LP with n variables and m <= rows.
lp::Problem random_lp(int n, int m, std::uint64_t seed) {
  Rng rng(seed);
  lp::Problem p;
  p.set_objective(lp::Objective::kMaximize);
  for (int j = 0; j < n; ++j) {
    p.add_variable(0.0, rng.uniform(0.5, 4.0), rng.uniform(0.0, 3.0));
  }
  for (int r = 0; r < m; ++r) {
    std::vector<lp::Term> terms;
    for (int j = 0; j < n; ++j) {
      terms.push_back({j, rng.uniform(0.0, 2.0)});
    }
    p.add_constraint(terms, lp::Sense::kLessEqual, rng.uniform(1.0, 5.0));
  }
  return p;
}

void BM_SimplexSolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const lp::Problem p = random_lp(n, n, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lp::solve_simplex(p));
  }
}
BENCHMARK(BM_SimplexSolve)->Arg(10)->Arg(40)->Arg(80);

void BM_MilpKnapsack(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(7);
  milp::Model m;
  m.set_objective(lp::Objective::kMaximize);
  std::vector<lp::Term> row;
  for (int j = 0; j < n; ++j) {
    m.add_binary(rng.uniform(1.0, 10.0));
    row.push_back({j, rng.uniform(1.0, 10.0)});
  }
  m.add_constraint(row, lp::Sense::kLessEqual, 2.5 * n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(milp::solve(m));
  }
}
BENCHMARK(BM_MilpKnapsack)->Arg(10)->Arg(20);

void BM_MilpPoolEnumeration(benchmark::State& state) {
  // k interchangeable binaries, pick exactly 2: C(k,2) alternative optima.
  const int k = static_cast<int>(state.range(0));
  milp::Model m;
  std::vector<lp::Term> sum;
  for (int j = 0; j < k; ++j) {
    m.add_binary(1.0);
    sum.push_back({j, 1.0});
  }
  m.add_constraint(sum, lp::Sense::kEqual, 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(milp::solve_all_optimal(m));
  }
}
BENCHMARK(BM_MilpPoolEnumeration)->Arg(6)->Arg(10);

void BM_DseMilpRound(benchmark::State& state) {
  const model::Scenario scenario;
  for (auto _ : state) {
    dse::MilpEncoding enc(scenario);
    benchmark::DoNotOptimize(enc.run_milp());
  }
}
BENCHMARK(BM_DseMilpRound);

void BM_DseMilpAllLevels(benchmark::State& state) {
  const model::Scenario scenario;
  for (auto _ : state) {
    dse::MilpEncoding enc(scenario);
    int levels = 0;
    for (;;) {
      const dse::MilpRound r = enc.run_milp();
      if (r.status != lp::Status::kOptimal) break;
      ++levels;
      enc.add_power_cut_above(r.power_mw);
    }
    benchmark::DoNotOptimize(levels);
  }
}
BENCHMARK(BM_DseMilpAllLevels);

}  // namespace

BENCHMARK_MAIN();
