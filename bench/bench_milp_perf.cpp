// Microbenchmarks of the optimization stack: dense simplex solves,
// branch-and-bound, alternative-optimum enumeration, and the full DSE
// MILP round.  These are the knobs that decide whether the MILP half of
// Algorithm 1 is negligible next to the simulations (it must be — in
// the paper CPLEX solves are instant next to Castalia).  Committed
// baseline: BENCH_milp_perf.json (DESIGN.md §11).
//
// Emits the "hi-bench/v1" JSON report on stdout; progress on stderr.
// All rate metrics are intensive, so HI_BENCH_QUICK runs remain
// comparable to full baselines within the wider quick tolerance.
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "dse/milp_encoding.hpp"
#include "lp/simplex.hpp"
#include "milp/solver.hpp"
#include "model/design_space.hpp"

namespace {

using namespace hi;

volatile std::uint64_t g_sink = 0;  ///< defeats dead-code elimination

/// Random dense-ish LP with n variables and m rows.
lp::Problem random_lp(int n, int m, std::uint64_t seed) {
  Rng rng(seed);
  lp::Problem p;
  p.set_objective(lp::Objective::kMaximize);
  for (int j = 0; j < n; ++j) {
    p.add_variable(0.0, rng.uniform(0.5, 4.0), rng.uniform(0.0, 3.0));
  }
  for (int r = 0; r < m; ++r) {
    std::vector<lp::Term> terms;
    for (int j = 0; j < n; ++j) {
      terms.push_back({j, rng.uniform(0.0, 2.0)});
    }
    p.add_constraint(terms, lp::Sense::kLessEqual, rng.uniform(1.0, 5.0));
  }
  return p;
}

void simplex_solve(bench::BenchReport& rep, int reps, int n, int solves) {
  const lp::Problem p = random_lp(n, n, 42);
  const double wall = bench::time_best_of(reps, [&] {
    for (int i = 0; i < solves; ++i) {
      g_sink = g_sink + static_cast<std::uint64_t>(lp::solve_simplex(p).status);
    }
  });
  rep.add_rate("simplex_solve_n" + std::to_string(n), "solves/s",
               static_cast<std::uint64_t>(solves), wall);
}

void milp_knapsack(bench::BenchReport& rep, int reps, int n, int solves) {
  Rng rng(7);
  milp::Model m;
  m.set_objective(lp::Objective::kMaximize);
  std::vector<lp::Term> row;
  for (int j = 0; j < n; ++j) {
    m.add_binary(rng.uniform(1.0, 10.0));
    row.push_back({j, rng.uniform(1.0, 10.0)});
  }
  m.add_constraint(row, lp::Sense::kLessEqual, 2.5 * n);
  const double wall = bench::time_best_of(reps, [&] {
    for (int i = 0; i < solves; ++i) {
      g_sink = g_sink + static_cast<std::uint64_t>(milp::solve(m).status);
    }
  });
  rep.add_rate("milp_knapsack_n" + std::to_string(n), "solves/s",
               static_cast<std::uint64_t>(solves), wall);
}

void milp_pool(bench::BenchReport& rep, int reps, int k, int solves) {
  // k interchangeable binaries, pick exactly 2: C(k,2) alternative optima.
  milp::Model m;
  std::vector<lp::Term> sum;
  for (int j = 0; j < k; ++j) {
    m.add_binary(1.0);
    sum.push_back({j, 1.0});
  }
  m.add_constraint(sum, lp::Sense::kEqual, 2.0);
  const double wall = bench::time_best_of(reps, [&] {
    for (int i = 0; i < solves; ++i) {
      g_sink = g_sink + milp::solve_all_optimal(m).solutions.size();
    }
  });
  rep.add_rate("milp_pool_k" + std::to_string(k), "enumerations/s",
               static_cast<std::uint64_t>(solves), wall);
}

void dse_milp_round(bench::BenchReport& rep, int reps, int rounds) {
  const model::Scenario scenario;
  const double wall = bench::time_best_of(reps, [&] {
    for (int i = 0; i < rounds; ++i) {
      dse::MilpEncoding enc(scenario);
      g_sink = g_sink + enc.run_milp().candidates.size();
    }
  });
  rep.add_rate("dse_milp_round", "rounds/s",
               static_cast<std::uint64_t>(rounds), wall);
}

void dse_milp_all_levels(bench::BenchReport& rep, int reps, int sweeps) {
  const model::Scenario scenario;
  const double wall = bench::time_best_of(reps, [&] {
    for (int i = 0; i < sweeps; ++i) {
      dse::MilpEncoding enc(scenario);
      for (;;) {
        const dse::MilpRound r = enc.run_milp();
        if (r.status != lp::Status::kOptimal) break;
        g_sink = g_sink + 1;
        enc.add_power_cut_above(r.power_mw);
      }
    }
  });
  rep.add_rate("dse_milp_all_levels", "sweeps/s",
               static_cast<std::uint64_t>(sweeps), wall);
}

}  // namespace

int main() {
  const bool quick = bench::quick_mode();
  const int reps = quick ? 2 : 3;
  const int scale = quick ? 4 : 1;  // divide iteration counts by this

  std::cerr << "bench_milp_perf: " << (quick ? "quick" : "full")
            << " (JSON on stdout)\n";

  bench::BenchReport rep("milp_perf", bench::experiment_settings());
  simplex_solve(rep, reps, 10, 400 / scale);
  simplex_solve(rep, reps, 40, 40 / scale);
  simplex_solve(rep, reps, 80, 12 / scale);
  milp_knapsack(rep, reps, 10, 40 / scale);
  milp_knapsack(rep, reps, 20, 4 / scale);
  milp_pool(rep, reps, 6, 40 / scale);
  milp_pool(rep, reps, 10, 8 / scale);
  dse_milp_round(rep, reps, 20 / scale);
  dse_milp_all_levels(rep, reps, 4 / scale);

  rep.write(std::cout);
  return 0;
}
