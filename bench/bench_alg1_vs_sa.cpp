// Reproduces the paper's Sec. 4.2 baseline comparison: Algorithm 1 vs
// simulated annealing across the PDRmin range of interest (50..100%).
// The paper reports Algorithm 1 converging ~3x faster; the fair metric
// is cost-to-equal-quality, so we run the annealer with a generous
// budget and count the simulations it needs before its incumbent first
// matches Algorithm 1's optimum (within 2%).
#include <iostream>
#include <set>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "dse/explorer.hpp"

namespace {

/// Annealer cost until its best feasible candidate reached
/// `target_power * (1 + tol)`.  Two countings:
///   steps  — every annealing step simulates, as in the paper's
///            cache-less `simanneal` baseline (the 3x claim's metric);
///   unique — distinct design points only (a cache-assisted annealer).
/// Returns {budget+1, budget+1} when the target was never reached.
struct SaCost {
  std::uint64_t steps;
  std::uint64_t unique;
};

SaCost cost_to_match(const hi::dse::ExplorationResult& sa, double pdr_min,
                     double target_power, double tol = 0.05) {
  std::set<std::uint64_t> seen;
  std::uint64_t step = 0;
  for (const auto& rec : sa.history) {
    ++step;
    seen.insert(rec.cfg.design_key());
    if (rec.sim_pdr >= pdr_min &&
        rec.sim_power_mw <= target_power * (1.0 + tol)) {
      return {step, seen.size()};
    }
  }
  return {sa.history.size() + 1, sa.simulations + 1};
}

}  // namespace

int main() {
  using namespace hi;
  const dse::EvaluatorSettings settings = bench::experiment_settings();
  bench::banner("Sec. 4.2: Algorithm 1 vs simulated annealing", settings);

  model::Scenario scenario;
  dse::Evaluator eval(settings);  // one cache; counters reset per explorer
  const int sa_steps =
      static_cast<int>(bench::env_long("HI_SA_STEPS", 1500));

  TextTable table;
  table.set_header({"PDRmin", "Alg.1 P (mW)", "SA best P (mW)",
                    "sims Alg.1", "SA steps to match", "SA unique to match",
                    "ratio (steps)"});
  RunningStats sim_ratio;
  for (double pdr_min : {0.50, 0.60, 0.70, 0.80, 0.90, 0.95, 0.99}) {
    eval.reset_counters();
    dse::ExplorationOptions a1;
    a1.pdr_min = pdr_min;
    // The paper's own configuration of Algorithm 1 (its literal alpha
    // rule) — this bench reproduces the paper's comparison; the sound
    // variant is measured in bench_alg1_vs_exhaustive.
    a1.bound = dse::TerminationBound::kPaperAlpha;
    const dse::ExplorationResult alg = dse::run_algorithm1(scenario, eval, a1);

    eval.reset_counters();
    dse::ExplorationOptions sa;
    sa.pdr_min = pdr_min;
    sa.budget = sa_steps;
    sa.seed = settings.sim.seed ^ 0xA11EA1;
    const dse::ExplorationResult ann = dse::run_annealing(scenario, eval, sa);

    if (!alg.feasible) {
      table.add_row({fmt_percent(pdr_min, 0), "(infeasible)"});
      continue;
    }
    const SaCost cost = cost_to_match(ann, pdr_min, alg.best_power_mw);
    const bool matched = cost.steps <= ann.history.size();
    if (alg.simulations > 0) {
      // A run that never matched contributes its full budget as a lower
      // bound on the true cost.
      sim_ratio.add(static_cast<double>(cost.steps) /
                    static_cast<double>(alg.simulations));
    }
    table.add_row(
        {fmt_percent(pdr_min, 0), fmt_double(alg.best_power_mw, 3),
         ann.feasible ? fmt_double(ann.best_power_mw, 3) : "-",
         std::to_string(alg.simulations),
         matched ? std::to_string(cost.steps)
                 : ">" + std::to_string(ann.history.size()) + " (never)",
         matched ? std::to_string(cost.unique) : "-",
         matched ? fmt_double(static_cast<double>(cost.steps) /
                                  static_cast<double>(alg.simulations),
                              2) + "x"
                 : "-"});
  }
  table.print(std::cout);
  std::cout << "\nSA budget: " << sa_steps
            << " steps (HI_SA_STEPS to override).  'Steps' is the paper's "
               "cost model (the simanneal baseline simulates every step); "
               "'unique' is what a cache-assisted annealer would pay.  "
               "Simulation counts are the machine-independent cost "
               "(simulations dominate wall time at the paper's Tsim)\n"
            << "average SA/Alg.1 cost ratio to reach the same optimum "
               "(within 5%; never-matched rows enter at their full budget, "
               "a lower bound): "
            << fmt_double(sim_ratio.mean(), 2)
            << "x  (paper reports Alg.1 ~3x faster)\n";
  return 0;
}
