// Microbenchmarks of the discrete-event simulator (google-benchmark):
// kernel event throughput and end-to-end WBAN simulation speed per
// configuration class.  These numbers bound how large a Tsim / design
// space the explorer can afford.
#include <benchmark/benchmark.h>

#include "channel/channel.hpp"
#include "des/kernel.hpp"
#include "model/design_space.hpp"
#include "net/network.hpp"

namespace {

using namespace hi;

void BM_KernelScheduleRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    des::Kernel k;
    int fired = 0;
    for (int i = 0; i < n; ++i) {
      k.schedule_at(static_cast<double>((i * 48271) % n),
                    [&fired] { ++fired; });
    }
    k.run_to_completion();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_KernelScheduleRun)->Arg(1'000)->Arg(100'000);

void BM_KernelSelfRescheduling(benchmark::State& state) {
  for (auto _ : state) {
    des::Kernel k;
    int count = 0;
    std::function<void()> tick = [&] {
      if (++count < 10'000) k.schedule_in(0.001, tick);
    };
    k.schedule_in(0.001, tick);
    k.run_to_completion();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_KernelSelfRescheduling);

void BM_Simulate(benchmark::State& state) {
  const bool mesh = state.range(0) != 0;
  const bool tdma = state.range(1) != 0;
  const model::Scenario scenario;
  const auto cfg = scenario.make_config(
      model::Topology::from_locations({0, 1, 3, 5, 7}), 2,
      tdma ? model::MacProtocol::kTdma : model::MacProtocol::kCsma,
      mesh ? model::RoutingProtocol::kMesh : model::RoutingProtocol::kStar);
  net::SimParams sp;
  sp.duration_s = 60.0;
  std::uint64_t events = 0;
  for (auto _ : state) {
    auto channel = channel::make_default_body_channel(11);
    const net::SimResult r = net::simulate(cfg, *channel, sp);
    events += r.events;
    benchmark::DoNotOptimize(r.pdr);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetLabel(std::string(mesh ? "mesh" : "star") + "/" +
                 (tdma ? "TDMA" : "CSMA") + " N=5, 60 s sim");
}
BENCHMARK(BM_Simulate)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({1, 0})
    ->Args({1, 1});

void BM_ChannelSample(benchmark::State& state) {
  auto ch = channel::make_default_body_channel(3);
  double t = 0.0;
  double acc = 0.0;
  for (auto _ : state) {
    t += 0.01;
    acc += ch->path_loss_db(0, 3, t);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_ChannelSample);

}  // namespace

BENCHMARK_MAIN();
