// Microbenchmarks of the discrete-event simulator: kernel event
// throughput (schedule/run, self-rescheduling, cancellation churn),
// end-to-end WBAN simulation speed per configuration class on the paper
// scenario, and channel sampling cost.  These numbers bound how large a
// Tsim / design space the explorer can afford; the committed baseline
// (BENCH_des_perf.json) is the repo's perf trajectory for the hot path
// (DESIGN.md §11).
//
// Emits the "hi-bench/v1" JSON report on stdout; progress on stderr.
// All rate metrics are intensive (per-second), so HI_BENCH_QUICK runs
// remain comparable to full baselines within the wider quick tolerance.
// The crowd metrics keep the full simulated duration even in quick mode:
// their timed region includes the O(M^2) CrowdChannel construction, a
// fixed cost that would dominate a shortened run and sink the rate.
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "channel/channel.hpp"
#include "crowd/crowd.hpp"
#include "des/kernel.hpp"
#include "model/crowd.hpp"
#include "model/design_space.hpp"
#include "net/network.hpp"

namespace {

using namespace hi;

volatile std::uint64_t g_sink = 0;  ///< defeats dead-code elimination

/// Schedule n events at pseudo-random times, then drain the heap.
void kernel_schedule_run(bench::BenchReport& rep, int reps, std::int64_t n) {
  std::uint64_t fired = 0;
  const double wall = bench::time_best_of(reps, [&] {
    des::Kernel k;
    fired = 0;
    for (std::int64_t i = 0; i < n; ++i) {
      // 64-bit arithmetic: i * 48271 overflows int near n = 50k.
      k.schedule_at(static_cast<double>((i * 48271) % n),
                    [&fired] { ++fired; });
    }
    k.run_to_completion();
  });
  g_sink = g_sink + fired;
  rep.add_rate("kernel_schedule_run", "events/s",
               static_cast<std::uint64_t>(n), wall);
}

/// One event alive at a time, rescheduling itself: the latency floor.
void kernel_self_resched(bench::BenchReport& rep, int reps, int ticks) {
  int count = 0;
  const double wall = bench::time_best_of(reps, [&] {
    des::Kernel k;
    count = 0;
    struct Tick {
      des::Kernel* k;
      int* count;
      int limit;
      void operator()() const {
        if (++*count < limit) k->schedule_in(0.001, *this);
      }
    };
    k.schedule_in(0.001, Tick{&k, &count, ticks});
    k.run_to_completion();
  });
  g_sink = g_sink + static_cast<std::uint64_t>(count);
  rep.add_rate("kernel_self_resched", "events/s",
               static_cast<std::uint64_t>(ticks), wall);
}

/// Schedule n, cancel every other one, drain: exercises the indexed
/// heap's O(log n) in-place removal.
void kernel_cancel_churn(bench::BenchReport& rep, int reps, std::int64_t n) {
  std::uint64_t fired = 0;
  std::vector<des::EventId> ids;
  ids.reserve(static_cast<std::size_t>(n));
  const double wall = bench::time_best_of(reps, [&] {
    des::Kernel k;
    ids.clear();
    fired = 0;
    for (std::int64_t i = 0; i < n; ++i) {
      ids.push_back(k.schedule_at(static_cast<double>((i * 48271) % n),
                                  [&fired] { ++fired; }));
    }
    for (std::int64_t i = 0; i < n; i += 2) {
      k.cancel(ids[static_cast<std::size_t>(i)]);
    }
    k.run_to_completion();
  });
  g_sink = g_sink + fired;
  // Ops = schedules + cancels + dispatches.
  rep.add_rate("kernel_cancel_churn", "ops/s",
               static_cast<std::uint64_t>(n + n / 2 + n / 2), wall);
}

/// End-to-end simulation throughput on the paper scenario (N=5,
/// locations {chest, l-hip, l-ankle, l-wrist, l-upper-arm}, Tx level 2).
void simulate_class(bench::BenchReport& rep, int reps, bool mesh, bool tdma,
                    double tsim_s) {
  const model::Scenario scenario;
  const auto cfg = scenario.make_config(
      model::Topology::from_locations({0, 1, 3, 5, 7}), 2,
      tdma ? model::MacProtocol::kTdma : model::MacProtocol::kCsma,
      mesh ? model::RoutingProtocol::kMesh : model::RoutingProtocol::kStar);
  net::SimParams sp;
  sp.duration_s = tsim_s;
  std::uint64_t events = 0;
  const double wall = bench::time_best_of(reps, [&] {
    auto channel = channel::make_default_body_channel(11);
    const net::SimResult r = net::simulate(cfg, *channel, sp);
    events = r.events;
  });
  g_sink = g_sink + events;
  const std::string name = std::string("sim_") + (mesh ? "mesh" : "star") +
                           "_" + (tdma ? "tdma" : "csma");
  rep.add_rate(name, "events/s", events, wall);
}

/// Crowd simulation throughput (DESIGN.md §15): M replicas of the
/// paper's N=5 star/CSMA point on a dense 0.5 m grid sharing one
/// medium.  Every cross-body pair sits well above sensitivity, so the
/// batched inter-body fade sampling and the per-reception SINR folding
/// are both fully on the hot path — this is the number that bounds how
/// large a crowd sweep the explorer can afford.
void simulate_crowd_class(bench::BenchReport& rep, int reps, int bodies,
                          double tsim_s) {
  const model::Scenario scenario;
  model::CrowdScenario sc;
  sc.cfg = scenario.make_config(
      model::Topology::from_locations({0, 1, 3, 5, 7}), 2,
      model::MacProtocol::kCsma, model::RoutingProtocol::kStar);
  sc.bodies = bodies;
  sc.spacing_m = 0.5;
  net::SimParams sp;
  sp.duration_s = tsim_s;
  std::uint64_t events = 0;
  const double wall = bench::time_best_of(reps, [&] {
    auto channel = crowd::make_crowd_channel_for(sc, 11);
    const crowd::CrowdResult r = crowd::simulate_crowd(sc, *channel, sp);
    events = r.summary.events;
  });
  g_sink = g_sink + events;
  rep.add_rate("sim_crowd_m" + std::to_string(bodies), "events/s", events,
               wall);
}

void channel_sample(bench::BenchReport& rep, int reps, std::int64_t n) {
  auto ch = channel::make_default_body_channel(3);
  double acc = 0.0;
  double t = 0.0;
  const double wall = bench::time_best_of(reps, [&] {
    for (std::int64_t i = 0; i < n; ++i) {
      t += 0.01;
      acc += ch->path_loss_db(0, 3, t);
    }
  });
  g_sink = g_sink + static_cast<std::uint64_t>(acc);
  rep.add_rate("channel_sample", "samples/s", static_cast<std::uint64_t>(n),
               wall);
}

}  // namespace

int main() {
  const bool quick = bench::quick_mode();
  const int reps = quick ? 2 : 3;
  dse::EvaluatorSettings s = bench::experiment_settings();
  // The simulate metrics use a fixed per-run duration so the committed
  // baseline is comparable across machines/settings; quick mode shrinks
  // it (events/s barely moves — the startup transient is tiny).
  const double tsim_s = quick ? 10.0 : 60.0;
  s.sim.duration_s = tsim_s;

  std::cerr << "bench_des_perf: " << (quick ? "quick" : "full")
            << " (JSON on stdout)\n";

  bench::BenchReport rep("des_perf", s);
  kernel_schedule_run(rep, reps, quick ? 20'000 : 100'000);
  kernel_self_resched(rep, reps, quick ? 2'000 : 10'000);
  kernel_cancel_churn(rep, reps, quick ? 10'000 : 50'000);
  simulate_class(rep, reps, /*mesh=*/false, /*tdma=*/false, tsim_s);
  simulate_class(rep, reps, /*mesh=*/false, /*tdma=*/true, tsim_s);
  simulate_class(rep, reps, /*mesh=*/true, /*tdma=*/false, tsim_s);
  simulate_class(rep, reps, /*mesh=*/true, /*tdma=*/true, tsim_s);
  simulate_crowd_class(rep, reps, /*bodies=*/2, /*tsim_s=*/60.0);
  simulate_crowd_class(rep, reps, /*bodies=*/8, /*tsim_s=*/60.0);
  channel_sample(rep, reps, quick ? 200'000 : 1'000'000);

  rep.write(std::cout);
  return 0;
}
