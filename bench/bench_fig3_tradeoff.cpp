// Reproduces paper Figure 3: packet delivery ratio vs network lifetime
// for every feasible network configuration, with the optimal
// configuration per PDRmin highlighted (the figure's arrows).
//
// The full scatter comes from one exhaustive pass over the constrained
// design space; the arrows come from running Algorithm 1 at each PDRmin
// on the warmed cache (so the arrow legs pay zero extra simulations).
//
// Emits the canonical "hi-bench/v1" JSON on stdout (committed baseline
// BENCH_fig3.json, run and gated by scripts/bench.sh); the human-
// readable scatter and arrow tables go to stderr.  Settings are pinned
// (as in bench_robust_dse): the exact-gated metrics — feasible-config
// count, envelope, arrow optima and simulation counts — are only
// reproducible under them.
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/assert.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "dse/explorer.hpp"

namespace {

using namespace hi;

dse::EvaluatorSettings pinned_settings(bool quick) {
  dse::EvaluatorSettings s;
  s.sim.duration_s = quick ? 2.0 : 5.0;
  s.sim.seed = 2017;
  s.runs = 1;
  return s;
}

}  // namespace

int main() {
  using namespace hi;
  const bool quick = bench::quick_mode();
  const dse::EvaluatorSettings settings = pinned_settings(quick);
  const model::Scenario scenario{};  // the paper example
  bench::BenchReport report("fig3", settings);
  std::cerr << "bench_fig3_tradeoff: quick=" << quick
            << " (hi-bench/v1 JSON on stdout)\n";

  dse::Evaluator eval(settings);

  // ---- Full scatter (exhaustive pass; also warms the cache). -------------
  dse::ExplorationOptions sweep_opt;
  sweep_opt.pdr_min = 0.0;
  const dse::ExplorationResult sweep =
      dse::run_exhaustive(scenario, eval, sweep_opt);
  std::cerr << "feasible configurations: " << sweep.history.size()
            << " (raw design space: " << scenario.raw_design_space_size()
            << ")\n";
  report.add(bench::BenchMetric{"feasible_configs", "count",
                                static_cast<double>(sweep.history.size()),
                                "exact", true, sweep.history.size(), 0.0});
  report.add_rate("sweep_eval_rate", "evals/s", sweep.simulations,
                  sweep.wall_time_s);

  std::vector<dse::CandidateRecord> records = sweep.history;
  std::sort(records.begin(), records.end(),
            [](const auto& a, const auto& b) {
              return a.sim_nlt_s > b.sim_nlt_s;
            });
  TextTable scatter;
  scatter.set_header({"configuration", "NLT (days)", "PDR (%)",
                      "P_sim (mW)", "P_analytic (mW)"});
  for (const auto& r : records) {
    scatter.add_row({r.cfg.label(),
                     fmt_double(seconds_to_days(r.sim_nlt_s), 2),
                     fmt_double(r.sim_pdr * 100.0, 2),
                     fmt_double(r.sim_power_mw, 3),
                     fmt_double(r.analytic_power_mw, 3)});
  }
  scatter.print_csv(std::cerr);

  // Envelope summary (the figure's visual spread) — deterministic, so
  // exact-gated: a drifting envelope means the simulator moved.
  double pdr_lo = 1.0, pdr_hi = 0.0, nlt_lo = 1e18, nlt_hi = 0.0;
  for (const auto& r : records) {
    pdr_lo = std::min(pdr_lo, r.sim_pdr);
    pdr_hi = std::max(pdr_hi, r.sim_pdr);
    nlt_lo = std::min(nlt_lo, r.sim_nlt_s);
    nlt_hi = std::max(nlt_hi, r.sim_nlt_s);
  }
  std::cerr << "envelope: PDR " << fmt_percent(pdr_lo, 1) << " .. "
            << fmt_percent(pdr_hi, 1) << ", NLT "
            << fmt_double(seconds_to_days(nlt_lo), 1) << " .. "
            << fmt_double(seconds_to_days(nlt_hi), 1) << " days"
            << "  (paper: 0..100%, ~2 days..1 month+)\n";
  report.add(bench::BenchMetric{"envelope_pdr_lo", "ratio", pdr_lo, "exact",
                                !quick, 0, 0.0});
  report.add(bench::BenchMetric{"envelope_pdr_hi", "ratio", pdr_hi, "exact",
                                !quick, 0, 0.0});
  report.add(bench::BenchMetric{"envelope_nlt_lo", "s", nlt_lo, "exact",
                                !quick, 0, 0.0});
  report.add(bench::BenchMetric{"envelope_nlt_hi", "s", nlt_hi, "exact",
                                !quick, 0, 0.0});

  // ---- The arrows: optimum per PDRmin via Algorithm 1. --------------------
  std::cerr << "Optimal configuration per PDRmin (the figure's arrows):\n";
  TextTable arrows;
  arrows.set_header({"PDRmin", "optimal configuration", "PDR (%)",
                     "NLT (days)", "P_sim (mW)", "sims"});
  for (const double pdr_min : {0.50, 0.70, 0.90, 0.95, 0.99}) {
    eval.reset_counters();  // count each run as if it stood alone
    dse::ExplorationOptions opt;
    opt.pdr_min = pdr_min;
    const dse::ExplorationResult res =
        dse::run_algorithm1(scenario, eval, opt);
    const std::string suffix =
        "_p" + std::to_string(static_cast<int>(pdr_min * 100.0));
    report.add(bench::BenchMetric{"arrow_feasible" + suffix, "count",
                                  res.feasible ? 1.0 : 0.0, "exact", !quick,
                                  0, 0.0});
    report.add(bench::BenchMetric{"arrow_power" + suffix, "mW",
                                  res.feasible ? res.best_power_mw : 0.0,
                                  "exact", !quick, 0, 0.0});
    report.add(bench::BenchMetric{"arrow_sims" + suffix, "count",
                                  static_cast<double>(res.simulations),
                                  "exact", !quick, res.simulations, 0.0});
    if (res.feasible) {
      arrows.add_row({fmt_percent(pdr_min, 1), res.best.label(),
                      fmt_double(res.best_pdr * 100.0, 2),
                      fmt_double(seconds_to_days(res.best_nlt_s), 1),
                      fmt_double(res.best_power_mw, 3),
                      std::to_string(res.simulations)});
    } else {
      arrows.add_row({fmt_percent(pdr_min, 1), "(infeasible)", "-", "-", "-",
                      std::to_string(res.simulations)});
    }
  }
  arrows.print(std::cerr);
  std::cerr << "paper's arrow ladder: star/-10dBm (low PDRmin) -> "
               "star/0dBm -> mesh/0dBm -> 5-node mesh (highest PDRmin)\n";

  report.write(std::cout);
  return 0;
}
