// Reproduces paper Figure 3: packet delivery ratio vs network lifetime
// for every feasible network configuration, with the optimal
// configuration per PDRmin highlighted (the figure's arrows).
//
// The full scatter comes from one exhaustive pass over the constrained
// design space; the arrows come from running Algorithm 1 at each PDRmin.
// Output: one CSV-ish row per configuration (for replotting) plus the
// arrow table.
#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "dse/explorer.hpp"

int main() {
  using namespace hi;
  const dse::EvaluatorSettings settings = bench::experiment_settings();
  bench::banner("Figure 3: reliability vs lifetime of feasible "
                "configurations",
                settings);

  model::Scenario scenario;
  dse::Evaluator eval(settings);

  // ---- Full scatter (exhaustive pass; also warms the cache). -------------
  dse::ExplorationOptions sweep_opt;
  sweep_opt.pdr_min = 0.0;
  const dse::ExplorationResult sweep =
      dse::run_exhaustive(scenario, eval, sweep_opt);
  std::cout << "feasible configurations: " << sweep.history.size()
            << " (raw design space: " << scenario.raw_design_space_size()
            << ")\n\n";

  std::vector<dse::CandidateRecord> records = sweep.history;
  std::sort(records.begin(), records.end(),
            [](const auto& a, const auto& b) {
              return a.sim_nlt_s > b.sim_nlt_s;
            });
  TextTable scatter;
  scatter.set_header({"configuration", "NLT (days)", "PDR (%)",
                      "P_sim (mW)", "P_analytic (mW)"});
  for (const auto& r : records) {
    scatter.add_row({r.cfg.label(), fmt_double(seconds_to_days(r.sim_nlt_s), 2),
                     fmt_double(r.sim_pdr * 100.0, 2),
                     fmt_double(r.sim_power_mw, 3),
                     fmt_double(r.analytic_power_mw, 3)});
  }
  scatter.print_csv(std::cout);

  // Envelope summary (the figure's visual spread).
  double pdr_lo = 1.0, pdr_hi = 0.0, nlt_lo = 1e18, nlt_hi = 0.0;
  for (const auto& r : records) {
    pdr_lo = std::min(pdr_lo, r.sim_pdr);
    pdr_hi = std::max(pdr_hi, r.sim_pdr);
    nlt_lo = std::min(nlt_lo, r.sim_nlt_s);
    nlt_hi = std::max(nlt_hi, r.sim_nlt_s);
  }
  std::cout << "\nenvelope: PDR " << fmt_percent(pdr_lo, 1) << " .. "
            << fmt_percent(pdr_hi, 1) << ", NLT "
            << fmt_double(seconds_to_days(nlt_lo), 1) << " .. "
            << fmt_double(seconds_to_days(nlt_hi), 1) << " days"
            << "  (paper: 0..100%, ~2 days..1 month+)\n\n";

  // ---- The arrows: optimum per PDRmin via Algorithm 1. --------------------
  std::cout << "Optimal configuration per PDRmin (the figure's arrows):\n";
  TextTable arrows;
  arrows.set_header({"PDRmin", "optimal configuration", "PDR (%)",
                     "NLT (days)", "P_sim (mW)", "sims"});
  for (double pdr_min :
       {0.50, 0.60, 0.70, 0.80, 0.90, 0.95, 0.99, 0.999, 0.9995}) {
    eval.reset_counters();  // count each run as if it stood alone
    dse::ExplorationOptions opt;
    opt.pdr_min = pdr_min;
    const dse::ExplorationResult res =
        dse::run_algorithm1(scenario, eval, opt);
    if (res.feasible) {
      arrows.add_row({fmt_percent(pdr_min, 1), res.best.label(),
                      fmt_double(res.best_pdr * 100.0, 2),
                      fmt_double(seconds_to_days(res.best_nlt_s), 1),
                      fmt_double(res.best_power_mw, 3),
                      std::to_string(res.simulations)});
    } else {
      arrows.add_row({fmt_percent(pdr_min, 1), "(infeasible)", "-", "-", "-",
                      std::to_string(res.simulations)});
    }
  }
  arrows.print(std::cout);
  std::cout << "\npaper's arrow ladder: star/-10dBm (low PDRmin) -> "
               "star/0dBm -> mesh/0dBm -> 5-node mesh (highest PDRmin)\n";
  return 0;
}
