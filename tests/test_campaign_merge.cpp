// EvalStore::merge — folding shard logs into one canonical store — and
// its damage tolerance: a torn tail, a bit-flipped payload, or a
// desynced frame header in ONE shard must cost only the damaged frames
// of that shard; every other record (and every other shard) merges in
// full, and the merged output always audits byte-valid.
//
// Shards are built with real run_single() campaigns (gen scenarios),
// so the merged content is exactly what the fabric produces.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/plan.hpp"
#include "campaign/runner.hpp"
#include "store/store.hpp"

namespace {

using namespace hi;
using campaign::CampaignPlan;
using campaign::PlanSpec;
using store::EvalStore;

/// Runs a tiny single-store campaign into `path`; returns (evals, cells).
std::pair<std::uint64_t, std::uint64_t> build_shard(
    const std::string& path, std::uint64_t gen_seed,
    std::vector<double> pdr_grid) {
  std::remove(path.c_str());
  PlanSpec spec;
  spec.gen_seeds = {gen_seed};
  spec.pdr_grid = std::move(pdr_grid);
  std::string err;
  const auto plan = CampaignPlan::build(spec, &err);
  EXPECT_TRUE(plan) << err;
  campaign::RunConfig cfg;
  cfg.store_path = path;
  const campaign::CampaignReport rep =
      campaign::run_single(*plan, cfg, nullptr);
  return {rep.stored_evals, rep.stored_cells};
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

constexpr std::size_t kFileHeader = 12;   // magic + version
constexpr std::size_t kFrameHeader = 12;  // len + payload crc + header crc

TEST(ShardMerge, FoldsDisjointShardsCompletely) {
  const auto [evals_a, cells_a] = build_shard("merge_a.store", 5, {0.5});
  const auto [evals_b, cells_b] = build_shard("merge_b.store", 6, {0.5, 0.7});
  ASSERT_GT(evals_a, 0u);
  ASSERT_GT(evals_b, 0u);

  const auto st = EvalStore::merge({"merge_a.store", "merge_b.store"},
                                   "merge_out.store");
  EXPECT_TRUE(st.clean());
  ASSERT_EQ(st.shards.size(), 2u);
  EXPECT_TRUE(st.shards[0].present);
  EXPECT_TRUE(st.shards[1].present);
  // Different scenarios share nothing: every record folds in once.
  EXPECT_EQ(st.evals, evals_a + evals_b);
  EXPECT_EQ(st.cells, cells_a + cells_b);
  EXPECT_EQ(st.duplicate_evals, 0u);
  EXPECT_EQ(st.superseded_cells, 0u);
  EXPECT_EQ(st.frames, st.evals + st.cells);
  EXPECT_TRUE(EvalStore::audit("merge_out.store").clean());

  store::StoreOptions ro;
  ro.read_only = true;
  const EvalStore merged("merge_out.store", ro);
  EXPECT_EQ(merged.eval_count(), evals_a + evals_b);
  EXPECT_EQ(merged.cell_count(), cells_a + cells_b);
  std::remove("merge_a.store");
  std::remove("merge_b.store");
  std::remove("merge_out.store");
}

TEST(ShardMerge, FoldsDuplicateEvaluationsToOneRecord) {
  // Same scenario in both shards: the common-random-numbers contract
  // makes the overlapping evaluations bit-identical, so the merge keeps
  // exactly one copy and counts the rest.
  const auto [evals_a, cells_a] = build_shard("merge_dup_a.store", 5, {0.5});
  const auto [evals_b, cells_b] =
      build_shard("merge_dup_b.store", 5, {0.5, 0.7});
  ASSERT_GE(evals_b, evals_a);  // superset grid explores at least as much

  const auto st = EvalStore::merge({"merge_dup_a.store", "merge_dup_b.store"},
                                   "merge_dup_out.store");
  EXPECT_TRUE(st.clean());
  // Shard A's evals are all rediscovered by shard B's pdr=0.5 cell.
  EXPECT_EQ(st.duplicate_evals, evals_a);
  EXPECT_EQ(st.evals, evals_b);
  // The pdr=0.5 cell was checkpointed in both shards; one frame kept.
  EXPECT_EQ(st.superseded_cells, 1u);
  EXPECT_EQ(st.cells, 2u);
  EXPECT_TRUE(EvalStore::audit("merge_dup_out.store").clean());
  std::remove("merge_dup_a.store");
  std::remove("merge_dup_b.store");
  std::remove("merge_dup_out.store");
}

TEST(ShardMerge, AbsentShardIsSkippedAndRecorded) {
  const auto [evals_a, cells_a] = build_shard("merge_only.store", 5, {0.5});
  const auto st = EvalStore::merge({"merge_only.store", "no_such.store"},
                                   "merge_absent_out.store");
  ASSERT_EQ(st.shards.size(), 2u);
  EXPECT_TRUE(st.shards[0].present);
  EXPECT_FALSE(st.shards[1].present);
  EXPECT_EQ(st.evals, evals_a);
  EXPECT_EQ(st.cells, cells_a);
  std::remove("merge_only.store");
  std::remove("merge_absent_out.store");
}

/// The corruption matrix: damage one shard, merge it with a healthy
/// one, and check the blast radius is exactly the damaged frames.
class ShardMergeCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    std::tie(evals_a_, cells_a_) = build_shard("corrupt_a.store", 5, {0.5});
    std::tie(evals_b_, cells_b_) = build_shard("corrupt_b.store", 6, {0.5});
    healthy_b_ = read_file("corrupt_b.store");
    ASSERT_GT(healthy_b_.size(), kFileHeader + 2 * kFrameHeader);
  }
  void TearDown() override {
    std::remove("corrupt_a.store");
    std::remove("corrupt_b.store");
    std::remove("corrupt_out.store");
  }

  EvalStore::MergeStats merge_now() {
    return EvalStore::merge({"corrupt_a.store", "corrupt_b.store"},
                            "corrupt_out.store");
  }

  std::uint64_t evals_a_ = 0, cells_a_ = 0, evals_b_ = 0, cells_b_ = 0;
  std::string healthy_b_;
};

TEST_F(ShardMergeCorruption, TornTailCostsOnlyTheLastFrame) {
  // Chop mid-frame: the kill -9 / power-cut artifact.  The torn frame
  // is shard B's LAST record — its pdr=0.5 cell checkpoint.
  write_file("corrupt_b.store",
             healthy_b_.substr(0, healthy_b_.size() - 5));
  const auto st = merge_now();
  EXPECT_FALSE(st.clean());
  EXPECT_TRUE(st.shards[1].tail_truncated);
  EXPECT_FALSE(st.shards[0].tail_truncated);
  // Every evaluation survives; only the torn checkpoint is gone.
  EXPECT_EQ(st.evals, evals_a_ + evals_b_);
  EXPECT_EQ(st.cells, cells_a_);
  EXPECT_EQ(st.shards[0].records, evals_a_ + cells_a_);
  EXPECT_TRUE(EvalStore::audit("corrupt_out.store").clean());
}

TEST_F(ShardMergeCorruption, BitFlippedPayloadDropsOneFrameOnly) {
  // Flip one payload byte of shard B's first frame: payload CRC fails,
  // framing stays intact, later records survive.
  std::string damaged = healthy_b_;
  damaged[kFileHeader + kFrameHeader + 2] ^= 0x40;
  write_file("corrupt_b.store", damaged);
  const auto st = merge_now();
  EXPECT_FALSE(st.clean());
  EXPECT_EQ(st.shards[1].corrupt_dropped, 1u);
  EXPECT_FALSE(st.shards[1].desynced);
  EXPECT_EQ(st.shards[1].records, evals_b_ + cells_b_ - 1);
  EXPECT_EQ(st.evals, evals_a_ + evals_b_ - 1);  // one eval lost
  EXPECT_EQ(st.cells, cells_a_ + cells_b_);      // checkpoints intact
  // Shard A is untouched by shard B's damage.
  EXPECT_EQ(st.shards[0].evals_added, evals_a_);
  EXPECT_TRUE(EvalStore::audit("corrupt_out.store").clean());
}

TEST_F(ShardMergeCorruption, DesyncedHeaderDropsTheShardTailNotTheFleet) {
  // Flip a frame-header byte: framing is lost from that offset on, so
  // shard B contributes nothing — but shard A still merges in full.
  std::string damaged = healthy_b_;
  damaged[kFileHeader + 1] ^= 0x01;
  write_file("corrupt_b.store", damaged);
  const auto st = merge_now();
  EXPECT_FALSE(st.clean());
  EXPECT_TRUE(st.shards[1].desynced);
  EXPECT_EQ(st.shards[1].records, 0u);
  EXPECT_EQ(st.evals, evals_a_);
  EXPECT_EQ(st.cells, cells_a_);
  EXPECT_EQ(st.shards[0].evals_added, evals_a_);
  EXPECT_EQ(st.shards[0].cells_added, cells_a_);
  EXPECT_TRUE(EvalStore::audit("corrupt_out.store").clean());
}

}  // namespace
