// Tests for Algorithm 1 (dse/algorithm1.cpp, entry point in
// dse/explorer.hpp): optimality against exhaustive search (the paper's
// correctness claim), termination, and efficiency (fewer simulations
// than exhaustive).
#include "dse/explorer.hpp"

#include <gtest/gtest.h>

namespace hi::dse {
namespace {

/// Scaled-down evaluation: short runs, shared by both explorers so their
/// comparisons are exact.
EvaluatorSettings fast_settings(std::uint64_t seed = 21) {
  EvaluatorSettings s;
  s.sim.duration_s = 10.0;
  s.sim.seed = seed;
  s.runs = 2;
  return s;
}

/// Small scenario (N fixed to 4): 8 topologies x 12 options = 96 configs.
model::Scenario small_scenario() {
  model::Scenario sc;
  sc.max_nodes = 4;
  return sc;
}

TEST(Algorithm1, FindsFeasibleAtLowBound) {
  Evaluator ev(fast_settings());
  ExplorationOptions opt;
  opt.pdr_min = 0.30;
  const ExplorationResult res = run_algorithm1(small_scenario(), ev, opt);
  ASSERT_TRUE(res.feasible);
  EXPECT_GE(res.best_pdr, 0.30);
  EXPECT_GT(res.best_nlt_s, 0.0);
  EXPECT_GT(res.simulations, 0u);
  EXPECT_FALSE(res.history.empty());
}

TEST(Algorithm1, InfeasibleWhenBoundUnreachable) {
  // Nothing delivers 100.0% of packets over a faded body channel in a
  // 4-node star/mesh at these powers (short runs make losses certain).
  Evaluator ev(fast_settings());
  ExplorationOptions opt;
  opt.pdr_min = 1.0;
  model::Scenario sc = small_scenario();
  const ExplorationResult res = run_algorithm1(sc, ev, opt);
  // Either genuinely infeasible or met only by a perfect-measuring run;
  // in both cases the algorithm must terminate and report consistently.
  if (res.feasible) {
    EXPECT_GE(res.best_pdr, 1.0);
  } else {
    EXPECT_EQ(res.best_pdr, 0.0);
  }
}

TEST(Algorithm1, StopsWithinIterationBudget) {
  Evaluator ev(fast_settings());
  ExplorationOptions opt;
  opt.pdr_min = 0.7;
  opt.budget = 2;  // artificially tight
  const ExplorationResult res = run_algorithm1(small_scenario(), ev, opt);
  EXPECT_LE(res.iterations, 2);
}

TEST(Algorithm1, AlphaTerminationPreservesOptimality) {
  Evaluator ev(fast_settings());
  ExplorationOptions with_alpha;
  with_alpha.pdr_min = 0.6;
  const ExplorationResult a =
      run_algorithm1(small_scenario(), ev, with_alpha);
  ExplorationOptions no_alpha = with_alpha;
  no_alpha.use_alpha_termination = false;
  const ExplorationResult b = run_algorithm1(small_scenario(), ev, no_alpha);
  ASSERT_EQ(a.feasible, b.feasible);
  if (a.feasible) {
    EXPECT_DOUBLE_EQ(a.best_power_mw, b.best_power_mw);
  }
  // Alpha termination can only shorten the search.
  EXPECT_LE(a.iterations, b.iterations);
}

TEST(Algorithm1, HistoryRecordsMatchEvaluator) {
  Evaluator ev(fast_settings());
  ExplorationOptions opt;
  opt.pdr_min = 0.5;
  const ExplorationResult res = run_algorithm1(small_scenario(), ev, opt);
  for (const CandidateRecord& rec : res.history) {
    const Evaluation& e = ev.evaluate(rec.cfg);  // cache hit
    EXPECT_DOUBLE_EQ(rec.sim_pdr, e.pdr);
    EXPECT_DOUBLE_EQ(rec.sim_power_mw, e.power_mw);
    EXPECT_GT(rec.analytic_power_mw, 0.0);
  }
}

TEST(Algorithm1, ProgressCallbackSeesMonotoneSimulations) {
  Evaluator ev(fast_settings());
  ExplorationOptions opt;
  opt.pdr_min = 0.5;
  std::vector<ProgressInfo> beats;
  opt.progress = [&](const ProgressInfo& info) { beats.push_back(info); };
  const ExplorationResult res = run_algorithm1(small_scenario(), ev, opt);
  ASSERT_FALSE(beats.empty());
  std::uint64_t prev = 0;
  int prev_iter = 0;
  for (const ProgressInfo& info : beats) {
    EXPECT_EQ(info.kind, ExplorerKind::kAlgorithm1);
    EXPECT_GE(info.simulations, prev);
    EXPECT_GT(info.iteration, prev_iter);
    prev = info.simulations;
    prev_iter = info.iteration;
  }
  EXPECT_EQ(beats.back().simulations, res.simulations);
  EXPECT_EQ(beats.back().feasible, res.feasible);
}

// ---- The headline property: Algorithm 1 == exhaustive, with fewer sims.

struct SweepCase {
  double pdr_min;
  std::uint64_t seed;
};

class Algorithm1VsExhaustive : public ::testing::TestWithParam<SweepCase> {};

TEST_P(Algorithm1VsExhaustive, SameOptimumFewerSimulations) {
  const SweepCase c = GetParam();
  const model::Scenario sc = small_scenario();
  Evaluator ev(fast_settings(c.seed));

  ExplorationOptions opt;
  opt.pdr_min = c.pdr_min;
  const ExplorationResult alg = run_algorithm1(sc, ev, opt);

  Evaluator ev2(fast_settings(c.seed));  // fresh cache: fair sim count
  const ExplorationResult exh = run_exhaustive(sc, ev2, opt);

  ASSERT_EQ(alg.feasible, exh.feasible)
      << "pdr_min=" << c.pdr_min << " seed=" << c.seed;
  if (exh.feasible) {
    // The guarantee is on the objective value (ties possible).
    EXPECT_DOUBLE_EQ(alg.best_power_mw, exh.best_power_mw);
    EXPECT_GE(alg.best_pdr, c.pdr_min);
  }
  EXPECT_LE(alg.simulations, exh.simulations);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Algorithm1VsExhaustive,
    ::testing::Values(SweepCase{0.30, 1}, SweepCase{0.50, 1},
                      SweepCase{0.70, 1}, SweepCase{0.85, 1},
                      SweepCase{0.95, 1}, SweepCase{0.30, 2},
                      SweepCase{0.50, 2}, SweepCase{0.70, 2},
                      SweepCase{0.85, 2}, SweepCase{0.95, 2},
                      SweepCase{0.60, 3}, SweepCase{0.90, 3}));

TEST(Algorithm1, MediumScenarioMatchesExhaustive) {
  // One 5-node-capable scenario to exercise the z/N machinery end to end.
  model::Scenario sc;
  sc.max_nodes = 5;
  Evaluator ev(fast_settings(4));
  ExplorationOptions opt;
  opt.pdr_min = 0.9;
  const ExplorationResult alg = run_algorithm1(sc, ev, opt);
  Evaluator ev2(fast_settings(4));
  const ExplorationResult exh = run_exhaustive(sc, ev2, opt);
  ASSERT_EQ(alg.feasible, exh.feasible);
  if (exh.feasible) {
    EXPECT_DOUBLE_EQ(alg.best_power_mw, exh.best_power_mw);
  }
  // The sound floor guarantees "never more than exhaustive", not strict
  // savings: on rx-heavy cells the provable per-delivery energy is too
  // small to prune levels, and the loop runs the MILP dry.  (The fuzzer
  // retired the old strictly-saving floor — it skipped true optima.)
  EXPECT_LE(alg.simulations, exh.simulations);
}

}  // namespace
}  // namespace hi::dse
