// The campaign fabric's headline property, proven end to end: kill a
// worker mid-campaign and a resume completes the grid with ZERO lost
// and ZERO duplicated evaluations — the merged store holds exactly the
// evaluations a cold single-process run pays for, every shard's
// contribution is disjoint, and the recovery shows up in the fleet
// report as a recovery (not silent re-work).
//
// Two layers are exercised: run_fleet() driven in-process (structured
// FleetReport assertions, self-kill fault injection), and the real CLI
// driven over fork/exec with an EXTERNAL SIGKILL delivered through the
// worker pid file (the operator's view: exit code 3, then --resume
// exit code 0).
#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "campaign/plan.hpp"
#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "store/store.hpp"

namespace {

using namespace hi;
using campaign::CampaignPlan;
using campaign::PlanSpec;

void remove_tree(const std::string& dir) {
  const std::string cmd = "rm -rf '" + dir + "'";
  [[maybe_unused]] const int rc = std::system(cmd.c_str());
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

/// Completed-cell / evaluation counts of a store, (0,0) if unreadable.
std::pair<std::uint64_t, std::uint64_t> store_counts(const std::string& path) {
  try {
    store::StoreOptions opt;
    opt.read_only = true;
    const store::EvalStore st(path, opt);
    return {st.eval_count(), st.cell_count()};
  } catch (const Error&) {
    return {0, 0};
  }
}

std::uint64_t sum_shard_evals(const std::string& dir) {
  std::uint64_t n = 0;
  for (const std::string& shard : campaign::list_shards(dir)) {
    n += store_counts(shard).first;
  }
  return n;
}

PlanSpec fabric_spec() {
  PlanSpec spec;
  spec.gen_seeds = {5, 6, 7};   // three rows: one per worker
  spec.pdr_grid = {0.5, 0.7};   // two cells per row
  return spec;
}

TEST(CampaignFabric, KillOneOfThreeThenResumeWithZeroLostZeroDuplicated) {
  const std::string dir = "fabric_lib_dir";
  const std::string cold_store = "fabric_lib_cold.store";
  remove_tree(dir);
  std::remove(cold_store.c_str());

  std::string err;
  const auto plan = CampaignPlan::build(fabric_spec(), &err);
  ASSERT_TRUE(plan) << err;

  // Ground truth: what a cold single-process campaign pays for.
  campaign::RunConfig cold_cfg;
  cold_cfg.store_path = cold_store;
  const campaign::CampaignReport cold =
      campaign::run_single(*plan, cold_cfg, nullptr);
  const std::uint64_t cold_evals = cold.stored_evals;
  ASSERT_GT(cold_evals, 0u);

  // Fleet run 1: three workers, worker 0 SIGKILLs itself after its
  // first checkpoint; stealing is off, so its row stays incomplete.
  campaign::RunConfig cfg;
  cfg.shard_dir = dir;
  cfg.workers = 3;
  cfg.steal = false;
  cfg.kill_slot = 0;
  cfg.kill_after_cells = 1;
  cfg.cell_delay_ms = 50;  // keeps rows in flight long enough that
                           // every worker claims one
  const campaign::FleetReport first = campaign::run_fleet(*plan, cfg, nullptr);
  ASSERT_FALSE(first.complete);
  EXPECT_EQ(first.planned_cells, 6u);
  EXPECT_EQ(first.checkpointed_cells, 5u);  // the killed cell survives
  ASSERT_EQ(first.worker_reports.size(), 3u);
  EXPECT_EQ(first.worker_reports[0].term_signal, SIGKILL);
  EXPECT_FALSE(first.worker_reports[0].reported);  // pipe left empty
  EXPECT_TRUE(first.merge.clean());
  const std::uint64_t evals_before_resume = sum_shard_evals(dir);

  // Fleet run 2: resume with stealing on.  The dead worker's claim is
  // recovered (prior run_id, dead pid), its checkpoint and evaluations
  // are reused from its shard, and only the missing cell is simulated.
  cfg.steal = true;
  cfg.kill_slot = -1;
  cfg.cell_delay_ms = 0;
  obs::MetricsRegistry metrics;
  const campaign::FleetReport second =
      campaign::run_fleet(*plan, cfg, &metrics);
  ASSERT_TRUE(second.complete);
  EXPECT_EQ(second.checkpointed_cells, 6u);
  const campaign::WorkerReport totals = second.totals();
  EXPECT_GE(totals.recoveries, 1u) << "the takeover must be visible";
  EXPECT_EQ(totals.steals, 0u);

  // Zero lost, zero duplicated: the merged store is exactly the cold
  // store's evaluation set, every shard contributed disjoint records,
  // and the resume paid only for what was never durable anywhere.
  EXPECT_EQ(second.merge.duplicate_evals, 0u);
  EXPECT_EQ(second.merge.superseded_cells, 0u);
  const auto [merged_evals, merged_cells] =
      store_counts(campaign::merged_path(dir));
  EXPECT_EQ(merged_evals, cold_evals);
  EXPECT_EQ(merged_cells, 6u);
  EXPECT_EQ(sum_shard_evals(dir), merged_evals);
  EXPECT_EQ(evals_before_resume + totals.fresh_simulations, cold_evals);
  EXPECT_TRUE(store::EvalStore::audit(campaign::merged_path(dir)).clean());
  EXPECT_GT(metrics.snapshot().counter("campaign.merge_frames"), 0u);

  // fleet.json is persisted for the operator.
  const std::string fleet_json = read_file(campaign::fleet_json_path(dir));
  EXPECT_NE(fleet_json.find("\"complete\": true"), std::string::npos);

  // Fleet run 3: a no-op — every row carries a done marker, nothing is
  // claimed, nothing is simulated.
  const campaign::FleetReport third = campaign::run_fleet(*plan, cfg, nullptr);
  ASSERT_TRUE(third.complete);
  EXPECT_EQ(third.totals().rows_claimed, 0u);
  EXPECT_EQ(third.totals().cells_done, 0u);
  EXPECT_EQ(third.totals().fresh_simulations, 0u);

  remove_tree(dir);
  std::remove(cold_store.c_str());
}

TEST(CampaignFabric, InRunStealCompletesWithoutResume) {
  // Stealing ON from the start: when a worker dies, a survivor takes
  // over the row in-run (same run_id -> counted as a steal) and the
  // single fleet run still completes the whole grid.
  const std::string dir = "fabric_steal_dir";
  remove_tree(dir);
  std::string err;
  PlanSpec spec;
  spec.gen_seeds = {5, 6};
  spec.pdr_grid = {0.5, 0.7};
  const auto plan = CampaignPlan::build(spec, &err);
  ASSERT_TRUE(plan) << err;

  campaign::RunConfig cfg;
  cfg.shard_dir = dir;
  cfg.workers = 2;
  cfg.lease_ms = 300;  // a dead pid is detected immediately anyway
  cfg.kill_slot = 0;
  cfg.kill_after_cells = 1;
  cfg.cell_delay_ms = 50;
  const campaign::FleetReport fleet = campaign::run_fleet(*plan, cfg, nullptr);
  ASSERT_TRUE(fleet.complete) << fleet.to_json();
  EXPECT_EQ(fleet.worker_reports[0].term_signal, SIGKILL);
  const campaign::WorkerReport totals = fleet.totals();
  EXPECT_GE(totals.steals + totals.recoveries, 1u);
  EXPECT_EQ(fleet.merge.duplicate_evals, 0u);
  EXPECT_TRUE(store::EvalStore::audit(campaign::merged_path(dir)).clean());
  remove_tree(dir);
}

// ---------------------------------------------------------------------
// CLI layer: the operator's workflow, external SIGKILL included.

pid_t spawn_campaign(const std::vector<std::string>& args,
                     const std::string& out_path) {
  std::vector<std::string> argv_s;
  argv_s.emplace_back(HI_CAMPAIGN_BIN);
  argv_s.insert(argv_s.end(), args.begin(), args.end());
  std::vector<char*> argv;
  argv.reserve(argv_s.size() + 1);
  for (std::string& s : argv_s) {
    argv.push_back(s.data());
  }
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid == 0) {
    const int fd =
        ::open(out_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      ::dup2(fd, STDOUT_FILENO);
      ::close(fd);
    }
    ::execv(HI_CAMPAIGN_BIN, argv.data());
    _exit(127);  // exec failed
  }
  return pid;
}

int wait_exit(pid_t pid) {
  int status = 0;
  ::waitpid(pid, &status, 0);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -WTERMSIG(status);
}

TEST(CampaignFabricCli, ExternalSigkillThenResumeExitCodes) {
  const std::string dir = "fabric_cli_dir";
  const std::string out = "fabric_cli.json";
  remove_tree(dir);

  const std::vector<std::string> grid = {"--gen-seed", "5", "--gen-seed", "6",
                                         "--pdr-min", "0.5,0.7", "--json"};
  // Long inter-cell delays widen the kill window; --no-steal pins the
  // dead worker's row so the run must end incomplete (exit 3).
  std::vector<std::string> args = {"--shard-dir",     dir,    "--workers",
                                   "3",               "--no-steal",
                                   "--cell-delay-ms", "1500"};
  args.insert(args.end(), grid.begin(), grid.end());
  const pid_t fleet_pid = spawn_campaign(args, out);
  ASSERT_GT(fleet_pid, 0);

  // Wait for the first checkpoint to land in some shard, then SIGKILL
  // that shard's worker via its pid file — mid-sleep, like a real crash.
  int victim_slot = -1;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (std::chrono::steady_clock::now() < deadline && victim_slot < 0) {
    for (const std::string& shard : campaign::list_shards(dir)) {
      if (store_counts(shard).second >= 1) {
        const std::size_t at = shard.find("shard-") + 6;
        victim_slot = std::stoi(shard.substr(at));
        break;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GE(victim_slot, 0) << "no worker ever checkpointed a cell";
  const std::string pid_text =
      read_file(campaign::worker_pid_path(dir, victim_slot));
  const pid_t victim = static_cast<pid_t>(std::stol(pid_text));
  ASSERT_GT(victim, 0);
  ASSERT_EQ(::kill(victim, SIGKILL), 0);

  ASSERT_EQ(wait_exit(fleet_pid), 3) << read_file(out);
  const std::string first = read_file(out);
  EXPECT_NE(first.find("\"complete\": false"), std::string::npos) << first;
  EXPECT_NE(first.find("\"term_signal\": 9"), std::string::npos) << first;

  // Resume with stealing (the default): the dead worker's claim is
  // recovered and the fleet completes — exit 0.
  std::vector<std::string> resume_args = {"--shard-dir", dir, "--workers",
                                          "2", "--resume"};
  resume_args.insert(resume_args.end(), grid.begin(), grid.end());
  ASSERT_EQ(wait_exit(spawn_campaign(resume_args, out)), 0) << read_file(out);
  const std::string resumed = read_file(out);
  EXPECT_NE(resumed.find("\"complete\": true"), std::string::npos) << resumed;
  // The totals block is last in the report; the takeover is visible.
  const std::size_t totals_at = resumed.rfind("\"totals\"");
  ASSERT_NE(totals_at, std::string::npos);
  const std::size_t rec_at = resumed.find("\"recoveries\": ", totals_at);
  ASSERT_NE(rec_at, std::string::npos);
  EXPECT_GE(std::stol(resumed.substr(rec_at + 14)), 1) << resumed;

  EXPECT_TRUE(store::EvalStore::audit(campaign::merged_path(dir)).clean());
  EXPECT_NE(read_file(campaign::fleet_json_path(dir)).find("\"complete\": true"),
            std::string::npos);
  remove_tree(dir);
  std::remove(out.c_str());
}

}  // namespace
