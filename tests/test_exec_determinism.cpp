// Tier-1 guarantee of the hi::exec batch engine: explorer results are
// bit-identical to serial at any thread count — same best configuration,
// same PDR/power/NLT to the last bit, same simulation and cache-hit
// counters, and the same candidate history in the same order.  The
// mechanism under test: seeds derive from design_key(), all design
// points share one channel-realization root (common random numbers),
// and BatchEvaluator commits results in request order.
#include <gtest/gtest.h>

#include <vector>

#include "check/properties.hpp"
#include "check/scenario_gen.hpp"
#include "dse/explorer.hpp"

namespace hi::dse {
namespace {

EvaluatorSettings fast_settings(int threads) {
  EvaluatorSettings s;
  s.sim.duration_s = 4.0;
  s.sim.seed = 2017;
  s.runs = 2;
  s.threads = threads;
  return s;
}

model::Scenario small_scenario() {
  model::Scenario sc;
  sc.max_nodes = 4;  // shrink the sweep so four full runs stay fast
  return sc;
}

/// Everything determinism must preserve, captured from one run.
struct RunFingerprint {
  ExplorationResult result;
  std::uint64_t simulations = 0;
  std::uint64_t cache_hits = 0;
};

void expect_identical(const RunFingerprint& serial, const RunFingerprint& par,
                      int threads) {
  SCOPED_TRACE(::testing::Message() << "threads=" << threads);
  const ExplorationResult& a = serial.result;
  const ExplorationResult& b = par.result;
  ASSERT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.best.design_key(), b.best.design_key());
  // EXPECT_EQ on doubles is exact comparison: bit-identical or bust.
  EXPECT_EQ(a.best_power_mw, b.best_power_mw);
  EXPECT_EQ(a.best_pdr, b.best_pdr);
  EXPECT_EQ(a.best_nlt_s, b.best_nlt_s);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.simulations, b.simulations);
  EXPECT_EQ(serial.simulations, par.simulations);
  EXPECT_EQ(serial.cache_hits, par.cache_hits);
  // The run snapshots mirror the evaluator counters exactly — the
  // atomic metric sums are thread-count-invariant too.
  EXPECT_EQ(a.metrics.counter("dse.simulations"), a.simulations);
  EXPECT_EQ(b.metrics.counter("dse.simulations"), b.simulations);
  EXPECT_EQ(a.metrics.counter("dse.cache_hits"),
            b.metrics.counter("dse.cache_hits"));
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].cfg.design_key(), b.history[i].cfg.design_key());
    EXPECT_EQ(a.history[i].sim_pdr, b.history[i].sim_pdr);
    EXPECT_EQ(a.history[i].sim_power_mw, b.history[i].sim_power_mw);
    EXPECT_EQ(a.history[i].sim_nlt_s, b.history[i].sim_nlt_s);
  }
}

RunFingerprint exhaustive_at(int threads) {
  Evaluator eval(fast_settings(threads));
  RunFingerprint fp;
  ExplorationOptions opt;
  opt.pdr_min = 0.9;
  fp.result = run_exhaustive(small_scenario(), eval, opt);
  fp.simulations = eval.simulations();
  fp.cache_hits = eval.cache_hits();
  return fp;
}

RunFingerprint algorithm1_at(int threads) {
  Evaluator eval(fast_settings(/*threads=*/0));
  ExplorationOptions opt;
  opt.pdr_min = 0.9;
  opt.threads = threads;  // explicit knob overrides the settings
  RunFingerprint fp;
  fp.result = run_algorithm1(small_scenario(), eval, opt);
  fp.simulations = eval.simulations();
  fp.cache_hits = eval.cache_hits();
  return fp;
}

TEST(ExecDeterminism, ExhaustiveSearchIsThreadCountInvariant) {
  const RunFingerprint serial = exhaustive_at(0);
  ASSERT_TRUE(serial.result.feasible);
  EXPECT_GT(serial.result.simulations, 0u);
  for (const int threads : {1, 2, 8}) {
    expect_identical(serial, exhaustive_at(threads), threads);
  }
}

TEST(ExecDeterminism, Algorithm1IsThreadCountInvariant) {
  const RunFingerprint serial = algorithm1_at(0);
  ASSERT_TRUE(serial.result.feasible);
  EXPECT_GT(serial.result.simulations, 0u);
  for (const int threads : {1, 2, 8}) {
    expect_identical(serial, algorithm1_at(threads), threads);
  }
}

TEST(ExecDeterminism, GeneratedScenariosAreThreadCountInvariant) {
  // ScenarioGen instances (random chips, coverage groups, placements)
  // through the full hi::check determinism property: bit-identical
  // ExplorationResult and equal counter snapshots at 1 and 4 workers
  // (exec.* scheduling counters excluded by the property itself).
  for (const std::uint64_t seed : {901ULL, 902ULL}) {
    const check::ScenarioSpec spec = check::make_scenario(seed);
    for (const int threads : {1, 4}) {
      for (const std::string& v :
           check::check_thread_determinism(spec, threads)) {
        ADD_FAILURE() << spec.summary() << " at " << threads
                      << " threads: " << v;
      }
    }
  }
}

TEST(ExecDeterminism, Algorithm1InheritsEvaluatorThreads) {
  // threads = -1 (default) takes EvaluatorSettings::threads; results are
  // still identical to the fully serial run.
  const RunFingerprint serial = algorithm1_at(0);
  Evaluator eval(fast_settings(/*threads=*/4));
  ExplorationOptions opt;
  opt.pdr_min = 0.9;
  ASSERT_EQ(opt.threads, -1);
  RunFingerprint inherited;
  inherited.result = run_algorithm1(small_scenario(), eval, opt);
  inherited.simulations = eval.simulations();
  inherited.cache_hits = eval.cache_hits();
  expect_identical(serial, inherited, 4);
}

}  // namespace
}  // namespace hi::dse
