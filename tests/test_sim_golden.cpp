// Golden bit-exact simulation fingerprints.
//
// These rows were recorded from the pre-overhaul simulator (PR 4 state:
// std::function + priority_queue + unordered_map kernel, lazy map-based
// channel fades, deque MAC buffers, hash-map radio/routing state) and
// pin the hot-path overhaul's determinism contract (DESIGN.md §11):
// every optimization since must reproduce these doubles *bit for bit*,
// across single runs and seed-averaged runs, star and mesh, CSMA and
// TDMA.  If a future change breaks a row on purpose (a genuine
// simulator behaviour change, not an optimization), regenerate the rows
// and say so in the PR — never loosen the comparison to tolerances.
#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "channel/channel.hpp"
#include "model/design_space.hpp"
#include "net/network.hpp"

namespace hi {
namespace {

std::uint64_t bits(double d) {
  std::uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

struct GoldenRow {
  const char* name;
  std::vector<int> locs;
  int tx_level;
  model::MacProtocol mac;
  model::RoutingProtocol routing;
  std::uint64_t seed;
  // simulate() fingerprint
  std::uint64_t pdr, worst_power_mw, mean_power_mw, nlt_s;
  std::uint64_t events;
  // simulate_averaged(2 runs) fingerprint
  std::uint64_t avg_pdr, avg_worst_power_mw;
  std::uint64_t avg_events;
};

const std::vector<GoldenRow>& golden_rows() {
  using model::MacProtocol;
  using model::RoutingProtocol;
  static const std::vector<GoldenRow> rows = {
      {"star_csma_n4", {0, 1, 3, 5}, 1, MacProtocol::kCsma,
       RoutingProtocol::kStar, 2017,
       0x3fea433788cde234ull, 0x3fe8edc28f5c1f66ull, 0x3fe4f23d70a3cfaeull,
       0x4147cc5cfcfbc968ull, 5406ull,
       0x3fe6c8b8362e0d8cull, 0x3fe7ec0c49ba550aull, 9944ull},
      {"star_tdma_n4", {0, 1, 3, 5}, 2, MacProtocol::kTdma,
       RoutingProtocol::kStar, 2017,
       0x3feedbefbefbefbfull, 0x3fec14083126df4bull, 0x3fea475c28f5b943ull,
       0x414520fdae917992ull, 6079ull,
       0x3fec7fea53fa94feull, 0x3feb619db22d04b4ull, 11486ull},
      {"mesh_csma_n5", {0, 1, 3, 5, 7}, 2, MacProtocol::kCsma,
       RoutingProtocol::kMesh, 99,
       0x3fed63dbb01d0cb5ull, 0x3ff8d9fbe76c83f2ull, 0x3ff71e5460aa5e2bull,
       0x4137df4d16c558c4ull, 21039ull,
       0x3fedbb190e296550ull, 0x3ff8107ae147a740ull, 42858ull},
      {"mesh_tdma_n5", {0, 1, 3, 5, 7}, 0, MacProtocol::kTdma,
       RoutingProtocol::kMesh, 7,
       0x3fe9d92566c35bdeull, 0x400216a0c49b9f82ull, 0x3ffcaff06f6939d6ull,
       0x413066227a6e6b30ull, 19174ull,
       0x3feabca421683732ull, 0x40044a810624d63aull, 44193ull},
      {"mesh_tdma_n6", {0, 2, 4, 6, 8, 9}, 2, MacProtocol::kTdma,
       RoutingProtocol::kMesh, 424242,
       0x3ff0000000000000ull, 0x4026b2bffffff211ull, 0x4025278cccccc101ull,
       0x410a230bf8e83d3full, 107776ull,
       0x3feff8d0649a7f8dull, 0x4027236f9db21e70ull, 220222ull},
  };
  return rows;
}

TEST(SimGolden, BitExactAgainstPreOverhaulKernel) {
  const model::Scenario scenario;
  for (const GoldenRow& row : golden_rows()) {
    SCOPED_TRACE(row.name);
    const auto cfg = scenario.make_config(
        model::Topology::from_locations(row.locs), row.tx_level, row.mac,
        row.routing);
    net::SimParams sp;
    sp.duration_s = 20.0;
    sp.seed = row.seed;
    const net::SimResult one = net::simulate(
        cfg, *net::default_channel_factory()(row.seed ^ 0xABCDEF), sp);
    EXPECT_EQ(bits(one.pdr), row.pdr);
    EXPECT_EQ(bits(one.worst_power_mw), row.worst_power_mw);
    EXPECT_EQ(bits(one.mean_power_mw), row.mean_power_mw);
    EXPECT_EQ(bits(one.nlt_s), row.nlt_s);
    EXPECT_EQ(one.events, row.events);

    const net::SimResult avg = net::simulate_averaged(cfg, sp, 2);
    EXPECT_EQ(bits(avg.pdr), row.avg_pdr);
    EXPECT_EQ(bits(avg.worst_power_mw), row.avg_worst_power_mw);
    EXPECT_EQ(avg.events, row.avg_events);
  }
}

}  // namespace
}  // namespace hi
