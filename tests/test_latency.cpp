// End-to-end latency metric (net/latency.hpp, DESIGN.md §14).
//
// The contract under test: latency collection is OFF by default and the
// off path is bit-identical to the pre-latency simulator (the golden
// rows in test_sim_golden pin that independently); turning it ON changes
// no other output bit — PDR, powers, lifetime, event counts, and every
// counter stay exactly what the off run produced — at any thread count
// and any realization count.  The store tail round-trips exactly and
// latency-off records keep the legacy byte layout and settings
// fingerprint.
#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "channel/channel.hpp"
#include "dse/evaluator.hpp"
#include "dse/robustness.hpp"
#include "exec/batch_evaluator.hpp"
#include "model/design_space.hpp"
#include "net/latency.hpp"
#include "net/network.hpp"
#include "store/serialize.hpp"

namespace hi {
namespace {

std::uint64_t bits(double d) {
  std::uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

model::NetworkConfig small_config(const model::Scenario& scenario) {
  return scenario.make_config(model::Topology::from_locations({0, 1, 3, 5}),
                              1, model::MacProtocol::kCsma,
                              model::RoutingProtocol::kStar);
}

net::SimParams short_params() {
  net::SimParams sp;
  sp.duration_s = 5.0;
  sp.seed = 2017;
  return sp;
}

TEST(Latency, OffByDefaultAndEmpty) {
  const model::Scenario scenario;
  const net::SimParams sp = short_params();
  ASSERT_FALSE(sp.collect_latency);
  const net::SimResult res = net::simulate(
      small_config(scenario), *net::default_channel_factory()(1), sp);
  EXPECT_FALSE(res.latency.collected);
  EXPECT_EQ(res.latency.samples, 0u);
  EXPECT_EQ(res.latency.p95_s, 0.0);
}

TEST(Latency, CollectionChangesNoOtherOutputBit) {
  const model::Scenario scenario;
  const model::NetworkConfig cfg = small_config(scenario);
  net::SimParams off = short_params();
  net::SimParams on = off;
  on.collect_latency = true;
  const net::SimResult a =
      net::simulate(cfg, *net::default_channel_factory()(7), off);
  const net::SimResult b =
      net::simulate(cfg, *net::default_channel_factory()(7), on);
  EXPECT_EQ(bits(a.pdr), bits(b.pdr));
  EXPECT_EQ(bits(a.worst_power_mw), bits(b.worst_power_mw));
  EXPECT_EQ(bits(a.mean_power_mw), bits(b.mean_power_mw));
  EXPECT_EQ(bits(a.nlt_s), bits(b.nlt_s));
  EXPECT_EQ(a.events, b.events);
  ASSERT_TRUE(b.latency.collected);
  ASSERT_GT(b.latency.samples, 0u);
  // Nearest-rank quantiles of a nonempty sample are ordered and positive.
  EXPECT_GT(b.latency.p50_s, 0.0);
  EXPECT_LE(b.latency.p50_s, b.latency.p95_s);
  EXPECT_LE(b.latency.p95_s, b.latency.max_s);
  EXPECT_GT(b.latency.mean_s, 0.0);
  EXPECT_LE(b.latency.mean_s, b.latency.max_s);
}

TEST(Latency, AveragedFoldIsDeterministic) {
  const model::Scenario scenario;
  const model::NetworkConfig cfg = small_config(scenario);
  net::SimParams sp = short_params();
  sp.collect_latency = true;
  const net::SimResult a = net::simulate_averaged(cfg, sp, 2);
  const net::SimResult b = net::simulate_averaged(cfg, sp, 2);
  ASSERT_TRUE(a.latency.collected);
  EXPECT_EQ(a.latency.samples, b.latency.samples);
  EXPECT_EQ(bits(a.latency.mean_s), bits(b.latency.mean_s));
  EXPECT_EQ(bits(a.latency.p50_s), bits(b.latency.p50_s));
  EXPECT_EQ(bits(a.latency.p95_s), bits(b.latency.p95_s));
  EXPECT_EQ(bits(a.latency.max_s), bits(b.latency.max_s));
}

dse::EvaluatorSettings latency_settings() {
  dse::EvaluatorSettings s;
  s.sim = short_params();
  s.sim.collect_latency = true;
  s.runs = 2;
  return s;
}

TEST(Latency, ThreadCountInvariant) {
  const model::Scenario scenario;
  const std::vector<model::NetworkConfig> cfgs = scenario.feasible_configs();
  ASSERT_FALSE(cfgs.empty());
  const auto run_at = [&](int threads) {
    dse::Evaluator eval(latency_settings());
    exec::BatchEvaluator batch(eval, threads);
    std::vector<net::LatencySummary> out;
    for (const dse::Evaluation* ev : batch.evaluate(cfgs)) {
      out.push_back(ev->detail.latency);
    }
    return out;
  };
  const std::vector<net::LatencySummary> serial = run_at(0);
  const std::vector<net::LatencySummary> par = run_at(4);
  ASSERT_EQ(serial.size(), par.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(cfgs[i].label());
    EXPECT_TRUE(serial[i].collected);
    EXPECT_EQ(serial[i].samples, par[i].samples);
    EXPECT_EQ(bits(serial[i].mean_s), bits(par[i].mean_s));
    EXPECT_EQ(bits(serial[i].p50_s), bits(par[i].p50_s));
    EXPECT_EQ(bits(serial[i].p95_s), bits(par[i].p95_s));
    EXPECT_EQ(bits(serial[i].max_s), bits(par[i].max_s));
  }
}

TEST(Latency, RealizationCountInvariantForNominal) {
  // Growing K only adds realizations: the nominal p95 (realization 0)
  // must not move, and the worst-case p95 can only grow.
  const model::Scenario scenario;
  const model::NetworkConfig cfg = small_config(scenario);
  const auto run_k = [&](int k) {
    dse::Evaluator eval(latency_settings());
    dse::RobustnessOptions robust;
    robust.realizations = k;
    dse::RobustBatch rb(eval, 0, robust);
    return rb.evaluate_one(cfg);
  };
  const dse::RobustEvaluation k1 = run_k(1);
  const dse::RobustEvaluation k3 = run_k(3);
  ASSERT_TRUE(k1.nominal.detail.latency.collected);
  EXPECT_EQ(bits(k1.nominal.detail.latency.p95_s),
            bits(k3.nominal.detail.latency.p95_s));
  // K=1, Γ=0 collapse: the robust latency objective IS the nominal p95.
  EXPECT_EQ(bits(k1.worst_p95_s), bits(k1.nominal.detail.latency.p95_s));
  EXPECT_GE(k3.worst_p95_s, k1.worst_p95_s);
}

TEST(Latency, EvaluationTailRoundTripsExactly) {
  const model::Scenario scenario;
  dse::Evaluator eval(latency_settings());
  const dse::Evaluation& ev = eval.evaluate(small_config(scenario));
  ASSERT_TRUE(ev.detail.latency.collected);
  store::ByteWriter w;
  store::write_evaluation(w, ev);
  store::ByteReader r(w.bytes());
  dse::Evaluation back;
  ASSERT_TRUE(store::read_evaluation(r, back));
  ASSERT_TRUE(r.at_end());
  ASSERT_TRUE(back.detail.latency.collected);
  EXPECT_EQ(back.detail.latency.samples, ev.detail.latency.samples);
  EXPECT_EQ(bits(back.detail.latency.mean_s), bits(ev.detail.latency.mean_s));
  EXPECT_EQ(bits(back.detail.latency.p50_s), bits(ev.detail.latency.p50_s));
  EXPECT_EQ(bits(back.detail.latency.p95_s), bits(ev.detail.latency.p95_s));
  EXPECT_EQ(bits(back.detail.latency.max_s), bits(ev.detail.latency.max_s));
  EXPECT_EQ(bits(back.pdr), bits(ev.pdr));
  EXPECT_EQ(bits(back.power_mw), bits(ev.power_mw));
  EXPECT_EQ(bits(back.nlt_s), bits(ev.nlt_s));
}

TEST(Latency, OffRecordsKeepTheLegacyLayout) {
  // A latency-off evaluation serializes WITHOUT the tail — the record is
  // byte-identical to the pre-latency format — and decodes as
  // uncollected.
  const model::Scenario scenario;
  dse::EvaluatorSettings s = latency_settings();
  s.sim.collect_latency = false;
  dse::Evaluator eval(s);
  const dse::Evaluation& ev = eval.evaluate(small_config(scenario));
  ASSERT_FALSE(ev.detail.latency.collected);
  store::ByteWriter w;
  store::write_evaluation(w, ev);
  // The tail is 1×u64 + 4×f64 = 40 bytes; prove it is absent by writing
  // the same evaluation with a forged collected bit and diffing sizes.
  dse::Evaluation forged = ev;
  forged.detail.latency.collected = true;
  store::ByteWriter w2;
  store::write_evaluation(w2, forged);
  EXPECT_EQ(w2.bytes().size(), w.bytes().size() + 40);
  store::ByteReader r(w.bytes());
  dse::Evaluation back;
  ASSERT_TRUE(store::read_evaluation(r, back));
  ASSERT_TRUE(r.at_end());
  EXPECT_FALSE(back.detail.latency.collected);
  EXPECT_EQ(back.detail.latency.samples, 0u);
}

TEST(Latency, SettingsFingerprintGatesOnCollection) {
  // Latency-off settings keep their pre-latency fingerprint (the marker
  // is conditional), so existing stores stay valid; latency-on settings
  // get a distinct fingerprint, so the two kinds of record never mix.
  dse::EvaluatorSettings off;
  off.sim.seed = 42;
  dse::EvaluatorSettings on = off;
  on.sim.collect_latency = true;
  const store::Digest fp_off = store::settings_fingerprint(off, "default");
  const store::Digest fp_on = store::settings_fingerprint(on, "default");
  EXPECT_NE(fp_off, fp_on);
  // Flipping the flag back restores the original digest bit for bit.
  on.sim.collect_latency = false;
  EXPECT_EQ(store::settings_fingerprint(on, "default"), fp_off);
}

TEST(Latency, GoldenCoreMetricsUnchangedWithCollectionOn) {
  // The first golden row of test_sim_golden, re-run WITH latency
  // collection: every pinned bit must still match — collection observes
  // the run, it never perturbs it.
  const model::Scenario scenario;
  const auto cfg = scenario.make_config(
      model::Topology::from_locations({0, 1, 3, 5}), 1,
      model::MacProtocol::kCsma, model::RoutingProtocol::kStar);
  net::SimParams sp;
  sp.duration_s = 20.0;
  sp.seed = 2017;
  sp.collect_latency = true;
  const net::SimResult one =
      net::simulate(cfg, *net::default_channel_factory()(2017 ^ 0xABCDEF), sp);
  EXPECT_EQ(bits(one.pdr), 0x3fea433788cde234ull);
  EXPECT_EQ(bits(one.worst_power_mw), 0x3fe8edc28f5c1f66ull);
  EXPECT_EQ(bits(one.mean_power_mw), 0x3fe4f23d70a3cfaeull);
  EXPECT_EQ(bits(one.nlt_s), 0x4147cc5cfcfbc968ull);
  EXPECT_EQ(one.events, 5406u);
  EXPECT_TRUE(one.latency.collected);
  EXPECT_GT(one.latency.samples, 0u);
}

}  // namespace
}  // namespace hi
