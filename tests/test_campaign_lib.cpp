// Units for the hi::campaign library: plan resolution (grid, tokens,
// precomputed cell keys), the lease-based claim protocol (acquire /
// held / steal / recover / done, expiry accounting), the worker-report
// pipe codec, and run_single() as the library-level campaign loop
// (resume must serve checkpoints with zero fresh simulations).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "campaign/claims.hpp"
#include "campaign/plan.hpp"
#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "store/serialize.hpp"

namespace {

using namespace hi;
using campaign::CampaignPlan;
using campaign::ClaimBoard;
using campaign::ClaimOutcome;
using campaign::PlanSpec;

void remove_tree(const std::string& dir) {
  const std::string cmd = "rm -rf '" + dir + "'";
  [[maybe_unused]] const int rc = std::system(cmd.c_str());
}

TEST(CampaignPlanTest, ResolvesGenRowsWithPrecomputedKeys) {
  PlanSpec spec;
  spec.gen_seeds = {5, 6};
  spec.pdr_grid = {0.5, 0.9};
  std::string err;
  const auto plan = CampaignPlan::build(spec, &err);
  ASSERT_TRUE(plan) << err;
  ASSERT_EQ(plan->rows().size(), 2u);
  EXPECT_EQ(plan->cell_count(), 4u);
  EXPECT_EQ(plan->rows()[0].name, "gen-5");
  EXPECT_EQ(plan->rows()[1].name, "gen-6");
  for (const campaign::PlanRow& row : plan->rows()) {
    ASSERT_EQ(row.cells.size(), 2u);
    // The precomputed keys must match a by-hand recomputation — the
    // fabric's resume correctness rests on every process deriving the
    // same identities from the same flags.
    EXPECT_EQ(row.scenario_fp, store::scenario_fingerprint(row.scenario));
    EXPECT_EQ(row.settings_fp,
              store::settings_fingerprint(row.settings, spec.channel_tag));
    EXPECT_EQ(row.cells[0].pdr_min, 0.5);
    EXPECT_EQ(row.cells[1].pdr_min, 0.9);
    EXPECT_EQ(row.cells[0].options_fp,
              store::options_fingerprint(plan->cell_options(0.5),
                                         spec.explorer));
  }
  // Row tokens are stable, unique, and carry the fingerprint fragment.
  const std::string t0 = plan->row_token(0);
  const std::string t1 = plan->row_token(1);
  EXPECT_NE(t0, t1);
  EXPECT_EQ(t0.rfind("row-0-", 0), 0u) << t0;
  EXPECT_EQ(t0, "row-0-" + plan->rows()[0].scenario_fp.hex().substr(0, 8));
}

TEST(CampaignPlanTest, EmptySpecFallsBackToPaperScenario) {
  std::string err;
  const auto plan = CampaignPlan::build(PlanSpec{}, &err);
  ASSERT_TRUE(plan) << err;
  ASSERT_EQ(plan->rows().size(), 1u);
  EXPECT_EQ(plan->rows()[0].name, "paper-4.1");
  EXPECT_EQ(plan->cell_count(), 3u);  // default grid 0.5, 0.7, 0.9
}

TEST(CampaignPlanTest, MissingScenarioFileIsAnError) {
  PlanSpec spec;
  spec.scenario_files = {"does-not-exist.json"};
  std::string err;
  EXPECT_FALSE(CampaignPlan::build(spec, &err));
  EXPECT_NE(err.find("does-not-exist.json"), std::string::npos) << err;
}

TEST(ClaimBoardTest, AcquireHoldDoneLifecycle) {
  const std::string dir = "claims_lifecycle_test";
  remove_tree(dir);
  ClaimBoard a(dir, /*run_id=*/1, /*slot=*/0, /*lease_ms=*/60000, nullptr);
  ClaimBoard b(dir, /*run_id=*/1, /*slot=*/1, /*lease_ms=*/60000, nullptr);

  EXPECT_EQ(a.try_claim("row-0-aaaa", true), ClaimOutcome::kAcquired);
  // A live, renewing owner is never stolen from.
  EXPECT_EQ(b.try_claim("row-0-aaaa", true), ClaimOutcome::kHeld);

  const auto info = b.read_claim("row-0-aaaa");
  ASSERT_TRUE(info);
  EXPECT_EQ(info->slot, 0);
  EXPECT_EQ(info->run_id, 1u);
  EXPECT_EQ(info->gen, 0);

  a.mark_done("row-0-aaaa");
  a.release("row-0-aaaa");
  EXPECT_TRUE(b.is_done("row-0-aaaa"));
  EXPECT_EQ(b.try_claim("row-0-aaaa", true), ClaimOutcome::kDone);
  EXPECT_EQ(a.tally().rows_claimed, 1u);
  EXPECT_EQ(b.tally().rows_claimed, 0u);
  remove_tree(dir);
}

TEST(ClaimBoardTest, ExpiredLeaseIsStolenExactlyOnce) {
  const std::string dir = "claims_steal_test";
  remove_tree(dir);
  // Owner with a tiny lease that never renews: the crash stand-in (the
  // owner pid — this process — is alive, so staleness is pure expiry).
  ClaimBoard owner(dir, /*run_id=*/7, /*slot=*/0, /*lease_ms=*/40, nullptr);
  EXPECT_EQ(owner.try_claim("row-1-bbbb", true), ClaimOutcome::kAcquired);

  ClaimBoard same_run(dir, 7, 1, 40, nullptr);
  ClaimBoard other_run(dir, 8, 2, 40, nullptr);
  std::this_thread::sleep_for(std::chrono::milliseconds(120));

  // --no-steal never takes over, no matter how stale.
  EXPECT_EQ(same_run.try_claim("row-1-bbbb", false), ClaimOutcome::kHeld);
  // Same run_id -> a steal; the expiry is accounted.
  EXPECT_EQ(same_run.try_claim("row-1-bbbb", true), ClaimOutcome::kStolen);
  EXPECT_EQ(same_run.tally().steals, 1u);
  EXPECT_EQ(same_run.tally().lease_expiries, 1u);
  const auto info = other_run.read_claim("row-1-bbbb");
  ASSERT_TRUE(info);
  EXPECT_EQ(info->gen, 1);  // the steal bumped the generation

  // A later run's board sees the (also expired) gen-1 claim and
  // recovers it — and records it as a recovery, not a steal.
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  EXPECT_EQ(other_run.try_claim("row-1-bbbb", true), ClaimOutcome::kRecovered);
  EXPECT_EQ(other_run.tally().recoveries, 1u);
  EXPECT_EQ(other_run.tally().steals, 0u);
  remove_tree(dir);
}

TEST(ClaimBoardTest, RenewalKeepsTheLeaseFresh) {
  const std::string dir = "claims_renew_test";
  remove_tree(dir);
  ClaimBoard owner(dir, 1, 0, /*lease_ms=*/80, nullptr);
  ClaimBoard rival(dir, 1, 1, /*lease_ms=*/80, nullptr);
  EXPECT_EQ(owner.try_claim("row-2-cccc", true), ClaimOutcome::kAcquired);
  for (int i = 0; i < 6; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    owner.renew_all();
    EXPECT_EQ(rival.try_claim("row-2-cccc", true), ClaimOutcome::kHeld);
  }
  remove_tree(dir);
}

TEST(WorkerReportTest, PipeCodecRoundTripsAndRejectsTruncation) {
  campaign::WorkerReport rep;
  rep.slot = 2;
  rep.pid = 4242;
  rep.rows_claimed = 3;
  rep.cells_done = 7;
  rep.cells_skipped = 5;
  rep.fresh_simulations = 123;
  rep.store_hits = 456;
  rep.steals = 1;
  rep.recoveries = 2;
  rep.lease_expiries = 1;
  rep.wall_s = 1.5;
  const std::string bytes = rep.encode();

  campaign::WorkerReport out;
  ASSERT_TRUE(campaign::WorkerReport::decode(bytes, &out));
  EXPECT_TRUE(out.reported);
  EXPECT_EQ(out.slot, 2);
  EXPECT_EQ(out.pid, 4242);
  EXPECT_EQ(out.rows_claimed, 3u);
  EXPECT_EQ(out.cells_done, 7u);
  EXPECT_EQ(out.cells_skipped, 5u);
  EXPECT_EQ(out.fresh_simulations, 123u);
  EXPECT_EQ(out.store_hits, 456u);
  EXPECT_EQ(out.steals, 1u);
  EXPECT_EQ(out.recoveries, 2u);
  EXPECT_EQ(out.lease_expiries, 1u);
  EXPECT_EQ(out.wall_s, 1.5);

  // A SIGKILLed worker leaves a short (or empty) pipe — never decoded.
  EXPECT_FALSE(campaign::WorkerReport::decode("", &out));
  EXPECT_FALSE(
      campaign::WorkerReport::decode(bytes.substr(0, bytes.size() - 3), &out));
  EXPECT_FALSE(campaign::WorkerReport::decode(bytes + "x", &out));
}

TEST(RunSingleTest, ResumeServesCheckpointsWithZeroFreshSimulations) {
  const std::string store_path = "campaign_lib_single.store";
  std::remove(store_path.c_str());
  PlanSpec spec;
  spec.gen_seeds = {5};
  spec.pdr_grid = {0.5, 0.7};
  std::string err;
  const auto plan = CampaignPlan::build(spec, &err);
  ASSERT_TRUE(plan) << err;

  campaign::RunConfig cfg;
  cfg.store_path = store_path;
  obs::MetricsRegistry metrics;
  const campaign::CampaignReport first =
      campaign::run_single(*plan, cfg, &metrics);
  ASSERT_EQ(first.cells.size(), 2u);
  EXPECT_EQ(first.skipped_cells(), 0u);
  EXPECT_GT(first.total_fresh_simulations(), 0u);
  EXPECT_EQ(first.stored_cells, 2u);
  EXPECT_EQ(first.stored_evals, first.total_fresh_simulations());

  cfg.resume = true;
  const campaign::CampaignReport resumed =
      campaign::run_single(*plan, cfg, &metrics);
  EXPECT_EQ(resumed.skipped_cells(), 2u);
  EXPECT_EQ(resumed.total_fresh_simulations(), 0u);
  // The skipped cells replay the first run's results bit-for-bit.
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(resumed.cells[i].result.best_power_mw,
              first.cells[i].result.best_power_mw);
    EXPECT_EQ(resumed.cells[i].result.simulations,
              first.cells[i].result.simulations);
  }
  std::remove(store_path.c_str());
}

}  // namespace
