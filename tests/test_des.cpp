// Unit tests for the discrete-event kernel (des/kernel.hpp), including
// the indexed-heap cancellation edge cases and the steady-state
// zero-allocation contract of the event arena (DESIGN.md §11).
#include "des/kernel.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <new>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/assert.hpp"

// Global allocation counter so tests can assert the kernel hot path
// stays off the heap.  This test binary is single-threaded; the
// counter is a plain integer on purpose (atomics would still be fine
// but are not needed).
namespace {
std::uint64_t g_heap_allocs = 0;
}  // namespace

void* operator new(std::size_t n) {
  ++g_heap_allocs;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) {
  ++g_heap_allocs;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc{};
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace hi::des {
namespace {

TEST(Kernel, ExecutesInTimeOrder) {
  Kernel k;
  std::vector<int> order;
  k.schedule_at(3.0, [&] { order.push_back(3); });
  k.schedule_at(1.0, [&] { order.push_back(1); });
  k.schedule_at(2.0, [&] { order.push_back(2); });
  k.run_until(10.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(k.now(), 10.0);
}

TEST(Kernel, SimultaneousEventsAreFifo) {
  Kernel k;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    k.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  k.run_until(5.0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(Kernel, NowAdvancesDuringExecution) {
  Kernel k;
  double seen = -1.0;
  k.schedule_at(4.5, [&] { seen = k.now(); });
  k.run_until(100.0);
  EXPECT_DOUBLE_EQ(seen, 4.5);
}

TEST(Kernel, ScheduleInUsesRelativeTime) {
  Kernel k;
  double seen = -1.0;
  k.schedule_at(2.0, [&] {
    k.schedule_in(3.0, [&] { seen = k.now(); });
  });
  k.run_until(10.0);
  EXPECT_DOUBLE_EQ(seen, 5.0);
}

TEST(Kernel, CancelPreventsExecution) {
  Kernel k;
  bool ran = false;
  const EventId id = k.schedule_at(1.0, [&] { ran = true; });
  k.cancel(id);
  k.run_until(5.0);
  EXPECT_FALSE(ran);
  EXPECT_EQ(k.events_processed(), 0u);
}

TEST(Kernel, CancelAfterExecutionIsNoop) {
  Kernel k;
  int runs = 0;
  const EventId id = k.schedule_at(1.0, [&] { ++runs; });
  k.run_until(2.0);
  k.cancel(id);  // already ran
  k.run_until(3.0);
  EXPECT_EQ(runs, 1);
}

TEST(Kernel, InvalidEventIdCancelIsNoop) {
  Kernel k;
  k.cancel(EventId{});  // must not crash
  EXPECT_FALSE(EventId{}.valid());
}

TEST(Kernel, RunUntilStopsAtHorizon) {
  Kernel k;
  bool late_ran = false;
  k.schedule_at(5.0, [&] { late_ran = true; });
  k.run_until(4.0);
  EXPECT_FALSE(late_ran);
  EXPECT_DOUBLE_EQ(k.now(), 4.0);
  k.run_until(6.0);
  EXPECT_TRUE(late_ran);
}

TEST(Kernel, EventAtHorizonRuns) {
  Kernel k;
  bool ran = false;
  k.schedule_at(4.0, [&] { ran = true; });
  k.run_until(4.0);
  EXPECT_TRUE(ran);
}

TEST(Kernel, HandlerMayScheduleAtCurrentTime) {
  Kernel k;
  std::vector<int> order;
  k.schedule_at(1.0, [&] {
    order.push_back(0);
    k.schedule_at(1.0, [&] { order.push_back(1); });
  });
  k.run_until(1.0);
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(Kernel, SelfReschedulingChain) {
  Kernel k;
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    if (count < 100) k.schedule_in(0.1, tick);
  };
  k.schedule_in(0.1, tick);
  k.run_until(100.0);
  EXPECT_EQ(count, 100);
  EXPECT_EQ(k.events_processed(), 100u);
}

TEST(Kernel, RunToCompletionDrainsQueue) {
  Kernel k;
  int count = 0;
  k.schedule_at(1.0, [&] { ++count; });
  k.schedule_at(1e9, [&] { ++count; });
  k.run_to_completion();
  EXPECT_EQ(count, 2);
  EXPECT_EQ(k.events_pending(), 0u);
}

TEST(Kernel, PendingCountExcludesCancelled) {
  Kernel k;
  const EventId a = k.schedule_at(1.0, [] {});
  k.schedule_at(2.0, [] {});
  EXPECT_EQ(k.events_pending(), 2u);
  k.cancel(a);
  EXPECT_EQ(k.events_pending(), 1u);
}

TEST(Kernel, SchedulingInPastThrows) {
  Kernel k;
  k.schedule_at(5.0, [] {});
  k.run_until(5.0);
  EXPECT_THROW(k.schedule_at(4.0, [] {}), InternalError);
  EXPECT_THROW(k.schedule_in(-1.0, [] {}), InternalError);
}

TEST(Kernel, ManyEventsStressOrdering) {
  Kernel k;
  double last = -1.0;
  bool monotone = true;
  for (int i = 0; i < 10'000; ++i) {
    const double t = static_cast<double>((i * 7919) % 1000) + 0.5;
    k.schedule_at(t, [&, t] {
      monotone = monotone && t >= last;
      last = t;
    });
  }
  k.run_until(2'000.0);
  EXPECT_TRUE(monotone);
  EXPECT_EQ(k.events_processed(), 10'000u);
}

// --- Indexed-heap cancellation edge cases --------------------------------

TEST(Kernel, CancelOnlyPendingEvent) {
  Kernel k;
  bool ran = false;
  const EventId id = k.schedule_at(1.0, [&] { ran = true; });
  k.cancel(id);
  EXPECT_EQ(k.events_pending(), 0u);
  k.run_until(5.0);
  EXPECT_FALSE(ran);
  EXPECT_EQ(k.events_cancelled(), 1u);
}

TEST(Kernel, CancelLastHeapEntry) {
  // The latest-scheduled event sits at the heap tail; removing it must
  // not disturb the rest of the order.
  Kernel k;
  std::vector<int> order;
  k.schedule_at(1.0, [&] { order.push_back(1); });
  k.schedule_at(2.0, [&] { order.push_back(2); });
  const EventId last = k.schedule_at(3.0, [&] { order.push_back(3); });
  k.cancel(last);
  k.run_until(10.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Kernel, CancelThenRescheduleAtEqualTimestamp) {
  // Cancelling A and rescheduling at the same time must put the new
  // event after every event scheduled before it (fresh sequence
  // number), not in A's old slot position.
  Kernel k;
  std::vector<int> order;
  const EventId a = k.schedule_at(1.0, [&] { order.push_back(0); });
  k.schedule_at(1.0, [&] { order.push_back(1); });
  k.cancel(a);
  k.schedule_at(1.0, [&] { order.push_back(2); });
  k.run_until(1.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Kernel, FifoSurvivesInteriorCancellations) {
  // Interleave three timestamps, then cancel interior events at each:
  // the swap-removals exercise both sift directions, and the FIFO order
  // among the equal-time survivors must be untouched.
  Kernel k;
  std::vector<std::pair<double, int>> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 30; ++i) {
    const double t = 1.0 + static_cast<double>(i % 3);
    ids.push_back(k.schedule_at(t, [&order, t, i] {
      order.emplace_back(t, i);
    }));
  }
  for (int i = 4; i < 30; i += 5) {
    k.cancel(ids[static_cast<std::size_t>(i)]);
  }
  k.run_until(10.0);
  ASSERT_EQ(order.size(), 24u);
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_LE(order[i - 1].first, order[i].first);
    if (order[i - 1].first == order[i].first) {
      EXPECT_LT(order[i - 1].second, order[i].second);  // FIFO within time
    }
  }
}

TEST(Kernel, CounterEquivalenceUnderMixedOps) {
  // events_processed/pending/cancelled must follow the historical
  // semantics: double-cancel counts once, cancelled events never run,
  // pending excludes cancelled.
  Kernel k;
  std::vector<EventId> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(
        k.schedule_at(1.0 + static_cast<double>(i), [] {}));
  }
  k.cancel(ids[0]);
  k.cancel(ids[0]);  // stale: must not double-count
  k.cancel(ids[5]);
  k.cancel(ids[9]);
  EXPECT_EQ(k.events_cancelled(), 3u);
  EXPECT_EQ(k.events_pending(), 7u);
  k.run_to_completion();
  EXPECT_EQ(k.events_processed(), 7u);
  EXPECT_EQ(k.events_cancelled(), 3u);
  EXPECT_EQ(k.events_pending(), 0u);
  EXPECT_GE(k.heap_highwater(), 10u);
}

TEST(Kernel, StaleIdAfterSlotReuseIsNoop) {
  // After an event runs, its arena slot is recycled under a new epoch;
  // the old id must not cancel the slot's new occupant.
  Kernel k;
  int first = 0;
  int second = 0;
  const EventId old_id = k.schedule_at(1.0, [&] { ++first; });
  k.run_until(2.0);
  const EventId new_id = k.schedule_at(3.0, [&] { ++second; });
  EXPECT_EQ(new_id.slot, old_id.slot);  // arena reuses the freed slot
  k.cancel(old_id);                     // stale epoch: no-op
  k.run_until(4.0);
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 1);
  EXPECT_EQ(k.events_cancelled(), 0u);
}

TEST(Kernel, ThrowingHandlerReleasesItsSlot) {
  Kernel k;
  k.schedule_at(1.0, [] { throw std::runtime_error("boom"); });
  EXPECT_THROW(k.run_until(2.0), std::runtime_error);
  EXPECT_EQ(k.events_pending(), 0u);
  // The kernel stays usable: the slot was released despite the throw.
  bool ran = false;
  k.schedule_at(3.0, [&] { ran = true; });
  k.run_until(4.0);
  EXPECT_TRUE(ran);
}

// --- Allocation contract -------------------------------------------------

TEST(Kernel, SteadyStateDispatchMakesNoHeapAllocations) {
  Kernel k;
  // Warm-up: size the arena, heap array, and free list beyond anything
  // the steady-state phase needs.
  int warm = 0;
  for (int i = 0; i < 64; ++i) {
    k.schedule_in(0.001 * (i + 1), [&warm] { ++warm; });
  }
  k.run_until(1.0);
  ASSERT_EQ(warm, 64);

  // Steady state: a self-rescheduling chain plus schedule/cancel churn,
  // all with small (inline-stored) handlers.  Zero heap traffic allowed.
  const std::uint64_t before = g_heap_allocs;
  int ticks = 0;
  struct Chain {
    Kernel* k;
    int* ticks;
    void operator()() const {
      if (++*ticks < 1000) {
        const EventId doomed = k->schedule_in(0.5, [] {});
        k->cancel(doomed);
        k->schedule_in(0.001, *this);
      }
    }
  };
  k.schedule_in(0.001, Chain{&k, &ticks});
  k.run_until(100.0);
  EXPECT_EQ(ticks, 1000);
  EXPECT_EQ(g_heap_allocs, before);
  EXPECT_EQ(k.handler_heap_allocs(), 0u);
}

TEST(Kernel, OversizedHandlerFallbackIsCounted) {
  Kernel k;
  std::array<char, Kernel::kInlineHandlerBytes + 16> big{};
  big[0] = 1;
  int sum = 0;
  k.schedule_at(1.0, [big, &sum] { sum += big[0]; });
  EXPECT_EQ(k.handler_heap_allocs(), 1u);
  k.run_until(2.0);
  EXPECT_EQ(sum, 1);
}

TEST(Kernel, IntrospectionCountersAdvance) {
  Kernel k;
  EXPECT_EQ(k.arena_chunks(), 0u);
  for (int i = 0; i < 300; ++i) {  // spills past one 256-slot chunk
    k.schedule_at(1.0 + i, [] {});
  }
  EXPECT_EQ(k.arena_chunks(), 2u);
  k.run_to_completion();
  // Draining a 300-deep heap exercises sift-down on every pop.
  EXPECT_GT(k.heap_sift_steps(), 0u);
}

}  // namespace
}  // namespace hi::des
