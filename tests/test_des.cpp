// Unit tests for the discrete-event kernel (des/kernel.hpp).
#include "des/kernel.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/assert.hpp"

namespace hi::des {
namespace {

TEST(Kernel, ExecutesInTimeOrder) {
  Kernel k;
  std::vector<int> order;
  k.schedule_at(3.0, [&] { order.push_back(3); });
  k.schedule_at(1.0, [&] { order.push_back(1); });
  k.schedule_at(2.0, [&] { order.push_back(2); });
  k.run_until(10.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(k.now(), 10.0);
}

TEST(Kernel, SimultaneousEventsAreFifo) {
  Kernel k;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    k.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  k.run_until(5.0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(Kernel, NowAdvancesDuringExecution) {
  Kernel k;
  double seen = -1.0;
  k.schedule_at(4.5, [&] { seen = k.now(); });
  k.run_until(100.0);
  EXPECT_DOUBLE_EQ(seen, 4.5);
}

TEST(Kernel, ScheduleInUsesRelativeTime) {
  Kernel k;
  double seen = -1.0;
  k.schedule_at(2.0, [&] {
    k.schedule_in(3.0, [&] { seen = k.now(); });
  });
  k.run_until(10.0);
  EXPECT_DOUBLE_EQ(seen, 5.0);
}

TEST(Kernel, CancelPreventsExecution) {
  Kernel k;
  bool ran = false;
  const EventId id = k.schedule_at(1.0, [&] { ran = true; });
  k.cancel(id);
  k.run_until(5.0);
  EXPECT_FALSE(ran);
  EXPECT_EQ(k.events_processed(), 0u);
}

TEST(Kernel, CancelAfterExecutionIsNoop) {
  Kernel k;
  int runs = 0;
  const EventId id = k.schedule_at(1.0, [&] { ++runs; });
  k.run_until(2.0);
  k.cancel(id);  // already ran
  k.run_until(3.0);
  EXPECT_EQ(runs, 1);
}

TEST(Kernel, InvalidEventIdCancelIsNoop) {
  Kernel k;
  k.cancel(EventId{});  // must not crash
  EXPECT_FALSE(EventId{}.valid());
}

TEST(Kernel, RunUntilStopsAtHorizon) {
  Kernel k;
  bool late_ran = false;
  k.schedule_at(5.0, [&] { late_ran = true; });
  k.run_until(4.0);
  EXPECT_FALSE(late_ran);
  EXPECT_DOUBLE_EQ(k.now(), 4.0);
  k.run_until(6.0);
  EXPECT_TRUE(late_ran);
}

TEST(Kernel, EventAtHorizonRuns) {
  Kernel k;
  bool ran = false;
  k.schedule_at(4.0, [&] { ran = true; });
  k.run_until(4.0);
  EXPECT_TRUE(ran);
}

TEST(Kernel, HandlerMayScheduleAtCurrentTime) {
  Kernel k;
  std::vector<int> order;
  k.schedule_at(1.0, [&] {
    order.push_back(0);
    k.schedule_at(1.0, [&] { order.push_back(1); });
  });
  k.run_until(1.0);
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(Kernel, SelfReschedulingChain) {
  Kernel k;
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    if (count < 100) k.schedule_in(0.1, tick);
  };
  k.schedule_in(0.1, tick);
  k.run_until(100.0);
  EXPECT_EQ(count, 100);
  EXPECT_EQ(k.events_processed(), 100u);
}

TEST(Kernel, RunToCompletionDrainsQueue) {
  Kernel k;
  int count = 0;
  k.schedule_at(1.0, [&] { ++count; });
  k.schedule_at(1e9, [&] { ++count; });
  k.run_to_completion();
  EXPECT_EQ(count, 2);
  EXPECT_EQ(k.events_pending(), 0u);
}

TEST(Kernel, PendingCountExcludesCancelled) {
  Kernel k;
  const EventId a = k.schedule_at(1.0, [] {});
  k.schedule_at(2.0, [] {});
  EXPECT_EQ(k.events_pending(), 2u);
  k.cancel(a);
  EXPECT_EQ(k.events_pending(), 1u);
}

TEST(Kernel, SchedulingInPastThrows) {
  Kernel k;
  k.schedule_at(5.0, [] {});
  k.run_until(5.0);
  EXPECT_THROW(k.schedule_at(4.0, [] {}), InternalError);
  EXPECT_THROW(k.schedule_in(-1.0, [] {}), InternalError);
}

TEST(Kernel, ManyEventsStressOrdering) {
  Kernel k;
  double last = -1.0;
  bool monotone = true;
  for (int i = 0; i < 10'000; ++i) {
    const double t = static_cast<double>((i * 7919) % 1000) + 0.5;
    k.schedule_at(t, [&, t] {
      monotone = monotone && t >= last;
      last = t;
    });
  }
  k.run_until(2'000.0);
  EXPECT_TRUE(monotone);
  EXPECT_EQ(k.events_processed(), 10'000u);
}

}  // namespace
}  // namespace hi::des
