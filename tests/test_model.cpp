// Unit tests for configuration types, the component library (paper
// Table 1), the analytic power models (Eqs. 3/5/9), and the design-space
// enumeration (model/*).
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/assert.hpp"
#include "common/units.hpp"
#include "model/design_space.hpp"
#include "model/power.hpp"

namespace hi::model {
namespace {

TEST(Topology, MaskAndLocationsRoundTrip) {
  const Topology t = Topology::from_locations({0, 1, 3, 6});
  EXPECT_EQ(t.count(), 4);
  EXPECT_TRUE(t.has(0));
  EXPECT_TRUE(t.has(6));
  EXPECT_FALSE(t.has(2));
  EXPECT_EQ(t.locations(), (std::vector<int>{0, 1, 3, 6}));
  EXPECT_EQ(Topology::from_mask(t.mask()), t);
  EXPECT_EQ(t.to_string(), "[0,1,3,6]");
}

TEST(Topology, SetAndClear) {
  Topology t;
  t.set(5, true);
  EXPECT_TRUE(t.has(5));
  t.set(5, false);
  EXPECT_FALSE(t.has(5));
  EXPECT_EQ(t.count(), 0);
}

TEST(Topology, RejectsBadInput) {
  EXPECT_THROW(Topology::from_locations({0, 0}), ModelError);
  EXPECT_THROW(Topology::from_mask(1u << 10), ModelError);
  Topology t;
  EXPECT_THROW(t.set(10, true), ModelError);
  EXPECT_THROW((void)t.has(-1), ModelError);
}

TEST(Library, Cc2650MatchesPaperTable1) {
  const RadioChip& chip = cc2650();
  EXPECT_DOUBLE_EQ(chip.fc_hz, 2.4e9);
  EXPECT_DOUBLE_EQ(chip.bit_rate_bps, 1.024e6);
  EXPECT_DOUBLE_EQ(chip.rx_dbm, -97.0);
  EXPECT_DOUBLE_EQ(chip.rx_mw, 17.7);
  ASSERT_EQ(chip.num_tx_levels(), 3);
  EXPECT_DOUBLE_EQ(chip.tx_levels[0].dbm, -20.0);
  EXPECT_DOUBLE_EQ(chip.tx_levels[0].mw, 9.55);
  EXPECT_DOUBLE_EQ(chip.tx_levels[1].dbm, -10.0);
  EXPECT_DOUBLE_EQ(chip.tx_levels[1].mw, 11.56);
  EXPECT_DOUBLE_EQ(chip.tx_levels[2].dbm, 0.0);
  EXPECT_DOUBLE_EQ(chip.tx_levels[2].mw, 18.3);
}

TEST(Library, ConfigureSelectsLevel) {
  const RadioConfig r = cc2650().configure(1);
  EXPECT_DOUBLE_EQ(r.tx_dbm, -10.0);
  EXPECT_DOUBLE_EQ(r.tx_mw, 11.56);
  EXPECT_DOUBLE_EQ(r.rx_dbm, -97.0);
  EXPECT_THROW((void)cc2650().configure(3), ModelError);
  EXPECT_THROW((void)cc2650().configure(-1), ModelError);
}

TEST(Power, PacketDurationFromTable1) {
  const RadioConfig r = cc2650().configure(2);
  AppConfig app;  // 100 bytes
  EXPECT_DOUBLE_EQ(packet_duration_s(r, app), 781.25e-6);
}

TEST(Power, MeshRetxBoundFormula) {
  // NreTx = N^2 - 4N + 5 (paper Sec. 4.1).
  EXPECT_DOUBLE_EQ(mesh_retx_bound(2), 1.0);
  EXPECT_DOUBLE_EQ(mesh_retx_bound(4), 5.0);
  EXPECT_DOUBLE_EQ(mesh_retx_bound(5), 10.0);
  EXPECT_DOUBLE_EQ(mesh_retx_bound(6), 17.0);
  EXPECT_THROW((void)mesh_retx_bound(1), ModelError);
}

TEST(Power, PerRoundRadioEq3) {
  const RadioConfig r = cc2650().configure(2);
  // Eq. (3): TxmW + (N-1) RxmW = 18.3 + 3 * 17.7 = 71.4 mW.
  EXPECT_DOUBLE_EQ(per_round_radio_mw(r, 4), 71.4);
}

TEST(Power, StarRadioPowerEq5HandComputed) {
  const RadioConfig r = cc2650().configure(2);
  AppConfig app;  // phi = 10, L = 100
  // phi*Tpkt*(Tx + 2(N-1)Rx) = 10 * 781.25e-6 * (18.3 + 6*17.7)
  const double expected = 10.0 * 781.25e-6 * (18.3 + 6.0 * 17.7);
  EXPECT_NEAR(radio_power_mw(r, app, RoutingProtocol::kStar, 4), expected,
              1e-12);
}

TEST(Power, MeshRadioPowerEq5HandComputed) {
  const RadioConfig r = cc2650().configure(2);
  AppConfig app;
  // phi*Tpkt*NreTx*(Tx + (N-1)Rx) = 10*781.25e-6*5*(18.3 + 3*17.7)
  const double expected = 10.0 * 781.25e-6 * 5.0 * (18.3 + 3.0 * 17.7);
  EXPECT_NEAR(radio_power_mw(r, app, RoutingProtocol::kMesh, 4), expected,
              1e-12);
}

TEST(Power, NodePowerEq9AddsBaseline) {
  Scenario sc;
  const NetworkConfig cfg = sc.make_config(
      Topology::from_locations({0, 1, 3, 5}), 2, MacProtocol::kCsma,
      RoutingProtocol::kStar);
  EXPECT_NEAR(node_power_mw(cfg),
              0.1 + radio_power_mw(cfg.radio, cfg.app,
                                   RoutingProtocol::kStar, 4),
              1e-12);
}

TEST(Power, LifetimeEq4) {
  // 2430 J at 1 mW = 2.43e6 s ~ 28.1 days.
  EXPECT_DOUBLE_EQ(lifetime_s(2430.0, 1.0), 2.43e6);
  EXPECT_NEAR(seconds_to_days(lifetime_s(2430.0, 1.0)), 28.125, 1e-9);
  EXPECT_THROW((void)lifetime_s(0.0, 1.0), ModelError);
  EXPECT_THROW((void)lifetime_s(1.0, 0.0), ModelError);
}

TEST(Power, MeshCostsMoreThanStarAnalytically) {
  Scenario sc;
  const Topology t = Topology::from_locations({0, 1, 3, 5});
  for (int lvl = 0; lvl < 3; ++lvl) {
    const auto star =
        sc.make_config(t, lvl, MacProtocol::kCsma, RoutingProtocol::kStar);
    const auto mesh =
        sc.make_config(t, lvl, MacProtocol::kCsma, RoutingProtocol::kMesh);
    EXPECT_GT(node_power_mw(mesh), node_power_mw(star));
    EXPECT_LT(analytic_nlt_s(mesh), analytic_nlt_s(star));
  }
}

TEST(Power, HigherTxLevelCostsMore) {
  Scenario sc;
  const Topology t = Topology::from_locations({0, 1, 3, 5});
  double prev = 0.0;
  for (int lvl = 0; lvl < 3; ++lvl) {
    const auto cfg =
        sc.make_config(t, lvl, MacProtocol::kCsma, RoutingProtocol::kStar);
    EXPECT_GT(node_power_mw(cfg), prev);
    prev = node_power_mw(cfg);
  }
}

TEST(Power, AlphaFactorProperties) {
  Scenario sc;
  const auto cfg = sc.make_config(Topology::from_locations({0, 1, 3, 5}), 2,
                                  MacProtocol::kCsma, RoutingProtocol::kStar);
  // alpha >= 1 always; alpha(PDR=1) accounts only for relay savings.
  EXPECT_GE(alpha_factor(cfg, 1.0), 1.0);
  // Lower reliability bound => more packets may be lost => lower possible
  // power => larger alpha.
  EXPECT_GT(alpha_factor(cfg, 0.5), alpha_factor(cfg, 0.9));
  EXPECT_GT(alpha_factor(cfg, 0.0), alpha_factor(cfg, 0.5));
  EXPECT_THROW((void)alpha_factor(cfg, 1.5), ModelError);
}

TEST(Power, PowerLowerBoundBelowAnalytic) {
  Scenario sc;
  for (const auto rt : {RoutingProtocol::kStar, RoutingProtocol::kMesh}) {
    const auto cfg = sc.make_config(Topology::from_locations({0, 2, 4, 6}),
                                    1, MacProtocol::kTdma, rt);
    for (double pdr : {0.0, 0.5, 0.9, 1.0}) {
      EXPECT_LE(power_lower_bound_mw(cfg, pdr), node_power_mw(cfg));
      EXPECT_GE(power_lower_bound_mw(cfg, pdr), cfg.app.baseline_mw);
    }
    EXPECT_GT(power_lower_bound_mw(cfg, 0.9), cfg.app.baseline_mw);
    EXPECT_THROW((void)power_lower_bound_mw(cfg, 0.9, 0.0), ModelError);
    EXPECT_THROW((void)power_lower_bound_mw(cfg, 0.9, 1.5), ModelError);
  }
}

TEST(Power, MeasuredPowerFloorProperties) {
  Scenario sc;
  for (const auto rt : {RoutingProtocol::kStar, RoutingProtocol::kMesh}) {
    const auto cfg = sc.make_config(Topology::from_locations({0, 2, 4, 6}),
                                    1, MacProtocol::kCsma, rt);
    // Monotone in the reliability bound, bracketed by the baseline and
    // the zero-loss analytic power.
    double prev = cfg.app.baseline_mw;
    for (double pdr : {0.0, 0.5, 0.9, 1.0}) {
      const double floor = measured_power_floor_mw(cfg, pdr, 10.0, 0.25);
      EXPECT_GE(floor, prev);
      prev = floor;
    }
    EXPECT_GT(measured_power_floor_mw(cfg, 0.9, 10.0, 0.25),
              cfg.app.baseline_mw);
    // A window too short to force any generated traffic degenerates to
    // the baseline (the floor then never triggers early termination).
    EXPECT_EQ(measured_power_floor_mw(cfg, 0.9, 0.02, 0.01),
              cfg.app.baseline_mw);
    EXPECT_THROW((void)measured_power_floor_mw(cfg, 1.5, 10.0, 0.25),
                 ModelError);
    EXPECT_THROW((void)measured_power_floor_mw(cfg, 0.9, 0.25, 0.25),
                 ModelError);
  }
  // The coordinator exclusion discounts star deliveries: a mesh cell of
  // the same shape keeps all of them and floors strictly higher.
  const auto star = sc.make_config(Topology::from_locations({0, 2, 4, 6}), 1,
                                   MacProtocol::kCsma, RoutingProtocol::kStar);
  const auto mesh = sc.make_config(Topology::from_locations({0, 2, 4, 6}), 1,
                                   MacProtocol::kCsma, RoutingProtocol::kMesh);
  EXPECT_LT(measured_power_floor_mw(star, 0.9, 10.0, 0.25),
            measured_power_floor_mw(mesh, 0.9, 10.0, 0.25));
}

TEST(Config, LabelMatchesPaperStyle) {
  Scenario sc;
  const auto cfg = sc.make_config(Topology::from_locations({0, 1, 3, 6}), 1,
                                  MacProtocol::kCsma, RoutingProtocol::kStar);
  EXPECT_EQ(cfg.label(), "[0,1,3,6], Star, CSMA, -10dBm");
}

TEST(Config, DesignKeyIsInjectiveOverChoices) {
  Scenario sc;
  std::set<std::uint64_t> keys;
  int total = 0;
  for (const auto& cfg : sc.feasible_configs()) {
    keys.insert(cfg.design_key());
    ++total;
  }
  EXPECT_EQ(static_cast<int>(keys.size()), total);
}

TEST(Scenario, TopologyFeasibility) {
  Scenario sc;
  EXPECT_TRUE(sc.topology_feasible(Topology::from_locations({0, 1, 3, 5})));
  EXPECT_TRUE(
      sc.topology_feasible(Topology::from_locations({0, 2, 4, 6, 7, 8})));
  // Missing chest.
  EXPECT_FALSE(sc.topology_feasible(Topology::from_locations({1, 2, 3, 5})));
  // Missing a foot node.
  EXPECT_FALSE(sc.topology_feasible(Topology::from_locations({0, 1, 5, 7})));
  // Too many nodes (7).
  EXPECT_FALSE(sc.topology_feasible(
      Topology::from_locations({0, 1, 2, 3, 4, 5, 6})));
  // Too few nodes.
  EXPECT_FALSE(sc.topology_feasible(Topology::from_locations({0, 1, 3})));
}

TEST(Scenario, DependencyConstraintsFilterTopologies) {
  // Paper Sec. 2.1: "location i be used if location j is used",
  // n_j - n_i <= 0.  Require the head (8) to be accompanied by the
  // left upper arm (7).
  Scenario sc;
  sc.dependencies.push_back({8, 7, "EEG reference electrode"});
  EXPECT_FALSE(
      sc.topology_feasible(Topology::from_locations({0, 1, 3, 5, 8})));
  EXPECT_TRUE(
      sc.topology_feasible(Topology::from_locations({0, 1, 3, 5, 8, 7})));
  EXPECT_TRUE(
      sc.topology_feasible(Topology::from_locations({0, 1, 3, 5})));
  // The feasible set shrinks accordingly.
  Scenario base;
  EXPECT_LT(sc.feasible_topologies().size(),
            base.feasible_topologies().size());
}

TEST(Scenario, RawDesignSpaceIs12288) {
  // Paper Sec. 4.1: 2^10 topologies x 3 Tx levels x 2 MAC x 2 routing.
  Scenario sc;
  EXPECT_EQ(sc.raw_design_space_size(), 12'288u);
}

TEST(Scenario, FeasibleTopologyCountMatchesDirectEnumeration) {
  Scenario sc;
  // Count by brute force over the placement lattice.
  int expected = 0;
  for (std::uint32_t mask = 0; mask < 1024; ++mask) {
    const Topology t = Topology::from_mask(static_cast<std::uint16_t>(mask));
    if (sc.topology_feasible(t)) ++expected;
  }
  EXPECT_EQ(static_cast<int>(sc.feasible_topologies().size()), expected);
  EXPECT_GT(expected, 0);
  // Each feasible topology expands to 3 x 2 x 2 = 12 design points.
  EXPECT_EQ(sc.feasible_configs().size(),
            static_cast<std::size_t>(expected) * 12u);
}

TEST(Scenario, MakeConfigWiresEverything) {
  Scenario sc;
  const auto cfg = sc.make_config(Topology::from_locations({0, 1, 4, 5}), 0,
                                  MacProtocol::kTdma, RoutingProtocol::kMesh);
  EXPECT_EQ(cfg.tx_level_index, 0);
  EXPECT_DOUBLE_EQ(cfg.radio.tx_dbm, -20.0);
  EXPECT_EQ(cfg.mac.protocol, MacProtocol::kTdma);
  EXPECT_DOUBLE_EQ(cfg.mac.slot_s, 1e-3);
  EXPECT_EQ(cfg.routing.protocol, RoutingProtocol::kMesh);
  EXPECT_EQ(cfg.routing.max_hops, 2);
  EXPECT_EQ(cfg.routing.coordinator, 0);
  EXPECT_DOUBLE_EQ(cfg.battery_j, 2430.0);
  EXPECT_DOUBLE_EQ(cfg.app.baseline_mw, 0.1);
}

}  // namespace
}  // namespace hi::model
