// Integration tests for the whole-network simulation (net/network.hpp):
// PDR accounting (Eqs. 6-7), power/lifetime (Eq. 4), determinism, and the
// lossless-limit agreement with the analytic model of Eq. (5)/(9).
#include "net/network.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "common/units.hpp"
#include "model/design_space.hpp"
#include "model/power.hpp"

namespace hi::net {
namespace {

/// A perfect channel: every link at `pl` dB, no fading.
channel::StaticChannel uniform_channel(double pl) {
  channel::PathLossMatrix m;
  for (int i = 0; i < channel::kNumLocations; ++i) {
    for (int j = i + 1; j < channel::kNumLocations; ++j) {
      m.set_db(i, j, pl);
    }
  }
  return channel::StaticChannel{m};
}

model::NetworkConfig star_config(model::MacProtocol mac =
                                     model::MacProtocol::kTdma) {
  model::Scenario sc;
  return sc.make_config(model::Topology::from_locations({0, 1, 3, 5}), 2,
                        mac, model::RoutingProtocol::kStar);
}

model::NetworkConfig mesh_config(model::MacProtocol mac =
                                     model::MacProtocol::kTdma) {
  model::Scenario sc;
  return sc.make_config(model::Topology::from_locations({0, 1, 3, 5}), 2,
                        mac, model::RoutingProtocol::kMesh);
}

TEST(Network, PerfectChannelGivesUnitPdr) {
  auto ch = uniform_channel(50.0);
  SimParams sp;
  sp.duration_s = 30.0;
  for (const auto& cfg : {star_config(), mesh_config()}) {
    const SimResult r = simulate(cfg, ch, sp);
    EXPECT_DOUBLE_EQ(r.pdr, 1.0) << cfg.label();
    for (const NodeResult& n : r.nodes) {
      EXPECT_DOUBLE_EQ(n.pdr, 1.0);
      EXPECT_GT(n.app_sent, 0u);
    }
  }
}

TEST(Network, DeadChannelGivesZeroPdr) {
  auto ch = uniform_channel(150.0);
  SimParams sp;
  sp.duration_s = 10.0;
  const SimResult r = simulate(star_config(), ch, sp);
  EXPECT_DOUBLE_EQ(r.pdr, 0.0);
  // Nothing received: only baseline + own transmissions burn power.
  for (const NodeResult& n : r.nodes) {
    EXPECT_EQ(n.radio.rx_ok, 0u);
    EXPECT_GT(n.radio.tx_packets, 0u);
  }
}

TEST(Network, LosslessStarPowerMatchesAnalyticModel) {
  // In the lossless TDMA limit the measured power must approach Eq. (9):
  // each round costs 1 Tx + 2(N-1) Rx per non-coordinator node.
  auto ch = uniform_channel(50.0);
  SimParams sp;
  sp.duration_s = 120.0;
  sp.gen_guard_s = 1.0;
  const auto cfg = star_config(model::MacProtocol::kTdma);
  const SimResult r = simulate(cfg, ch, sp);
  ASSERT_DOUBLE_EQ(r.pdr, 1.0);
  const double analytic = model::node_power_mw(cfg);
  // Eq. (5) charges two receptions per packet per node; packets destined
  // to the coordinator get no echo, so the measured power sits a little
  // below the analytic estimate but within the same regime.
  EXPECT_LE(r.worst_power_mw, analytic);
  EXPECT_GE(r.worst_power_mw, 0.75 * analytic);
}

TEST(Network, LosslessMeshPowerMatchesAnalyticNreTxModel) {
  // Every-copy controlled flooding transmits each packet exactly
  // NreTx = N^2-4N+5 times in the lossless limit, so the simulated power
  // must land on the paper's Eq. (5) mesh model (up to the generation
  // guard and round-robin destination imbalance).
  auto ch = uniform_channel(50.0);
  SimParams sp;
  sp.duration_s = 120.0;
  const auto cfg = mesh_config(model::MacProtocol::kTdma);
  const SimResult r = simulate(cfg, ch, sp);
  ASSERT_DOUBLE_EQ(r.pdr, 1.0);
  const double analytic = model::node_power_mw(cfg);
  EXPECT_LE(r.worst_power_mw, analytic * 1.02);
  EXPECT_GE(r.worst_power_mw, analytic * 0.88);
  // And the mesh costs far more than the star (relaying is real work).
  const SimResult rs = simulate(star_config(model::MacProtocol::kTdma), ch,
                                sp);
  EXPECT_GT(r.worst_power_mw, 1.5 * rs.worst_power_mw);
}

TEST(Network, NltUsesWorstNonCoordinatorNode) {
  auto ch = uniform_channel(50.0);
  SimParams sp;
  sp.duration_s = 30.0;
  const auto cfg = star_config();
  const SimResult r = simulate(cfg, ch, sp);
  double worst = 0.0;
  for (const NodeResult& n : r.nodes) {
    if (n.location == cfg.routing.coordinator) continue;
    worst = std::max(worst, n.power_mw);
  }
  EXPECT_DOUBLE_EQ(r.worst_power_mw, worst);
  EXPECT_NEAR(r.nlt_s, cfg.battery_j / mw_to_w(worst), 1e-6);
}

TEST(Network, CoordinatorBurnsMoreButIsExcluded) {
  // The star coordinator relays everyone's packets: highest power in the
  // network, but the paper gives it a larger battery and excludes it.
  auto ch = uniform_channel(50.0);
  SimParams sp;
  sp.duration_s = 30.0;
  const auto cfg = star_config();
  const SimResult r = simulate(cfg, ch, sp);
  double coor_power = 0.0;
  for (const NodeResult& n : r.nodes) {
    if (n.location == cfg.routing.coordinator) coor_power = n.power_mw;
  }
  EXPECT_GT(coor_power, r.worst_power_mw);
}

TEST(Network, MeshNltCountsAllNodes) {
  auto ch = uniform_channel(50.0);
  SimParams sp;
  sp.duration_s = 30.0;
  const SimResult r = simulate(mesh_config(), ch, sp);
  double worst = 0.0;
  for (const NodeResult& n : r.nodes) worst = std::max(worst, n.power_mw);
  EXPECT_DOUBLE_EQ(r.worst_power_mw, worst);
}

TEST(Network, DeterministicBySeed) {
  SimParams sp;
  sp.duration_s = 20.0;
  sp.seed = 77;
  auto c1 = channel::make_default_body_channel(5);
  auto c2 = channel::make_default_body_channel(5);
  const SimResult a = simulate(star_config(model::MacProtocol::kCsma), *c1,
                               sp);
  const SimResult b = simulate(star_config(model::MacProtocol::kCsma), *c2,
                               sp);
  EXPECT_DOUBLE_EQ(a.pdr, b.pdr);
  EXPECT_DOUBLE_EQ(a.worst_power_mw, b.worst_power_mw);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.medium.transmissions, b.medium.transmissions);
}

TEST(Network, DifferentSeedsGiveDifferentRuns) {
  SimParams sp;
  sp.duration_s = 20.0;
  sp.seed = 1;
  auto c1 = channel::make_default_body_channel(5);
  const SimResult a = simulate(star_config(model::MacProtocol::kCsma), *c1,
                               sp);
  sp.seed = 2;
  auto c2 = channel::make_default_body_channel(6);
  const SimResult b = simulate(star_config(model::MacProtocol::kCsma), *c2,
                               sp);
  EXPECT_NE(a.pdr, b.pdr);
}

TEST(Network, GenerationGuardLimitsInFlightLoss) {
  // Packets stop `gen_guard_s` before the end: on a perfect channel the
  // PDR stays exactly 1 (no clipped tail).
  auto ch = uniform_channel(50.0);
  SimParams sp;
  sp.duration_s = 5.0;
  sp.gen_guard_s = 0.5;
  const SimResult r = simulate(star_config(), ch, sp);
  EXPECT_DOUBLE_EQ(r.pdr, 1.0);
  for (const NodeResult& n : r.nodes) {
    EXPECT_NEAR(static_cast<double>(n.app_sent), 45.0, 2.0);
  }
}

TEST(Network, RejectsBadInput) {
  auto ch = uniform_channel(50.0);
  SimParams sp;
  model::Scenario sc;
  // One-node network.
  const auto solo = sc.make_config(model::Topology::from_locations({0}), 0,
                                   model::MacProtocol::kCsma,
                                   model::RoutingProtocol::kMesh);
  EXPECT_THROW((void)simulate(solo, ch, sp), ModelError);
  // Star without its coordinator.
  const auto headless = sc.make_config(
      model::Topology::from_locations({1, 2, 3, 5}), 0,
      model::MacProtocol::kCsma, model::RoutingProtocol::kStar);
  EXPECT_THROW((void)simulate(headless, ch, sp), ModelError);
  // Duration shorter than the guard.
  sp.duration_s = 0.5;
  sp.gen_guard_s = 1.0;
  EXPECT_THROW((void)simulate(star_config(), ch, sp), ModelError);
}

TEST(Network, AveragedRunsReduceVariance) {
  SimParams sp;
  sp.duration_s = 20.0;
  sp.seed = 9;
  RunningStats spread;
  const SimResult avg = simulate_averaged(
      star_config(model::MacProtocol::kCsma), sp, 5,
      default_channel_factory(), &spread, nullptr);
  EXPECT_EQ(spread.count(), 5u);
  EXPECT_NEAR(avg.pdr, spread.mean(), 1e-12);
  EXPECT_GT(avg.pdr, 0.0);
  EXPECT_LT(avg.pdr, 1.0);  // body channel is lossy at 0 dBm
  // NLT consistent with the averaged power.
  EXPECT_NEAR(avg.nlt_s,
              star_config().battery_j / mw_to_w(avg.worst_power_mw), 1e-6);
}

}  // namespace
}  // namespace hi::net
