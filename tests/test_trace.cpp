// Unit tests for the trace-driven channel (channel/trace.hpp): sampling,
// interpolation, wrap-around, CSV round-trip, and replaying a recorded
// Gauss-Markov realization.
#include "channel/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/assert.hpp"

namespace hi::channel {
namespace {

TEST(ChannelTrace, SetAndSampleSymmetric) {
  ChannelTrace t(0.5, 4);
  t.set(0, 3, 2, 77.0);
  EXPECT_DOUBLE_EQ(t.sample(0, 3, 2), 77.0);
  EXPECT_DOUBLE_EQ(t.sample(3, 0, 2), 77.0);
  EXPECT_DOUBLE_EQ(t.dt_s(), 0.5);
  EXPECT_EQ(t.samples(), 4u);
  EXPECT_DOUBLE_EQ(t.duration_s(), 2.0);
}

TEST(ChannelTrace, LinearInterpolation) {
  ChannelTrace t(1.0, 3);
  t.set(0, 1, 0, 60.0);
  t.set(0, 1, 1, 70.0);
  t.set(0, 1, 2, 80.0);
  EXPECT_DOUBLE_EQ(t.at(0, 1, 0.0), 60.0);
  EXPECT_DOUBLE_EQ(t.at(0, 1, 0.5), 65.0);
  EXPECT_DOUBLE_EQ(t.at(0, 1, 1.0), 70.0);
  EXPECT_DOUBLE_EQ(t.at(0, 1, 1.75), 77.5);
}

TEST(ChannelTrace, WrapsAroundAtTheEnd) {
  ChannelTrace t(1.0, 2);
  t.set(0, 1, 0, 60.0);
  t.set(0, 1, 1, 70.0);
  // After the last sample, interpolate back toward sample 0.
  EXPECT_DOUBLE_EQ(t.at(0, 1, 1.5), 65.0);
  // Beyond the duration, the trace repeats.
  EXPECT_DOUBLE_EQ(t.at(0, 1, 2.0), 60.0);
  EXPECT_DOUBLE_EQ(t.at(0, 1, 2.5), 65.0);
}

TEST(ChannelTrace, SelfPathLossIsZero) {
  ChannelTrace t(1.0, 2);
  EXPECT_DOUBLE_EQ(t.at(4, 4, 0.7), 0.0);
  EXPECT_DOUBLE_EQ(t.mean_db(4, 4), 0.0);
}

TEST(ChannelTrace, MeanIsSampleAverage) {
  ChannelTrace t(1.0, 4);
  for (std::size_t k = 0; k < 4; ++k) {
    t.set(2, 5, k, 60.0 + 2.0 * static_cast<double>(k));
  }
  EXPECT_DOUBLE_EQ(t.mean_db(2, 5), 63.0);
}

TEST(ChannelTrace, CsvRoundTrip) {
  ChannelTrace t(0.25, 5);
  Rng rng(9);
  for (int i = 0; i < kNumLocations; ++i) {
    for (int j = i + 1; j < kNumLocations; ++j) {
      for (std::size_t k = 0; k < 5; ++k) {
        t.set(i, j, k, rng.uniform(40.0, 100.0));
      }
    }
  }
  std::stringstream ss;
  t.save_csv(ss);
  const ChannelTrace back = ChannelTrace::load_csv(ss);
  EXPECT_EQ(back.samples(), t.samples());
  EXPECT_NEAR(back.dt_s(), t.dt_s(), 1e-12);
  for (int i = 0; i < kNumLocations; ++i) {
    for (int j = i + 1; j < kNumLocations; ++j) {
      for (std::size_t k = 0; k < 5; ++k) {
        EXPECT_NEAR(back.sample(i, j, k), t.sample(i, j, k), 1e-9);
      }
    }
  }
}

TEST(ChannelTrace, LoadRejectsMalformedCsv) {
  {
    std::stringstream empty;
    EXPECT_THROW((void)ChannelTrace::load_csv(empty), ModelError);
  }
  {
    std::stringstream bad("header\n1,2,3\n");
    EXPECT_THROW((void)ChannelTrace::load_csv(bad), ModelError);
  }
  {
    std::stringstream nan_row("h\n0");
    EXPECT_THROW((void)ChannelTrace::load_csv(nan_row), ModelError);
  }
}

TEST(ChannelTrace, RejectsBadConstruction) {
  EXPECT_THROW(ChannelTrace(0.0, 4), ModelError);
  EXPECT_THROW(ChannelTrace(1.0, 0), ModelError);
}

TEST(RecordTrace, CapturesBodyChannelRealization) {
  auto body = make_default_body_channel(17);
  const ChannelTrace trace = record_trace(*body, 10.0, 0.1);
  EXPECT_EQ(trace.samples(), 100u);
  // Replaying at the sample instants reproduces the recording exactly.
  // The comparison channel must be driven through the *same* sampling
  // sequence: a Gauss-Markov path depends on the query instants.
  TraceChannel replay(trace);
  auto body2 = make_default_body_channel(17);
  for (std::size_t k = 0; k < 100; ++k) {
    const double t = static_cast<double>(k) * 0.1;
    const double expected = body2->path_loss_db(0, 3, t);
    if (k % 7 == 0) {
      EXPECT_DOUBLE_EQ(replay.path_loss_db(0, 3, t), expected);
    }
  }
}

TEST(TraceChannel, MeanTracksCalibratedMatrix) {
  auto body = make_default_body_channel(23);
  TraceChannel replay(record_trace(*body, 200.0, 0.2));
  // Long enough trace: the time-average approaches the matrix mean.
  EXPECT_NEAR(replay.mean_path_loss_db(0, 1),
              calibrated_body_path_loss().db(0, 1), 2.0);
}

TEST(TraceChannel, IsDeterministicAcrossQueries) {
  auto body = make_default_body_channel(29);
  TraceChannel replay(record_trace(*body, 5.0, 0.5));
  const double a = replay.path_loss_db(1, 6, 1.23);
  const double b = replay.path_loss_db(1, 6, 1.23);
  EXPECT_DOUBLE_EQ(a, b);
}

}  // namespace
}  // namespace hi::channel
