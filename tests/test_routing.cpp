// Unit tests for the routing layer: star coordinator echo and mesh
// controlled flooding with unicast destinations (net/routing.hpp).
#include "net/routing.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "channel/channel.hpp"
#include "common/assert.hpp"
#include "des/kernel.hpp"
#include "net/csma.hpp"
#include "net/medium.hpp"
#include "net/tdma.hpp"

namespace hi::net {
namespace {

/// A small fully-wired network with selectable routing/MAC, on a static
/// channel whose links the tests can cut (by setting 120 dB path loss).
class RoutingFixture : public ::testing::Test {
 protected:
  void connect_all(int n, double pl = 60.0) {
    n_ = n;
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        matrix_.set_db(i, j, pl);
      }
    }
  }

  void cut_link(int i, int j) { matrix_.set_db(i, j, 120.0); }

  void build_star(int coordinator) {
    build([&](Mac& mac, int loc) {
      return std::make_unique<StarRouting>(mac, loc, coordinator);
    });
  }

  void build_mesh(int max_hops) {
    build([&](Mac& mac, int loc) {
      return std::make_unique<MeshRouting>(mac, loc, max_hops);
    });
  }

  void build_mesh_tdma(int max_hops) {
    use_tdma_ = true;
    build_mesh(max_hops);
  }

  template <typename MakeRouting>
  void build(MakeRouting make_routing) {
    channel_.emplace(matrix_);
    medium_.emplace(kernel_, *channel_);
    for (int i = 0; i < n_; ++i) {
      radios_.push_back(
          std::make_unique<Radio>(kernel_, *medium_, i, RadioParams{}));
      medium_->attach(radios_.back().get());
      if (use_tdma_) {
        TdmaParams tp;
        tp.slot_index = i;
        tp.num_slots = n_;
        macs_.push_back(
            std::make_unique<TdmaMac>(kernel_, *radios_.back(), 16, tp));
      } else {
        macs_.push_back(std::make_unique<CsmaMac>(
            kernel_, *radios_.back(), 16, CsmaParams{},
            Rng{static_cast<std::uint64_t>(i) + 50}));
      }
      routings_.push_back(make_routing(*macs_.back(), i));
      const int loc = i;
      routings_.back()->deliver = [this, loc](int origin, std::uint32_t seq) {
        deliveries_[loc].push_back({origin, seq});
      };
    }
  }

  Routing& routing(int i) { return *routings_[static_cast<std::size_t>(i)]; }

  int n_ = 0;
  des::Kernel kernel_;
  channel::PathLossMatrix matrix_;
  std::optional<channel::StaticChannel> channel_;
  std::optional<Medium> medium_;
  bool use_tdma_ = false;
  std::vector<std::unique_ptr<Radio>> radios_;
  std::vector<std::unique_ptr<Mac>> macs_;
  std::vector<std::unique_ptr<Routing>> routings_;
  std::map<int, std::vector<std::pair<int, std::uint32_t>>> deliveries_;
};

TEST_F(RoutingFixture, StarDeliversToDestinationOnly) {
  connect_all(4);
  build_star(0);
  routing(1).originate(100, /*dest=*/3);
  kernel_.run_until(1.0);
  ASSERT_EQ(deliveries_[3].size(), 1u);
  EXPECT_EQ(deliveries_[3][0].first, 1);
  EXPECT_TRUE(deliveries_[0].empty());  // coordinator relays, not delivers
  EXPECT_TRUE(deliveries_[2].empty());
  EXPECT_TRUE(deliveries_[1].empty());
}

TEST_F(RoutingFixture, StarCoordinatorEchoesExactlyOnce) {
  connect_all(4);
  build_star(0);
  routing(1).originate(100, 3);
  kernel_.run_until(1.0);
  EXPECT_EQ(routing(0).stats().relayed, 1u);
  EXPECT_EQ(routing(2).stats().relayed, 0u);
  // Destination 3 hears the original and the echo: one delivery + one
  // duplicate (the factor 2 in the paper's Eq. (5)).
  EXPECT_EQ(routing(3).stats().delivered, 1u);
  EXPECT_EQ(routing(3).stats().duplicates, 1u);
}

TEST_F(RoutingFixture, StarEchoRescuesCutLink) {
  connect_all(3);
  cut_link(1, 2);  // direct path 1 -> 2 is dead
  build_star(0);
  routing(1).originate(100, 2);
  kernel_.run_until(1.0);
  ASSERT_EQ(deliveries_[2].size(), 1u);  // delivered via coordinator echo
  EXPECT_EQ(routing(2).stats().duplicates, 0u);
}

TEST_F(RoutingFixture, StarPacketsToCoordinatorAreNotEchoed) {
  connect_all(3);
  build_star(0);
  routing(1).originate(100, /*dest=*/0);
  kernel_.run_until(1.0);
  EXPECT_EQ(deliveries_[0].size(), 1u);
  EXPECT_EQ(routing(0).stats().relayed, 0u);
}

TEST_F(RoutingFixture, StarCoordinatorOriginatesDirectly) {
  connect_all(3);
  build_star(0);
  routing(0).originate(100, 2);
  kernel_.run_until(1.0);
  ASSERT_EQ(deliveries_[2].size(), 1u);
  EXPECT_EQ(routing(0).stats().relayed, 0u);
  EXPECT_TRUE(deliveries_[1].empty());  // bystander hears but not delivers
}

TEST_F(RoutingFixture, StarBrokenBothPathsLosesPacket) {
  connect_all(3);
  cut_link(1, 2);
  cut_link(0, 2);  // echo leg dead too
  build_star(0);
  routing(1).originate(100, 2);
  kernel_.run_until(1.0);
  EXPECT_TRUE(deliveries_[2].empty());
}

TEST_F(RoutingFixture, MeshDeliversToDestination) {
  connect_all(4);
  build_mesh(2);
  routing(3).originate(100, 1);
  kernel_.run_until(1.0);
  ASSERT_EQ(deliveries_[1].size(), 1u);
  EXPECT_TRUE(deliveries_[0].empty());
  EXPECT_TRUE(deliveries_[2].empty());
}

TEST_F(RoutingFixture, MeshDestinationNeverRelays) {
  connect_all(4);
  build_mesh_tdma(2);
  routing(0).originate(100, 3);
  kernel_.run_until(1.0);
  EXPECT_EQ(routing(3).stats().relayed, 0u);
  EXPECT_GE(routing(1).stats().relayed, 1u);
  EXPECT_GE(routing(2).stats().relayed, 1u);
}

/// With a lossless serialized MAC, the flood of one packet over N nodes
/// must produce exactly NreTx = 1 + (N-2) + (N-2)(N-3) = N^2 - 4N + 5
/// transmissions (the paper's bound, Sec. 4.1).
class MeshRetxCount : public ::testing::TestWithParam<int> {};

TEST_P(MeshRetxCount, MatchesPaperFormulaExactly) {
  const int n = GetParam();
  des::Kernel kernel;
  channel::PathLossMatrix matrix;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      matrix.set_db(i, j, 60.0);
    }
  }
  channel::StaticChannel channel(matrix);
  Medium medium(kernel, channel);
  std::vector<std::unique_ptr<Radio>> radios;
  std::vector<std::unique_ptr<TdmaMac>> macs;
  std::vector<std::unique_ptr<MeshRouting>> routings;
  int delivered = 0;
  for (int i = 0; i < n; ++i) {
    radios.push_back(
        std::make_unique<Radio>(kernel, medium, i, RadioParams{}));
    medium.attach(radios.back().get());
    TdmaParams tp;
    tp.slot_index = i;
    tp.num_slots = n;
    macs.push_back(std::make_unique<TdmaMac>(kernel, *radios.back(), 32, tp));
    routings.push_back(std::make_unique<MeshRouting>(*macs.back(), i, 2));
    routings.back()->deliver = [&delivered](int, std::uint32_t) {
      ++delivered;
    };
  }
  routings[0]->originate(100, n - 1);
  kernel.run_until(2.0);
  std::uint64_t total_tx = 0;
  for (const auto& r : radios) {
    total_tx += r->stats().tx_packets;
  }
  EXPECT_EQ(total_tx, static_cast<std::uint64_t>(n * n - 4 * n + 5));
  EXPECT_EQ(delivered, 1);
}

INSTANTIATE_TEST_SUITE_P(NodeCounts, MeshRetxCount,
                         ::testing::Values(3, 4, 5, 6));

TEST_F(RoutingFixture, MeshTwoHopsReachIndirectDestination) {
  connect_all(3);
  cut_link(0, 2);  // 0 can only reach 2 via 1
  build_mesh(2);
  routing(0).originate(100, 2);
  kernel_.run_until(1.0);
  ASSERT_EQ(deliveries_[2].size(), 1u);
  EXPECT_EQ(routing(1).stats().relayed, 1u);
}

TEST_F(RoutingFixture, MeshHopLimitBoundsRelayDepth) {
  // Chain 0 - 1 - 2 - 3 - 4 (only consecutive links alive).  Nhops = 2
  // allows two relays: node 3 (relays at 1, 2) is reachable, node 4
  // (three relays needed) is not — "blocks further retransmissions after
  // Nhops is reached" (paper Sec. 2.1.2).
  connect_all(5);
  for (int i = 0; i < 5; ++i) {
    for (int j = i + 2; j < 5; ++j) {
      cut_link(i, j);
    }
  }
  build_mesh(2);
  routing(0).originate(100, 3);
  routing(0).originate(100, 4);
  kernel_.run_until(1.0);
  EXPECT_EQ(deliveries_[3].size(), 1u);
  EXPECT_TRUE(deliveries_[4].empty());
}

TEST_F(RoutingFixture, MeshThreeHopsReachChainEnd) {
  connect_all(5);
  for (int i = 0; i < 5; ++i) {
    for (int j = i + 2; j < 5; ++j) {
      cut_link(i, j);
    }
  }
  build_mesh(3);
  routing(0).originate(100, 4);
  kernel_.run_until(1.0);
  EXPECT_EQ(deliveries_[4].size(), 1u);
}

TEST_F(RoutingFixture, MeshVisitedHistoryPreventsPingPong) {
  // Two nodes + destination out of range: the relay must not bounce the
  // packet back and forth (history contains both after one relay).
  connect_all(3);
  cut_link(0, 2);
  cut_link(1, 2);  // destination unreachable
  build_mesh(5);   // generous hop budget: only history stops the flood
  routing(0).originate(100, 2);
  kernel_.run_until(1.0);
  EXPECT_TRUE(deliveries_[2].empty());
  // 0 -> 1 relay once; 1's copy has {0,1} in history so 0 won't re-relay.
  EXPECT_EQ(routing(1).stats().relayed, 1u);
  EXPECT_EQ(routing(0).stats().relayed, 0u);
}

TEST_F(RoutingFixture, MeshDestinationDeduplicatesFloodCopies) {
  connect_all(5);
  build_mesh_tdma(2);
  routing(0).originate(100, 4);
  kernel_.run_until(1.0);
  EXPECT_EQ(deliveries_[4].size(), 1u);
  EXPECT_GE(routing(4).stats().duplicates, 1u);
}

TEST_F(RoutingFixture, SequenceNumbersIncreasePerOrigin) {
  connect_all(2);
  build_mesh_tdma(2);
  routing(0).originate(100, 1);
  routing(0).originate(100, 1);
  routing(0).originate(100, 1);
  kernel_.run_until(1.0);
  ASSERT_EQ(deliveries_[1].size(), 3u);
  EXPECT_EQ(deliveries_[1][0].second, 0u);
  EXPECT_EQ(deliveries_[1][1].second, 1u);
  EXPECT_EQ(deliveries_[1][2].second, 2u);
  EXPECT_EQ(routing(0).stats().originated, 3u);
}

TEST_F(RoutingFixture, OriginateRejectsSelfDestination) {
  connect_all(2);
  build_mesh(2);
  EXPECT_THROW(routing(0).originate(100, 0), ModelError);
}

TEST_F(RoutingFixture, MeshRejectsZeroHops) {
  connect_all(2);
  channel_.emplace(matrix_);
  medium_.emplace(kernel_, *channel_);
  radios_.push_back(
      std::make_unique<Radio>(kernel_, *medium_, 0, RadioParams{}));
  medium_->attach(radios_.back().get());
  macs_.push_back(std::make_unique<CsmaMac>(kernel_, *radios_.back(), 16,
                                            CsmaParams{}, Rng{1}));
  EXPECT_THROW(MeshRouting(*macs_.back(), 0, 0), ModelError);
}

}  // namespace
}  // namespace hi::net
