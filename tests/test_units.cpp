// Unit tests for the physical-unit helpers (common/units.hpp).
#include "common/units.hpp"

#include <gtest/gtest.h>

namespace hi {
namespace {

TEST(Units, DbmToMwKnownPoints) {
  EXPECT_DOUBLE_EQ(dbm_to_mw(0.0), 1.0);
  EXPECT_DOUBLE_EQ(dbm_to_mw(10.0), 10.0);
  EXPECT_DOUBLE_EQ(dbm_to_mw(-10.0), 0.1);
  EXPECT_NEAR(dbm_to_mw(-20.0), 0.01, 1e-12);
  EXPECT_NEAR(dbm_to_mw(3.0), 1.9952623, 1e-6);
}

TEST(Units, MwToDbmKnownPoints) {
  EXPECT_DOUBLE_EQ(mw_to_dbm(1.0), 0.0);
  EXPECT_DOUBLE_EQ(mw_to_dbm(100.0), 20.0);
  EXPECT_NEAR(mw_to_dbm(0.5), -3.0103, 1e-4);
}

TEST(Units, DbmMwRoundTrip) {
  for (double dbm = -100.0; dbm <= 30.0; dbm += 7.3) {
    EXPECT_NEAR(mw_to_dbm(dbm_to_mw(dbm)), dbm, 1e-9);
  }
}

TEST(Units, SecondsDaysRoundTrip) {
  EXPECT_DOUBLE_EQ(seconds_to_days(86'400.0), 1.0);
  EXPECT_DOUBLE_EQ(days_to_seconds(2.5), 216'000.0);
  EXPECT_DOUBLE_EQ(seconds_to_days(days_to_seconds(17.25)), 17.25);
}

TEST(Units, BatteryEnergyCr2032) {
  // The paper's CR2032 coin cell: 225 mAh at 3 V nominal = 2430 J.
  EXPECT_DOUBLE_EQ(battery_energy_j(225.0, 3.0), 2430.0);
}

TEST(Units, PacketDurationMatchesPaper) {
  // Tpkt = 8 * 100 / 1024000 = 781.25 us (paper Sec. 2.1.1 with Table 1).
  EXPECT_DOUBLE_EQ(packet_duration_s(100.0, 1.024e6), 781.25e-6);
}

TEST(Units, PacketDurationScalesLinearly) {
  const double one = packet_duration_s(1.0, 250e3);
  EXPECT_DOUBLE_EQ(packet_duration_s(50.0, 250e3), 50.0 * one);
}

TEST(Units, MilliwattConversions) {
  EXPECT_DOUBLE_EQ(mw_to_w(1000.0), 1.0);
  EXPECT_DOUBLE_EQ(uw_to_mw(100.0), 0.1);
}

TEST(Units, ApproxEqual) {
  EXPECT_TRUE(approx_equal(1.0, 1.0));
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(approx_equal(1.0, 1.001));
  EXPECT_TRUE(approx_equal(1e9, 1e9 + 1.0, 1e-8));
  EXPECT_TRUE(approx_equal(0.0, 0.0));
  EXPECT_FALSE(approx_equal(0.0, 1e-6));
}

}  // namespace
}  // namespace hi
