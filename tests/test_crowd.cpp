// hi::crowd behavioural contracts (DESIGN.md §15): determinism,
// body-relabeling invariance, thread-count invariance of the sweep,
// store-backed resume, the crowd scenario JSON codec + fingerprints,
// the evaluation crowd tail, and the kernel's pending-event
// reservation.  Everything bitwise here is compared as uint64 bit
// patterns — no tolerances.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "crowd/crowd.hpp"
#include "des/kernel.hpp"
#include "model/design_space.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "store/crowd_codec.hpp"
#include "store/serialize.hpp"
#include "store/store.hpp"

namespace hi {
namespace {

std::uint64_t bits(double d) {
  std::uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

model::NetworkConfig star_csma_n4() {
  const model::Scenario scenario;
  return scenario.make_config(model::Topology::from_locations({0, 1, 3, 5}), 1,
                              model::MacProtocol::kCsma,
                              model::RoutingProtocol::kStar);
}

model::CrowdScenario dense_crowd(int bodies) {
  model::CrowdScenario sc;
  sc.cfg = star_csma_n4();
  sc.bodies = bodies;
  sc.spacing_m = 0.5;
  return sc;
}

net::SimParams short_params(std::uint64_t seed = 2017) {
  net::SimParams sp;
  sp.duration_s = 5.0;
  sp.seed = seed;
  return sp;
}

void expect_same_result(const net::SimResult& a, const net::SimResult& b) {
  EXPECT_EQ(bits(a.pdr), bits(b.pdr));
  EXPECT_EQ(bits(a.worst_power_mw), bits(b.worst_power_mw));
  EXPECT_EQ(bits(a.mean_power_mw), bits(b.mean_power_mw));
  EXPECT_EQ(bits(a.nlt_s), bits(b.nlt_s));
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(bits(a.nodes[i].pdr), bits(b.nodes[i].pdr));
    EXPECT_EQ(bits(a.nodes[i].power_mw), bits(b.nodes[i].power_mw));
    EXPECT_EQ(a.nodes[i].app_sent, b.nodes[i].app_sent);
  }
}

TEST(Crowd, DeterministicAcrossRepeatedRuns) {
  const model::CrowdScenario sc = dense_crowd(3);
  const net::SimParams sp = short_params();
  const crowd::CrowdResult a =
      crowd::simulate_crowd(sc, *crowd::make_crowd_channel_for(sc, 7), sp);
  const crowd::CrowdResult b =
      crowd::simulate_crowd(sc, *crowd::make_crowd_channel_for(sc, 7), sp);
  expect_same_result(a.summary, b.summary);
  EXPECT_EQ(a.summary.events, b.summary.events);
  EXPECT_EQ(a.summary.crowd.foreign_heard, b.summary.crowd.foreign_heard);
  ASSERT_EQ(a.per_body.size(), b.per_body.size());
  for (std::size_t i = 0; i < a.per_body.size(); ++i) {
    expect_same_result(a.per_body[i], b.per_body[i]);
  }
}

TEST(Crowd, BodyRelabelingLeavesPerBodyResultsBitIdentical) {
  // Three bodies with distinct positions, listed in two different
  // orders.  perm[j] = index in the base list of the body that sits at
  // slot j of the permuted list.
  const std::vector<model::BodyPlacement> base_pos = {
      {0.0, 0.0}, {1.2, 0.4}, {0.3, 1.5}};
  const std::vector<int> perm = {2, 0, 1};

  model::CrowdScenario a = dense_crowd(3);
  a.placement = base_pos;
  model::CrowdScenario b = a;
  b.placement = {base_pos[perm[0]], base_pos[perm[1]], base_pos[perm[2]]};

  const net::SimParams sp = short_params(99);
  const crowd::CrowdResult ra =
      crowd::simulate_crowd(a, *crowd::make_crowd_channel_for(a, 11), sp);
  const crowd::CrowdResult rb =
      crowd::simulate_crowd(b, *crowd::make_crowd_channel_for(b, 11), sp);

  // The aggregate headline is permutation-invariant...
  EXPECT_EQ(bits(ra.summary.pdr), bits(rb.summary.pdr));
  EXPECT_EQ(bits(ra.summary.worst_power_mw), bits(rb.summary.worst_power_mw));
  EXPECT_EQ(bits(ra.summary.mean_power_mw), bits(rb.summary.mean_power_mw));
  EXPECT_EQ(bits(ra.summary.nlt_s), bits(rb.summary.nlt_s));
  EXPECT_EQ(ra.summary.events, rb.summary.events);
  EXPECT_EQ(bits(ra.summary.crowd.min_body_pdr),
            bits(rb.summary.crowd.min_body_pdr));
  EXPECT_EQ(ra.summary.crowd.foreign_heard, rb.summary.crowd.foreign_heard);
  // ...and each physical body's result is bit-identical wherever it
  // appears in the input list — both the full per_body entry and the
  // aggregate's per-body row (which reports in input order).
  for (int j = 0; j < 3; ++j) {
    SCOPED_TRACE(j);
    expect_same_result(rb.per_body[j], ra.per_body[perm[j]]);
    EXPECT_EQ(rb.summary.nodes[j].location, j);
    EXPECT_EQ(bits(rb.summary.nodes[j].pdr),
              bits(ra.summary.nodes[perm[j]].pdr));
    EXPECT_EQ(bits(rb.summary.nodes[j].power_mw),
              bits(ra.summary.nodes[perm[j]].power_mw));
  }
}

TEST(Crowd, SweepIsThreadCountInvariant) {
  const model::CrowdScenario base = dense_crowd(3);
  const net::SimParams sp = short_params();
  crowd::SweepResult ref;
  for (int threads : {0, 2, 4}) {
    SCOPED_TRACE(threads);
    crowd::SweepOptions opt;
    opt.bodies = {1, 2, 3};
    opt.runs = 1;
    opt.threads = threads;
    const crowd::SweepResult res = crowd::sweep(base, sp, opt);
    ASSERT_EQ(res.points.size(), 3u);
    if (threads == 0) {
      ref = res;
      continue;
    }
    for (std::size_t i = 0; i < res.points.size(); ++i) {
      EXPECT_EQ(res.points[i].bodies, ref.points[i].bodies);
      EXPECT_EQ(bits(res.points[i].eval.pdr), bits(ref.points[i].eval.pdr));
      EXPECT_EQ(bits(res.points[i].eval.power_mw),
                bits(ref.points[i].eval.power_mw));
      EXPECT_EQ(bits(res.points[i].eval.nlt_s), bits(ref.points[i].eval.nlt_s));
      EXPECT_EQ(res.points[i].eval.detail.events,
                ref.points[i].eval.detail.events);
    }
  }
}

TEST(Crowd, SweepResumesFromStoreWithoutResimulating) {
  const std::string path = "test_crowd_resume.store";
  std::remove(path.c_str());
  const model::CrowdScenario base = dense_crowd(3);
  const net::SimParams sp = short_params();

  crowd::SweepResult cold;
  {
    store::EvalStore store(path);
    crowd::SweepOptions opt;
    opt.bodies = {1, 2, 3};
    opt.runs = 1;
    opt.store = &store;
    cold = crowd::sweep(base, sp, opt);
    EXPECT_EQ(cold.simulations, 3u);
    EXPECT_EQ(cold.store_hits, 0u);
  }
  {
    store::EvalStore store(path);
    obs::MetricsRegistry metrics;
    crowd::SweepOptions opt;
    opt.bodies = {1, 2, 3};
    opt.runs = 1;
    opt.store = &store;
    opt.metrics = &metrics;
    const crowd::SweepResult warm = crowd::sweep(base, sp, opt);
    EXPECT_EQ(warm.simulations, 0u);
    EXPECT_EQ(warm.store_hits, 3u);
    for (std::size_t i = 0; i < warm.points.size(); ++i) {
      EXPECT_TRUE(warm.points[i].from_store);
      EXPECT_EQ(bits(warm.points[i].eval.pdr), bits(cold.points[i].eval.pdr));
      EXPECT_EQ(bits(warm.points[i].eval.power_mw),
                bits(cold.points[i].eval.power_mw));
      EXPECT_EQ(bits(warm.points[i].eval.detail.crowd.min_body_pdr),
                bits(cold.points[i].eval.detail.crowd.min_body_pdr));
    }
    EXPECT_EQ(metrics.counter("crowd.points").value(), 3u);
    EXPECT_EQ(metrics.counter("crowd.store_hits").value(), 3u);
    EXPECT_EQ(metrics.counter("dse.store_hits").value(), 3u);
    EXPECT_EQ(metrics.counter("crowd.simulations").value(), 0u);
  }
  std::remove(path.c_str());
}

TEST(Crowd, DenseCrowdCollapsesPdr) {
  const net::SimParams sp = short_params();
  const model::CrowdScenario one = dense_crowd(1);
  const model::CrowdScenario four = dense_crowd(4);
  const crowd::CrowdResult r1 =
      crowd::simulate_crowd(one, *crowd::make_crowd_channel_for(one, 5), sp);
  const crowd::CrowdResult r4 =
      crowd::simulate_crowd(four, *crowd::make_crowd_channel_for(four, 5), sp);
  EXPECT_GT(r4.summary.crowd.cross_offered, 0u);
  EXPECT_GT(r4.summary.crowd.foreign_heard, 0u);
  EXPECT_LT(r4.summary.pdr, r1.summary.pdr);
  EXPECT_LE(r4.summary.crowd.min_body_pdr, r4.summary.pdr);
}

TEST(Crowd, ToEvaluationCarriesHeadlineMetrics) {
  const model::CrowdScenario sc = dense_crowd(2);
  const crowd::CrowdResult cr = crowd::simulate_crowd(
      sc, *crowd::make_crowd_channel_for(sc, 3), short_params());
  const dse::Evaluation ev = crowd::to_evaluation(cr);
  EXPECT_EQ(bits(ev.pdr), bits(cr.summary.pdr));
  EXPECT_EQ(bits(ev.power_mw), bits(cr.summary.worst_power_mw));
  EXPECT_EQ(bits(ev.nlt_s), bits(cr.summary.nlt_s));
  EXPECT_TRUE(ev.detail.crowd.present);
  EXPECT_EQ(ev.detail.crowd.bodies, 2);
}

TEST(Crowd, ScenarioValidationRejectsBadInput) {
  model::CrowdScenario sc = dense_crowd(2);
  sc.bodies = 0;
  EXPECT_THROW(sc.validate(), ModelError);
  sc.bodies = 65;
  EXPECT_THROW(sc.validate(), ModelError);
  sc = dense_crowd(2);
  sc.spacing_m = 0.0;
  EXPECT_THROW(sc.validate(), ModelError);
  sc = dense_crowd(2);
  sc.placement = {{0.0, 0.0}};  // wrong size for bodies == 2
  EXPECT_THROW(sc.validate(), ModelError);
  sc = dense_crowd(2);
  sc.inter.exponent = 0.0;
  EXPECT_THROW(sc.validate(), ModelError);
}

TEST(CrowdCodec, ScenarioJsonRoundTripsExactly) {
  model::CrowdScenario sc = dense_crowd(3);
  sc.cols = 2;
  sc.inter.exponent = 3.5;
  sc.inter.sigma_db = 4.25;
  const std::string json = store::crowd_scenario_to_json(sc);
  std::string err;
  const auto back = store::crowd_scenario_from_json(json, &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(*back, sc);
  EXPECT_EQ(store::crowd_fingerprint(*back).hex(),
            store::crowd_fingerprint(sc).hex());

  // Explicit placement survives the trip too.
  sc.placement = {{0.0, 0.0}, {0.5, 0.0}, {0.25, 0.75}};
  const auto back2 =
      store::crowd_scenario_from_json(store::crowd_scenario_to_json(sc), &err);
  ASSERT_TRUE(back2.has_value()) << err;
  EXPECT_EQ(*back2, sc);
}

TEST(CrowdCodec, RejectsMalformedScenarios) {
  std::string err;
  EXPECT_FALSE(store::crowd_scenario_from_json("not json", &err).has_value());
  EXPECT_FALSE(store::crowd_scenario_from_json("{}", &err).has_value());
  // Unknown keys are rejected, not ignored.
  model::CrowdScenario sc = dense_crowd(2);
  std::string json = store::crowd_scenario_to_json(sc);
  json.insert(json.find('{') + 1, "\"surprise\": 1,");
  EXPECT_FALSE(store::crowd_scenario_from_json(json, &err).has_value());
}

TEST(CrowdCodec, GridAndEquivalentExplicitPlacementFingerprintIdentically) {
  model::CrowdScenario grid = dense_crowd(4);
  grid.cols = 2;
  model::CrowdScenario explicit_sc = grid;
  explicit_sc.placement = grid.positions();
  EXPECT_EQ(store::crowd_fingerprint(grid).hex(),
            store::crowd_fingerprint(explicit_sc).hex());
}

TEST(CrowdCodec, PointFingerprintSeparatesBodiesRunsAndSeeds) {
  const net::SimParams sp = short_params();
  const model::CrowdScenario two = dense_crowd(2);
  const model::CrowdScenario three = dense_crowd(3);
  const auto base = store::crowd_point_fingerprint(two, sp, 3);
  EXPECT_NE(store::crowd_point_fingerprint(three, sp, 3).hex(), base.hex());
  EXPECT_NE(store::crowd_point_fingerprint(two, sp, 4).hex(), base.hex());
  net::SimParams sp2 = sp;
  sp2.seed = sp.seed + 1;
  EXPECT_NE(store::crowd_point_fingerprint(two, sp2, 3).hex(), base.hex());
  EXPECT_EQ(store::crowd_point_fingerprint(two, sp, 3).hex(), base.hex());
}

dse::Evaluation sample_eval(bool with_crowd, bool with_latency) {
  dse::Evaluation ev;
  ev.pdr = 0.875;
  ev.power_mw = 1.25;
  ev.nlt_s = 123456.5;
  ev.detail.pdr = 0.875;
  ev.detail.worst_power_mw = 1.25;
  ev.detail.mean_power_mw = 1.0;
  ev.detail.nlt_s = 123456.5;
  ev.detail.duration_s = 60.0;
  ev.detail.events = 4242;
  net::NodeResult n;
  n.location = 3;
  n.pdr = 0.75;
  n.power_mw = 1.5;
  n.app_sent = 100;
  ev.detail.nodes.push_back(n);
  if (with_latency) {
    ev.detail.latency.collected = true;
    ev.detail.latency.samples = 42;
    ev.detail.latency.mean_s = 0.01;
    ev.detail.latency.p50_s = 0.008;
    ev.detail.latency.p95_s = 0.02;
    ev.detail.latency.max_s = 0.05;
  }
  if (with_crowd) {
    ev.detail.crowd.present = true;
    ev.detail.crowd.bodies = 4;
    ev.detail.crowd.min_body_pdr = 0.5;
    ev.detail.crowd.cross_offered = 1000;
    ev.detail.crowd.cross_below_sensitivity = 10;
    ev.detail.crowd.foreign_heard = 900;
    ev.detail.crowd.foreign_decoded = 800;
  }
  return ev;
}

void expect_crowd_tail_roundtrip(bool with_latency) {
  const dse::Evaluation ev = sample_eval(true, with_latency);
  store::ByteWriter w;
  store::write_evaluation(w, ev);
  store::ByteReader r(w.bytes());
  dse::Evaluation back;
  ASSERT_TRUE(store::read_evaluation(r, back));
  EXPECT_TRUE(back.detail.crowd.present);
  EXPECT_EQ(back.detail.crowd.bodies, 4);
  EXPECT_EQ(bits(back.detail.crowd.min_body_pdr), bits(0.5));
  EXPECT_EQ(back.detail.crowd.cross_offered, 1000u);
  EXPECT_EQ(back.detail.crowd.cross_below_sensitivity, 10u);
  EXPECT_EQ(back.detail.crowd.foreign_heard, 900u);
  EXPECT_EQ(back.detail.crowd.foreign_decoded, 800u);
  EXPECT_EQ(back.detail.latency.collected, with_latency);
  if (with_latency) {
    EXPECT_EQ(back.detail.latency.samples, 42u);
    EXPECT_EQ(bits(back.detail.latency.p95_s), bits(0.02));
  }
  EXPECT_EQ(bits(back.pdr), bits(ev.pdr));
  EXPECT_EQ(back.detail.events, ev.detail.events);
}

TEST(CrowdSerialize, EvaluationCrowdTailRoundTripsWithoutLatency) {
  expect_crowd_tail_roundtrip(/*with_latency=*/false);
}

TEST(CrowdSerialize, EvaluationCrowdTailRoundTripsWithLatency) {
  expect_crowd_tail_roundtrip(/*with_latency=*/true);
}

TEST(CrowdSerialize, LegacyEvaluationStillReadsWithCrowdAbsent) {
  const dse::Evaluation ev = sample_eval(false, false);
  store::ByteWriter w;
  store::write_evaluation(w, ev);
  store::ByteReader r(w.bytes());
  dse::Evaluation back;
  ASSERT_TRUE(store::read_evaluation(r, back));
  EXPECT_FALSE(back.detail.crowd.present);
  EXPECT_EQ(back.detail.crowd.bodies, 0);
  EXPECT_EQ(bits(back.pdr), bits(ev.pdr));
}

TEST(CrowdSerialize, TrailingGarbageAfterLatencyTailIsRejected) {
  const dse::Evaluation ev = sample_eval(false, true);
  store::ByteWriter w;
  store::write_evaluation(w, ev);
  // Unmarked extra bytes after the latency tail must not silently pass
  // as a crowd tail.
  w.put_u64(0xDEADBEEF);
  store::ByteReader r(w.bytes());
  dse::Evaluation back;
  EXPECT_FALSE(store::read_evaluation(r, back));
}

TEST(KernelReserve, PreSizingChangesOnlyArenaChunks) {
  // Two kernels, identical workload, one pre-sized: execution order and
  // every counter except arena_chunks() must agree.
  auto run = [](des::Kernel& k, std::vector<double>& order) {
    for (int i = 0; i < 600; ++i) {
      const double t = static_cast<double>((i * 37) % 600) * 1e-3;
      k.schedule_at(t, [&order, t] { order.push_back(t); });
    }
    k.run_to_completion();
  };
  des::Kernel plain;
  std::vector<double> plain_order;
  run(plain, plain_order);

  des::Kernel reserved;
  reserved.reserve(1000);
  // 1000 pending events need ceil(1000 / 256) = 4 slabs up front.
  EXPECT_EQ(reserved.arena_chunks(), 4u);
  std::vector<double> reserved_order;
  run(reserved, reserved_order);

  EXPECT_EQ(plain_order, reserved_order);
  EXPECT_EQ(plain.events_processed(), reserved.events_processed());
  EXPECT_EQ(reserved.arena_chunks(), 4u);  // no mid-run growth
  EXPECT_LT(plain.arena_chunks(), 4u);     // grew lazily: 600 ≤ 3 slabs
}

}  // namespace
}  // namespace hi
