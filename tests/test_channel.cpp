// Unit and statistical tests for the body channel (channel/*).
#include "channel/channel.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/assert.hpp"
#include "common/stats.hpp"

namespace hi::channel {
namespace {

TEST(Locations, TableIsComplete) {
  EXPECT_EQ(kNumLocations, 10);
  EXPECT_EQ(location_name(kChest), "chest");
  EXPECT_EQ(location_name(kBack), "back");
  EXPECT_THROW((void)location_name(10), ModelError);
  EXPECT_THROW((void)location_name(-1), ModelError);
}

TEST(Locations, DistancesAreMetricLike) {
  for (int i = 0; i < kNumLocations; ++i) {
    EXPECT_DOUBLE_EQ(euclidean_distance_m(i, i), 0.0);
    for (int j = 0; j < kNumLocations; ++j) {
      EXPECT_DOUBLE_EQ(euclidean_distance_m(i, j), euclidean_distance_m(j, i));
      if (i != j) EXPECT_GT(euclidean_distance_m(i, j), 0.0);
    }
  }
  // Sanity: chest-hip is much shorter than chest-ankle.
  EXPECT_LT(euclidean_distance_m(kChest, kLeftHip),
            euclidean_distance_m(kChest, kLeftAnkle));
}

TEST(Locations, OnlyBackCrossesTrunkFromChest) {
  EXPECT_TRUE(crosses_trunk(kChest, kBack));
  EXPECT_FALSE(crosses_trunk(kChest, kLeftWrist));
  EXPECT_FALSE(crosses_trunk(kBack, kBack));
}

TEST(PathLossMatrix, SetAndGetSymmetric) {
  PathLossMatrix m;
  m.set_db(2, 5, 70.0);
  EXPECT_DOUBLE_EQ(m.db(2, 5), 70.0);
  EXPECT_DOUBLE_EQ(m.db(5, 2), 70.0);
  EXPECT_DOUBLE_EQ(m.db(3, 3), 0.0);
  EXPECT_THROW(m.set_db(0, 10, 1.0), ModelError);
}

TEST(SyntheticPathLoss, GrowsWithDistanceAndTrunk) {
  const PathLossMatrix m = synthetic_body_path_loss();
  // Log-distance: chest-hip < chest-wrist < chest-ankle.
  EXPECT_LT(m.db(kChest, kLeftHip), m.db(kChest, kLeftWrist));
  EXPECT_LT(m.db(kChest, kLeftWrist), m.db(kChest, kLeftAnkle));
  // Trunk-crossing penalty: chest-back exceeds the distance-only value.
  SyntheticPathLossParams no_trunk;
  no_trunk.trunk_penalty_db = 0.0;
  const PathLossMatrix m0 = synthetic_body_path_loss(no_trunk);
  EXPECT_NEAR(m.db(kChest, kBack) - m0.db(kChest, kBack), 14.0, 1e-9);
}

TEST(SyntheticPathLoss, ReferenceDistanceValue) {
  SyntheticPathLossParams p;
  const PathLossMatrix m = synthetic_body_path_loss(p);
  // Reconstruct one entry by hand.
  const double d = euclidean_distance_m(kChest, kLeftHip);
  const double expected = p.pl0_db + 10.0 * p.exponent * std::log10(d / p.d0_m);
  EXPECT_NEAR(m.db(kChest, kLeftHip), expected, 1e-9);
}

TEST(CalibratedPathLoss, HasTheMeasuredCampaignStructure) {
  const PathLossMatrix& m = calibrated_body_path_loss();
  for (int i = 0; i < kNumLocations; ++i) {
    for (int j = i + 1; j < kNumLocations; ++j) {
      EXPECT_GE(m.db(i, j), 55.0) << i << "," << j;
      EXPECT_LE(m.db(i, j), 100.0) << i << "," << j;
    }
  }
  // Trunk links strong; ankle links deep — the star/mesh discriminator.
  EXPECT_LT(m.db(kChest, kLeftHip), 70.0);
  EXPECT_GT(m.db(kChest, kLeftAnkle), 85.0);
  EXPECT_GT(m.db(kLeftWrist, kLeftAnkle), 85.0);
  // The hip is the natural relay toward the ankle.
  EXPECT_LT(m.db(kLeftHip, kLeftAnkle), m.db(kChest, kLeftAnkle));
}

TEST(GaussMarkov, FirstSampleFromStationaryDistribution) {
  GaussMarkovParams p{6.0, 1.0};
  RunningStats s;
  for (std::uint64_t seed = 0; seed < 4'000; ++seed) {
    GaussMarkovFade f(p, Rng{seed});
    s.add(f.sample_db(0.0));
  }
  EXPECT_NEAR(s.mean(), 0.0, 0.3);
  EXPECT_NEAR(s.stddev(), 6.0, 0.3);
}

TEST(GaussMarkov, StationaryAfterLongRun) {
  GaussMarkovParams p{4.0, 0.5};
  GaussMarkovFade f(p, Rng{11});
  RunningStats s;
  double t = 0.0;
  for (int i = 0; i < 200'000; ++i) {
    t += 0.05;
    s.add(f.sample_db(t));
  }
  EXPECT_NEAR(s.mean(), 0.0, 0.15);
  EXPECT_NEAR(s.stddev(), 4.0, 0.15);
}

TEST(GaussMarkov, AutocorrelationMatchesExpDecay) {
  // The paper's conditional-pdf property: correlation exp(-dt/tau).
  GaussMarkovParams p{5.0, 2.0};
  const double dt = 1.0;  // one lag = dt/tau = 0.5
  GaussMarkovFade f(p, Rng{13});
  std::vector<double> x;
  double t = 0.0;
  for (int i = 0; i < 100'000; ++i) {
    x.push_back(f.sample_db(t));
    t += dt;
  }
  std::vector<double> head(x.begin(), x.end() - 1);
  std::vector<double> tail(x.begin() + 1, x.end());
  EXPECT_NEAR(pearson_correlation(head, tail), std::exp(-dt / p.tau_s), 0.02);
}

TEST(GaussMarkov, ZeroElapsedTimeKeepsValue) {
  GaussMarkovFade f({6.0, 1.0}, Rng{17});
  const double v = f.sample_db(3.0);
  EXPECT_DOUBLE_EQ(f.sample_db(3.0), v);
  EXPECT_DOUBLE_EQ(f.current_db(), v);
}

TEST(GaussMarkov, TinyStepBarelyMoves) {
  GaussMarkovFade f({6.0, 1.0}, Rng{19});
  const double v0 = f.sample_db(0.0);
  const double v1 = f.sample_db(1e-6);
  EXPECT_NEAR(v1, v0, 0.1);
}

TEST(GaussMarkov, RejectsBadParams) {
  EXPECT_THROW(GaussMarkovFade({-1.0, 1.0}, Rng{1}), ModelError);
  EXPECT_THROW(GaussMarkovFade({1.0, 0.0}, Rng{1}), ModelError);
}

TEST(StaticChannel, IsDeterministic) {
  PathLossMatrix m;
  m.set_db(0, 1, 60.0);
  StaticChannel ch(m);
  EXPECT_DOUBLE_EQ(ch.path_loss_db(0, 1, 0.0), 60.0);
  EXPECT_DOUBLE_EQ(ch.path_loss_db(0, 1, 100.0), 60.0);
  EXPECT_DOUBLE_EQ(ch.mean_path_loss_db(1, 0), 60.0);
}

TEST(BodyChannel, SymmetricLinkSharesOneFade) {
  auto ch = std::make_unique<BodyChannel>(calibrated_body_path_loss(),
                                          BodyChannelParams{}, Rng{23});
  const double ab = ch->path_loss_db(0, 5, 1.0);
  const double ba = ch->path_loss_db(5, 0, 1.0);
  EXPECT_DOUBLE_EQ(ab, ba);
}

TEST(BodyChannel, MeanMatchesMatrixOverTime) {
  BodyChannel ch(calibrated_body_path_loss(), BodyChannelParams{}, Rng{29});
  RunningStats s;
  double t = 0.0;
  for (int i = 0; i < 50'000; ++i) {
    t += 0.5;
    s.add(ch.path_loss_db(0, 3, t));
  }
  EXPECT_NEAR(s.mean(), ch.mean_path_loss_db(0, 3), 0.4);
}

TEST(BodyChannel, SigmaGrowsWithDistanceAndCaps) {
  BodyChannel ch(calibrated_body_path_loss(), BodyChannelParams{}, Rng{31});
  EXPECT_LT(ch.link_sigma_db(kChest, kLeftHip),
            ch.link_sigma_db(kChest, kLeftAnkle));
  EXPECT_LE(ch.link_sigma_db(kHead, kRightAnkle),
            BodyChannelParams{}.sigma_max_db);
}

TEST(BodyChannel, SameSeedSameTrajectory) {
  auto a = make_default_body_channel(99);
  auto b = make_default_body_channel(99);
  for (double t = 0.0; t < 5.0; t += 0.37) {
    EXPECT_DOUBLE_EQ(a->path_loss_db(1, 6, t), b->path_loss_db(1, 6, t));
  }
}

TEST(BodyChannel, DifferentSeedsDiffer) {
  auto a = make_default_body_channel(1);
  auto b = make_default_body_channel(2);
  EXPECT_NE(a->path_loss_db(1, 6, 0.0), b->path_loss_db(1, 6, 0.0));
}

}  // namespace
}  // namespace hi::channel
