// hi::pareto — FrontBuilder semantics and the sweep differentials
// (DESIGN.md §14).
//
// The load-bearing test is ExhaustiveFrontMatchesBruteForceOracle: the
// subsystem's front must equal an independent O(n²) dominance pass over
// every feasible evaluation, bit for bit.  LadderFrontIsSubset then pins
// the MILP ladder against the exhaustive front (subset + identical
// per-rung optima), WarmStoreRerunSimulatesNothing pins the resumability
// contract, and ThreadCountInvariant pins determinism.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "check/scenario_gen.hpp"
#include "dse/evaluator.hpp"
#include "exec/batch_evaluator.hpp"
#include "model/design_space.hpp"
#include "pareto/front.hpp"
#include "pareto/sweep.hpp"
#include "store/store.hpp"

namespace hi {
namespace {

std::uint64_t bits(double d) {
  std::uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

/// Distinct design points to hang hand-made objective values on (the
/// builder dedups by design_key, so unit tests need real configs).
std::vector<model::NetworkConfig> distinct_configs(std::size_t n) {
  const model::Scenario scenario;
  const std::vector<model::NetworkConfig> all = scenario.feasible_configs();
  EXPECT_GE(all.size(), n);
  return {all.begin(), all.begin() + static_cast<std::ptrdiff_t>(n)};
}

pareto::FrontPoint point(const model::NetworkConfig& cfg, double power,
                         double pdr, double p95) {
  pareto::FrontPoint p;
  p.cfg = cfg;
  p.power_mw = power;
  p.pdr = pdr;
  p.p95_s = p95;
  p.pdr_lo = pdr;
  p.pdr_hi = pdr;
  return p;
}

TEST(Front, DominanceIsStrictAndTiesSurvive) {
  const std::vector<model::NetworkConfig> cfgs = distinct_configs(2);
  const pareto::FrontPoint a = point(cfgs[0], 1.0, 0.9, 0.5);
  const pareto::FrontPoint better = point(cfgs[1], 1.0, 0.9, 0.4);
  const pareto::FrontPoint tie = point(cfgs[1], 1.0, 0.9, 0.5);
  const pareto::FrontPoint trade = point(cfgs[1], 0.5, 0.8, 0.5);
  EXPECT_TRUE(pareto::dominates(better, a));
  EXPECT_FALSE(pareto::dominates(a, better));
  EXPECT_FALSE(pareto::dominates(tie, a));  // equal objectives: no dominance
  EXPECT_FALSE(pareto::dominates(a, tie));
  EXPECT_FALSE(pareto::dominates(trade, a));  // cheaper but lossier
  EXPECT_FALSE(pareto::dominates(a, trade));
}

TEST(Front, BuilderKeepsTiesDropsDominatedDisplacesWorse) {
  const std::vector<model::NetworkConfig> cfgs = distinct_configs(4);
  pareto::FrontBuilder fb;
  EXPECT_TRUE(fb.insert(point(cfgs[0], 1.0, 0.9, 0.5)));
  // Identical objectives on a different design: a tie, both stay.
  EXPECT_TRUE(fb.insert(point(cfgs[1], 1.0, 0.9, 0.5)));
  EXPECT_EQ(fb.size(), 2u);
  // Dominated offer: rejected.
  EXPECT_FALSE(fb.insert(point(cfgs[2], 1.5, 0.9, 0.5)));
  EXPECT_EQ(fb.dominated_dropped(), 1u);
  // Dominating offer: displaces both tied members.
  EXPECT_TRUE(fb.insert(point(cfgs[3], 0.9, 0.95, 0.4)));
  EXPECT_EQ(fb.size(), 1u);
  EXPECT_EQ(fb.displaced(), 2u);
  EXPECT_EQ(fb.offered(), 4u);
}

TEST(Front, BuilderDedupsByDesignKey) {
  const std::vector<model::NetworkConfig> cfgs = distinct_configs(1);
  pareto::FrontBuilder fb;
  EXPECT_TRUE(fb.insert(point(cfgs[0], 1.0, 0.9, 0.5)));
  // Re-offering the same design is a no-op, whatever the objectives
  // claim (evaluation is deterministic, so they cannot legally differ).
  EXPECT_FALSE(fb.insert(point(cfgs[0], 0.1, 0.99, 0.1)));
  EXPECT_EQ(fb.size(), 1u);
  EXPECT_EQ(fb.offered(), 1u);
  EXPECT_EQ(bits(fb.front()[0].power_mw), bits(1.0));
}

TEST(Front, EpsilonDominanceThinsNearTies) {
  const std::vector<model::NetworkConfig> cfgs = distinct_configs(3);
  pareto::FrontOptions opt;
  opt.epsilon_power_mw = 0.1;
  pareto::FrontBuilder fb(opt);
  EXPECT_TRUE(fb.insert(point(cfgs[0], 1.0, 0.9, 0.5)));
  // Within ε on power, equal elsewhere: ε-dominated, thinned away.
  EXPECT_FALSE(fb.insert(point(cfgs[1], 0.95, 0.9, 0.5)));
  // Beyond ε cheaper: survives (and ε-dominates the member back).
  EXPECT_TRUE(fb.insert(point(cfgs[2], 0.7, 0.9, 0.5)));
  EXPECT_EQ(fb.size(), 1u);
}

TEST(Front, LexOrderIsTotalAndDeterministic) {
  const std::vector<model::NetworkConfig> cfgs = distinct_configs(2);
  const pareto::FrontPoint a = point(cfgs[0], 1.0, 0.9, 0.5);
  const pareto::FrontPoint b = point(cfgs[1], 1.0, 0.9, 0.5);
  // Equal objectives: the design key breaks the tie, one way only.
  EXPECT_NE(pareto::lex_before(a, b), pareto::lex_before(b, a));
  const pareto::FrontPoint cheaper = point(cfgs[1], 0.5, 0.1, 9.0);
  EXPECT_TRUE(pareto::lex_before(cheaper, a));  // power dominates the order
}

/// All feasible evaluations of the spec's scenario as FrontPoints, via
/// an independent batch evaluation (no pareto:: sweep code involved).
std::vector<pareto::FrontPoint> evaluate_all(
    const check::ScenarioSpec& spec, dse::Evaluator& eval) {
  const std::vector<model::NetworkConfig> cfgs =
      spec.scenario.feasible_configs();
  exec::BatchEvaluator batch(eval, 0);
  const std::vector<const dse::Evaluation*> evs = batch.evaluate(cfgs);
  std::vector<pareto::FrontPoint> out;
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    out.push_back(pareto::make_point(cfgs[i], *evs[i]));
  }
  return out;
}

/// O(n²) dominance oracle: keep exactly the points no other point
/// dominates, sorted by lex_before.
std::vector<pareto::FrontPoint> brute_force_front(
    std::vector<pareto::FrontPoint> pts) {
  std::vector<pareto::FrontPoint> front;
  for (const pareto::FrontPoint& p : pts) {
    const bool dominated =
        std::any_of(pts.begin(), pts.end(), [&](const pareto::FrontPoint& q) {
          return q.cfg.design_key() != p.cfg.design_key() &&
                 pareto::dominates(q, p);
        });
    if (!dominated) front.push_back(p);
  }
  std::sort(front.begin(), front.end(), pareto::lex_before);
  return front;
}

check::ScenarioSpec pareto_spec() {
  check::ScenarioSpec spec = check::make_scenario(11);
  spec.settings.sim.collect_latency = true;  // exercise all 3 objectives
  return spec;
}

void expect_same_points(const std::vector<pareto::FrontPoint>& got,
                        const std::vector<pareto::FrontPoint>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    SCOPED_TRACE(want[i].cfg.label());
    EXPECT_EQ(got[i].cfg.design_key(), want[i].cfg.design_key());
    EXPECT_EQ(bits(got[i].power_mw), bits(want[i].power_mw));
    EXPECT_EQ(bits(got[i].pdr), bits(want[i].pdr));
    EXPECT_EQ(bits(got[i].p95_s), bits(want[i].p95_s));
  }
}

TEST(Sweep, ExhaustiveFrontMatchesBruteForceOracle) {
  const check::ScenarioSpec spec = pareto_spec();
  dse::Evaluator eval(spec.settings);
  const pareto::SweepResult res =
      pareto::exhaustive_front(spec.scenario, eval);
  ASSERT_FALSE(res.front.empty());
  // Independent evaluation rides the cache: identical bits, zero cost.
  const std::vector<pareto::FrontPoint> oracle =
      brute_force_front(evaluate_all(spec, eval));
  expect_same_points(res.front, oracle);
  // Every delivering front point has a positive p95: the latency
  // objective is live.  (A zero-PDR design has no delay samples, so its
  // p95 is 0.0 — the front's legitimate "radio off" corner.)
  for (const pareto::FrontPoint& p : res.front) {
    if (p.pdr > 0.0) {
      EXPECT_GT(p.p95_s, 0.0) << p.cfg.label();
    }
  }
}

TEST(Sweep, LadderFrontIsSubsetWithEqualRungOptima) {
  const check::ScenarioSpec spec = pareto_spec();
  const std::vector<double> ladder = {0.3, 0.5, 0.7, 0.9};
  pareto::SweepOptions opt;
  opt.pdr_ladder = ladder;

  dse::Evaluator ex_eval(spec.settings);
  const pareto::SweepResult ex =
      pareto::exhaustive_front(spec.scenario, ex_eval, opt);
  dse::Evaluator ld_eval(spec.settings);
  const pareto::SweepResult ld =
      pareto::ladder_front(spec.scenario, ld_eval, opt);
  EXPECT_TRUE(ld.complete);

  // Every ladder front point appears in the exhaustive front, bit-equal.
  for (const pareto::FrontPoint& p : ld.front) {
    const auto it = std::find_if(
        ex.front.begin(), ex.front.end(), [&](const pareto::FrontPoint& q) {
          return q.cfg.design_key() == p.cfg.design_key();
        });
    ASSERT_NE(it, ex.front.end()) << p.cfg.label();
    EXPECT_EQ(bits(it->power_mw), bits(p.power_mw));
    EXPECT_EQ(bits(it->pdr), bits(p.pdr));
    EXPECT_EQ(bits(it->p95_s), bits(p.p95_s));
  }
  // Per-rung certified optima match the exhaustive per-rung optima.
  ASSERT_EQ(ld.rungs.size(), ex.rungs.size());
  for (std::size_t i = 0; i < ld.rungs.size(); ++i) {
    SCOPED_TRACE("pdr_min " + std::to_string(ld.rungs[i].pdr_min));
    ASSERT_EQ(ld.rungs[i].feasible, ex.rungs[i].feasible);
    if (!ld.rungs[i].feasible) continue;
    EXPECT_EQ(ld.rungs[i].best.cfg.design_key(),
              ex.rungs[i].best.cfg.design_key());
    EXPECT_EQ(bits(ld.rungs[i].best.power_mw),
              bits(ex.rungs[i].best.power_mw));
    EXPECT_EQ(bits(ld.rungs[i].best.pdr), bits(ex.rungs[i].best.pdr));
    EXPECT_EQ(bits(ld.rungs[i].best.p95_s), bits(ex.rungs[i].best.p95_s));
  }
  // The ladder never simulates more than exhaustive.
  EXPECT_LE(ld.simulations, ex.simulations);
}

TEST(Sweep, WarmStoreRerunSimulatesNothing) {
  const check::ScenarioSpec spec = pareto_spec();
  const std::string path = testing::TempDir() + "/pareto_warm.histore";
  std::remove(path.c_str());  // TempDir persists across test runs
  pareto::SweepResult cold;
  {
    store::EvalStore st(path, store::StoreOptions{});
    dse::Evaluator eval(spec.settings);
    store::warm_start(eval, st);
    cold = pareto::exhaustive_front(spec.scenario, eval);
    EXPECT_EQ(cold.store_hits, 0u);
    EXPECT_GT(cold.simulations, 0u);
    st.sync();
  }
  store::EvalStore st(path, store::StoreOptions{});
  dse::Evaluator eval(spec.settings);
  store::warm_start(eval, st);
  const pareto::SweepResult warm =
      pareto::exhaustive_front(spec.scenario, eval);
  EXPECT_EQ(warm.simulations, 0u);
  EXPECT_EQ(warm.store_hits, cold.simulations);
  expect_same_points(warm.front, cold.front);
}

TEST(Sweep, ThreadCountInvariant) {
  const check::ScenarioSpec spec = pareto_spec();
  const auto run_at = [&](int threads) {
    dse::Evaluator eval(spec.settings);
    pareto::SweepOptions opt;
    opt.threads = threads;
    return pareto::exhaustive_front(spec.scenario, eval, opt);
  };
  const pareto::SweepResult serial = run_at(0);
  const pareto::SweepResult par = run_at(4);
  EXPECT_EQ(serial.simulations, par.simulations);
  expect_same_points(par.front, serial.front);
}

TEST(Sweep, LatencyOffFrontDegradesToTwoObjectives) {
  // With collection off every p95 is 0.0: dominance must behave as the
  // legacy (power, PDR) trade-off and nothing may crash or collect.
  check::ScenarioSpec spec = check::make_scenario(11);
  ASSERT_FALSE(spec.settings.sim.collect_latency);
  dse::Evaluator eval(spec.settings);
  const pareto::SweepResult res =
      pareto::exhaustive_front(spec.scenario, eval);
  ASSERT_FALSE(res.front.empty());
  for (const pareto::FrontPoint& p : res.front) {
    EXPECT_EQ(p.p95_s, 0.0);
  }
}

}  // namespace
}  // namespace hi
