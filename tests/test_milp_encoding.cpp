// Unit tests for the MILP encoding of the relaxed problem P̃
// (dse/milp_encoding.hpp).
#include "dse/milp_encoding.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/assert.hpp"
#include "model/power.hpp"

namespace hi::dse {
namespace {

TEST(MilpEncoding, FirstRoundIsCheapestStar) {
  model::Scenario sc;
  MilpEncoding enc(sc);
  const MilpRound round = enc.run_milp();
  ASSERT_EQ(round.status, lp::Status::kOptimal);
  // Cheapest cell: star, -20 dBm, N = 4.  All candidates must agree with
  // the analytic power of that cell.
  for (const auto& cfg : round.candidates) {
    EXPECT_EQ(cfg.routing.protocol, model::RoutingProtocol::kStar);
    EXPECT_EQ(cfg.tx_level_index, 0);
    EXPECT_EQ(cfg.topology.count(), 4);
    EXPECT_NEAR(model::node_power_mw(cfg), round.power_mw, 1e-9);
    EXPECT_TRUE(sc.topology_feasible(cfg.topology));
  }
  // Placements: one of each {hip pair} x {foot pair} x {wrist pair} = 8,
  // times 2 MAC options = 16 alternative optima.
  EXPECT_EQ(round.candidates.size(), 16u);
}

TEST(MilpEncoding, PoolContainsBothMacs) {
  model::Scenario sc;
  MilpEncoding enc(sc);
  const MilpRound round = enc.run_milp();
  int csma = 0, tdma = 0;
  for (const auto& cfg : round.candidates) {
    (cfg.mac.protocol == model::MacProtocol::kCsma ? csma : tdma)++;
  }
  EXPECT_EQ(csma, 8);
  EXPECT_EQ(tdma, 8);
}

TEST(MilpEncoding, CandidatesAreDistinct) {
  model::Scenario sc;
  MilpEncoding enc(sc);
  const MilpRound round = enc.run_milp();
  std::set<std::uint32_t> keys;
  for (const auto& cfg : round.candidates) {
    EXPECT_TRUE(keys.insert(cfg.design_key()).second);
  }
}

TEST(MilpEncoding, PowerCutAdvancesToNextLevel) {
  model::Scenario sc;
  MilpEncoding enc(sc);
  const std::vector<double> levels = enc.achievable_power_levels();
  ASSERT_GE(levels.size(), 3u);
  MilpRound r1 = enc.run_milp();
  ASSERT_EQ(r1.status, lp::Status::kOptimal);
  EXPECT_NEAR(r1.power_mw, levels[0], 1e-9);
  enc.add_power_cut_above(r1.power_mw);
  MilpRound r2 = enc.run_milp();
  ASSERT_EQ(r2.status, lp::Status::kOptimal);
  EXPECT_NEAR(r2.power_mw, levels[1], 1e-9);
  EXPECT_GT(r2.power_mw, r1.power_mw);
  enc.add_power_cut_above(r2.power_mw);
  MilpRound r3 = enc.run_milp();
  ASSERT_EQ(r3.status, lp::Status::kOptimal);
  EXPECT_NEAR(r3.power_mw, levels[2], 1e-9);
}

TEST(MilpEncoding, SecondLevelIsMinusTenStar) {
  // Level order sanity: the radio Rx draw dominates, so the three star
  // N=4 levels come first (by Tx power), then larger stars, then meshes.
  model::Scenario sc;
  MilpEncoding enc(sc);
  enc.add_power_cut_above(enc.run_milp().power_mw);
  const MilpRound r2 = enc.run_milp();
  for (const auto& cfg : r2.candidates) {
    EXPECT_EQ(cfg.routing.protocol, model::RoutingProtocol::kStar);
    EXPECT_EQ(cfg.tx_level_index, 1);
    EXPECT_EQ(cfg.topology.count(), 4);
  }
}

TEST(MilpEncoding, RunsDryAfterAllLevels) {
  model::Scenario sc;
  MilpEncoding enc(sc);
  const std::vector<double> levels = enc.achievable_power_levels();
  int rounds = 0;
  for (;;) {
    const MilpRound r = enc.run_milp();
    if (r.status != lp::Status::kOptimal) {
      break;
    }
    ++rounds;
    ASSERT_LE(rounds, static_cast<int>(levels.size()));
    enc.add_power_cut_above(r.power_mw);
  }
  // Every achievable power level is visited exactly once.
  EXPECT_EQ(rounds, static_cast<int>(levels.size()));
}

TEST(MilpEncoding, AchievableLevelsAreSortedDistinct) {
  model::Scenario sc;
  MilpEncoding enc(sc);
  const std::vector<double> levels = enc.achievable_power_levels();
  // Grid is 3 levels x 2 routings x 3 node counts = 18 cells; some cost
  // collisions are possible but not expected with the CC2650 numbers.
  EXPECT_EQ(levels.size(), 18u);
  EXPECT_TRUE(std::is_sorted(levels.begin(), levels.end()));
  EXPECT_GT(enc.epsilon_mw(), 0.0);
  // Epsilon is smaller than every gap.
  for (std::size_t i = 1; i < levels.size(); ++i) {
    EXPECT_LT(enc.epsilon_mw(), levels[i] - levels[i - 1] + 1e-12);
  }
}

TEST(MilpEncoding, MeshOnlyScenarioSkipsCoordinatorRule) {
  // If the chest is not required, a star cannot be selected unless the
  // coordinator is placed: force a scenario where the chest is excluded
  // and verify every candidate is a mesh.
  model::Scenario sc;
  sc.required_locations = {1, 3, 5};  // no chest
  sc.coverage.clear();
  MilpEncoding enc(sc);
  for (int round = 0; round < 30; ++round) {
    const MilpRound r = enc.run_milp();
    if (r.status != lp::Status::kOptimal) break;
    for (const auto& cfg : r.candidates) {
      if (cfg.routing.protocol == model::RoutingProtocol::kStar) {
        EXPECT_TRUE(cfg.topology.has(sc.coordinator));
      }
    }
    enc.add_power_cut_above(r.power_mw);
  }
}

TEST(MilpEncoding, DependencyConstraintsHonoredByCandidates) {
  model::Scenario sc;
  sc.dependencies.push_back({8, 7, "head needs arm"});
  MilpEncoding enc(sc);
  int rounds = 0;
  for (;;) {
    const MilpRound r = enc.run_milp();
    if (r.status != lp::Status::kOptimal) break;
    ++rounds;
    for (const auto& cfg : r.candidates) {
      if (cfg.topology.has(8)) {
        EXPECT_TRUE(cfg.topology.has(7)) << cfg.label();
      }
    }
    enc.add_power_cut_above(r.power_mw);
  }
  EXPECT_GT(rounds, 0);
}

TEST(MilpEncoding, RejectsDegenerateScenario) {
  model::Scenario sc;
  sc.min_nodes = 1;
  EXPECT_THROW(MilpEncoding{sc}, ModelError);
  sc.min_nodes = 6;
  sc.max_nodes = 4;
  EXPECT_THROW(MilpEncoding{sc}, ModelError);
}

TEST(MilpEncoding, InfeasibleTopologyConstraintsReportInfeasible) {
  model::Scenario sc;
  // Require seven distinct locations but cap the node count at six.
  sc.required_locations = {0, 1, 2, 3, 4, 5, 6};
  const MilpRound r = MilpEncoding{sc}.run_milp();
  EXPECT_EQ(r.status, lp::Status::kInfeasible);
  EXPECT_TRUE(r.candidates.empty());
}

}  // namespace
}  // namespace hi::dse
