// Unit and property tests for the two-phase simplex (lp/simplex.hpp).
#include "lp/simplex.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace hi::lp {
namespace {

TEST(Simplex, SimpleMinimization) {
  Problem p;
  const int x = p.add_variable(0, kInf, 1.0, "x");
  const int y = p.add_variable(0, kInf, 2.0, "y");
  p.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::kGreaterEqual, 3.0);
  const Solution s = solve_simplex(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 3.0, 1e-9);
  EXPECT_NEAR(s.x[x], 3.0, 1e-9);
  EXPECT_NEAR(s.x[y], 0.0, 1e-9);
}

TEST(Simplex, SimpleMaximization) {
  // max 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (classic Dantzig).
  Problem p;
  p.set_objective(Objective::kMaximize);
  const int x = p.add_variable(0, kInf, 3.0, "x");
  const int y = p.add_variable(0, kInf, 5.0, "y");
  p.add_constraint({{x, 1.0}}, Sense::kLessEqual, 4.0);
  p.add_constraint({{y, 2.0}}, Sense::kLessEqual, 12.0);
  p.add_constraint({{x, 3.0}, {y, 2.0}}, Sense::kLessEqual, 18.0);
  const Solution s = solve_simplex(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 36.0, 1e-9);
  EXPECT_NEAR(s.x[x], 2.0, 1e-9);
  EXPECT_NEAR(s.x[y], 6.0, 1e-9);
}

TEST(Simplex, DetectsInfeasibility) {
  Problem p;
  const int x = p.add_variable(0, kInf, 1.0);
  p.add_constraint({{x, 1.0}}, Sense::kLessEqual, 1.0);
  p.add_constraint({{x, 1.0}}, Sense::kGreaterEqual, 2.0);
  EXPECT_EQ(solve_simplex(p).status, Status::kInfeasible);
}

TEST(Simplex, DetectsInfeasibleBoundsVsRow) {
  Problem p;
  const int x = p.add_variable(0.0, 0.5, -1.0);
  p.add_constraint({{x, 1.0}}, Sense::kGreaterEqual, 1.0);
  EXPECT_EQ(solve_simplex(p).status, Status::kInfeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  Problem p;
  p.set_objective(Objective::kMaximize);
  const int x = p.add_variable(0, kInf, 1.0);
  p.add_constraint({{x, 1.0}}, Sense::kGreaterEqual, 1.0);
  EXPECT_EQ(solve_simplex(p).status, Status::kUnbounded);
}

TEST(Simplex, EqualityConstraints) {
  Problem p;
  const int x = p.add_variable(0, kInf, 2.0);
  const int y = p.add_variable(0, kInf, 3.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::kEqual, 4.0);
  p.add_constraint({{x, 1.0}, {y, -1.0}}, Sense::kEqual, 2.0);
  const Solution s = solve_simplex(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.x[x], 3.0, 1e-9);
  EXPECT_NEAR(s.x[y], 1.0, 1e-9);
  EXPECT_NEAR(s.objective, 9.0, 1e-9);
}

TEST(Simplex, RespectsVariableBounds) {
  Problem p;
  const int x = p.add_variable(1.0, 2.0, 1.0);
  const Solution s = solve_simplex(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.x[x], 1.0, 1e-9);
}

TEST(Simplex, FixedVariableStaysFixed) {
  // Regression: lower == upper must pin the variable (the branch-and-bound
  // relies on it; an early version let fixed variables float).
  Problem p;
  p.set_objective(Objective::kMaximize);
  const int x = p.add_variable(0.25, 0.25, 1.0);
  const int y = p.add_variable(0.0, 1.0, 1.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::kLessEqual, 10.0);
  const Solution s = solve_simplex(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.x[x], 0.25, 1e-9);
  EXPECT_NEAR(s.x[y], 1.0, 1e-9);
}

TEST(Simplex, NegativeLowerBounds) {
  Problem p;
  const int x = p.add_variable(-5.0, 5.0, 1.0);
  p.add_constraint({{x, 1.0}}, Sense::kGreaterEqual, -3.0);
  const Solution s = solve_simplex(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.x[x], -3.0, 1e-9);
}

TEST(Simplex, FreeVariable) {
  Problem p;
  const int x = p.add_variable(-kInf, kInf, 1.0);
  p.add_constraint({{x, 1.0}}, Sense::kGreaterEqual, -7.0);
  const Solution s = solve_simplex(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.x[x], -7.0, 1e-9);
}

TEST(Simplex, UpperBoundedOnlyVariable) {
  Problem p;
  p.set_objective(Objective::kMaximize);
  const int x = p.add_variable(-kInf, 3.0, 1.0);
  const Solution s = solve_simplex(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.x[x], 3.0, 1e-9);
}

TEST(Simplex, DuplicateTermsAreSummed) {
  Problem p;
  const int x = p.add_variable(0, kInf, 1.0);
  p.add_constraint({{x, 1.0}, {x, 1.0}}, Sense::kGreaterEqual, 4.0);
  const Solution s = solve_simplex(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.x[x], 2.0, 1e-9);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Klee-Minty-flavoured degeneracy; Bland's rule must terminate.
  Problem p;
  p.set_objective(Objective::kMaximize);
  const int x1 = p.add_variable(0, kInf, 100.0);
  const int x2 = p.add_variable(0, kInf, 10.0);
  const int x3 = p.add_variable(0, kInf, 1.0);
  p.add_constraint({{x1, 1.0}}, Sense::kLessEqual, 1.0);
  p.add_constraint({{x1, 20.0}, {x2, 1.0}}, Sense::kLessEqual, 100.0);
  p.add_constraint({{x1, 200.0}, {x2, 20.0}, {x3, 1.0}}, Sense::kLessEqual,
                   10'000.0);
  const Solution s = solve_simplex(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 10'000.0, 1e-6);
}

TEST(Simplex, ObjectiveValueAndFeasibilityHelpers) {
  Problem p;
  const int x = p.add_variable(0, 10, 2.0);
  p.add_constraint({{x, 1.0}}, Sense::kLessEqual, 5.0);
  EXPECT_DOUBLE_EQ(p.objective_value({3.0}), 6.0);
  EXPECT_TRUE(p.is_feasible({3.0}));
  EXPECT_FALSE(p.is_feasible({7.0}));   // violates row
  EXPECT_FALSE(p.is_feasible({-1.0}));  // violates bound
  EXPECT_GT(p.row_violation(0, {7.0}), 1.9);
}

// ---- Property suite: randomized problems --------------------------------

struct RandomLpCase {
  std::uint64_t seed;
};

class SimplexRandom : public ::testing::TestWithParam<RandomLpCase> {};

// For maximization with all-nonnegative data the solver's optimum must
// (a) be feasible and (b) dominate a cloud of random feasible points.
TEST_P(SimplexRandom, DominatesRandomFeasiblePoints) {
  Rng rng(GetParam().seed);
  const int n = 2 + static_cast<int>(rng.uniform_index(4));
  const int m = 1 + static_cast<int>(rng.uniform_index(4));
  Problem p;
  p.set_objective(Objective::kMaximize);
  std::vector<double> ub(n);
  for (int j = 0; j < n; ++j) {
    ub[j] = rng.uniform(0.5, 4.0);
    p.add_variable(0.0, ub[j], rng.uniform(0.0, 3.0));
  }
  std::vector<std::vector<double>> rows(m, std::vector<double>(n));
  std::vector<double> rhs(m);
  for (int r = 0; r < m; ++r) {
    std::vector<Term> terms;
    for (int j = 0; j < n; ++j) {
      rows[r][j] = rng.uniform(0.0, 2.0);
      terms.push_back({j, rows[r][j]});
    }
    rhs[r] = rng.uniform(0.5, 5.0);
    p.add_constraint(terms, Sense::kLessEqual, rhs[r]);
  }
  const Solution s = solve_simplex(p);
  ASSERT_EQ(s.status, Status::kOptimal);  // x = 0 is always feasible
  EXPECT_TRUE(p.is_feasible(s.x, 1e-6));

  // Sample random feasible points by scaling random box points into the
  // feasible region; none may beat the solver.
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> x(n);
    for (int j = 0; j < n; ++j) x[j] = rng.uniform(0.0, ub[j]);
    double worst_scale = 1.0;
    for (int r = 0; r < m; ++r) {
      double lhs = 0.0;
      for (int j = 0; j < n; ++j) lhs += rows[r][j] * x[j];
      if (lhs > rhs[r]) worst_scale = std::min(worst_scale, rhs[r] / lhs);
    }
    for (double& v : x) v *= worst_scale;
    ASSERT_TRUE(p.is_feasible(x, 1e-6));
    EXPECT_LE(p.objective_value(x), s.objective + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandom,
                         ::testing::Values(RandomLpCase{1}, RandomLpCase{2},
                                           RandomLpCase{3}, RandomLpCase{4},
                                           RandomLpCase{5}, RandomLpCase{6},
                                           RandomLpCase{7}, RandomLpCase{8},
                                           RandomLpCase{9}, RandomLpCase{10},
                                           RandomLpCase{11},
                                           RandomLpCase{12}));

}  // namespace
}  // namespace hi::lp
