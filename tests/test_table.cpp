// Unit tests for the console table / formatting helpers (common/table.hpp).
#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace hi {
namespace {

TEST(FmtDouble, RoundsToDigits) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(3.14159, 0), "3");
  EXPECT_EQ(fmt_double(-1.005, 1), "-1.0");
  EXPECT_EQ(fmt_double(2.0, 3), "2.000");
}

TEST(FmtPercent, ScalesRatio) {
  EXPECT_EQ(fmt_percent(0.873), "87.3%");
  EXPECT_EQ(fmt_percent(1.0, 0), "100%");
  EXPECT_EQ(fmt_percent(0.0), "0.0%");
}

TEST(TextTable, AlignsColumns) {
  TextTable t;
  t.set_header({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "22"});
  std::ostringstream oss;
  t.print(oss);
  const std::string out = oss.str();
  // Header present, rule under header, rows aligned at the same column.
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  const auto pos_header_value = out.find("value");
  const auto line2 = out.find("long-name");
  ASSERT_NE(line2, std::string::npos);
  EXPECT_NE(pos_header_value, std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, HandlesShortRows) {
  TextTable t;
  t.set_header({"a", "b", "c"});
  t.add_row({"only-one"});
  std::ostringstream oss;
  t.print(oss);  // must not throw or read out of bounds
  EXPECT_NE(oss.str().find("only-one"), std::string::npos);
}

TEST(TextTable, NoHeaderPrintsRowsOnly) {
  TextTable t;
  t.add_row({"x", "y"});
  std::ostringstream oss;
  t.print(oss);
  EXPECT_EQ(oss.str().find('-'), std::string::npos);
}

TEST(TextTable, CsvEscapesCommas) {
  TextTable t;
  t.set_header({"config", "pdr"});
  t.add_row({"[0,1,3,6], Star", "0.93"});
  std::ostringstream oss;
  t.print_csv(oss);
  EXPECT_NE(oss.str().find("\"[0,1,3,6], Star\""), std::string::npos);
  EXPECT_NE(oss.str().find("config,pdr"), std::string::npos);
}

}  // namespace
}  // namespace hi
