// Unit tests for the physical layer: Radio reception/capture/energy and
// Medium propagation (net/radio.hpp, net/medium.hpp).
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "channel/channel.hpp"
#include "des/kernel.hpp"
#include "net/medium.hpp"
#include "net/radio.hpp"

namespace hi::net {
namespace {

/// Two/three radios on a controllable static channel.
class RadioFixture : public ::testing::Test {
 protected:
  RadioFixture() {
    matrix_.set_db(0, 1, 60.0);
    matrix_.set_db(0, 2, 60.0);
    matrix_.set_db(1, 2, 60.0);
  }

  /// Builds the world after the test adjusted `matrix_` / params.
  void build(int radios = 2) {
    channel_.emplace(matrix_);
    medium_.emplace(kernel_, *channel_);
    for (int i = 0; i < radios; ++i) {
      RadioParams p = params_;
      nodes_.push_back(std::make_unique<Radio>(kernel_, *medium_, i, p));
      medium_->attach(nodes_.back().get());
    }
  }

  Radio& radio(int i) { return *nodes_[static_cast<std::size_t>(i)]; }

  Packet make_packet(int origin, int bytes = 100) {
    Packet p;
    p.origin = origin;
    p.sender = origin;
    p.bytes = bytes;
    p.visited = static_cast<std::uint16_t>(1u << origin);
    return p;
  }

  des::Kernel kernel_;
  channel::PathLossMatrix matrix_;
  std::optional<channel::StaticChannel> channel_;
  std::optional<Medium> medium_;
  RadioParams params_{};  // 0 dBm, -97 dBm sensitivity by default
  std::vector<std::unique_ptr<Radio>> nodes_;
};

TEST_F(RadioFixture, DeliversAboveSensitivity) {
  build();
  std::vector<Packet> got;
  radio(1).on_receive = [&](const Packet& p) { got.push_back(p); };
  radio(0).transmit(make_packet(0));
  kernel_.run_until(1.0);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].origin, 0);
  EXPECT_EQ(got[0].sender, 0);
  EXPECT_EQ(radio(1).stats().rx_ok, 1u);
  EXPECT_EQ(medium_->stats().deliveries_offered, 1u);
}

TEST_F(RadioFixture, DropsBelowSensitivity) {
  matrix_.set_db(0, 1, 98.0);  // 0 dBm - 98 dB = -98 < -97 sensitivity
  build();
  bool got = false;
  radio(1).on_receive = [&](const Packet&) { got = true; };
  radio(0).transmit(make_packet(0));
  kernel_.run_until(1.0);
  EXPECT_FALSE(got);
  EXPECT_EQ(medium_->stats().below_sensitivity, 1u);
  EXPECT_EQ(radio(1).stats().rx_ok, 0u);
  // Unheard packets cost no receive energy (paper's Eq. 3 accounting).
  EXPECT_DOUBLE_EQ(radio(1).rx_energy_mj(), 0.0);
}

TEST_F(RadioFixture, ExactSensitivityBoundaryIsReceived) {
  matrix_.set_db(0, 1, 97.0);  // exactly -97 dBm at the receiver
  build();
  bool got = false;
  radio(1).on_receive = [&](const Packet&) { got = true; };
  radio(0).transmit(make_packet(0));
  kernel_.run_until(1.0);
  EXPECT_TRUE(got);
}

TEST_F(RadioFixture, OverlappingEqualPowerTransmissionsCollide) {
  build(3);
  bool got = false;
  radio(2).on_receive = [&](const Packet&) { got = true; };
  radio(0).transmit(make_packet(0));
  radio(1).transmit(make_packet(1));  // same instant, equal rx power
  kernel_.run_until(1.0);
  EXPECT_FALSE(got);
  EXPECT_EQ(radio(2).stats().rx_corrupted, 1u);
  EXPECT_EQ(radio(2).stats().rx_missed, 1u);
}

TEST_F(RadioFixture, CaptureStrongerSignalSurvives) {
  matrix_.set_db(0, 2, 50.0);  // wanted signal much stronger
  matrix_.set_db(1, 2, 75.0);  // interferer 25 dB below (> 10 dB capture)
  build(3);
  int got_from = -1;
  radio(2).on_receive = [&](const Packet& p) { got_from = p.origin; };
  radio(0).transmit(make_packet(0));
  radio(1).transmit(make_packet(1));
  kernel_.run_until(1.0);
  EXPECT_EQ(got_from, 0);
  EXPECT_EQ(radio(2).stats().rx_ok, 1u);
}

TEST_F(RadioFixture, LateStrongInterferenceCorruptsOngoingDecode) {
  matrix_.set_db(0, 2, 70.0);
  matrix_.set_db(1, 2, 65.0);  // within 10 dB capture window
  build(3);
  bool got = false;
  radio(2).on_receive = [&](const Packet&) { got = true; };
  radio(0).transmit(make_packet(0));
  kernel_.schedule_in(100e-6, [&] { radio(1).transmit(make_packet(1)); });
  kernel_.run_until(1.0);
  EXPECT_FALSE(got);
  EXPECT_EQ(radio(2).stats().rx_corrupted, 1u);
}

TEST_F(RadioFixture, HalfDuplexCannotHearWhileTransmitting) {
  build();
  bool got = false;
  radio(1).on_receive = [&](const Packet&) { got = true; };
  radio(1).transmit(make_packet(1));
  radio(0).transmit(make_packet(0));  // starts while 1 is still talking
  kernel_.run_until(1.0);
  EXPECT_FALSE(got);
  EXPECT_EQ(radio(1).stats().rx_missed, 1u);
}

TEST_F(RadioFixture, TransmitAbortsOngoingDecode) {
  build();
  bool got = false;
  radio(1).on_receive = [&](const Packet&) { got = true; };
  radio(0).transmit(make_packet(0));
  kernel_.schedule_in(100e-6, [&] { radio(1).transmit(make_packet(1)); });
  kernel_.run_until(1.0);
  EXPECT_FALSE(got);
  EXPECT_EQ(radio(1).stats().rx_aborted, 1u);
}

TEST_F(RadioFixture, TxDoneCallbackFiresAfterAirtime) {
  build();
  double done_at = -1.0;
  radio(0).on_tx_done = [&] { done_at = kernel_.now(); };
  radio(0).transmit(make_packet(0));
  EXPECT_TRUE(radio(0).transmitting());
  kernel_.run_until(1.0);
  EXPECT_FALSE(radio(0).transmitting());
  EXPECT_DOUBLE_EQ(done_at, radio(0).packet_airtime_s(100));
}

TEST_F(RadioFixture, EnergyMetering) {
  build();
  radio(1).on_receive = [](const Packet&) {};
  radio(0).transmit(make_packet(0));
  kernel_.run_until(1.0);
  const double airtime = radio(0).packet_airtime_s(100);
  EXPECT_NEAR(radio(0).tx_energy_mj(), airtime * params_.tx_mw, 1e-12);
  EXPECT_DOUBLE_EQ(radio(0).rx_energy_mj(), 0.0);
  EXPECT_NEAR(radio(1).rx_energy_mj(), airtime * params_.rx_mw, 1e-12);
  EXPECT_DOUBLE_EQ(radio(1).tx_energy_mj(), 0.0);
}

TEST_F(RadioFixture, CorruptedDecodeStillCostsRxEnergy) {
  build(3);
  radio(0).transmit(make_packet(0));
  radio(1).transmit(make_packet(1));
  kernel_.run_until(1.0);
  EXPECT_GT(radio(2).rx_energy_mj(), 0.0);
}

TEST_F(RadioFixture, CarrierSenseSeesOngoingTransmission) {
  build();
  EXPECT_FALSE(radio(1).channel_busy());
  radio(0).transmit(make_packet(0));
  EXPECT_TRUE(radio(1).channel_busy());
  EXPECT_TRUE(radio(0).channel_busy());  // own tx counts as busy
  kernel_.run_until(1.0);
  EXPECT_FALSE(radio(1).channel_busy());
}

TEST_F(RadioFixture, CarrierSenseBlindBelowSensitivity) {
  matrix_.set_db(0, 1, 99.0);  // hidden terminal
  build();
  radio(0).transmit(make_packet(0));
  EXPECT_FALSE(radio(1).channel_busy());
  kernel_.run_until(1.0);
}

TEST_F(RadioFixture, PacketAirtimeMatchesBitRate) {
  build();
  EXPECT_DOUBLE_EQ(radio(0).packet_airtime_s(100), 800.0 / 1.024e6);
  EXPECT_DOUBLE_EQ(radio(0).packet_airtime_s(128), 1024.0 / 1.024e6);
}

TEST_F(RadioFixture, BackToBackTransmissionsBothDelivered) {
  build();
  int got = 0;
  radio(1).on_receive = [&](const Packet&) { ++got; };
  radio(0).on_tx_done = [&] {
    if (got == 0 || radio(0).stats().tx_packets == 1) {
      radio(0).transmit(make_packet(0));
    }
  };
  radio(0).transmit(make_packet(0));
  kernel_.run_until(1.0);
  EXPECT_EQ(got, 2);
  EXPECT_EQ(radio(0).stats().tx_packets, 2u);
}

}  // namespace
}  // namespace hi::net
