// Unit tests for the simulation evaluator cache (dse/evaluator.hpp).
#include "dse/evaluator.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "model/design_space.hpp"

namespace hi::dse {
namespace {

EvaluatorSettings fast_settings() {
  EvaluatorSettings s;
  s.sim.duration_s = 10.0;
  s.sim.seed = 17;
  s.runs = 2;
  return s;
}

model::NetworkConfig some_config(int lvl = 2) {
  model::Scenario sc;
  return sc.make_config(model::Topology::from_locations({0, 1, 3, 5}), lvl,
                        model::MacProtocol::kCsma,
                        model::RoutingProtocol::kStar);
}

TEST(Evaluator, CachesRepeatEvaluations) {
  Evaluator ev(fast_settings());
  const Evaluation& a = ev.evaluate(some_config());
  EXPECT_EQ(ev.simulations(), 1u);
  EXPECT_EQ(ev.cache_hits(), 0u);
  const Evaluation& b = ev.evaluate(some_config());
  EXPECT_EQ(ev.simulations(), 1u);
  EXPECT_EQ(ev.cache_hits(), 1u);
  EXPECT_DOUBLE_EQ(a.pdr, b.pdr);
  EXPECT_DOUBLE_EQ(a.power_mw, b.power_mw);
}

TEST(Evaluator, DistinctConfigsAreDistinctSimulations) {
  Evaluator ev(fast_settings());
  (void)ev.evaluate(some_config(0));
  (void)ev.evaluate(some_config(1));
  (void)ev.evaluate(some_config(2));
  EXPECT_EQ(ev.simulations(), 3u);
}

TEST(Evaluator, ResultIndependentOfEvaluationOrder) {
  // Seeds are derived from the design key, so evaluation order must not
  // change any result.
  Evaluator ev1(fast_settings());
  Evaluator ev2(fast_settings());
  const double a0 = ev1.evaluate(some_config(0)).pdr;
  const double a2 = ev1.evaluate(some_config(2)).pdr;
  const double b2 = ev2.evaluate(some_config(2)).pdr;
  const double b0 = ev2.evaluate(some_config(0)).pdr;
  EXPECT_DOUBLE_EQ(a0, b0);
  EXPECT_DOUBLE_EQ(a2, b2);
}

TEST(Evaluator, ResetCountersStartsNewEpochButKeepsCache) {
  Evaluator ev(fast_settings());
  const Evaluation& first = ev.evaluate(some_config());
  const double pdr = first.pdr;
  ev.reset_counters();
  EXPECT_EQ(ev.simulations(), 0u);
  // A new epoch counts the design point again — the requester would have
  // needed the simulation — but serves it from the cache.
  const Evaluation& again = ev.evaluate(some_config());
  EXPECT_EQ(ev.simulations(), 1u);
  EXPECT_EQ(ev.cache_hits(), 1u);
  EXPECT_DOUBLE_EQ(again.pdr, pdr);
  // Within the epoch, repeats stay free.
  (void)ev.evaluate(some_config());
  EXPECT_EQ(ev.simulations(), 1u);
  EXPECT_EQ(ev.cache_hits(), 2u);
}

TEST(Evaluator, EvaluationCarriesConsistentMetrics) {
  Evaluator ev(fast_settings());
  const Evaluation& e = ev.evaluate(some_config());
  EXPECT_GE(e.pdr, 0.0);
  EXPECT_LE(e.pdr, 1.0);
  EXPECT_GT(e.power_mw, 0.0);
  EXPECT_GT(e.nlt_s, 0.0);
  EXPECT_DOUBLE_EQ(e.pdr, e.detail.pdr);
  EXPECT_DOUBLE_EQ(e.power_mw, e.detail.worst_power_mw);
}

TEST(Evaluator, ReturnedReferencesAreStableAcrossLaterEvaluations) {
  // Documented contract (evaluator.hpp): annealing holds an Evaluation
  // reference across subsequent evaluate() calls, and BatchEvaluator
  // returns pointers into the cache.  Safe only because the cache is a
  // node-based std::unordered_map — pin it with enough insertions to
  // force several rehashes.
  Evaluator ev(fast_settings());
  const Evaluation& first = ev.evaluate(some_config(0));
  const Evaluation* first_addr = &first;
  const double pdr = first.pdr;
  model::Scenario sc;
  for (const model::Topology& t : sc.feasible_topologies()) {
    (void)ev.evaluate(sc.make_config(t, 0, model::MacProtocol::kTdma,
                                     model::RoutingProtocol::kMesh));
  }
  const Evaluation& again = ev.evaluate(some_config(0));
  EXPECT_EQ(&again, first_addr);
  EXPECT_EQ(again.pdr, pdr);
}

TEST(Evaluator, RejectsBadSettings) {
  EvaluatorSettings s = fast_settings();
  s.runs = 0;
  EXPECT_THROW(Evaluator{s}, ModelError);
  s = fast_settings();
  s.channel = nullptr;
  EXPECT_THROW(Evaluator{s}, ModelError);
  s = fast_settings();
  s.threads = -1;
  EXPECT_THROW(Evaluator{s}, ModelError);
}

}  // namespace
}  // namespace hi::dse
