// hi::store warm start: Evaluator preload/store-hit accounting at the
// unit level, and the hi::check determinism property (cold vs warmed
// Algorithm 1, bit for bit) at several thread counts.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "check/scenario_gen.hpp"
#include "check/store_props.hpp"
#include "dse/evaluator.hpp"
#include "dse/explorer.hpp"
#include "store/store.hpp"

namespace {

using namespace hi;

check::ScenarioSpec small_spec() {
  return check::make_scenario(11, /*shrink_level=*/1);
}

TEST(EvaluatorPreload, FirstServeCountsAsStoreHitThenBehavesCached) {
  const check::ScenarioSpec spec = small_spec();
  const std::vector<model::NetworkConfig> configs =
      spec.scenario.feasible_configs();
  ASSERT_GE(configs.size(), 2u);
  const model::NetworkConfig& warm_cfg = configs[0];
  const model::NetworkConfig& cold_cfg = configs[1];

  dse::Evaluator oracle(spec.settings);
  const dse::Evaluation truth = oracle.simulate_uncached(warm_cfg);

  dse::Evaluator eval(spec.settings);
  EXPECT_TRUE(eval.preload(warm_cfg, truth));
  EXPECT_FALSE(eval.preload(warm_cfg, truth));  // already cached
  EXPECT_TRUE(eval.cached(warm_cfg));
  EXPECT_EQ(eval.store_hits(), 0u);  // accounting waits for the serve

  const dse::Evaluation& served = eval.evaluate(warm_cfg);
  EXPECT_EQ(served.pdr, truth.pdr);
  EXPECT_EQ(served.power_mw, truth.power_mw);
  EXPECT_EQ(eval.store_hits(), 1u);
  EXPECT_EQ(eval.simulations(), 0u);
  EXPECT_EQ(eval.cache_hits(), 0u);  // a store hit is not a cache hit

  // Same epoch, same point: an ordinary cache hit now.
  (void)eval.evaluate(warm_cfg);
  EXPECT_EQ(eval.store_hits(), 1u);
  EXPECT_EQ(eval.cache_hits(), 1u);

  // A genuinely fresh point is a simulation, as always.
  (void)eval.evaluate(cold_cfg);
  EXPECT_EQ(eval.simulations(), 1u);

  // Next epoch: the formerly-preloaded point re-counts as a simulation,
  // exactly like a point the evaluator simulated itself.
  eval.reset_counters();
  EXPECT_EQ(eval.store_hits(), 0u);
  (void)eval.evaluate(warm_cfg);
  EXPECT_EQ(eval.simulations(), 1u);
  EXPECT_EQ(eval.store_hits(), 0u);
}

TEST(EvaluatorPreload, StoreSinkSeesOnlyFreshSimulations) {
  const check::ScenarioSpec spec = small_spec();
  const std::vector<model::NetworkConfig> configs =
      spec.scenario.feasible_configs();
  ASSERT_GE(configs.size(), 2u);

  dse::Evaluator oracle(spec.settings);
  const dse::Evaluation truth = oracle.simulate_uncached(configs[0]);

  dse::Evaluator eval(spec.settings);
  ASSERT_TRUE(eval.preload(configs[0], truth));
  std::vector<std::uint64_t> announced;
  eval.set_store_sink(
      [&](const model::NetworkConfig& cfg, const dse::Evaluation&) {
        announced.push_back(cfg.design_key());
      });
  (void)eval.evaluate(configs[0]);  // preloaded: not announced
  (void)eval.evaluate(configs[1]);  // fresh: announced once
  (void)eval.evaluate(configs[1]);  // cache hit: not re-announced
  ASSERT_EQ(announced.size(), 1u);
  EXPECT_EQ(announced[0], configs[1].design_key());
}

TEST(StoreWarmStart, DeterminismPropertySerial) {
  EXPECT_EQ(check::check_warm_start_determinism(
                small_spec(), "warmstart_serial.store", /*threads=*/0),
            std::vector<std::string>{});
  std::remove("warmstart_serial.store");
}

TEST(StoreWarmStart, DeterminismPropertyThreaded) {
  EXPECT_EQ(check::check_warm_start_determinism(
                small_spec(), "warmstart_threaded.store", /*threads=*/2),
            std::vector<std::string>{});
  std::remove("warmstart_threaded.store");
}

TEST(StoreWarmStart, ColdRunAtOneSpecWarmsADifferentThreadCount) {
  // The store is thread-count-agnostic: populate serial, warm a
  // 3-thread run — still zero fresh simulations.
  const check::ScenarioSpec spec = small_spec();
  const std::string path = "warmstart_cross.store";
  std::remove(path.c_str());
  dse::ExplorationOptions opt;
  opt.pdr_min = 0.8;
  std::uint64_t cold_sims = 0;
  {
    store::EvalStore st(path, {});
    dse::Evaluator eval(spec.settings);
    (void)store::warm_start(eval, st);
    cold_sims = dse::run_algorithm1(spec.scenario, eval, opt).simulations;
  }
  {
    store::EvalStore st(path, {});
    dse::Evaluator eval(spec.settings);
    const store::WarmStartStats ws = store::warm_start(eval, st);
    EXPECT_EQ(ws.preloaded, cold_sims);
    opt.threads = 3;
    const dse::ExplorationResult warm =
        dse::run_algorithm1(spec.scenario, eval, opt);
    EXPECT_EQ(warm.simulations, 0u);
    EXPECT_EQ(warm.metrics.counter("dse.store_hits"), cold_sims);
  }
  std::remove(path.c_str());
}

TEST(StoreWarmStart, MismatchedSettingsShareNothing) {
  const check::ScenarioSpec spec = small_spec();
  const std::string path = "warmstart_mismatch.store";
  std::remove(path.c_str());
  {
    store::EvalStore st(path, {});
    dse::Evaluator eval(spec.settings);
    (void)store::warm_start(eval, st);
    dse::ExplorationOptions opt;
    opt.pdr_min = 0.8;
    (void)dse::run_algorithm1(spec.scenario, eval, opt);
    EXPECT_GT(st.eval_count(), 0u);
  }
  {
    store::EvalStore st(path, {});
    dse::EvaluatorSettings other = spec.settings;
    other.sim.seed += 1;  // a different experiment
    dse::Evaluator eval(other);
    const store::WarmStartStats ws = store::warm_start(eval, st);
    EXPECT_EQ(ws.preloaded, 0u);  // fingerprints differ: nothing leaks
  }
  std::remove(path.c_str());
}

}  // namespace
