// Unit tests for the statistics accumulators (common/stats.hpp).
#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace hi {
namespace {

TEST(RunningStats, EmptyIsNeutral) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stderr_mean(), 0.0);
}

TEST(RunningStats, KnownSmallSample) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng r(5);
  RunningStats whole, a, b;
  for (int i = 0; i < 1'000; ++i) {
    const double x = r.normal(1.0, 3.0);
    whole.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  RunningStats a_copy = a;
  a.merge(b);  // empty rhs: no change
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a_copy);  // empty lhs adopts rhs
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStats, StdErrShrinksWithN) {
  RunningStats s;
  Rng r(6);
  for (int i = 0; i < 100; ++i) s.add(r.uniform());
  const double se100 = s.stderr_mean();
  for (int i = 0; i < 9'900; ++i) s.add(r.uniform());
  EXPECT_LT(s.stderr_mean(), se100 / 5.0);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 9
  h.add(-5.0);   // clamped to bin 0
  h.add(25.0);   // clamped to bin 9
  h.add(5.0);    // bin 5
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.4);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_center(9), 9.5);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), ModelError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), ModelError);
}

TEST(Pearson, PerfectCorrelations) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{2, 4, 6, 8, 10};
  std::vector<double> z{5, 4, 3, 2, 1};
  EXPECT_NEAR(pearson_correlation(x, y), 1.0, 1e-12);
  EXPECT_NEAR(pearson_correlation(x, z), -1.0, 1e-12);
}

TEST(Pearson, IndependentSamplesNearZero) {
  Rng r(9);
  std::vector<double> a, b;
  for (int i = 0; i < 20'000; ++i) {
    a.push_back(r.normal());
    b.push_back(r.normal());
  }
  EXPECT_NEAR(pearson_correlation(a, b), 0.0, 0.03);
}

TEST(Pearson, ZeroVarianceIsZero) {
  std::vector<double> flat{1, 1, 1};
  std::vector<double> x{1, 2, 3};
  EXPECT_DOUBLE_EQ(pearson_correlation(flat, x), 0.0);
}

TEST(Pearson, SizeMismatchThrows) {
  std::vector<double> a{1, 2};
  std::vector<double> b{1, 2, 3};
  EXPECT_THROW((void)pearson_correlation(a, b), ModelError);
}

}  // namespace
}  // namespace hi
