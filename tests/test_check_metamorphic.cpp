// Tier-1 metamorphic properties of the DSE layer on generated scenarios:
// Algorithm 1 must land on the exhaustive optimum, raising PDRmin can
// never lower the optimal power, MILP power cuts walk the achievable
// level grid upward, and thread counts {1, 4} leave every result and
// every (non-scheduling) counter bit-identical.
#include <gtest/gtest.h>

#include "check/properties.hpp"
#include "check/scenario_gen.hpp"
#include "dse/evaluator.hpp"

namespace hi::check {
namespace {

void expect_clean(const std::vector<std::string>& violations,
                  const ScenarioSpec& spec, const char* property) {
  for (const std::string& v : violations) {
    ADD_FAILURE() << property << " on " << spec.summary() << ": " << v;
  }
}

TEST(Metamorphic, Algorithm1MatchesExhaustiveOnGeneratedScenarios) {
  for (const std::uint64_t seed : {4001ULL, 4002ULL, 4003ULL}) {
    const ScenarioSpec spec = make_scenario(seed);
    dse::Evaluator eval(spec.settings);
    expect_clean(check_alg1_matches_exhaustive(spec.scenario, eval, 0.8),
                 spec, "alg1_vs_exhaustive");
  }
}

TEST(Metamorphic, RaisingPdrMinNeverLowersOptimalPower) {
  const ScenarioSpec spec = make_scenario(4101);
  dse::Evaluator eval(spec.settings);
  expect_clean(
      check_pdrmin_monotone(spec.scenario, eval, {0.0, 0.3, 0.6, 0.9, 0.99}),
      spec, "pdrmin_monotone");
}

TEST(Metamorphic, PowerCutsWalkTheLevelGridUpward) {
  for (const std::uint64_t seed : {4201ULL, 4202ULL, 4203ULL, 4204ULL}) {
    const ScenarioSpec spec = make_scenario(seed);
    expect_clean(check_power_cuts_monotone(spec.scenario), spec,
                 "power_cuts_monotone");
  }
}

TEST(Metamorphic, ScenarioGenIsDeterministicAndShrinksMonotonically) {
  const ScenarioSpec a = make_scenario(4301);
  const ScenarioSpec b = make_scenario(4301);
  EXPECT_EQ(a.summary(), b.summary());
  EXPECT_EQ(a.scenario.feasible_configs().size(),
            b.scenario.feasible_configs().size());
  std::size_t prev = a.scenario.feasible_configs().size();
  EXPECT_GT(prev, 0u);
  for (int level = 1; level <= kMaxShrink; ++level) {
    const ScenarioSpec s = make_scenario(4301, level);
    const std::size_t count = s.scenario.feasible_configs().size();
    EXPECT_GT(count, 0u) << "shrink " << level << " emptied the space";
    EXPECT_LE(count, prev) << "shrink " << level << " grew the space";
    prev = count;
  }
}

TEST(Metamorphic, ThreadCountsOneAndFourAreBitIdentical) {
  const ScenarioSpec spec = make_scenario(4401);
  for (const int threads : {1, 4}) {
    expect_clean(check_thread_determinism(spec, threads), spec,
                 "thread_determinism");
  }
}

}  // namespace
}  // namespace hi::check
