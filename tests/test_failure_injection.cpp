// Failure-injection tests: the stack's behaviour when pieces of the
// world break — dead channels, one-way links, absurd loads, impossible
// requirements — must be graceful and correctly reported.
#include <gtest/gtest.h>

#include "channel/channel.hpp"
#include "common/assert.hpp"
#include "dse/explorer.hpp"
#include "net/network.hpp"

namespace hi {
namespace {

/// Channel where only the listed directed pairs are alive.
channel::PathLossMatrix matrix_with_links(
    std::initializer_list<std::pair<int, int>> alive, double pl = 60.0) {
  channel::PathLossMatrix m;
  for (int i = 0; i < channel::kNumLocations; ++i) {
    for (int j = i + 1; j < channel::kNumLocations; ++j) {
      m.set_db(i, j, 150.0);
    }
  }
  for (const auto& [a, b] : alive) {
    m.set_db(a, b, pl);
  }
  return m;
}

net::SimParams fast_params() {
  net::SimParams sp;
  sp.duration_s = 10.0;
  sp.seed = 5;
  return sp;
}

model::NetworkConfig reference(model::RoutingProtocol rt,
                               model::MacProtocol mac =
                                   model::MacProtocol::kTdma) {
  model::Scenario sc;
  return sc.make_config(model::Topology::from_locations({0, 1, 3, 5}), 2,
                        mac, rt);
}

TEST(FailureInjection, PartitionedNetworkHasPartialPdr) {
  // The ankle (3) is unreachable; everyone else communicates fine.
  channel::StaticChannel ch(
      matrix_with_links({{0, 1}, {0, 5}, {1, 5}}));
  const net::SimResult r =
      net::simulate(reference(model::RoutingProtocol::kStar), ch,
                    fast_params());
  EXPECT_GT(r.pdr, 0.3);
  EXPECT_LT(r.pdr, 0.8);
  for (const auto& n : r.nodes) {
    if (n.location == 3) {
      EXPECT_DOUBLE_EQ(n.pdr, 0.0);
    }
  }
}

TEST(FailureInjection, MeshHealsAPartitionTheStarCannot) {
  // Ankle reachable only via the hip: star (echo via chest) fails,
  // mesh (relay at hip) succeeds.
  const auto m = matrix_with_links({{0, 1}, {0, 5}, {1, 5}, {1, 3}});
  {
    channel::StaticChannel ch(m);
    const net::SimResult star = net::simulate(
        reference(model::RoutingProtocol::kStar), ch, fast_params());
    double ankle_pdr = -1.0;
    for (const auto& n : star.nodes) {
      if (n.location == 3) ankle_pdr = n.pdr;
    }
    EXPECT_LT(ankle_pdr, 0.5);  // only hip->ankle direct traffic arrives
  }
  {
    channel::StaticChannel ch(m);
    const net::SimResult mesh = net::simulate(
        reference(model::RoutingProtocol::kMesh), ch, fast_params());
    double ankle_pdr = -1.0;
    for (const auto& n : mesh.nodes) {
      if (n.location == 3) ankle_pdr = n.pdr;
    }
    EXPECT_GT(ankle_pdr, 0.95);  // hip relays everything
  }
}

TEST(FailureInjection, SaturatingLoadDropsAtBufferNotCrash) {
  // 1000 pkt/s per node on a 1024 kbps channel is beyond capacity: the
  // MAC buffers overflow, drops are counted, and PDR degrades without
  // any assertion tripping.
  model::Scenario sc;
  sc.app.throughput_pps = 1000.0;
  const auto cfg =
      sc.make_config(model::Topology::from_locations({0, 1, 3, 5}), 2,
                     model::MacProtocol::kTdma,
                     model::RoutingProtocol::kMesh);
  auto ch = channel::make_default_body_channel(1);
  const net::SimResult r = net::simulate(cfg, *ch, fast_params());
  std::uint64_t drops = 0;
  for (const auto& n : r.nodes) drops += n.mac.dropped_buffer;
  EXPECT_GT(drops, 0u);
  EXPECT_LT(r.pdr, 0.9);
}

TEST(FailureInjection, ExplorerReportsInfeasibleOnDeadChannel) {
  dse::EvaluatorSettings es;
  es.sim.duration_s = 5.0;
  es.sim.seed = 2;
  es.runs = 1;
  es.channel = [](std::uint64_t) {
    channel::PathLossMatrix m = matrix_with_links({});
    return std::make_unique<channel::StaticChannel>(m);
  };
  dse::Evaluator eval(es);
  model::Scenario sc;
  sc.max_nodes = 4;
  dse::ExplorationOptions opt;
  opt.pdr_min = 0.5;
  const dse::ExplorationResult res = dse::run_algorithm1(sc, eval, opt);
  EXPECT_FALSE(res.feasible);
  // It must have drained every power level before giving up.
  EXPECT_EQ(res.simulations, 96u);
  const dse::ExplorationResult exh = dse::run_exhaustive(sc, eval, opt);
  EXPECT_FALSE(exh.feasible);
}

TEST(FailureInjection, AnnealerSurvivesFullyInfeasibleSpace) {
  dse::EvaluatorSettings es;
  es.sim.duration_s = 5.0;
  es.sim.seed = 2;
  es.runs = 1;
  es.channel = [](std::uint64_t) {
    channel::PathLossMatrix m = matrix_with_links({});
    return std::make_unique<channel::StaticChannel>(m);
  };
  dse::Evaluator eval(es);
  model::Scenario sc;
  sc.max_nodes = 4;
  dse::ExplorationOptions opt;
  opt.pdr_min = 0.5;
  opt.budget = 50;
  const dse::ExplorationResult res = dse::run_annealing(sc, eval, opt);
  EXPECT_FALSE(res.feasible);
  EXPECT_EQ(res.iterations, 50);
}

TEST(FailureInjection, ImpossibleTopologyRequirementsAreInfeasible) {
  model::Scenario sc;
  sc.coverage.push_back({{9}, "back node required"});
  sc.coverage.push_back({{8}, "head node required"});
  sc.coverage.push_back({{7}, "shoulder node required"});
  // chest + hip + foot + wrist + back + head + shoulder = 7 > max 6.
  EXPECT_TRUE(sc.feasible_topologies().empty());
  dse::EvaluatorSettings es;
  es.sim.duration_s = 5.0;
  es.runs = 1;
  dse::Evaluator eval(es);
  dse::ExplorationOptions opt;
  opt.pdr_min = 0.1;
  const dse::ExplorationResult res = dse::run_algorithm1(sc, eval, opt);
  EXPECT_FALSE(res.feasible);
  EXPECT_EQ(res.simulations, 0u);  // the MILP proves it without simulating
}

TEST(FailureInjection, AsymmetricOneWayLinkBreaksReturnTraffic) {
  // PathLossMatrix is symmetric by construction; asymmetry is modeled at
  // the radio level (different sensitivities).  A deaf-but-loud node:
  // transmits at 0 dBm but its receiver is 20 dB less sensitive.
  model::Scenario sc;
  auto cfg = sc.make_config(model::Topology::from_locations({0, 1, 3, 5}),
                            2, model::MacProtocol::kTdma,
                            model::RoutingProtocol::kStar);
  // Raise everyone's sensitivity threshold so marginal links die on the
  // receive side only.
  cfg.radio.rx_dbm = -70.0;
  channel::PathLossMatrix m;
  for (int i = 0; i < channel::kNumLocations; ++i) {
    for (int j = i + 1; j < channel::kNumLocations; ++j) {
      m.set_db(i, j, 70.0 + (i == 0 || j == 0 ? 0.0 : 5.0));
    }
  }
  channel::StaticChannel ch(m);
  const net::SimResult r = net::simulate(cfg, ch, fast_params());
  // Chest links (70 dB) survive, peer-to-peer links (75 dB) do not: the
  // star works solely through the coordinator echo.
  EXPECT_GT(r.pdr, 0.9);
  for (const auto& n : r.nodes) {
    if (n.location != 0) {
      EXPECT_GT(n.routing.duplicates + n.routing.delivered, 0u);
    }
  }
}

}  // namespace
}  // namespace hi
