// Tier-1 tests of the simulator invariant auditor (check/invariants.hpp):
// real runs across the MAC x routing grid must audit clean, ScenarioGen
// instances must audit clean, and — just as important — the auditor must
// actually catch each class of violation when the inputs are tampered
// with (an auditor that never fires proves nothing).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "check/invariants.hpp"
#include "check/properties.hpp"
#include "check/scenario_gen.hpp"
#include "model/design_space.hpp"

namespace hi::check {
namespace {

model::NetworkConfig grid_config(model::MacProtocol mac,
                                 model::RoutingProtocol routing) {
  const model::Scenario sc;  // the paper's Sec. 4.1 defaults
  const model::Topology t = model::Topology::from_locations({0, 1, 3, 5});
  return sc.make_config(t, /*tx_level=*/1, mac, routing);
}

net::SimParams fast_params(std::uint64_t seed) {
  net::SimParams p;
  p.duration_s = 5.0;
  p.seed = seed;
  return p;
}

bool any_contains(const std::vector<std::string>& violations,
                  const std::string& needle) {
  return std::any_of(violations.begin(), violations.end(),
                     [&](const std::string& v) {
                       return v.find(needle) != std::string::npos;
                     });
}

TEST(Invariants, CleanAcrossMacRoutingGrid) {
  for (const auto mac : {model::MacProtocol::kCsma, model::MacProtocol::kTdma}) {
    for (const auto rt :
         {model::RoutingProtocol::kStar, model::RoutingProtocol::kMesh}) {
      const model::NetworkConfig cfg = grid_config(mac, rt);
      const AuditedRun run = audited_simulate(cfg, fast_params(11));
      for (const std::string& v : run.violations) {
        ADD_FAILURE() << cfg.label() << ": " << v;
      }
      EXPECT_GT(run.result.medium.transmissions, 0u) << cfg.label();
      EXPECT_FALSE(run.trace.empty()) << cfg.label();
    }
  }
}

TEST(Invariants, CleanOnGeneratedScenarios) {
  for (const std::uint64_t seed : {3001ULL, 3002ULL, 3003ULL}) {
    const ScenarioSpec spec = make_scenario(seed);
    const std::vector<std::string> violations = check_sim_invariants(spec, 2);
    for (const std::string& v : violations) {
      ADD_FAILURE() << spec.summary() << ": " << v;
    }
  }
}

/// Shared fixture: one clean audited run to tamper with.
class TamperedAudit : public ::testing::Test {
 protected:
  void SetUp() override {
    cfg_ = grid_config(model::MacProtocol::kCsma,
                       model::RoutingProtocol::kStar);
    params_ = fast_params(23);
    run_ = audited_simulate(cfg_, params_);
    ASSERT_TRUE(run_.violations.empty());
  }

  std::vector<std::string> reaudit() const {
    return audit_run(cfg_, params_, run_.result, run_.metrics, run_.trace);
  }

  model::NetworkConfig cfg_;
  net::SimParams params_;
  AuditedRun run_;
};

TEST_F(TamperedAudit, CatchesPdrOutOfRange) {
  run_.result.pdr = 1.5;
  EXPECT_TRUE(any_contains(reaudit(), "outside [0, 1]"));
}

TEST_F(TamperedAudit, CatchesPdrMeanMismatch) {
  run_.result.pdr = std::max(0.0, run_.result.pdr - 0.25);
  EXPECT_TRUE(any_contains(reaudit(), "mean of the node PDRs"));
}

TEST_F(TamperedAudit, CatchesSubBaselinePower) {
  run_.result.nodes.at(1).power_mw = cfg_.app.baseline_mw / 2.0;
  EXPECT_TRUE(any_contains(reaudit(), "below the baseline"));
}

TEST_F(TamperedAudit, CatchesWorstPowerMismatch) {
  run_.result.worst_power_mw += 1.0;
  EXPECT_TRUE(any_contains(reaudit(), "lifetime-relevant maximum"));
}

TEST_F(TamperedAudit, CatchesTxConservationBreak) {
  run_.result.nodes.at(0).mac.sent += 1;
  EXPECT_TRUE(any_contains(reaudit(), "tx conservation"));
}

TEST_F(TamperedAudit, CatchesCounterDrift) {
  // A counter that stops mirroring the SimResult is an observability
  // regression even if the SimResult itself is right.
  run_.metrics.counters["net.medium.transmissions"] += 3;
  EXPECT_TRUE(any_contains(reaudit(), "net.medium.transmissions"));
}

TEST_F(TamperedAudit, CatchesTimeTravelInTrace) {
  ASSERT_GE(run_.trace.size(), 2u);
  std::swap(run_.trace.front().t_s, run_.trace.back().t_s);
  EXPECT_TRUE(any_contains(reaudit(), "time went backwards"));
}

TEST_F(TamperedAudit, CatchesDroppedTraceEvents) {
  const auto is_tx = [](const obs::TraceEvent& e) {
    return e.kind == obs::TraceKind::kTx;
  };
  const auto it =
      std::find_if(run_.trace.begin(), run_.trace.end(), is_tx);
  ASSERT_NE(it, run_.trace.end());
  run_.trace.erase(it);
  EXPECT_TRUE(any_contains(reaudit(), "trace tx count"));
}

TEST_F(TamperedAudit, CatchesKernelSummaryDrift) {
  run_.result.events += 7;
  EXPECT_TRUE(any_contains(reaudit(), "events disagree"));
}

}  // namespace
}  // namespace hi::check
