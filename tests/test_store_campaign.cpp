// End-to-end crash-safety of the hi_campaign CLI: SIGKILL mid-grid,
// then --resume must skip every checkpointed cell (zero re-simulation)
// and leave a store the corruption auditor calls byte-valid.
//
// The campaign binary's path arrives via the HI_CAMPAIGN_BIN compile
// definition (tests/CMakeLists.txt); the child's stdout is captured to a
// file so the JSON report can be asserted on.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "store/store.hpp"

namespace {

using namespace hi;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

std::size_t count_occurrences(const std::string& hay, const std::string& pin) {
  std::size_t n = 0;
  for (std::size_t at = hay.find(pin); at != std::string::npos;
       at = hay.find(pin, at + pin.size())) {
    ++n;
  }
  return n;
}

/// fork/exec the campaign binary with stdout redirected to `out_path`.
/// Returns the child pid (the caller kills or waits).
pid_t spawn_campaign(const std::vector<std::string>& args,
                     const std::string& out_path) {
  std::vector<std::string> argv_s;
  argv_s.emplace_back(HI_CAMPAIGN_BIN);
  argv_s.insert(argv_s.end(), args.begin(), args.end());
  std::vector<char*> argv;
  argv.reserve(argv_s.size() + 1);
  for (std::string& s : argv_s) {
    argv.push_back(s.data());
  }
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid == 0) {
    const int fd =
        ::open(out_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      ::dup2(fd, STDOUT_FILENO);
      ::close(fd);
    }
    ::execv(HI_CAMPAIGN_BIN, argv.data());
    _exit(127);  // exec failed
  }
  return pid;
}

int wait_exit(pid_t pid) {
  int status = 0;
  ::waitpid(pid, &status, 0);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -WTERMSIG(status);
}

/// Completed-cell count of the store right now, 0 if unreadable (the
/// child may not have created the file yet).
std::size_t cells_now(const std::string& store_path) {
  try {
    store::StoreOptions opt;
    opt.read_only = true;
    const store::EvalStore st(store_path, opt);
    return st.cell_count();
  } catch (const Error&) {
    return 0;
  }
}

const std::vector<std::string> kGrid = {"--gen-seed", "5", "--pdr-min",
                                        "0.5,0.7,0.9", "--json"};

TEST(CampaignResume, FullRunThenResumeSkipsEverythingWithZeroSims) {
  const std::string store_path = "campaign_full.store";
  const std::string out = "campaign_full.json";
  std::remove(store_path.c_str());

  std::vector<std::string> args = {"--store", store_path};
  args.insert(args.end(), kGrid.begin(), kGrid.end());
  ASSERT_EQ(wait_exit(spawn_campaign(args, out)), 0);
  const std::string first = read_file(out);
  EXPECT_EQ(count_occurrences(first, "\"skipped\": true"), 0u);

  args.push_back("--resume");
  ASSERT_EQ(wait_exit(spawn_campaign(args, out)), 0);
  const std::string resumed = read_file(out);
  EXPECT_EQ(count_occurrences(resumed, "\"skipped\": true"), 3u);
  EXPECT_NE(resumed.find("\"fresh_simulations\": 0"), std::string::npos)
      << resumed;
  EXPECT_TRUE(store::EvalStore::audit(store_path).clean());
  std::remove(store_path.c_str());
  std::remove(out.c_str());
}

TEST(CampaignResume, SigkillMidGridThenResumeFinishesCleanly) {
  const std::string store_path = "campaign_kill.store";
  const std::string out = "campaign_kill.json";
  std::remove(store_path.c_str());

  // The delay widens the window between cells so the kill reliably
  // lands mid-grid (after >= 1 checkpoint, before the last).
  std::vector<std::string> args = {"--store", store_path, "--cell-delay-ms",
                                   "10000"};
  args.insert(args.end(), kGrid.begin(), kGrid.end());
  const pid_t pid = spawn_campaign(args, out);
  ASSERT_GT(pid, 0);

  std::size_t checkpointed = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (std::chrono::steady_clock::now() < deadline) {
    checkpointed = cells_now(store_path);
    if (checkpointed >= 1) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ::kill(pid, SIGKILL);
  EXPECT_EQ(wait_exit(pid), -SIGKILL);
  ASSERT_GE(checkpointed, 1u) << "child never checkpointed a cell";
  ASSERT_LT(checkpointed, 3u) << "child finished before the kill";

  // The checkpoint fsync ordering guarantees the completed cells — and
  // every evaluation they depend on — survived the SIGKILL.
  EXPECT_GE(cells_now(store_path), checkpointed);

  // Resume: checkpointed cells are skipped outright (zero
  // re-simulation), the interrupted cell replays from the store, and
  // the repaired log audits byte-valid.
  std::vector<std::string> resume_args = {"--store", store_path, "--resume"};
  resume_args.insert(resume_args.end(), kGrid.begin(), kGrid.end());
  ASSERT_EQ(wait_exit(spawn_campaign(resume_args, out)), 0);
  const std::string resumed = read_file(out);
  EXPECT_GE(count_occurrences(resumed, "\"skipped\": true"), checkpointed)
      << resumed;
  EXPECT_EQ(count_occurrences(resumed, "\"scenario\""), 3u) << resumed;
  EXPECT_TRUE(store::EvalStore::audit(store_path).clean());

  // A second resume is a pure no-op: everything checkpointed, nothing
  // simulated, nothing appended.
  ASSERT_EQ(wait_exit(spawn_campaign(resume_args, out)), 0);
  const std::string again = read_file(out);
  EXPECT_EQ(count_occurrences(again, "\"skipped\": true"), 3u);
  EXPECT_NE(again.find("\"fresh_simulations\": 0"), std::string::npos);
  std::remove(store_path.c_str());
  std::remove(out.c_str());
}

}  // namespace
