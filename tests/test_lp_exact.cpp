// Exactness property for the simplex: on random 2-variable LPs the
// optimum must equal the best vertex found by brute-force enumeration of
// all constraint-pair intersections (which is exhaustive in 2-D).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "lp/simplex.hpp"

namespace hi::lp {
namespace {

struct Line {
  // ax + by <= c
  double a, b, c;
};

struct Case {
  std::uint64_t seed;
};

class TwoVarExact : public ::testing::TestWithParam<Case> {};

TEST_P(TwoVarExact, MatchesVertexEnumeration) {
  Rng rng(GetParam().seed);
  const double cx = rng.uniform(-2.0, 2.0);
  const double cy = rng.uniform(-2.0, 2.0);
  const double ux = rng.uniform(1.0, 5.0);
  const double uy = rng.uniform(1.0, 5.0);
  const int m = 2 + static_cast<int>(rng.uniform_index(4));

  // Box bounds become lines too, so the vertex enumeration is complete.
  std::vector<Line> lines = {
      {-1.0, 0.0, 0.0},  // x >= 0
      {0.0, -1.0, 0.0},  // y >= 0
      {1.0, 0.0, ux},    // x <= ux
      {0.0, 1.0, uy},    // y <= uy
  };
  Problem p;
  const int x = p.add_variable(0.0, ux, cx);
  const int y = p.add_variable(0.0, uy, cy);
  p.set_objective(Objective::kMaximize);
  for (int r = 0; r < m; ++r) {
    const Line l{rng.uniform(-1.0, 2.0), rng.uniform(-1.0, 2.0),
                 rng.uniform(0.5, 6.0)};
    lines.push_back(l);
    p.add_constraint({{x, l.a}, {y, l.b}}, Sense::kLessEqual, l.c);
  }

  // Brute force: intersect every pair of lines, keep feasible vertices.
  const auto feasible = [&](double vx, double vy) {
    for (const Line& l : lines) {
      if (l.a * vx + l.b * vy > l.c + 1e-7) return false;
    }
    return true;
  };
  bool any = false;
  double best = 0.0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    for (std::size_t j = i + 1; j < lines.size(); ++j) {
      const double det = lines[i].a * lines[j].b - lines[j].a * lines[i].b;
      if (std::fabs(det) < 1e-9) continue;
      const double vx =
          (lines[i].c * lines[j].b - lines[j].c * lines[i].b) / det;
      const double vy =
          (lines[i].a * lines[j].c - lines[j].a * lines[i].c) / det;
      if (!feasible(vx, vy)) continue;
      const double obj = cx * vx + cy * vy;
      if (!any || obj > best) {
        any = true;
        best = obj;
      }
    }
  }

  const Solution s = solve_simplex(p);
  if (!any) {
    // The box corner (0,0) is always a candidate vertex, so a feasible
    // LP always yields at least one vertex; no vertex means infeasible.
    EXPECT_EQ(s.status, Status::kInfeasible);
    return;
  }
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, best, 1e-6) << "seed " << GetParam().seed;
  EXPECT_TRUE(p.is_feasible(s.x, 1e-6));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwoVarExact,
                         ::testing::Values(Case{201}, Case{202}, Case{203},
                                           Case{204}, Case{205}, Case{206},
                                           Case{207}, Case{208}, Case{209},
                                           Case{210}, Case{211}, Case{212},
                                           Case{213}, Case{214}, Case{215},
                                           Case{216}, Case{217}, Case{218},
                                           Case{219}, Case{220}));

}  // namespace
}  // namespace hi::lp
