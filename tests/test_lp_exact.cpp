// Exactness properties for the simplex, differentially tested against
// the hi::check rational vertex-enumeration oracle: on random bounded
// LPs in up to 4 variables the solver must agree with the oracle on
// status and objective (the oracle is exact — every vertex is solved in
// rational arithmetic, so there is no reference-implementation noise).
// Also pins the Bland anti-cycling fallback: with the Dantzig stall
// budget forced to one pivot, a degenerate LP must still reach the exact
// optimum, report its Bland pivots, and surface the work through the
// milp.lp_pivots counter.
#include <gtest/gtest.h>

#include <cmath>

#include "check/lp_oracle.hpp"
#include "check/properties.hpp"
#include "common/rng.hpp"
#include "lp/simplex.hpp"
#include "milp/solver.hpp"
#include "obs/metrics.hpp"

namespace hi::lp {
namespace {

struct Case {
  std::uint64_t seed;
};

class RandomLpExact : public ::testing::TestWithParam<Case> {};

TEST_P(RandomLpExact, MatchesRationalOracle) {
  Rng rng(GetParam().seed);
  for (int i = 0; i < 8; ++i) {
    const Problem p = check::random_bounded_lp(rng, /*max_vars=*/4);
    const std::vector<std::string> violations =
        check::check_lp_against_oracle(p);
    for (const std::string& v : violations) {
      ADD_FAILURE() << "seed " << GetParam().seed << " instance " << i << ": "
                    << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLpExact,
                         ::testing::Values(Case{201}, Case{202}, Case{203},
                                           Case{204}, Case{205}, Case{206},
                                           Case{207}, Case{208}, Case{209},
                                           Case{210}, Case{211}, Case{212},
                                           Case{213}, Case{214}, Case{215},
                                           Case{216}, Case{217}, Case{218},
                                           Case{219}, Case{220}));

TEST(LpExact, KnownThreeVarOptimum) {
  // max x + 2y + 3z  s.t.  x+y+z <= 2, y+z <= 1.5, bounds [0,1]^3.
  // Optimum: z=1, y=0.5, x=0.5 -> 5/2 + 3 = 4.5.
  Problem p;
  const int x = p.add_variable(0.0, 1.0, 1.0);
  const int y = p.add_variable(0.0, 1.0, 2.0);
  const int z = p.add_variable(0.0, 1.0, 3.0);
  p.set_objective(Objective::kMaximize);
  p.add_constraint({{x, 1.0}, {y, 1.0}, {z, 1.0}}, Sense::kLessEqual, 2.0);
  p.add_constraint({{y, 1.0}, {z, 1.0}}, Sense::kLessEqual, 1.5);

  const check::LpOracleResult oracle = check::solve_lp_exact(p);
  ASSERT_EQ(oracle.status, check::OracleStatus::kOptimal);
  EXPECT_EQ(oracle.objective, check::Rational(9, 2));

  const Solution s = solve_simplex(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 4.5, 1e-9);
}

/// A degenerate LP: the optimal vertex of the scaled assignment-style
/// polytope has many more active constraints than dimensions (every row
/// and every upper bound is tight at the optimum), so several bases
/// describe the same point and a stalled Dantzig rule must hand over to
/// Bland without cycling.
Problem degenerate_lp() {
  Problem p;
  const int a = p.add_variable(0.0, 1.0, 1.0);
  const int b = p.add_variable(0.0, 1.0, 1.0);
  const int c = p.add_variable(0.0, 1.0, 1.0);
  const int d = p.add_variable(0.0, 1.0, 1.0);
  p.set_objective(Objective::kMaximize);
  p.add_constraint({{a, 1.0}, {b, 1.0}}, Sense::kLessEqual, 2.0);
  p.add_constraint({{c, 1.0}, {d, 1.0}}, Sense::kLessEqual, 2.0);
  p.add_constraint({{a, 1.0}, {c, 1.0}}, Sense::kLessEqual, 2.0);
  p.add_constraint({{b, 1.0}, {d, 1.0}}, Sense::kLessEqual, 2.0);
  p.add_constraint({{a, 1.0}, {b, 1.0}, {c, 1.0}, {d, 1.0}},
                   Sense::kLessEqual, 4.0);
  return p;
}

TEST(LpExact, BlandFallbackReachesExactOptimum) {
  const Problem p = degenerate_lp();
  const check::LpOracleResult oracle = check::solve_lp_exact(p);
  ASSERT_EQ(oracle.status, check::OracleStatus::kOptimal);
  EXPECT_EQ(oracle.objective, check::Rational(4));

  // Default budget: Dantzig alone finishes, no fallback pivots.
  const Solution dantzig = solve_simplex(p);
  ASSERT_EQ(dantzig.status, Status::kOptimal);
  EXPECT_EQ(dantzig.bland_pivots, 0);
  EXPECT_NEAR(dantzig.objective, 4.0, 1e-9);

  // One-pivot budget: the rest of the path runs under Bland's rule and
  // must reach the same exact optimum (anti-cycling at work).
  SimplexOptions opt;
  opt.dantzig_stall_budget = 1;
  const Solution bland = solve_simplex(p, opt);
  ASSERT_EQ(bland.status, Status::kOptimal);
  EXPECT_GT(bland.bland_pivots, 0);
  EXPECT_LE(bland.bland_pivots, bland.iterations);
  EXPECT_NEAR(bland.objective, 4.0, 1e-9);
}

TEST(LpExact, BlandPivotsSurfaceInMilpCounter) {
  // The same degenerate LP wrapped as a continuous-only MILP: the
  // milp.lp_pivots counter must record exactly the simplex pivots of the
  // single (root) solve, Bland pivots included.
  milp::Model m;
  const Problem p = degenerate_lp();
  for (int v = 0; v < p.num_variables(); ++v) {
    const Variable& var = p.variable(v);
    m.add_continuous(var.lower, var.upper, var.cost);
  }
  m.set_objective(p.objective());
  for (int r = 0; r < p.num_constraints(); ++r) {
    const Constraint& row = p.constraint(r);
    m.add_constraint(row.terms, row.sense, row.rhs);
  }

  obs::MetricsRegistry registry;
  milp::Options opt;
  opt.metrics = &registry;
  opt.lp.dantzig_stall_budget = 1;
  const milp::Solution sol = milp::solve(m, opt);
  ASSERT_EQ(sol.status, Status::kOptimal);
  EXPECT_NEAR(sol.objective, 4.0, 1e-9);
  const obs::Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter("milp.solves"), 1u);
  EXPECT_EQ(snap.counter("milp.lp_pivots"),
            static_cast<std::uint64_t>(sol.lp_iterations));
  EXPECT_GT(sol.lp_iterations, 0);
}

}  // namespace
}  // namespace hi::lp
