// Golden bit-exact crowd fingerprints (DESIGN.md §15).
//
// Two contracts are pinned here.  First, the M=1 collapse: a crowd of
// one body must reproduce the *existing* single-body golden rows (see
// test_sim_golden.cpp) bit for bit — same doubles, same event counts —
// because body 0's RNG lane IS params.seed, the crowd channel
// degenerates to the single BodyChannel, and the node stacks come from
// the same net::detail code.  Second, new multi-body rows pin the
// coexistence machinery itself for M ∈ {2, 4, 8}: batched cross-body
// fades, SINR under foreign interference, and the net-id decode filter.
// As with the single-body rows: if a future change breaks a row on
// purpose, regenerate (DISABLED_RecordMultiBodyRows prints paste-ready
// rows) and say so in the PR — never loosen the comparison to
// tolerances.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "crowd/crowd.hpp"
#include "model/design_space.hpp"
#include "net/network.hpp"

namespace hi {
namespace {

std::uint64_t bits(double d) {
  std::uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

// The five single-body golden rows, verbatim from test_sim_golden.cpp.
struct SingleRow {
  const char* name;
  std::vector<int> locs;
  int tx_level;
  model::MacProtocol mac;
  model::RoutingProtocol routing;
  std::uint64_t seed;
  std::uint64_t pdr, worst_power_mw, mean_power_mw, nlt_s;
  std::uint64_t events;
  std::uint64_t avg_pdr, avg_worst_power_mw;
  std::uint64_t avg_events;
};

const std::vector<SingleRow>& single_rows() {
  using model::MacProtocol;
  using model::RoutingProtocol;
  static const std::vector<SingleRow> rows = {
      {"star_csma_n4", {0, 1, 3, 5}, 1, MacProtocol::kCsma,
       RoutingProtocol::kStar, 2017,
       0x3fea433788cde234ull, 0x3fe8edc28f5c1f66ull, 0x3fe4f23d70a3cfaeull,
       0x4147cc5cfcfbc968ull, 5406ull,
       0x3fe6c8b8362e0d8cull, 0x3fe7ec0c49ba550aull, 9944ull},
      {"star_tdma_n4", {0, 1, 3, 5}, 2, MacProtocol::kTdma,
       RoutingProtocol::kStar, 2017,
       0x3feedbefbefbefbfull, 0x3fec14083126df4bull, 0x3fea475c28f5b943ull,
       0x414520fdae917992ull, 6079ull,
       0x3fec7fea53fa94feull, 0x3feb619db22d04b4ull, 11486ull},
      {"mesh_csma_n5", {0, 1, 3, 5, 7}, 2, MacProtocol::kCsma,
       RoutingProtocol::kMesh, 99,
       0x3fed63dbb01d0cb5ull, 0x3ff8d9fbe76c83f2ull, 0x3ff71e5460aa5e2bull,
       0x4137df4d16c558c4ull, 21039ull,
       0x3fedbb190e296550ull, 0x3ff8107ae147a740ull, 42858ull},
      {"mesh_tdma_n5", {0, 1, 3, 5, 7}, 0, MacProtocol::kTdma,
       RoutingProtocol::kMesh, 7,
       0x3fe9d92566c35bdeull, 0x400216a0c49b9f82ull, 0x3ffcaff06f6939d6ull,
       0x413066227a6e6b30ull, 19174ull,
       0x3feabca421683732ull, 0x40044a810624d63aull, 44193ull},
      {"mesh_tdma_n6", {0, 2, 4, 6, 8, 9}, 2, MacProtocol::kTdma,
       RoutingProtocol::kMesh, 424242,
       0x3ff0000000000000ull, 0x4026b2bffffff211ull, 0x4025278cccccc101ull,
       0x410a230bf8e83d3full, 107776ull,
       0x3feff8d0649a7f8dull, 0x4027236f9db21e70ull, 220222ull},
  };
  return rows;
}

model::NetworkConfig config_of(const SingleRow& row) {
  const model::Scenario scenario;
  return scenario.make_config(model::Topology::from_locations(row.locs),
                              row.tx_level, row.mac, row.routing);
}

TEST(CrowdGolden, M1CollapsesToSingleBodyGoldens) {
  for (const SingleRow& row : single_rows()) {
    SCOPED_TRACE(row.name);
    const model::NetworkConfig cfg = config_of(row);
    model::CrowdScenario sc;
    sc.cfg = cfg;
    sc.bodies = 1;

    net::SimParams sp;
    sp.duration_s = 20.0;
    sp.seed = row.seed;

    // Single run: the crowd summary must match the pinned single-body
    // row exactly, and per_body[0] must match a live net::simulate over
    // the same (degenerate) channel seed field by field.
    const auto channel =
        crowd::make_crowd_channel_for(sc, row.seed ^ 0xABCDEF);
    const crowd::CrowdResult cr = crowd::simulate_crowd(sc, *channel, sp);
    EXPECT_EQ(bits(cr.summary.pdr), row.pdr);
    EXPECT_EQ(bits(cr.summary.worst_power_mw), row.worst_power_mw);
    EXPECT_EQ(bits(cr.summary.mean_power_mw), row.mean_power_mw);
    EXPECT_EQ(bits(cr.summary.nlt_s), row.nlt_s);
    EXPECT_EQ(cr.summary.events, row.events);
    EXPECT_TRUE(cr.summary.crowd.present);
    EXPECT_EQ(cr.summary.crowd.bodies, 1);
    EXPECT_EQ(bits(cr.summary.crowd.min_body_pdr), row.pdr);
    // One body: no cross-body links exist, so no coexistence traffic.
    EXPECT_EQ(cr.summary.crowd.cross_offered, 0u);
    EXPECT_EQ(cr.summary.crowd.foreign_heard, 0u);
    EXPECT_EQ(cr.summary.crowd.foreign_decoded, 0u);

    const net::SimResult one = net::simulate(
        cfg, *net::default_channel_factory()(row.seed ^ 0xABCDEF), sp);
    ASSERT_EQ(cr.per_body.size(), 1u);
    const net::SimResult& b0 = cr.per_body[0];
    EXPECT_EQ(bits(b0.pdr), bits(one.pdr));
    EXPECT_EQ(bits(b0.worst_power_mw), bits(one.worst_power_mw));
    EXPECT_EQ(bits(b0.mean_power_mw), bits(one.mean_power_mw));
    EXPECT_EQ(bits(b0.nlt_s), bits(one.nlt_s));
    ASSERT_EQ(b0.nodes.size(), one.nodes.size());
    for (std::size_t i = 0; i < one.nodes.size(); ++i) {
      EXPECT_EQ(b0.nodes[i].location, one.nodes[i].location);
      EXPECT_EQ(bits(b0.nodes[i].pdr), bits(one.nodes[i].pdr));
      EXPECT_EQ(bits(b0.nodes[i].power_mw), bits(one.nodes[i].power_mw));
      EXPECT_EQ(b0.nodes[i].app_sent, one.nodes[i].app_sent);
    }

    // Seed-averaged: same fork labels, same channel-seed whitening.
    const crowd::CrowdResult cavg = crowd::simulate_crowd_averaged(sc, sp, 2);
    EXPECT_EQ(bits(cavg.summary.pdr), row.avg_pdr);
    EXPECT_EQ(bits(cavg.summary.worst_power_mw), row.avg_worst_power_mw);
    EXPECT_EQ(cavg.summary.events, row.avg_events);
  }
}

// Multi-body golden rows: star_csma_n4 replicated M times on a dense
// 0.5 m grid (close enough that cross-body transmissions land well
// above sensitivity), Tsim 20 s, seed 2017, single run.
struct CrowdRow {
  int bodies;
  std::uint64_t pdr, min_body_pdr, worst_power_mw, mean_power_mw, nlt_s;
  std::uint64_t events;
  std::uint64_t cross_offered, foreign_heard, foreign_decoded;
};

model::CrowdScenario multi_body_scenario(int bodies) {
  model::CrowdScenario sc;
  sc.cfg = config_of(single_rows()[0]);  // star_csma_n4
  sc.bodies = bodies;
  sc.spacing_m = 0.5;
  return sc;
}

net::SimParams multi_body_params() {
  net::SimParams sp;
  sp.duration_s = 20.0;
  sp.seed = 2017;
  return sp;
}

const std::vector<CrowdRow>& crowd_rows() {
  static const std::vector<CrowdRow> rows = {
      {2,
       0x3fe945ac056b015bull, 0x3fe8482082082082ull, 0x3ff81cf9db22c769ull,
       0x3ff5dff7ced90dd6ull, 0x41389a6bb4eabb20ull,
       19055ull, 8492ull, 8492ull, 8492ull},
      {4,
       0x3fe813fa94fea53full, 0x3fe6bb6db6db6db6ull, 0x40074753e1a12e1bull,
       0x40062081921391f0ull, 0x41297c39d5f15ab4ull,
       71318ull, 50208ull, 50208ull, 49553ull},
      {8,
       0x3fe4616b015ac057ull, 0x3fe2c9d1f2747c9dull, 0x40151d3288a6b08dull,
       0x4014953f372f2552ull, 0x411c1913a9293353ull,
       269015ull, 226912ull, 226912ull, 201186ull},
  };
  return rows;
}

TEST(CrowdGolden, MultiBodyFingerprints) {
  const net::SimParams sp = multi_body_params();
  for (const CrowdRow& row : crowd_rows()) {
    SCOPED_TRACE(row.bodies);
    const model::CrowdScenario sc = multi_body_scenario(row.bodies);
    const auto channel = crowd::make_crowd_channel_for(sc, sp.seed ^ 0xABCDEF);
    const crowd::CrowdResult cr = crowd::simulate_crowd(sc, *channel, sp);
    EXPECT_EQ(bits(cr.summary.pdr), row.pdr);
    EXPECT_EQ(bits(cr.summary.crowd.min_body_pdr), row.min_body_pdr);
    EXPECT_EQ(bits(cr.summary.worst_power_mw), row.worst_power_mw);
    EXPECT_EQ(bits(cr.summary.mean_power_mw), row.mean_power_mw);
    EXPECT_EQ(bits(cr.summary.nlt_s), row.nlt_s);
    EXPECT_EQ(cr.summary.events, row.events);
    EXPECT_EQ(cr.summary.crowd.cross_offered, row.cross_offered);
    EXPECT_EQ(cr.summary.crowd.foreign_heard, row.foreign_heard);
    EXPECT_EQ(cr.summary.crowd.foreign_decoded, row.foreign_decoded);
    EXPECT_EQ(cr.summary.crowd.bodies, row.bodies);
    ASSERT_EQ(cr.per_body.size(), static_cast<std::size_t>(row.bodies));
  }
}

// Regeneration helper (run with --gtest_also_run_disabled_tests
// --gtest_filter='*RecordMultiBodyRows'): prints crowd_rows() entries
// in paste-ready form.
TEST(CrowdGolden, DISABLED_RecordMultiBodyRows) {
  const net::SimParams sp = multi_body_params();
  for (int bodies : {2, 4, 8}) {
    const model::CrowdScenario sc = multi_body_scenario(bodies);
    const auto channel = crowd::make_crowd_channel_for(sc, sp.seed ^ 0xABCDEF);
    const crowd::CrowdResult cr = crowd::simulate_crowd(sc, *channel, sp);
    std::printf(
        "      {%d,\n"
        "       0x%llxull, 0x%llxull, 0x%llxull, 0x%llxull, 0x%llxull,\n"
        "       %lluull, %lluull, %lluull, %lluull},\n",
        bodies, static_cast<unsigned long long>(bits(cr.summary.pdr)),
        static_cast<unsigned long long>(bits(cr.summary.crowd.min_body_pdr)),
        static_cast<unsigned long long>(bits(cr.summary.worst_power_mw)),
        static_cast<unsigned long long>(bits(cr.summary.mean_power_mw)),
        static_cast<unsigned long long>(bits(cr.summary.nlt_s)),
        static_cast<unsigned long long>(cr.summary.events),
        static_cast<unsigned long long>(cr.summary.crowd.cross_offered),
        static_cast<unsigned long long>(cr.summary.crowd.foreign_heard),
        static_cast<unsigned long long>(cr.summary.crowd.foreign_decoded));
  }
}

}  // namespace
}  // namespace hi
