// Unit tests for the hi::exec execution substrate: ThreadPool semantics
// (completion-order independence, exception propagation, graceful
// shutdown with queued work) and BatchEvaluator's in-flight dedup.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/assert.hpp"
#include "exec/batch_evaluator.hpp"
#include "exec/thread_pool.hpp"
#include "model/design_space.hpp"

namespace hi::exec {
namespace {

TEST(ThreadPool, RejectsANonPositiveWorkerCount) {
  EXPECT_THROW(ThreadPool{0}, ModelError);
  EXPECT_THROW(ThreadPool{-3}, ModelError);
}

TEST(ThreadPool, ReportsItsSize) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3);
}

TEST(ThreadPool, ResultsAreIndependentOfCompletionOrder) {
  // Early-submitted tasks sleep longest, so later tasks routinely finish
  // first; each future must still carry its own task's result.
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  constexpr int kTasks = 64;
  for (int i = 0; i < kTasks; ++i) {
    futures.push_back(pool.submit([i] {
      std::this_thread::sleep_for(std::chrono::microseconds((kTasks - i) * 20));
      return i * i;
    }));
  }
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, PropagatesTaskExceptionsToTheCaller) {
  ThreadPool pool(2);
  auto ok = pool.submit([] { return 7; });
  auto bad = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The pool survives a throwing task.
  EXPECT_EQ(pool.submit([] { return 8; }).get(), 8);
}

TEST(ThreadPool, ShutdownDrainsQueuedWork) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      (void)pool.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ran.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }  // graceful destructor: every already-queued task still runs
  EXPECT_EQ(ran.load(), 100);
}

// ---------------------------------------------------------------------------
// BatchEvaluator

/// Settings whose channel factory counts invocations: with runs == 1,
/// one factory call == one simulation actually executed (as opposed to
/// the evaluator's simulations() counter, which counts *requests*).
dse::EvaluatorSettings counting_settings(
    std::shared_ptr<std::atomic<int>> channels) {
  dse::EvaluatorSettings s;
  s.sim.duration_s = 5.0;
  s.sim.seed = 99;
  s.runs = 1;
  net::ChannelFactory inner = net::default_channel_factory();
  s.channel = [channels, inner](std::uint64_t seed) {
    channels->fetch_add(1, std::memory_order_relaxed);
    return inner(seed);
  };
  return s;
}

model::NetworkConfig exec_config(int lvl = 1) {
  model::Scenario sc;
  return sc.make_config(model::Topology::from_locations({0, 1, 3, 5}), lvl,
                        model::MacProtocol::kCsma,
                        model::RoutingProtocol::kStar);
}

TEST(BatchEvaluator, RejectsNegativeThreads) {
  auto channels = std::make_shared<std::atomic<int>>(0);
  dse::Evaluator eval(counting_settings(channels));
  EXPECT_THROW((BatchEvaluator{eval, -1}), ModelError);
}

TEST(BatchEvaluator, InFlightDedupConcurrentRequestsForOneKey) {
  // N concurrent batch calls all asking for the same design point must
  // trigger exactly one simulation; everyone else rides the shared
  // future / the cache.
  auto channels = std::make_shared<std::atomic<int>>(0);
  dse::Evaluator eval(counting_settings(channels));
  BatchEvaluator batch(eval, 4);
  const std::vector<model::NetworkConfig> one{exec_config()};

  constexpr int kCallers = 8;
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int i = 0; i < kCallers; ++i) {
    callers.emplace_back([&batch, &one] { (void)batch.evaluate(one); });
  }
  for (std::thread& t : callers) {
    t.join();
  }
  EXPECT_EQ(channels->load(), 1);  // exactly one simulation ran
  EXPECT_EQ(eval.simulations(), 1u);
  EXPECT_EQ(eval.cache_hits(), static_cast<std::uint64_t>(kCallers - 1));
}

TEST(BatchEvaluator, DuplicatesWithinABatchSimulateOnce) {
  auto channels = std::make_shared<std::atomic<int>>(0);
  dse::Evaluator eval(counting_settings(channels));
  BatchEvaluator batch(eval, 4);
  const std::vector<model::NetworkConfig> cfgs{
      exec_config(0), exec_config(1), exec_config(0), exec_config(0),
      exec_config(1)};
  const auto evals = batch.evaluate(cfgs);
  ASSERT_EQ(evals.size(), cfgs.size());
  EXPECT_EQ(channels->load(), 2);  // two distinct design points
  // Counters replay the serial bookkeeping: 2 misses + 3 in-batch hits.
  EXPECT_EQ(eval.simulations(), 2u);
  EXPECT_EQ(eval.cache_hits(), 3u);
  // Duplicate entries alias the same cached result.
  EXPECT_EQ(evals[0], evals[2]);
  EXPECT_EQ(evals[0], evals[3]);
  EXPECT_EQ(evals[1], evals[4]);
}

TEST(BatchEvaluator, ParallelResultsMatchSerialBitForBit) {
  auto ch_a = std::make_shared<std::atomic<int>>(0);
  auto ch_b = std::make_shared<std::atomic<int>>(0);
  dse::Evaluator serial(counting_settings(ch_a));
  dse::Evaluator parallel(counting_settings(ch_b));
  BatchEvaluator batch(parallel, 3);
  std::vector<model::NetworkConfig> cfgs;
  for (int lvl = 0; lvl < 3; ++lvl) {
    cfgs.push_back(exec_config(lvl));
  }
  const auto par = batch.evaluate(cfgs);
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    const dse::Evaluation& ser = serial.evaluate(cfgs[i]);
    EXPECT_EQ(ser.pdr, par[i]->pdr);
    EXPECT_EQ(ser.power_mw, par[i]->power_mw);
    EXPECT_EQ(ser.nlt_s, par[i]->nlt_s);
  }
  EXPECT_EQ(serial.simulations(), parallel.simulations());
  EXPECT_EQ(serial.cache_hits(), parallel.cache_hits());
}

TEST(BatchEvaluator, PropagatesSimulationErrorsLikeSerial) {
  // A star config whose coordinator carries no node: simulate() rejects
  // it at run time.  The batch path must surface the same ModelError.
  auto channels = std::make_shared<std::atomic<int>>(0);
  dse::Evaluator eval(counting_settings(channels));
  BatchEvaluator batch(eval, 2);
  model::NetworkConfig bad = exec_config();
  bad.topology = model::Topology::from_locations({1, 3, 5, 6});  // no loc 0
  EXPECT_THROW(batch.evaluate({bad}), ModelError);
  // The failure is not cached: a retry fails identically (serial parity).
  EXPECT_THROW(batch.evaluate({bad}), ModelError);
  EXPECT_FALSE(eval.cached(bad));
}

TEST(BatchEvaluator, SerialFallbackUsesNoPool) {
  auto channels = std::make_shared<std::atomic<int>>(0);
  dse::Evaluator eval(counting_settings(channels));
  BatchEvaluator batch(eval, 0);
  EXPECT_EQ(batch.threads(), 0);
  const auto evals = batch.evaluate({exec_config(), exec_config()});
  ASSERT_EQ(evals.size(), 2u);
  EXPECT_EQ(evals[0], evals[1]);
  EXPECT_EQ(eval.simulations(), 1u);
  EXPECT_EQ(eval.cache_hits(), 1u);
}

}  // namespace
}  // namespace hi::exec
