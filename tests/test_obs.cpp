// Tests for the hi::obs observability layer (src/obs): registry
// concurrency under hi::exec workers, sink round-trips, the zero-sink
// fast path, and the end-to-end contract that explorer snapshots mirror
// the legacy counters bit-for-bit at any thread count.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "channel/channel.hpp"
#include "dse/explorer.hpp"
#include "exec/thread_pool.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"

namespace hi::obs {
namespace {

// ---- registry ----------------------------------------------------------

TEST(Metrics, CountersAreExactUnderConcurrentWorkers) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 20'000;
  {
    exec::ThreadPool pool(kThreads);
    std::vector<std::future<void>> done;
    for (int t = 0; t < kThreads; ++t) {
      done.push_back(pool.submit([&reg] {
        // Lookup + cached-pointer pattern, as hot paths use it.
        Counter& c = reg.counter("test.adds");
        Gauge& g = reg.gauge("test.hwm");
        Histogram& h = reg.histogram("test.obs");
        for (int i = 0; i < kAddsPerThread; ++i) {
          c.add(1);
          g.update_max(static_cast<double>(i));
          h.observe(1.0);
        }
      }));
    }
    for (auto& f : done) f.get();
  }
  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("test.adds"),
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
  EXPECT_DOUBLE_EQ(snap.gauge("test.hwm"), kAddsPerThread - 1.0);
  const HistogramSummary* h = snap.histogram("test.obs");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
  EXPECT_DOUBLE_EQ(h->min, 1.0);
  EXPECT_DOUBLE_EQ(h->max, 1.0);
}

TEST(Metrics, InstrumentReferencesAreStable) {
  MetricsRegistry reg;
  Counter& a = reg.counter("a");
  // Creating many more instruments must not move existing ones.
  for (int i = 0; i < 100; ++i) {
    reg.counter("c" + std::to_string(i)).add(1);
  }
  EXPECT_EQ(&a, &reg.counter("a"));
  a.add(7);
  EXPECT_EQ(reg.snapshot().counter("a"), 7u);
}

TEST(Metrics, HistogramBucketsAndQuantiles) {
  EXPECT_LE(Histogram::bucket_of(1e-9), Histogram::bucket_of(1e-3));
  EXPECT_LE(Histogram::bucket_of(1e-3), Histogram::bucket_of(1.0));
  EXPECT_LE(Histogram::bucket_of(1.0), Histogram::bucket_of(1e6));

  Histogram h;
  for (int i = 1; i <= 1000; ++i) {
    h.observe(static_cast<double>(i) / 1000.0);  // uniform on (0, 1]
  }
  const HistogramSummary s = h.summary();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_NEAR(s.mean(), 0.5005, 1e-9);  // mean of 1/1000 .. 1000/1000
  EXPECT_DOUBLE_EQ(s.min, 0.001);
  EXPECT_DOUBLE_EQ(s.max, 1.0);
  // Power-of-two buckets: quantiles are within a factor of 2.
  const double q50 = s.approx_quantile(0.5);
  EXPECT_GE(q50, 0.25);
  EXPECT_LE(q50, 1.0);
}

TEST(Snapshot, DeltaSubtractsCountersAndKeepsGauges) {
  MetricsRegistry reg;
  reg.counter("n").add(10);
  reg.gauge("g").set(3.5);
  reg.histogram("h").observe(1.0);
  const Snapshot base = reg.snapshot();
  reg.counter("n").add(5);
  reg.counter("fresh").add(2);
  reg.gauge("g").set(7.0);
  reg.histogram("h").observe(2.0);
  const Snapshot delta = reg.snapshot().delta_since(base);
  EXPECT_EQ(delta.counter("n"), 5u);
  EXPECT_EQ(delta.counter("fresh"), 2u);
  EXPECT_EQ(delta.counter("absent"), 0u);
  EXPECT_DOUBLE_EQ(delta.gauge("g"), 7.0);
  const HistogramSummary* h = delta.histogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 1u);
  EXPECT_DOUBLE_EQ(h->sum, 2.0);
}

TEST(Snapshot, WriteJsonIsOneObjectWithAllSections) {
  MetricsRegistry reg;
  reg.counter("dse.simulations").add(42);
  reg.gauge("des.heap_highwater").set(17.0);
  reg.histogram("milp.solve_s").observe(0.5);
  std::ostringstream oss;
  reg.snapshot().write_json(oss);
  const std::string j = oss.str();
  EXPECT_EQ(j.front(), '{');
  EXPECT_EQ(j.back(), '}');
  EXPECT_NE(j.find("\"dse.simulations\": 42"), std::string::npos);
  EXPECT_NE(j.find("\"des.heap_highwater\""), std::string::npos);
  EXPECT_NE(j.find("\"milp.solve_s\""), std::string::npos);
  EXPECT_NE(j.find("\"count\": 1"), std::string::npos);
}

// ---- timer -------------------------------------------------------------

TEST(Timer, ObservesElapsedIntoHistogram) {
  MetricsRegistry reg;
  {
    ScopedTimer t(&reg, "phase_s");
    EXPECT_GE(t.elapsed_s(), 0.0);
  }
  const Snapshot snap = reg.snapshot();
  const HistogramSummary* h = snap.histogram("phase_s");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 1u);
  EXPECT_GE(h->sum, 0.0);
}

TEST(Timer, NullRegistryIsANoOp) {
  ScopedTimer t(nullptr, "never");
  EXPECT_DOUBLE_EQ(t.elapsed_s(), 0.0);  // the clock is not even read
}

// ---- trace sinks -------------------------------------------------------

TraceEvent sample_event() {
  TraceEvent e;
  e.t_s = 1.25;
  e.kind = TraceKind::kTx;
  e.node = 3;
  e.peer = 0;
  e.a = 42;
  e.x = 16.0;
  e.y = 0.002;
  return e;
}

TEST(Trace, JsonlSinkWritesOneObjectPerLine) {
  std::ostringstream oss;
  JsonlTraceSink sink(oss);
  RunTrace trace(&sink);
  ASSERT_TRUE(trace.enabled());
  trace.record(sample_event());
  TraceEvent drop = sample_event();
  drop.kind = TraceKind::kDropBuffer;
  trace.record(drop);
  const std::string out = oss.str();
  std::size_t lines = 0;
  for (char c : out) lines += c == '\n';
  EXPECT_EQ(lines, 2u);
  EXPECT_NE(out.find("\"kind\": \"tx\""), std::string::npos);
  EXPECT_NE(out.find("\"kind\": \"drop_buffer\""), std::string::npos);
  EXPECT_NE(out.find("\"node\": 3"), std::string::npos);
}

TEST(Trace, CsvSinkWritesHeaderOnceThenRows) {
  std::ostringstream oss;
  CsvTraceSink sink(oss);
  RunTrace trace(&sink);
  trace.record(sample_event());
  trace.record(sample_event());
  const std::string out = oss.str();
  EXPECT_EQ(out.find("t,kind,node,peer,a,x,y\n"), 0u);
  EXPECT_EQ(out.find("t,kind", 1), std::string::npos);  // header once
  std::size_t lines = 0;
  for (char c : out) lines += c == '\n';
  EXPECT_EQ(lines, 3u);  // header + 2 rows
}

TEST(Trace, MemorySinkRoundTripsEvents) {
  MemoryTraceSink sink;
  RunTrace trace(&sink);
  trace.record(sample_event());
  const std::vector<TraceEvent> evs = sink.events();
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_DOUBLE_EQ(evs[0].t_s, 1.25);
  EXPECT_EQ(evs[0].kind, TraceKind::kTx);
  EXPECT_EQ(evs[0].node, 3);
  EXPECT_EQ(evs[0].a, 42);
}

TEST(Trace, NoSinkIsDisabledAndFree) {
  const RunTrace trace;
  EXPECT_FALSE(trace.enabled());
  trace.record(sample_event());  // must be a harmless no-op
}

// ---- one real simulation, observed ------------------------------------

net::SimParams fast_params() {
  net::SimParams sp;
  sp.duration_s = 10.0;
  sp.seed = 11;
  return sp;
}

model::NetworkConfig reference_config() {
  model::Scenario sc;
  return sc.make_config(model::Topology::from_locations({0, 1, 3, 5}), 2,
                        model::MacProtocol::kTdma,
                        model::RoutingProtocol::kStar);
}

TEST(ObsIntegration, SimulationMetricsMirrorSimResult) {
  MetricsRegistry reg;
  net::SimParams sp = fast_params();
  sp.metrics = &reg;
  const auto ch = channel::make_default_body_channel(1);
  const net::SimResult res = net::simulate(reference_config(), *ch, sp);
  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("net.runs"), 1u);
  EXPECT_EQ(snap.counter("des.events"), res.events);
  EXPECT_GE(snap.gauge("des.heap_highwater"), 1.0);
  std::uint64_t app_sent = 0, tx = 0;
  for (const auto& n : res.nodes) {
    app_sent += n.app_sent;
    tx += n.radio.tx_packets;
  }
  EXPECT_EQ(snap.counter("net.app.sent"), app_sent);
  EXPECT_EQ(snap.counter("net.radio.tx_packets"), tx);
  EXPECT_EQ(snap.counter("net.medium.transmissions"),
            res.medium.transmissions);
}

TEST(ObsIntegration, SimulationTraceCarriesTxAndKernelEvents) {
  MemoryTraceSink sink;
  const RunTrace trace(&sink);
  net::SimParams sp = fast_params();
  sp.trace = &trace;
  const auto ch = channel::make_default_body_channel(1);
  const net::SimResult res = net::simulate(reference_config(), *ch, sp);
  const std::vector<TraceEvent> evs = sink.events();
  ASSERT_FALSE(evs.empty());
  std::uint64_t tx_events = 0, kernel_events = 0;
  double prev_t = 0.0;
  for (const TraceEvent& e : evs) {
    EXPECT_GE(e.t_s, 0.0);
    EXPECT_LE(e.t_s, sp.duration_s + 1e-9);
    if (e.kind == TraceKind::kTx) {
      ++tx_events;
      EXPECT_GE(e.t_s, prev_t);  // medium records in simulation order
      prev_t = e.t_s;
    }
    if (e.kind == TraceKind::kKernel) {
      ++kernel_events;
      EXPECT_EQ(static_cast<std::uint64_t>(e.a), res.events);
    }
  }
  // The medium records one kTx per transmission it carries.
  EXPECT_EQ(tx_events, res.medium.transmissions);
  EXPECT_EQ(kernel_events, 1u);
  // Per-node end-of-run summaries are present for every node.
  std::uint64_t energy_events = 0;
  for (const TraceEvent& e : evs) {
    energy_events += e.kind == TraceKind::kNodeEnergy;
  }
  EXPECT_EQ(energy_events, res.nodes.size());
}

}  // namespace
}  // namespace hi::obs

// ---- explorer snapshots (the acceptance contract) ----------------------

namespace hi::dse {
namespace {

EvaluatorSettings fast_settings(int threads = 0) {
  EvaluatorSettings s;
  s.sim.duration_s = 4.0;
  s.sim.seed = 2017;
  s.runs = 1;
  s.threads = threads;
  return s;
}

model::Scenario small_scenario() {
  model::Scenario sc;
  sc.max_nodes = 4;
  return sc;
}

TEST(ObsExplorers, SnapshotSimulationsEqualLegacyFieldAtAnyThreadCount) {
  for (Explorer ex : Explorer::all()) {
    SCOPED_TRACE(ex.name());
    ExplorationOptions opt;
    opt.pdr_min = 0.7;
    if (ex.kind() == ExplorerKind::kAnnealing) {
      opt.budget = 60;
    }
    Evaluator serial(fast_settings(0));
    const ExplorationResult a = ex.run(small_scenario(), serial, opt);
    EXPECT_GT(a.simulations, 0u);
    EXPECT_EQ(a.metrics.counter("dse.simulations"), a.simulations);

    Evaluator parallel(fast_settings(4));
    const ExplorationResult b = ex.run(small_scenario(), parallel, opt);
    EXPECT_EQ(b.metrics.counter("dse.simulations"), b.simulations);
    EXPECT_EQ(a.metrics.counter("dse.simulations"),
              b.metrics.counter("dse.simulations"));
    EXPECT_EQ(a.simulations, b.simulations);
  }
}

TEST(ObsExplorers, CallerRegistryReceivesTheRunAndResultCarriesDelta) {
  obs::MetricsRegistry reg;
  reg.counter("dse.simulations").add(1000);  // pre-existing noise
  const obs::Snapshot before = reg.snapshot();
  Evaluator ev(fast_settings());
  ExplorationOptions opt;
  opt.pdr_min = 0.7;
  opt.metrics = &reg;
  const ExplorationResult res = run_exhaustive(small_scenario(), ev, opt);
  // The result snapshot is a delta: the pre-existing 1000 is excluded.
  EXPECT_EQ(res.metrics.counter("dse.simulations"), res.simulations);
  EXPECT_EQ(reg.snapshot().counter("dse.simulations") -
                before.counter("dse.simulations"),
            res.simulations);
  // The stack's counters flowed into the caller's registry too.
  EXPECT_GT(res.metrics.counter("des.events"), 0u);
  EXPECT_GT(res.metrics.counter("net.runs"), 0u);
  // And the evaluator was restored to its unobserved state.
  EXPECT_EQ(ev.metrics(), nullptr);
}

TEST(ObsExplorers, EvaluatorSettingsRegistryIsUsedWhenOptionsHaveNone) {
  obs::MetricsRegistry reg;
  EvaluatorSettings s = fast_settings();
  s.metrics = &reg;
  Evaluator ev(s);
  ASSERT_EQ(ev.metrics(), &reg);
  ExplorationOptions opt;
  opt.pdr_min = 0.7;
  const ExplorationResult res = run_algorithm1(small_scenario(), ev, opt);
  EXPECT_EQ(res.metrics.counter("dse.simulations"), res.simulations);
  EXPECT_EQ(reg.snapshot().counter("dse.simulations"), res.simulations);
  EXPECT_GT(reg.snapshot().counter("milp.solves"), 0u);
  EXPECT_EQ(ev.metrics(), &reg);  // still attached after the run
}

TEST(ObsExplorers, EvaluatorMirrorsCountersIntoRegistry) {
  obs::MetricsRegistry reg;
  EvaluatorSettings s = fast_settings();
  s.metrics = &reg;
  Evaluator ev(s);
  const model::Scenario sc = small_scenario();
  const auto cfg = sc.make_config(
      model::Topology::from_locations({0, 1, 3, 5}), 2,
      model::MacProtocol::kTdma, model::RoutingProtocol::kStar);
  (void)ev.evaluate(cfg);
  (void)ev.evaluate(cfg);  // cache hit
  const obs::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("dse.simulations"), ev.simulations());
  EXPECT_EQ(snap.counter("dse.cache_hits"), ev.cache_hits());
  EXPECT_EQ(snap.counter("dse.simulations"), 1u);
  EXPECT_EQ(snap.counter("dse.cache_hits"), 1u);
  ASSERT_NE(snap.histogram("dse.simulate_s"), nullptr);
  EXPECT_EQ(snap.histogram("dse.simulate_s")->count, 1u);
}

}  // namespace
}  // namespace hi::dse
