// hi::store serialization: binary codec round-trips, fingerprint
// sensitivity (and insensitivity to cosmetic strings), and the scenario
// JSON interchange form.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "channel/channel.hpp"
#include "check/scenario_gen.hpp"
#include "check/store_props.hpp"
#include "dse/evaluator.hpp"
#include "model/design_space.hpp"
#include "store/serialize.hpp"

namespace {

using namespace hi;
using store::ByteReader;
using store::ByteWriter;
using store::Digest;

/// The scenario examples/custom_scenario.cpp builds — a customized chip,
/// an extra required location, and a tighter node budget — so the JSON
/// round-trip is exercised on a hand-written (not generated) instance.
model::Scenario custom_example_scenario() {
  model::RadioChip thrifty;
  thrifty.name = "hypothetical sub-mW WBAN radio";
  thrifty.fc_hz = 2.4e9;
  thrifty.bit_rate_bps = 250e3;
  thrifty.rx_dbm = -100.0;
  thrifty.rx_mw = 6.0;
  thrifty.tx_levels = {{-16.0, 4.2}, {-8.0, 5.5}, {0.0, 8.9}};

  model::Scenario scenario;
  scenario.chip = thrifty;
  scenario.required_locations = {0, 8};
  scenario.coverage = {
      {{1, 2}, "gait (hip)"},
      {{3, 4}, "gait (foot)"},
      {{5, 6}, "vitals (wrist)"},
  };
  scenario.dependencies = {{7, 8, "head strap needs a neck relay"}};
  scenario.min_nodes = 5;
  scenario.max_nodes = 6;
  scenario.app.throughput_pps = 5.0;
  scenario.tdma_slot_s = 4e-3;
  return scenario;
}

TEST(StoreSerialize, ByteCodecRoundTripsPrimitives) {
  ByteWriter w;
  w.put_u8(0xAB);
  w.put_u16(0xBEEF);
  w.put_u32(0xDEADBEEFu);
  w.put_u64(0x0123456789ABCDEFull);
  w.put_i32(-42);
  w.put_bool(true);
  w.put_f64(-0.0);
  w.put_f64(1.0 / 3.0);
  w.put_string(std::string_view("nul\0safe", 8));  // length-prefixed
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_u8(), 0xAB);
  EXPECT_EQ(r.get_u16(), 0xBEEF);
  EXPECT_EQ(r.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.get_u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.get_i32(), -42);
  EXPECT_TRUE(r.get_bool());
  const double neg_zero = r.get_f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));  // -0.0 survives (bit pattern)
  EXPECT_EQ(r.get_f64(), 1.0 / 3.0);
  EXPECT_EQ(r.get_string(), std::string("nul\0safe", 8));
  EXPECT_TRUE(r.at_end());
}

TEST(StoreSerialize, ByteReaderFailureIsSticky) {
  ByteWriter w;
  w.put_u32(7);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_u64(), 0u);  // read past the end
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.get_u32(), 0u);  // stays failed even though 4 bytes exist
  EXPECT_FALSE(r.at_end());
}

TEST(StoreSerialize, ConfigBinaryRoundTrip) {
  const model::Scenario sc;
  const std::vector<model::NetworkConfig> configs = sc.feasible_configs();
  ASSERT_FALSE(configs.empty());
  for (std::size_t i = 0; i < configs.size(); i += 97) {
    ByteWriter w;
    store::write_config(w, configs[i]);
    ByteReader r(w.bytes());
    model::NetworkConfig back;
    ASSERT_TRUE(store::read_config(r, back));
    EXPECT_TRUE(r.at_end());
    EXPECT_EQ(back, configs[i]);
    EXPECT_EQ(back.design_key(), configs[i].design_key());
  }
}

TEST(StoreSerialize, EvaluationBinaryRoundTripIsBitExact) {
  const check::ScenarioSpec spec = check::make_scenario(3, /*shrink_level=*/2);
  dse::Evaluator eval(spec.settings);
  const std::vector<model::NetworkConfig> configs =
      spec.scenario.feasible_configs();
  ASSERT_FALSE(configs.empty());
  const dse::Evaluation ev = eval.simulate_uncached(configs.front());

  ByteWriter w;
  store::write_evaluation(w, ev);
  ByteReader r(w.bytes());
  dse::Evaluation back;
  ASSERT_TRUE(store::read_evaluation(r, back));
  EXPECT_TRUE(r.at_end());
  // Bit-exactness made testable: re-serializing yields the same bytes.
  ByteWriter w2;
  store::write_evaluation(w2, back);
  EXPECT_EQ(w.bytes(), w2.bytes());
  EXPECT_EQ(back.pdr, ev.pdr);
  EXPECT_EQ(back.power_mw, ev.power_mw);
  EXPECT_EQ(back.nlt_s, ev.nlt_s);
  EXPECT_EQ(back.detail.nodes.size(), ev.detail.nodes.size());
}

TEST(StoreSerialize, SettingsFingerprintCoversEverySimKnob) {
  const dse::EvaluatorSettings base;
  const Digest fp = store::settings_fingerprint(base, "default");
  EXPECT_EQ(fp, store::settings_fingerprint(base, "default"));
  EXPECT_EQ(fp.hex().size(), 64u);

  auto differs = [&](auto mutate) {
    dse::EvaluatorSettings s;
    mutate(s);
    return store::settings_fingerprint(s, "default") != fp;
  };
  EXPECT_TRUE(differs([](auto& s) { s.sim.duration_s += 1.0; }));
  EXPECT_TRUE(differs([](auto& s) { s.sim.seed += 1; }));
  EXPECT_TRUE(differs([](auto& s) { s.sim.channel_seed = 99; }));
  EXPECT_TRUE(differs([](auto& s) { s.sim.capture_db += 0.5; }));
  EXPECT_TRUE(differs([](auto& s) { s.runs += 1; }));
  EXPECT_NE(store::settings_fingerprint(base, "harsh-channel"), fp);
  // Threads and metrics are execution details, not result inputs.
  EXPECT_FALSE(differs([](auto& s) { s.threads = 7; }));
}

TEST(StoreSerialize, ScenarioFingerprintIgnoresCosmeticStrings) {
  model::Scenario a;
  const Digest fp = store::scenario_fingerprint(a);
  model::Scenario renamed;
  renamed.chip.name = "same silicon, new marketing";
  renamed.coverage[0].reason = "different words, same constraint";
  EXPECT_EQ(store::scenario_fingerprint(renamed), fp);

  model::Scenario deeper;
  deeper.max_hops = 3;
  EXPECT_NE(store::scenario_fingerprint(deeper), fp);
  model::Scenario tighter;
  tighter.max_nodes = 5;
  EXPECT_NE(store::scenario_fingerprint(tighter), fp);
}

TEST(StoreSerialize, OptionsFingerprintSeparatesStrategies) {
  const dse::ExplorationOptions opt;
  const Digest alg1 =
      store::options_fingerprint(opt, dse::ExplorerKind::kAlgorithm1);
  EXPECT_NE(alg1,
            store::options_fingerprint(opt, dse::ExplorerKind::kExhaustive));
  EXPECT_NE(alg1,
            store::options_fingerprint(opt, dse::ExplorerKind::kAnnealing));

  dse::ExplorationOptions bounded = opt;
  bounded.bound = dse::TerminationBound::kPaperAlpha;
  EXPECT_NE(store::options_fingerprint(bounded, dse::ExplorerKind::kAlgorithm1),
            alg1);
  // The annealer's seed matters to the annealer only.
  dse::ExplorationOptions reseeded = opt;
  reseeded.seed += 1;
  EXPECT_EQ(
      store::options_fingerprint(reseeded, dse::ExplorerKind::kAlgorithm1),
      alg1);
  EXPECT_NE(
      store::options_fingerprint(reseeded, dse::ExplorerKind::kAnnealing),
      store::options_fingerprint(opt, dse::ExplorerKind::kAnnealing));
  // Observability hooks never change what a cell computes.
  dse::ExplorationOptions observed = opt;
  observed.threads = 4;
  EXPECT_EQ(
      store::options_fingerprint(observed, dse::ExplorerKind::kAlgorithm1),
      alg1);
}

TEST(StoreSerialize, ScenarioJsonRoundTripPaperDefault) {
  EXPECT_EQ(check::check_scenario_roundtrip(model::Scenario{}),
            std::vector<std::string>{});
}

TEST(StoreSerialize, ScenarioJsonRoundTripCustomExample) {
  EXPECT_EQ(check::check_scenario_roundtrip(custom_example_scenario()),
            std::vector<std::string>{});
}

TEST(StoreSerialize, ScenarioJsonRoundTripGeneratorScenarios) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const check::ScenarioSpec spec = check::make_scenario(seed);
    EXPECT_EQ(check::check_scenario_roundtrip(spec.scenario),
              std::vector<std::string>{})
        << spec.summary();
  }
}

TEST(StoreSerialize, ScenarioJsonRejectsUnknownKeysAndGarbage) {
  std::string err;
  EXPECT_FALSE(store::scenario_from_json("{", &err).has_value());
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(store::scenario_from_json("[1,2,3]", &err).has_value());

  std::string json = store::scenario_to_json(model::Scenario{});
  const std::string key = "\"max_hops\"";
  json.replace(json.find(key), key.size(), "\"max_hopz\"");
  EXPECT_FALSE(store::scenario_from_json(json, &err).has_value());
  EXPECT_NE(err.find("max_hopz"), std::string::npos);
}

}  // namespace
