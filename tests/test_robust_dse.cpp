// Robust DSE under channel uncertainty, proven end to end:
//
//   - realization seed derivation (nested, deterministic, nonzero);
//   - the Γ=0 / K=1 collapse (robust machinery == nominal, bit for bit);
//   - robust Algorithm 1 lands exactly on the robust exhaustive optimum
//     (the sound-cut argument, checked differentially on generated
//     scenarios);
//   - monotonicity of the robust optimum in Γ and in K;
//   - the Bertsimas–Sim counterpart vs the brute-force worst-case
//     enumerator on random dyadic MILPs;
//   - bit-identical confidence intervals at any thread count;
//   - per-(design, seed) store round-trip: a warm restart of a robust
//     campaign re-simulates NOTHING, and a kill/resume fleet holds
//     exactly the records a cold run pays for;
//   - the fast-ILP heuristic's contract: same feasibility verdict as
//     exhaustive search, never better than the optimum, echoed CI.
#include <gtest/gtest.h>

#include <signal.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "campaign/plan.hpp"
#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "check/properties.hpp"
#include "check/scenario_gen.hpp"
#include "common/rng.hpp"
#include "dse/evaluator.hpp"
#include "dse/explorer.hpp"
#include "dse/robustness.hpp"
#include "model/power.hpp"
#include "store/serialize.hpp"
#include "store/store.hpp"

namespace {

using namespace hi;

void remove_tree(const std::string& dir) {
  const std::string cmd = "rm -rf '" + dir + "'";
  [[maybe_unused]] const int rc = std::system(cmd.c_str());
}

TEST(RobustDse, RealizationSeedsAreNestedDeterministicAndDistinct) {
  const std::uint64_t root = 12345;
  std::set<std::uint64_t> seen{root};
  for (int k = 1; k <= 4; ++k) {
    const std::uint64_t s = dse::realization_channel_seed(root, k);
    EXPECT_NE(s, 0u) << "k=" << k;
    EXPECT_EQ(s, dse::realization_channel_seed(root, k)) << "k=" << k;
    EXPECT_TRUE(seen.insert(s).second) << "collision at k=" << k;
  }
  // Different roots derive different families.
  EXPECT_NE(dse::realization_channel_seed(root, 1),
            dse::realization_channel_seed(root + 1, 1));
}

TEST(RobustDse, EvaluatorRealizationsShareMetricsAndDeriveChannelSeeds) {
  const check::ScenarioSpec spec = check::make_scenario(3, 2);
  dse::Evaluator eval(spec.settings);
  obs::MetricsRegistry metrics;
  eval.set_metrics(&metrics);
  EXPECT_EQ(&eval.realization(0), &eval);
  EXPECT_EQ(eval.realization_count(), 1);
  dse::Evaluator& r1 = eval.realization(1);
  dse::Evaluator& r2 = eval.realization(2);
  EXPECT_EQ(eval.realization_count(), 3);
  EXPECT_EQ(&eval.realization(1), &r1);  // stable across calls
  const std::uint64_t root = spec.settings.sim.channel_seed != 0
                                 ? spec.settings.sim.channel_seed
                                 : spec.settings.sim.seed;
  EXPECT_EQ(r1.settings().sim.channel_seed,
            dse::realization_channel_seed(root, 1));
  EXPECT_EQ(r2.settings().sim.channel_seed,
            dse::realization_channel_seed(root, 2));
  // Only the channel seed differs.
  EXPECT_EQ(r1.settings().sim.seed, spec.settings.sim.seed);
  EXPECT_EQ(r1.settings().runs, spec.settings.runs);
  // Children record into the shared registry.
  const model::NetworkConfig cfg = spec.scenario.feasible_configs().front();
  (void)r1.evaluate(cfg);
  EXPECT_EQ(metrics.snapshot().counter("dse.simulations"), 1u);
  EXPECT_EQ(eval.total_simulations(), 1u);
  EXPECT_EQ(eval.simulations(), 0u);
}

TEST(RobustDse, ZValueMatchesNormalQuantiles) {
  EXPECT_NEAR(dse::robust_z_value(0.95), 1.959964, 1e-5);
  EXPECT_NEAR(dse::robust_z_value(0.99), 2.575829, 1e-5);
  EXPECT_NEAR(dse::robust_z_value(0.6827), 1.0, 2e-3);
}

TEST(RobustDse, ProtectionClosedFormIsZeroAtGammaZeroAndMonotone) {
  const model::Scenario sc;
  const std::vector<model::NetworkConfig> configs = sc.feasible_configs();
  ASSERT_FALSE(configs.empty());
  const model::NetworkConfig& cfg = configs.front();
  EXPECT_EQ(model::robust_protection_mw(cfg, 0), 0.0);
  double prev = 0.0;
  for (int gamma = 1; gamma <= 8; ++gamma) {
    const double p = model::robust_protection_mw(cfg, gamma);
    EXPECT_GE(p, prev) << "gamma=" << gamma;
    prev = p;
  }
  EXPECT_GT(prev, 0.0);
}

TEST(RobustDse, GammaZeroSingleRealizationCollapsesBitIdentically) {
  for (const std::uint64_t seed : {3u, 11u}) {
    const check::ScenarioSpec spec = check::make_scenario(seed, 2);
    const std::vector<std::string> violations =
        check::check_robust_collapse(spec);
    EXPECT_TRUE(violations.empty())
        << "seed " << seed << ": " << violations.front();
  }
}

TEST(RobustDse, RobustAlg1MatchesRobustExhaustiveOptimum) {
  for (const std::uint64_t seed : {2u, 7u}) {
    const check::ScenarioSpec spec = check::make_scenario(seed, 2);
    dse::Evaluator eval(spec.settings);
    const dse::RobustnessOptions robust{2, 2, 0.95};
    const std::vector<std::string> violations =
        check::check_robust_alg1_matches_exhaustive(spec.scenario, eval, 0.8,
                                                    robust);
    EXPECT_TRUE(violations.empty())
        << "seed " << seed << ": " << violations.front();
  }
}

TEST(RobustDse, OptimumMonotoneInGammaAndRealizations) {
  const check::ScenarioSpec spec = check::make_scenario(5, 2);
  const std::vector<std::string> violations =
      check::check_robust_monotone(spec, {0, 1, 2, 4}, {1, 2, 3});
  EXPECT_TRUE(violations.empty()) << violations.front();
}

TEST(RobustDse, CounterpartMatchesWorstCaseEnumerator) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng = Rng{seed}.fork("test.robust.counterpart");
    const check::RobustMilpInstance inst = check::random_robust_milp(rng);
    const std::vector<std::string> violations =
        check::check_robust_counterpart(inst);
    EXPECT_TRUE(violations.empty())
        << "seed " << seed << ": " << violations.front();
  }
}

TEST(RobustDse, ConfidenceIntervalBitIdenticalAtAnyThreadCount) {
  const check::ScenarioSpec spec = check::make_scenario(4, 2);
  const dse::RobustnessOptions robust{1, 2, 0.95};
  for (const int threads : {2, 4}) {
    const std::vector<std::string> violations =
        check::check_robust_thread_determinism(spec, threads, robust);
    EXPECT_TRUE(violations.empty())
        << threads << " threads: " << violations.front();
  }
}

TEST(RobustDse, RealizationCountersAndResultEcho) {
  const check::ScenarioSpec spec = check::make_scenario(6, 2);
  dse::Evaluator eval(spec.settings);
  dse::ExplorationOptions opt;
  opt.pdr_min = 0.7;
  opt.robust = dse::RobustnessOptions{1, 2, 0.95};
  const dse::ExplorationResult res =
      dse::run_exhaustive(spec.scenario, eval, opt);
  EXPECT_EQ(res.realizations, 2);
  EXPECT_EQ(res.metrics.counter("dse.realizations"),
            2 * res.history.size());
  if (res.feasible) {
    EXPECT_LE(res.best_pdr_lo, res.best_pdr_hi);
    EXPECT_EQ(res.best_protection_mw,
              model::robust_protection_mw(res.best, 1));
  }
  // Every history record carries its CI.
  for (const dse::CandidateRecord& rec : res.history) {
    EXPECT_LE(rec.pdr_lo, rec.pdr_hi);
    EXPECT_GE(rec.pdr_lo, 0.0);
    EXPECT_LE(rec.pdr_hi, 1.0);
  }
}

TEST(RobustDse, OptionsFingerprintChangesOnlyWhenRobustActive) {
  const dse::ExplorationOptions base;
  dse::ExplorationOptions inactive = base;
  inactive.robust.confidence = 0.5;  // still gamma 0, K 1 — inactive
  dse::ExplorationOptions with_gamma = base;
  with_gamma.robust.gamma = 1;
  dse::ExplorationOptions with_k = base;
  with_k.robust.realizations = 2;
  const auto fp = [](const dse::ExplorationOptions& o) {
    return store::options_fingerprint(o, dse::ExplorerKind::kAlgorithm1);
  };
  EXPECT_EQ(fp(base), fp(inactive));
  EXPECT_NE(fp(base), fp(with_gamma));
  EXPECT_NE(fp(base), fp(with_k));
  EXPECT_NE(fp(with_gamma), fp(with_k));
}

TEST(RobustDse, StoreRoundTripsPerRealizationRecordsWithZeroResimulation) {
  const check::ScenarioSpec spec = check::make_scenario(11, 2);
  const std::string path = "robust_roundtrip.store";
  std::remove(path.c_str());
  const dse::RobustnessOptions robust{1, 2, 0.95};
  dse::ExplorationOptions opt;
  opt.pdr_min = 0.7;
  opt.robust = robust;
  const std::size_t n_configs = spec.scenario.feasible_configs().size();
  ASSERT_GT(n_configs, 0u);

  dse::ExplorationResult first;
  {
    store::EvalStore st(path, store::StoreOptions{});
    dse::Evaluator eval(spec.settings);
    const store::WarmStartStats warm =
        store::warm_start(eval, st, robust.realizations);
    EXPECT_EQ(warm.realizations, 2);
    EXPECT_EQ(warm.preloaded, 0u);
    first = dse::run_exhaustive(spec.scenario, eval, opt);
    EXPECT_EQ(eval.total_simulations(), 2 * n_configs);
    // One record per (design, realization seed).
    EXPECT_EQ(st.eval_count(), 2 * n_configs);
  }
  {
    store::EvalStore st(path, store::StoreOptions{});
    dse::Evaluator eval(spec.settings);
    const store::WarmStartStats warm =
        store::warm_start(eval, st, robust.realizations);
    EXPECT_EQ(warm.preloaded, 2 * n_configs);
    const dse::ExplorationResult second =
        dse::run_exhaustive(spec.scenario, eval, opt);
    EXPECT_EQ(eval.total_simulations(), 0u) << "warm restart re-simulated";
    EXPECT_EQ(second.feasible, first.feasible);
    EXPECT_EQ(second.best_power_mw, first.best_power_mw);
    EXPECT_EQ(second.best_pdr, first.best_pdr);
    EXPECT_EQ(second.best_pdr_lo, first.best_pdr_lo);
    EXPECT_EQ(second.best_pdr_hi, first.best_pdr_hi);
    EXPECT_EQ(second.best_protection_mw, first.best_protection_mw);
    if (first.feasible) {
      EXPECT_EQ(second.best.design_key(), first.best.design_key());
    }
  }
  // A K=3 sweep reuses both existing realization rows (nested seeds).
  {
    store::EvalStore st(path, store::StoreOptions{});
    dse::Evaluator eval(spec.settings);
    const store::WarmStartStats warm = store::warm_start(eval, st, 3);
    EXPECT_EQ(warm.preloaded, 2 * n_configs);
    dse::ExplorationOptions opt3 = opt;
    opt3.robust.realizations = 3;
    (void)dse::run_exhaustive(spec.scenario, eval, opt3);
    EXPECT_EQ(eval.total_simulations(), n_configs)
        << "only the new realization should simulate";
  }
  std::remove(path.c_str());
}

TEST(RobustDse, FleetKillResumeHoldsExactlyTheColdRunsRecords) {
  const std::string dir = "robust_fabric_dir";
  const std::string cold_store = "robust_fabric_cold.store";
  remove_tree(dir);
  std::remove(cold_store.c_str());

  campaign::PlanSpec spec;
  spec.gen_seeds = {5, 6};
  spec.pdr_grid = {0.5, 0.7};
  spec.robust.gamma = 1;
  spec.robust.realizations = 2;
  std::string err;
  const auto plan = campaign::CampaignPlan::build(spec, &err);
  ASSERT_TRUE(plan) << err;

  campaign::RunConfig cold_cfg;
  cold_cfg.store_path = cold_store;
  const campaign::CampaignReport cold =
      campaign::run_single(*plan, cold_cfg, nullptr);
  const std::uint64_t cold_evals = cold.stored_evals;
  ASSERT_GT(cold_evals, 0u);
  // Per-(design, seed) records: every design is simulated under both
  // realizations, so the store count is even.
  EXPECT_EQ(cold_evals % 2, 0u);

  campaign::RunConfig cfg;
  cfg.shard_dir = dir;
  cfg.workers = 2;
  cfg.steal = false;
  cfg.kill_slot = 0;
  cfg.kill_after_cells = 1;
  cfg.cell_delay_ms = 50;
  const campaign::FleetReport first = campaign::run_fleet(*plan, cfg, nullptr);
  ASSERT_FALSE(first.complete);
  EXPECT_EQ(first.worker_reports[0].term_signal, SIGKILL);

  cfg.steal = true;
  cfg.kill_slot = -1;
  cfg.cell_delay_ms = 0;
  const campaign::FleetReport second = campaign::run_fleet(*plan, cfg, nullptr);
  ASSERT_TRUE(second.complete) << second.to_json();
  EXPECT_EQ(second.merge.duplicate_evals, 0u);
  store::StoreOptions ro;
  ro.read_only = true;
  const store::EvalStore merged(campaign::merged_path(dir), ro);
  EXPECT_EQ(merged.eval_count(), cold_evals)
      << "kill/resume lost or duplicated per-realization records";
  EXPECT_TRUE(store::EvalStore::audit(campaign::merged_path(dir)).clean());

  remove_tree(dir);
  std::remove(cold_store.c_str());
}

TEST(RobustDse, FastIlpMatchesFeasibilityAndNeverBeatsTheOptimum) {
  for (const std::uint64_t seed : {3u, 9u}) {
    const check::ScenarioSpec spec = check::make_scenario(seed, 2);
    dse::Evaluator eval(spec.settings);
    dse::ExplorationOptions opt;
    opt.pdr_min = 0.8;
    const dse::ExplorationResult ex =
        dse::run_exhaustive(spec.scenario, eval, opt);
    eval.reset_counters();
    const dse::ExplorationResult fi =
        dse::run_fast_ilp(spec.scenario, eval, opt);
    EXPECT_EQ(fi.feasible, ex.feasible) << "seed " << seed;
    if (ex.feasible) {
      EXPECT_GE(fi.best_power_mw, ex.best_power_mw - 1e-12) << "seed " << seed;
      EXPECT_GE(fi.best_pdr, opt.pdr_min) << "seed " << seed;
    }
    EXPECT_LE(fi.simulations, ex.simulations) << "seed " << seed;
  }
}

TEST(RobustDse, FastIlpRobustModeEchoesProtectionAndCi) {
  const check::ScenarioSpec spec = check::make_scenario(4, 2);
  dse::Evaluator eval(spec.settings);
  dse::ExplorationOptions opt;
  opt.pdr_min = 0.5;
  opt.robust = dse::RobustnessOptions{2, 2, 0.95};
  const dse::ExplorationResult res =
      dse::run_fast_ilp(spec.scenario, eval, opt);
  EXPECT_EQ(res.realizations, 2);
  if (res.feasible) {
    EXPECT_EQ(res.best_protection_mw,
              model::robust_protection_mw(res.best, 2));
    EXPECT_GT(res.best_protection_mw, 0.0);
    EXPECT_LE(res.best_pdr_lo, res.best_pdr_hi);
  }
  if (res.iterations >= 2) {
    EXPECT_GE(res.metrics.counter("dse.robust_cuts"), 1u);
  }
}

}  // namespace
