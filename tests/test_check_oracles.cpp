// Tier-1 tests of the hi::check exact oracles: rational arithmetic
// (overflow-checked __int128 limbs), the LP vertex-enumeration oracle,
// the MILP integer-box enumerator, and the differential properties they
// power — including the solution-pool-vs-enumerator sweep (the pool's
// no-good-cut enumeration must return *exactly* the brute-force set of
// alternative optima on 50 random seeds).
#include <gtest/gtest.h>

#include <cmath>

#include "check/lp_oracle.hpp"
#include "check/milp_oracle.hpp"
#include "check/properties.hpp"
#include "check/rational.hpp"
#include "common/rng.hpp"
#include "lp/problem.hpp"
#include "milp/model.hpp"

namespace hi::check {
namespace {

// --- Rational ----------------------------------------------------------

TEST(Rational, NormalizesAndCompares) {
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
  EXPECT_EQ(Rational(-2, -4), Rational(1, 2));
  EXPECT_EQ(Rational(2, -4), Rational(-1, 2));
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(-1, 3), Rational(-1, 2));
  EXPECT_TRUE(Rational().is_zero());
  EXPECT_EQ(Rational(7).to_string(), "7");
  EXPECT_EQ(Rational(-3, 8).to_string(), "-3/8");
}

TEST(Rational, ExactArithmetic) {
  const Rational a(1, 3);
  const Rational b(1, 6);
  EXPECT_EQ(a + b, Rational(1, 2));
  EXPECT_EQ(a - b, Rational(1, 6));
  EXPECT_EQ(a * b, Rational(1, 18));
  EXPECT_EQ(a / b, Rational(2));
  // The classic float counterexample is exact here.
  EXPECT_EQ(Rational(1, 10) + Rational(2, 10), Rational(3, 10));
}

TEST(Rational, FromDoubleIsExact) {
  EXPECT_EQ(Rational::from_double(0.5), Rational(1, 2));
  EXPECT_EQ(Rational::from_double(-2.75), Rational(-11, 4));
  EXPECT_EQ(Rational::from_double(3.0), Rational(3));
  // 0.1 is NOT 1/10 in binary; from_double must preserve the true value.
  EXPECT_NE(Rational::from_double(0.1), Rational(1, 10));
  EXPECT_DOUBLE_EQ(Rational::from_double(0.1).to_double(), 0.1);
}

TEST(Rational, OverflowThrowsInsteadOfWrapping) {
  // (2^96)/1 * (2^96)/1 overflows 128-bit limbs.
  Rational big(1);
  for (int i = 0; i < 96; ++i) big *= Rational(2);
  EXPECT_THROW((void)(big * big), OverflowError);
  EXPECT_THROW((void)Rational::from_double(1e300), OverflowError);
}

// --- LP oracle ---------------------------------------------------------

TEST(LpOracle, SolvesKnownVertex) {
  // max x + y  s.t. x + 2y <= 2, bounds [0,1]^2: optimum (1, 1/2) -> 3/2.
  lp::Problem p;
  const int x = p.add_variable(0.0, 1.0, 1.0);
  const int y = p.add_variable(0.0, 1.0, 1.0);
  p.set_objective(lp::Objective::kMaximize);
  p.add_constraint({{x, 1.0}, {y, 2.0}}, lp::Sense::kLessEqual, 2.0);
  const LpOracleResult r = solve_lp_exact(p);
  ASSERT_EQ(r.status, OracleStatus::kOptimal);
  EXPECT_EQ(r.objective, Rational(3, 2));
  ASSERT_EQ(r.x.size(), 2u);
  EXPECT_EQ(r.x[0], Rational(1));
  EXPECT_EQ(r.x[1], Rational(1, 2));
}

TEST(LpOracle, DetectsInfeasibility) {
  lp::Problem p;
  const int x = p.add_variable(0.0, 1.0, 1.0);
  p.add_constraint({{x, 1.0}}, lp::Sense::kGreaterEqual, 2.0);
  EXPECT_EQ(solve_lp_exact(p).status, OracleStatus::kInfeasible);
}

TEST(LpOracle, RejectsUnboundedBoxes) {
  lp::Problem p;
  p.add_variable(0.0, lp::kInf, 1.0);
  EXPECT_THROW((void)solve_lp_exact(p), Error);
}

TEST(LpOracle, EqualityRowsAndFixedVariables) {
  // x fixed to 1/2 by bounds, y constrained by x + y = 1 exactly.
  lp::Problem p;
  const int x = p.add_variable(0.5, 0.5, 0.0);
  const int y = p.add_variable(0.0, 2.0, 1.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, lp::Sense::kEqual, 1.0);
  const LpOracleResult r = solve_lp_exact(p);
  ASSERT_EQ(r.status, OracleStatus::kOptimal);
  EXPECT_EQ(r.objective, Rational(1, 2));
  EXPECT_EQ(r.x[y], Rational(1, 2));
}

// --- MILP oracle -------------------------------------------------------

TEST(MilpOracle, KnapsackAllOptima) {
  // max x0 + x1 + x2  s.t. x0 + x1 + x2 <= 2 over binaries: the three
  // 2-of-3 patterns all attain 2.
  milp::Model m;
  for (int v = 0; v < 3; ++v) m.add_binary(1.0);
  m.set_objective(lp::Objective::kMaximize);
  m.add_constraint({{0, 1.0}, {1, 1.0}, {2, 1.0}}, lp::Sense::kLessEqual,
                   2.0);
  const MilpOracleResult r = solve_milp_exact(m);
  ASSERT_EQ(r.status, OracleStatus::kOptimal);
  EXPECT_EQ(r.objective, Rational(2));
  EXPECT_EQ(r.optimal_assignments.size(), 3u);
  EXPECT_EQ(r.boxes_checked, 8u);
}

TEST(MilpOracle, MixedModelUsesExactLpPerBox) {
  // min y  s.t. y >= 1 - b, y in [0, 2], b binary; optimum b=1, y=0.
  milp::Model m;
  const int b = m.add_binary(0.0);
  const int y = m.add_continuous(0.0, 2.0, 1.0);
  m.add_constraint({{y, 1.0}, {b, 1.0}}, lp::Sense::kGreaterEqual, 1.0);
  const MilpOracleResult r = solve_milp_exact(m);
  ASSERT_EQ(r.status, OracleStatus::kOptimal);
  EXPECT_EQ(r.objective, Rational(0));
  ASSERT_EQ(r.optimal_assignments.size(), 1u);
  EXPECT_EQ(r.optimal_assignments[0], std::vector<std::int64_t>{1});
}

TEST(MilpOracle, RefusesOversizedBoxes) {
  milp::Model m;
  m.add_integer(0.0, 100.0, 1.0);
  m.add_integer(0.0, 100.0, 1.0);
  EXPECT_THROW((void)solve_milp_exact(m, /*max_boxes=*/100), Error);
}

// --- differential sweeps ----------------------------------------------

TEST(Differential, SimplexAgreesWithOracleOnRandomLps) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(seed);
    const lp::Problem p = random_bounded_lp(rng);
    for (const std::string& v : check_lp_against_oracle(p)) {
      ADD_FAILURE() << "seed " << seed << ": " << v;
    }
  }
}

TEST(Differential, BranchAndBoundAgreesWithOracleOnRandomMilps) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(seed ^ 0xABCDULL);
    const milp::Model m = random_small_milp(rng);
    for (const std::string& v : check_milp_against_oracle(m)) {
      ADD_FAILURE() << "seed " << seed << ": " << v;
    }
  }
}

TEST(Differential, PoolMatchesBruteForceEnumeratorOn50Seeds) {
  int nontrivial = 0;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    Rng rng(seed ^ 0x9000ULL);
    const milp::Model m = random_pool_milp(rng);
    for (const std::string& v : check_pool_against_enumerator(m)) {
      ADD_FAILURE() << "seed " << seed << ": " << v;
    }
    if (solve_milp_exact(m).optimal_assignments.size() > 1) {
      ++nontrivial;
    }
  }
  // The generator must actually exercise multi-optimum pools, or the
  // property would be vacuous.
  EXPECT_GT(nontrivial, 10);
}

TEST(Differential, NoGoodCutNeverImprovesObjective) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng(seed ^ 0xC0DEULL);
    for (const std::string& v :
         check_no_good_cut_monotone(random_small_milp(rng))) {
      ADD_FAILURE() << "seed " << seed << ": " << v;
    }
  }
}

}  // namespace
}  // namespace hi::check
