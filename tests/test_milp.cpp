// Unit and property tests for the branch-and-bound MILP solver and the
// alternative-optimum pool (milp/solver.hpp).
#include "milp/solver.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace hi::milp {
namespace {

TEST(Milp, BinaryCover) {
  Model m;
  const int a = m.add_binary(1.0, "a");
  const int b = m.add_binary(1.0, "b");
  m.add_constraint({{a, 1.0}, {b, 1.0}}, lp::Sense::kGreaterEqual, 1.0);
  const Solution s = solve(m);
  ASSERT_EQ(s.status, lp::Status::kOptimal);
  EXPECT_NEAR(s.objective, 1.0, 1e-9);
  EXPECT_NEAR(s.x[a] + s.x[b], 1.0, 1e-6);
}

TEST(Milp, KnapsackKnownOptimum) {
  // max 10a + 13b + 7c  s.t.  5a + 7b + 4c <= 9  -> {a,c} = 17.
  Model m;
  m.set_objective(lp::Objective::kMaximize);
  const int a = m.add_binary(10.0);
  const int b = m.add_binary(13.0);
  const int c = m.add_binary(7.0);
  m.add_constraint({{a, 5.0}, {b, 7.0}, {c, 4.0}}, lp::Sense::kLessEqual, 9.0);
  const Solution s = solve(m);
  ASSERT_EQ(s.status, lp::Status::kOptimal);
  EXPECT_NEAR(s.objective, 17.0, 1e-9);
  EXPECT_NEAR(s.x[a], 1.0, 1e-6);
  EXPECT_NEAR(s.x[b], 0.0, 1e-6);
  EXPECT_NEAR(s.x[c], 1.0, 1e-6);
}

TEST(Milp, GeneralIntegerVariable) {
  // min x  s.t.  3x >= 10, x integer  ->  x = 4.
  Model m;
  const int x = m.add_integer(0.0, 100.0, 1.0);
  m.add_constraint({{x, 3.0}}, lp::Sense::kGreaterEqual, 10.0);
  const Solution s = solve(m);
  ASSERT_EQ(s.status, lp::Status::kOptimal);
  EXPECT_NEAR(s.x[x], 4.0, 1e-6);
}

TEST(Milp, MixedIntegerContinuous) {
  // max 2x + y with x binary, y <= 1.5 continuous, x + y <= 2.
  Model m;
  m.set_objective(lp::Objective::kMaximize);
  const int x = m.add_binary(2.0);
  const int y = m.add_continuous(0.0, 1.5, 1.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, lp::Sense::kLessEqual, 2.0);
  const Solution s = solve(m);
  ASSERT_EQ(s.status, lp::Status::kOptimal);
  EXPECT_NEAR(s.x[x], 1.0, 1e-6);
  EXPECT_NEAR(s.x[y], 1.0, 1e-6);
  EXPECT_NEAR(s.objective, 3.0, 1e-9);
}

TEST(Milp, InfeasibleIntegerBox) {
  // 0.4 <= x <= 0.6 has no integer point.
  Model m;
  const int x = m.add_integer(0.0, 1.0, 1.0);
  m.add_constraint({{x, 1.0}}, lp::Sense::kGreaterEqual, 0.4);
  m.add_constraint({{x, 1.0}}, lp::Sense::kLessEqual, 0.6);
  EXPECT_EQ(solve(m).status, lp::Status::kInfeasible);
}

TEST(Milp, ProductConstraintTruthTable) {
  // y = a AND b via add_product: check all four corners by fixing a,b.
  for (const bool av : {false, true}) {
    for (const bool bv : {false, true}) {
      Model m;
      const int a = m.add_binary(0.0, "a");
      const int b = m.add_binary(0.0, "b");
      const int y = m.add_product({a, b}, "y");
      m.set_cost(y, -1.0);  // maximize y via minimizing -y
      m.add_constraint({{a, 1.0}}, lp::Sense::kEqual, av ? 1.0 : 0.0);
      m.add_constraint({{b, 1.0}}, lp::Sense::kEqual, bv ? 1.0 : 0.0);
      const Solution s = solve(m);
      ASSERT_EQ(s.status, lp::Status::kOptimal);
      EXPECT_NEAR(s.x[y], (av && bv) ? 1.0 : 0.0, 1e-6)
          << "a=" << av << " b=" << bv;
    }
  }
}

TEST(Milp, NoGoodCutExcludesAssignment) {
  Model m;
  const int a = m.add_binary(-1.0);
  const int b = m.add_binary(-2.0);
  Solution s = solve(m);
  ASSERT_EQ(s.status, lp::Status::kOptimal);
  EXPECT_NEAR(s.objective, -3.0, 1e-9);  // (1,1)
  m.add_no_good_cut({a, b}, s.x);
  s = solve(m);
  ASSERT_EQ(s.status, lp::Status::kOptimal);
  EXPECT_NEAR(s.objective, -2.0, 1e-9);  // next best: (0,1)
}

TEST(MilpPool, EnumeratesAllOptima) {
  // min a+b+c s.t. a+b+c >= 1: three optimal singletons.
  Model m;
  const int a = m.add_binary(1.0);
  const int b = m.add_binary(1.0);
  const int c = m.add_binary(1.0);
  m.add_constraint({{a, 1.0}, {b, 1.0}, {c, 1.0}}, lp::Sense::kGreaterEqual,
                   1.0);
  const Pool pool = solve_all_optimal(m);
  ASSERT_EQ(pool.status, lp::Status::kOptimal);
  EXPECT_NEAR(pool.objective, 1.0, 1e-9);
  EXPECT_EQ(pool.solutions.size(), 3u);
  EXPECT_FALSE(pool.truncated);
}

TEST(MilpPool, TruncationFlag) {
  Model m;
  for (int i = 0; i < 6; ++i) m.add_binary(0.0);  // 64 equal optima
  const Pool pool = solve_all_optimal(m, {}, /*max_solutions=*/5);
  ASSERT_EQ(pool.status, lp::Status::kOptimal);
  EXPECT_EQ(pool.solutions.size(), 5u);
  EXPECT_TRUE(pool.truncated);
}

TEST(MilpPool, RejectsGeneralIntegers) {
  Model m;
  m.add_integer(0.0, 3.0, 1.0);
  EXPECT_THROW((void)solve_all_optimal(m), ModelError);
}

TEST(MilpPool, InfeasibleModelReportsInfeasible) {
  Model m;
  const int a = m.add_binary(1.0);
  m.add_constraint({{a, 1.0}}, lp::Sense::kGreaterEqual, 2.0);
  const Pool pool = solve_all_optimal(m);
  EXPECT_EQ(pool.status, lp::Status::kInfeasible);
  EXPECT_TRUE(pool.solutions.empty());
}

TEST(MilpCutoff, ReturnsFirstSolutionAtTheCutoffLevel) {
  // min a+b+c s.t. sum >= 2: optimum 2.  With the cutoff at 2 the solver
  // may stop at its first integral hit; the result must still be 2.
  Model m;
  const int a = m.add_binary(1.0);
  const int b = m.add_binary(1.0);
  const int c = m.add_binary(1.0);
  m.add_constraint({{a, 1.0}, {b, 1.0}, {c, 1.0}}, lp::Sense::kGreaterEqual,
                   2.0);
  Options opt;
  opt.objective_cutoff = 2.0;
  const Solution s = solve(m, opt);
  ASSERT_EQ(s.status, lp::Status::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-9);
}

TEST(MilpCutoff, UnreachableCutoffReportsInfeasible) {
  Model m;
  const int a = m.add_binary(1.0);
  const int b = m.add_binary(1.0);
  m.add_constraint({{a, 1.0}, {b, 1.0}}, lp::Sense::kGreaterEqual, 2.0);
  Options opt;
  opt.objective_cutoff = 1.0;  // optimum is 2: nothing reaches 1
  EXPECT_EQ(solve(m, opt).status, lp::Status::kInfeasible);
}

TEST(MilpCutoff, LooseCutoffStillOptimal) {
  Model m;
  m.set_objective(lp::Objective::kMaximize);
  const int a = m.add_binary(3.0);
  const int b = m.add_binary(5.0);
  m.add_constraint({{a, 2.0}, {b, 3.0}}, lp::Sense::kLessEqual, 3.0);
  Options opt;
  opt.objective_cutoff = 5.0;  // the true optimum: b alone
  const Solution s = solve(m, opt);
  ASSERT_EQ(s.status, lp::Status::kOptimal);
  EXPECT_NEAR(s.objective, 5.0, 1e-9);
}

TEST(MilpBranchPriority, DoesNotChangeTheOptimum) {
  Rng rng(77);
  Model m;
  std::vector<lp::Term> row;
  for (int j = 0; j < 10; ++j) {
    m.add_binary(rng.uniform(-3.0, 3.0));
    row.push_back({j, rng.uniform(0.5, 2.0)});
  }
  m.add_constraint(row, lp::Sense::kLessEqual, 6.0);
  const Solution plain = solve(m);
  Options opt;
  opt.branch_priority = {9, 8, 7, 6, 5};
  const Solution prio = solve(m, opt);
  ASSERT_EQ(plain.status, lp::Status::kOptimal);
  ASSERT_EQ(prio.status, lp::Status::kOptimal);
  EXPECT_NEAR(plain.objective, prio.objective, 1e-9);
}

// ---- Property suite: random binary programs vs brute force ---------------

struct RandomMilpCase {
  std::uint64_t seed;
};

class MilpRandom : public ::testing::TestWithParam<RandomMilpCase> {};

TEST_P(MilpRandom, MatchesBruteForceEnumeration) {
  Rng rng(GetParam().seed);
  const int n = 3 + static_cast<int>(rng.uniform_index(6));  // 3..8 binaries
  const int m_rows = 1 + static_cast<int>(rng.uniform_index(4));
  Model m;
  std::vector<double> cost(n);
  for (int j = 0; j < n; ++j) {
    cost[j] = std::round(rng.uniform(-5.0, 5.0));
    m.add_binary(cost[j]);
  }
  std::vector<std::vector<double>> rows(m_rows, std::vector<double>(n));
  std::vector<double> rhs(m_rows);
  std::vector<lp::Sense> sense(m_rows);
  for (int r = 0; r < m_rows; ++r) {
    std::vector<lp::Term> terms;
    for (int j = 0; j < n; ++j) {
      rows[r][j] = std::round(rng.uniform(-3.0, 3.0));
      terms.push_back({j, rows[r][j]});
    }
    rhs[r] = std::round(rng.uniform(-2.0, 4.0));
    sense[r] = rng.bernoulli(0.5) ? lp::Sense::kLessEqual
                                  : lp::Sense::kGreaterEqual;
    m.add_constraint(terms, sense[r], rhs[r]);
  }

  // Brute force over all 2^n assignments.
  double best = 0.0;
  int feasible_count = 0;
  int optima_count = 0;
  for (int mask = 0; mask < (1 << n); ++mask) {
    bool ok = true;
    for (int r = 0; r < m_rows && ok; ++r) {
      double lhs = 0.0;
      for (int j = 0; j < n; ++j) {
        if (mask & (1 << j)) lhs += rows[r][j];
      }
      ok = sense[r] == lp::Sense::kLessEqual ? lhs <= rhs[r] + 1e-9
                                             : lhs >= rhs[r] - 1e-9;
    }
    if (!ok) continue;
    double obj = 0.0;
    for (int j = 0; j < n; ++j) {
      if (mask & (1 << j)) obj += cost[j];
    }
    if (feasible_count == 0 || obj < best - 1e-9) {
      best = obj;
      optima_count = 1;
    } else if (std::fabs(obj - best) <= 1e-9) {
      ++optima_count;
    }
    ++feasible_count;
  }

  const Solution s = solve(m);
  if (feasible_count == 0) {
    EXPECT_EQ(s.status, lp::Status::kInfeasible);
    return;
  }
  ASSERT_EQ(s.status, lp::Status::kOptimal);
  EXPECT_NEAR(s.objective, best, 1e-6);

  const Pool pool = solve_all_optimal(m, {}, /*max_solutions=*/2048);
  ASSERT_EQ(pool.status, lp::Status::kOptimal);
  EXPECT_EQ(static_cast<int>(pool.solutions.size()), optima_count);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, MilpRandom,
    ::testing::Values(RandomMilpCase{101}, RandomMilpCase{102},
                      RandomMilpCase{103}, RandomMilpCase{104},
                      RandomMilpCase{105}, RandomMilpCase{106},
                      RandomMilpCase{107}, RandomMilpCase{108},
                      RandomMilpCase{109}, RandomMilpCase{110},
                      RandomMilpCase{111}, RandomMilpCase{112},
                      RandomMilpCase{113}, RandomMilpCase{114},
                      RandomMilpCase{115}, RandomMilpCase{116}));

}  // namespace
}  // namespace hi::milp
