// fuzz_dse — the seed-replay fuzzer (check/fuzz.hpp) as a standalone
// binary.  Walks ScenarioGen seeds, runs the property battery on each,
// shrinks failures, and prints a replay command per failure.  Exits
// nonzero when any property failed, so ctest can gate on it (registered
// under the `extended` label; see tests/CMakeLists.txt).
//
//   fuzz_dse [--seed S] [--scenarios N] [--shrink L]
//            [--gamma G] [--realizations K] [--verbose]
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "check/fuzz.hpp"

namespace {

bool parse_u64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  out = v;
  return true;
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--seed S] [--scenarios N] [--shrink L] [--gamma G]"
               " [--realizations K] [--verbose]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  hi::check::FuzzOptions opt;
  opt.out = &std::cout;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::uint64_t value = 0;
    if (arg == "--verbose") {
      opt.verbose = true;
    } else if (arg == "--seed" && i + 1 < argc && parse_u64(argv[++i], value)) {
      opt.seed = value;
    } else if (arg == "--scenarios" && i + 1 < argc &&
               parse_u64(argv[++i], value)) {
      opt.scenarios = static_cast<int>(value);
    } else if (arg == "--shrink" && i + 1 < argc &&
               parse_u64(argv[++i], value)) {
      opt.shrink_level = static_cast<int>(value);
    } else if (arg == "--gamma" && i + 1 < argc &&
               parse_u64(argv[++i], value)) {
      opt.gamma = static_cast<int>(value);
    } else if (arg == "--realizations" && i + 1 < argc &&
               parse_u64(argv[++i], value) && value > 0) {
      opt.realizations = static_cast<int>(value);
    } else {
      return usage(argv[0]);
    }
  }
  const hi::check::FuzzReport report = hi::check::run_fuzz(opt);
  return report.ok() ? 0 : 1;
}
