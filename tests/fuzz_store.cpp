// fuzz_store — seeded random corruption of hi::store logs (plus the
// scenario JSON round-trip property) as a standalone binary.  Each seed
// fabricates a store from a generated scenario, then mutilates copies of
// it (truncations, bit flips, garbage tails) and asserts the recovery
// contract: never crash, never serve altered data, always compact back
// to a byte-clean file.  Exits nonzero on any violation, so ctest can
// gate on it (smoke run under tier1, long sweep under `extended`).
//
//   fuzz_store [--seed S] [--scenarios N] [--trials T] [--dir D]
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "check/scenario_gen.hpp"
#include "check/store_props.hpp"

namespace {

bool parse_u64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  out = v;
  return true;
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--seed S] [--scenarios N] [--trials T] [--dir D]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 1;
  int scenarios = 10;
  int trials = 8;
  std::string dir = ".";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::uint64_t value = 0;
    if (arg == "--seed" && i + 1 < argc && parse_u64(argv[++i], value)) {
      seed = value;
    } else if (arg == "--scenarios" && i + 1 < argc &&
               parse_u64(argv[++i], value)) {
      scenarios = static_cast<int>(value);
    } else if (arg == "--trials" && i + 1 < argc &&
               parse_u64(argv[++i], value)) {
      trials = static_cast<int>(value);
    } else if (arg == "--dir" && i + 1 < argc) {
      dir = argv[++i];
    } else {
      return usage(argv[0]);
    }
  }

  int failures = 0;
  for (int i = 0; i < scenarios; ++i) {
    const std::uint64_t s = seed + static_cast<std::uint64_t>(i);
    std::vector<std::string> violations =
        hi::check::check_store_recovery(s, dir, trials);
    const std::vector<std::string> roundtrip =
        hi::check::check_scenario_roundtrip(
            hi::check::make_scenario(s).scenario);
    violations.insert(violations.end(), roundtrip.begin(), roundtrip.end());
    if (!violations.empty()) {
      ++failures;
      std::cout << "seed " << s << ": " << violations.size()
                << " violation(s)\n";
      for (const std::string& v : violations) {
        std::cout << "  " << v << "\n";
      }
      std::cout << "  replay: fuzz_store --seed " << s << " --scenarios 1\n";
    }
  }
  std::cout << "fuzz_store: " << scenarios << " scenario(s), " << failures
            << " failing\n";
  return failures == 0 ? 0 : 1;
}
