// Unit tests for the MAC layer: CSMA backoff behaviour and TDMA slot
// exclusivity (net/csma.hpp, net/tdma.hpp).
#include <gtest/gtest.h>

#include <cmath>

#include <memory>
#include <optional>
#include <vector>

#include "channel/channel.hpp"
#include "common/assert.hpp"
#include "des/kernel.hpp"
#include "net/csma.hpp"
#include "net/medium.hpp"
#include "net/tdma.hpp"

namespace hi::net {
namespace {

class MacFixture : public ::testing::Test {
 protected:
  MacFixture() {
    for (int i = 0; i < 4; ++i) {
      for (int j = i + 1; j < 4; ++j) {
        matrix_.set_db(i, j, 60.0);  // everyone hears everyone
      }
    }
  }

  void build_radios(int n) {
    channel_.emplace(matrix_);
    medium_.emplace(kernel_, *channel_);
    for (int i = 0; i < n; ++i) {
      radios_.push_back(
          std::make_unique<Radio>(kernel_, *medium_, i, RadioParams{}));
      medium_->attach(radios_.back().get());
    }
  }

  CsmaMac& add_csma(int i, int buffer = 16) {
    CsmaParams cp;
    csmas_.push_back(std::make_unique<CsmaMac>(
        kernel_, *radios_[static_cast<std::size_t>(i)], buffer, cp,
        Rng{static_cast<std::uint64_t>(i) + 100}));
    return *csmas_.back();
  }

  TdmaMac& add_tdma(int i, int slot, int num_slots, int buffer = 16) {
    TdmaParams tp;
    tp.slot_index = slot;
    tp.num_slots = num_slots;
    tdmas_.push_back(std::make_unique<TdmaMac>(
        kernel_, *radios_[static_cast<std::size_t>(i)], buffer, tp));
    return *tdmas_.back();
  }

  static Packet make_packet(int origin) {
    Packet p;
    p.origin = origin;
    p.sender = origin;
    p.bytes = 100;
    return p;
  }

  des::Kernel kernel_;
  channel::PathLossMatrix matrix_;
  std::optional<channel::StaticChannel> channel_;
  std::optional<Medium> medium_;
  std::vector<std::unique_ptr<Radio>> radios_;
  std::vector<std::unique_ptr<CsmaMac>> csmas_;
  std::vector<std::unique_ptr<TdmaMac>> tdmas_;
};

TEST_F(MacFixture, CsmaSendsWhenIdle) {
  build_radios(2);
  CsmaMac& mac = add_csma(0);
  int got = 0;
  radios_[1]->on_receive = [&](const Packet&) { ++got; };
  mac.enqueue(make_packet(0));
  kernel_.run_until(1.0);
  EXPECT_EQ(got, 1);
  EXPECT_EQ(mac.stats().sent, 1u);
  EXPECT_EQ(mac.stats().backoffs, 0u);
}

TEST_F(MacFixture, CsmaBacksOffWhenBusy) {
  build_radios(3);
  CsmaMac& a = add_csma(0);
  CsmaMac& b = add_csma(1);
  int got = 0;
  radios_[2]->on_receive = [&](const Packet&) { ++got; };
  a.enqueue(make_packet(0));
  // Node 1 tries while node 0's packet is on the air (after the 200 us
  // turnaround, the channel is busy for ~781 us).
  kernel_.schedule_at(400e-6, [&] { b.enqueue(make_packet(1)); });
  kernel_.run_until(1.0);
  EXPECT_EQ(got, 2);  // both eventually delivered
  EXPECT_GE(b.stats().backoffs, 1u);
}

TEST_F(MacFixture, CsmaTurnaroundVulnerabilityCollides) {
  build_radios(3);
  CsmaMac& a = add_csma(0);
  CsmaMac& b = add_csma(1);
  int got = 0;
  radios_[2]->on_receive = [&](const Packet&) { ++got; };
  // Both sense an idle medium within the same turnaround window.
  a.enqueue(make_packet(0));
  b.enqueue(make_packet(1));
  kernel_.run_until(0.01);
  EXPECT_EQ(got, 0);  // equal powers: collision at node 2
  EXPECT_EQ(radios_[2]->stats().rx_corrupted, 1u);
}

TEST_F(MacFixture, CsmaBufferOverflowDrops) {
  build_radios(2);
  CsmaMac& mac = add_csma(0, /*buffer=*/2);
  // The first packet goes in flight quickly; flood faster than 1/Tpkt.
  for (int i = 0; i < 10; ++i) {
    mac.enqueue(make_packet(0));
  }
  EXPECT_GT(mac.stats().dropped_buffer, 0u);
  kernel_.run_until(1.0);
  EXPECT_EQ(mac.stats().enqueued, 10u);
  EXPECT_EQ(mac.stats().sent + mac.stats().dropped_buffer, 10u);
}

TEST_F(MacFixture, CsmaDrainsQueueInOrder) {
  build_radios(2);
  CsmaMac& mac = add_csma(0);
  std::vector<std::uint32_t> got;
  radios_[1]->on_receive = [&](const Packet& p) { got.push_back(p.seq); };
  for (std::uint32_t s = 0; s < 5; ++s) {
    Packet p = make_packet(0);
    p.seq = s;
    mac.enqueue(p);
  }
  kernel_.run_until(1.0);
  EXPECT_EQ(got, (std::vector<std::uint32_t>{0, 1, 2, 3, 4}));
}

TEST_F(MacFixture, TdmaNeverCollides) {
  build_radios(4);
  std::vector<TdmaMac*> macs;
  for (int i = 0; i < 4; ++i) {
    macs.push_back(&add_tdma(i, i, 4));
  }
  // Saturate all queues repeatedly.
  for (int burst = 0; burst < 5; ++burst) {
    kernel_.schedule_at(burst * 0.05, [this, &macs] {
      for (int i = 0; i < 4; ++i) {
        Packet p = make_packet(i);
        macs[static_cast<std::size_t>(i)]->enqueue(p);
      }
      (void)this;
    });
  }
  kernel_.run_until(1.0);
  for (const auto& r : radios_) {
    EXPECT_EQ(r->stats().rx_corrupted, 0u);
    EXPECT_EQ(r->stats().rx_missed, 0u);
  }
  // Everything sent and everyone heard everyone: 5 packets x 3 receivers.
  for (const auto& r : radios_) {
    EXPECT_EQ(r->stats().tx_packets, 5u);
    EXPECT_EQ(r->stats().rx_ok, 15u);
  }
}

TEST_F(MacFixture, TdmaRespectsOwnSlotTiming) {
  build_radios(2);
  TdmaMac& mac = add_tdma(0, /*slot=*/1, /*num_slots=*/4);
  double first_rx_start = -1.0;
  radios_[1]->on_receive = [&](const Packet&) {
    // signal_end time = tx start + airtime
    if (first_rx_start < 0) {
      first_rx_start = kernel_.now() - radios_[0]->packet_airtime_s(100);
    }
  };
  mac.enqueue(make_packet(0));
  kernel_.run_until(0.1);
  // Slot 1 of a 4 x 1 ms frame starts at t = 1 ms (+ k*4 ms).
  ASSERT_GE(first_rx_start, 0.0);
  const double frame = 4e-3;
  const double offset = std::fmod(first_rx_start - 1e-3 + 10 * frame, frame);
  EXPECT_NEAR(std::min(offset, frame - offset), 0.0, 1e-9);
}

TEST_F(MacFixture, TdmaQueuesUntilNextOwnSlot) {
  build_radios(2);
  TdmaMac& mac = add_tdma(0, 0, 2);
  int got = 0;
  radios_[1]->on_receive = [&](const Packet&) { ++got; };
  // Enqueue 3 packets at once: they drain one per frame (2 ms).
  for (int i = 0; i < 3; ++i) mac.enqueue(make_packet(0));
  kernel_.run_until(3.9e-3);  // two frames: at most 2 sent
  EXPECT_LE(got, 2);
  kernel_.run_until(0.1);
  EXPECT_EQ(got, 3);
}

TEST_F(MacFixture, TdmaRejectsBadSlotConfig) {
  build_radios(1);
  TdmaParams tp;
  tp.slot_index = 3;
  tp.num_slots = 2;
  EXPECT_THROW(TdmaMac(kernel_, *radios_[0], 16, tp), ModelError);
}

TEST_F(MacFixture, MacRejectsZeroBuffer) {
  build_radios(1);
  CsmaParams cp;
  EXPECT_THROW(CsmaMac(kernel_, *radios_[0], 0, cp, Rng{1}), ModelError);
}

}  // namespace
}  // namespace hi::net
