// Unit and statistical tests for the deterministic RNG (common/rng.hpp).
#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/stats.hpp"

namespace hi {
namespace {

TEST(Rng, DeterministicBySeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    differing += a.next_u64() != b.next_u64();
  }
  EXPECT_GT(differing, 60);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(7);
  for (int i = 0; i < 1'000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng r(11);
  RunningStats s;
  for (int i = 0; i < 100'000; ++i) s.add(r.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
  EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.01);
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng r(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1'000; ++i) {
    const std::uint64_t v = r.uniform_index(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(17);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2'000; ++i) {
    const std::int64_t v = r.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng r(19);
  RunningStats s;
  for (int i = 0; i < 200'000; ++i) s.add(r.normal(3.0, 2.0));
  EXPECT_NEAR(s.mean(), 3.0, 0.03);
  EXPECT_NEAR(s.stddev(), 2.0, 0.03);
}

TEST(Rng, ExponentialMean) {
  Rng r(23);
  RunningStats s;
  for (int i = 0; i < 100'000; ++i) s.add(r.exponential(4.0));
  EXPECT_NEAR(s.mean(), 0.25, 0.01);
  EXPECT_GE(s.min(), 0.0);
}

TEST(Rng, BernoulliFrequency) {
  Rng r(29);
  int hits = 0;
  for (int i = 0; i < 100'000; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(hits / 100'000.0, 0.3, 0.01);
}

TEST(Rng, ForkIsDeterministic) {
  Rng a(31), b(31);
  Rng fa = a.fork("channel");
  Rng fb = b.fork("channel");
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(fa.next_u64(), fb.next_u64());
  }
}

TEST(Rng, ForkedStreamsAreIndependentOfParentConsumption) {
  // fork() must depend only on (seed, label), not on how many draws the
  // parent made — this is what keeps module substreams stable.
  Rng a(37);
  Rng fa = a.fork("x");
  Rng b(37);
  for (int i = 0; i < 100; ++i) b.next_u64();
  Rng fb = b.fork("x");
  EXPECT_EQ(fa.next_u64(), fb.next_u64());
}

TEST(Rng, DifferentLabelsGiveDifferentStreams) {
  Rng a(41);
  Rng f1 = a.fork("app");
  Rng f2 = a.fork("mac");
  int same = 0;
  for (int i = 0; i < 64; ++i) same += f1.next_u64() == f2.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, IntegerLabelForksDiffer) {
  Rng a(43);
  Rng f0 = a.fork(std::uint64_t{0});
  Rng f1 = a.fork(std::uint64_t{1});
  EXPECT_NE(f0.next_u64(), f1.next_u64());
}

TEST(Rng, SplitMix64KnownSequenceIsStable) {
  std::uint64_t s = 0;
  const std::uint64_t first = splitmix64(s);
  const std::uint64_t second = splitmix64(s);
  // Regression values: fixed forever so serialized experiments replay.
  EXPECT_EQ(first, 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(second, 0x6E789E6AA1B965F4ULL);
}

}  // namespace
}  // namespace hi
