// Tests for the simulated-annealing baseline (dse/annealing.cpp, entry
// point in dse/explorer.hpp).
#include "dse/explorer.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "common/assert.hpp"

namespace hi::dse {
namespace {

EvaluatorSettings fast_settings(std::uint64_t seed = 33) {
  EvaluatorSettings s;
  s.sim.duration_s = 10.0;
  s.sim.seed = seed;
  s.runs = 2;
  return s;
}

model::Scenario small_scenario() {
  model::Scenario sc;
  sc.max_nodes = 4;
  return sc;
}

TEST(Annealing, FindsAFeasibleSolution) {
  Evaluator ev(fast_settings());
  ExplorationOptions opt;
  opt.pdr_min = 0.5;
  opt.budget = 150;
  const ExplorationResult res = run_annealing(small_scenario(), ev, opt);
  ASSERT_TRUE(res.feasible);
  EXPECT_GE(res.best_pdr, 0.5);
  EXPECT_EQ(res.iterations, 150);
  EXPECT_GT(res.simulations, 0u);
}

TEST(Annealing, EveryVisitedStateSatisfiesConstraints) {
  Evaluator ev(fast_settings());
  ExplorationOptions opt;
  opt.pdr_min = 0.7;
  opt.budget = 120;
  const model::Scenario sc = small_scenario();
  const ExplorationResult res = run_annealing(sc, ev, opt);
  for (const CandidateRecord& rec : res.history) {
    EXPECT_TRUE(sc.topology_feasible(rec.cfg.topology))
        << rec.cfg.label();
    if (rec.cfg.routing.protocol == model::RoutingProtocol::kStar) {
      EXPECT_TRUE(rec.cfg.topology.has(sc.coordinator));
    }
  }
}

TEST(Annealing, DeterministicBySeed) {
  Evaluator ev1(fast_settings());
  Evaluator ev2(fast_settings());
  ExplorationOptions opt;
  opt.pdr_min = 0.5;
  opt.budget = 80;
  opt.seed = 99;
  const ExplorationResult a = run_annealing(small_scenario(), ev1, opt);
  const ExplorationResult b = run_annealing(small_scenario(), ev2, opt);
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_DOUBLE_EQ(a.best_power_mw, b.best_power_mw);
  EXPECT_EQ(a.simulations, b.simulations);
  EXPECT_EQ(a.history.size(), b.history.size());
}

TEST(Annealing, ConvergesNearExhaustiveOptimumWithEnoughSteps) {
  // SA is a heuristic; with a generous budget and the best of a few
  // restarts on the small scenario it should land within 15% of the true
  // optimum power (the exact optimum is often a single lucky topology).
  const model::Scenario sc = small_scenario();
  Evaluator ev(fast_settings(7));
  ExplorationOptions exh_opt;
  exh_opt.pdr_min = 0.7;
  const ExplorationResult exh = run_exhaustive(sc, ev, exh_opt);
  ASSERT_TRUE(exh.feasible);
  double best = std::numeric_limits<double>::infinity();
  for (std::uint64_t seed : {3u, 4u, 5u}) {
    ExplorationOptions opt;
    opt.pdr_min = 0.7;
    opt.budget = 400;
    opt.seed = seed;
    const ExplorationResult sa = run_annealing(sc, ev, opt);
    if (sa.feasible) {
      best = std::min(best, sa.best_power_mw);
    }
  }
  EXPECT_LE(best, exh.best_power_mw * 1.15);
  EXPECT_GE(best, exh.best_power_mw - 1e-9);
}

TEST(Annealing, CachedRevisitsDoNotInflateSimCount) {
  const model::Scenario sc = small_scenario();
  Evaluator ev(fast_settings());
  ExplorationOptions opt;
  opt.pdr_min = 0.5;
  opt.budget = 300;
  const ExplorationResult res = run_annealing(sc, ev, opt);
  // The small scenario has only 96 design points; revisits hit the cache.
  EXPECT_LE(res.simulations, 96u);
  EXPECT_GT(ev.cache_hits(), 0u);
  // The run snapshot mirrors both evaluator counters exactly.
  EXPECT_EQ(res.metrics.counter("dse.simulations"), res.simulations);
  EXPECT_GT(res.metrics.counter("dse.cache_hits"), 0u);
}

TEST(Annealing, RejectsBadOptions) {
  Evaluator ev(fast_settings());
  ExplorationOptions opt;
  opt.pdr_min = 1.5;
  EXPECT_THROW((void)run_annealing(small_scenario(), ev, opt), ModelError);
  opt.pdr_min = 0.5;
  opt.budget = 0;
  EXPECT_THROW((void)run_annealing(small_scenario(), ev, opt), ModelError);
  opt.budget = 10;
  opt.t_start_mw = 0.1;
  opt.t_end_mw = 0.5;  // end above start
  EXPECT_THROW((void)run_annealing(small_scenario(), ev, opt), ModelError);
}

}  // namespace
}  // namespace hi::dse
