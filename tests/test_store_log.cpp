// hi::store::RecordLog: framing, torn-write recovery at every byte
// boundary, the bit-flip corruption matrix, fsync policies, and the
// store-level compaction / audit passes built on top.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "obs/metrics.hpp"
#include "store/record_log.hpp"
#include "store/store.hpp"

namespace {

using namespace hi;
using store::OpenMode;
using store::RecordLog;
using store::RecordLogOptions;
using store::RecoveryStats;

constexpr std::size_t kFileHeader = 12;  // magic(8) + format version(4)
constexpr std::size_t kFrameHeader = 12;  // len + payload crc + header crc

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

void write_file(const std::string& path, std::string_view data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

std::string temp_path(const char* tag) {
  return std::string("store_log_test_") + tag + ".log";
}

/// Opens `path` in write mode collecting payloads; returns (payloads,
/// stats, metrics registry the counters landed in).
struct OpenResult {
  std::vector<std::string> payloads;
  RecoveryStats stats;
  std::uint64_t recovered_counter = 0;
  std::uint64_t dropped_counter = 0;
};

OpenResult open_and_scan(const std::string& path, bool read_only = false) {
  OpenResult out;
  obs::MetricsRegistry metrics;
  {
    RecordLogOptions opt;
    opt.mode = read_only ? OpenMode::kReadOnly : OpenMode::kReadWrite;
    opt.metrics = &metrics;
    RecordLog log(
        path,
        [&](std::uint64_t, std::string_view payload) {
          out.payloads.emplace_back(payload);
        },
        opt);
    out.stats = log.recovery();
  }
  const obs::Snapshot snap = metrics.snapshot();
  out.recovered_counter = snap.counter("store.recovered");
  out.dropped_counter = snap.counter("store.corrupt_dropped");
  return out;
}

TEST(RecordLog, Crc32KnownVector) {
  // The canonical IEEE 802.3 check value.
  EXPECT_EQ(store::crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(store::crc32(""), 0u);
}

TEST(RecordLog, AppendAndReopenRoundTrip) {
  const std::string path = temp_path("roundtrip");
  std::remove(path.c_str());
  {
    RecordLog log(path, nullptr);
    EXPECT_EQ(log.append("alpha"), kFileHeader);
    log.append(std::string(1000, 'x'));
    log.append("");  // empty payloads are legal frames
    log.sync();
  }
  const OpenResult r = open_and_scan(path);
  ASSERT_EQ(r.payloads.size(), 3u);
  EXPECT_EQ(r.payloads[0], "alpha");
  EXPECT_EQ(r.payloads[1], std::string(1000, 'x'));
  EXPECT_EQ(r.payloads[2], "");
  EXPECT_TRUE(r.stats.clean());
  EXPECT_EQ(r.recovered_counter, 0u);
}

TEST(RecordLog, RejectsOversizedAppendAndForeignFiles) {
  const std::string path = temp_path("reject");
  std::remove(path.c_str());
  RecordLog log(path, nullptr);
  EXPECT_THROW(log.append(std::string(RecordLog::kMaxPayloadBytes + 1, 'y')),
               hi::Error);

  const std::string foreign = temp_path("foreign");
  write_file(foreign, "this is not a record log, do not clear it");
  EXPECT_THROW(RecordLog(foreign, nullptr), hi::Error);
  std::remove(foreign.c_str());
  std::remove(path.c_str());
}

// The classic kill -9 artifact: the log is cut at *every* byte boundary
// of its last record.  Recovery must truncate exactly the partial frame,
// keep every whole one, and leave a file that then audits clean.
TEST(RecordLog, TornWriteTruncationAtEveryByteBoundary) {
  const std::string path = temp_path("torn_base");
  std::remove(path.c_str());
  std::uint64_t last_start = 0;
  {
    RecordLog log(path, nullptr);
    log.append("first-record");
    log.append("second-record");
    last_start = log.append("the-final-record-that-gets-torn");
  }
  const std::string base = read_file(path);
  const std::string torn = temp_path("torn");
  for (std::size_t cut = last_start; cut < base.size(); ++cut) {
    write_file(torn, std::string_view(base).substr(0, cut));
    const OpenResult r = open_and_scan(torn);
    ASSERT_EQ(r.payloads.size(), 2u) << "cut at byte " << cut;
    EXPECT_EQ(r.payloads[1], "second-record");
    if (cut == last_start) {
      // The cut fell exactly on a frame boundary — nothing was torn.
      EXPECT_TRUE(r.stats.clean()) << "cut at byte " << cut;
    } else {
      EXPECT_TRUE(r.stats.tail_truncated) << "cut at byte " << cut;
      EXPECT_EQ(r.stats.truncated_bytes, cut - last_start);
      EXPECT_EQ(r.recovered_counter, 1u);
      EXPECT_EQ(r.dropped_counter, 0u);
    }
    // Write-mode recovery truncated the file; it must now be clean.
    const OpenResult again = open_and_scan(torn);
    EXPECT_TRUE(again.stats.clean()) << "cut at byte " << cut;
    EXPECT_EQ(again.payloads.size(), 2u);
  }
  std::remove(torn.c_str());
  std::remove(path.c_str());
}

// Every single-bit flip in the middle record's frame, one at a time.
// CRC32 detects all of them; the damage class decides the blast radius:
// payload flips drop one frame, frame-header flips desync and drop the
// tail, and the records before the flip always survive.
TEST(RecordLog, BitFlipMatrixOverMiddleRecord) {
  const std::string path = temp_path("flip_base");
  std::remove(path.c_str());
  std::uint64_t mid_start = 0;
  std::uint64_t last_start = 0;
  {
    RecordLog log(path, nullptr);
    log.append("record-one-stays");
    mid_start = log.append("record-two-gets-poisoned");
    last_start = log.append("record-three-after-the-damage");
  }
  const std::string base = read_file(path);
  const std::string flip = temp_path("flip");
  for (std::size_t byte = mid_start; byte < last_start; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string hurt = base;
      hurt[byte] = static_cast<char>(hurt[byte] ^ (1u << bit));
      write_file(flip, hurt);
      // Read-only first: the scan must classify without mutating.
      const OpenResult ro = open_and_scan(flip, /*read_only=*/true);
      ASSERT_GE(ro.payloads.size(), 1u);
      EXPECT_EQ(ro.payloads[0], "record-one-stays");
      EXPECT_EQ(read_file(flip), hurt) << "read-only open mutated the file";
      const bool header_flip = byte < mid_start + kFrameHeader;
      if (header_flip) {
        // Framing lost: longest valid prefix only.
        EXPECT_EQ(ro.payloads.size(), 1u)
            << "byte " << byte << " bit " << bit;
        EXPECT_TRUE(ro.stats.desynced);
        EXPECT_EQ(ro.dropped_counter, 1u);
      } else {
        // Payload damage: that one frame is dropped, the next survives.
        ASSERT_EQ(ro.payloads.size(), 2u)
            << "byte " << byte << " bit " << bit;
        EXPECT_EQ(ro.payloads[1], "record-three-after-the-damage");
        EXPECT_FALSE(ro.stats.desynced);
        EXPECT_EQ(ro.stats.corrupt_dropped, 1u);
        EXPECT_EQ(ro.dropped_counter, 1u);
      }
      // Write mode applies the repair; a second open is then clean.
      const OpenResult rw = open_and_scan(flip);
      EXPECT_EQ(rw.payloads.size(), ro.payloads.size());
      const OpenResult again = open_and_scan(flip);
      EXPECT_EQ(again.payloads.size() == ro.payloads.size() &&
                    (header_flip ? again.stats.clean()
                                 : again.stats.corrupt_dropped ==
                                       ro.stats.corrupt_dropped),
                true)
          << "byte " << byte << " bit " << bit;
    }
  }
  std::remove(flip.c_str());
  std::remove(path.c_str());
}

TEST(RecordLog, FsyncPolicyToString) {
  EXPECT_STREQ(store::to_string(store::FsyncPolicy::kNone), "none");
  EXPECT_STREQ(store::to_string(store::FsyncPolicy::kCheckpoint),
               "checkpoint");
  EXPECT_STREQ(store::to_string(store::FsyncPolicy::kAlways), "always");
  EXPECT_STREQ(store::to_string(OpenMode::kReadWrite), "read-write");
  EXPECT_STREQ(store::to_string(OpenMode::kReadOnly), "read-only");
}

// The options struct carries the fsync policy, and the log enforces it
// itself: every policy yields the same bytes (durability timing is the
// only difference), checkpoints are appends like any other, and the
// policy/mode accessors echo what the open was given.
TEST(RecordLog, OptionsCarryModeAndFsyncPolicy) {
  const std::string path = temp_path("options");
  for (const store::FsyncPolicy policy :
       {store::FsyncPolicy::kNone, store::FsyncPolicy::kCheckpoint,
        store::FsyncPolicy::kAlways}) {
    std::remove(path.c_str());
    std::uint64_t first = 0;
    {
      RecordLog log(path, nullptr, {.fsync = policy});
      EXPECT_FALSE(log.read_only());
      EXPECT_EQ(log.fsync_policy(), policy);
      first = log.append("plain");
      EXPECT_GT(log.append_checkpoint("checkpointed"), first);
    }
    const OpenResult r = open_and_scan(path, /*read_only=*/true);
    ASSERT_EQ(r.payloads.size(), 2u) << store::to_string(policy);
    EXPECT_EQ(r.payloads[0], "plain");
    EXPECT_EQ(r.payloads[1], "checkpointed");
    EXPECT_TRUE(r.stats.clean());
  }
  {
    RecordLog log(path, nullptr, {.mode = OpenMode::kReadOnly});
    EXPECT_TRUE(log.read_only());
    EXPECT_THROW(log.append("nope"), hi::Error);
  }
  std::remove(path.c_str());
}

// Store-level compaction drops superseded duplicates and skipped-corrupt
// frames; audit() is the read-only integrity probe the campaign's
// kill/resume test leans on.
TEST(EvalStoreCompaction, DropsCorruptionAndSupersededRecords) {
  const std::string path = temp_path("compact");
  std::remove(path.c_str());
  const store::Digest fp{};  // any fixed fingerprint
  model::NetworkConfig cfg_a;
  cfg_a.topology = model::Topology::from_mask(0b11);
  model::NetworkConfig cfg_b;
  cfg_b.topology = model::Topology::from_mask(0b111);
  {
    store::EvalStore st(path, {});
    dse::Evaluation ev;
    ev.pdr = 0.5;
    EXPECT_TRUE(st.put(fp, cfg_a, ev));
    EXPECT_FALSE(st.put(fp, cfg_a, ev));  // idempotent, not re-appended
    EXPECT_TRUE(st.put(fp, cfg_b, ev));
    store::CellKey key{fp, fp, fp, 0.9};
    store::CellResult res;
    st.put_cell(key, res);
    st.put_cell(key, res);  // a resumed cell supersedes its checkpoint
  }
  // Poison the tail so compaction also has damage to shed.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "torn";
  }
  const store::EvalStore::CompactStats stats =
      store::EvalStore::compact(path);
  EXPECT_EQ(stats.records_after, 3u);  // 2 evals + 1 cell
  EXPECT_LT(stats.bytes_after, stats.bytes_before);
  const RecoveryStats audit = store::EvalStore::audit(path);
  EXPECT_TRUE(audit.clean());
  EXPECT_EQ(audit.records, 3u);
  // And the compacted store still serves everything.
  store::EvalStore st(path, {});
  EXPECT_EQ(st.eval_count(), 2u);
  EXPECT_EQ(st.cell_count(), 1u);
  EXPECT_NE(st.find(fp, cfg_a), nullptr);
  EXPECT_NE(st.find(fp, cfg_b), nullptr);
  std::remove(path.c_str());
}

}  // namespace
