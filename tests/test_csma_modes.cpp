// Tests for the CSMA access modes (χMAC.AM): non-persistent (the
// paper's TunableMAC configuration) vs persistent (ablation option).
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "channel/channel.hpp"
#include "des/kernel.hpp"
#include "net/csma.hpp"
#include "net/medium.hpp"

namespace hi::net {
namespace {

class CsmaModes : public ::testing::Test {
 protected:
  void build(model::CsmaAccessMode mode_a, model::CsmaAccessMode mode_b) {
    for (int i = 0; i < 3; ++i) {
      for (int j = i + 1; j < 3; ++j) {
        matrix_.set_db(i, j, 60.0);
      }
    }
    channel_.emplace(matrix_);
    medium_.emplace(kernel_, *channel_);
    const model::CsmaAccessMode modes[2] = {mode_a, mode_b};
    for (int i = 0; i < 3; ++i) {
      radios_.push_back(
          std::make_unique<Radio>(kernel_, *medium_, i, RadioParams{}));
      medium_->attach(radios_.back().get());
      if (i < 2) {
        CsmaParams cp;
        cp.access_mode = modes[i];
        macs_.push_back(std::make_unique<CsmaMac>(
            kernel_, *radios_.back(), 16, cp,
            Rng{static_cast<std::uint64_t>(i) + 9}));
      }
    }
  }

  static Packet make_packet(int origin) {
    Packet p;
    p.origin = origin;
    p.sender = origin;
    p.bytes = 100;
    return p;
  }

  des::Kernel kernel_;
  channel::PathLossMatrix matrix_;
  std::optional<channel::StaticChannel> channel_;
  std::optional<Medium> medium_;
  std::vector<std::unique_ptr<Radio>> radios_;
  std::vector<std::unique_ptr<CsmaMac>> macs_;
};

TEST_F(CsmaModes, PersistentRetriesFasterThanNonPersistent) {
  build(model::CsmaAccessMode::kNonPersistent,
        model::CsmaAccessMode::kPersistent);
  // Node 0 (non-persistent) occupies the channel; node 1 (persistent)
  // wants in mid-transmission and should grab the channel right after
  // it frees, i.e. with far more (cheap) sense polls than backoffs.
  macs_[0]->enqueue(make_packet(0));
  double one_done = -1.0;
  int got = 0;
  radios_[2]->on_receive = [&](const Packet& p) {
    ++got;
    if (p.origin == 1) one_done = kernel_.now();
  };
  kernel_.schedule_at(500e-6, [&] { macs_[1]->enqueue(make_packet(1)); });
  kernel_.run_until(1.0);
  EXPECT_EQ(got, 2);
  // Persistent: senses every 100 us, transmits right after ~981 us end of
  // the first packet (+turnaround+airtime ~ 1 ms): well before 3 ms.
  EXPECT_LT(one_done, 3e-3);
  EXPECT_GE(macs_[1]->stats().backoffs, 2u);  // several quick re-senses
}

TEST_F(CsmaModes, NonPersistentBackoffSpreadsRetries) {
  build(model::CsmaAccessMode::kPersistent,
        model::CsmaAccessMode::kNonPersistent);
  macs_[0]->enqueue(make_packet(0));
  double one_done = -1.0;
  radios_[2]->on_receive = [&](const Packet& p) {
    if (p.origin == 1) one_done = kernel_.now();
  };
  kernel_.schedule_at(500e-6, [&] { macs_[1]->enqueue(make_packet(1)); });
  kernel_.run_until(1.0);
  ASSERT_GE(one_done, 0.0);
  // Non-persistent waits a random slice of the 5 ms window per retry.
  EXPECT_GE(macs_[1]->stats().backoffs, 1u);
}

TEST_F(CsmaModes, BothModesDeliverUnderLightLoad) {
  build(model::CsmaAccessMode::kNonPersistent,
        model::CsmaAccessMode::kPersistent);
  int got = 0;
  radios_[2]->on_receive = [&](const Packet&) { ++got; };
  for (int i = 0; i < 5; ++i) {
    kernel_.schedule_at(i * 0.01, [&, i] {
      macs_[i % 2]->enqueue(make_packet(i % 2));
    });
  }
  kernel_.run_until(1.0);
  EXPECT_EQ(got, 5);
}

}  // namespace
}  // namespace hi::net
