// End-to-end properties of the full stack on the default calibrated
// body channel: the orderings the paper's design example rests on
// (Fig. 3's structure) must hold in simulation, not just in the
// analytic models.
#include <gtest/gtest.h>

#include "dse/evaluator.hpp"
#include "dse/explorer.hpp"
#include "model/power.hpp"

namespace hi::dse {
namespace {

class DseIntegration : public ::testing::Test {
 protected:
  static Evaluator& eval() {
    // Shared across tests: results are cached, counters irrelevant here.
    static EvaluatorSettings settings = [] {
      EvaluatorSettings s;
      s.sim.duration_s = 120.0;
      s.sim.seed = 404;
      s.runs = 3;
      return s;
    }();
    static Evaluator instance(settings);
    return instance;
  }

  static const Evaluation& run(int tx_level, model::MacProtocol mac,
                               model::RoutingProtocol rt,
                               std::initializer_list<int> locs = {0, 1, 3,
                                                                  5}) {
    model::Scenario sc;
    return eval().evaluate(
        sc.make_config(model::Topology::from_locations(locs), tx_level, mac,
                       rt));
  }
};

TEST_F(DseIntegration, PdrRisesWithTxPower) {
  // Fig. 3: higher Tx power buys reliability, for both MACs.
  for (const auto mac :
       {model::MacProtocol::kCsma, model::MacProtocol::kTdma}) {
    double prev = -1.0;
    for (int lvl = 0; lvl < 3; ++lvl) {
      const double pdr =
          run(lvl, mac, model::RoutingProtocol::kStar).pdr;
      EXPECT_GT(pdr, prev) << "mac=" << model::to_string(mac)
                           << " lvl=" << lvl;
      prev = pdr;
    }
  }
}

TEST_F(DseIntegration, LifetimeFallsWithTxPower) {
  double prev = 1e18;
  for (int lvl = 0; lvl < 3; ++lvl) {
    const double nlt =
        run(lvl, model::MacProtocol::kTdma, model::RoutingProtocol::kStar)
            .nlt_s;
    EXPECT_LT(nlt, prev);
    prev = nlt;
  }
}

TEST_F(DseIntegration, MeshTdmaBeatsStarOnReliability) {
  // The crossover mechanism: at full power, the collision-free mesh
  // clearly out-delivers the star (path diversity vs deep fades)...
  const double star =
      run(2, model::MacProtocol::kTdma, model::RoutingProtocol::kStar).pdr;
  const double mesh =
      run(2, model::MacProtocol::kTdma, model::RoutingProtocol::kMesh).pdr;
  EXPECT_GT(mesh, star);
  EXPECT_GT(mesh, 0.99);
}

TEST_F(DseIntegration, MeshPaysWithLifetime) {
  // ...but costs several times the power (NreTx relays + receptions).
  const auto& star =
      run(2, model::MacProtocol::kTdma, model::RoutingProtocol::kStar);
  const auto& mesh =
      run(2, model::MacProtocol::kTdma, model::RoutingProtocol::kMesh);
  EXPECT_LT(mesh.nlt_s, 0.6 * star.nlt_s);
}

TEST_F(DseIntegration, CsmaCollisionsCapTheMesh) {
  // Relay storms collide under CSMA: the mesh's reliability gain mostly
  // evaporates, which is why the paper's highest-reliability points need
  // TDMA.
  const double mesh_csma =
      run(2, model::MacProtocol::kCsma, model::RoutingProtocol::kMesh).pdr;
  const double mesh_tdma =
      run(2, model::MacProtocol::kTdma, model::RoutingProtocol::kMesh).pdr;
  EXPECT_LT(mesh_csma, mesh_tdma - 0.02);
}

TEST_F(DseIntegration, FifthNodeAddsRedundancy) {
  // Paper Sec. 4.2: a fifth node raises the mesh PDR further at a steep
  // lifetime cost.
  const auto& four =
      run(2, model::MacProtocol::kTdma, model::RoutingProtocol::kMesh);
  const auto& five = run(2, model::MacProtocol::kTdma,
                         model::RoutingProtocol::kMesh, {0, 1, 3, 5, 7});
  EXPECT_GE(five.pdr, four.pdr);
  EXPECT_LT(five.nlt_s, four.nlt_s);
}

TEST_F(DseIntegration, SimulatedPowerTracksAnalyticOrdering) {
  // The MILP's coarse model must rank configuration classes like the
  // simulator does, or Algorithm 1's level order would be useless.
  model::Scenario sc;
  const auto t = model::Topology::from_locations({0, 1, 3, 5});
  double prev_sim = 0.0, prev_ana = 0.0;
  for (const auto rt :
       {model::RoutingProtocol::kStar, model::RoutingProtocol::kMesh}) {
    const auto cfg = sc.make_config(t, 2, model::MacProtocol::kTdma, rt);
    const double sim = eval().evaluate(cfg).power_mw;
    const double ana = model::node_power_mw(cfg);
    EXPECT_GT(sim, prev_sim);
    EXPECT_GT(ana, prev_ana);
    EXPECT_LE(sim, ana * 1.05);  // analytic is an (approximate) ceiling
    prev_sim = sim;
    prev_ana = ana;
  }
}

TEST_F(DseIntegration, AnalyticLevelsAscendThroughAlgorithmIterations) {
  // Algorithm 1 explores power levels in ascending analytic order; the
  // recorded history must honour that.
  model::Scenario sc;
  sc.max_nodes = 5;
  ExplorationOptions opt;
  opt.pdr_min = 0.95;
  const ExplorationResult res = run_algorithm1(sc, eval(), opt);
  double prev = 0.0;
  for (const CandidateRecord& rec : res.history) {
    EXPECT_GE(rec.analytic_power_mw, prev - 1e-9);
    prev = std::max(prev, rec.analytic_power_mw);
  }
}

TEST_F(DseIntegration, SnapshotSimulationCountMatchesLegacyField) {
  // The observability contract at integration scale: the run snapshot's
  // dse.simulations counter equals the legacy scalar field exactly, even
  // on a warm shared evaluator where most evaluations are cache hits.
  model::Scenario sc;
  sc.max_nodes = 5;
  ExplorationOptions opt;
  opt.pdr_min = 0.95;
  const ExplorationResult res = run_algorithm1(sc, eval(), opt);
  EXPECT_EQ(res.metrics.counter("dse.simulations"), res.simulations);
  EXPECT_EQ(res.metrics.counter("milp.bnb_nodes"), res.milp_bnb_nodes);
  EXPECT_GT(res.milp_bnb_nodes, 0u);
  EXPECT_FALSE(res.metrics.empty());
}

TEST_F(DseIntegration, DefaultScenarioLadderIsTheExpectedShape) {
  // The headline qualitative reproduction, end to end at test scale:
  // low bound -> star at low Tx power; high bound -> mesh TDMA.
  model::Scenario sc;
  ExplorationOptions low;
  low.pdr_min = 0.55;
  const ExplorationResult lo = run_algorithm1(sc, eval(), low);
  ASSERT_TRUE(lo.feasible);
  EXPECT_EQ(lo.best.routing.protocol, model::RoutingProtocol::kStar);
  EXPECT_LT(lo.best.radio.tx_dbm, 0.0);

  ExplorationOptions high;
  high.pdr_min = 0.99;
  const ExplorationResult hi_res = run_algorithm1(sc, eval(), high);
  ASSERT_TRUE(hi_res.feasible);
  EXPECT_EQ(hi_res.best.routing.protocol, model::RoutingProtocol::kMesh);
  EXPECT_EQ(hi_res.best.mac.protocol, model::MacProtocol::kTdma);
  EXPECT_DOUBLE_EQ(hi_res.best.radio.tx_dbm, 0.0);
  // Reliability costs lifetime (Fig. 3's negative slope).
  EXPECT_LT(hi_res.best_nlt_s, lo.best_nlt_s);
}

}  // namespace
}  // namespace hi::dse
