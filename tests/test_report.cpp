// Unit tests for the exploration-result reporting (dse/report.hpp).
#include "dse/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "dse/explorer.hpp"

namespace hi::dse {
namespace {

ExplorationResult tiny_result() {
  EvaluatorSettings s;
  s.sim.duration_s = 5.0;
  s.sim.seed = 3;
  s.runs = 1;
  Evaluator ev(s);
  model::Scenario sc;
  sc.max_nodes = 4;
  ExplorationOptions opt;
  opt.pdr_min = 0.0;
  return run_exhaustive(sc, ev, opt);
}

TEST(Report, CsvHasHeaderAndOneRowPerCandidate) {
  const ExplorationResult res = tiny_result();
  std::ostringstream oss;
  write_history_csv(res, oss);
  const std::string csv = oss.str();
  std::size_t lines = 0;
  for (char c : csv) lines += c == '\n';
  EXPECT_EQ(lines, res.history.size() + 1);  // header + rows
  EXPECT_NE(csv.find("sim_pdr"), std::string::npos);
  EXPECT_NE(csv.find("Star"), std::string::npos);
  EXPECT_NE(csv.find("Mesh"), std::string::npos);
}

TEST(Report, CsvQuotesLabels) {
  const ExplorationResult res = tiny_result();
  std::ostringstream oss;
  write_history_csv(res, oss);
  // Labels contain commas; they must be quoted to stay one CSV field.
  EXPECT_NE(oss.str().find("\"[0,"), std::string::npos);
}

TEST(Report, SummaryFeasible) {
  ExplorationResult res = tiny_result();
  res.feasible = true;
  res.best = res.history.front().cfg;
  res.best_pdr = 0.93;
  res.best_nlt_s = 86'400.0 * 20;
  res.best_power_mw = 1.234;
  const std::string s = summarize(res, 0.9);
  EXPECT_NE(s.find("93.0%"), std::string::npos);
  EXPECT_NE(s.find("20.0 days"), std::string::npos);
  EXPECT_NE(s.find("1.234 mW"), std::string::npos);
}

TEST(Report, ParetoFrontIsNonDominatedStaircase) {
  const ExplorationResult res = tiny_result();
  const std::vector<CandidateRecord> front = pareto_front(res.history);
  ASSERT_GE(front.size(), 2u);
  for (std::size_t i = 1; i < front.size(); ++i) {
    // Ascending PDR, strictly descending NLT.
    EXPECT_GE(front[i].sim_pdr, front[i - 1].sim_pdr);
    EXPECT_LT(front[i].sim_nlt_s, front[i - 1].sim_nlt_s);
  }
  // No history point dominates a front point.
  for (const CandidateRecord& f : front) {
    for (const CandidateRecord& h : res.history) {
      EXPECT_FALSE(h.sim_pdr > f.sim_pdr && h.sim_nlt_s > f.sim_nlt_s)
          << h.cfg.label() << " dominates " << f.cfg.label();
    }
  }
}

TEST(Report, ParetoFrontCollapsesDuplicates) {
  ExplorationResult res = tiny_result();
  // Duplicate the whole history: the front must not change size.
  const std::vector<CandidateRecord> once = pareto_front(res.history);
  auto twice_hist = res.history;
  twice_hist.insert(twice_hist.end(), res.history.begin(),
                    res.history.end());
  const std::vector<CandidateRecord> twice = pareto_front(twice_hist);
  EXPECT_EQ(once.size(), twice.size());
}

TEST(Report, ParetoFrontOfEmptyHistoryIsEmpty) {
  EXPECT_TRUE(pareto_front({}).empty());
}

TEST(Report, SummaryInfeasible) {
  ExplorationResult res;
  res.feasible = false;
  res.simulations = 42;
  const std::string s = summarize(res, 0.99);
  EXPECT_NE(s.find("infeasible"), std::string::npos);
  EXPECT_NE(s.find("99.0%"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
}

}  // namespace
}  // namespace hi::dse
