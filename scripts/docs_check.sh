#!/usr/bin/env bash
# Documentation consistency check.
#
#   scripts/docs_check.sh
#
# Verifies four invariants that otherwise rot silently:
#   1. Every subsystem directory `src/<name>` has a DESIGN.md §2
#      inventory row (a table row quoting `src/<name>`), not merely a
#      passing mention.
#   2. Every repo-relative file path mentioned in README.md or DESIGN.md
#      (backtick-quoted, e.g. `src/des/kernel.hpp` or `scripts/bench.sh`)
#      resolves to a real file or directory — so the docs' cross-links
#      never point at renamed or deleted code.
#   3. Every report schema name the docs quote (`hi-<name>/v<N>`) is
#      emitted somewhere in the source tree — a renamed schema must
#      rename its documentation.
#   4. Every committed benchmark baseline the docs reference
#      (`BENCH_<name>.json`) exists at the repo root.
# Paths under build*/ (generated trees) and placeholders containing
# <...> or * are exempt.
set -euo pipefail

cd "$(dirname "$0")/.."

status=0
doc_files=(README.md DESIGN.md EXPERIMENTS.md)

# --- 1. every src subsystem has a DESIGN.md §2 inventory row -------------
for dir in src/*/; do
  name="$(basename "${dir}")"
  if ! grep -qE "^\| [0-9]+ \| .src/${name}. \|" DESIGN.md; then
    echo "docs_check: FAIL: src/${name} has no DESIGN.md §2 inventory row" >&2
    status=1
  fi
done

# --- 2. backticked file paths in README.md / DESIGN.md resolve -----------
# A "path" is a backticked token with at least one '/' or a known
# top-level doc/config file, made only of path-safe characters.
paths="$(grep -ohE '`[A-Za-z0-9_][A-Za-z0-9_./-]*`' README.md DESIGN.md \
         | tr -d '\`' \
         | grep -E '/|^[A-Z]+[A-Za-z_]*\.(md|json)$|^CMakeLists\.txt$' \
         | grep -vE '^(build|http|https)' \
         | sort -u)"
for p in ${paths}; do
  # Trailing slash = directory reference; tokens with an extension-less
  # last component that are not on disk are treated as identifiers
  # (e.g. `hi::obs`, `a/b` ratios) only when they contain no '.' at all
  # and no such file exists — otherwise flag them.
  candidate="${p%/}"
  # Accept three spellings: the literal repo-relative path, an include
  # path relative to src/ (docs quote headers as `obs/trace.hpp`), and a
  # binary target named after its source (`bench/bench_table1_radio`,
  # `tools/hi_campaign`).
  if [[ -e "${candidate}" || -e "src/${candidate}" ||
        -e "${candidate}.cpp" ]]; then
    continue
  fi
  # Only enforce tokens that look like real file references: they have a
  # file extension somewhere or start with a known tree root.
  if [[ "${candidate}" == */*.* || "${candidate}" =~ ^(src|tests|bench|scripts|tools|examples)/ || "${candidate}" =~ ^[A-Z]+[A-Za-z_]*\.(md|json)$ || "${candidate}" == "CMakeLists.txt" ]]; then
    echo "docs_check: FAIL: ${candidate} referenced in docs but not on disk" >&2
    status=1
  fi
done

# --- 3. every schema name quoted in docs is emitted by the tree ----------
schemas="$(grep -ohE 'hi-[a-z0-9-]+/v[0-9]+' "${doc_files[@]}" | sort -u)"
for s in ${schemas}; do
  if ! grep -rqF "${s}" src/ tools/ bench/; then
    echo "docs_check: FAIL: schema ${s} quoted in docs but emitted nowhere" >&2
    status=1
  fi
done

# --- 4. every benchmark baseline referenced in docs is committed ---------
benches="$(grep -ohE 'BENCH_[A-Za-z0-9_]+\.json' "${doc_files[@]}" | sort -u)"
for b in ${benches}; do
  if [[ ! -f "${b}" ]]; then
    echo "docs_check: FAIL: ${b} referenced in docs but not committed" >&2
    status=1
  fi
done

if [[ "${status}" != 0 ]]; then
  echo "docs_check: FAILED" >&2
  exit 1
fi
echo "docs_check: OK (inventory rows, doc paths, schemas, bench baselines)"
