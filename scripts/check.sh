#!/usr/bin/env bash
# Runs the tier-1 test suite under AddressSanitizer and ThreadSanitizer
# in sequence — the pre-merge confidence sweep for the concurrency and
# memory-safety guarantees the code comments promise — plus a
# store-recovery fuzz sweep (hi::store corruption handling under ASan,
# wider than the tier-1 smoke run).
#
#   scripts/check.sh [--extended] [extra ctest args...]
#
# --extended additionally runs the `extended` ctest label (the long
# fuzz_dse / fuzz_store sweeps) in both sanitizer trees.
#
# Build trees live in build-address/ and build-thread/ next to build/
# (all three are gitignored); each is configured on first use and
# reused afterwards.
#
# Also runs the cheap documentation-consistency check (docs_check.sh)
# up front and the quick perf-regression smoke (bench.sh --quick, 40%
# tolerance against the committed BENCH_*.json baselines) at the end.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> docs_check"
./scripts/docs_check.sh

extended=0
if [[ "${1:-}" == "--extended" ]]; then
  extended=1
  shift
fi

run_suite() {
  local sanitizer="$1"
  shift
  local dir="build-${sanitizer}"
  echo "==> ${sanitizer}: configure + build (${dir})"
  cmake -B "${dir}" -S . -DHI_SANITIZE="${sanitizer}" \
        -DHI_BUILD_BENCH=OFF -DHI_BUILD_EXAMPLES=OFF
  cmake --build "${dir}" -j "$(nproc)"
  echo "==> ${sanitizer}: ctest -L tier1"
  ctest --test-dir "${dir}" -L tier1 --output-on-failure -j "$(nproc)" "$@"
  if [[ "${extended}" == 1 ]]; then
    echo "==> ${sanitizer}: ctest -L extended"
    ctest --test-dir "${dir}" -L extended --output-on-failure \
          -j "$(nproc)" "$@"
  fi
}

run_suite address "$@"
run_suite thread "$@"

# Store-recovery fuzzing beyond the tier-1 smoke run: seeded torn-write /
# bit-flip corruption against hi::store's recovery contract, under ASan
# so any parsing overrun in the framing or codecs is caught outright.
echo "==> address: fuzz_store recovery sweep"
fuzz_dir="$(mktemp -d)"
trap 'rm -rf "${fuzz_dir}"' EXIT
./build-address/tests/fuzz_store --seed 1 --scenarios 25 --trials 12 \
                                 --dir "${fuzz_dir}"

# Robustness property sweep beyond the tier-1 smoke run: the Γ>0
# battery (Bertsimas–Sim counterpart differential, robust Alg 1 vs
# robust exhaustive, Γ/K monotonicity, Γ=0 collapse) at a deeper
# protection budget and realization fold, under ASan.  The full
# 200-seed acceptance sweep is ctest's fuzz_dse_robust_extended.
echo "==> address: fuzz_dse robust sweep"
./build-address/tests/fuzz_dse --seed 1 --scenarios 40 --gamma 2 \
                               --realizations 3

# Campaign-fabric crash smoke: a 2-worker mini-campaign in which worker
# 0 SIGKILLs itself after its first checkpoint (--kill-slot) and
# --no-steal pins its row, so the first run must end incomplete (exit
# 3).  The --resume run recovers the dead worker's claim, completes the
# grid (exit 0) with the takeover visible in fleet.json, and the merged
# store must audit clean.  Runs the ASan-built CLI: the whole fork /
# claim / merge path is swept for memory errors too.
echo "==> campaign fabric crash/resume smoke (ASan CLI)"
fabric_dir="${fuzz_dir}/fabric-smoke"
fabric_cli=./build-address/tools/hi_campaign
fabric_grid=(--gen-seed 5 --gen-seed 6 --pdr-min 0.5,0.7 --json)
fabric_rc=0
"${fabric_cli}" --shard-dir "${fabric_dir}" --workers 2 --no-steal \
     --kill-slot 0 --kill-after-cells 1 "${fabric_grid[@]}" >/dev/null \
  || fabric_rc=$?
if [[ "${fabric_rc}" != 3 ]]; then
  echo "fabric smoke: killed fleet exited ${fabric_rc}, expected 3" >&2
  exit 1
fi
"${fabric_cli}" --shard-dir "${fabric_dir}" --workers 2 --resume \
                "${fabric_grid[@]}" >/dev/null
grep -q '"complete": true' "${fabric_dir}/fleet.json"
grep -Eq '"recoveries": [1-9]' "${fabric_dir}/fleet.json"
"${fabric_cli}" --audit "${fabric_dir}/merged.store" >/dev/null

# Pareto frontier crash/resume smoke (DESIGN.md §14): a tiny generated
# scenario on the ASan-built CLI.  The first run SIGKILLs itself after
# one completed MILP round (--kill-after-rounds; the store is synced
# after every round first), so it must die on signal 9 (exit 137).  The
# rerun warm-starts from the same store, finishes the ladder (exit 0),
# and its report must show the store actually serving points.
echo "==> pareto frontier crash/resume smoke (ASan CLI)"
pareto_cli=./build-address/tools/hi_pareto
pareto_store="${fuzz_dir}/pareto-smoke.store"
pareto_args=(--gen-seed 7 --tsim 2 --runs 1 --pdr-min 0.5,0.7,0.9)
pareto_rc=0
"${pareto_cli}" "${pareto_args[@]}" --store "${pareto_store}" \
     --kill-after-rounds 1 >/dev/null || pareto_rc=$?
if [[ "${pareto_rc}" != 137 ]]; then
  echo "pareto smoke: killed run exited ${pareto_rc}, expected 137" >&2
  exit 1
fi
pareto_out="${fuzz_dir}/pareto-smoke.json"
"${pareto_cli}" "${pareto_args[@]}" --store "${pareto_store}" \
     --out "${pareto_out}"
grep -q '"schema": "hi-pareto/v1"' "${pareto_out}"
grep -q '"complete": true' "${pareto_out}"
grep -Eq '"store_hits": [1-9]' "${pareto_out}"

# Crowd sweep crash/resume smoke (DESIGN.md §15): a short M=1..3 sweep
# on the ASan-built CLI.  The first run SIGKILLs itself after one
# completed point (--kill-after-points; the store is synced after every
# point first), so it must die on signal 9 (exit 137).  The --resume
# rerun must serve the completed point from the store (one hit, two
# fresh simulations — no re-simulation of finished work) and finish the
# sweep; a second, fully-warm rerun must then be pure hits.
echo "==> crowd sweep crash/resume smoke (ASan CLI)"
crowd_cli=./build-address/tools/hi_crowd
crowd_store="${fuzz_dir}/crowd-smoke.store"
crowd_args=(--list 1,2,3 --tsim 2 --runs 1 --seed 5)
crowd_rc=0
"${crowd_cli}" "${crowd_args[@]}" --store "${crowd_store}" \
     --kill-after-points 1 >/dev/null || crowd_rc=$?
if [[ "${crowd_rc}" != 137 ]]; then
  echo "crowd smoke: killed run exited ${crowd_rc}, expected 137" >&2
  exit 1
fi
crowd_out="${fuzz_dir}/crowd-smoke.json"
"${crowd_cli}" "${crowd_args[@]}" --store "${crowd_store}" --resume \
     --out "${crowd_out}"
grep -q '"schema": "hi-crowd/v1"' "${crowd_out}"
grep -q '"complete": true' "${crowd_out}"
grep -q '"store": {"store_hits": 1, "simulations": 2}' "${crowd_out}"
"${crowd_cli}" "${crowd_args[@]}" --store "${crowd_store}" --resume \
     --out "${crowd_out}"
grep -q '"store": {"store_hits": 3, "simulations": 0}' "${crowd_out}"
if grep -q '"from_store": false' "${crowd_out}"; then
  echo "crowd smoke: warm rerun re-simulated a completed point" >&2
  exit 1
fi

# Perf-regression smoke: scaled-down benches gated at 40% against the
# committed baselines (full-precision gate: scripts/bench.sh, 10%).
echo "==> bench smoke (scripts/bench.sh --quick)"
./scripts/bench.sh --quick

echo "==> all sanitizer suites passed"
