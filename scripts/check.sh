#!/usr/bin/env bash
# Runs the tier-1 test suite under AddressSanitizer and ThreadSanitizer
# in sequence — the pre-merge confidence sweep for the concurrency and
# memory-safety guarantees the code comments promise.
#
#   scripts/check.sh [extra ctest args...]
#
# Build trees live in build-address/ and build-thread/ next to build/
# (all three are gitignored); each is configured on first use and
# reused afterwards.
set -euo pipefail

cd "$(dirname "$0")/.."

run_suite() {
  local sanitizer="$1"
  shift
  local dir="build-${sanitizer}"
  echo "==> ${sanitizer}: configure + build (${dir})"
  cmake -B "${dir}" -S . -DHI_SANITIZE="${sanitizer}" \
        -DHI_BUILD_BENCH=OFF -DHI_BUILD_EXAMPLES=OFF
  cmake --build "${dir}" -j "$(nproc)"
  echo "==> ${sanitizer}: ctest -L tier1"
  ctest --test-dir "${dir}" -L tier1 --output-on-failure -j "$(nproc)" "$@"
}

run_suite address "$@"
run_suite thread "$@"
echo "==> all sanitizer suites passed"
