#!/usr/bin/env bash
# Canonical perf-benchmark runner and regression gate (DESIGN.md §11).
#
#   scripts/bench.sh          full run: rebuild, run the five perf
#                             benches with pinned seeds, validate the
#                             hi-bench/v1 schema, gate against the
#                             committed BENCH_*.json baselines (>10%
#                             regression on any gated metric fails),
#                             then refresh the baselines in place.
#   scripts/bench.sh --quick  CI smoke: scaled-down workloads
#                             (HI_BENCH_QUICK=1), wider 40% tolerance,
#                             reports written to a temp dir; committed
#                             baselines are never touched.
#
# Environment: HI_BENCH_TOLERANCE overrides the gate tolerance.
# Benches: bench_des_perf (DES kernel + end-to-end sim + channel),
# bench_milp_perf (simplex / branch-and-bound / DSE MILP round),
# bench_parallel_speedup (hi::exec thread sweep + determinism gate),
# bench_campaign_fabric (claim protocol, shard merge, 2-worker fleet),
# bench_robust_dse (multi-realization K sweep, robust Alg 1 vs
# fast-ILP), bench_fig3_tradeoff (paper Fig. 3 scatter + arrows),
# bench_optimal_vs_pdrmin (Sec. 4.2 PDRmin ladder),
# bench_pareto_front (exhaustive vs ladder Pareto front).
set -euo pipefail

cd "$(dirname "$0")/.."

quick=0
if [[ "${1:-}" == "--quick" ]]; then
  quick=1
  shift
fi

tolerance="${HI_BENCH_TOLERANCE:-}"
if [[ -z "${tolerance}" ]]; then
  if [[ "${quick}" == 1 ]]; then tolerance=0.40; else tolerance=0.10; fi
fi

build_dir=build
cmake -B "${build_dir}" -S . -DHI_BUILD_BENCH=ON >/dev/null
cmake --build "${build_dir}" -j "$(nproc)" \
      --target bench_des_perf bench_milp_perf bench_parallel_speedup \
               bench_campaign_fabric bench_robust_dse \
               bench_fig3_tradeoff bench_optimal_vs_pdrmin \
               bench_pareto_front

if [[ "${quick}" == 1 ]]; then
  out_dir="$(mktemp -d)"
  trap 'rm -rf "${out_dir}"' EXIT
  export HI_BENCH_QUICK=1
  # Short thread sweep so the smoke run stays fast on small CI boxes.
  parallel_env=(HI_TSIM=2 HI_THREADS_MAX=2)
  echo "==> quick mode: reports in ${out_dir}, tolerance ${tolerance}"
else
  out_dir="$(mktemp -d)"
  trap 'rm -rf "${out_dir}"' EXIT
  # Pinned settings — the committed baselines' exact-gated metrics
  # (simulation counts, best power) are only reproducible under these.
  parallel_env=(HI_TSIM=5 HI_THREADS_MAX=2)
  echo "==> full mode: tolerance ${tolerance}, baselines refreshed on pass"
fi

declare -A bench_env=(
  [des_perf]=""
  [milp_perf]=""
  [parallel]="${parallel_env[*]}"
  [campaign]=""
  [robust]=""
  [fig3]=""
  [pdrmin]=""
  [pareto]=""
)
status=0
for name in des_perf milp_perf parallel campaign robust fig3 pdrmin pareto; do
  bin="${build_dir}/bench/bench_${name}"
  [[ "${name}" == parallel ]] && bin="${build_dir}/bench/bench_parallel_speedup"
  [[ "${name}" == campaign ]] && bin="${build_dir}/bench/bench_campaign_fabric"
  [[ "${name}" == robust ]] && bin="${build_dir}/bench/bench_robust_dse"
  [[ "${name}" == fig3 ]] && bin="${build_dir}/bench/bench_fig3_tradeoff"
  [[ "${name}" == pdrmin ]] && bin="${build_dir}/bench/bench_optimal_vs_pdrmin"
  [[ "${name}" == pareto ]] && bin="${build_dir}/bench/bench_pareto_front"
  new="${out_dir}/BENCH_${name}.json"
  echo "==> running bench_${name}"
  env ${bench_env[${name}]} "${bin}" > "${new}"
  python3 scripts/bench_gate.py validate "${new}"
  base="BENCH_${name}.json"
  if [[ -f "${base}" ]]; then
    if ! python3 scripts/bench_gate.py compare "${base}" "${new}" \
         --tolerance "${tolerance}"; then
      status=1
      continue
    fi
  else
    echo "==> no committed baseline ${base}; skipping gate"
  fi
  if [[ "${quick}" == 0 ]]; then
    cp "${new}" "${base}"
    echo "==> refreshed ${base}"
  fi
done

if [[ "${status}" != 0 ]]; then
  echo "==> bench gate FAILED (see bench_gate output above)" >&2
  exit 1
fi
echo "==> all bench gates passed"
