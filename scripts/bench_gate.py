#!/usr/bin/env python3
"""Schema validator and regression gate for hi-bench/v1 reports.

Usage:
  bench_gate.py validate FILE
      Exit 0 iff FILE is a well-formed hi-bench/v1 document.
  bench_gate.py compare BASE NEW [--tolerance T]
      Exit 0 iff no gated metric in NEW regressed against BASE by more
      than T (default 0.10).  A metric is gated when `gate` is true in
      BOTH files — quick runs mark their non-comparable (extensive)
      metrics gate=false, which exempts them here without loosening the
      committed baseline.  Gate rules by `better`:
        higher: fail if new < base * (1 - T)
        lower:  fail if new > base * (1 + T)
        exact:  fail unless new == base (bit-for-bit; deterministic
                outputs such as simulation counts and optimizer results)
      A gated baseline metric missing from NEW is a failure: renaming or
      dropping a metric must be an explicit baseline update, not a
      silent pass.

Schema and workflow: DESIGN.md section 11; runner: scripts/bench.sh.
Stdlib only — no third-party packages.
"""

import argparse
import json
import sys

SCHEMA = "hi-bench/v1"
BETTER = ("higher", "lower", "exact")


def fail(msg):
    print(f"bench_gate: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")


def check_schema(doc, path):
    def need(cond, what):
        if not cond:
            fail(f"{path}: {what}")

    need(isinstance(doc, dict), "top level is not an object")
    need(doc.get("schema") == SCHEMA, f'"schema" must be "{SCHEMA}"')
    need(isinstance(doc.get("bench"), str) and doc["bench"],
         '"bench" must be a non-empty string')
    need(isinstance(doc.get("quick"), bool), '"quick" must be a boolean')
    settings = doc.get("settings")
    need(isinstance(settings, dict), '"settings" must be an object')
    for key in ("tsim_s", "runs", "seed"):
        need(isinstance(settings.get(key), (int, float))
             and not isinstance(settings.get(key), bool),
             f'settings.{key} must be a number')
    metrics = doc.get("metrics")
    need(isinstance(metrics, list) and metrics,
         '"metrics" must be a non-empty array')
    seen = set()
    for i, m in enumerate(metrics):
        where = f"metrics[{i}]"
        need(isinstance(m, dict), f"{where} is not an object")
        name = m.get("name")
        need(isinstance(name, str) and name,
             f"{where}.name must be a non-empty string")
        need(name not in seen, f"duplicate metric name {name!r}")
        seen.add(name)
        need(isinstance(m.get("unit"), str) and m["unit"],
             f"{where}.unit must be a non-empty string")
        need(isinstance(m.get("value"), (int, float))
             and not isinstance(m.get("value"), bool),
             f"{where}.value must be a number")
        need(m.get("better") in BETTER,
             f"{where}.better must be one of {BETTER}")
        need(isinstance(m.get("gate"), bool),
             f"{where}.gate must be a boolean")
        need(isinstance(m.get("items"), int) and m["items"] >= 0,
             f"{where}.items must be a non-negative integer")
        need(isinstance(m.get("wall_s"), (int, float))
             and not isinstance(m.get("wall_s"), bool) and m["wall_s"] >= 0,
             f"{where}.wall_s must be a non-negative number")


def cmd_validate(args):
    doc = load(args.file)
    check_schema(doc, args.file)
    print(f"bench_gate: OK: {args.file} is valid {SCHEMA} "
          f"({len(doc['metrics'])} metrics)")


def cmd_compare(args):
    base = load(args.base)
    new = load(args.new)
    check_schema(base, args.base)
    check_schema(new, args.new)
    if base["bench"] != new["bench"]:
        fail(f'bench mismatch: {base["bench"]!r} vs {new["bench"]!r}')
    tol = args.tolerance
    new_by_name = {m["name"]: m for m in new["metrics"]}
    failures = []
    compared = 0
    for bm in base["metrics"]:
        if not bm["gate"]:
            continue
        nm = new_by_name.get(bm["name"])
        if nm is None:
            failures.append(f'{bm["name"]}: missing from {args.new}')
            continue
        if not nm["gate"]:  # quick run marked it non-comparable
            continue
        compared += 1
        bv, nv = bm["value"], nm["value"]
        if bm["better"] == "exact":
            if nv != bv:
                failures.append(
                    f'{bm["name"]}: exact mismatch (base {bv!r}, new {nv!r})')
        elif bm["better"] == "higher":
            if nv < bv * (1.0 - tol):
                failures.append(
                    f'{bm["name"]}: regressed {bv:.6g} -> {nv:.6g} '
                    f"({nv / bv - 1.0:+.1%}, tolerance -{tol:.0%})")
        else:  # lower
            if nv > bv * (1.0 + tol):
                failures.append(
                    f'{bm["name"]}: regressed {bv:.6g} -> {nv:.6g} '
                    f"({nv / bv - 1.0:+.1%}, tolerance +{tol:.0%})")
    for f in failures:
        print(f"bench_gate: FAIL: {f}", file=sys.stderr)
    if failures:
        sys.exit(1)
    print(f"bench_gate: OK: {new['bench']}: {compared} gated metrics "
          f"within {tol:.0%} of {args.base}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    sub = ap.add_subparsers(dest="cmd", required=True)
    v = sub.add_parser("validate")
    v.add_argument("file")
    v.set_defaults(func=cmd_validate)
    c = sub.add_parser("compare")
    c.add_argument("base")
    c.add_argument("new")
    c.add_argument("--tolerance", type=float, default=0.10)
    c.set_defaults(func=cmd_compare)
    args = ap.parse_args()
    args.func(args)


if __name__ == "__main__":
    main()
