// hi-opt: generic Bertsimas–Sim budgeted-uncertainty robust counterpart.
//
// Given a minimization MILP  min c·x  and per-variable objective
// deviations d_j >= 0 on binary variables, the Γ-robust problem asks
// for the x minimizing the worst case over deviation sets of size Γ:
//
//   min_x  c·x + max_{S ⊆ J, |S| <= Γ} Σ_{j in S} d_j x_j .
//
// Bertsimas & Sim (2004) dualize the inner max into a linear program,
// yielding the exact single-level counterpart this module builds:
//
//   min  c·x + Γ z + Σ_j p_j
//   s.t. z + p_j >= d_j x_j          for every deviation term j
//        z >= 0,  p_j >= 0,          original constraints unchanged.
//
// Exact for binary x (the inner max is a LP over the unit box whose
// vertices are subsets), which is the only case this API admits.  The
// DSE encoding (dse::MilpEncoding with gamma > 0) uses the closed-form
// specialization of the same protection; this generic form exists so
// hi::check can differentially test both against a brute-force
// worst-case enumerator on random instances (check/robust_oracle).
#pragma once

#include <vector>

#include "milp/model.hpp"

namespace hi::milp {

/// One budgeted-uncertainty deviation: objective coefficient of binary
/// variable `var` may grow by up to `dev` (>= 0).
struct DeviationTerm {
  int var = -1;
  double dev = 0.0;
};

/// Builds the Γ-robust counterpart of `m` (see file comment).  `m` must
/// be a minimization model and every deviation must reference a binary
/// variable; `gamma` >= 0 (0 returns a plain copy — same optimum, no
/// auxiliary variables).  Duplicate vars are allowed and act as
/// independent deviation terms.
[[nodiscard]] Model robust_counterpart(const Model& m,
                                       const std::vector<DeviationTerm>& devs,
                                       int gamma);

}  // namespace hi::milp
