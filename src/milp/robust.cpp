#include "milp/robust.hpp"

#include <algorithm>
#include <string>

#include "common/assert.hpp"

namespace hi::milp {

Model robust_counterpart(const Model& m, const std::vector<DeviationTerm>& devs,
                         int gamma) {
  HI_REQUIRE(gamma >= 0, "gamma must be >= 0, got " << gamma);
  HI_REQUIRE(m.lp().objective() == lp::Objective::kMinimize,
             "robust_counterpart requires a minimization model");
  Model rc = m;
  if (gamma == 0 || devs.empty()) {
    return rc;  // no protection budget: the nominal problem
  }
  double max_dev = 0.0;
  for (const DeviationTerm& t : devs) {
    HI_REQUIRE(t.var >= 0 && t.var < m.num_variables(),
               "deviation references variable " << t.var << " of "
                                                << m.num_variables());
    HI_REQUIRE(m.var_type(t.var) == VarType::kBinary,
               "deviation on non-binary variable " << t.var
                   << " (the counterpart is exact for binaries only)");
    HI_REQUIRE(t.dev >= 0.0, "deviation must be >= 0, got " << t.dev);
    max_dev = std::max(max_dev, t.dev);
  }
  // An optimal (z, p) always exists with z <= max_j d_j and
  // p_j = max(0, d_j x_j - z) <= d_j, so finite bounds lose nothing.
  const int z = rc.add_continuous(0.0, max_dev, static_cast<double>(gamma),
                                  "robust_z");
  for (std::size_t j = 0; j < devs.size(); ++j) {
    const DeviationTerm& t = devs[j];
    const int p = rc.add_continuous(0.0, t.dev, 1.0,
                                    "robust_p" + std::to_string(j));
    // z + p_j >= d_j x_j
    rc.add_constraint({{z, 1.0}, {p, 1.0}, {t.var, -t.dev}},
                      lp::Sense::kGreaterEqual, 0.0,
                      "robust_protect" + std::to_string(j));
  }
  return rc;
}

}  // namespace hi::milp
