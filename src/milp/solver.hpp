// hi-opt: branch-and-bound MILP solver with alternative-optimum
// enumeration (a "solution pool").
//
// RunMILP in Algorithm 1 needs *all* configurations that attain the
// minimum of the approximate power model, because configurations with
// equal analytic power can differ wildly in simulated PDR.
// solve_all_optimal() therefore first finds the optimum, then enumerates
// the remaining optima with no-good cuts over the binary variables.
#pragma once

#include <limits>
#include <vector>

#include "lp/simplex.hpp"
#include "milp/model.hpp"
#include "obs/metrics.hpp"

namespace hi::milp {

/// Solver knobs.
struct Options {
  double int_tol = 1e-6;    ///< integrality tolerance on LP solutions
  double gap_tol = 1e-7;    ///< two objective values within this are equal
  int max_nodes = 200'000;  ///< branch-and-bound node budget
  lp::SimplexOptions lp;    ///< inner LP options
  /// Variables branched first (in order) when fractional; remaining
  /// fractional variables are branched most-fractional-first.  Useful
  /// when a few structural binaries determine the objective.
  std::vector<int> branch_priority;
  /// When finite: prune nodes whose relaxation bound is worse than this
  /// objective value, and return the FIRST integral solution at least
  /// this good (it is optimal by construction).  This is how the
  /// solution pool avoids re-proving optimality for every alternative
  /// optimum.  NaN (default) disables the cutoff.
  double objective_cutoff = std::numeric_limits<double>::quiet_NaN();
  /// When non-null, every solve records `milp.solves`, `milp.bnb_nodes`,
  /// `milp.lp_pivots` counters and the `milp.solve_s` timing histogram
  /// (obs::MetricsRegistry; see DESIGN.md §8).  Null = no recording.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Result of a single MILP solve.
struct Solution {
  lp::Status status = lp::Status::kIterationLimit;
  double objective = 0.0;
  std::vector<double> x;
  int nodes = 0;           ///< branch-and-bound nodes processed
  int lp_iterations = 0;   ///< total simplex pivots across all nodes
};

/// Result of alternative-optimum enumeration.
struct Pool {
  lp::Status status = lp::Status::kIterationLimit;
  double objective = 0.0;                   ///< shared optimal value
  std::vector<std::vector<double>> solutions;  ///< distinct binary optima
  int nodes = 0;
  int lp_iterations = 0;   ///< total simplex pivots across all solves
  bool truncated = false;  ///< hit max_solutions before exhausting optima
};

/// Solves the MILP to optimality by branch and bound.
[[nodiscard]] Solution solve(const Model& model, const Options& opt = {});

/// Enumerates all optimal solutions that differ in their *binary*
/// variables.  The model must not contain general-integer variables (the
/// no-good enumeration scheme requires 0/1 support); continuous variables
/// are fine since the binaries determine them in our encodings.
[[nodiscard]] Pool solve_all_optimal(const Model& model,
                                     const Options& opt = {},
                                     int max_solutions = 1024);

}  // namespace hi::milp
