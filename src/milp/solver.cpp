#include "milp/solver.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/assert.hpp"
#include "obs/timer.hpp"

namespace hi::milp {

namespace {

/// Returns the index (into `ints`) of the most fractional integral
/// variable in x, or -1 when all are integral within tol.
int most_fractional(const std::vector<int>& ints, const std::vector<double>& x,
                    double tol) {
  int best = -1;
  double best_dist = tol;
  for (std::size_t k = 0; k < ints.size(); ++k) {
    const double v = x[static_cast<std::size_t>(ints[k])];
    const double frac = v - std::floor(v);
    const double dist = std::min(frac, 1.0 - frac);
    if (dist > best_dist) {
      best_dist = dist;
      best = static_cast<int>(k);
    }
  }
  return best;
}

/// Rounds integral variables of x to the nearest integer in place.
void snap_integrals(const std::vector<int>& ints, std::vector<double>& x) {
  for (int v : ints) {
    auto& xv = x[static_cast<std::size_t>(v)];
    xv = std::round(xv);
  }
}

struct Node {
  std::vector<double> lo;
  std::vector<double> hi;
};

/// The actual branch-and-bound; solve() wraps it with metric recording
/// so every early return is covered.
Solution solve_impl(const Model& model, const Options& opt) {
  const lp::Problem& base = model.lp();
  const std::vector<int> ints = model.integral_variables();
  const bool maximize = base.objective() == lp::Objective::kMaximize;
  // Internal comparisons are in minimize sense.
  const auto key = [&](double obj) { return maximize ? -obj : obj; };

  Solution result;
  const bool have_cutoff = !std::isnan(opt.objective_cutoff);
  const double cutoff_key = have_cutoff ? key(opt.objective_cutoff) : 0.0;
  // Working copy whose integral-variable bounds are rewritten per node.
  lp::Problem work = base;

  std::vector<Node> stack;
  {
    Node root;
    root.lo.reserve(ints.size());
    root.hi.reserve(ints.size());
    for (int v : ints) {
      root.lo.push_back(base.variable(v).lower);
      root.hi.push_back(base.variable(v).upper);
    }
    stack.push_back(std::move(root));
  }

  bool have_incumbent = false;
  double incumbent_key = 0.0;
  bool root_processed = false;
  bool any_feasible_lp = false;

  while (!stack.empty()) {
    if (result.nodes >= opt.max_nodes) {
      result.status = lp::Status::kIterationLimit;
      return result;
    }
    Node node = std::move(stack.back());
    stack.pop_back();
    ++result.nodes;

    for (std::size_t k = 0; k < ints.size(); ++k) {
      if (node.lo[k] > node.hi[k]) {
        goto next_node;  // empty integer box
      }
      work.set_bounds(ints[k], node.lo[k], node.hi[k]);
    }
    {
      const lp::Solution rel = lp::solve_simplex(work, opt.lp);
      result.lp_iterations += rel.iterations;
      if (rel.status == lp::Status::kUnbounded) {
        if (!root_processed) {
          // Unbounded relaxation at the root: report unbounded (with
          // integral vars bounded, this means a continuous ray exists).
          result.status = lp::Status::kUnbounded;
          return result;
        }
        // Deeper nodes share the same recession cone; treat as unbounded.
        result.status = lp::Status::kUnbounded;
        return result;
      }
      root_processed = true;
      if (rel.status == lp::Status::kIterationLimit) {
        result.status = rel.status;
        return result;
      }
      if (rel.status == lp::Status::kInfeasible) {
        goto next_node;
      }
      any_feasible_lp = true;
      // Bound-based pruning: the relaxation can only get worse deeper.
      if (have_incumbent && key(rel.objective) >= incumbent_key - opt.gap_tol) {
        goto next_node;
      }
      if (have_cutoff && key(rel.objective) > cutoff_key + opt.gap_tol) {
        goto next_node;  // cannot reach the requested objective level
      }
      int frac_k = -1;
      for (int pv : opt.branch_priority) {
        const double v = rel.x[static_cast<std::size_t>(pv)];
        const double frac = v - std::floor(v);
        if (std::min(frac, 1.0 - frac) > opt.int_tol) {
          // Map the variable index back into the ints list.
          for (std::size_t k = 0; k < ints.size(); ++k) {
            if (ints[k] == pv) {
              frac_k = static_cast<int>(k);
              break;
            }
          }
          if (frac_k >= 0) break;
        }
      }
      if (frac_k < 0) {
        frac_k = most_fractional(ints, rel.x, opt.int_tol);
      }
      if (frac_k < 0) {
        // Integral: new incumbent (strictly better, by the pruning test).
        std::vector<double> x = rel.x;
        snap_integrals(ints, x);
        have_incumbent = true;
        incumbent_key = key(rel.objective);
        result.x = std::move(x);
        result.objective = rel.objective;
        if (have_cutoff && incumbent_key <= cutoff_key + opt.gap_tol) {
          // At or better than the requested level: optimal by definition.
          result.status = lp::Status::kOptimal;
          return result;
        }
        goto next_node;
      }
      // Branch.  Explore the child nearest the fractional value first
      // (pushed last so it pops first).
      const int var = ints[static_cast<std::size_t>(frac_k)];
      const double v = rel.x[static_cast<std::size_t>(var)];
      Node down = node;
      down.hi[static_cast<std::size_t>(frac_k)] = std::floor(v);
      Node up = node;
      up.lo[static_cast<std::size_t>(frac_k)] = std::ceil(v);
      if (v - std::floor(v) <= 0.5) {
        stack.push_back(std::move(up));
        stack.push_back(std::move(down));
      } else {
        stack.push_back(std::move(down));
        stack.push_back(std::move(up));
      }
    }
  next_node:;
  }

  if (have_incumbent) {
    result.status = lp::Status::kOptimal;
  } else {
    result.status = lp::Status::kInfeasible;
    (void)any_feasible_lp;
  }
  return result;
}

}  // namespace

Solution solve(const Model& model, const Options& opt) {
  obs::ScopedTimer timer(opt.metrics, "milp.solve_s");
  Solution result = solve_impl(model, opt);
  if (opt.metrics != nullptr) {
    opt.metrics->counter("milp.solves").add(1);
    opt.metrics->counter("milp.bnb_nodes")
        .add(static_cast<std::uint64_t>(result.nodes));
    opt.metrics->counter("milp.lp_pivots")
        .add(static_cast<std::uint64_t>(result.lp_iterations));
  }
  return result;
}

Pool solve_all_optimal(const Model& model, const Options& opt,
                       int max_solutions) {
  for (int v : model.integral_variables()) {
    HI_REQUIRE(model.var_type(v) == VarType::kBinary,
               "solve_all_optimal: variable "
                   << v << " is general-integer; the no-good enumeration "
                          "requires binary integrality");
  }
  Pool pool;
  Model work = model;  // cuts accumulate here
  const std::vector<int> bins = work.binary_variables();

  Solution first = solve(work, opt);
  pool.nodes += first.nodes;
  pool.lp_iterations += first.lp_iterations;
  pool.status = first.status;
  if (first.status != lp::Status::kOptimal) {
    return pool;
  }
  pool.objective = first.objective;

  const bool maximize = model.lp().objective() == lp::Objective::kMaximize;
  const auto is_optimal = [&](double obj) {
    return maximize ? obj >= pool.objective - opt.gap_tol
                    : obj <= pool.objective + opt.gap_tol;
  };

  // Alternative optima need only *reach* the known optimum, not re-prove
  // it: set the cutoff so each subsequent solve stops at its first hit.
  Options dive = opt;
  dive.objective_cutoff = pool.objective;

  Solution cur = std::move(first);
  while (true) {
    pool.solutions.push_back(cur.x);
    if (static_cast<int>(pool.solutions.size()) >= max_solutions) {
      pool.truncated = true;
      return pool;
    }
    work.add_no_good_cut(bins, cur.x);
    cur = solve(work, dive);
    pool.nodes += cur.nodes;
    pool.lp_iterations += cur.lp_iterations;
    if (cur.status == lp::Status::kInfeasible) {
      return pool;  // no more integer points at all
    }
    if (cur.status != lp::Status::kOptimal) {
      pool.status = cur.status;  // surface the failure
      return pool;
    }
    if (!is_optimal(cur.objective)) {
      return pool;  // next-best level reached; pool complete
    }
  }
}

}  // namespace hi::milp
