// hi-opt: mixed-integer linear model.
//
// A thin layer over hi::lp::Problem that marks variables as continuous,
// binary, or general-integer, and offers the linearization helpers the
// DSE encoding needs (products of binaries).  Constraints can be added
// after a solve — Algorithm 1 adds objective-level cuts between
// iterations — because every solve starts from the model's current state.
#pragma once

#include <string>
#include <vector>

#include "lp/problem.hpp"

namespace hi::milp {

/// Variable integrality class.
enum class VarType { kContinuous, kBinary, kInteger };

/// Mixed-integer model; see file comment.
class Model {
 public:
  /// Adds a continuous variable in [lower, upper] with the given objective
  /// coefficient; returns its index.
  int add_continuous(double lower, double upper, double cost,
                     std::string name = {});

  /// Adds a binary variable; returns its index.
  int add_binary(double cost, std::string name = {});

  /// Adds a general integer variable in [lower, upper]; returns its index.
  int add_integer(double lower, double upper, double cost,
                  std::string name = {});

  /// Adds a linear constraint; returns its row index.
  int add_constraint(std::vector<lp::Term> terms, lp::Sense sense, double rhs,
                     std::string name = {});

  /// Sets the optimization direction (default minimize).
  void set_objective(lp::Objective obj) { lp_.set_objective(obj); }

  /// Replaces the objective coefficient of a variable.
  void set_cost(int v, double cost) { lp_.set_cost(v, cost); }

  /// Adds a continuous variable y in [0,1] constrained to equal the AND
  /// (product) of the given binary variables:
  ///   y <= x_i for all i,   y >= sum(x_i) - (k-1).
  /// With binary x the LP forces y to {0,1} at integral points, so y does
  /// not need to be branched on.
  int add_product(const std::vector<int>& binaries, std::string name = {});

  /// Adds a no-good cut excluding the binary assignment `assignment`
  /// restricted to the variables in `vars`:
  ///   sum_{a_j=0} x_j + sum_{a_j=1} (1 - x_j) >= 1.
  void add_no_good_cut(const std::vector<int>& vars,
                       const std::vector<double>& assignment);

  [[nodiscard]] const lp::Problem& lp() const { return lp_; }
  [[nodiscard]] lp::Problem& lp() { return lp_; }
  [[nodiscard]] VarType var_type(int v) const;
  [[nodiscard]] int num_variables() const { return lp_.num_variables(); }
  [[nodiscard]] int num_constraints() const { return lp_.num_constraints(); }

  /// Indices of all binary variables, in creation order.
  [[nodiscard]] std::vector<int> binary_variables() const;

  /// Indices of all integral (binary + integer) variables.
  [[nodiscard]] std::vector<int> integral_variables() const;

 private:
  lp::Problem lp_;
  std::vector<VarType> types_;
};

}  // namespace hi::milp
