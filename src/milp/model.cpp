#include "milp/model.hpp"

#include <cmath>
#include <utility>

#include "common/assert.hpp"

namespace hi::milp {

int Model::add_continuous(double lower, double upper, double cost,
                          std::string name) {
  const int v = lp_.add_variable(lower, upper, cost, std::move(name));
  types_.push_back(VarType::kContinuous);
  return v;
}

int Model::add_binary(double cost, std::string name) {
  const int v = lp_.add_variable(0.0, 1.0, cost, std::move(name));
  types_.push_back(VarType::kBinary);
  return v;
}

int Model::add_integer(double lower, double upper, double cost,
                       std::string name) {
  HI_REQUIRE(std::isfinite(lower) && std::isfinite(upper),
             "integer variable '" << name << "' must have finite bounds");
  const int v = lp_.add_variable(lower, upper, cost, std::move(name));
  types_.push_back(VarType::kInteger);
  return v;
}

int Model::add_constraint(std::vector<lp::Term> terms, lp::Sense sense,
                          double rhs, std::string name) {
  return lp_.add_constraint(std::move(terms), sense, rhs, std::move(name));
}

int Model::add_product(const std::vector<int>& binaries, std::string name) {
  HI_REQUIRE(!binaries.empty(), "add_product: empty factor list");
  for (int b : binaries) {
    HI_REQUIRE(var_type(b) == VarType::kBinary,
               "add_product: variable " << b << " is not binary");
  }
  const int y = add_continuous(0.0, 1.0, 0.0, name.empty() ? "prod" : name);
  for (int b : binaries) {
    add_constraint({{y, 1.0}, {b, -1.0}}, lp::Sense::kLessEqual, 0.0,
                   name + "_le");
  }
  std::vector<lp::Term> terms{{y, 1.0}};
  for (int b : binaries) {
    terms.push_back({b, -1.0});
  }
  add_constraint(std::move(terms), lp::Sense::kGreaterEqual,
                 -static_cast<double>(binaries.size() - 1), name + "_ge");
  return y;
}

void Model::add_no_good_cut(const std::vector<int>& vars,
                            const std::vector<double>& assignment) {
  HI_REQUIRE(!vars.empty(), "add_no_good_cut: no variables");
  std::vector<lp::Term> terms;
  terms.reserve(vars.size());
  double rhs = 1.0;
  for (int v : vars) {
    HI_REQUIRE(var_type(v) == VarType::kBinary,
               "add_no_good_cut: variable " << v << " is not binary");
    const double a = assignment[static_cast<std::size_t>(v)];
    HI_REQUIRE(std::fabs(a - std::round(a)) < 1e-6,
               "add_no_good_cut: non-integral assignment " << a);
    if (std::round(a) >= 1.0) {
      terms.push_back({v, -1.0});
      rhs -= 1.0;
    } else {
      terms.push_back({v, 1.0});
    }
  }
  add_constraint(std::move(terms), lp::Sense::kGreaterEqual, rhs, "no_good");
}

VarType Model::var_type(int v) const {
  HI_REQUIRE(v >= 0 && v < num_variables(), "var_type: bad index " << v);
  return types_[static_cast<std::size_t>(v)];
}

std::vector<int> Model::binary_variables() const {
  std::vector<int> out;
  for (int v = 0; v < num_variables(); ++v) {
    if (types_[static_cast<std::size_t>(v)] == VarType::kBinary) {
      out.push_back(v);
    }
  }
  return out;
}

std::vector<int> Model::integral_variables() const {
  std::vector<int> out;
  for (int v = 0; v < num_variables(); ++v) {
    if (types_[static_cast<std::size_t>(v)] != VarType::kContinuous) {
      out.push_back(v);
    }
  }
  return out;
}

}  // namespace hi::milp
