// hi-opt: frontier sweep drivers (DESIGN.md §14).
//
// Two ways to produce a front for a scenario, sharing one Evaluator
// (and therefore its cache, its store warm-start, and its counters):
//
//  * exhaustive_front — batch-evaluates every feasible configuration
//    and keeps the non-dominated set.  The definitive exact front, and
//    the oracle the tier-1 differential test holds the ladder against.
//
//  * ladder_front — walks a PDRmin ladder the way Algorithm 1 walks one
//    bound, but for all rungs at once: ONE MilpEncoding proposes levels
//    in ascending analytic power, each level's whole alternative-optima
//    pool is batch-evaluated once, every rung updates its incumbent
//    from the shared evaluations, and the level is cut
//    (add_power_cut_above).  A rung closes when the sound measured-power
//    floor of every un-proposed cell exceeds its incumbent — the same
//    certificate Algorithm 1 uses, per rung.  Each front point
//    therefore costs at most one MILP solve plus simulations that the
//    other rungs (or a warm store) already paid for.
//
//    Incumbents are chosen by lex_before (power, then PDR, then p95,
//    then design_key), so a certified rung optimum is globally
//    non-dominated: any dominator would need PDR >= the rung bound and
//    power <= the optimum, hence be an explored candidate ordered
//    before the lexicographic minimum — a contradiction.  The emitted
//    front is the non-dominated subset of the certified rung optima.
//
// RobustnessOptions compose: when active, candidates are folded through
// dse::RobustBatch, objectives become (robust power, worst-case PDR,
// worst-realization p95), the MILP proposes Γ-protected levels, and the
// floor certificate carries the same protection — so Γ-robust fronts
// fall out of the identical control flow.  Γ=0/K=1 is bit-identical to
// the nominal path.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "dse/evaluator.hpp"
#include "dse/robustness.hpp"
#include "milp/solver.hpp"
#include "model/design_space.hpp"
#include "obs/metrics.hpp"
#include "pareto/front.hpp"

namespace hi::pareto {

/// Sweep controls shared by both drivers.
struct SweepOptions {
  /// PDRmin rungs of the ladder (any order; deduplicated and sorted
  /// ascending internally).  Also used by exhaustive_front to report
  /// per-rung optima.  Default: the paper's Fig. 3 sweep range.
  std::vector<double> pdr_ladder = {0.50, 0.60, 0.70, 0.80,
                                    0.90, 0.95, 0.99};
  /// Worker threads for batch evaluation (0 = serial; results are
  /// bit-identical at any value, see exec::BatchEvaluator).
  int threads = 0;
  /// Γ / K / confidence; inactive by default (see file comment).
  dse::RobustnessOptions robust{};
  /// Inner MILP solver options (ladder_front only).
  milp::Options milp{};
  /// ε-dominance knob for the emitted front.
  FrontOptions front{};
  /// Safety valve on MILP rounds (ladder_front only).
  int max_rounds = 10'000;
  /// Observability registry (null = not observed; `pareto.*` counters).
  obs::MetricsRegistry* metrics = nullptr;
  /// Called after each completed MILP round (ladder_front) or once after
  /// the sweep's evaluation (exhaustive_front) with the rounds done so
  /// far.  The hi_pareto CLI syncs its store here — which makes this the
  /// crash-injection point the resume-after-kill smoke drives.
  std::function<void(int rounds)> progress;
};

/// Per-rung outcome: the certified minimum-power point meeting the
/// rung's PDR bound (lex_before tie-break), or infeasible.
struct RungResult {
  double pdr_min = 0.0;
  bool feasible = false;
  FrontPoint best{};
};

/// Outcome of a sweep.
struct SweepResult {
  /// The non-dominated set, lex_before-sorted.  exhaustive_front: over
  /// every feasible configuration; ladder_front: over the certified
  /// rung optima (a subset of the exhaustive front — the differential
  /// test pins that).
  std::vector<FrontPoint> front;
  std::vector<RungResult> rungs;  ///< ascending pdr_min
  std::uint64_t evaluated = 0;    ///< distinct design points evaluated
  std::uint64_t simulations = 0;  ///< fresh simulations paid (delta)
  std::uint64_t store_hits = 0;   ///< simulations served by a warm store
  std::uint64_t milp_rounds = 0;  ///< ladder only: levels proposed
  int milp_bnb_nodes = 0;         ///< ladder only
  bool complete = true;  ///< false only when max_rounds stopped the ladder
  double wall_time_s = 0.0;
};

/// See file comment.
[[nodiscard]] SweepResult exhaustive_front(const model::Scenario& scenario,
                                           dse::Evaluator& eval,
                                           const SweepOptions& opt = {});

/// See file comment.
[[nodiscard]] SweepResult ladder_front(const model::Scenario& scenario,
                                       dse::Evaluator& eval,
                                       const SweepOptions& opt = {});

}  // namespace hi::pareto
