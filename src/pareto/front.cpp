#include "pareto/front.hpp"

#include <algorithm>

namespace hi::pareto {

FrontPoint make_point(const model::NetworkConfig& cfg,
                      const dse::Evaluation& ev) {
  FrontPoint p;
  p.cfg = cfg;
  p.power_mw = ev.power_mw;
  p.pdr = ev.pdr;
  p.p95_s = ev.detail.latency.p95_s;
  p.nlt_s = ev.nlt_s;
  p.pdr_lo = ev.pdr;
  p.pdr_hi = ev.pdr;
  return p;
}

FrontPoint make_point(const model::NetworkConfig& cfg,
                      const dse::RobustEvaluation& rev) {
  FrontPoint p;
  p.cfg = cfg;
  p.power_mw = rev.robust_power_mw;
  p.pdr = rev.worst_pdr;
  p.p95_s = rev.worst_p95_s;
  p.nlt_s = rev.worst_nlt_s;
  p.pdr_lo = rev.pdr_lo;
  p.pdr_hi = rev.pdr_hi;
  p.protection_mw = rev.protection_mw;
  return p;
}

bool dominates(const FrontPoint& a, const FrontPoint& b,
               const FrontOptions& opt) {
  const bool no_worse = a.power_mw <= b.power_mw + opt.epsilon_power_mw &&
                        a.pdr >= b.pdr - opt.epsilon_pdr &&
                        a.p95_s <= b.p95_s + opt.epsilon_p95_s;
  if (!no_worse) {
    return false;
  }
  if (opt.active()) {
    // ε-dominance: being within ε on every objective is enough (the
    // archive keeps one representative per ε-box).
    return true;
  }
  return a.power_mw < b.power_mw || a.pdr > b.pdr || a.p95_s < b.p95_s;
}

bool lex_before(const FrontPoint& a, const FrontPoint& b) {
  if (a.power_mw != b.power_mw) return a.power_mw < b.power_mw;
  if (a.pdr != b.pdr) return a.pdr > b.pdr;
  if (a.p95_s != b.p95_s) return a.p95_s < b.p95_s;
  return a.cfg.design_key() < b.cfg.design_key();
}

bool FrontBuilder::insert(const FrontPoint& p) {
  const std::uint64_t key = p.cfg.design_key();
  if (std::find(seen_keys_.begin(), seen_keys_.end(), key) !=
      seen_keys_.end()) {
    return false;
  }
  seen_keys_.push_back(key);
  ++offered_;
  for (const FrontPoint& member : points_) {
    if (dominates(member, p, opt_)) {
      ++dominated_dropped_;
      return false;
    }
  }
  // The newcomer survives: evict every member it dominates.
  const std::size_t before = points_.size();
  points_.erase(std::remove_if(points_.begin(), points_.end(),
                               [&](const FrontPoint& member) {
                                 return dominates(p, member, opt_);
                               }),
                points_.end());
  displaced_ += before - points_.size();
  points_.push_back(p);
  return true;
}

std::vector<FrontPoint> FrontBuilder::front() const {
  std::vector<FrontPoint> out = points_;
  std::sort(out.begin(), out.end(), lex_before);
  return out;
}

}  // namespace hi::pareto
