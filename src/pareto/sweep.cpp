#include "pareto/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <optional>

#include "common/assert.hpp"
#include "dse/milp_encoding.hpp"
#include "exec/batch_evaluator.hpp"
#include "model/power.hpp"

namespace hi::pareto {

namespace {

double steady_now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Validates, sorts ascending and deduplicates the PDRmin ladder.
std::vector<double> canonical_ladder(const std::vector<double>& ladder) {
  HI_REQUIRE(!ladder.empty(), "pareto sweep: empty PDRmin ladder");
  std::vector<double> rungs = ladder;
  for (double r : rungs) {
    HI_REQUIRE(r >= 0.0 && r <= 1.0,
               "pareto sweep: PDRmin rung " << r << " outside [0, 1]");
  }
  std::sort(rungs.begin(), rungs.end());
  rungs.erase(std::unique(rungs.begin(), rungs.end()), rungs.end());
  return rungs;
}

/// Installs the sweep's registry on the evaluator for the call's
/// duration (mirrors dse::detail::RunScope; restores the previous one).
class MetricsScope {
 public:
  MetricsScope(dse::Evaluator& eval, obs::MetricsRegistry* m)
      : eval_(eval), installed_(m != nullptr) {
    if (installed_) prev_ = eval_.set_metrics(m);
  }
  ~MetricsScope() {
    if (installed_) eval_.set_metrics(prev_);
  }
  MetricsScope(const MetricsScope&) = delete;
  MetricsScope& operator=(const MetricsScope&) = delete;

 private:
  dse::Evaluator& eval_;
  bool installed_;
  obs::MetricsRegistry* prev_ = nullptr;
};

/// Evaluates `cfgs` through the mode-appropriate batch engine and
/// returns FrontPoints aligned with `cfgs`.
std::vector<FrontPoint> evaluate_points(
    const std::vector<model::NetworkConfig>& cfgs, dse::Evaluator& eval,
    const SweepOptions& opt) {
  std::vector<FrontPoint> out;
  out.reserve(cfgs.size());
  if (opt.robust.active()) {
    dse::RobustBatch rbatch(eval, opt.threads, opt.robust);
    const std::vector<dse::RobustEvaluation> revs = rbatch.evaluate(cfgs);
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
      out.push_back(make_point(cfgs[i], revs[i]));
    }
  } else {
    exec::BatchEvaluator batch(eval, opt.threads);
    const std::vector<const dse::Evaluation*> evals = batch.evaluate(cfgs);
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
      out.push_back(make_point(cfgs[i], *evals[i]));
    }
  }
  return out;
}

void record_front_counters(obs::MetricsRegistry* m, const FrontBuilder& fb,
                           const SweepResult& res) {
  if (m == nullptr) return;
  m->counter("pareto.points_offered").add(fb.offered());
  m->counter("pareto.dominated_dropped").add(fb.dominated_dropped());
  m->counter("pareto.displaced").add(fb.displaced());
  m->gauge("pareto.front_size").set(static_cast<double>(res.front.size()));
  m->counter("pareto.sweeps").add(1);
}

}  // namespace

SweepResult exhaustive_front(const model::Scenario& scenario,
                             dse::Evaluator& eval, const SweepOptions& opt) {
  const double t0 = steady_now_s();
  const std::vector<double> rungs = canonical_ladder(opt.pdr_ladder);
  MetricsScope scope(eval, opt.metrics);
  const std::uint64_t sims0 = eval.total_simulations();
  const std::uint64_t store0 = eval.total_store_hits();

  const std::vector<model::NetworkConfig> cfgs = scenario.feasible_configs();
  const std::vector<FrontPoint> points = evaluate_points(cfgs, eval, opt);

  SweepResult res;
  FrontBuilder fb(opt.front);
  for (const FrontPoint& p : points) {
    fb.insert(p);
  }
  res.front = fb.front();
  // Per-rung optima fall out of the same evaluations: the lex_before
  // minimum among points meeting the rung.
  for (double pdr_min : rungs) {
    RungResult rr;
    rr.pdr_min = pdr_min;
    for (const FrontPoint& p : points) {
      if (p.pdr < pdr_min) continue;
      if (!rr.feasible || lex_before(p, rr.best)) {
        rr.feasible = true;
        rr.best = p;
      }
    }
    res.rungs.push_back(rr);
  }
  res.evaluated = points.size();
  res.simulations = eval.total_simulations() - sims0;
  res.store_hits = eval.total_store_hits() - store0;
  res.wall_time_s = steady_now_s() - t0;
  record_front_counters(opt.metrics, fb, res);
  if (opt.progress) {
    opt.progress(1);
  }
  return res;
}

SweepResult ladder_front(const model::Scenario& scenario, dse::Evaluator& eval,
                         const SweepOptions& opt) {
  const double t0 = steady_now_s();
  const std::vector<double> rung_bounds = canonical_ladder(opt.pdr_ladder);
  MetricsScope scope(eval, opt.metrics);
  const std::uint64_t sims0 = eval.total_simulations();
  const std::uint64_t store0 = eval.total_store_hits();

  const bool robust = opt.robust.active();
  const int gamma = robust ? opt.robust.gamma : 0;
  dse::MilpEncoding encoding(scenario, gamma);
  milp::Options milp_opt = opt.milp;
  if (opt.metrics != nullptr) {
    milp_opt.metrics = opt.metrics;
  }

  // Sound termination bounds, per rung: one Γ-protected analytic cost
  // per (Tx level, routing, N) cell plus a measured-power floor at each
  // rung's PDRmin (Algorithm 1's CellBound, vectorized over rungs —
  // see dse/algorithm1.cpp for the soundness argument).
  struct Cell {
    double cost_mw;
    std::vector<double> floor_mw;  ///< aligned with rung_bounds
  };
  std::vector<Cell> cells;
  {
    const net::SimParams& sp = eval.settings().sim;
    for (int lvl = 0; lvl < scenario.chip.num_tx_levels(); ++lvl) {
      for (const auto rt :
           {model::RoutingProtocol::kStar, model::RoutingProtocol::kMesh}) {
        for (int n = scenario.min_nodes; n <= scenario.max_nodes; ++n) {
          model::Topology t;
          for (int i = 0; i < n; ++i) t.set(i, true);
          const model::NetworkConfig cell_cfg = scenario.make_config(
              t, lvl, model::MacProtocol::kCsma, rt);
          const double prot = model::robust_protection_mw(cell_cfg, gamma);
          Cell cell;
          cell.cost_mw = model::node_power_mw(cell_cfg) + prot;
          cell.floor_mw.reserve(rung_bounds.size());
          for (double pdr_min : rung_bounds) {
            cell.floor_mw.push_back(
                model::measured_power_floor_mw(cell_cfg, pdr_min,
                                               sp.duration_s, sp.gen_guard_s) +
                prot);
          }
          cells.push_back(std::move(cell));
        }
      }
    }
  }
  const auto min_remaining_floor = [&](double level_mw, std::size_t rung) {
    double lo = std::numeric_limits<double>::infinity();
    for (const Cell& c : cells) {
      if (c.cost_mw > level_mw + 1e-12) {
        lo = std::min(lo, c.floor_mw[rung]);
      }
    }
    return lo;
  };

  struct Rung {
    double pdr_min;
    bool open = true;
    bool have = false;
    FrontPoint best{};
  };
  std::vector<Rung> rungs;
  rungs.reserve(rung_bounds.size());
  for (double pdr_min : rung_bounds) {
    rungs.push_back(Rung{pdr_min});
  }

  SweepResult res;
  std::optional<exec::BatchEvaluator> batch;
  std::optional<dse::RobustBatch> rbatch;
  if (robust) {
    rbatch.emplace(eval, opt.threads, opt.robust);
  } else {
    batch.emplace(eval, opt.threads);
  }

  int rounds = 0;
  for (; rounds < opt.max_rounds; ++rounds) {
    const dse::MilpRound round = encoding.run_milp(milp_opt);
    if (round.candidates.empty()) {
      // MILP dry: every feasible configuration has been proposed and
      // evaluated, so every incumbent is final and rungs without one
      // are genuinely infeasible.
      for (Rung& r : rungs) r.open = false;
      break;
    }
    ++res.milp_rounds;
    res.milp_bnb_nodes += round.bnb_nodes;

    // Close every rung whose certificate holds at this level: all cells
    // at or above it — including the one just proposed — have their
    // measured floor above the rung's incumbent, so no remaining
    // simulation can win (nor tie: the bound is strict).
    bool any_open = false;
    for (std::size_t ri = 0; ri < rungs.size(); ++ri) {
      Rung& r = rungs[ri];
      if (!r.open) continue;
      if (r.have && min_remaining_floor(round.power_mw - 2.0 * 1e-12, ri) >
                        r.best.power_mw) {
        r.open = false;
        if (opt.metrics != nullptr) {
          opt.metrics->counter("pareto.rungs_closed_by_floor").add(1);
        }
        continue;
      }
      any_open = true;
    }
    if (!any_open) {
      break;  // every front point certified without touching this level
    }

    std::vector<FrontPoint> points;
    if (robust) {
      const std::vector<dse::RobustEvaluation> revs =
          rbatch->evaluate(round.candidates);
      points.reserve(revs.size());
      for (std::size_t i = 0; i < round.candidates.size(); ++i) {
        points.push_back(make_point(round.candidates[i], revs[i]));
      }
    } else {
      const std::vector<const dse::Evaluation*> evals =
          batch->evaluate(round.candidates);
      points.reserve(evals.size());
      for (std::size_t i = 0; i < round.candidates.size(); ++i) {
        points.push_back(make_point(round.candidates[i], *evals[i]));
      }
    }
    res.evaluated += points.size();

    for (const FrontPoint& p : points) {
      for (Rung& r : rungs) {
        if (!r.open || p.pdr < r.pdr_min) continue;
        if (!r.have || lex_before(p, r.best)) {
          r.have = true;
          r.best = p;
        }
      }
    }

    encoding.add_power_cut_above(round.power_mw);
    if (opt.metrics != nullptr) {
      opt.metrics->counter("pareto.cuts_added").add(1);
    }
    if (opt.progress) {
      opt.progress(rounds + 1);
    }
  }
  res.complete = std::none_of(rungs.begin(), rungs.end(),
                              [](const Rung& r) { return r.open; });

  FrontBuilder fb(opt.front);
  for (const Rung& r : rungs) {
    RungResult rr;
    rr.pdr_min = r.pdr_min;
    rr.feasible = r.have;
    rr.best = r.best;
    res.rungs.push_back(rr);
    if (r.have) {
      fb.insert(r.best);
    }
  }
  res.front = fb.front();
  res.simulations = eval.total_simulations() - sims0;
  res.store_hits = eval.total_store_hits() - store0;
  res.wall_time_s = steady_now_s() - t0;
  if (opt.metrics != nullptr) {
    opt.metrics->counter("pareto.milp_rounds").add(res.milp_rounds);
  }
  record_front_counters(opt.metrics, fb, res);
  return res;
}

}  // namespace hi::pareto
