// hi-opt: multi-objective Pareto front over (power, PDR, p95 latency).
//
// The paper's Fig. 3 trade-off is one curve — minimum power as a
// function of PDRmin.  This module generalizes it to the full
// three-objective front per scenario (DESIGN.md §14): minimize the
// worst lifetime-relevant node power, maximize the network PDR, and
// minimize the p95 end-to-end delay (net/latency.hpp).  A FrontBuilder
// ingests evaluated design points from any producer — the exhaustive
// sweep, the MILP solution pool's alternative-optima sets, or a warm
// hi::store with zero re-simulation — and maintains the non-dominated
// set.
//
// Dominance semantics: point a dominates point b when a is no worse on
// all three objectives and strictly better on at least one.  Two
// distinct designs with identical objectives do not dominate each
// other, so exact ties survive — the exact front equals the brute-force
// oracle's, which the tier-1 differential test pins.  The optional
// epsilon knob switches to additive ε-dominance (a ε-dominates b when a
// is within ε of b on every objective), a standard archive-thinning
// device: the kept front is an ε-approximate cover, ingest-order
// dependent, so callers must ingest in a deterministic order.
#pragma once

#include <cstdint>
#include <vector>

#include "dse/evaluator.hpp"
#include "dse/robustness.hpp"
#include "model/config.hpp"

namespace hi::pareto {

/// One evaluated design point in objective space.  For robust sweeps
/// the objectives are the robust ones (worst-realization PDR, protected
/// power, worst-realization p95), carried in the same three fields so
/// dominance never needs to know which mode produced the point.
struct FrontPoint {
  model::NetworkConfig cfg;
  double power_mw = 0.0;  ///< minimize (robust: worst power + Γ-protection)
  double pdr = 0.0;       ///< maximize (robust: worst realization)
  double p95_s = 0.0;     ///< minimize (0.0 when latency collection is off)
  double nlt_s = 0.0;     ///< network lifetime of the carried power
  double pdr_lo = 0.0;    ///< CI bounds (robust K >= 2; else == pdr)
  double pdr_hi = 0.0;
  double protection_mw = 0.0;  ///< Γ-protection included in power_mw
};

/// Builds a FrontPoint from a nominal evaluation.
[[nodiscard]] FrontPoint make_point(const model::NetworkConfig& cfg,
                                    const dse::Evaluation& ev);

/// Builds a FrontPoint from a robust evaluation (worst-case objectives).
[[nodiscard]] FrontPoint make_point(const model::NetworkConfig& cfg,
                                    const dse::RobustEvaluation& rev);

/// The ε-dominance knob.  All-zero (the default) selects exact strict
/// Pareto dominance.
struct FrontOptions {
  double epsilon_power_mw = 0.0;
  double epsilon_pdr = 0.0;
  double epsilon_p95_s = 0.0;
  [[nodiscard]] bool active() const {
    return epsilon_power_mw > 0.0 || epsilon_pdr > 0.0 || epsilon_p95_s > 0.0;
  }
};

/// True when `a` (ε-)dominates `b`; see the file comment.
[[nodiscard]] bool dominates(const FrontPoint& a, const FrontPoint& b,
                             const FrontOptions& opt = {});

/// Deterministic total order on points: power ascending, then PDR
/// descending, then p95 ascending, then design_key ascending.  The
/// ladder driver picks per-rung incumbents by this order, which is what
/// makes every certified rung optimum globally non-dominated (no point
/// ordered after the lexicographic minimum can dominate it).
[[nodiscard]] bool lex_before(const FrontPoint& a, const FrontPoint& b);

/// See file comment.
class FrontBuilder {
 public:
  explicit FrontBuilder(FrontOptions opt = {}) : opt_(opt) {}

  /// Offers a point to the archive.  Returns true when the point joins
  /// the front (possibly displacing dominated members), false when it is
  /// dominated by a member or its design_key was already offered
  /// (re-offers of a design are identical by evaluation determinism, so
  /// they are dropped outright — this also keeps ε-archives stable).
  bool insert(const FrontPoint& p);

  /// The current non-dominated set in lex_before order.
  [[nodiscard]] std::vector<FrontPoint> front() const;

  /// Members currently on the front.
  [[nodiscard]] std::size_t size() const { return points_.size(); }

  /// Points offered (distinct design keys).
  [[nodiscard]] std::uint64_t offered() const { return offered_; }

  /// Offers rejected because a member dominated them.
  [[nodiscard]] std::uint64_t dominated_dropped() const {
    return dominated_dropped_;
  }

  /// Members displaced by later insertions.
  [[nodiscard]] std::uint64_t displaced() const { return displaced_; }

  [[nodiscard]] const FrontOptions& options() const { return opt_; }

 private:
  FrontOptions opt_;
  std::vector<FrontPoint> points_;  ///< unordered archive
  std::vector<std::uint64_t> seen_keys_;  ///< every design_key ever offered
  std::uint64_t offered_ = 0;
  std::uint64_t dominated_dropped_ = 0;
  std::uint64_t displaced_ = 0;
};

}  // namespace hi::pareto
