// hi-opt: simulated-annealing baseline (the paper compares Algorithm 1
// against the general-purpose `simanneal` optimizer and reports a ~3x
// speedup).
//
// State: one full design point.  Moves: step the Tx level, flip the MAC,
// flip the routing scheme, or toggle one optional location (rejecting
// mutations that break the topological constraints).  Energy: simulated
// power plus a steep penalty proportional to the PDR shortfall below
// PDRmin, so the annealer is pulled toward feasible low-power designs.
// Cooling: exponential (Kirkpatrick) schedule from t_start to t_end.
//
// Robust mode (ExplorationOptions::robust active): every visited state
// is folded over K channel realizations (RobustBatch); the energy runs
// on the worst-case PDR and the robust power, so the walk is pulled
// toward designs that are cheap and reliable under EVERY realization.
//
// Entry point: run_annealing(scenario, eval, ExplorationOptions),
// declared in dse/explorer.hpp (or Explorer::annealing().run(...)).
#include <cmath>
#include <optional>

#include "common/assert.hpp"
#include "dse/explorer.hpp"
#include "dse/robustness.hpp"
#include "model/power.hpp"

namespace hi::dse {

namespace {

/// Discrete state of the annealer.
struct State {
  model::Topology topology;
  int tx_level = 0;
  model::MacProtocol mac = model::MacProtocol::kCsma;
  model::RoutingProtocol routing = model::RoutingProtocol::kStar;
};

model::NetworkConfig to_config(const model::Scenario& sc, const State& s) {
  return sc.make_config(s.topology, s.tx_level, s.mac, s.routing);
}

/// Proposes a feasibility-preserving random neighbour of `s`.
State neighbour(const model::Scenario& sc, const State& s, Rng& rng) {
  State next = s;
  // Try a handful of times; a move that cannot produce a feasible state
  // falls through to the (always feasible) protocol flips.
  for (int attempt = 0; attempt < 8; ++attempt) {
    switch (rng.uniform_index(4)) {
      case 0: {  // step the Tx power level
        const int dir = rng.bernoulli(0.5) ? 1 : -1;
        const int levels = sc.chip.num_tx_levels();
        next.tx_level = ((s.tx_level + dir) % levels + levels) % levels;
        return next;
      }
      case 1:  // flip MAC
        next.mac = s.mac == model::MacProtocol::kCsma
                       ? model::MacProtocol::kTdma
                       : model::MacProtocol::kCsma;
        return next;
      case 2:  // flip routing (coordinator presence is enforced below)
        next.routing = s.routing == model::RoutingProtocol::kStar
                           ? model::RoutingProtocol::kMesh
                           : model::RoutingProtocol::kStar;
        if (next.routing == model::RoutingProtocol::kMesh ||
            next.topology.has(sc.coordinator)) {
          return next;
        }
        next = s;
        break;
      default: {  // toggle one location
        const int loc =
            static_cast<int>(rng.uniform_index(channel::kNumLocations));
        next.topology.set(loc, !s.topology.has(loc));
        if (sc.topology_feasible(next.topology) &&
            (next.routing == model::RoutingProtocol::kMesh ||
             next.topology.has(sc.coordinator))) {
          return next;
        }
        next = s;
        break;
      }
    }
  }
  return next;  // == s; the step is a no-op, acceptance is trivial
}

}  // namespace

ExplorationResult run_annealing(const model::Scenario& scenario,
                                Evaluator& eval,
                                const ExplorationOptions& opt) {
  const int steps = opt.budget >= 0 ? opt.budget : 400;
  HI_REQUIRE(steps >= 1, "need at least one step");
  HI_REQUIRE(opt.t_start_mw > 0.0 && opt.t_end_mw > 0.0 &&
                 opt.t_start_mw >= opt.t_end_mw,
             "temperatures must satisfy t_start >= t_end > 0");
  detail::RunScope scope(ExplorerKind::kAnnealing, eval, opt);
  Rng rng(opt.seed);
  std::optional<RobustBatch> rbatch;
  if (opt.robust.active()) {
    rbatch.emplace(eval, scope.threads(), opt.robust);
  }

  const auto energy = [&](double pdr, double power_mw) {
    const double shortfall = std::max(0.0, opt.pdr_min - pdr);
    return power_mw + opt.penalty_mw_per_pdr * shortfall;
  };

  // Random feasible starting state.
  const std::vector<model::Topology> topologies =
      scenario.feasible_topologies();
  HI_REQUIRE(!topologies.empty(), "scenario has no feasible topology");
  State cur;
  cur.topology = topologies[rng.uniform_index(topologies.size())];
  cur.tx_level = static_cast<int>(
      rng.uniform_index(static_cast<std::uint64_t>(scenario.chip.num_tx_levels())));
  cur.mac = rng.bernoulli(0.5) ? model::MacProtocol::kCsma
                               : model::MacProtocol::kTdma;
  cur.routing = cur.topology.has(scenario.coordinator) && rng.bernoulli(0.5)
                    ? model::RoutingProtocol::kStar
                    : model::RoutingProtocol::kMesh;

  ExplorationResult res;
  model::NetworkConfig cur_cfg = to_config(scenario, cur);
  double cur_energy = 0.0;
  if (rbatch) {
    const RobustEvaluation rev = rbatch->evaluate_one(cur_cfg);
    res.history.push_back(robust_record(cur_cfg, rev));
    if (rev.worst_pdr >= opt.pdr_min) {
      res.feasible = true;
      res.best = cur_cfg;
      res.best_power_mw = rev.robust_power_mw;
      res.best_pdr = rev.worst_pdr;
      res.best_nlt_s = rev.worst_nlt_s;
      res.best_pdr_lo = rev.pdr_lo;
      res.best_pdr_hi = rev.pdr_hi;
      res.best_protection_mw = rev.protection_mw;
    }
    cur_energy = energy(rev.worst_pdr, rev.robust_power_mw);
  } else {
    {
      const Evaluation& ev = eval.evaluate(cur_cfg);
      res.history.push_back(CandidateRecord{cur_cfg,
                                            model::node_power_mw(cur_cfg),
                                            ev.pdr, ev.power_mw, ev.nlt_s});
      if (ev.pdr >= opt.pdr_min) {
        res.feasible = true;
        res.best = cur_cfg;
        res.best_power_mw = ev.power_mw;
        res.best_pdr = ev.pdr;
        res.best_nlt_s = ev.nlt_s;
      }
    }
    // Deliberate re-evaluate (a cache hit): keeps the nominal counter
    // stream bit-identical to the pre-robust explorer.
    const Evaluation& ev = eval.evaluate(cur_cfg);
    cur_energy = energy(ev.pdr, ev.power_mw);
  }

  const double decay =
      std::pow(opt.t_end_mw / opt.t_start_mw, 1.0 / steps);
  double temperature = opt.t_start_mw;

  obs::Counter& accepted = scope.registry().counter("sa.accepted");
  for (res.iterations = 0; res.iterations < steps; ++res.iterations) {
    temperature *= decay;
    const State cand = neighbour(scenario, cur, rng);
    const model::NetworkConfig cand_cfg = to_config(scenario, cand);
    double cand_energy = 0.0;
    if (rbatch) {
      const RobustEvaluation rev = rbatch->evaluate_one(cand_cfg);
      res.history.push_back(robust_record(cand_cfg, rev));
      if (rev.worst_pdr >= opt.pdr_min &&
          (!res.feasible || rev.robust_power_mw < res.best_power_mw)) {
        res.feasible = true;
        res.best = cand_cfg;
        res.best_power_mw = rev.robust_power_mw;
        res.best_pdr = rev.worst_pdr;
        res.best_nlt_s = rev.worst_nlt_s;
        res.best_pdr_lo = rev.pdr_lo;
        res.best_pdr_hi = rev.pdr_hi;
        res.best_protection_mw = rev.protection_mw;
      }
      cand_energy = energy(rev.worst_pdr, rev.robust_power_mw);
    } else {
      const Evaluation& ev = eval.evaluate(cand_cfg);
      res.history.push_back(CandidateRecord{cand_cfg,
                                            model::node_power_mw(cand_cfg),
                                            ev.pdr, ev.power_mw, ev.nlt_s});
      if (ev.pdr >= opt.pdr_min &&
          (!res.feasible || ev.power_mw < res.best_power_mw)) {
        res.feasible = true;
        res.best = cand_cfg;
        res.best_power_mw = ev.power_mw;
        res.best_pdr = ev.pdr;
        res.best_nlt_s = ev.nlt_s;
      }
      cand_energy = energy(ev.pdr, ev.power_mw);
    }
    const double delta = cand_energy - cur_energy;
    if (delta <= 0.0 || rng.bernoulli(std::exp(-delta / temperature))) {
      accepted.add(1);
      cur = cand;
      cur_cfg = cand_cfg;
      cur_energy = cand_energy;
    }
    scope.progress(res.iterations + 1, res);
  }

  scope.finish(res);
  return res;
}

}  // namespace hi::dse
