// hi-opt: MILP encoding of the relaxed problem P̃ (Sec. 3).
//
// Decision binaries:
//   n_i   (i in 0..M-1)  — location i carries a node           (ν)
//   p_k   (k per level)  — Tx power level selection, Σ p_k = 1 (χrd)
//   mac   — 0 = CSMA, 1 = TDMA                                 (χMAC)
//   rt_star / rt_mesh, rt_star + rt_mesh = 1                   (χrt)
//   z_N   (N in [min_nodes, max_nodes]) — node-count indicator,
//         Σ z_N = 1 and Σ n_i = Σ N z_N.
//
// The approximate power P̄ of Eq. (9) is nonlinear in (p, rt, N) — the
// mesh term carries NreTx(N) = N²-4N+5 — so it is linearized exactly
// over the finite (k, routing, N) grid: one product indicator
// y[k][rt][N] = p_k ∧ rt ∧ z_N per cell, with P̄ = Σ cost(cell)·y(cell)
// and Σ y = 1.  The MAC bit does not enter Eq. (9) (the coarse model
// ignores MAC overheads), so the alternative-optimum pool naturally
// enumerates both MAC options for each power-optimal cell.
//
// Algorithm 1's Update step (line 11) appends the cut  P̄ >= P̄* + ε
// where ε is half the smallest gap between distinct cell costs, which
// exactly removes the current optimum level and nothing more.
#pragma once

#include <vector>

#include "milp/solver.hpp"
#include "model/design_space.hpp"

namespace hi::dse {

/// Result of one RunMILP call: the set S of candidate configurations
/// sharing the minimum approximate power P̄*.
struct MilpRound {
  lp::Status status = lp::Status::kInfeasible;
  double power_mw = 0.0;  ///< P̄* (includes the baseline Pbl)
  std::vector<model::NetworkConfig> candidates;  ///< decoded set S
  int bnb_nodes = 0;  ///< branch-and-bound nodes spent this round
};

/// See file comment.  One encoding instance lives across all Algorithm-1
/// iterations, accumulating power cuts.
class MilpEncoding {
 public:
  /// `gamma` > 0 builds the Γ-robust counterpart (DESIGN.md §13): every
  /// cell cost carries its Bertsimas–Sim protection term
  /// model::robust_protection_mw(level, routing, N, Γ) — the worst sum
  /// of Γ per-link loss deviations, a closed form because a cell's
  /// links deviate identically — so the MILP proposes levels ordered by
  /// robust power and the cut separation ε is recomputed over the
  /// protected costs.  gamma == 0 (the default) adds exactly 0.0 to
  /// every cost: the encoding is bit-identical to the nominal one.
  explicit MilpEncoding(const model::Scenario& scenario, int gamma = 0);

  /// The deviation budget this encoding was built with.
  [[nodiscard]] int gamma() const { return gamma_; }

  /// Solves the current relaxed problem and decodes all optima.  When
  /// opt.metrics is set, additionally records the decoded pool size as
  /// the `milp.pool_solutions` counter (the solver itself records the
  /// milp.solves / milp.bnb_nodes / milp.lp_pivots counters).
  [[nodiscard]] MilpRound run_milp(const milp::Options& opt = {},
                                   int max_solutions = 4096);

  /// Appends the cut P̄ >= level + ε (Update step).
  void add_power_cut_above(double level_mw);

  /// The cut separation ε (half the smallest distinct-cost gap).
  [[nodiscard]] double epsilon_mw() const { return epsilon_mw_; }

  /// Decodes a MILP solution vector into a design point.
  [[nodiscard]] model::NetworkConfig decode(
      const std::vector<double>& x) const;

  /// All distinct achievable values of the approximate power P̄ over the
  /// (tx level, routing, N) grid, ascending.  Useful for tests/benches.
  [[nodiscard]] std::vector<double> achievable_power_levels() const;

  [[nodiscard]] const milp::Model& model() const { return model_; }

 private:
  [[nodiscard]] MilpRound run_milp_impl(const milp::Options& opt,
                                        int max_solutions);
  [[nodiscard]] double cell_cost_mw(int level, model::RoutingProtocol rt,
                                    int n_nodes) const;

  model::Scenario scenario_;
  int gamma_ = 0;  ///< Bertsimas–Sim deviation budget (0 = nominal)
  milp::Model model_;
  std::vector<int> n_vars_;   ///< per location
  std::vector<int> p_vars_;   ///< per Tx level
  int mac_var_ = -1;
  int rt_star_var_ = -1;
  int rt_mesh_var_ = -1;
  std::vector<int> z_vars_;   ///< per node count (min..max)
  struct Cell {
    int y_var;       ///< product indicator
    double cost_mw;  ///< P̄ when this cell is active
  };
  std::vector<Cell> cells_;
  double epsilon_mw_ = 0.0;
};

}  // namespace hi::dse
