// hi-opt: simulated-annealing baseline (the paper compares Algorithm 1
// against the general-purpose `simanneal` optimizer and reports a ~3x
// speedup).
//
// State: one full design point.  Moves: step the Tx level, flip the MAC,
// flip the routing scheme, or toggle one optional location (rejecting
// mutations that break the topological constraints).  Energy: simulated
// power plus a steep penalty proportional to the PDR shortfall below
// PDRmin, so the annealer is pulled toward feasible low-power designs.
// Cooling: exponential (Kirkpatrick) schedule from t_start to t_end.
//
// The preferred entry point is run_annealing(scenario, eval,
// ExplorationOptions) declared in dse/explorer.hpp (or
// Explorer::annealing().run(...)); the AnnealingOptions overload below
// is a deprecated shim kept so pre-unification call sites compile.
#pragma once

#include "dse/evaluator.hpp"
#include "dse/exploration.hpp"
#include "dse/explorer.hpp"
#include "model/design_space.hpp"

namespace hi::dse {

/// Pre-unification annealer knobs.  Superseded by ExplorationOptions
/// (dse/explorer.hpp); this struct maps onto it field by field
/// (steps -> budget).
struct AnnealingOptions {
  double pdr_min = 0.9;
  int steps = 400;              ///< annealing iterations
  double t_start_mw = 2.0;      ///< initial temperature (energy is in mW;
                                ///< hot enough to cross the star->mesh
                                ///< power barrier early on)
  double t_end_mw = 0.005;      ///< final temperature
  double penalty_mw_per_pdr = 50.0;  ///< infeasibility penalty slope
  std::uint64_t seed = 7;       ///< annealer randomness (moves/acceptance)

  /// The equivalent unified options value.
  [[nodiscard]] ExplorationOptions to_exploration_options() const {
    ExplorationOptions out;
    out.pdr_min = pdr_min;
    out.budget = steps;
    out.seed = seed;
    out.t_start_mw = t_start_mw;
    out.t_end_mw = t_end_mw;
    out.penalty_mw_per_pdr = penalty_mw_per_pdr;
    return out;
  }
};

/// Deprecated shim: forwards to the ExplorationOptions overload
/// (dse/explorer.hpp).
///
/// Removal target: the next API-cleanup PR.  No in-tree caller remains
/// (tests cover the AnnealingOptions mapping via
/// to_exploration_options() only); out-of-tree code should migrate to
/// ExplorationOptions now.
[[deprecated("use run_annealing(scenario, eval, ExplorationOptions) from "
             "dse/explorer.hpp")]] [[nodiscard]]
ExplorationResult run_annealing(const model::Scenario& scenario,
                                Evaluator& eval,
                                const AnnealingOptions& opt);

}  // namespace hi::dse
