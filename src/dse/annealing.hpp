// hi-opt: simulated-annealing baseline (the paper compares Algorithm 1
// against the general-purpose `simanneal` optimizer and reports a ~3x
// speedup).
//
// State: one full design point.  Moves: step the Tx level, flip the MAC,
// flip the routing scheme, or toggle one optional location (rejecting
// mutations that break the topological constraints).  Energy: simulated
// power plus a steep penalty proportional to the PDR shortfall below
// PDRmin, so the annealer is pulled toward feasible low-power designs.
// Cooling: exponential (Kirkpatrick) schedule from t_start to t_end.
#pragma once

#include "dse/evaluator.hpp"
#include "dse/exploration.hpp"
#include "model/design_space.hpp"

namespace hi::dse {

/// Annealer knobs.
struct AnnealingOptions {
  double pdr_min = 0.9;
  int steps = 400;              ///< annealing iterations
  double t_start_mw = 2.0;      ///< initial temperature (energy is in mW;
                                ///< hot enough to cross the star->mesh
                                ///< power barrier early on)
  double t_end_mw = 0.005;      ///< final temperature
  double penalty_mw_per_pdr = 50.0;  ///< infeasibility penalty slope
  std::uint64_t seed = 7;       ///< annealer randomness (moves/acceptance)
};

/// Runs simulated annealing on `scenario`.  Simulations are counted via
/// the evaluator (revisited states hit the cache and are not recounted,
/// which favors the baseline).
[[nodiscard]] ExplorationResult run_annealing(const model::Scenario& scenario,
                                              Evaluator& eval,
                                              const AnnealingOptions& opt);

}  // namespace hi::dse
