#include "dse/robustness.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "model/power.hpp"

namespace hi::dse {

namespace {

void require_valid(const RobustnessOptions& robust) {
  HI_REQUIRE(robust.gamma >= 0,
             "gamma must be >= 0, got " << robust.gamma);
  HI_REQUIRE(robust.realizations >= 1,
             "realizations must be >= 1, got " << robust.realizations);
  HI_REQUIRE(robust.confidence > 0.0 && robust.confidence < 1.0,
             "confidence must lie in (0, 1), got " << robust.confidence);
}

}  // namespace

double robust_z_value(double confidence) {
  HI_REQUIRE(confidence > 0.0 && confidence < 1.0,
             "confidence must lie in (0, 1), got " << confidence);
  // Acklam's inverse-normal rational approximation, evaluated at the
  // two-sided upper quantile p = (1 + confidence) / 2 in (0.5, 1).
  const double p = 0.5 + confidence / 2.0;
  constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                          -2.759285104469687e+02, 1.383577518672690e+02,
                          -3.066479806614716e+01, 2.506628277459239e+00};
  constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                          -1.556989798598866e+02, 6.680131188771972e+01,
                          -1.328068155288572e+01};
  constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                          -2.400758277161838e+00, -2.549732539343734e+00,
                          4.374664141464968e+00,  2.938163982698783e+00};
  constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                          2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double kPHigh = 1.0 - 0.02425;
  if (p <= kPHigh) {  // central region
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  const double q = std::sqrt(-2.0 * std::log(1.0 - p));  // upper tail
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

RobustEvaluation aggregate_robust(
    const model::NetworkConfig& cfg,
    const std::vector<const Evaluation*>& per_realization,
    const RobustnessOptions& robust) {
  require_valid(robust);
  const int k_count = static_cast<int>(per_realization.size());
  HI_REQUIRE(k_count == robust.realizations,
             "aggregate_robust: got " << k_count << " realizations, expected "
                                      << robust.realizations);
  RobustEvaluation out;
  out.nominal = *per_realization[0];
  out.realizations = k_count;
  out.worst_pdr = out.nominal.pdr;
  out.worst_power_mw = out.nominal.power_mw;
  out.worst_nlt_s = out.nominal.nlt_s;
  out.worst_p95_s = out.nominal.detail.latency.p95_s;
  double sum = 0.0;
  for (const Evaluation* ev : per_realization) {
    HI_REQUIRE(ev != nullptr, "aggregate_robust: null realization result");
    out.worst_pdr = std::min(out.worst_pdr, ev->pdr);
    out.worst_power_mw = std::max(out.worst_power_mw, ev->power_mw);
    out.worst_nlt_s = std::min(out.worst_nlt_s, ev->nlt_s);
    out.worst_p95_s = std::max(out.worst_p95_s, ev->detail.latency.p95_s);
    sum += ev->pdr;
  }
  out.mean_pdr = k_count == 1 ? out.nominal.pdr : sum / k_count;
  if (k_count >= 2) {
    // Two-pass sample variance: numerically stable and independent of
    // realization order beyond the (fixed) index order.
    double ss = 0.0;
    for (const Evaluation* ev : per_realization) {
      const double d = ev->pdr - out.mean_pdr;
      ss += d * d;
    }
    const double stderr_mean = std::sqrt(ss / (k_count - 1)) /
                               std::sqrt(static_cast<double>(k_count));
    const double half = robust_z_value(robust.confidence) * stderr_mean;
    out.pdr_lo = std::max(0.0, out.mean_pdr - half);
    out.pdr_hi = std::min(1.0, out.mean_pdr + half);
  } else {
    out.pdr_lo = out.mean_pdr;  // a single draw carries no spread estimate
    out.pdr_hi = out.mean_pdr;
  }
  out.protection_mw = model::robust_protection_mw(cfg, robust.gamma);
  // Γ = 0 adds exactly 0.0, so robust_power_mw is bit-identical to the
  // measured power on the collapse path.
  out.robust_power_mw = robust.gamma > 0
                            ? out.worst_power_mw + out.protection_mw
                            : out.worst_power_mw;
  return out;
}

CandidateRecord robust_record(const model::NetworkConfig& cfg,
                              const RobustEvaluation& rev) {
  CandidateRecord rec{cfg, model::node_power_mw(cfg) + rev.protection_mw,
                      rev.worst_pdr, rev.robust_power_mw, rev.worst_nlt_s};
  rec.pdr_lo = rev.pdr_lo;
  rec.pdr_hi = rev.pdr_hi;
  return rec;
}

RobustBatch::RobustBatch(Evaluator& eval, int threads,
                         RobustnessOptions robust)
    : eval_(eval), robust_(robust) {
  require_valid(robust_);
  HI_REQUIRE(threads >= 0, "threads must be >= 0, got " << threads);
  batches_.reserve(static_cast<std::size_t>(robust_.realizations));
  for (int k = 0; k < robust_.realizations; ++k) {
    batches_.push_back(
        std::make_unique<exec::BatchEvaluator>(eval_.realization(k), threads));
  }
}

std::vector<RobustEvaluation> RobustBatch::evaluate(
    const std::vector<model::NetworkConfig>& cfgs) {
  const int k_count = robust_.realizations;
  // Realization 0 first: the nominal evaluator sees the exact request
  // stream a non-robust run would issue, keeping its counters and cache
  // evolution aligned with the legacy path.
  std::vector<std::vector<const Evaluation*>> per_k;
  per_k.reserve(static_cast<std::size_t>(k_count));
  for (int k = 0; k < k_count; ++k) {
    per_k.push_back(batches_[static_cast<std::size_t>(k)]->evaluate(cfgs));
  }
  if (obs::MetricsRegistry* m = eval_.metrics(); m != nullptr) {
    m->counter("dse.realizations")
        .add(static_cast<std::uint64_t>(k_count) * cfgs.size());
  }
  std::vector<RobustEvaluation> out;
  out.reserve(cfgs.size());
  std::vector<const Evaluation*> per(static_cast<std::size_t>(k_count));
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    for (int k = 0; k < k_count; ++k) {
      per[static_cast<std::size_t>(k)] = per_k[static_cast<std::size_t>(k)][i];
    }
    out.push_back(aggregate_robust(cfgs[i], per, robust_));
  }
  return out;
}

RobustEvaluation RobustBatch::evaluate_one(const model::NetworkConfig& cfg) {
  return evaluate({cfg}).front();
}

}  // namespace hi::dse
