// hi-opt: Algorithm 1 — the paper's MILP + simulation DSE loop.
//
// Each iteration asks the MILP for *all* configurations attaining the
// current minimum of the approximate power model (RunMILP), simulates
// them (RunSim), keeps the best one meeting the reliability bound
// (Sort), and cuts the exhausted power level out of the MILP (Update).
// Termination: the MILP runs dry, or the α-discounted analytic power of
// the next level is guaranteed to exceed the simulated incumbent
// (line 5 of the paper's listing).
#pragma once

#include "dse/evaluator.hpp"
#include "dse/exploration.hpp"
#include "dse/milp_encoding.hpp"
#include "model/design_space.hpp"
#include "model/power.hpp"

namespace hi::dse {

/// Which early-termination bound the loop uses (line 5 of the listing).
enum class TerminationBound {
  /// Per-cell routing-free power floors (model::power_lower_bound_mw):
  /// stop only when *every* configuration the MILP could still propose
  /// provably consumes more than the incumbent, even under maximal
  /// packet loss.  Guaranteed to return the exhaustive-search optimum
  /// (cross-checked by the test sweeps).
  kSoundFloor,
  /// The paper's literal rule: α = P̄(S*) / P̄lb(S*) with the uniform
  /// loss discount P̄lb = Pbl + PDRmin (P̄ - Pbl), applied to the
  /// incumbent's own cell.  Terminates much earlier (reproduces the
  /// ~87% simulation saving) but is *not* sound when a cheap lossy
  /// configuration hides on a pruned level — e.g. a CSMA mesh whose
  /// relay storms collide, whose simulated power collapses far below
  /// the NreTx-scaled analytic estimate.  bench_alg1_vs_exhaustive
  /// measures both modes.
  kPaperAlpha,
};

/// Algorithm-1 knobs.
struct Algorithm1Options {
  double pdr_min = 0.9;          ///< PDRmin, in [0,1]
  int max_iterations = 10'000;   ///< safety valve on outer loop
  bool use_alpha_termination = true;  ///< ablation switch (off = run the
                                      ///< MILP completely dry)
  TerminationBound bound = TerminationBound::kSoundFloor;
  /// Loss-discount safety factor of the bound; smaller is more
  /// conservative (more simulations, same optimum).  See
  /// model::power_lower_bound_mw.
  double alpha_kappa = model::kLossDiscountKappa;
  milp::Options milp{};
  /// Worker threads for batch-evaluating each MILP level's
  /// alternative-optima set (hi::exec::BatchEvaluator).  -1 inherits
  /// EvaluatorSettings::threads, 0 forces serial.  Results, the
  /// incumbent, and the simulation counters are bit-identical at any
  /// value.
  int threads = -1;
};

/// Runs Algorithm 1 on `scenario`, evaluating candidates through `eval`.
/// The evaluator's simulation counter delta is reported in the result.
[[nodiscard]] ExplorationResult run_algorithm1(const model::Scenario& scenario,
                                               Evaluator& eval,
                                               const Algorithm1Options& opt);

}  // namespace hi::dse
