// hi-opt: Algorithm 1 — the paper's MILP + simulation DSE loop.
//
// Each iteration asks the MILP for *all* configurations attaining the
// current minimum of the approximate power model (RunMILP), simulates
// them (RunSim), keeps the best one meeting the reliability bound
// (Sort), and cuts the exhausted power level out of the MILP (Update).
// Termination: the MILP runs dry, or the α-discounted analytic power of
// the next level is guaranteed to exceed the simulated incumbent
// (line 5 of the paper's listing).
//
// The preferred entry point is run_algorithm1(scenario, eval,
// ExplorationOptions) declared in dse/explorer.hpp (or
// Explorer::algorithm1().run(...)); the Algorithm1Options overload below
// is a deprecated shim kept so pre-unification call sites compile.
#pragma once

#include "dse/evaluator.hpp"
#include "dse/exploration.hpp"
#include "dse/explorer.hpp"
#include "dse/milp_encoding.hpp"
#include "model/design_space.hpp"
#include "model/power.hpp"

namespace hi::dse {

/// Pre-unification Algorithm-1 knobs.  Superseded by ExplorationOptions
/// (dse/explorer.hpp), which adds the observability and progress hooks;
/// this struct maps onto it field by field (max_iterations -> budget).
struct Algorithm1Options {
  double pdr_min = 0.9;          ///< PDRmin, in [0,1]
  int max_iterations = 10'000;   ///< safety valve on outer loop
  bool use_alpha_termination = true;  ///< ablation switch (off = run the
                                      ///< MILP completely dry)
  TerminationBound bound = TerminationBound::kSoundFloor;
  /// Loss-discount safety factor of the kPaperAlpha bound; smaller is
  /// more conservative (more simulations).  See
  /// model::power_lower_bound_mw.  kSoundFloor ignores it.
  double alpha_kappa = model::kLossDiscountKappa;
  milp::Options milp{};
  /// Worker threads for batch-evaluating each MILP level's
  /// alternative-optima set (hi::exec::BatchEvaluator).  -1 inherits
  /// EvaluatorSettings::threads, 0 forces serial.  Results, the
  /// incumbent, and the simulation counters are bit-identical at any
  /// value.
  int threads = -1;

  /// The equivalent unified options value.
  [[nodiscard]] ExplorationOptions to_exploration_options() const {
    ExplorationOptions out;
    out.pdr_min = pdr_min;
    out.budget = max_iterations;
    out.threads = threads;
    out.use_alpha_termination = use_alpha_termination;
    out.bound = bound;
    out.alpha_kappa = alpha_kappa;
    out.milp = milp;
    return out;
  }
};

/// Deprecated shim: forwards to the ExplorationOptions overload
/// (dse/explorer.hpp).
///
/// Removal target: the next API-cleanup PR.  No in-tree caller remains
/// (tests cover the Algorithm1Options mapping via
/// to_exploration_options() only); out-of-tree code should migrate to
/// ExplorationOptions now.
[[deprecated("use run_algorithm1(scenario, eval, ExplorationOptions) from "
             "dse/explorer.hpp")]] [[nodiscard]]
ExplorationResult run_algorithm1(const model::Scenario& scenario,
                                 Evaluator& eval,
                                 const Algorithm1Options& opt);

}  // namespace hi::dse
