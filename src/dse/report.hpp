// hi-opt: exploration-result reporting.
//
// Serializes an ExplorationResult to CSV (one row per simulated design
// point — the raw data behind Fig. 3) and renders compact text
// summaries.  Kept out of the explorers so they stay pure.
#pragma once

#include <ostream>
#include <string>

#include "dse/exploration.hpp"

namespace hi::dse {

/// Writes `history` as CSV: label, topology mask, N, routing, MAC,
/// tx_dbm, analytic_power_mw, sim_pdr, sim_power_mw, sim_nlt_days.
void write_history_csv(const ExplorationResult& result, std::ostream& os);

/// One-paragraph human summary of an exploration outcome.  When the
/// result carries a non-empty obs::Snapshot (it always does for runs
/// through the unified explorers), the summary also reports cache hits
/// and — for Algorithm 1 — MILP branch-and-bound nodes and LP pivots.
[[nodiscard]] std::string summarize(const ExplorationResult& result,
                                    double pdr_min);

/// Extracts the Pareto front of the (maximize PDR, maximize NLT)
/// trade-off from an exploration history — the staircase a designer
/// actually chooses from in Fig. 3.  Duplicate design points are
/// collapsed; the result is sorted by ascending PDR (and therefore
/// descending NLT).
[[nodiscard]] std::vector<CandidateRecord> pareto_front(
    const std::vector<CandidateRecord>& history);

}  // namespace hi::dse
