// hi-opt: exhaustive-search baseline.
//
// Simulates every configuration satisfying the topological and
// configuration constraints and returns the minimum-power one meeting
// the reliability bound.  This is the ground truth Algorithm 1 is
// compared against ("87% reduction in the number of required
// simulations") and also the generator of Fig. 3's full scatter.
//
// The preferred entry point is run_exhaustive(scenario, eval,
// ExplorationOptions) declared in dse/explorer.hpp (or
// Explorer::exhaustive().run(...)); the double-pdr_min overload below is
// a deprecated shim kept so pre-unification call sites compile.
#pragma once

#include "dse/evaluator.hpp"
#include "dse/exploration.hpp"
#include "dse/explorer.hpp"
#include "model/design_space.hpp"

namespace hi::dse {

/// Deprecated shim: forwards to the ExplorationOptions overload
/// (dse/explorer.hpp) with only pdr_min set.
///
/// Removal target: the next API-cleanup PR.  No in-tree caller remains;
/// out-of-tree code should migrate to ExplorationOptions now.
[[deprecated("use run_exhaustive(scenario, eval, ExplorationOptions) from "
             "dse/explorer.hpp")]] [[nodiscard]]
ExplorationResult run_exhaustive(const model::Scenario& scenario,
                                 Evaluator& eval, double pdr_min);

}  // namespace hi::dse
