// hi-opt: exhaustive-search baseline.
//
// Simulates every configuration satisfying the topological and
// configuration constraints and returns the minimum-power one meeting
// the reliability bound.  This is the ground truth Algorithm 1 is
// compared against ("87% reduction in the number of required
// simulations") and also the generator of Fig. 3's full scatter.
#pragma once

#include "dse/evaluator.hpp"
#include "dse/exploration.hpp"
#include "model/design_space.hpp"

namespace hi::dse {

/// Runs exhaustive search on `scenario` at the given reliability bound.
/// When the evaluator's EvaluatorSettings::threads is nonzero, the sweep
/// batch-evaluates the design space in parallel chunks through
/// hi::exec::BatchEvaluator — bit-identical to the serial sweep,
/// including the simulation counters.
[[nodiscard]] ExplorationResult run_exhaustive(const model::Scenario& scenario,
                                               Evaluator& eval,
                                               double pdr_min);

}  // namespace hi::dse
