// hi-opt: the unified explorer front end.
//
// The three exploration strategies — Algorithm 1 (MILP + simulation),
// exhaustive search, and simulated annealing — historically each grew
// their own options struct with duplicated knobs (pdr_min, threads).
// ExplorationOptions is the one bag every explorer consumes; the knobs a
// strategy does not use are simply ignored, so one options value can
// drive a fair three-way comparison.  Explorer is a small value type
// that names a strategy and dispatches run(); benches iterate
// Explorer::all() instead of hand-rolling three call sites.
//
// Observability: every run is wrapped in a detail::RunScope that
// installs the active obs::MetricsRegistry into the evaluator (the
// caller's via ExplorationOptions::metrics, the evaluator's own, or a
// private one — in that order), snapshots it before and after, and
// stores the delta in ExplorationResult::metrics.  The legacy scalar
// fields (`simulations`, `milp_bnb_nodes`) are populated from the same
// counters, so they always agree with the snapshot bit-for-bit.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "dse/evaluator.hpp"
#include "dse/exploration.hpp"
#include "dse/robustness.hpp"
#include "milp/solver.hpp"
#include "model/design_space.hpp"
#include "model/power.hpp"
#include "obs/metrics.hpp"

namespace hi::dse {

/// The four exploration strategies.
enum class ExplorerKind {
  kAlgorithm1,  ///< the paper's MILP + simulation loop
  kExhaustive,  ///< simulate the whole feasible design space
  kAnnealing,   ///< simulated-annealing baseline
  kFastIlp,     ///< fast ILP-based heuristic (D'Andreagiovanni & Nardin):
                ///< Algorithm 1's loop with a patience cutoff instead of
                ///< the sound floor — not exact, benchmarked against it
};

[[nodiscard]] const char* to_string(ExplorerKind kind);

/// Which early-termination bound Algorithm 1 uses (line 5 of the
/// paper's listing).
enum class TerminationBound {
  /// Per-cell measured-power floors (model::measured_power_floor_mw,
  /// delivery accounting against the simulator's energy metering): stop
  /// only when *every* configuration the MILP could still propose
  /// provably measures more than the incumbent.  Guaranteed to return
  /// the exhaustive-search optimum (cross-checked by the test sweeps and
  /// the hi::check fuzzer).
  kSoundFloor,
  /// The paper's literal rule: α = P̄(S*) / P̄lb(S*) with the uniform
  /// loss discount P̄lb = Pbl + PDRmin (P̄ - Pbl), applied to the
  /// incumbent's own cell.  Terminates much earlier (reproduces the
  /// ~87% simulation saving) but is *not* sound when a cheap lossy
  /// configuration hides on a pruned level — e.g. a CSMA mesh whose
  /// relay storms collide, whose simulated power collapses far below
  /// the NreTx-scaled analytic estimate.  bench_alg1_vs_exhaustive
  /// measures both modes.
  kPaperAlpha,
};

/// A progress heartbeat handed to ExplorationOptions::progress.
struct ProgressInfo {
  ExplorerKind kind{};            ///< which explorer is reporting
  int iteration = 0;              ///< explorer-specific outer iteration
  std::uint64_t simulations = 0;  ///< distinct design points so far
  bool feasible = false;          ///< an incumbent meeting PDRmin exists
  double best_power_mw = 0.0;     ///< incumbent power (valid if feasible)
};

/// Progress callback.  Called from the exploring thread between
/// evaluation rounds — cheap work only; never re-enter the evaluator.
using ProgressFn = std::function<void(const ProgressInfo&)>;

/// The one options bag all explorers consume.  Strategy-specific knobs
/// are grouped and ignored by the other strategies.
struct ExplorationOptions {
  double pdr_min = 0.9;  ///< PDRmin, in [0,1]

  /// Outer-iteration budget; -1 = the strategy's default (Algorithm 1:
  /// 10'000 rounds, a safety valve; annealing: 400 steps).  Exhaustive
  /// search always sweeps the whole space and ignores it.
  int budget = -1;

  /// Worker threads for batch evaluation (hi::exec::BatchEvaluator).
  /// -1 inherits EvaluatorSettings::threads, 0 forces serial.  Results,
  /// incumbents, and all counters are bit-identical at any value.
  int threads = -1;

  /// Randomness of the annealer's moves and acceptance (the other
  /// strategies are deterministic and ignore it).
  std::uint64_t seed = 7;

  // --- Algorithm 1 ---------------------------------------------------
  bool use_alpha_termination = true;  ///< ablation switch (off = run the
                                      ///< MILP completely dry)
  TerminationBound bound = TerminationBound::kSoundFloor;
  /// Loss-discount safety factor of the kPaperAlpha bound; smaller is
  /// more conservative (more simulations).  See
  /// model::power_lower_bound_mw.  kSoundFloor ignores it.
  double alpha_kappa = model::kLossDiscountKappa;
  /// Inner MILP solver knobs.  Options::metrics is overridden with the
  /// run's active registry so milp.* counters land in the snapshot.
  milp::Options milp{};

  // --- simulated annealing -------------------------------------------
  double t_start_mw = 2.0;  ///< initial temperature (energy is in mW;
                            ///< hot enough to cross the star->mesh
                            ///< power barrier early on)
  double t_end_mw = 0.005;  ///< final temperature
  double penalty_mw_per_pdr = 50.0;  ///< infeasibility penalty slope

  // --- fast ILP heuristic --------------------------------------------
  /// MILP levels the fast-ILP explorer keeps climbing past a feasible
  /// incumbent without improvement before it stops (>= 1).  Larger is
  /// closer to Algorithm 1's exactness, smaller is faster.
  int fast_ilp_patience = 2;

  // --- robustness (DESIGN.md §13) ------------------------------------
  /// Γ / multi-realization knobs consumed by every explorer.  Inactive
  /// (the default) selects the pre-robust code paths bit-identically;
  /// active runs judge feasibility on the worst realization and
  /// optimize worst-case power + Γ-protection.  Robust Algorithm 1
  /// supports only the kSoundFloor termination bound.
  RobustnessOptions robust{};

  // --- observability -------------------------------------------------
  /// Registry the run records into; installed into the evaluator for
  /// the duration of the run (and restored afterwards).  Null = use the
  /// evaluator's own registry, or a run-private one if it has none.
  /// Either way ExplorationResult::metrics carries the run's delta.
  obs::MetricsRegistry* metrics = nullptr;
  ProgressFn progress;  ///< empty = no progress reporting
};

/// Runs Algorithm 1 on `scenario`, evaluating candidates through `eval`.
[[nodiscard]] ExplorationResult run_algorithm1(const model::Scenario& scenario,
                                               Evaluator& eval,
                                               const ExplorationOptions& opt);

/// Runs exhaustive search (budget is ignored; the whole space is swept).
[[nodiscard]] ExplorationResult run_exhaustive(const model::Scenario& scenario,
                                               Evaluator& eval,
                                               const ExplorationOptions& opt);

/// Runs simulated annealing.  Simulations are counted via the evaluator
/// (revisited states hit the cache and are not recounted, which favors
/// the baseline).
[[nodiscard]] ExplorationResult run_annealing(const model::Scenario& scenario,
                                              Evaluator& eval,
                                              const ExplorationOptions& opt);

/// Runs the fast ILP-based heuristic (D'Andreagiovanni & Nardin's
/// WBAN-design heuristic ported onto this code base): Algorithm 1's
/// ascending-MILP-level loop, but it stops `fast_ilp_patience` levels
/// after the feasible incumbent last improved instead of waiting for
/// the sound power floor.  Orders of magnitude fewer simulations on
/// deep level stacks; NOT exact — EXPERIMENTS.md documents the
/// optimality gap against (robust) Algorithm 1.
[[nodiscard]] ExplorationResult run_fast_ilp(const model::Scenario& scenario,
                                             Evaluator& eval,
                                             const ExplorationOptions& opt);

/// A named exploration strategy; run() dispatches to the matching
/// run_* function.  Copyable value type.
class Explorer {
 public:
  [[nodiscard]] static Explorer algorithm1() {
    return Explorer(ExplorerKind::kAlgorithm1);
  }
  [[nodiscard]] static Explorer exhaustive() {
    return Explorer(ExplorerKind::kExhaustive);
  }
  [[nodiscard]] static Explorer annealing() {
    return Explorer(ExplorerKind::kAnnealing);
  }
  [[nodiscard]] static Explorer fast_ilp() {
    return Explorer(ExplorerKind::kFastIlp);
  }
  /// All strategies, in the order the paper compares them (the fast-ILP
  /// heuristic, which the paper does not have, comes last).
  [[nodiscard]] static std::vector<Explorer> all() {
    return {algorithm1(), exhaustive(), annealing(), fast_ilp()};
  }

  [[nodiscard]] ExplorerKind kind() const { return kind_; }
  [[nodiscard]] const char* name() const { return to_string(kind_); }

  [[nodiscard]] ExplorationResult run(const model::Scenario& scenario,
                                      Evaluator& eval,
                                      const ExplorationOptions& opt = {}) const;

 private:
  explicit Explorer(ExplorerKind kind) : kind_(kind) {}
  ExplorerKind kind_;
};

namespace detail {

/// RAII harness shared by the three run_* functions: validates the
/// common options, resolves the active registry (see the file comment)
/// and installs it into the evaluator, snapshots the metrics baseline,
/// and on finish() fills the result's simulations / wall_time_s /
/// metrics / milp_bnb_nodes fields from the same counters.  The
/// destructor restores the evaluator's previous registry.
class RunScope {
 public:
  RunScope(ExplorerKind kind, Evaluator& eval, const ExplorationOptions& opt);
  ~RunScope();
  RunScope(const RunScope&) = delete;
  RunScope& operator=(const RunScope&) = delete;

  /// The registry this run records into; never null.
  [[nodiscard]] obs::MetricsRegistry& registry() const { return *registry_; }

  /// Resolved worker-thread count (options override, else evaluator).
  [[nodiscard]] int threads() const { return threads_; }

  /// Invokes the caller's progress callback (no-op when unset).
  void progress(int iteration, const ExplorationResult& res) const;

  /// Fills the run-summary fields of `res`; call exactly once, last.
  void finish(ExplorationResult& res);

 private:
  ExplorerKind kind_;
  Evaluator& eval_;
  const ExplorationOptions& opt_;
  std::unique_ptr<obs::MetricsRegistry> owned_;  ///< fallback registry
  obs::MetricsRegistry* registry_ = nullptr;
  obs::MetricsRegistry* previous_ = nullptr;
  bool installed_ = false;
  obs::Snapshot start_;
  std::uint64_t sims0_ = 0;
  int threads_ = 0;
  double t0_s_ = 0.0;  ///< steady-clock start, in seconds
};

}  // namespace detail

}  // namespace hi::dse
