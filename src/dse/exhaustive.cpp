// hi-opt: exhaustive-search baseline.
//
// Simulates every configuration satisfying the topological and
// configuration constraints and returns the minimum-power one meeting
// the reliability bound.  This is the ground truth Algorithm 1 is
// compared against ("87% reduction in the number of required
// simulations") and also the generator of Fig. 3's full scatter.
//
// Robust mode (ExplorationOptions::robust active): the same chunked
// sweep, evaluated through RobustBatch — feasibility on the worst of K
// realizations, optimum by worst-case power + Γ-protection.  This is
// the ground truth the robust Algorithm 1 property checks against.
//
// Entry point: run_exhaustive(scenario, eval, ExplorationOptions),
// declared in dse/explorer.hpp (or Explorer::exhaustive().run(...)).
#include <algorithm>
#include <optional>

#include "common/assert.hpp"
#include "dse/explorer.hpp"
#include "dse/robustness.hpp"
#include "exec/batch_evaluator.hpp"
#include "model/power.hpp"

namespace hi::dse {

ExplorationResult run_exhaustive(const model::Scenario& scenario,
                                 Evaluator& eval,
                                 const ExplorationOptions& opt) {
  detail::RunScope scope(ExplorerKind::kExhaustive, eval, opt);

  const std::vector<model::NetworkConfig> space = scenario.feasible_configs();
  const int threads = scope.threads();
  std::optional<exec::BatchEvaluator> batch;
  std::optional<RobustBatch> rbatch;
  if (opt.robust.active()) {
    rbatch.emplace(eval, threads, opt.robust);
  } else {
    batch.emplace(eval, threads);
  }
  // Sweep the design space in chunks: wide enough to keep every worker
  // busy, small enough to bound the in-flight result memory.  Chunking
  // cannot change any outcome — results are committed in request order
  // either way (see exec::BatchEvaluator).
  const std::size_t chunk =
      threads > 0 ? std::max<std::size_t>(8 * static_cast<std::size_t>(threads),
                                          32)
                  : space.size();

  ExplorationResult res;
  for (std::size_t begin = 0; begin < space.size(); begin += chunk) {
    const std::size_t end = std::min(space.size(), begin + chunk);
    const std::vector<model::NetworkConfig> slice(
        space.begin() + static_cast<std::ptrdiff_t>(begin),
        space.begin() + static_cast<std::ptrdiff_t>(end));
    if (rbatch) {
      const std::vector<RobustEvaluation> revs = rbatch->evaluate(slice);
      for (std::size_t i = 0; i < slice.size(); ++i) {
        const model::NetworkConfig& cfg = slice[i];
        const RobustEvaluation& rev = revs[i];
        res.history.push_back(robust_record(cfg, rev));
        ++res.iterations;
        if (rev.worst_pdr >= opt.pdr_min &&
            (!res.feasible || rev.robust_power_mw < res.best_power_mw)) {
          res.feasible = true;
          res.best = cfg;
          res.best_power_mw = rev.robust_power_mw;
          res.best_pdr = rev.worst_pdr;
          res.best_nlt_s = rev.worst_nlt_s;
          res.best_pdr_lo = rev.pdr_lo;
          res.best_pdr_hi = rev.pdr_hi;
          res.best_protection_mw = rev.protection_mw;
        }
      }
    } else {
      const std::vector<const Evaluation*> evals = batch->evaluate(slice);
      for (std::size_t i = 0; i < slice.size(); ++i) {
        const model::NetworkConfig& cfg = slice[i];
        const Evaluation& ev = *evals[i];
        res.history.push_back(CandidateRecord{cfg, model::node_power_mw(cfg),
                                              ev.pdr, ev.power_mw, ev.nlt_s});
        ++res.iterations;
        if (ev.pdr >= opt.pdr_min &&
            (!res.feasible || ev.power_mw < res.best_power_mw)) {
          res.feasible = true;
          res.best = cfg;
          res.best_power_mw = ev.power_mw;
          res.best_pdr = ev.pdr;
          res.best_nlt_s = ev.nlt_s;
        }
      }
    }
    scope.progress(res.iterations, res);  // one heartbeat per chunk
  }

  scope.finish(res);
  return res;
}

}  // namespace hi::dse
