// hi-opt: exhaustive-search baseline.
//
// Simulates every configuration satisfying the topological and
// configuration constraints and returns the minimum-power one meeting
// the reliability bound.  This is the ground truth Algorithm 1 is
// compared against ("87% reduction in the number of required
// simulations") and also the generator of Fig. 3's full scatter.
//
// Entry point: run_exhaustive(scenario, eval, ExplorationOptions),
// declared in dse/explorer.hpp (or Explorer::exhaustive().run(...)).
#include <algorithm>

#include "common/assert.hpp"
#include "dse/explorer.hpp"
#include "exec/batch_evaluator.hpp"
#include "model/power.hpp"

namespace hi::dse {

ExplorationResult run_exhaustive(const model::Scenario& scenario,
                                 Evaluator& eval,
                                 const ExplorationOptions& opt) {
  detail::RunScope scope(ExplorerKind::kExhaustive, eval, opt);

  const std::vector<model::NetworkConfig> space = scenario.feasible_configs();
  const int threads = scope.threads();
  exec::BatchEvaluator batch(eval, threads);
  // Sweep the design space in chunks: wide enough to keep every worker
  // busy, small enough to bound the in-flight result memory.  Chunking
  // cannot change any outcome — results are committed in request order
  // either way (see exec::BatchEvaluator).
  const std::size_t chunk =
      threads > 0 ? std::max<std::size_t>(8 * static_cast<std::size_t>(threads),
                                          32)
                  : space.size();

  ExplorationResult res;
  for (std::size_t begin = 0; begin < space.size(); begin += chunk) {
    const std::size_t end = std::min(space.size(), begin + chunk);
    const std::vector<model::NetworkConfig> slice(
        space.begin() + static_cast<std::ptrdiff_t>(begin),
        space.begin() + static_cast<std::ptrdiff_t>(end));
    const std::vector<const Evaluation*> evals = batch.evaluate(slice);
    for (std::size_t i = 0; i < slice.size(); ++i) {
      const model::NetworkConfig& cfg = slice[i];
      const Evaluation& ev = *evals[i];
      res.history.push_back(CandidateRecord{cfg, model::node_power_mw(cfg),
                                            ev.pdr, ev.power_mw, ev.nlt_s});
      ++res.iterations;
      if (ev.pdr >= opt.pdr_min &&
          (!res.feasible || ev.power_mw < res.best_power_mw)) {
        res.feasible = true;
        res.best = cfg;
        res.best_power_mw = ev.power_mw;
        res.best_pdr = ev.pdr;
        res.best_nlt_s = ev.nlt_s;
      }
    }
    scope.progress(res.iterations, res);  // one heartbeat per chunk
  }

  scope.finish(res);
  return res;
}

}  // namespace hi::dse
