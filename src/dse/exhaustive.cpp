#include "dse/exhaustive.hpp"

#include <chrono>

#include "common/assert.hpp"
#include "model/power.hpp"

namespace hi::dse {

ExplorationResult run_exhaustive(const model::Scenario& scenario,
                                 Evaluator& eval, double pdr_min) {
  HI_REQUIRE(pdr_min >= 0.0 && pdr_min <= 1.0,
             "pdr_min must be in [0,1], got " << pdr_min);
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t sims0 = eval.simulations();

  ExplorationResult res;
  for (const model::NetworkConfig& cfg : scenario.feasible_configs()) {
    const Evaluation& ev = eval.evaluate(cfg);
    res.history.push_back(CandidateRecord{cfg, model::node_power_mw(cfg),
                                          ev.pdr, ev.power_mw, ev.nlt_s});
    ++res.iterations;
    if (ev.pdr >= pdr_min &&
        (!res.feasible || ev.power_mw < res.best_power_mw)) {
      res.feasible = true;
      res.best = cfg;
      res.best_power_mw = ev.power_mw;
      res.best_pdr = ev.pdr;
      res.best_nlt_s = ev.nlt_s;
    }
  }
  res.simulations = eval.simulations() - sims0;
  res.wall_time_s = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  return res;
}

}  // namespace hi::dse
