// hi-opt: simulation-based evaluator — the RunSim of Algorithm 1.
//
// Wraps net::simulate_averaged with a design-point cache and counters.
// The paper's efficiency metric is the number of simulations an explorer
// needs (87% fewer than exhaustive search); the Evaluator is the single
// place that number is counted, so Algorithm 1, exhaustive search, and
// simulated annealing are measured identically.  A cached re-evaluation
// (e.g. simulated annealing revisiting a state) is not a new simulation.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "model/config.hpp"
#include "net/network.hpp"

namespace hi::dse {

/// Outcome of evaluating one design point.
struct Evaluation {
  double pdr = 0.0;        ///< simulated network PDR, Eq. (7), in [0,1]
  double power_mw = 0.0;   ///< simulated worst lifetime-relevant node power
  double nlt_s = 0.0;      ///< simulated network lifetime, Eq. (4)
  net::SimResult detail;   ///< averaged run detail
};

/// Evaluation settings shared by all explorers in one experiment.
struct EvaluatorSettings {
  net::SimParams sim{};  ///< Tsim etc.; seed is the experiment's root seed
  int runs = 3;          ///< replications averaged per design point
  net::ChannelFactory channel = net::default_channel_factory();
};

/// See file comment.
class Evaluator {
 public:
  explicit Evaluator(EvaluatorSettings settings);

  /// Simulates (or returns the cached result for) one design point.
  const Evaluation& evaluate(const model::NetworkConfig& cfg);

  /// Number of *distinct* design points requested since construction or
  /// the last reset_counters().  A design point served from the cache
  /// still counts once per counting epoch: an explorer's cost is the
  /// set of simulations it *needs*, regardless of whether a previous
  /// experiment already paid for them.  Repeat requests within the same
  /// epoch (e.g. simulated annealing revisiting a state) stay free.
  [[nodiscard]] std::uint64_t simulations() const { return simulations_; }

  /// Number of cache hits served (across epochs).
  [[nodiscard]] std::uint64_t cache_hits() const { return cache_hits_; }

  /// Starts a new counting epoch (the result cache is kept).
  void reset_counters();

  [[nodiscard]] const EvaluatorSettings& settings() const { return settings_; }

 private:
  EvaluatorSettings settings_;
  std::unordered_map<std::uint64_t, Evaluation> cache_;
  std::unordered_set<std::uint64_t> counted_this_epoch_;
  std::uint64_t simulations_ = 0;
  std::uint64_t cache_hits_ = 0;
};

}  // namespace hi::dse
