// hi-opt: simulation-based evaluator — the RunSim of Algorithm 1.
//
// Wraps net::simulate_averaged with a design-point cache and counters.
// The paper's efficiency metric is the number of simulations an explorer
// needs (87% fewer than exhaustive search); the Evaluator is the single
// place that number is counted, so Algorithm 1, exhaustive search, and
// simulated annealing are measured identically.  A cached re-evaluation
// (e.g. simulated annealing revisiting a state) is not a new simulation.
//
// Concurrency: the Evaluator itself is NOT thread-safe — all cache and
// counter updates go through the single-threaded admit() path.  Parallel
// evaluation is layered on top by hi::exec::BatchEvaluator, which fans
// the pure simulate_uncached() out across workers and then replays
// admit() serially in request order, making parallel results (metrics,
// incumbents, and both counters) bit-identical to a serial run.  That
// works because a design point's randomness is seeded from its
// design_key() and all design points share one channel-realization root
// (common random numbers): what a simulation returns never depends on
// which thread ran it or when.
//
// Durability is layered on top the same way (hi::store, DESIGN.md §10):
// preload() seeds the cache with results a previous process already
// paid for, and a store sink observes every fresh simulation for
// write-through.  Store-served design points are counted in
// store_hits() / `dse.store_hits`, never in simulations(), so a
// store-warmed run reports simulations == (cold total − store hits)
// while everything else — optima, history, cache_hits — stays
// bit-identical to a cold run.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "model/config.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"

namespace hi::dse {

/// Channel-realization seed of realization `k >= 1`, derived from the
/// experiment's channel root (`sim.channel_seed`, falling back to
/// `sim.seed` when unset — the same fallback simulate_uncached applies).
/// Realization 0 *is* the root: the nominal channel every pre-robust
/// run already used.  The derivation is nested — realization k's seed
/// does not depend on how many realizations exist — so growing K only
/// ever *adds* channel draws, which is what makes the robust optimum
/// monotone in K and lets a K=4 sweep reuse every K=2 store record.
/// Forced nonzero so it can never alias the "unset, use sim.seed" case.
[[nodiscard]] std::uint64_t realization_channel_seed(
    std::uint64_t channel_root, int k);

/// Outcome of evaluating one design point.
struct Evaluation {
  double pdr = 0.0;        ///< simulated network PDR, Eq. (7), in [0,1]
  double power_mw = 0.0;   ///< simulated worst lifetime-relevant node power
  double nlt_s = 0.0;      ///< simulated network lifetime, Eq. (4)
  net::SimResult detail;   ///< averaged run detail
};

/// Evaluation settings shared by all explorers in one experiment.
struct EvaluatorSettings {
  net::SimParams sim{};  ///< Tsim etc.; seed is the experiment's root seed
  int runs = 3;          ///< replications averaged per design point
  net::ChannelFactory channel = net::default_channel_factory();
  /// Worker threads the explorers may use to batch-evaluate candidates
  /// through hi::exec::BatchEvaluator.  0 = serial (the default,
  /// preserving every existing call site).  Any value yields
  /// bit-identical results and counters; see the file comment.
  /// Deprecated in favour of ExplorationOptions::threads (dse/explorer.hpp),
  /// which overrides this when >= 0; kept as the evaluator-wide default.
  int threads = 0;
  /// Observability registry (null = not observed).  The evaluator
  /// records `dse.simulations` / `dse.cache_hits` counters — mirroring
  /// simulations()/cache_hits() exactly — the `dse.simulate_s` timing
  /// histogram, and forwards the registry into every simulation run
  /// (net.* / des.* counters).  Explorers install their own registry for
  /// the duration of a run when ExplorationOptions::metrics is set; see
  /// Evaluator::set_metrics.
  obs::MetricsRegistry* metrics = nullptr;
};

/// See file comment.
class Evaluator {
 public:
  explicit Evaluator(EvaluatorSettings settings);

  /// Simulates (or returns the cached result for) one design point.
  ///
  /// Reference stability: the returned reference stays valid for the
  /// whole lifetime of the Evaluator, across any number of subsequent
  /// evaluate() calls.  Callers depend on this — simulated annealing
  /// holds the current state's Evaluation while evaluating neighbours,
  /// and BatchEvaluator returns pointers into the cache — and it is only
  /// safe because std::unordered_map is node-based: rehashing reseats
  /// buckets but never moves or invalidates elements
  /// ([unord.req.general]).  Do not swap the cache for an
  /// open-addressing map without removing that guarantee everywhere.
  const Evaluation& evaluate(const model::NetworkConfig& cfg) {
    return admit(cfg, nullptr);
  }

  /// Runs the simulation for `cfg` without touching the cache or the
  /// counters.  Pure: the result depends only on the settings and on
  /// cfg.design_key(), so concurrent calls from worker threads are safe
  /// as long as settings().channel tolerates concurrent invocation (the
  /// default factory is stateless; see net::ChannelFactory).
  [[nodiscard]] Evaluation simulate_uncached(
      const model::NetworkConfig& cfg) const {
    // Derive the design point's node-randomness seed from the experiment
    // root so results do not depend on evaluation order, but keep one
    // shared channel-realization root: every configuration is judged
    // against the same fades (common random numbers).
    net::SimParams sp = settings_.sim;
    sp.seed = Rng{settings_.sim.seed}.fork(cfg.design_key()).next_u64();
    sp.channel_seed = settings_.sim.channel_seed != 0
                          ? settings_.sim.channel_seed
                          : settings_.sim.seed;
    // Stack counters (net.* / des.*) flow into the active registry; the
    // registry is atomic, so concurrent workers recording is safe and
    // the sums are thread-count-independent.
    sp.metrics = metrics_;
    obs::ScopedTimer timer(metrics_, "dse.simulate_s");
    Evaluation ev;
    ev.detail = net::simulate_averaged(cfg, sp, settings_.runs,
                                       settings_.channel);
    ev.pdr = ev.detail.pdr;
    ev.power_mw = ev.detail.worst_power_mw;
    ev.nlt_s = ev.detail.nlt_s;
    return ev;
  }

  /// True when the design point's result is already cached.
  [[nodiscard]] bool cached(const model::NetworkConfig& cfg) const {
    return cache_.contains(cfg.design_key());
  }

  /// The serial bookkeeping step shared by evaluate() and the batch
  /// engine: counts the request, serves a cache hit (after verifying the
  /// stored canonical config, so a 64-bit design_key() collision fails
  /// loudly instead of silently aliasing two design points), and on a
  /// miss inserts `*precomputed` if non-null — else simulates in place.
  /// BatchEvaluator calls this in the caller's request order after its
  /// parallel compute phase; that replay is what makes the parallel
  /// counters bit-identical to serial.
  ///
  /// Store accounting: the first serve of a preload()ed entry is the
  /// moment a cold run would have simulated, so it counts as a store
  /// hit instead of a simulation *and* instead of a cache hit; the
  /// entry then sheds its preloaded mark and behaves exactly like a
  /// simulated one (including the once-per-epoch re-count on later
  /// epochs).  With no preloads this path is bit-identical to the
  /// pre-store behaviour.
  const Evaluation& admit(const model::NetworkConfig& cfg,
                          const Evaluation* precomputed) {
    const std::uint64_t key = cfg.design_key();
    const auto it = cache_.find(key);
    const bool store_serve = it != cache_.end() && it->second.preloaded;
    if (counted_this_epoch_.insert(key).second) {
      if (store_serve) {
        ++store_hits_;
        if (store_hits_counter_ != nullptr) {
          store_hits_counter_->add(1);
        }
      } else {
        ++simulations_;
        if (sims_counter_ != nullptr) {
          sims_counter_->add(1);  // the paper's headline count, mirrored
        }
      }
    }
    if (it != cache_.end()) {
      HI_REQUIRE(it->second.cfg == cfg,
                 "design_key collision: key " << key << " maps both "
                     << it->second.cfg.label() << " and " << cfg.label()
                     << "; the cached result would be wrong for one of "
                        "them — widen design_key()");
      it->second.preloaded = false;
      if (!store_serve) {
        ++cache_hits_;
        if (cache_hits_counter_ != nullptr) {
          cache_hits_counter_->add(1);
        }
      }
      return it->second.ev;
    }
    CacheEntry entry{cfg, precomputed != nullptr ? *precomputed
                                                 : simulate_uncached(cfg)};
    const Evaluation& ev = cache_.emplace(key, std::move(entry)).first->second.ev;
    if (store_sink_) {
      store_sink_(cfg, ev);  // write-through: a fresh simulation landed
    }
    return ev;
  }

  /// Number of *distinct* design points requested since construction or
  /// the last reset_counters().  A design point served from the cache
  /// still counts once per counting epoch: an explorer's cost is the
  /// set of simulations it *needs*, regardless of whether a previous
  /// experiment already paid for them.  Repeat requests within the same
  /// epoch (e.g. simulated annealing revisiting a state) stay free.
  [[nodiscard]] std::uint64_t simulations() const { return simulations_; }

  /// Number of cache hits served (across epochs).
  [[nodiscard]] std::uint64_t cache_hits() const { return cache_hits_; }

  /// Number of distinct design points served from preloaded (store-
  /// origin) results this epoch — the simulations a previous process
  /// already paid for.  simulations() + store_hits() of a warmed run
  /// equals simulations() of the equivalent cold run.
  [[nodiscard]] std::uint64_t store_hits() const { return store_hits_; }

  /// Starts a new counting epoch (the result cache is kept).  Also
  /// resets every realization sub-evaluator (see realization()).
  void reset_counters();

  /// The evaluator for channel realization `k` of a multi-realization
  /// (robust) experiment.  k == 0 returns *this* — the nominal channel,
  /// bit-identical to every pre-robust code path.  k >= 1 lazily
  /// constructs a child Evaluator with identical settings except for
  /// the channel root, which is re-derived via realization_channel_seed
  /// so the K realizations judge every design point against K
  /// independent fade draws.  Children share this evaluator's metrics
  /// registry (kept in sync by set_metrics) but own their caches, so
  /// hi::store sees one record per (design, realization seed) — the
  /// per-realization settings fingerprints differ only in channel_seed.
  /// References stay valid for the evaluator's lifetime.  Not
  /// thread-safe (same rule as the rest of the class).
  Evaluator& realization(int k);

  /// 1 + the number of realization children created so far.
  [[nodiscard]] int realization_count() const {
    return 1 + static_cast<int>(children_.size());
  }

  /// simulations() summed over this evaluator and its realization
  /// children — the robust analogue of the paper's headline count (a
  /// K-realization design-point evaluation pays up to K simulations).
  /// Equals simulations() exactly when no children exist.
  [[nodiscard]] std::uint64_t total_simulations() const;

  /// store_hits() summed over this evaluator and its children.
  [[nodiscard]] std::uint64_t total_store_hits() const;

  /// Seeds the cache with a result a previous process computed under
  /// *identical* settings (hi::store enforces that via the settings
  /// fingerprint; callers bypassing the store carry the proof burden —
  /// a wrong preload silently corrupts every downstream result).
  /// Returns false (and keeps the existing entry, preserving reference
  /// stability) when the design point is already cached.  A design_key
  /// collision with a different cached config fails loudly, as in
  /// admit().  Must not be called while a batch evaluation is in
  /// flight.
  bool preload(const model::NetworkConfig& cfg, const Evaluation& ev) {
    const std::uint64_t key = cfg.design_key();
    if (const auto it = cache_.find(key); it != cache_.end()) {
      HI_REQUIRE(it->second.cfg == cfg,
                 "design_key collision on preload: key "
                     << key << " maps both " << it->second.cfg.label()
                     << " and " << cfg.label());
      return false;
    }
    cache_.emplace(key, CacheEntry{cfg, ev, /*preloaded=*/true});
    return true;
  }

  /// Write-through observer: invoked from admit() — always serially,
  /// batch commits included — once per freshly simulated design point,
  /// after the result is cached.  Preloaded and cache-served points are
  /// not re-announced.  Null clears it.
  using StoreSink =
      std::function<void(const model::NetworkConfig&, const Evaluation&)>;
  void set_store_sink(StoreSink sink) { store_sink_ = std::move(sink); }

  [[nodiscard]] const EvaluatorSettings& settings() const { return settings_; }

  /// The active observability registry (may be null).
  [[nodiscard]] obs::MetricsRegistry* metrics() const { return metrics_; }

  /// Swaps the active registry (null detaches) and returns the previous
  /// one.  Explorers install a per-run registry through this and restore
  /// the old one afterwards.  Realization children follow along, so one
  /// install covers the whole robust evaluator tree.  Must not be called
  /// while a batch evaluation is in flight (same rule as using the
  /// evaluator directly; see exec::BatchEvaluator).
  obs::MetricsRegistry* set_metrics(obs::MetricsRegistry* m) {
    obs::MetricsRegistry* prev = metrics_;
    metrics_ = m;
    sims_counter_ = m != nullptr ? &m->counter("dse.simulations") : nullptr;
    cache_hits_counter_ =
        m != nullptr ? &m->counter("dse.cache_hits") : nullptr;
    store_hits_counter_ =
        m != nullptr ? &m->counter("dse.store_hits") : nullptr;
    for (const std::unique_ptr<Evaluator>& child : children_) {
      child->set_metrics(m);
    }
    return prev;
  }

 private:
  /// The canonical config rides along with each result so admit() can
  /// prove a hit really is the same design point (collision guard).
  /// `preloaded` marks store-origin entries until their first serve
  /// (see admit()'s store-accounting note).
  struct CacheEntry {
    model::NetworkConfig cfg;
    Evaluation ev;
    bool preloaded = false;
  };

  EvaluatorSettings settings_;
  /// Realization sub-evaluators (index i holds realization i + 1);
  /// unique_ptr keeps cache references stable across vector growth.
  std::vector<std::unique_ptr<Evaluator>> children_;
  std::unordered_map<std::uint64_t, CacheEntry> cache_;
  std::unordered_set<std::uint64_t> counted_this_epoch_;
  std::uint64_t simulations_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t store_hits_ = 0;
  StoreSink store_sink_;
  /// Active registry + cached instrument pointers (admit() is hot).
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* sims_counter_ = nullptr;
  obs::Counter* cache_hits_counter_ = nullptr;
  obs::Counter* store_hits_counter_ = nullptr;
};

}  // namespace hi::dse
