// hi-opt: common result types shared by the three explorers
// (Algorithm 1, exhaustive search, simulated annealing).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "model/config.hpp"
#include "obs/snapshot.hpp"

namespace hi::dse {

/// One simulated design point (a row of Fig. 3's scatter).
struct CandidateRecord {
  model::NetworkConfig cfg;
  double analytic_power_mw = 0.0;  ///< Eq. (9)
  double sim_pdr = 0.0;            ///< Eq. (7), in [0,1]
  double sim_power_mw = 0.0;       ///< worst lifetime-relevant node
  double sim_nlt_s = 0.0;          ///< Eq. (4)
};

/// Outcome of one exploration run.
struct ExplorationResult {
  bool feasible = false;  ///< a configuration meeting PDRmin was found
  model::NetworkConfig best;
  double best_power_mw = std::numeric_limits<double>::infinity();
  double best_pdr = 0.0;
  double best_nlt_s = 0.0;
  int iterations = 0;            ///< explorer-specific outer iterations
  std::uint64_t simulations = 0; ///< distinct design points simulated
  /// Branch-and-bound nodes spent by RunMILP (Algorithm 1 only; 0 for
  /// the other explorers).  Populated from the run's `milp.bnb_nodes`
  /// counter, so it covers every solve the round triggered.
  std::uint64_t milp_bnb_nodes = 0;
  double wall_time_s = 0.0;
  std::vector<CandidateRecord> history;  ///< every simulated candidate
  /// Delta of every metric recorded during this run (dse.*, net.*,
  /// des.*, milp.*, exec.*; see DESIGN.md §8).  Always populated — when
  /// the caller supplies no registry the explorer uses a private one —
  /// and `metrics.counter("dse.simulations")` equals `simulations`
  /// exactly, at any thread count.
  obs::Snapshot metrics;
};

}  // namespace hi::dse
