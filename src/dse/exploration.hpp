// hi-opt: common result types shared by the three explorers
// (Algorithm 1, exhaustive search, simulated annealing).
#pragma once

#include <limits>
#include <vector>

#include "model/config.hpp"

namespace hi::dse {

/// One simulated design point (a row of Fig. 3's scatter).
struct CandidateRecord {
  model::NetworkConfig cfg;
  double analytic_power_mw = 0.0;  ///< Eq. (9)
  double sim_pdr = 0.0;            ///< Eq. (7), in [0,1]
  double sim_power_mw = 0.0;       ///< worst lifetime-relevant node
  double sim_nlt_s = 0.0;          ///< Eq. (4)
};

/// Outcome of one exploration run.
struct ExplorationResult {
  bool feasible = false;  ///< a configuration meeting PDRmin was found
  model::NetworkConfig best;
  double best_power_mw = std::numeric_limits<double>::infinity();
  double best_pdr = 0.0;
  double best_nlt_s = 0.0;
  int iterations = 0;            ///< explorer-specific outer iterations
  std::uint64_t simulations = 0; ///< distinct design points simulated
  int milp_bnb_nodes = 0;        ///< Algorithm 1 only
  double wall_time_s = 0.0;
  std::vector<CandidateRecord> history;  ///< every simulated candidate
};

}  // namespace hi::dse
