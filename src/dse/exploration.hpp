// hi-opt: common result types shared by the three explorers
// (Algorithm 1, exhaustive search, simulated annealing).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "model/config.hpp"
#include "obs/snapshot.hpp"

namespace hi::dse {

/// One simulated design point (a row of Fig. 3's scatter).
///
/// Robust runs (RobustnessOptions::active(), DESIGN.md §13) record the
/// robust metrics in the shared fields — sim_pdr is then the WORST
/// realization's PDR and sim_power_mw the robust objective (worst power
/// + Γ-protection), analytic_power_mw the Γ-protected cell cost — and
/// additionally populate the CI bounds below.  Single-realization runs
/// leave pdr_lo == pdr_hi == 0.
struct CandidateRecord {
  model::NetworkConfig cfg;
  double analytic_power_mw = 0.0;  ///< Eq. (9) (+ protection when robust)
  double sim_pdr = 0.0;            ///< Eq. (7), in [0,1]; worst-case if robust
  double sim_power_mw = 0.0;       ///< worst lifetime-relevant node
  double sim_nlt_s = 0.0;          ///< Eq. (4); worst-case if robust
  double pdr_lo = 0.0;             ///< PDR CI lower bound (robust runs)
  double pdr_hi = 0.0;             ///< PDR CI upper bound (robust runs)
};

/// Outcome of one exploration run.
struct ExplorationResult {
  bool feasible = false;  ///< a configuration meeting PDRmin was found
  model::NetworkConfig best;
  double best_power_mw = std::numeric_limits<double>::infinity();
  double best_pdr = 0.0;
  double best_nlt_s = 0.0;
  int iterations = 0;            ///< explorer-specific outer iterations
  std::uint64_t simulations = 0; ///< distinct design points simulated
  /// Branch-and-bound nodes spent by RunMILP (Algorithm 1 only; 0 for
  /// the other explorers).  Populated from the run's `milp.bnb_nodes`
  /// counter, so it covers every solve the round triggered.
  std::uint64_t milp_bnb_nodes = 0;
  double wall_time_s = 0.0;
  std::vector<CandidateRecord> history;  ///< every simulated candidate
  // --- robust-mode summary (meaningful when the run's ---------------
  // --- RobustnessOptions were active; defaults otherwise) -----------
  int realizations = 1;      ///< channel realizations per design point
  int gamma = 0;             ///< Γ budget the run protected against
  double best_pdr_lo = 0.0;  ///< incumbent's PDR CI lower bound
  double best_pdr_hi = 0.0;  ///< incumbent's PDR CI upper bound
  /// Γ-protection included in best_power_mw (robust runs; 0 otherwise).
  /// In a robust run best_power_mw is the robust objective and best_pdr
  /// the incumbent's worst-realization PDR.
  double best_protection_mw = 0.0;
  /// Delta of every metric recorded during this run (dse.*, net.*,
  /// des.*, milp.*, exec.*; see DESIGN.md §8).  Always populated — when
  /// the caller supplies no registry the explorer uses a private one —
  /// and `metrics.counter("dse.simulations")` equals `simulations`
  /// exactly, at any thread count.
  obs::Snapshot metrics;
};

}  // namespace hi::dse
