#include "dse/report.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "common/table.hpp"
#include "common/units.hpp"

namespace hi::dse {

void write_history_csv(const ExplorationResult& result, std::ostream& os) {
  os << "label,topology_mask,n_nodes,routing,mac,tx_dbm,analytic_power_mw,"
        "sim_pdr,sim_power_mw,sim_nlt_days\n";
  for (const CandidateRecord& r : result.history) {
    os << '"' << r.cfg.label() << "\"," << r.cfg.topology.mask() << ','
       << r.cfg.topology.count() << ','
       << model::to_string(r.cfg.routing.protocol) << ','
       << model::to_string(r.cfg.mac.protocol) << ','
       << fmt_double(r.cfg.radio.tx_dbm, 0) << ','
       << fmt_double(r.analytic_power_mw, 6) << ','
       << fmt_double(r.sim_pdr, 6) << ',' << fmt_double(r.sim_power_mw, 6)
       << ',' << fmt_double(seconds_to_days(r.sim_nlt_s), 4) << '\n';
  }
}

namespace {

/// Appends the robustness tail of a summary (Γ, K, the incumbent's PDR
/// confidence interval and protection charge) when the run used them.
/// A nominal run (K = 1, Γ = 0) prints nothing, keeping legacy output
/// byte-identical.
void append_robustness(const ExplorationResult& result,
                       std::ostringstream& oss) {
  if (result.realizations <= 1 && result.gamma == 0) {
    return;
  }
  oss << "; robust: Gamma=" << result.gamma << ", K=" << result.realizations;
  if (result.feasible) {
    oss << ", PDR CI +/-"
        << fmt_percent((result.best_pdr_hi - result.best_pdr_lo) / 2.0)
        << ", protection " << fmt_double(result.best_protection_mw, 3)
        << " mW";
  }
}

/// Appends the observability tail of a summary (cache hits, MILP work)
/// when the run's snapshot carries the relevant counters.
void append_metrics(const ExplorationResult& result, std::ostringstream& oss) {
  if (result.metrics.empty()) {
    return;
  }
  oss << "; " << result.metrics.counter("dse.cache_hits") << " cache hits";
  if (const std::uint64_t nodes = result.metrics.counter("milp.bnb_nodes");
      nodes > 0) {
    oss << ", " << nodes << " B&B nodes, "
        << result.metrics.counter("milp.lp_pivots") << " LP pivots";
  }
}

}  // namespace

std::string summarize(const ExplorationResult& result, double pdr_min) {
  std::ostringstream oss;
  if (!result.feasible) {
    oss << "infeasible at PDRmin = " << fmt_percent(pdr_min) << " after "
        << result.simulations << " simulations ("
        << result.iterations << " iterations)";
    append_robustness(result, oss);
    append_metrics(result, oss);
    return oss.str();
  }
  oss << result.best.label() << ": PDR " << fmt_percent(result.best_pdr)
      << ", lifetime " << fmt_double(seconds_to_days(result.best_nlt_s), 1)
      << " days, node power " << fmt_double(result.best_power_mw, 3)
      << " mW; found with " << result.simulations << " simulations in "
      << result.iterations << " iterations ("
      << fmt_double(result.wall_time_s, 1) << " s)";
  append_robustness(result, oss);
  append_metrics(result, oss);
  return oss.str();
}

std::vector<CandidateRecord> pareto_front(
    const std::vector<CandidateRecord>& history) {
  // Deduplicate by design key (annealing histories revisit states).
  std::vector<CandidateRecord> pts;
  std::unordered_set<std::uint64_t> seen;
  for (const CandidateRecord& r : history) {
    if (seen.insert(r.cfg.design_key()).second) {
      pts.push_back(r);
    }
  }
  // Sweep by descending PDR; a point survives if its NLT beats every
  // higher-PDR point's NLT.
  std::sort(pts.begin(), pts.end(), [](const auto& a, const auto& b) {
    if (a.sim_pdr != b.sim_pdr) return a.sim_pdr > b.sim_pdr;
    return a.sim_nlt_s > b.sim_nlt_s;
  });
  std::vector<CandidateRecord> front;
  double best_nlt = -1.0;
  for (const CandidateRecord& r : pts) {
    if (r.sim_nlt_s > best_nlt) {
      front.push_back(r);
      best_nlt = r.sim_nlt_s;
    }
  }
  std::reverse(front.begin(), front.end());  // ascending PDR
  return front;
}

}  // namespace hi::dse
