#include "dse/explorer.hpp"

#include <chrono>

#include "common/assert.hpp"

namespace hi::dse {

namespace {

double steady_now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* to_string(ExplorerKind kind) {
  switch (kind) {
    case ExplorerKind::kAlgorithm1:
      return "algorithm1";
    case ExplorerKind::kExhaustive:
      return "exhaustive";
    case ExplorerKind::kAnnealing:
      return "annealing";
    case ExplorerKind::kFastIlp:
      return "fast_ilp";
  }
  return "unknown";
}

ExplorationResult Explorer::run(const model::Scenario& scenario,
                                Evaluator& eval,
                                const ExplorationOptions& opt) const {
  switch (kind_) {
    case ExplorerKind::kAlgorithm1:
      return run_algorithm1(scenario, eval, opt);
    case ExplorerKind::kExhaustive:
      return run_exhaustive(scenario, eval, opt);
    case ExplorerKind::kAnnealing:
      return run_annealing(scenario, eval, opt);
    case ExplorerKind::kFastIlp:
      return run_fast_ilp(scenario, eval, opt);
  }
  HI_ASSERT_MSG(false, "unknown ExplorerKind "
                           << static_cast<int>(kind_));
  return {};  // unreachable; assert_fail is [[noreturn]]
}

namespace detail {

RunScope::RunScope(ExplorerKind kind, Evaluator& eval,
                   const ExplorationOptions& opt)
    : kind_(kind), eval_(eval), opt_(opt) {
  HI_REQUIRE(opt.pdr_min >= 0.0 && opt.pdr_min <= 1.0,
             "pdr_min must be in [0,1], got " << opt.pdr_min);
  HI_REQUIRE(opt.threads >= -1,
             "threads must be >= -1 (-1 = inherit the evaluator's), got "
                 << opt.threads);
  threads_ = opt.threads >= 0 ? opt.threads : eval.settings().threads;

  registry_ = opt.metrics != nullptr ? opt.metrics : eval.metrics();
  if (registry_ == nullptr) {
    // No registry anywhere: the run still measures itself so the result
    // snapshot is always populated (the paper's headline numbers ride
    // on it), just into a private registry nobody else sees.
    owned_ = std::make_unique<obs::MetricsRegistry>();
    registry_ = owned_.get();
  }
  if (registry_ != eval.metrics()) {
    previous_ = eval.set_metrics(registry_);
    installed_ = true;
  }
  HI_REQUIRE(!opt.robust.active() ||
                 (opt.robust.gamma >= 0 && opt.robust.realizations >= 1 &&
                  opt.robust.confidence > 0.0 && opt.robust.confidence < 1.0),
             "invalid RobustnessOptions: gamma " << opt.robust.gamma
                 << ", realizations " << opt.robust.realizations
                 << ", confidence " << opt.robust.confidence);
  start_ = registry_->snapshot();
  // total_simulations: a robust run pays into the realization children
  // too; with no children this is exactly simulations(), so the
  // single-realization accounting is unchanged.
  sims0_ = eval.total_simulations();
  t0_s_ = steady_now_s();
}

RunScope::~RunScope() {
  if (installed_) {
    eval_.set_metrics(previous_);
  }
}

void RunScope::progress(int iteration, const ExplorationResult& res) const {
  if (!opt_.progress) {
    return;
  }
  ProgressInfo info;
  info.kind = kind_;
  info.iteration = iteration;
  info.simulations = eval_.total_simulations() - sims0_;
  info.feasible = res.feasible;
  info.best_power_mw = res.best_power_mw;
  opt_.progress(info);
}

void RunScope::finish(ExplorationResult& res) {
  res.simulations = eval_.total_simulations() - sims0_;
  res.realizations = opt_.robust.active() ? opt_.robust.realizations : 1;
  res.gamma = opt_.robust.active() ? opt_.robust.gamma : 0;
  res.wall_time_s = steady_now_s() - t0_s_;
  registry_->histogram("dse.run_s").observe(res.wall_time_s);
  registry_->counter("dse.runs").add(1);
  res.metrics = registry_->snapshot().delta_since(start_);
  res.milp_bnb_nodes = res.metrics.counter("milp.bnb_nodes");
  HI_ASSERT_MSG(res.metrics.counter("dse.simulations") == res.simulations,
                "metric dse.simulations ("
                    << res.metrics.counter("dse.simulations")
                    << ") disagrees with the evaluator's count ("
                    << res.simulations << ")");
}

}  // namespace detail

}  // namespace hi::dse
