// hi-opt: Γ-robust multi-realization evaluation (DESIGN.md §13).
//
// The paper's Algorithm 1 certifies a design against ONE channel
// realization — a single lucky fade draw can admit a network that fails
// in the field.  Following D'Andreagiovanni & Nardin (PAPERS.md), this
// module hardens the evaluation on two independent axes:
//
//  * K channel realizations: every design point is simulated under K
//    independent channel-fade roots (Evaluator::realization), its PDR
//    reported as a mean with a two-sided confidence interval and its
//    feasibility judged by the WORST realization.  Realization 0 is the
//    nominal channel, so K = 1 is bit-identical to the legacy path, and
//    the realization-seed derivation is nested in K so growing K only
//    adds draws — the robust optimum is monotone non-decreasing in K.
//
//  * a Γ deviation budget (Bertsimas–Sim): up to Γ links may degrade
//    beyond what any simulated realization shows, each costing its
//    cell's per-link deviation (model::robust_protection_mw).  The
//    protection is added to the measured worst-case power, making the
//    robust objective  max_k P_k + protection(Γ)  — monotone in Γ.
//
// RobustBatch is the RunSim of the robust explorers: it fans a
// candidate batch across the K realization evaluators (each through its
// own exec::BatchEvaluator, realization 0 first, so request order and
// counters stay bit-identical to the nominal path at any thread count)
// and folds the per-realization results into RobustEvaluations.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dse/evaluator.hpp"
#include "dse/exploration.hpp"
#include "exec/batch_evaluator.hpp"
#include "model/config.hpp"

namespace hi::dse {

/// The robustness knob threaded through ExplorationOptions, hi_campaign
/// and the store fingerprints.  The default (Γ = 0, K = 1) is inactive:
/// every explorer then takes its pre-robust code path, bit-identically.
struct RobustnessOptions {
  int gamma = 0;          ///< deviation budget: links the adversary may degrade
  int realizations = 1;   ///< K independent channel realizations
  double confidence = 0.95;  ///< two-sided PDR confidence level
  [[nodiscard]] bool active() const { return gamma > 0 || realizations > 1; }
};

/// A design point's evaluation folded over K channel realizations plus
/// the Γ-protection of its cell.
struct RobustEvaluation {
  Evaluation nominal;       ///< realization 0 — the legacy single-seed result
  int realizations = 1;     ///< K
  double worst_pdr = 0.0;   ///< min over realizations: the feasibility metric
  double mean_pdr = 0.0;    ///< mean over realizations
  double pdr_lo = 0.0;      ///< CI lower bound, clamped to [0, 1]
  double pdr_hi = 0.0;      ///< CI upper bound, clamped to [0, 1]
  double worst_power_mw = 0.0;  ///< max over realizations
  double worst_nlt_s = 0.0;     ///< min over realizations
  /// Max over realizations of the averaged p95 end-to-end delay — the
  /// robust latency objective hi::pareto minimizes.  0.0 unless the
  /// evaluator ran with SimParams::collect_latency.
  double worst_p95_s = 0.0;
  double protection_mw = 0.0;   ///< model::robust_protection_mw of the cell
  /// worst_power_mw + protection_mw — the robust objective value.
  double robust_power_mw = 0.0;
};

/// Two-sided standard-normal quantile z with P(|Z| <= z) = confidence
/// (Acklam's rational approximation; |error| < 1.15e-9 — deterministic,
/// no tables).  confidence must lie in (0, 1).
[[nodiscard]] double robust_z_value(double confidence);

/// Folds one design point's K per-realization evaluations (realization
/// order, index 0 = nominal) into a RobustEvaluation under `robust`.
/// With K = 1 and Γ = 0 every field collapses bit-identically onto the
/// nominal evaluation (protection is exactly 0.0, CI bounds equal the
/// measured PDR).
[[nodiscard]] RobustEvaluation aggregate_robust(
    const model::NetworkConfig& cfg,
    const std::vector<const Evaluation*>& per_realization,
    const RobustnessOptions& robust);

/// The history row a robust run records for one design point: worst-
/// case PDR/power/lifetime in the shared fields (sim_power_mw is the
/// robust objective), Γ-protected analytic cost, CI bounds populated.
[[nodiscard]] CandidateRecord robust_record(const model::NetworkConfig& cfg,
                                            const RobustEvaluation& rev);

/// See file comment.  Holds one BatchEvaluator per realization (so K
/// pools of `threads` workers when threads >= 1 — sized for the K <= 8
/// regime the CLI exposes); the evaluator must outlive the batch and
/// must not be used directly while a call is in flight.
class RobustBatch {
 public:
  RobustBatch(Evaluator& eval, int threads, RobustnessOptions robust);

  /// Evaluates every configuration under all K realizations and returns
  /// the folded results, aligned with `cfgs`.  Records the
  /// `dse.realizations` counter (K per design point requested) on the
  /// evaluator's active registry.  Bit-identical at any thread count.
  [[nodiscard]] std::vector<RobustEvaluation> evaluate(
      const std::vector<model::NetworkConfig>& cfgs);

  /// Single-configuration convenience (simulated annealing's move loop).
  [[nodiscard]] RobustEvaluation evaluate_one(const model::NetworkConfig& cfg);

  [[nodiscard]] const RobustnessOptions& options() const { return robust_; }

 private:
  Evaluator& eval_;
  RobustnessOptions robust_;
  /// One batch engine per realization, index k over eval_.realization(k).
  std::vector<std::unique_ptr<exec::BatchEvaluator>> batches_;
};

}  // namespace hi::dse
