#include "dse/evaluator.hpp"

#include "common/assert.hpp"

namespace hi::dse {

Evaluator::Evaluator(EvaluatorSettings settings)
    : settings_(std::move(settings)) {
  HI_REQUIRE(settings_.runs >= 1, "need at least one replication");
  HI_REQUIRE(settings_.channel != nullptr, "channel factory required");
  HI_REQUIRE(settings_.threads >= 0, "threads must be >= 0 (0 = serial), got "
                                         << settings_.threads);
  set_metrics(settings_.metrics);
}

void Evaluator::reset_counters() {
  simulations_ = 0;
  cache_hits_ = 0;
  store_hits_ = 0;
  counted_this_epoch_.clear();
}

}  // namespace hi::dse
