#include "dse/evaluator.hpp"

#include "common/assert.hpp"

namespace hi::dse {

std::uint64_t realization_channel_seed(std::uint64_t channel_root, int k) {
  HI_REQUIRE(k >= 1, "realization index must be >= 1, got " << k);
  const std::uint64_t seed = Rng{channel_root}
                                 .fork("dse.realization")
                                 .fork(static_cast<std::uint64_t>(k))
                                 .next_u64();
  // 0 means "unset" to SimParams (simulate_uncached would substitute the
  // node seed); substitute the splitmix64 increment instead.
  return seed != 0 ? seed : 0x9E3779B97F4A7C15ULL;
}

Evaluator::Evaluator(EvaluatorSettings settings)
    : settings_(std::move(settings)) {
  HI_REQUIRE(settings_.runs >= 1, "need at least one replication");
  HI_REQUIRE(settings_.channel != nullptr, "channel factory required");
  HI_REQUIRE(settings_.threads >= 0, "threads must be >= 0 (0 = serial), got "
                                         << settings_.threads);
  set_metrics(settings_.metrics);
}

void Evaluator::reset_counters() {
  simulations_ = 0;
  cache_hits_ = 0;
  store_hits_ = 0;
  counted_this_epoch_.clear();
  for (const std::unique_ptr<Evaluator>& child : children_) {
    child->reset_counters();
  }
}

Evaluator& Evaluator::realization(int k) {
  HI_REQUIRE(k >= 0, "realization index must be >= 0, got " << k);
  if (k == 0) {
    return *this;
  }
  const std::uint64_t root = settings_.sim.channel_seed != 0
                                 ? settings_.sim.channel_seed
                                 : settings_.sim.seed;
  while (static_cast<int>(children_.size()) < k) {
    EvaluatorSettings child = settings_;
    child.sim.channel_seed = realization_channel_seed(
        root, static_cast<int>(children_.size()) + 1);
    child.metrics = metrics_;  // follow the currently installed registry
    children_.push_back(std::make_unique<Evaluator>(std::move(child)));
  }
  return *children_[static_cast<std::size_t>(k) - 1];
}

std::uint64_t Evaluator::total_simulations() const {
  std::uint64_t total = simulations_;
  for (const std::unique_ptr<Evaluator>& child : children_) {
    total += child->total_simulations();
  }
  return total;
}

std::uint64_t Evaluator::total_store_hits() const {
  std::uint64_t total = store_hits_;
  for (const std::unique_ptr<Evaluator>& child : children_) {
    total += child->total_store_hits();
  }
  return total;
}

}  // namespace hi::dse
