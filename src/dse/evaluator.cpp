#include "dse/evaluator.hpp"

#include "common/assert.hpp"

namespace hi::dse {

Evaluator::Evaluator(EvaluatorSettings settings)
    : settings_(std::move(settings)) {
  HI_REQUIRE(settings_.runs >= 1, "need at least one replication");
  HI_REQUIRE(settings_.channel != nullptr, "channel factory required");
}

const Evaluation& Evaluator::evaluate(const model::NetworkConfig& cfg) {
  const std::uint64_t key = cfg.design_key();
  if (counted_this_epoch_.insert(key).second) {
    ++simulations_;
  }
  if (const auto it = cache_.find(key); it != cache_.end()) {
    ++cache_hits_;
    return it->second;
  }
  // Derive the design point's node-randomness seed from the experiment
  // root so results do not depend on evaluation order, but keep one
  // shared channel-realization root: every configuration is judged
  // against the same fades (common random numbers).
  net::SimParams sp = settings_.sim;
  sp.seed = Rng{settings_.sim.seed}.fork(key).next_u64();
  sp.channel_seed = settings_.sim.channel_seed != 0
                        ? settings_.sim.channel_seed
                        : settings_.sim.seed;
  Evaluation ev;
  ev.detail = net::simulate_averaged(cfg, sp, settings_.runs,
                                     settings_.channel);
  ev.pdr = ev.detail.pdr;
  ev.power_mw = ev.detail.worst_power_mw;
  ev.nlt_s = ev.detail.nlt_s;
  return cache_.emplace(key, std::move(ev)).first->second;
}

void Evaluator::reset_counters() {
  simulations_ = 0;
  cache_hits_ = 0;
  counted_this_epoch_.clear();
}

}  // namespace hi::dse
