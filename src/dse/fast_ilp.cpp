// hi-opt: the fast ILP-based heuristic explorer (D'Andreagiovanni &
// Nardin, "A fast ILP-based Heuristic for the robust design of Body
// Wireless Sensor Networks", ported onto this code base).
//
// Structure: Algorithm 1's ascending-level loop — RunMILP proposes all
// configurations at the minimum (Γ-protected) analytic power level,
// RunSim evaluates them, a cut removes the exhausted level — but the
// exactness machinery is replaced by a patience rule: once a feasible
// incumbent exists, the search stops after `fast_ilp_patience`
// consecutive levels that fail to improve it.  The analytic cost model
// orders levels well in practice, so the first feasible level is
// usually optimal or near-optimal, and the heuristic skips the long
// tail of levels Algorithm 1's sound floor cannot prune — that is
// where its speed comes from, and why it is NOT exact.  EXPERIMENTS.md
// documents the measured optimality gap; bench_robust_dse gates it.
//
// Robust mode composes exactly as in Algorithm 1: Γ-protected MILP
// levels, K-realization RunSim, worst-case feasibility.
//
// Entry point: run_fast_ilp(scenario, eval, ExplorationOptions),
// declared in dse/explorer.hpp (or Explorer::fast_ilp().run(...)).
#include <optional>

#include "common/assert.hpp"
#include "dse/explorer.hpp"
#include "dse/milp_encoding.hpp"
#include "dse/robustness.hpp"
#include "exec/batch_evaluator.hpp"
#include "model/power.hpp"
#include "obs/timer.hpp"

namespace hi::dse {

ExplorationResult run_fast_ilp(const model::Scenario& scenario,
                               Evaluator& eval,
                               const ExplorationOptions& opt) {
  detail::RunScope scope(ExplorerKind::kFastIlp, eval, opt);
  const int max_iterations = opt.budget >= 0 ? opt.budget : 10'000;
  HI_REQUIRE(opt.fast_ilp_patience >= 1,
             "fast_ilp_patience must be >= 1, got " << opt.fast_ilp_patience);
  const bool robust = opt.robust.active();
  const int gamma = robust ? opt.robust.gamma : 0;

  MilpEncoding encoding(scenario, gamma);
  milp::Options milp_opt = opt.milp;
  milp_opt.metrics = &scope.registry();

  std::optional<exec::BatchEvaluator> batch;
  std::optional<RobustBatch> rbatch;
  if (robust) {
    rbatch.emplace(eval, scope.threads(), opt.robust);
  } else {
    batch.emplace(eval, scope.threads());
  }

  ExplorationResult res;
  bool have_best = false;
  int stale_levels = 0;  // levels since the incumbent last improved

  for (res.iterations = 0; res.iterations < max_iterations;
       ++res.iterations) {
    const MilpRound round = [&] {
      obs::ScopedTimer timer(&scope.registry(), "fast_ilp.milp_s");
      return encoding.run_milp(milp_opt);
    }();
    if (round.candidates.empty()) {
      res.feasible = have_best;
      break;  // MILP dry: either infeasible or the incumbent stands
    }

    bool improved = false;
    if (robust) {
      const std::vector<RobustEvaluation> revs = [&] {
        obs::ScopedTimer timer(&scope.registry(), "fast_ilp.sim_s");
        return rbatch->evaluate(round.candidates);
      }();
      for (std::size_t i = 0; i < round.candidates.size(); ++i) {
        const model::NetworkConfig& cfg = round.candidates[i];
        const RobustEvaluation& rev = revs[i];
        res.history.push_back(robust_record(cfg, rev));
        if (rev.worst_pdr >= opt.pdr_min &&
            (!have_best || rev.robust_power_mw < res.best_power_mw)) {
          have_best = true;
          improved = true;
          res.feasible = true;
          res.best = cfg;
          res.best_power_mw = rev.robust_power_mw;
          res.best_pdr = rev.worst_pdr;
          res.best_nlt_s = rev.worst_nlt_s;
          res.best_pdr_lo = rev.pdr_lo;
          res.best_pdr_hi = rev.pdr_hi;
          res.best_protection_mw = rev.protection_mw;
        }
      }
    } else {
      const std::vector<const Evaluation*> evals = [&] {
        obs::ScopedTimer timer(&scope.registry(), "fast_ilp.sim_s");
        return batch->evaluate(round.candidates);
      }();
      for (std::size_t i = 0; i < round.candidates.size(); ++i) {
        const model::NetworkConfig& cfg = round.candidates[i];
        const Evaluation& ev = *evals[i];
        res.history.push_back(CandidateRecord{cfg, model::node_power_mw(cfg),
                                              ev.pdr, ev.power_mw, ev.nlt_s});
        if (ev.pdr >= opt.pdr_min &&
            (!have_best || ev.power_mw < res.best_power_mw)) {
          have_best = true;
          improved = true;
          res.feasible = true;
          res.best = cfg;
          res.best_power_mw = ev.power_mw;
          res.best_pdr = ev.pdr;
          res.best_nlt_s = ev.nlt_s;
        }
      }
    }

    // The patience rule — the heuristic's entire termination logic.
    if (have_best) {
      stale_levels = improved ? 0 : stale_levels + 1;
      if (stale_levels >= opt.fast_ilp_patience) {
        ++res.iterations;  // count the level that triggered the stop
        break;
      }
    }

    encoding.add_power_cut_above(round.power_mw);
    scope.registry().counter("fast_ilp.cuts_added").add(1);
    if (robust) {
      scope.registry().counter("dse.robust_cuts").add(1);
    }
    scope.progress(res.iterations + 1, res);
  }

  scope.finish(res);
  return res;
}

}  // namespace hi::dse
