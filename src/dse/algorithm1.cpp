// hi-opt: Algorithm 1 — the paper's MILP + simulation DSE loop.
//
// Each iteration asks the MILP for *all* configurations attaining the
// current minimum of the approximate power model (RunMILP), simulates
// them (RunSim), keeps the best one meeting the reliability bound
// (Sort), and cuts the exhausted power level out of the MILP (Update).
// Termination: the MILP runs dry, or the α-discounted analytic power of
// the next level is guaranteed to exceed the simulated incumbent
// (line 5 of the paper's listing).
//
// Γ-robust mode (ExplorationOptions::robust active; DESIGN.md §13):
// RunMILP proposes levels of the Γ-protected cost model, RunSim folds K
// channel realizations through RobustBatch, feasibility is judged on
// the worst realization, and the incumbent minimizes the robust
// objective (worst simulated power + protection).  Termination stays
// sound because every quantity shifts by the same cell protection: a
// cell's robust objective is bounded below by its measured floor + its
// protection, which is what min_remaining_floor then compares.  The
// cuts remove Γ-protected levels, so they can never cut a level whose
// worst-case realization would have won — that is the cut-soundness
// argument the robust fuzz properties check.
//
// Entry point: run_algorithm1(scenario, eval, ExplorationOptions),
// declared in dse/explorer.hpp (or Explorer::algorithm1().run(...)).
#include <algorithm>
#include <limits>
#include <optional>

#include "common/assert.hpp"
#include "dse/explorer.hpp"
#include "dse/milp_encoding.hpp"
#include "dse/robustness.hpp"
#include "exec/batch_evaluator.hpp"
#include "model/power.hpp"
#include "obs/timer.hpp"

namespace hi::dse {

ExplorationResult run_algorithm1(const model::Scenario& scenario,
                                 Evaluator& eval,
                                 const ExplorationOptions& opt) {
  detail::RunScope scope(ExplorerKind::kAlgorithm1, eval, opt);
  const int max_iterations = opt.budget >= 0 ? opt.budget : 10'000;
  const bool robust = opt.robust.active();
  // The kPaperAlpha discount reasons about the nominal analytic model
  // only; there is no sound robust reading of it.
  HI_REQUIRE(!robust || !opt.use_alpha_termination ||
                 opt.bound == TerminationBound::kSoundFloor,
             "robust Algorithm 1 supports only the kSoundFloor bound");
  const int gamma = robust ? opt.robust.gamma : 0;

  MilpEncoding encoding(scenario, gamma);
  // Route the inner solver's milp.* counters into this run's registry
  // (whatever the caller put in opt.milp.metrics would escape the
  // snapshot delta that feeds ExplorationResult::milp_bnb_nodes).
  milp::Options milp_opt = opt.milp;
  milp_opt.metrics = &scope.registry();

  ExplorationResult res;
  bool have_best = false;

  // RunSim engine: each MILP level hands back its whole alternative-
  // optima set at once, which batch-evaluates concurrently (bit-identical
  // to serial; see exec::BatchEvaluator).  One pool serves every round;
  // robust runs use the K-realization fold instead.
  std::optional<exec::BatchEvaluator> batch;
  std::optional<RobustBatch> rbatch;
  if (robust) {
    rbatch.emplace(eval, scope.threads(), opt.robust);
  } else {
    batch.emplace(eval, scope.threads());
  }

  // Termination bounds (Sec. 3).  The paper stops when P̄*/α(S*) exceeds
  // the incumbent's simulated power, with α = P̄/P̄lb the loss discount.
  // Expressed per cell of the (Tx level, routing, N) grid and made sound
  // for the whole remaining feasible set: stop when *every* cell the
  // MILP could still propose (analytic cost above the current level) has
  // its floor above the incumbent's simulated power.  The floor is
  // model::measured_power_floor_mw — delivery accounting against the
  // simulator's own energy metering, not the analytic P̄lb (the fuzzer
  // found P̄lb overshooting measured powers when CSMA saturation drops
  // packets before they are transmitted).  In robust mode both sides of
  // the comparison carry the cell's Γ-protection (adds exactly 0.0 when
  // gamma == 0), and the floor holds for EVERY realization, so it
  // bounds the worst one.
  struct CellBound {
    double cost_mw;   ///< analytic P̄ of the cell, Eq. (9), Γ-protected
    double floor_mw;  ///< measured-power floor + protection at PDRmin
  };
  std::vector<CellBound> cell_bounds;
  {
    const net::SimParams& sp = eval.settings().sim;
    for (int lvl = 0; lvl < scenario.chip.num_tx_levels(); ++lvl) {
      for (const auto rt :
           {model::RoutingProtocol::kStar, model::RoutingProtocol::kMesh}) {
        for (int n = scenario.min_nodes; n <= scenario.max_nodes; ++n) {
          model::Topology t;
          for (int i = 0; i < n; ++i) t.set(i, true);
          // Placement and MAC never enter the cost or the floor — any
          // representative topology of the right size will do.
          const model::NetworkConfig cell = scenario.make_config(
              t, lvl, model::MacProtocol::kCsma, rt);
          const double prot = model::robust_protection_mw(cell, gamma);
          cell_bounds.push_back(CellBound{
              model::node_power_mw(cell) + prot,
              model::measured_power_floor_mw(cell, opt.pdr_min,
                                             sp.duration_s, sp.gen_guard_s) +
                  prot});
        }
      }
    }
  }
  // Smallest floor among cells strictly above the given analytic level;
  // +inf when none remain.
  const auto min_remaining_floor = [&](double level_mw) {
    double lo = std::numeric_limits<double>::infinity();
    for (const CellBound& c : cell_bounds) {
      if (c.cost_mw > level_mw + 1e-12) {
        lo = std::min(lo, c.floor_mw);
      }
    }
    return lo;
  };

  for (res.iterations = 0; res.iterations < max_iterations;
       ++res.iterations) {
    // ---- line 3: RunMILP --------------------------------------------------
    const MilpRound round = [&] {
      obs::ScopedTimer timer(&scope.registry(), "alg1.milp_s");
      return encoding.run_milp(milp_opt);
    }();

    // ---- line 4: infeasible problem ---------------------------------------
    if (round.candidates.empty() && !have_best) {
      res.feasible = false;
      break;
    }
    // ---- line 5: α-termination / MILP dry ---------------------------------
    if (round.candidates.empty()) {
      break;  // S = {} with an incumbent: return S*
    }
    if (have_best && opt.use_alpha_termination) {
      bool stop = false;
      switch (opt.bound) {
        case TerminationBound::kSoundFloor:
          // Every cell at or above this level — including the one the
          // MILP just proposed — must consume more than the incumbent
          // even under maximal packet loss: no further simulation wins.
          stop = min_remaining_floor(round.power_mw - 2.0 * 1e-12) >
                 res.best_power_mw;
          break;
        case TerminationBound::kPaperAlpha: {
          // Paper line 5: P̄* / α(S*, PDRmin) > P̄min with the uniform
          // loss discount applied to the incumbent's cell.
          const double p_best = model::node_power_mw(res.best);
          const double lb = res.best.app.baseline_mw +
                            opt.alpha_kappa * opt.pdr_min *
                                (p_best - res.best.app.baseline_mw);
          const double alpha = p_best / lb;
          stop = round.power_mw / alpha > res.best_power_mw;
          break;
        }
      }
      if (stop) {
        break;
      }
    }

    // ---- line 7: RunSim (the whole level concurrently) ---------------------
    // ---- line 8: Sort (track the feasible minimum directly) ---------------
    bool round_feasible = false;
    model::NetworkConfig round_best;
    double round_best_power = 0.0;
    double round_best_pdr = 0.0;
    double round_best_nlt = 0.0;
    double round_best_lo = 0.0;
    double round_best_hi = 0.0;
    double round_best_prot = 0.0;
    if (robust) {
      const std::vector<RobustEvaluation> revs = [&] {
        obs::ScopedTimer timer(&scope.registry(), "alg1.sim_s");
        return rbatch->evaluate(round.candidates);
      }();
      for (std::size_t i = 0; i < round.candidates.size(); ++i) {
        const model::NetworkConfig& cfg = round.candidates[i];
        const RobustEvaluation& rev = revs[i];
        res.history.push_back(robust_record(cfg, rev));
        if (rev.worst_pdr >= opt.pdr_min &&
            (!round_feasible || rev.robust_power_mw < round_best_power)) {
          round_feasible = true;
          round_best = cfg;
          round_best_power = rev.robust_power_mw;
          round_best_pdr = rev.worst_pdr;
          round_best_nlt = rev.worst_nlt_s;
          round_best_lo = rev.pdr_lo;
          round_best_hi = rev.pdr_hi;
          round_best_prot = rev.protection_mw;
        }
      }
    } else {
      const std::vector<const Evaluation*> evals = [&] {
        obs::ScopedTimer timer(&scope.registry(), "alg1.sim_s");
        return batch->evaluate(round.candidates);
      }();
      for (std::size_t i = 0; i < round.candidates.size(); ++i) {
        const model::NetworkConfig& cfg = round.candidates[i];
        const Evaluation& ev = *evals[i];
        res.history.push_back(CandidateRecord{cfg, model::node_power_mw(cfg),
                                              ev.pdr, ev.power_mw, ev.nlt_s});
        if (ev.pdr >= opt.pdr_min &&
            (!round_feasible || ev.power_mw < round_best_power)) {
          round_feasible = true;
          round_best = cfg;
          round_best_power = ev.power_mw;
          round_best_pdr = ev.pdr;
          round_best_nlt = ev.nlt_s;
        }
      }
    }

    // ---- lines 9-10: update the incumbent ---------------------------------
    if (round_feasible &&
        (!have_best || res.best_power_mw >= round_best_power)) {
      have_best = true;
      res.feasible = true;
      res.best = round_best;
      res.best_power_mw = round_best_power;
      res.best_pdr = round_best_pdr;
      res.best_nlt_s = round_best_nlt;
      res.best_pdr_lo = round_best_lo;
      res.best_pdr_hi = round_best_hi;
      res.best_protection_mw = round_best_prot;
    }

    // ---- line 11: Update — exclude the exhausted power level --------------
    encoding.add_power_cut_above(round.power_mw);
    scope.registry().counter("alg1.cuts_added").add(1);
    if (robust) {
      scope.registry().counter("dse.robust_cuts").add(1);
    }
    scope.progress(res.iterations + 1, res);
  }

  scope.finish(res);
  return res;
}

}  // namespace hi::dse
