#include "dse/milp_encoding.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "common/assert.hpp"
#include "model/power.hpp"

namespace hi::dse {

double MilpEncoding::cell_cost_mw(int level, model::RoutingProtocol rt,
                                  int n_nodes) const {
  const model::RadioConfig radio = scenario_.chip.configure(level);
  // The Γ-protection is exactly 0.0 when gamma_ == 0, so the nominal
  // encoding's costs are bit-identical to the pre-robust ones.
  return scenario_.app.baseline_mw +
         model::radio_power_mw(radio, scenario_.app, rt, n_nodes) +
         model::robust_protection_mw(radio, scenario_.app, rt, n_nodes,
                                     gamma_);
}

MilpEncoding::MilpEncoding(const model::Scenario& scenario, int gamma)
    : scenario_(scenario), gamma_(gamma) {
  HI_REQUIRE(gamma_ >= 0, "gamma must be >= 0, got " << gamma_);
  HI_REQUIRE(scenario_.min_nodes >= 2, "need at least two nodes");
  HI_REQUIRE(scenario_.max_nodes >= scenario_.min_nodes,
             "max_nodes below min_nodes");
  HI_REQUIRE(scenario_.max_nodes <= channel::kNumLocations,
             "max_nodes exceeds the number of locations");

  model_.set_objective(lp::Objective::kMinimize);

  // --- Decision binaries ---------------------------------------------------
  for (int i = 0; i < channel::kNumLocations; ++i) {
    std::ostringstream name;
    name << "n" << i;
    n_vars_.push_back(model_.add_binary(0.0, name.str()));
  }
  for (int k = 0; k < scenario_.chip.num_tx_levels(); ++k) {
    std::ostringstream name;
    name << "p" << k + 1;
    p_vars_.push_back(model_.add_binary(0.0, name.str()));
  }
  mac_var_ = model_.add_binary(0.0, "mac_tdma");
  rt_star_var_ = model_.add_binary(0.0, "rt_star");
  rt_mesh_var_ = model_.add_binary(0.0, "rt_mesh");
  for (int n = scenario_.min_nodes; n <= scenario_.max_nodes; ++n) {
    std::ostringstream name;
    name << "zN" << n;
    z_vars_.push_back(model_.add_binary(0.0, name.str()));
  }

  // --- Selection constraints ----------------------------------------------
  {
    std::vector<lp::Term> terms;
    for (int p : p_vars_) terms.push_back({p, 1.0});
    model_.add_constraint(terms, lp::Sense::kEqual, 1.0, "one_tx_level");
  }
  model_.add_constraint({{rt_star_var_, 1.0}, {rt_mesh_var_, 1.0}},
                        lp::Sense::kEqual, 1.0, "one_routing");
  {
    std::vector<lp::Term> terms;
    for (int z : z_vars_) terms.push_back({z, 1.0});
    model_.add_constraint(terms, lp::Sense::kEqual, 1.0, "one_node_count");
  }
  {
    // Σ n_i = Σ N z_N  links the count indicators to the placement.
    std::vector<lp::Term> terms;
    for (int n : n_vars_) terms.push_back({n, 1.0});
    for (std::size_t zi = 0; zi < z_vars_.size(); ++zi) {
      terms.push_back(
          {z_vars_[zi], -static_cast<double>(scenario_.min_nodes +
                                             static_cast<int>(zi))});
    }
    model_.add_constraint(terms, lp::Sense::kEqual, 0.0, "count_link");
  }

  // --- Topological constraints (Sec. 4.1) ----------------------------------
  for (int loc : scenario_.required_locations) {
    model_.add_constraint({{n_vars_[static_cast<std::size_t>(loc)], 1.0}},
                          lp::Sense::kEqual, 1.0, "required");
  }
  for (const model::CoverageConstraint& c : scenario_.coverage) {
    std::vector<lp::Term> terms;
    for (int loc : c.locations) {
      terms.push_back({n_vars_[static_cast<std::size_t>(loc)], 1.0});
    }
    model_.add_constraint(terms, lp::Sense::kGreaterEqual, 1.0, c.reason);
  }
  // Placement dependencies, the paper's n_j - n_i <= 0 example.
  for (const model::DependencyConstraint& d : scenario_.dependencies) {
    model_.add_constraint(
        {{n_vars_[static_cast<std::size_t>(d.if_used)], 1.0},
         {n_vars_[static_cast<std::size_t>(d.then_used)], -1.0}},
        lp::Sense::kLessEqual, 0.0, d.reason);
  }
  // A star topology needs its coordinator placed: n_coor >= rt_star.
  model_.add_constraint(
      {{n_vars_[static_cast<std::size_t>(scenario_.coordinator)], 1.0},
       {rt_star_var_, -1.0}},
      lp::Sense::kGreaterEqual, 0.0, "star_coordinator");

  // --- Cost linearization over the (level, routing, N) grid ----------------
  std::vector<lp::Term> y_sum;
  std::vector<std::vector<lp::Term>> by_level(
      static_cast<std::size_t>(scenario_.chip.num_tx_levels()));
  std::vector<lp::Term> by_star, by_mesh;
  std::vector<std::vector<lp::Term>> by_count(z_vars_.size());
  for (int k = 0; k < scenario_.chip.num_tx_levels(); ++k) {
    for (const model::RoutingProtocol rt :
         {model::RoutingProtocol::kStar, model::RoutingProtocol::kMesh}) {
      const int rt_var = rt == model::RoutingProtocol::kStar ? rt_star_var_
                                                             : rt_mesh_var_;
      for (std::size_t zi = 0; zi < z_vars_.size(); ++zi) {
        const int n_nodes = scenario_.min_nodes + static_cast<int>(zi);
        std::ostringstream name;
        name << "y_p" << k + 1 << "_" << model::to_string(rt) << "_N"
             << n_nodes;
        const int y = model_.add_product(
            {p_vars_[static_cast<std::size_t>(k)], rt_var, z_vars_[zi]},
            name.str());
        const double cost = cell_cost_mw(k, rt, n_nodes);
        model_.set_cost(y, cost);
        cells_.push_back(Cell{y, cost});
        y_sum.push_back({y, 1.0});
        by_level[static_cast<std::size_t>(k)].push_back({y, 1.0});
        (rt == model::RoutingProtocol::kStar ? by_star : by_mesh)
            .push_back({y, 1.0});
        by_count[zi].push_back({y, 1.0});
      }
    }
  }
  model_.add_constraint(y_sum, lp::Sense::kEqual, 1.0, "one_cell");
  // Convexity rows: the cell mass on each factor value equals that
  // factor's binary.  These make the LP relaxation nearly integral and
  // cut the branch-and-bound tree by orders of magnitude.
  for (int k = 0; k < scenario_.chip.num_tx_levels(); ++k) {
    auto terms = by_level[static_cast<std::size_t>(k)];
    terms.push_back({p_vars_[static_cast<std::size_t>(k)], -1.0});
    model_.add_constraint(std::move(terms), lp::Sense::kEqual, 0.0,
                          "cell_level_link");
  }
  {
    auto star = by_star;
    star.push_back({rt_star_var_, -1.0});
    model_.add_constraint(std::move(star), lp::Sense::kEqual, 0.0,
                          "cell_star_link");
    auto mesh = by_mesh;
    mesh.push_back({rt_mesh_var_, -1.0});
    model_.add_constraint(std::move(mesh), lp::Sense::kEqual, 0.0,
                          "cell_mesh_link");
  }
  for (std::size_t zi = 0; zi < z_vars_.size(); ++zi) {
    auto terms = by_count[zi];
    terms.push_back({z_vars_[zi], -1.0});
    model_.add_constraint(std::move(terms), lp::Sense::kEqual, 0.0,
                          "cell_count_link");
  }

  // --- Cut separation ε -----------------------------------------------------
  std::set<double> costs;
  for (const Cell& c : cells_) {
    costs.insert(c.cost_mw);
  }
  double min_gap = *costs.rbegin() - *costs.begin();
  if (costs.size() >= 2) {
    double prev = *costs.begin();
    for (auto it = std::next(costs.begin()); it != costs.end(); ++it) {
      min_gap = std::min(min_gap, *it - prev);
      prev = *it;
    }
    epsilon_mw_ = min_gap / 2.0;
  } else {
    epsilon_mw_ = std::max(1e-9, *costs.begin() * 1e-9);
  }
  HI_ASSERT(epsilon_mw_ > 0.0);
}

MilpRound MilpEncoding::run_milp(const milp::Options& opt,
                                 int max_solutions) {
  MilpRound round = run_milp_impl(opt, max_solutions);
  if (opt.metrics != nullptr) {
    opt.metrics->counter("milp.pool_solutions")
        .add(round.candidates.size());
  }
  return round;
}

MilpRound MilpEncoding::run_milp_impl(const milp::Options& opt,
                                      int max_solutions) {
  milp::Options effective = opt;
  if (effective.branch_priority.empty()) {
    // The objective is fully determined by (p, rt, z); settle those
    // first, then the placement bits.
    effective.branch_priority = p_vars_;
    effective.branch_priority.push_back(rt_star_var_);
    effective.branch_priority.push_back(rt_mesh_var_);
    effective.branch_priority.insert(effective.branch_priority.end(),
                                     z_vars_.begin(), z_vars_.end());
  }
  // One branch-and-bound solve pins the optimal power level P̄*.  The
  // alternative optima are then expanded in closed form: P̄ depends only
  // on the (Tx level, routing, N) cell, and the remaining degrees of
  // freedom — the placement ν and the MAC bit — are constrained solely
  // by the scenario's topological rules, which feasible_topologies()
  // enumerates exactly.  (A general-purpose pool via no-good cuts exists
  // in milp::solve_all_optimal; this expansion is the same set, computed
  // without re-solving one MILP per alternative.)
  const milp::Solution sol = milp::solve(model_, effective);
  MilpRound round;
  round.status = sol.status;
  round.bnb_nodes = sol.nodes;
  if (sol.status != lp::Status::kOptimal) {
    return round;
  }
  round.power_mw = sol.objective;
  for (const Cell& cell : cells_) {
    if (std::fabs(cell.cost_mw - round.power_mw) > epsilon_mw_ / 2.0) {
      continue;  // cell not at the optimal level (ties are all expanded)
    }
    // Reconstruct which (level, routing, N) this cell encodes.
    const std::size_t idx = static_cast<std::size_t>(&cell - cells_.data());
    const std::size_t per_level = 2 * z_vars_.size();
    const int level = static_cast<int>(idx / per_level);
    const auto rt = (idx % per_level) / z_vars_.size() == 0
                        ? model::RoutingProtocol::kStar
                        : model::RoutingProtocol::kMesh;
    const int n_nodes =
        scenario_.min_nodes + static_cast<int>(idx % z_vars_.size());
    for (const model::Topology& t : scenario_.feasible_topologies()) {
      if (t.count() != n_nodes) continue;
      if (rt == model::RoutingProtocol::kStar &&
          !t.has(scenario_.coordinator)) {
        continue;
      }
      for (const auto mac :
           {model::MacProtocol::kCsma, model::MacProtocol::kTdma}) {
        round.candidates.push_back(scenario_.make_config(t, level, mac, rt));
        if (static_cast<int>(round.candidates.size()) >= max_solutions) {
          return round;
        }
      }
    }
  }
  HI_ASSERT_MSG(!round.candidates.empty(),
                "optimal MILP level " << round.power_mw
                                      << " expanded to no configuration");
  return round;
}

void MilpEncoding::add_power_cut_above(double level_mw) {
  std::vector<lp::Term> terms;
  terms.reserve(cells_.size());
  for (const Cell& c : cells_) {
    terms.push_back({c.y_var, c.cost_mw});
  }
  model_.add_constraint(std::move(terms), lp::Sense::kGreaterEqual,
                        level_mw + epsilon_mw_, "power_cut");
}

model::NetworkConfig MilpEncoding::decode(
    const std::vector<double>& x) const {
  HI_REQUIRE(x.size() >= static_cast<std::size_t>(model_.num_variables()),
             "decode: solution vector too short");
  const auto is_one = [&](int v) {
    return x[static_cast<std::size_t>(v)] > 0.5;
  };
  model::Topology topo;
  for (int i = 0; i < channel::kNumLocations; ++i) {
    topo.set(i, is_one(n_vars_[static_cast<std::size_t>(i)]));
  }
  int level = -1;
  for (std::size_t k = 0; k < p_vars_.size(); ++k) {
    if (is_one(p_vars_[k])) {
      HI_ASSERT_MSG(level < 0, "multiple Tx levels selected");
      level = static_cast<int>(k);
    }
  }
  HI_ASSERT_MSG(level >= 0, "no Tx level selected");
  const model::MacProtocol mac = is_one(mac_var_) ? model::MacProtocol::kTdma
                                                  : model::MacProtocol::kCsma;
  HI_ASSERT(is_one(rt_star_var_) != is_one(rt_mesh_var_));
  const model::RoutingProtocol rt = is_one(rt_mesh_var_)
                                        ? model::RoutingProtocol::kMesh
                                        : model::RoutingProtocol::kStar;
  return scenario_.make_config(topo, level, mac, rt);
}

std::vector<double> MilpEncoding::achievable_power_levels() const {
  std::set<double> costs;
  for (const Cell& c : cells_) {
    costs.insert(c.cost_mw);
  }
  return {costs.begin(), costs.end()};
}

}  // namespace hi::dse
