// hi-opt: parallel batch evaluation of design points — concurrent RunSim.
//
// BatchEvaluator layers a ThreadPool over dse::Evaluator.  A batch call
// runs in three phases:
//
//   schedule — under the mutex, walk the batch once and fan every design
//              point that is neither cached nor already in flight out to
//              the pool as an Evaluator::simulate_uncached task (pure —
//              no shared state).  A mutex-protected map of shared
//              futures keyed by design_key() provides per-key in-flight
//              dedup: two workers never simulate the same design point,
//              even across concurrent evaluate() calls.
//   wait     — block (lock released) until the batch's futures resolve.
//   commit   — under the mutex, replay Evaluator::admit() in the
//              caller's request order, installing the computed results.
//
// Because a design point's randomness is seeded from design_key() and
// all design points share one channel-realization root (common random
// numbers), and because commit replays the exact serial bookkeeping,
// results are bit-identical to a serial run at any thread count:
// same metrics, same incumbent (ties resolve in request order), same
// simulations() and cache_hits() counters.
//
// threads == 0 is the serial fallback: no pool, evaluation happens
// inline in request order (still under the mutex, so mixed serial /
// parallel use from multiple callers stays safe).
//
// A failed simulation is reproduced serially at commit time, in request
// order: the caller sees the same exception, after the same counter and
// cache updates, as a serial run that died on that design point; the
// poisoned future is dropped so a retry starts clean.
//
// Do not call evaluate() from inside a task of the same pool — the wait
// phase would block on a worker slot the caller itself occupies.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "dse/evaluator.hpp"
#include "exec/thread_pool.hpp"
#include "model/config.hpp"

namespace hi::exec {

/// See file comment.
class BatchEvaluator {
 public:
  /// `threads` == 0 evaluates serially (no pool); >= 1 spawns a pool
  /// that wide.  The evaluator must outlive the BatchEvaluator and must
  /// not be used directly while a batch call is in flight.
  BatchEvaluator(dse::Evaluator& eval, int threads);

  /// Evaluates every configuration of the batch and returns pointers
  /// into the evaluator's cache, aligned with `cfgs`.  The pointers stay
  /// valid for the evaluator's lifetime (see dse::Evaluator::evaluate).
  /// Safe to call concurrently from several threads.
  std::vector<const dse::Evaluation*> evaluate(
      const std::vector<model::NetworkConfig>& cfgs);

  /// Pool width; 0 in serial mode.
  [[nodiscard]] int threads() const {
    return pool_ != nullptr ? pool_->size() : 0;
  }

 private:
  dse::Evaluator& eval_;
  std::unique_ptr<ThreadPool> pool_;  ///< null in serial mode
  std::mutex mu_;  ///< guards eval_ and computed_
  /// Results computed (or being computed) by the pool, not yet committed
  /// into the evaluator cache; entries are erased on commit.
  std::unordered_map<std::uint64_t, std::shared_future<dse::Evaluation>>
      computed_;
};

}  // namespace hi::exec
