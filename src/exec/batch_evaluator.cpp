#include "exec/batch_evaluator.hpp"

#include <utility>

#include "common/assert.hpp"
#include "obs/timer.hpp"

namespace hi::exec {

BatchEvaluator::BatchEvaluator(dse::Evaluator& eval, int threads)
    : eval_(eval) {
  HI_REQUIRE(threads >= 0,
             "BatchEvaluator: threads must be >= 0 (0 = serial), got "
                 << threads);
  if (threads > 0) {
    pool_ = std::make_unique<ThreadPool>(threads);
  }
}

std::vector<const dse::Evaluation*> BatchEvaluator::evaluate(
    const std::vector<model::NetworkConfig>& cfgs) {
  // Resolved per call: explorers install a per-run registry into the
  // evaluator (see dse::detail::RunScope), so the active one can change
  // between batches.  Counters are atomic, so concurrent batches on the
  // same registry are fine; exec.* totals are schedule-dependent (serial
  // mode schedules no tasks) and deliberately not part of the
  // bit-identical contract — the dse.* / net.* counters are.
  obs::MetricsRegistry* metrics = eval_.metrics();
  obs::ScopedTimer timer(metrics, "exec.batch_s");
  if (metrics != nullptr) {
    metrics->counter("exec.batches").add(1);
    metrics->counter("exec.requests").add(cfgs.size());
  }

  std::vector<const dse::Evaluation*> out;
  out.reserve(cfgs.size());

  if (pool_ == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    for (const model::NetworkConfig& cfg : cfgs) {
      out.push_back(&eval_.evaluate(cfg));
    }
    return out;
  }

  // ---- schedule: fan the missing design points out across the pool ----
  std::unordered_map<std::uint64_t, std::shared_future<dse::Evaluation>> waits;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const model::NetworkConfig& cfg : cfgs) {
      const std::uint64_t key = cfg.design_key();
      if (waits.contains(key) || eval_.cached(cfg)) {
        continue;
      }
      if (const auto it = computed_.find(key); it != computed_.end()) {
        waits.emplace(key, it->second);  // another batch is already on it
        if (metrics != nullptr) {
          metrics->counter("exec.dedup_inflight_hits").add(1);
        }
        continue;
      }
      std::shared_future<dse::Evaluation> fut =
          pool_->submit([this, cfg] { return eval_.simulate_uncached(cfg); })
              .share();
      computed_.emplace(key, fut);
      waits.emplace(key, fut);
      if (metrics != nullptr) {
        metrics->counter("exec.tasks_scheduled").add(1);
      }
    }
  }

  // ---- wait: workers fill the futures while the lock is free ----------
  for (const auto& [key, fut] : waits) {
    fut.wait();
  }

  // ---- commit: replay the serial bookkeeping in request order ---------
  std::lock_guard<std::mutex> lock(mu_);
  for (const model::NetworkConfig& cfg : cfgs) {
    const std::uint64_t key = cfg.design_key();
    const auto it = waits.find(key);
    if (it == waits.end() || eval_.cached(cfg)) {
      // Cached before this batch, committed earlier in this loop, or
      // committed meanwhile by a concurrent batch: the plain hit path.
      out.push_back(&eval_.evaluate(cfg));
      continue;
    }
    try {
      const dse::Evaluation& computed = it->second.get();
      out.push_back(&eval_.admit(cfg, &computed));
      computed_.erase(key);  // now owned by the evaluator cache
    } catch (...) {
      // The worker's simulation failed.  Drop the poisoned future so a
      // retry starts clean, then reproduce the failure serially:
      // simulate_uncached is pure, so admit() throws the same exception
      // after the same counter updates a serial run would have made.
      computed_.erase(key);
      out.push_back(&eval_.admit(cfg, nullptr));
    }
  }
  return out;
}

}  // namespace hi::exec
