#include "exec/thread_pool.hpp"

namespace hi::exec {

ThreadPool::ThreadPool(int threads) {
  HI_REQUIRE(threads >= 1,
             "ThreadPool: need at least one worker, got " << threads);
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

std::size_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping and fully drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // a packaged_task: exceptions land in the caller's future
  }
}

}  // namespace hi::exec
