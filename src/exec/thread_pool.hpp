// hi-opt: fixed-size worker thread pool — the execution substrate of
// hi::exec.
//
// N workers drain one FIFO task queue.  submit() returns a std::future
// carrying the task's result or its exception; shutdown is graceful: the
// destructor finishes every task already queued, then joins the workers.
// BatchEvaluator uses it to fan RunSim calls out across cores, but the
// pool is deliberately generic (any callable, any result type).
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/assert.hpp"

namespace hi::exec {

/// See file comment.
class ThreadPool {
 public:
  /// Spawns `threads` >= 1 workers.
  explicit ThreadPool(int threads);

  /// Graceful shutdown: rejects new work, finishes every queued task,
  /// joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` for execution and returns a future for its result.
  /// An exception thrown by the task is captured and rethrown by
  /// future::get() in the caller — never swallowed on a worker.
  template <typename Fn>
  [[nodiscard]] std::future<std::invoke_result_t<std::decay_t<Fn>>> submit(
      Fn&& fn) {
    using Result = std::invoke_result_t<std::decay_t<Fn>>;
    // shared_ptr because std::function requires copyable callables and
    // packaged_task is move-only.
    auto task =
        std::make_shared<std::packaged_task<Result()>>(std::forward<Fn>(fn));
    std::future<Result> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      HI_REQUIRE(!stopping_, "ThreadPool: submit() after shutdown began");
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Number of workers.
  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

  /// Tasks queued but not yet picked up by a worker.
  [[nodiscard]] std::size_t pending() const;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace hi::exec
