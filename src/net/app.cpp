#include "net/app.hpp"

#include "common/assert.hpp"

namespace hi::net {

AppLayer::AppLayer(des::Kernel& kernel, Routing& routing,
                   const model::AppConfig& cfg, std::vector<int> peers,
                   Rng rng, LatencyRecorder* latency)
    : kernel_(kernel),
      routing_(routing),
      cfg_(cfg),
      latency_(latency),
      peers_(std::move(peers)),
      rng_(rng) {
  HI_REQUIRE(cfg_.throughput_pps > 0.0, "throughput must be positive");
  HI_REQUIRE(cfg_.packet_bytes > 0, "packet length must be positive");
  HI_REQUIRE(!peers_.empty(), "node needs at least one peer");
  for (int p : peers_) {
    HI_REQUIRE(p >= 0 && p < channel::kNumLocations, "bad peer " << p);
    HI_REQUIRE(p != routing_.location(), "node cannot peer with itself");
  }
  routing_.deliver = [this](int origin, std::uint32_t seq) {
    HI_ASSERT(origin >= 0 && origin < channel::kNumLocations);
    ++received_[static_cast<std::size_t>(origin)];
    if (latency_ != nullptr) {
      latency_->on_deliver(origin, seq, kernel_.now());
    }
  };
  // Random round-robin start so pair sample counts stay balanced across
  // the network even for short runs.
  next_peer_ = rng_.uniform_index(peers_.size());
}

void AppLayer::start(double gen_end_s) {
  gen_end_s_ = gen_end_s;
  // Random phase in one period desynchronizes the sources.
  const double period = 1.0 / cfg_.throughput_pps;
  kernel_.schedule_in(rng_.uniform(0.0, period), [this] { generate(); });
}

void AppLayer::generate() {
  if (kernel_.now() >= gen_end_s_) {
    return;
  }
  const int dest = peers_[next_peer_];
  next_peer_ = (next_peer_ + 1) % peers_.size();
  ++sent_;
  ++sent_to_[static_cast<std::size_t>(dest)];
  const std::uint32_t seq = routing_.originate(cfg_.packet_bytes, dest);
  if (latency_ != nullptr) {
    latency_->on_generate(routing_.location(), seq, kernel_.now());
  }
  kernel_.schedule_in(1.0 / cfg_.throughput_pps, [this] { generate(); });
}

std::uint64_t AppLayer::sent_to(int dest) const {
  HI_REQUIRE(dest >= 0 && dest < channel::kNumLocations,
             "bad destination " << dest);
  return sent_to_[static_cast<std::size_t>(dest)];
}

std::uint64_t AppLayer::received_from(int origin) const {
  HI_REQUIRE(origin >= 0 && origin < channel::kNumLocations,
             "bad origin " << origin);
  return received_[static_cast<std::size_t>(origin)];
}

}  // namespace hi::net
