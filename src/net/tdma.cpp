#include "net/tdma.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace hi::net {

TdmaMac::TdmaMac(des::Kernel& kernel, Radio& radio, int buffer_packets,
                 const TdmaParams& params, const obs::RunTrace* trace)
    : Mac(kernel, radio, buffer_packets, trace), params_(params) {
  HI_REQUIRE(params_.slot_s > 0.0, "slot duration must be positive");
  HI_REQUIRE(params_.num_slots > 0, "frame needs at least one slot");
  HI_REQUIRE(params_.slot_index >= 0 && params_.slot_index < params_.num_slots,
             "slot index " << params_.slot_index << " outside frame of "
                           << params_.num_slots);
  radio_.on_tx_done = [this] {
    if (!queue_.empty()) {
      on_queue_not_empty();
    }
  };
}

double TdmaMac::next_own_slot_start() const {
  const double frame_s = params_.slot_s * params_.num_slots;
  const double offset = params_.slot_s * params_.slot_index;
  const double now = kernel_.now();
  // First own slot start strictly in the future (>= now + tiny epsilon to
  // avoid re-entering the slot we are already inside).
  const double k = std::floor((now - offset) / frame_s) + 1.0;
  double t = offset + k * frame_s;
  if (t < now) {
    t += frame_s;
  }
  return t;
}

void TdmaMac::on_queue_not_empty() {
  if (wakeup_armed_ || radio_.transmitting()) {
    return;
  }
  wakeup_armed_ = true;
  kernel_.schedule_at(next_own_slot_start(), [this] { slot_begin(); });
}

void TdmaMac::slot_begin() {
  wakeup_armed_ = false;
  if (queue_.empty()) {
    return;
  }
  const Packet p = queue_.front();
  HI_ASSERT_MSG(radio_.packet_airtime_s(p.bytes) <= params_.slot_s,
                "packet of " << p.bytes << " B does not fit in a "
                             << params_.slot_s << " s slot");
  if (radio_.transmitting()) {
    // Should not happen (own airtime fits a slot), but stay safe.
    on_queue_not_empty();
    return;
  }
  queue_.pop_front();
  ++stats_.sent;
  radio_.transmit(p);
}

}  // namespace hi::net
