// hi-opt: the shared wireless medium around the body.
//
// The Medium connects every Radio through the (time-varying) channel
// model: when a radio transmits, each other radio's instantaneous receive
// power is  TxdBm - PL(i,j,t), sampled once at transmission start (the
// fade is effectively constant over a <1 ms packet).  Radios whose
// receive power clears their sensitivity get signal_start/signal_end
// callbacks; the rest never hear the packet (counted as propagation
// losses).  This mirrors the paper's successful-reception condition
// TxdBm >= RxdBm + PL(i,j,t).
#pragma once

#include <cstdint>
#include <vector>

#include "channel/channel.hpp"
#include "des/kernel.hpp"
#include "net/packet.hpp"
#include "obs/trace.hpp"

namespace hi::net {

class Radio;

/// Medium-wide counters.  The cross_* fields count the subset of pairs
/// whose transmitter and receiver belong to different networks (bodies);
/// they stay zero in single-body runs and live outside the store's
/// legacy medium trio (serialized via the evaluation crowd tail only).
struct MediumStats {
  std::uint64_t transmissions = 0;      ///< physical transmissions started
  std::uint64_t deliveries_offered = 0; ///< (tx, rx) pairs above sensitivity
  std::uint64_t below_sensitivity = 0;  ///< (tx, rx) pairs lost to path loss
  std::uint64_t cross_offered = 0;      ///< cross-body pairs above sensitivity
  std::uint64_t cross_below_sensitivity = 0;  ///< cross-body pairs lost
};

/// See file comment.  One Medium per simulation run.
class Medium {
 public:
  /// `trace`, when non-null, receives a `tx` TraceEvent per physical
  /// transmission (obs::RunTrace; null = no tracing, zero cost).
  Medium(des::Kernel& kernel, channel::ChannelModel& channel,
         const obs::RunTrace* trace = nullptr);

  Medium(const Medium&) = delete;
  Medium& operator=(const Medium&) = delete;

  /// Registers a radio; all registered radios hear each other's
  /// transmissions (subject to path loss).  Radios must carry distinct
  /// channel ids (single body: the location; crowd: body * 10 + location).
  void attach(Radio* radio);

  /// Starts a transmission from `tx`: distributes signal_start to every
  /// audible receiver and schedules the matching signal_end calls.
  void begin_transmission(const Radio& tx, const Packet& p, double duration_s);

  [[nodiscard]] const MediumStats& stats() const { return stats_; }

 private:
  des::Kernel& kernel_;
  channel::ChannelModel& channel_;
  const obs::RunTrace* trace_;
  std::vector<Radio*> radios_;
  std::uint64_t next_tx_id_ = 1;
  MediumStats stats_;
  /// Scratch for the batched per-transmission path-loss sampling
  /// (receiver channel ids / sampled losses); sized once, reused for
  /// every transmission — no allocation on the hot path after warmup.
  std::vector<int> batch_ids_;
  std::vector<double> batch_pl_;
};

}  // namespace hi::net
