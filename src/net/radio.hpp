// hi-opt: the physical layer.
//
// A Radio is half-duplex: it either transmits, decodes at most one
// incoming signal, or idles.  Reception uses a capture model: the signal
// being decoded survives interference as long as it stays `capture_db`
// above the strongest overlapping signal; otherwise it is marked
// corrupted (collision).  Signals that arrive while the radio is already
// decoding or transmitting are missed.  Energy is metered per packet
// event — TxmW for the transmit duration, RxmW for the time spent
// decoding — matching the paper's Eq. (3) accounting, which charges
// packet transactions rather than idle listening.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "des/kernel.hpp"
#include "net/packet.hpp"
#include "obs/trace.hpp"

namespace hi::net {

/// Physical-layer parameters of one radio instance.
struct RadioParams {
  double tx_dbm = 0.0;       ///< transmit output power
  double tx_mw = 18.3;       ///< power drawn while transmitting
  double sensitivity_dbm = -97.0;
  double rx_mw = 17.7;       ///< power drawn while decoding
  double bit_rate_bps = 1.024e6;
  double capture_db = 10.0;  ///< SIR needed to survive interference
};

/// Per-radio event counters.
struct RadioStats {
  std::uint64_t tx_packets = 0;
  std::uint64_t rx_ok = 0;         ///< decoded successfully
  std::uint64_t rx_corrupted = 0;  ///< collision while decoding
  std::uint64_t rx_missed = 0;     ///< audible but radio was busy
  std::uint64_t rx_aborted = 0;    ///< decode cut short by own transmit
};

/// Coexistence counters, kept apart from RadioStats so single-body runs
/// (and the store's legacy per-node byte layout) are untouched.  A
/// foreign signal — one transmitted by another body's network — still
/// occupies the radio, costs decode energy, and interferes with local
/// packets through the capture model; these counters record that load.
struct RadioCrowdStats {
  std::uint64_t foreign_heard = 0;    ///< foreign signals above sensitivity
  std::uint64_t foreign_decoded = 0;  ///< foreign packets decoded then dropped
};

class Medium;

/// See file comment.  One Radio per node; owned by the Node, wired to the
/// shared Medium by the Network builder.
class Radio {
 public:
  /// `trace`, when non-null, receives `rx_ok` / `rx_collision`
  /// TraceEvents per decode outcome (null = no tracing, zero cost).
  /// `net_id` names the network (body) the radio belongs to; signals
  /// from other net_ids are interference only, never delivered upward.
  /// `channel_id` is the radio's identity in the ChannelModel's index
  /// space (crowd: body * kNumLocations + location); the default -1
  /// uses `location`, the single-body convention.
  Radio(des::Kernel& kernel, Medium& medium, int location,
        const RadioParams& params, const obs::RunTrace* trace = nullptr,
        int net_id = 0, int channel_id = -1);

  Radio(const Radio&) = delete;
  Radio& operator=(const Radio&) = delete;

  /// Callback invoked with each successfully decoded packet (set by MAC).
  std::function<void(const Packet&)> on_receive;

  /// Callback invoked when a transmission completes (set by MAC).
  std::function<void()> on_tx_done;

  /// Starts transmitting `p`.  Must not already be transmitting.  Any
  /// in-progress decode is aborted (half duplex).
  void transmit(const Packet& p);

  /// True while a transmission is in progress.
  [[nodiscard]] bool transmitting() const { return transmitting_; }

  /// Carrier sense: true when transmitting or when at least one signal
  /// above sensitivity is on the air at this radio.
  [[nodiscard]] bool channel_busy() const {
    return transmitting_ || !audible_.empty();
  }

  /// Air time of a packet of `bytes` at this radio's bit rate.
  [[nodiscard]] double packet_airtime_s(int bytes) const;

  [[nodiscard]] int location() const { return location_; }
  [[nodiscard]] int net_id() const { return net_id_; }
  [[nodiscard]] int channel_id() const { return channel_id_; }
  [[nodiscard]] const RadioParams& params() const { return params_; }
  [[nodiscard]] const RadioStats& stats() const { return stats_; }
  [[nodiscard]] const RadioCrowdStats& crowd_stats() const { return crowd_; }
  [[nodiscard]] double tx_energy_mj() const { return tx_energy_mj_; }
  [[nodiscard]] double rx_energy_mj() const { return rx_energy_mj_; }

  // --- Medium-facing interface -------------------------------------------
  /// A signal with receive power `rx_dbm` (already >= sensitivity) starts.
  /// `foreign` marks signals from another network (body): they occupy
  /// the radio and interfere exactly like local ones, but are dropped
  /// after decode and never reach on_receive, and their busy/missed
  /// accounting lands in crowd_stats() instead of RadioStats.
  void signal_start(std::uint64_t tx_id, double rx_dbm, const Packet& p,
                    bool foreign = false);

  /// The signal `tx_id` ends; delivers the packet if decoding succeeded.
  void signal_end(std::uint64_t tx_id);

 private:
  struct Signal {
    std::uint64_t tx_id;
    double rx_dbm;
    Packet packet;
    bool foreign;
  };

  [[nodiscard]] Signal* find_signal(std::uint64_t tx_id);
  void finish_transmit();

  des::Kernel& kernel_;
  Medium& medium_;
  int location_;
  int net_id_;
  int channel_id_;
  RadioParams params_;
  const obs::RunTrace* trace_;

  bool transmitting_ = false;
  /// Signals currently on the air at this radio.  A handful at most
  /// (bounded by the node count), so a flat vector with swap-remove
  /// beats a hash map; iteration order feeds only an order-independent
  /// interference OR, so determinism is unaffected (DESIGN.md §11).
  std::vector<Signal> audible_;

  bool decoding_ = false;
  std::uint64_t current_rx_id_ = 0;
  bool current_corrupted_ = false;
  double decode_start_ = 0.0;

  double tx_energy_mj_ = 0.0;
  double rx_energy_mj_ = 0.0;
  RadioStats stats_;
  RadioCrowdStats crowd_;
};

}  // namespace hi::net
