#include "net/medium.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "net/radio.hpp"

namespace hi::net {

Medium::Medium(des::Kernel& kernel, channel::ChannelModel& channel,
               const obs::RunTrace* trace)
    : kernel_(kernel), channel_(channel), trace_(trace) {}

void Medium::attach(Radio* radio) {
  HI_REQUIRE(radio != nullptr, "attach: null radio");
  HI_REQUIRE(std::none_of(radios_.begin(), radios_.end(),
                          [&](const Radio* r) {
                            return r->channel_id() == radio->channel_id();
                          }),
             "attach: duplicate radio at channel id " << radio->channel_id());
  radios_.push_back(radio);
}

void Medium::begin_transmission(const Radio& tx, const Packet& p,
                                double duration_s) {
  const std::uint64_t tx_id = next_tx_id_++;
  ++stats_.transmissions;
  const double now = kernel_.now();
  if (trace_ != nullptr) {
    trace_->record(obs::TraceEvent{now, obs::TraceKind::kTx, tx.location(),
                                   p.origin, p.seq,
                                   static_cast<double>(p.bytes), duration_s});
  }
  // Batched fan-out: collect every other radio's channel id, sample all
  // path losses in one channel call (same pairs, same order as the
  // historical per-pair loop — the default batch implementation *is*
  // that loop, so fade draws are bit-identical), then offer signals.
  batch_ids_.clear();
  const std::size_t fanout = radios_.size() - 1;
  if (batch_ids_.capacity() < fanout) {
    batch_ids_.reserve(radios_.size());
    batch_pl_.reserve(radios_.size());
  }
  for (Radio* rx : radios_) {
    if (rx->channel_id() != tx.channel_id()) {
      batch_ids_.push_back(rx->channel_id());
    }
  }
  batch_pl_.resize(batch_ids_.size());
  channel_.path_loss_batch_db(tx.channel_id(), batch_ids_.data(),
                              batch_ids_.size(), now, batch_pl_.data());
  std::size_t k = 0;
  for (Radio* rx : radios_) {
    if (rx->channel_id() == tx.channel_id()) {
      continue;
    }
    const double rx_dbm = tx.params().tx_dbm - batch_pl_[k++];
    const bool foreign = rx->net_id() != tx.net_id();
    if (rx_dbm < rx->params().sensitivity_dbm) {
      ++stats_.below_sensitivity;
      if (foreign) {
        ++stats_.cross_below_sensitivity;
      }
      continue;
    }
    ++stats_.deliveries_offered;
    if (foreign) {
      ++stats_.cross_offered;
    }
    rx->signal_start(tx_id, rx_dbm, p, foreign);
    kernel_.schedule_in(duration_s, [rx, tx_id] { rx->signal_end(tx_id); });
  }
}

}  // namespace hi::net
