#include "net/medium.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "net/radio.hpp"

namespace hi::net {

Medium::Medium(des::Kernel& kernel, channel::ChannelModel& channel,
               const obs::RunTrace* trace)
    : kernel_(kernel), channel_(channel), trace_(trace) {}

void Medium::attach(Radio* radio) {
  HI_REQUIRE(radio != nullptr, "attach: null radio");
  HI_REQUIRE(std::none_of(radios_.begin(), radios_.end(),
                          [&](const Radio* r) {
                            return r->location() == radio->location();
                          }),
             "attach: duplicate radio at location " << radio->location());
  radios_.push_back(radio);
}

void Medium::begin_transmission(const Radio& tx, const Packet& p,
                                double duration_s) {
  const std::uint64_t tx_id = next_tx_id_++;
  ++stats_.transmissions;
  const double now = kernel_.now();
  if (trace_ != nullptr) {
    trace_->record(obs::TraceEvent{now, obs::TraceKind::kTx, tx.location(),
                                   p.origin, p.seq,
                                   static_cast<double>(p.bytes), duration_s});
  }
  for (Radio* rx : radios_) {
    if (rx->location() == tx.location()) {
      continue;
    }
    const double pl =
        channel_.path_loss_db(tx.location(), rx->location(), now);
    const double rx_dbm = tx.params().tx_dbm - pl;
    if (rx_dbm < rx->params().sensitivity_dbm) {
      ++stats_.below_sensitivity;
      continue;
    }
    ++stats_.deliveries_offered;
    rx->signal_start(tx_id, rx_dbm, p);
    kernel_.schedule_in(duration_s, [rx, tx_id] { rx->signal_end(tx_id); });
  }
}

}  // namespace hi::net
