// hi-opt: network-layer routing.
//
// Packets are unicast: the application addresses each packet to one
// destination (Eq. 6 tracks per-pair statistics N(s)/N(r) i->k).  All
// transmissions are physically broadcast on the shared medium, so every
// node in range decodes every copy — that is what the paper's Eq. (3)/(5)
// energy model charges — but only the destination delivers it upward.
//
// Two schemes from the component library (Sec. 2.1.2):
//
//   * Star: the central coordinator rebroadcasts each packet it hears
//     (once, unless it is itself the destination), so the destination
//     gets up to two chances — the original and the echo — matching the
//     factor 2 in Eq. (5).
//
//   * Mesh (controlled flooding): every node except the packet's final
//     destination rebroadcasts each received *copy* whose hop counter is
//     below Nhops and whose visited history does not contain the node.
//     The per-packet transmission count is then bounded by
//     1 + (N-2) + (N-2)(N-3) = N^2 - 4N + 5 = NreTx, the paper's bound.
//
// Both schemes deliver each unique packet to the destination app at most
// once (sequence-number dedup).
#pragma once

#include <cstdint>
#include <functional>

#include "common/flatset.hpp"
#include "net/mac.hpp"
#include "net/packet.hpp"

namespace hi::net {

/// Routing-layer counters.
struct RoutingStats {
  std::uint64_t originated = 0;
  std::uint64_t delivered = 0;   ///< unique packets handed to the app
  std::uint64_t duplicates = 0;  ///< destination copies suppressed by dedup
  std::uint64_t relayed = 0;     ///< copies rebroadcast by this node
};

/// Abstract routing layer for one node.
class Routing {
 public:
  Routing(Mac& mac, int location);
  virtual ~Routing() = default;

  Routing(const Routing&) = delete;
  Routing& operator=(const Routing&) = delete;

  /// Originates a new application packet of `bytes` bytes for `dest` and
  /// returns the sequence number assigned to it (dense per origin, so
  /// (origin, seq) identifies the packet network-wide — see Packet::key).
  std::uint32_t originate(int bytes, int dest);

  /// Callback to the application layer: a unique packet from `origin`
  /// with sequence `seq` arrived at this node (its destination).
  std::function<void(int origin, std::uint32_t seq)> deliver;

  [[nodiscard]] const RoutingStats& stats() const { return stats_; }
  [[nodiscard]] int location() const { return location_; }

 protected:
  /// Handles a packet decoded by the MAC/radio.
  virtual void handle_receive(const Packet& p) = 0;

  /// Delivers to the local app if this is the first copy of `p` seen.
  void deliver_if_new(const Packet& p);

  Mac& mac_;
  int location_;
  std::uint32_t next_seq_ = 0;
  FlatSet64 seen_;  ///< packet key() dedup; flat set keeps this allocation-free
  RoutingStats stats_;
};

/// Star topology with a coordinator echo; see file comment.
class StarRouting final : public Routing {
 public:
  StarRouting(Mac& mac, int location, int coordinator);

 private:
  void handle_receive(const Packet& p) override;

  int coordinator_;
  FlatSet64 echoed_;
};

/// Controlled flooding mesh; see file comment.
class MeshRouting final : public Routing {
 public:
  MeshRouting(Mac& mac, int location, int max_hops);

 private:
  void handle_receive(const Packet& p) override;

  int max_hops_;
};

}  // namespace hi::net
