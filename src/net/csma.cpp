#include "net/csma.hpp"

#include "common/assert.hpp"

namespace hi::net {

CsmaMac::CsmaMac(des::Kernel& kernel, Radio& radio, int buffer_packets,
                 const CsmaParams& params, Rng rng,
                 const obs::RunTrace* trace)
    : Mac(kernel, radio, buffer_packets, trace), params_(params), rng_(rng) {
  HI_REQUIRE(params_.turnaround_s >= 0.0, "turnaround must be >= 0");
  HI_REQUIRE(params_.backoff_max_s > 0.0, "backoff window must be positive");
  radio_.on_tx_done = [this] {
    attempt_pending_ = false;
    if (!queue_.empty()) {
      on_queue_not_empty();
    }
  };
}

void CsmaMac::on_queue_not_empty() {
  if (attempt_pending_ || radio_.transmitting()) {
    return;  // the running cycle will pick the packet up
  }
  attempt_pending_ = true;
  try_send();
}

void CsmaMac::try_send() {
  HI_ASSERT(attempt_pending_);
  if (queue_.empty()) {
    attempt_pending_ = false;
    return;
  }
  if (radio_.channel_busy()) {
    ++stats_.backoffs;
    const double wait =
        params_.access_mode == model::CsmaAccessMode::kNonPersistent
            ? rng_.uniform(0.0, params_.backoff_max_s)
            : params_.persistent_poll_s;
    if (trace_ != nullptr) {
      trace_->record(obs::TraceEvent{
          kernel_.now(), obs::TraceKind::kBackoff, radio_.location(), -1,
          static_cast<std::int64_t>(stats_.backoffs), wait});
    }
    kernel_.schedule_in(wait, [this] { try_send(); });
    return;
  }
  // Idle: commit to transmit after the turnaround without re-sensing —
  // the CSMA vulnerability window.
  kernel_.schedule_in(params_.turnaround_s, [this] { begin_transmission(); });
}

void CsmaMac::begin_transmission() {
  HI_ASSERT(attempt_pending_);
  if (queue_.empty()) {
    attempt_pending_ = false;
    return;
  }
  const Packet p = queue_.front();
  queue_.pop_front();
  ++stats_.sent;
  radio_.transmit(p);
  // attempt_pending_ stays true until on_tx_done fires.
}

}  // namespace hi::net
