#include "net/mac.hpp"

#include "common/assert.hpp"

namespace hi::net {

Mac::Mac(des::Kernel& kernel, Radio& radio, int buffer_packets,
         const obs::RunTrace* trace)
    : kernel_(kernel), radio_(radio), buffer_packets_(buffer_packets),
      trace_(trace),
      queue_(buffer_packets > 0 ? static_cast<std::size_t>(buffer_packets)
                                : 1) {
  HI_REQUIRE(buffer_packets_ > 0, "MAC buffer must hold at least one packet");
  radio_.on_receive = [this](const Packet& p) {
    if (on_receive) {
      on_receive(p);
    }
  };
}

void Mac::enqueue(const Packet& p) {
  ++stats_.enqueued;
  if (queue_.full()) {
    ++stats_.dropped_buffer;
    if (trace_ != nullptr) {
      trace_->record(obs::TraceEvent{kernel_.now(),
                                     obs::TraceKind::kDropBuffer,
                                     radio_.location(), p.origin, p.seq});
    }
    return;
  }
  queue_.push_back(p);
  on_queue_not_empty();
}

}  // namespace hi::net
