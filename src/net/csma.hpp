// hi-opt: carrier-sense multiple access MAC.
//
// Non-persistent mode (the paper's TunableMAC configuration): when the
// head-of-queue packet is ready, sense the medium; if busy, sleep for a
// random backoff drawn uniformly from (0, backoff_max] and sense again;
// if idle, transmit after a short rx/tx turnaround.  The turnaround is
// the collision vulnerability window: two nodes that both sensed an idle
// medium within it will collide, exactly the non-determinism the paper
// attributes to CSMA.
//
// Persistent mode (ablation option): when busy, re-sense as soon as
// possible (a short fixed poll), i.e. 1-persistent behaviour, which
// raises the collision rate after a shared busy period.
#pragma once

#include "model/config.hpp"
#include "net/mac.hpp"

namespace hi::net {

/// Tunable CSMA parameters.
struct CsmaParams {
  model::CsmaAccessMode access_mode = model::CsmaAccessMode::kNonPersistent;
  double turnaround_s = 200e-6;   ///< sense-to-transmit switch time
  double backoff_max_s = 5e-3;    ///< non-persistent backoff window
  double persistent_poll_s = 100e-6;  ///< persistent re-sense period
};

/// See file comment.
class CsmaMac final : public Mac {
 public:
  CsmaMac(des::Kernel& kernel, Radio& radio, int buffer_packets,
          const CsmaParams& params, Rng rng,
          const obs::RunTrace* trace = nullptr);

 private:
  void on_queue_not_empty() override;
  void try_send();
  void begin_transmission();

  CsmaParams params_;
  Rng rng_;
  bool attempt_pending_ = false;  ///< a sense/backoff/tx cycle is active
};

}  // namespace hi::net
