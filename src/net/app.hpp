// hi-opt: application layer.
//
// Abstracts the node's sensing/actuation function as a periodic packet
// source (φ packets/s, Lpkt bytes each) with a random initial phase to
// desynchronize nodes.  Each packet is addressed to one of the other
// nodes, cycling round-robin (from a random start) so every ordered pair
// (i, k) accumulates ~φ·Tsim/(N-1) samples.  Sequence numbers and
// per-pair sent/received counts are the raw material of the PDR
// estimate, Eqs. (6)-(7).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "channel/locations.hpp"
#include "common/rng.hpp"
#include "des/kernel.hpp"
#include "model/config.hpp"
#include "net/latency.hpp"
#include "net/routing.hpp"

namespace hi::net {

/// See file comment.
class AppLayer {
 public:
  /// `peers` are the other nodes' locations (packet destinations).
  /// `latency` (nullable, default off) is the run-level end-to-end delay
  /// recorder shared by all nodes — see net/latency.hpp; a null pointer
  /// costs one branch per packet and changes nothing else.
  AppLayer(des::Kernel& kernel, Routing& routing, const model::AppConfig& cfg,
           std::vector<int> peers, Rng rng,
           LatencyRecorder* latency = nullptr);

  AppLayer(const AppLayer&) = delete;
  AppLayer& operator=(const AppLayer&) = delete;

  /// Starts periodic generation; packets are generated while
  /// now < gen_end (so late packets still have air time before the run
  /// ends and the PDR estimate is not clipped).
  void start(double gen_end_s);

  /// Unique packets this node originated (all destinations).
  [[nodiscard]] std::uint64_t sent() const { return sent_; }

  /// N(s) this->dest: unique packets this node addressed to `dest`.
  [[nodiscard]] std::uint64_t sent_to(int dest) const;

  /// N(r) origin->this: unique packets received here from `origin`.
  [[nodiscard]] std::uint64_t received_from(int origin) const;

 private:
  void generate();

  des::Kernel& kernel_;
  Routing& routing_;
  model::AppConfig cfg_;
  LatencyRecorder* latency_ = nullptr;
  std::vector<int> peers_;
  Rng rng_;
  double gen_end_s_ = 0.0;
  std::size_t next_peer_ = 0;
  std::uint64_t sent_ = 0;
  std::array<std::uint64_t, channel::kNumLocations> sent_to_{};
  std::array<std::uint64_t, channel::kNumLocations> received_{};
};

}  // namespace hi::net
