#include "net/network.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/units.hpp"
#include "net/node_stack.hpp"

namespace hi::net {

using detail::NodeBundle;

SimResult simulate(const model::NetworkConfig& cfg,
                   channel::ChannelModel& channel, const SimParams& params) {
  const std::vector<int> locs = cfg.topology.locations();
  const int n = static_cast<int>(locs.size());
  HI_REQUIRE(n >= 2, "simulate: need at least 2 nodes, topology has " << n);
  HI_REQUIRE(params.duration_s > params.gen_guard_s,
             "simulate: duration " << params.duration_s
                                   << " s must exceed the generation guard "
                                   << params.gen_guard_s << " s");
  if (cfg.routing.protocol == model::RoutingProtocol::kStar) {
    HI_REQUIRE(cfg.topology.has(cfg.routing.coordinator),
               "star coordinator location " << cfg.routing.coordinator
                                            << " carries no node");
  }

  des::Kernel kernel;
  Medium medium(kernel, channel, params.trace);
  Rng root(params.seed);
  std::unique_ptr<LatencyRecorder> latency;
  if (params.collect_latency) {
    latency = std::make_unique<LatencyRecorder>();
  }

  std::vector<std::unique_ptr<NodeBundle>> nodes;
  nodes.reserve(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    const int loc = locs[static_cast<std::size_t>(k)];
    std::vector<int> peers;
    peers.reserve(static_cast<std::size_t>(n) - 1);
    for (int other : locs) {
      if (other != loc) peers.push_back(other);
    }
    nodes.push_back(std::make_unique<NodeBundle>(
        kernel, medium, loc, cfg, params,
        /*slot_index=*/k, /*num_slots=*/n, std::move(peers),
        root.fork(static_cast<std::uint64_t>(loc)), latency.get()));
  }

  const double gen_end = params.duration_s - params.gen_guard_s;
  for (auto& nb : nodes) {
    nb->mac->start();
    nb->app->start(gen_end);
  }
  kernel.run_until(params.duration_s);

  // ---- Metrics ------------------------------------------------------------
  SimResult res;
  res.duration_s = params.duration_s;
  res.medium = medium.stats();
  res.events = kernel.events_processed();
  if (latency != nullptr) {
    res.latency = latency->summary();
  }

  detail::summarize_nodes(nodes, cfg, params, res);

  if (params.trace != nullptr) {
    params.trace->record(obs::TraceEvent{
        params.duration_s, obs::TraceKind::kKernel, -1, -1,
        static_cast<std::int64_t>(kernel.events_processed()),
        static_cast<double>(kernel.events_cancelled()),
        static_cast<double>(kernel.heap_highwater())});
  }
  if (params.metrics != nullptr) {
    // One atomic flush per run keeps the event loop itself free of
    // registry traffic; the per-layer stats structs already hold the
    // counts.  Order-independent sums, so parallel runs recording into a
    // shared registry reach the same totals as serial ones.
    obs::MetricsRegistry& m = *params.metrics;
    m.counter("net.runs").add(1);
    m.counter("des.events").add(kernel.events_processed());
    m.counter("des.cancelled").add(kernel.events_cancelled());
    m.gauge("des.heap_highwater")
        .update_max(static_cast<double>(kernel.heap_highwater()));
    m.counter("des.alloc_slabs").add(kernel.arena_chunks());
    m.counter("des.alloc_handler_heap").add(kernel.handler_heap_allocs());
    m.counter("des.heap_sift").add(kernel.heap_sift_steps());
    m.counter("net.medium.transmissions").add(res.medium.transmissions);
    m.counter("net.medium.deliveries_offered")
        .add(res.medium.deliveries_offered);
    m.counter("net.medium.below_sensitivity")
        .add(res.medium.below_sensitivity);
    std::uint64_t tx = 0, rx_ok = 0, rx_corrupted = 0, rx_missed = 0,
                  rx_aborted = 0, enq = 0, sent = 0, drop = 0, backoffs = 0,
                  app_sent = 0;
    for (const NodeResult& nr : res.nodes) {
      tx += nr.radio.tx_packets;
      rx_ok += nr.radio.rx_ok;
      rx_corrupted += nr.radio.rx_corrupted;
      rx_missed += nr.radio.rx_missed;
      rx_aborted += nr.radio.rx_aborted;
      enq += nr.mac.enqueued;
      sent += nr.mac.sent;
      drop += nr.mac.dropped_buffer;
      backoffs += nr.mac.backoffs;
      app_sent += nr.app_sent;
    }
    m.counter("net.radio.tx_packets").add(tx);
    m.counter("net.radio.rx_ok").add(rx_ok);
    m.counter("net.radio.rx_corrupted").add(rx_corrupted);
    m.counter("net.radio.rx_missed").add(rx_missed);
    m.counter("net.radio.rx_aborted").add(rx_aborted);
    m.counter("net.mac.enqueued").add(enq);
    m.counter("net.mac.sent").add(sent);
    m.counter("net.mac.dropped_buffer").add(drop);
    m.counter("net.mac.backoffs").add(backoffs);
    m.counter("net.app.sent").add(app_sent);
    if (params.collect_latency) {
      // Gated so latency-off runs record exactly the pre-latency counter
      // set (counter-invariance: the fuzz suite diffs registries).
      m.counter("net.latency_samples").add(res.latency.samples);
      m.histogram("net.latency_p95_s").observe(res.latency.p95_s);
    }
  }
  return res;
}

ChannelFactory default_channel_factory() {
  return [](std::uint64_t seed) {
    return channel::make_default_body_channel(seed);
  };
}

SimResult simulate_averaged(const model::NetworkConfig& cfg,
                            const SimParams& params, int runs,
                            const ChannelFactory& make_channel,
                            RunningStats* pdr_spread,
                            RunningStats* power_spread) {
  HI_REQUIRE(runs >= 1, "simulate_averaged: need at least one run");
  Rng seeder(params.seed);
  Rng channel_seeder(params.channel_seed != 0 ? params.channel_seed
                                              : params.seed);
  SimResult first;
  RunningStats pdr_acc, worst_acc, mean_acc, nlt_events;
  RunningStats lat_mean, lat_p50, lat_p95;
  double lat_max = 0.0;
  std::uint64_t lat_samples = 0;
  double events_total = 0.0;
  for (int r = 0; r < runs; ++r) {
    SimParams run_params = params;
    run_params.seed = seeder.fork(static_cast<std::uint64_t>(r)).next_u64();
    auto channel = make_channel(
        channel_seeder.fork(static_cast<std::uint64_t>(r)).next_u64() ^
        0xC0FFEE);
    const SimResult one = simulate(cfg, *channel, run_params);
    if (r == 0) {
      first = one;
    }
    pdr_acc.add(one.pdr);
    worst_acc.add(one.worst_power_mw);
    mean_acc.add(one.mean_power_mw);
    events_total += static_cast<double>(one.events);
    if (params.collect_latency) {
      // Mirror the PDR treatment: mean over replications of each
      // quantile, worst case for the max, total for the sample count.
      lat_mean.add(one.latency.mean_s);
      lat_p50.add(one.latency.p50_s);
      lat_p95.add(one.latency.p95_s);
      lat_max = std::max(lat_max, one.latency.max_s);
      lat_samples += one.latency.samples;
    }
  }
  if (pdr_spread != nullptr) {
    *pdr_spread = pdr_acc;
  }
  if (power_spread != nullptr) {
    *power_spread = worst_acc;
  }
  SimResult avg = first;
  avg.pdr = pdr_acc.mean();
  avg.worst_power_mw = worst_acc.mean();
  avg.mean_power_mw = mean_acc.mean();
  avg.nlt_s = avg.worst_power_mw > 0.0
                  ? cfg.battery_j / mw_to_w(avg.worst_power_mw)
                  : 0.0;
  avg.events = static_cast<std::uint64_t>(events_total);
  if (params.collect_latency) {
    avg.latency.collected = true;
    avg.latency.samples = lat_samples;
    avg.latency.mean_s = lat_mean.mean();
    avg.latency.p50_s = lat_p50.mean();
    avg.latency.p95_s = lat_p95.mean();
    avg.latency.max_s = lat_max;
  }
  return avg;
}

}  // namespace hi::net
