// hi-opt: per-packet end-to-end delay metric.
//
// A run-level recorder owned by net::simulate() and shared by every
// node's AppLayer through a nullable pointer: the origin records the
// generation time of each packet it originates (keyed by (origin, seq),
// which identifies the packet network-wide — see Packet::key), and the
// destination's deliver callback records the delay when the unique copy
// first reaches the application.  A null recorder — the default — is
// the fast path: one pointer test per packet, no allocation, no RNG
// draw, so latency-off runs are bit-identical to pre-latency builds
// (the golden-fingerprint suite pins that).
//
// The summary is exact, not sketched: delays are sorted and quantiles
// taken by nearest rank, so the result is a deterministic function of
// the simulated event sequence — independent of thread count and of
// delivery order ties.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "channel/locations.hpp"

namespace hi::net {

/// End-to-end delay summary of one run (origin app -> destination app).
/// `collected` distinguishes "collection was off" from "collection was
/// on but nothing was delivered"; all other fields are zero in both of
/// those cases.
struct LatencySummary {
  bool collected = false;     ///< latency collection was enabled
  std::uint64_t samples = 0;  ///< delivered unique packets measured
  double mean_s = 0.0;
  double p50_s = 0.0;  ///< nearest-rank quantiles over the sorted delays
  double p95_s = 0.0;
  double max_s = 0.0;
};

/// See file comment.
class LatencyRecorder {
 public:
  /// Records the generation time of packet (origin, seq).  Sequence
  /// numbers are dense per origin (Routing::originate), so storage is a
  /// flat per-origin vector indexed by seq.
  void on_generate(int origin, std::uint32_t seq, double t_s) {
    std::vector<double>& gen = gen_[static_cast<std::size_t>(origin)];
    if (seq >= gen.size()) {
      gen.resize(seq + 1, 0.0);
    }
    gen[seq] = t_s;
  }

  /// Records the first delivery of packet (origin, seq) to its
  /// destination app (routing dedup guarantees at most one call per
  /// packet).
  void on_deliver(int origin, std::uint32_t seq, double t_s) {
    delays_.push_back(t_s - gen_[static_cast<std::size_t>(origin)][seq]);
  }

  /// Folds the recorded delays into a summary (sorts a copy; exact
  /// nearest-rank quantiles).
  [[nodiscard]] LatencySummary summary() const;

 private:
  std::array<std::vector<double>, channel::kNumLocations> gen_;
  std::vector<double> delays_;
};

}  // namespace hi::net
