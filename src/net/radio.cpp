#include "net/radio.hpp"

#include "common/assert.hpp"
#include "net/medium.hpp"

namespace hi::net {

Radio::Radio(des::Kernel& kernel, Medium& medium, int location,
             const RadioParams& params, const obs::RunTrace* trace,
             int net_id, int channel_id)
    : kernel_(kernel), medium_(medium), location_(location), net_id_(net_id),
      channel_id_(channel_id >= 0 ? channel_id : location), params_(params),
      trace_(trace) {
  HI_REQUIRE(params_.bit_rate_bps > 0.0, "bit rate must be positive");
  HI_REQUIRE(params_.tx_mw > 0.0 && params_.rx_mw > 0.0,
             "radio power draws must be positive");
}

double Radio::packet_airtime_s(int bytes) const {
  return 8.0 * bytes / params_.bit_rate_bps;
}

void Radio::transmit(const Packet& p) {
  HI_ASSERT_MSG(!transmitting_, "radio " << location_ << " already transmitting");
  // Half duplex: an in-progress decode is lost.
  if (decoding_) {
    rx_energy_mj_ += (kernel_.now() - decode_start_) * params_.rx_mw;
    const Signal* cur = find_signal(current_rx_id_);
    HI_ASSERT(cur != nullptr);
    if (!cur->foreign) {
      ++stats_.rx_aborted;  // foreign decodes are not a local loss
    }
    decoding_ = false;
    current_rx_id_ = 0;
  }
  transmitting_ = true;
  const double duration = packet_airtime_s(p.bytes);
  tx_energy_mj_ += duration * params_.tx_mw;
  ++stats_.tx_packets;
  Packet out = p;
  out.sender = location_;
  medium_.begin_transmission(*this, out, duration);
  kernel_.schedule_in(duration, [this] { finish_transmit(); });
}

void Radio::finish_transmit() {
  HI_ASSERT(transmitting_);
  transmitting_ = false;
  if (on_tx_done) {
    on_tx_done();
  }
}

Radio::Signal* Radio::find_signal(std::uint64_t tx_id) {
  for (Signal& s : audible_) {
    if (s.tx_id == tx_id) return &s;
  }
  return nullptr;
}

void Radio::signal_start(std::uint64_t tx_id, double rx_dbm, const Packet& p,
                         bool foreign) {
  // The medium only offers signals above sensitivity.
  audible_.push_back(Signal{tx_id, rx_dbm, p, foreign});
  if (foreign) {
    ++crowd_.foreign_heard;
  }
  if (transmitting_) {
    if (!foreign) {
      ++stats_.rx_missed;  // half duplex: cannot hear while talking
    }
    return;
  }
  if (!decoding_) {
    // Start decoding this signal (the radio cannot tell a foreign
    // preamble apart until the packet is decoded); pre-existing
    // interference can already doom it.
    decoding_ = true;
    current_rx_id_ = tx_id;
    current_corrupted_ = false;
    decode_start_ = kernel_.now();
    for (const Signal& sig : audible_) {
      if (sig.tx_id != tx_id && sig.rx_dbm > rx_dbm - params_.capture_db) {
        current_corrupted_ = true;
        break;
      }
    }
    return;
  }
  // Already decoding another signal: the newcomer is interference for the
  // current decode and is itself missed.
  if (!foreign) {
    ++stats_.rx_missed;
  }
  const Signal* cur = find_signal(current_rx_id_);
  HI_ASSERT(cur != nullptr);
  if (rx_dbm > cur->rx_dbm - params_.capture_db) {
    current_corrupted_ = true;
  }
}

void Radio::signal_end(std::uint64_t tx_id) {
  Signal* it = find_signal(tx_id);
  if (it == nullptr) {
    return;  // signal started while we were attached elsewhere — ignore
  }
  const Signal sig = *it;
  // Swap-remove: audible_ order is never observable (see header).
  *it = audible_.back();
  audible_.pop_back();
  if (decoding_ && current_rx_id_ == tx_id) {
    decoding_ = false;
    current_rx_id_ = 0;
    rx_energy_mj_ += (kernel_.now() - decode_start_) * params_.rx_mw;
    if (sig.foreign) {
      // Decoded a packet from another body's network: the net-id check
      // drops it here.  The decode time was still paid (energy above)
      // and the radio was busy for local traffic the whole time.
      if (!current_corrupted_) {
        ++crowd_.foreign_decoded;
      }
      return;
    }
    if (current_corrupted_) {
      ++stats_.rx_corrupted;
      if (trace_ != nullptr) {
        trace_->record(obs::TraceEvent{kernel_.now(),
                                       obs::TraceKind::kRxCollision,
                                       location_, sig.packet.origin,
                                       sig.packet.seq});
      }
    } else {
      ++stats_.rx_ok;
      if (trace_ != nullptr) {
        trace_->record(obs::TraceEvent{kernel_.now(), obs::TraceKind::kRxOk,
                                       location_, sig.packet.origin,
                                       sig.packet.seq,
                                       static_cast<double>(sig.packet.hops)});
      }
      if (on_receive) {
        on_receive(sig.packet);
      }
    }
  }
}

}  // namespace hi::net
