// hi-opt: the per-node protocol stack builder and per-body metrics
// summary shared by the single-body simulator (net::simulate) and the
// multi-body crowd simulator (hi::crowd).
//
// Both callers must produce bit-identical results for the same node set
// — the crowd M=1 contract (DESIGN.md §15) says a one-body crowd run
// reproduces the single-body golden fingerprints exactly — so the node
// construction order, RNG fork labels, and every floating-point
// operation of the metrics block live here, in one place, instead of
// being duplicated and allowed to drift.
#pragma once

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "common/stats.hpp"
#include "common/units.hpp"
#include "model/config.hpp"
#include "net/app.hpp"
#include "net/csma.hpp"
#include "net/latency.hpp"
#include "net/medium.hpp"
#include "net/network.hpp"
#include "net/radio.hpp"
#include "net/routing.hpp"
#include "net/tdma.hpp"

namespace hi::net::detail {

/// One fully wired node.  Construction order matters: radio -> MAC ->
/// routing -> app, each layer installing its callbacks into the one below.
/// `net_id`/`channel_id` default to the single-body convention (network
/// 0, channel id == location); the crowd simulator passes the body index
/// and the global channel id.
struct NodeBundle {
  NodeBundle(des::Kernel& kernel, Medium& medium, int loc,
             const model::NetworkConfig& cfg, const SimParams& params,
             int slot_index, int num_slots, std::vector<int> peers, Rng rng,
             LatencyRecorder* latency, int net_id = 0, int channel_id = -1)
      : location(loc),
        radio(kernel, medium, loc, make_radio_params(cfg, params),
              params.trace, net_id, channel_id) {
    medium.attach(&radio);
    if (cfg.mac.protocol == model::MacProtocol::kCsma) {
      CsmaParams cs = params.csma;
      cs.access_mode = cfg.mac.access_mode;
      mac = std::make_unique<CsmaMac>(kernel, radio, cfg.mac.buffer_packets,
                                      cs, rng.fork("csma"), params.trace);
    } else {
      TdmaParams td;
      td.slot_s = cfg.mac.slot_s;
      td.slot_index = slot_index;
      td.num_slots = num_slots;
      mac = std::make_unique<TdmaMac>(kernel, radio, cfg.mac.buffer_packets,
                                      td, params.trace);
    }
    if (cfg.routing.protocol == model::RoutingProtocol::kStar) {
      routing = std::make_unique<StarRouting>(*mac, loc,
                                              cfg.routing.coordinator);
    } else {
      routing = std::make_unique<MeshRouting>(*mac, loc,
                                              cfg.routing.max_hops);
    }
    app = std::make_unique<AppLayer>(kernel, *routing, cfg.app,
                                     std::move(peers), rng.fork("app"),
                                     latency);
  }

  static RadioParams make_radio_params(const model::NetworkConfig& cfg,
                                       const SimParams& params) {
    RadioParams rp;
    rp.tx_dbm = cfg.radio.tx_dbm;
    rp.tx_mw = cfg.radio.tx_mw;
    rp.sensitivity_dbm = cfg.radio.rx_dbm;
    rp.rx_mw = cfg.radio.rx_mw;
    rp.bit_rate_bps = cfg.radio.bit_rate_bps;
    rp.capture_db = params.capture_db;
    return rp;
  }

  int location;
  Radio radio;
  std::unique_ptr<Mac> mac;
  std::unique_ptr<Routing> routing;
  std::unique_ptr<AppLayer> app;
};

/// Fills `res.nodes` / `res.pdr` / power / lifetime from one network's
/// node set — Eqs. (6), (7) and (4) — and emits the end-of-run per-node
/// trace records.  `nodes` must be exactly the nodes of one network
/// (body): the per-pair PDR loop treats every entry as a traffic peer.
inline void summarize_nodes(
    const std::vector<std::unique_ptr<NodeBundle>>& nodes,
    const model::NetworkConfig& cfg, const SimParams& params,
    SimResult& res) {
  RunningStats pdr_nodes;
  for (const auto& nb : nodes) {
    NodeResult nr;
    nr.location = nb->location;
    nr.app_sent = nb->app->sent();
    nr.radio = nb->radio.stats();
    nr.mac = nb->mac->stats();
    nr.routing = nb->routing->stats();
    nr.power_mw = cfg.app.baseline_mw +
                  (nb->radio.tx_energy_mj() + nb->radio.rx_energy_mj()) /
                      params.duration_s;
    // Eq. (6): average per-pair delivery ratio over the other N-1
    // origins, using per-pair sent counts N(s) i->k.
    double acc = 0.0;
    int terms = 0;
    for (const auto& other : nodes) {
      if (other->location == nb->location) continue;
      const std::uint64_t sent = other->app->sent_to(nb->location);
      if (sent == 0) continue;  // degenerate ultra-short run
      acc += static_cast<double>(nb->app->received_from(other->location)) /
             static_cast<double>(sent);
      ++terms;
    }
    nr.pdr = terms > 0 ? acc / terms : 0.0;
    pdr_nodes.add(nr.pdr);
    if (params.trace != nullptr) {
      // End-of-run per-node summaries: radio state dwell (derived from
      // the metered energy, which charges packet transactions only) and
      // the energy split itself.
      params.trace->record(obs::TraceEvent{
          params.duration_s, obs::TraceKind::kRadioDwell, nb->location, -1,
          static_cast<std::int64_t>(nr.radio.tx_packets),
          nb->radio.tx_energy_mj() / nb->radio.params().tx_mw,
          nb->radio.rx_energy_mj() / nb->radio.params().rx_mw});
      params.trace->record(obs::TraceEvent{
          params.duration_s, obs::TraceKind::kNodeEnergy, nb->location, -1,
          static_cast<std::int64_t>(nr.app_sent), nb->radio.tx_energy_mj(),
          nb->radio.rx_energy_mj()});
    }
    res.nodes.push_back(nr);
  }
  res.pdr = pdr_nodes.mean();  // Eq. (7)

  // Lifetime, Eq. (4): the star coordinator has its own larger energy
  // store (paper Sec. 4.1) and is excluded; in a mesh all nodes count.
  RunningStats powers;
  double worst = 0.0;
  for (const NodeResult& nr : res.nodes) {
    const bool is_coordinator =
        cfg.routing.protocol == model::RoutingProtocol::kStar &&
        nr.location == cfg.routing.coordinator;
    if (is_coordinator) continue;
    powers.add(nr.power_mw);
    worst = std::max(worst, nr.power_mw);
  }
  res.worst_power_mw = worst;
  res.mean_power_mw = powers.mean();
  res.nlt_s = worst > 0.0 ? cfg.battery_j / mw_to_w(worst) : 0.0;
}

}  // namespace hi::net::detail
