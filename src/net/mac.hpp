// hi-opt: MAC (data-link) layer interface and shared queueing base.
//
// The component library offers two protocols (Sec. 2.1.2):
//   * CSMA (TunableMAC-style, non-persistent by default): sense before
//     transmit, back off for a random time when the medium is busy;
//   * TDMA: 1 ms slots assigned round-robin, exclusive medium access.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "des/kernel.hpp"
#include "net/packet.hpp"
#include "net/radio.hpp"
#include "obs/trace.hpp"

namespace hi::net {

/// Fixed-capacity FIFO ring of packets — the MAC buffer.  Capacity is
/// the buffer BMAC from the paper's node model, so the ring is allocated
/// once at construction and enqueue/dequeue never touch the heap
/// (DESIGN.md §11; this replaced a std::deque whose node churn showed up
/// in the simulator hot path).
class PacketQueue {
 public:
  explicit PacketQueue(std::size_t capacity) : ring_(capacity) {}

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool full() const { return size_ == ring_.size(); }
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Oldest packet; queue must be non-empty.
  [[nodiscard]] const Packet& front() const { return ring_[head_]; }

  /// Caller must check full() first — the MAC drop policy lives there.
  void push_back(const Packet& p) {
    ring_[(head_ + size_) % ring_.size()] = p;
    ++size_;
  }

  void pop_front() {
    head_ = (head_ + 1) % ring_.size();
    --size_;
  }

 private:
  std::vector<Packet> ring_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

/// MAC-level counters.
struct MacStats {
  std::uint64_t enqueued = 0;
  std::uint64_t sent = 0;
  std::uint64_t dropped_buffer = 0;  ///< buffer BMAC overflowed
  std::uint64_t backoffs = 0;        ///< CSMA: medium sensed busy
};

/// Abstract MAC.  The routing layer enqueues packets; each concrete MAC
/// decides *when* the radio transmits them.  Received packets flow from
/// the radio straight to `on_receive` (set by the routing layer).
class Mac {
 public:
  /// `trace`, when non-null, receives a `drop_buffer` TraceEvent per
  /// buffer overflow; concrete MACs add their own kinds (CSMA:
  /// `backoff`).  Null = no tracing, zero cost.
  Mac(des::Kernel& kernel, Radio& radio, int buffer_packets,
      const obs::RunTrace* trace = nullptr);
  virtual ~Mac() = default;

  Mac(const Mac&) = delete;
  Mac& operator=(const Mac&) = delete;

  /// Called once at simulation start.
  virtual void start() {}

  /// Accepts a packet from the routing layer; drops it (counted) when the
  /// buffer is full.
  void enqueue(const Packet& p);

  /// Callback for packets decoded by the radio (set by routing).
  std::function<void(const Packet&)> on_receive;

  [[nodiscard]] const MacStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }

 protected:
  /// Hook: new packet available; concrete MAC schedules a transmission.
  virtual void on_queue_not_empty() = 0;

  des::Kernel& kernel_;
  Radio& radio_;
  int buffer_packets_;
  const obs::RunTrace* trace_;
  PacketQueue queue_;
  MacStats stats_;
};

}  // namespace hi::net
