#include "net/latency.hpp"

#include <algorithm>
#include <cmath>

namespace hi::net {

namespace {

/// Nearest-rank quantile of a sorted sample: the ceil(q*n)-th order
/// statistic (1-based), the classical exact definition — no
/// interpolation, so the result is always an observed delay.
double nearest_rank(const std::vector<double>& sorted, double q) {
  const std::size_t n = sorted.size();
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(n)));
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  return sorted[rank - 1];
}

}  // namespace

LatencySummary LatencyRecorder::summary() const {
  LatencySummary s;
  s.collected = true;
  s.samples = delays_.size();
  if (delays_.empty()) {
    return s;
  }
  std::vector<double> sorted = delays_;
  std::sort(sorted.begin(), sorted.end());
  double sum = 0.0;
  for (double d : sorted) sum += d;
  s.mean_s = sum / static_cast<double>(sorted.size());
  s.p50_s = nearest_rank(sorted, 0.50);
  s.p95_s = nearest_rank(sorted, 0.95);
  s.max_s = sorted.back();
  return s;
}

}  // namespace hi::net
