// hi-opt: whole-network simulation — the RunSim of Algorithm 1.
//
// Builds one node per topology location (radio + MAC + routing + app),
// wires them through a shared Medium/channel, runs the event kernel for
// Tsim seconds, and evaluates the paper's performance metrics:
// per-node and network PDR (Eqs. 6-7) and per-node power / network
// lifetime (Eq. 4).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "channel/channel.hpp"
#include "common/stats.hpp"
#include "model/config.hpp"
#include "net/csma.hpp"
#include "net/latency.hpp"
#include "net/medium.hpp"
#include "net/routing.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hi::net {

/// Simulation controls.
struct SimParams {
  double duration_s = 600.0;  ///< Tsim (paper: 600 s)
  double gen_guard_s = 1.0;   ///< stop generating this early so in-flight
                              ///< packets can land before the run ends
  std::uint64_t seed = 1;     ///< randomness root for this run
  /// Root for the channel realization in simulate_averaged.  0 derives it
  /// from `seed`; a nonzero value decouples the fades from the node
  /// randomness, so different configurations evaluated with the same
  /// channel_seed face the *same* fade trajectories — common random
  /// numbers, which sharpens configuration comparisons dramatically at
  /// short Tsim.
  std::uint64_t channel_seed = 0;
  double capture_db = 10.0;   ///< radio capture threshold
  CsmaParams csma{};          ///< CSMA timing (access mode comes from cfg)
  /// Observability (both null by default — the fast path; see DESIGN.md
  /// §8).  `metrics` aggregates the run's per-layer counters (des.*,
  /// net.*) at end of run; atomic, so concurrent hi::exec workers may
  /// share one registry.  `trace` streams per-event records
  /// (packet tx/rx/drop, backoffs, per-node dwell/energy) as they
  /// happen; point it at a RunTrace wrapping a JSON-lines/CSV/memory
  /// sink to watch a single run.
  obs::MetricsRegistry* metrics = nullptr;
  const obs::RunTrace* trace = nullptr;
  /// Collect per-packet end-to-end delays into SimResult::latency (see
  /// net/latency.hpp).  Off by default: the off path adds one branch per
  /// packet, draws no randomness, and leaves the simulated event
  /// sequence untouched, so latency-off results are bit-identical to
  /// builds that predate the metric (pinned by the golden suite).
  bool collect_latency = false;
};

/// Per-node outcome of a run.
struct NodeResult {
  int location = 0;
  double pdr = 0.0;       ///< Eq. (6)
  double power_mw = 0.0;  ///< baseline + measured radio energy / Tsim
  std::uint64_t app_sent = 0;
  RadioStats radio;
  MacStats mac;
  RoutingStats routing;
};

/// Multi-body (crowd) aggregate carried on a SimResult when the result
/// summarizes an hi::crowd run: per-body rows then live in `nodes`
/// (location = body index) and these fields hold the crowd-global
/// coexistence counters.  Inert (present == false, all zero) for every
/// single-body simulation, and serialized only via the store's guarded
/// crowd tail so legacy evaluation records keep their exact bytes.
struct CrowdSummary {
  bool present = false;
  std::int32_t bodies = 0;
  double min_body_pdr = 0.0;     ///< worst body's Eq. (7) PDR
  std::uint64_t cross_offered = 0;
  std::uint64_t cross_below_sensitivity = 0;
  std::uint64_t foreign_heard = 0;
  std::uint64_t foreign_decoded = 0;
};

/// Whole-run outcome.
struct SimResult {
  double pdr = 0.0;              ///< Eq. (7), in [0,1]
  double worst_power_mw = 0.0;   ///< max power among lifetime-relevant nodes
  double mean_power_mw = 0.0;    ///< mean over lifetime-relevant nodes
  double nlt_s = 0.0;            ///< Eq. (4)
  double duration_s = 0.0;
  std::vector<NodeResult> nodes;
  MediumStats medium;
  std::uint64_t events = 0;      ///< kernel events executed
  /// End-to-end delay summary; all-zero with collected == false unless
  /// SimParams::collect_latency was set.
  LatencySummary latency;
  /// Crowd aggregate (hi::crowd runs only; see CrowdSummary).
  CrowdSummary crowd;
};

/// Runs one simulation of `cfg` over the given instantaneous channel.
///
/// Concurrency contract (audited for hi::exec): `cfg` and `params` are
/// read-only, every piece of mutable state (kernel, medium, nodes, RNG
/// streams) is local to the call, and the channel tables in hi::channel
/// are immutable after their thread-safe magic-static initialization —
/// so concurrent simulate() calls are safe provided each caller passes
/// its *own* ChannelModel instance (the model carries per-link fading
/// state and is mutated during the run).
[[nodiscard]] SimResult simulate(const model::NetworkConfig& cfg,
                                 channel::ChannelModel& channel,
                                 const SimParams& params);

/// Produces a fresh channel for a run; receives the run's seed.
/// When an Evaluator is used through hi::exec::BatchEvaluator, the
/// factory is invoked concurrently from worker threads: a replacement
/// factory must tolerate that (be stateless or internally synchronized).
/// The default factory is stateless.
using ChannelFactory =
    std::function<std::unique_ptr<channel::ChannelModel>(std::uint64_t seed)>;

/// The default body channel (synthetic matrix + Gauss-Markov fading).
[[nodiscard]] ChannelFactory default_channel_factory();

/// Runs `runs` independent replications (fresh channel + fresh seeds,
/// derived from params.seed) and averages PDR and power; the returned
/// SimResult carries the averaged metrics and the *first* run's detailed
/// node stats.  `pdr_spread`/`power_spread` (optional) receive the
/// per-run sample statistics for error reporting.  Safe to call
/// concurrently for different design points (see simulate) as long as
/// `make_channel` honours the ChannelFactory concurrency note and the
/// spread accumulators, when given, are per-caller.
[[nodiscard]] SimResult simulate_averaged(
    const model::NetworkConfig& cfg, const SimParams& params, int runs,
    const ChannelFactory& make_channel = default_channel_factory(),
    RunningStats* pdr_spread = nullptr, RunningStats* power_spread = nullptr);

}  // namespace hi::net
