#include "net/routing.hpp"

#include "common/assert.hpp"

namespace hi::net {

Routing::Routing(Mac& mac, int location) : mac_(mac), location_(location) {
  mac_.on_receive = [this](const Packet& p) { handle_receive(p); };
}

std::uint32_t Routing::originate(int bytes, int dest) {
  HI_REQUIRE(dest != location_, "node " << location_
                                        << " addressing itself");
  Packet p;
  p.origin = location_;
  p.seq = next_seq_++;
  p.dest = dest;
  p.sender = location_;
  p.hops = 0;
  p.visited = static_cast<std::uint16_t>(1u << location_);
  p.bytes = bytes;
  ++stats_.originated;
  mac_.enqueue(p);
  return p.seq;
}

void Routing::deliver_if_new(const Packet& p) {
  if (!seen_.insert(p.key())) {
    ++stats_.duplicates;
    return;
  }
  ++stats_.delivered;
  if (deliver) {
    deliver(p.origin, p.seq);
  }
}

StarRouting::StarRouting(Mac& mac, int location, int coordinator)
    : Routing(mac, location), coordinator_(coordinator) {}

void StarRouting::handle_receive(const Packet& p) {
  if (p.origin == location_) {
    return;  // coordinator echo of our own packet
  }
  if (p.dest == location_) {
    deliver_if_new(p);
    return;
  }
  // Transit: only the coordinator forwards, once per unique packet.
  if (location_ == coordinator_ && p.hops == 0 && echoed_.insert(p.key())) {
    Packet echo = p;
    echo.sender = location_;
    echo.hops = 1;
    echo.visited =
        static_cast<std::uint16_t>(echo.visited | (1u << location_));
    ++stats_.relayed;
    mac_.enqueue(echo);
  }
}

MeshRouting::MeshRouting(Mac& mac, int location, int max_hops)
    : Routing(mac, location), max_hops_(max_hops) {
  HI_REQUIRE(max_hops_ >= 1, "mesh needs at least one hop");
}

void MeshRouting::handle_receive(const Packet& p) {
  if (p.origin == location_) {
    return;  // our own packet flooding back
  }
  if (p.dest == location_) {
    deliver_if_new(p);
    return;  // the destination never relays (paper Sec. 2.1.2)
  }
  // Controlled flooding: rebroadcast every received copy while the hop
  // budget lasts and we are not in the copy's history.  (Per copy, not
  // per packet: redundant paths are the mesh's reliability mechanism and
  // exactly what NreTx = N^2-4N+5 bounds.)
  if (p.hops < max_hops_ && ((p.visited >> location_) & 1u) == 0) {
    Packet relay = p;
    relay.sender = location_;
    relay.hops = p.hops + 1;
    relay.visited =
        static_cast<std::uint16_t>(relay.visited | (1u << location_));
    ++stats_.relayed;
    mac_.enqueue(relay);
  }
}

}  // namespace hi::net
