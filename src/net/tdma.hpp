// hi-opt: time-division multiple access MAC.
//
// The frame consists of one `slot_s`-long slot per node, assigned
// round-robin in node order (paper Sec. 4.1: 1 ms slots).  A node
// transmits at most one packet at the start of each of its own slots, so
// access is collision-free and deterministic — at the cost of the global
// synchronized clock the paper remarks on, which the simulator grants
// for free.  Idle slots cost nothing: the MAC only schedules wakeups at
// its next own slot while its queue is non-empty.
#pragma once

#include "net/mac.hpp"

namespace hi::net {

/// TDMA slot assignment for one node.
struct TdmaParams {
  double slot_s = 1e-3;  ///< Tslot
  int slot_index = 0;    ///< this node's slot within the frame
  int num_slots = 1;     ///< frame length in slots (= N)
};

/// See file comment.
class TdmaMac final : public Mac {
 public:
  TdmaMac(des::Kernel& kernel, Radio& radio, int buffer_packets,
          const TdmaParams& params, const obs::RunTrace* trace = nullptr);

 private:
  void on_queue_not_empty() override;
  void slot_begin();

  /// Start time of the next slot owned by this node, strictly after any
  /// already-armed wakeup.
  [[nodiscard]] double next_own_slot_start() const;

  TdmaParams params_;
  bool wakeup_armed_ = false;
};

}  // namespace hi::net
