// hi-opt: the physical-layer packet exchanged by nodes.
//
// Payload content is irrelevant to the DSE metrics; a packet carries the
// bookkeeping the paper's stack needs: originator + application sequence
// number (PDR accounting), the current hop transmitter, the flooding hop
// counter, and the visited-node history that controlled flooding uses to
// stop duplicate circulation (Sec. 2.1.2, Routing Mechanism).
#pragma once

#include <cstdint>

namespace hi::net {

/// A packet in flight.  Copied freely.
struct Packet {
  int origin = 0;            ///< location id of the originating node
  std::uint32_t seq = 0;     ///< per-origin application sequence number
  int dest = 0;              ///< location id of the final destination
  int sender = 0;            ///< location id of the current transmitter
  int hops = 0;              ///< relays so far (0 = original transmission)
  std::uint16_t visited = 0; ///< bitmask of location ids the packet visited
  int bytes = 100;           ///< physical-layer length L

  /// Unique key of the application packet (origin, seq).
  [[nodiscard]] std::uint64_t key() const {
    return (static_cast<std::uint64_t>(origin) << 32) | seq;
  }
};

}  // namespace hi::net
