// hi-opt: the physical-layer packet exchanged by nodes.
//
// Payload content is irrelevant to the DSE metrics; a packet carries the
// bookkeeping the paper's stack needs: originator + application sequence
// number (PDR accounting), the current hop transmitter, the flooding hop
// counter, and the visited-node history that controlled flooding uses to
// stop duplicate circulation (Sec. 2.1.2, Routing Mechanism).
//
// Packets are small PODs copied by value along the hot path (MAC ring
// buffer, radio signal set — DESIGN.md §11), so adding fields has a
// direct per-event cost; keep this struct lean.
#pragma once

#include <cstdint>

namespace hi::net {

/// A packet in flight.  Copied freely; no ownership, no heap.
struct Packet {
  int origin = 0;            ///< location id of the originating node
  std::uint32_t seq = 0;     ///< per-origin application sequence number
  int dest = 0;              ///< location id of the final destination
  int sender = 0;            ///< location id of the current transmitter
  int hops = 0;              ///< relays so far (0 = original transmission)
  /// Bitmask of location ids this packet has visited — the controlled-
  /// flooding history.  16 bits bound the stack to 16 locations; the
  /// paper's space has 10 (`channel::kNumLocations`).
  std::uint16_t visited = 0;
  int bytes = 100;           ///< physical-layer length L (Eq. 3 airtime)

  /// Unique key of the application packet (origin, seq) — stable across
  /// relays, which is what PDR accounting and the mesh duplicate filter
  /// (`FlatSet64` in routing.hpp) key on.
  [[nodiscard]] std::uint64_t key() const {
    return (static_cast<std::uint64_t>(origin) << 32) | seq;
  }
};

}  // namespace hi::net
