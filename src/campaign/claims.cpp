#include "campaign/claims.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <utility>

#include "common/assert.hpp"

namespace hi::campaign {

namespace {

std::uint64_t now_realtime_ms() {
  timespec ts{};
  ::clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000u +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1000000u;
}

}  // namespace

const char* to_string(ClaimOutcome o) {
  switch (o) {
    case ClaimOutcome::kAcquired: return "acquired";
    case ClaimOutcome::kStolen: return "stolen";
    case ClaimOutcome::kRecovered: return "recovered";
    case ClaimOutcome::kHeld: return "held";
    case ClaimOutcome::kDone: return "done";
  }
  return "?";
}

ClaimBoard::ClaimBoard(std::string dir, std::uint64_t run_id, int slot,
                       int lease_ms, obs::MetricsRegistry* metrics)
    : dir_(std::move(dir)),
      run_id_(run_id),
      slot_(slot),
      lease_ms_(lease_ms),
      metrics_(metrics) {
  HI_REQUIRE(lease_ms_ > 0, "claim lease must be positive");
  if (::mkdir(dir_.c_str(), 0755) != 0) {
    HI_REQUIRE(errno == EEXIST, "cannot create claims directory '"
                                    << dir_ << "': " << std::strerror(errno));
  }
}

ClaimBoard::~ClaimBoard() {
  std::lock_guard<std::mutex> lock(held_mu_);
  for (const auto& [token, fd] : held_) {
    ::close(fd);
  }
}

std::string ClaimBoard::path_of(const std::string& token, int gen) const {
  return dir_ + "/" + token + ".g" + std::to_string(gen);
}

int ClaimBoard::highest_gen(const std::string& token) const {
  // Generations are contiguous from 0 (gen g+1 is only ever created by
  // a worker that saw gen g), so a linear probe terminates fast.
  int gen = -1;
  struct ::stat st{};
  while (::stat(path_of(token, gen + 1).c_str(), &st) == 0) {
    ++gen;
  }
  return gen;
}

bool ClaimBoard::create_claim(const std::string& token, int gen) {
  const std::string path = path_of(token, gen);
  const int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_RDWR, 0644);
  if (fd < 0) {
    HI_REQUIRE(errno == EEXIST, "cannot create claim '"
                                    << path << "': " << std::strerror(errno));
    return false;  // lost the race
  }
  char buf[128];
  const int n =
      std::snprintf(buf, sizeof buf, "%d %d %" PRIu64 " %d\n",
                    static_cast<int>(::getpid()), slot_, run_id_, gen);
  HI_REQUIRE(::write(fd, buf, static_cast<std::size_t>(n)) == n,
             "claim write failed: " << std::strerror(errno));
  std::lock_guard<std::mutex> lock(held_mu_);
  held_.emplace(token, fd);
  return true;
}

ClaimOutcome ClaimBoard::try_claim(const std::string& token,
                                   bool steal_allowed) {
  {
    std::lock_guard<std::mutex> lock(held_mu_);
    HI_REQUIRE(held_.find(token) == held_.end(),
               "double claim of row '" << token << "'");
  }
  if (is_done(token)) {
    return ClaimOutcome::kDone;
  }
  int gen = highest_gen(token);
  if (gen < 0) {
    if (create_claim(token, 0)) {
      ++tally_.rows_claimed;
      if (metrics_ != nullptr) {
        metrics_->counter("campaign.rows_claimed").add(1);
      }
      return ClaimOutcome::kAcquired;
    }
    gen = highest_gen(token);
    if (gen < 0) {
      return ClaimOutcome::kHeld;  // racer claimed and vanished; retry later
    }
  }
  const std::optional<ClaimInfo> info = read_claim(token);
  if (!info) {
    // Claim file exists but is unreadable/mid-write: give the creator
    // the benefit of the doubt for one lease.
    return ClaimOutcome::kHeld;
  }
  const bool pid_dead =
      ::kill(static_cast<pid_t>(info->pid), 0) != 0 && errno == ESRCH;
  const bool expired =
      info->age_ms > static_cast<std::uint64_t>(lease_ms_);
  if (!pid_dead && !expired) {
    return ClaimOutcome::kHeld;  // live, renewing owner
  }
  if (!steal_allowed) {
    return ClaimOutcome::kHeld;
  }
  if (expired && !pid_dead) {
    ++tally_.lease_expiries;
    if (metrics_ != nullptr) {
      metrics_->counter("campaign.lease_expiries").add(1);
    }
  }
  if (!create_claim(token, info->gen + 1)) {
    return ClaimOutcome::kHeld;  // another stealer won the O_EXCL race
  }
  ++tally_.rows_claimed;
  const bool recovery = info->run_id != run_id_;
  if (recovery) {
    ++tally_.recoveries;
  } else {
    ++tally_.steals;
  }
  if (metrics_ != nullptr) {
    metrics_->counter("campaign.rows_claimed").add(1);
    metrics_->counter(recovery ? "campaign.recoveries" : "campaign.steals")
        .add(1);
  }
  return recovery ? ClaimOutcome::kRecovered : ClaimOutcome::kStolen;
}

void ClaimBoard::renew_all() {
  std::lock_guard<std::mutex> lock(held_mu_);
  for (const auto& [token, fd] : held_) {
    // Renewal is the mtime, not a rewrite — readers never see a torn
    // lease, and a SIGKILL between renewals simply lets it expire.
    HI_REQUIRE(::futimens(fd, nullptr) == 0,
               "lease renewal failed: " << std::strerror(errno));
  }
}

void ClaimBoard::mark_done(const std::string& token) {
  const std::string path = dir_ + "/" + token + ".done";
  const int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
  if (fd < 0) {
    // A co-finisher of a stolen-but-both-alive row got here first.
    HI_REQUIRE(errno == EEXIST, "cannot create done marker '"
                                    << path << "': " << std::strerror(errno));
    return;
  }
  char buf[64];
  const int n = std::snprintf(buf, sizeof buf, "%d %d\n", slot_,
                              static_cast<int>(::getpid()));
  HI_REQUIRE(::write(fd, buf, static_cast<std::size_t>(n)) == n,
             "done marker write failed: " << std::strerror(errno));
  ::close(fd);
}

bool ClaimBoard::is_done(const std::string& token) const {
  return ::access((dir_ + "/" + token + ".done").c_str(), F_OK) == 0;
}

void ClaimBoard::release(const std::string& token) {
  std::lock_guard<std::mutex> lock(held_mu_);
  const auto it = held_.find(token);
  HI_REQUIRE(it != held_.end(), "release of unheld row '" << token << "'");
  ::close(it->second);
  held_.erase(it);
}

std::optional<ClaimInfo> ClaimBoard::read_claim(
    const std::string& token) const {
  const int gen = highest_gen(token);
  if (gen < 0) {
    return std::nullopt;
  }
  const std::string path = path_of(token, gen);
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return std::nullopt;
  }
  char buf[128] = {};
  const ssize_t n = ::read(fd, buf, sizeof buf - 1);
  struct ::stat st{};
  const bool have_stat = ::fstat(fd, &st) == 0;
  ::close(fd);
  ClaimInfo info;
  if (n <= 0 || !have_stat ||
      std::sscanf(buf, "%d %d %" SCNu64 " %d", &info.pid, &info.slot,
                  &info.run_id, &info.gen) != 4) {
    return std::nullopt;
  }
  const std::uint64_t mtime_ms =
      static_cast<std::uint64_t>(st.st_mtim.tv_sec) * 1000u +
      static_cast<std::uint64_t>(st.st_mtim.tv_nsec) / 1000000u;
  const std::uint64_t now = now_realtime_ms();
  info.age_ms = now > mtime_ms ? now - mtime_ms : 0;
  return info;
}

}  // namespace hi::campaign
