// hi-opt: hi::campaign — the campaign plan.
//
// A campaign is a grid of (scenario × PDRmin) cells swept by one
// explorer against one durable evaluation store (or, in fleet mode, a
// sharded family of stores — see runner.hpp).  CampaignPlan is the
// fully-resolved, immutable description of that grid: every scenario
// row is loaded/generated up front, every fingerprint and CellKey is
// precomputed, and the claim-file tokens the work-stealing dispatcher
// uses are derived from row index + scenario fingerprint, so every
// process in a fleet — and every later --resume — derives the exact
// same plan from the exact same flags.
//
// The plan deliberately carries no I/O handles and no metrics: it is a
// value the CLI builds once and hands to run_single()/run_fleet(), and
// that tests build directly without spawning a process.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dse/evaluator.hpp"
#include "dse/explorer.hpp"
#include "model/design_space.hpp"
#include "store/serialize.hpp"
#include "store/store.hpp"

namespace hi::campaign {

/// Everything that determines the grid.  Field-for-field this mirrors
/// the hi_campaign CLI's campaign flags; see PlanSpec defaults for the
/// CLI defaults.
struct PlanSpec {
  std::vector<std::string> scenario_files;  ///< scenario JSON paths
  std::vector<std::uint64_t> gen_seeds;     ///< hi::check generated rows
  std::vector<double> pdr_grid{0.5, 0.7, 0.9};
  dse::ExplorerKind explorer = dse::ExplorerKind::kAlgorithm1;
  int budget = -1;   ///< explorer outer-iteration budget (-1 = default)
  int threads = 0;   ///< worker threads per cell (0 = serial)
  double tsim_s = 600.0;  ///< Tsim for JSON-file scenarios
  int runs = 3;           ///< replications per design point
  std::uint64_t seed = 1; ///< experiment seed root
  /// Store channel-tag the settings fingerprint is computed under; must
  /// match the StoreOptions the runner opens stores with.
  std::string channel_tag = "default";
  /// Robust-evaluation knobs for every cell.  The default (inactive)
  /// keeps plans, fingerprints, and explorer behavior bit-identical to
  /// pre-robust campaigns; an active value flows into the cell options
  /// fingerprint, so robust and nominal results never share a CellKey.
  dse::RobustnessOptions robust{};
};

/// One scenario row of the grid, with its identity precomputed.
struct PlanRow {
  std::string name;  ///< report label (file path, "gen-N", "paper-4.1")
  model::Scenario scenario;
  dse::EvaluatorSettings settings;
  store::Digest scenario_fp;  ///< scenario_fingerprint(scenario)
  store::Digest settings_fp;  ///< settings_fingerprint(settings, tag)
  /// One CellKey per pdr_grid entry, in grid order.  These are the
  /// checkpoint keys run_single() writes and the fabric audits against.
  std::vector<store::CellKey> cells;
};

/// See file comment.
class CampaignPlan {
 public:
  /// Resolves `spec` into a plan: loads every scenario file, generates
  /// every gen-seed row, and falls back to the paper's Sec. 4.1
  /// scenario when the spec names no rows (the CLI's behavior).
  /// Returns nullopt with `*error` set on an unreadable/invalid file.
  [[nodiscard]] static std::optional<CampaignPlan> build(const PlanSpec& spec,
                                                         std::string* error);

  [[nodiscard]] const PlanSpec& spec() const { return spec_; }
  [[nodiscard]] const std::vector<PlanRow>& rows() const { return rows_; }
  [[nodiscard]] std::size_t cell_count() const {
    return rows_.size() * spec_.pdr_grid.size();
  }

  /// The canonical ExplorationOptions for one cell (metrics/progress
  /// left unset — the runner wires those).  Fingerprint-identical to
  /// what options_fingerprint() was computed over.
  [[nodiscard]] dse::ExplorationOptions cell_options(double pdr_min) const;

  /// The explorer the whole grid runs under.
  [[nodiscard]] const dse::Explorer& explorer() const { return explorer_; }

  /// Stable claim-file token for a row: "row-<index>-<fp8>", where fp8
  /// is the first 8 hex digits of the scenario fingerprint.  Index keeps
  /// tokens unique when one scenario appears twice; the fingerprint
  /// fragment makes a stale claims/ directory from a *different* grid
  /// collide loudly obvious in a directory listing rather than silently
  /// pairing up by index.
  [[nodiscard]] std::string row_token(std::size_t row) const;

 private:
  PlanSpec spec_;
  std::vector<PlanRow> rows_;
  dse::Explorer explorer_ = dse::Explorer::algorithm1();
};

}  // namespace hi::campaign
