#include "campaign/plan.hpp"

#include <fstream>
#include <sstream>
#include <utility>

#include "check/scenario_gen.hpp"
#include "common/assert.hpp"

namespace hi::campaign {

namespace {

dse::Explorer explorer_for(dse::ExplorerKind kind) {
  switch (kind) {
    case dse::ExplorerKind::kExhaustive:
      return dse::Explorer::exhaustive();
    case dse::ExplorerKind::kAnnealing:
      return dse::Explorer::annealing();
    case dse::ExplorerKind::kFastIlp:
      return dse::Explorer::fast_ilp();
    case dse::ExplorerKind::kAlgorithm1:
      break;
  }
  return dse::Explorer::algorithm1();
}

}  // namespace

std::optional<CampaignPlan> CampaignPlan::build(const PlanSpec& spec,
                                                std::string* error) {
  CampaignPlan plan;
  plan.spec_ = spec;
  plan.explorer_ = explorer_for(spec.explorer);

  dse::EvaluatorSettings base;
  base.sim.duration_s = spec.tsim_s;
  base.sim.seed = spec.seed;
  base.runs = spec.runs;

  for (const std::string& file : spec.scenario_files) {
    std::ifstream in(file);
    if (!in) {
      if (error != nullptr) {
        *error = "cannot open scenario file '" + file + "'";
      }
      return std::nullopt;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    std::string err;
    const auto sc = store::scenario_from_json(buf.str(), &err);
    if (!sc) {
      if (error != nullptr) {
        *error = file + ": " + err;
      }
      return std::nullopt;
    }
    plan.rows_.push_back({file, *sc, base, {}, {}, {}});
  }
  for (const std::uint64_t seed : spec.gen_seeds) {
    check::ScenarioSpec gen = check::make_scenario(seed);
    plan.rows_.push_back({"gen-" + std::to_string(seed), gen.scenario,
                          std::move(gen.settings), {}, {}, {}});
  }
  if (plan.rows_.empty()) {
    plan.rows_.push_back({"paper-4.1", model::Scenario{}, base, {}, {}, {}});
  }

  for (PlanRow& row : plan.rows_) {
    row.scenario_fp = store::scenario_fingerprint(row.scenario);
    row.settings_fp =
        store::settings_fingerprint(row.settings, spec.channel_tag);
    row.cells.reserve(spec.pdr_grid.size());
    for (const double pdr_min : spec.pdr_grid) {
      const dse::ExplorationOptions run_opt = plan.cell_options(pdr_min);
      row.cells.push_back(store::CellKey{
          row.scenario_fp, row.settings_fp,
          store::options_fingerprint(run_opt, spec.explorer), pdr_min});
    }
  }
  return plan;
}

dse::ExplorationOptions CampaignPlan::cell_options(double pdr_min) const {
  dse::ExplorationOptions run_opt;
  run_opt.pdr_min = pdr_min;
  run_opt.budget = spec_.budget;
  run_opt.threads = spec_.threads;
  run_opt.robust = spec_.robust;
  return run_opt;
}

std::string CampaignPlan::row_token(std::size_t row) const {
  HI_REQUIRE(row < rows_.size(),
             "row_token(" << row << ") out of range for a " << rows_.size()
                          << "-row plan");
  return "row-" + std::to_string(row) + "-" +
         rows_[row].scenario_fp.hex().substr(0, 8);
}

}  // namespace hi::campaign
