// hi-opt: hi::campaign — report types for single runs and fleets.
//
// CampaignReport is the classic single-process report (one row per
// cell, exactly the text/JSON hi_campaign has always printed — tests
// parse those strings, so the format is a compatibility surface).
// WorkerReport is the per-worker summary a fabric worker streams to
// the parent over its pipe (binary, ByteWriter-framed — a SIGKILLed
// worker simply leaves the pipe empty and is reported as such), and
// FleetReport aggregates workers + the shard merge into the fleet-level
// JSON the parent prints and persists as `<shard-dir>/fleet.json`.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "store/store.hpp"

namespace hi::campaign {

/// One row of the single-process report.
struct CellReport {
  std::string scenario;
  double pdr_min = 0.0;
  bool skipped = false;  ///< served from a checkpoint, not re-run
  store::CellResult result;
  std::uint64_t store_hits = 0;  ///< store-served points (0 when skipped)
};

/// The single-process campaign outcome; print() preserves the legacy
/// hi_campaign output byte-for-byte.
struct CampaignReport {
  std::string store_path;
  store::RecoveryStats recovery;
  std::vector<CellReport> cells;
  std::uint64_t stored_evals = 0;  ///< store.eval_count() at the end
  std::uint64_t stored_cells = 0;  ///< store.cell_count() at the end

  [[nodiscard]] std::uint64_t total_fresh_simulations() const;
  [[nodiscard]] std::uint64_t total_store_hits() const;
  [[nodiscard]] std::uint64_t skipped_cells() const;

  void print(std::ostream& os, bool json) const;
};

/// One fabric worker's summary (pipe-transported; see the file comment).
struct WorkerReport {
  std::int32_t slot = -1;
  std::int32_t pid = 0;
  bool reported = false;      ///< a complete pipe report arrived
  std::int32_t exit_code = -1;   ///< WEXITSTATUS when exited, else -1
  std::int32_t term_signal = 0;  ///< WTERMSIG when signaled, else 0
  std::uint64_t rows_claimed = 0;
  std::uint64_t cells_done = 0;     ///< cells this worker simulated
  std::uint64_t cells_skipped = 0;  ///< cells served from checkpoints
  std::uint64_t fresh_simulations = 0;
  std::uint64_t store_hits = 0;
  std::uint64_t steals = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t lease_expiries = 0;
  double wall_s = 0.0;

  /// Binary pipe codec (little-endian, ByteWriter framing).
  [[nodiscard]] std::string encode() const;
  [[nodiscard]] static bool decode(std::string_view bytes, WorkerReport* out);
};

/// The fleet-level outcome run_fleet() returns, prints, and persists.
struct FleetReport {
  std::string shard_dir;
  std::string merged_path;
  std::uint64_t run_id = 0;
  std::int32_t workers = 0;
  bool complete = false;  ///< every planned cell is checkpointed+merged
  std::uint64_t planned_cells = 0;
  std::uint64_t checkpointed_cells = 0;
  double wall_s = 0.0;
  std::vector<WorkerReport> worker_reports;
  store::EvalStore::MergeStats merge;

  /// Fleet totals (Σ over reported workers).
  [[nodiscard]] WorkerReport totals() const;
  /// Completed cells per wall-second, fleet-wide.
  [[nodiscard]] double throughput_cells_per_s() const;

  [[nodiscard]] std::string to_json() const;
  void print(std::ostream& os, bool json) const;
};

/// Minimal JSON string escaping shared by the report printers.
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace hi::campaign
