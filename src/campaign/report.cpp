#include "campaign/report.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "store/serialize.hpp"

namespace hi::campaign {

namespace {

constexpr std::uint8_t kWorkerReportVersion = 1;

const char* bool_str(bool v) { return v ? "true" : "false"; }

/// JSON has no literal for inf/nan (an infeasible cell's best power is
/// +inf) — emit null so the document stays parseable.
std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream oss;
  oss << v;
  return oss.str();
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::uint64_t CampaignReport::total_fresh_simulations() const {
  std::uint64_t n = 0;
  for (const CellReport& c : cells) {
    n += c.skipped ? 0 : c.result.simulations;
  }
  return n;
}

std::uint64_t CampaignReport::total_store_hits() const {
  std::uint64_t n = 0;
  for (const CellReport& c : cells) {
    n += c.store_hits;
  }
  return n;
}

std::uint64_t CampaignReport::skipped_cells() const {
  std::uint64_t n = 0;
  for (const CellReport& c : cells) {
    n += c.skipped ? 1 : 0;
  }
  return n;
}

void CampaignReport::print(std::ostream& os, bool json) const {
  // Compatibility surface: this is the exact report hi_campaign printed
  // before the fabric existed; tests parse these strings.
  if (json) {
    os << "{\n  \"store\": \"" << json_escape(store_path) << "\",\n"
       << "  \"recovery\": {\"records\": " << recovery.records
       << ", \"corrupt_dropped\": " << recovery.corrupt_dropped
       << ", \"tail_truncated\": " << bool_str(recovery.tail_truncated)
       << "},\n"
       << "  \"cells\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const CellReport& c = cells[i];
      os << "    {\"scenario\": \"" << json_escape(c.scenario)
         << "\", \"pdr_min\": " << c.pdr_min
         << ", \"skipped\": " << bool_str(c.skipped)
         << ", \"feasible\": " << bool_str(c.result.feasible)
         << ", \"best\": \"" << json_escape(c.result.best.label())
         << "\", \"best_power_mw\": " << json_number(c.result.best_power_mw)
         << ", \"best_pdr\": " << json_number(c.result.best_pdr)
         << ", \"simulations\": " << c.result.simulations
         << ", \"store_hits\": " << c.store_hits << "}"
         << (i + 1 < cells.size() ? "," : "") << "\n";
    }
    os << "  ],\n"
       << "  \"totals\": {\"cells\": " << cells.size()
       << ", \"skipped\": " << skipped_cells()
       << ", \"fresh_simulations\": " << total_fresh_simulations()
       << ", \"store_hits\": " << total_store_hits()
       << ", \"stored_evals\": " << stored_evals
       << ", \"stored_cells\": " << stored_cells << "}\n}\n";
    return;
  }
  for (const CellReport& c : cells) {
    os << c.scenario << " @ PDRmin=" << c.pdr_min << ": ";
    if (c.skipped) {
      os << "checkpointed (skipped), ";
    }
    if (c.result.feasible) {
      os << c.result.best.label() << "  P=" << c.result.best_power_mw
         << " mW  PDR=" << c.result.best_pdr;
    } else {
      os << "infeasible";
    }
    os << "  [sims=" << c.result.simulations
       << " store_hits=" << c.store_hits << "]\n";
  }
  os << "campaign: " << cells.size() << " cells (" << skipped_cells()
     << " resumed), " << total_fresh_simulations() << " fresh simulations, "
     << total_store_hits() << " store hits; store holds " << stored_evals
     << " evaluations / " << stored_cells << " cell checkpoints\n";
}

std::string WorkerReport::encode() const {
  store::ByteWriter w;
  w.put_u8(kWorkerReportVersion);
  w.put_i32(slot);
  w.put_i32(pid);
  w.put_u64(rows_claimed);
  w.put_u64(cells_done);
  w.put_u64(cells_skipped);
  w.put_u64(fresh_simulations);
  w.put_u64(store_hits);
  w.put_u64(steals);
  w.put_u64(recoveries);
  w.put_u64(lease_expiries);
  w.put_f64(wall_s);
  return w.take();
}

bool WorkerReport::decode(std::string_view bytes, WorkerReport* out) {
  store::ByteReader r(bytes);
  if (r.get_u8() != kWorkerReportVersion) {
    return false;
  }
  WorkerReport rep;
  rep.slot = r.get_i32();
  rep.pid = r.get_i32();
  rep.rows_claimed = r.get_u64();
  rep.cells_done = r.get_u64();
  rep.cells_skipped = r.get_u64();
  rep.fresh_simulations = r.get_u64();
  rep.store_hits = r.get_u64();
  rep.steals = r.get_u64();
  rep.recoveries = r.get_u64();
  rep.lease_expiries = r.get_u64();
  rep.wall_s = r.get_f64();
  if (!r.at_end()) {
    return false;
  }
  rep.reported = true;
  *out = rep;
  return true;
}

WorkerReport FleetReport::totals() const {
  WorkerReport t;
  t.reported = true;
  for (const WorkerReport& w : worker_reports) {
    if (!w.reported) {
      continue;  // a killed worker's numbers are simply absent
    }
    t.rows_claimed += w.rows_claimed;
    t.cells_done += w.cells_done;
    t.cells_skipped += w.cells_skipped;
    t.fresh_simulations += w.fresh_simulations;
    t.store_hits += w.store_hits;
    t.steals += w.steals;
    t.recoveries += w.recoveries;
    t.lease_expiries += w.lease_expiries;
  }
  return t;
}

double FleetReport::throughput_cells_per_s() const {
  if (wall_s <= 0.0) {
    return 0.0;
  }
  return static_cast<double>(totals().cells_done) / wall_s;
}

std::string FleetReport::to_json() const {
  const WorkerReport t = totals();
  std::ostringstream os;
  os << "{\n  \"shard_dir\": \"" << json_escape(shard_dir) << "\",\n"
     << "  \"merged_store\": \"" << json_escape(merged_path) << "\",\n"
     << "  \"run_id\": " << run_id << ",\n"
     << "  \"workers\": " << workers << ",\n"
     << "  \"complete\": " << bool_str(complete) << ",\n"
     << "  \"planned_cells\": " << planned_cells << ",\n"
     << "  \"checkpointed_cells\": " << checkpointed_cells << ",\n"
     << "  \"wall_s\": " << wall_s << ",\n"
     << "  \"throughput_cells_per_s\": " << throughput_cells_per_s() << ",\n"
     << "  \"worker_reports\": [\n";
  for (std::size_t i = 0; i < worker_reports.size(); ++i) {
    const WorkerReport& w = worker_reports[i];
    os << "    {\"slot\": " << w.slot << ", \"pid\": " << w.pid
       << ", \"reported\": " << bool_str(w.reported)
       << ", \"exit_code\": " << w.exit_code
       << ", \"term_signal\": " << w.term_signal
       << ", \"rows_claimed\": " << w.rows_claimed
       << ", \"cells_done\": " << w.cells_done
       << ", \"cells_skipped\": " << w.cells_skipped
       << ", \"fresh_simulations\": " << w.fresh_simulations
       << ", \"store_hits\": " << w.store_hits
       << ", \"steals\": " << w.steals
       << ", \"recoveries\": " << w.recoveries
       << ", \"lease_expiries\": " << w.lease_expiries
       << ", \"wall_s\": " << w.wall_s << "}"
       << (i + 1 < worker_reports.size() ? "," : "") << "\n";
  }
  os << "  ],\n"
     << "  \"merge\": {\"evals\": " << merge.evals
     << ", \"cells\": " << merge.cells << ", \"frames\": " << merge.frames
     << ", \"duplicate_evals\": " << merge.duplicate_evals
     << ", \"superseded_cells\": " << merge.superseded_cells
     << ", \"clean\": " << bool_str(merge.clean()) << ", \"shards\": [\n";
  for (std::size_t i = 0; i < merge.shards.size(); ++i) {
    const store::EvalStore::ShardMergeStats& s = merge.shards[i];
    os << "    {\"path\": \"" << json_escape(s.path)
       << "\", \"present\": " << bool_str(s.present)
       << ", \"records\": " << s.records
       << ", \"evals_added\": " << s.evals_added
       << ", \"cells_added\": " << s.cells_added
       << ", \"duplicate_evals\": " << s.duplicate_evals
       << ", \"superseded_cells\": " << s.superseded_cells
       << ", \"corrupt_dropped\": " << s.corrupt_dropped
       << ", \"tail_truncated\": " << bool_str(s.tail_truncated)
       << ", \"desynced\": " << bool_str(s.desynced) << "}"
       << (i + 1 < merge.shards.size() ? "," : "") << "\n";
  }
  os << "  ]},\n"
     << "  \"totals\": {\"rows_claimed\": " << t.rows_claimed
     << ", \"cells_done\": " << t.cells_done
     << ", \"cells_skipped\": " << t.cells_skipped
     << ", \"fresh_simulations\": " << t.fresh_simulations
     << ", \"store_hits\": " << t.store_hits << ", \"steals\": " << t.steals
     << ", \"recoveries\": " << t.recoveries
     << ", \"lease_expiries\": " << t.lease_expiries << "}\n}\n";
  return os.str();
}

void FleetReport::print(std::ostream& os, bool json) const {
  if (json) {
    os << to_json();
    return;
  }
  const WorkerReport t = totals();
  for (const WorkerReport& w : worker_reports) {
    os << "worker " << w.slot << " (pid " << w.pid << "): ";
    if (!w.reported) {
      os << "no report";
      if (w.term_signal != 0) {
        os << " (killed by signal " << w.term_signal << ")";
      }
      os << "\n";
      continue;
    }
    os << w.rows_claimed << " rows, " << w.cells_done << " cells ("
       << w.cells_skipped << " skipped), " << w.fresh_simulations
       << " fresh sims, " << w.store_hits << " store hits";
    if (w.steals > 0 || w.recoveries > 0) {
      os << ", " << w.steals << " steals, " << w.recoveries << " recoveries";
    }
    os << "\n";
  }
  os << "fleet: " << workers << " workers, " << checkpointed_cells << "/"
     << planned_cells << " cells "
     << (complete ? "complete" : "INCOMPLETE (re-run with --resume)") << ", "
     << t.fresh_simulations << " fresh simulations, " << t.steals
     << " steals, " << t.recoveries << " recoveries; merged "
     << merge.evals << " evaluations / " << merge.cells
     << " checkpoints into " << merged_path
     << (merge.clean() ? "" : " [shard damage dropped; see fleet.json]")
     << "\n";
}

}  // namespace hi::campaign
