// hi-opt: hi::campaign — the campaign runner (single-process and fleet).
//
// run_single() is the classic resumable campaign: one process, one
// EvalStore, every cell warm-started from it and checkpointed into it.
// The hi_campaign CLI is a thin argv shim over this function.
//
// run_fleet() is the sharded multi-process fabric.  The parent forks
// `workers` worker processes (fork before any threads exist — workers
// spawn their own lease-renewal thread after the fork).  Layout of the
// shared campaign directory:
//
//   <dir>/shard-<slot>.store    each worker's private append-only store
//   <dir>/claims/               lease files (claims.hpp's protocol)
//   <dir>/worker-<slot>.pid     worker pid, written by the parent right
//                               after fork (tests kill workers via it)
//   <dir>/merged.store          the canonical fold of every shard,
//                               rewritten by the parent after each run
//   <dir>/fleet.json            the FleetReport of the last run
//
// Dispatch: workers claim whole scenario ROWS (all PDRmin cells of one
// scenario), not single cells — the cells of a row share one
// warm-started evaluator, so running them in sequence on one worker is
// what keeps the fleet's total fresh-simulation count equal to a cold
// single-process run.  Before running a claimed row, a worker rescans
// every *other* shard read-only: evaluations are preloaded (a stolen
// row reuses everything its dead owner paid for) and checkpointed
// cells are skipped, so a steal/recovery re-simulates nothing that is
// already durable anywhere in the fabric.  Each completed cell is
// checkpointed into the worker's own shard immediately.
//
// Completion: a worker exits when every row is done; if stealing is
// disabled (--no-steal) it exits as soon as nothing more is claimable.
// The parent reaps workers promptly (so pid-death staleness detection
// works), collects their pipe reports, folds all shards into
// merged.store, audits the plan against the merged store, and writes
// fleet.json.  An incomplete fleet (a killed worker under --no-steal)
// is re-entrant: the same command with --resume recovers the dead
// worker's claims and finishes from the checkpoints.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "campaign/plan.hpp"
#include "campaign/report.hpp"
#include "obs/metrics.hpp"
#include "store/record_log.hpp"

namespace hi::campaign {

/// Everything beyond the plan a run needs.  store_path drives
/// run_single(); shard_dir/workers/lease/steal drive run_fleet().
struct RunConfig {
  std::string store_path;  ///< single-process store (run_single)
  std::string shard_dir;   ///< fleet campaign directory (run_fleet)
  int workers = 0;         ///< fleet worker count (run_fleet; >= 1)
  int lease_ms = 2000;     ///< claim lease; silent owners expire after it
  bool steal = true;       ///< take over stale claims (--no-steal = false)
  store::FsyncPolicy fsync = store::FsyncPolicy::kCheckpoint;
  bool resume = false;     ///< run_single: skip checkpointed cells
  int cell_delay_ms = 0;   ///< test hook: widen the inter-cell window
  /// Unclean-recovery warnings are printed here (null = silent); the
  /// CLI passes stdout in text mode.
  std::ostream* recovery_warnings = nullptr;
  // --- fault-injection hooks (tests/bench only) ----------------------
  int kill_slot = -1;  ///< worker slot that SIGKILLs itself, -1 = none
  std::uint64_t kill_after_cells = 0;  ///< ...after completing this many
};

/// Runs the whole grid in-process against one store.  `metrics` is
/// nullable and receives dse.* / store.* counters from every cell.
[[nodiscard]] CampaignReport run_single(const CampaignPlan& plan,
                                        const RunConfig& cfg,
                                        obs::MetricsRegistry* metrics);

/// Runs the grid as a forked worker fleet over `cfg.shard_dir`; see the
/// file comment.  Returns after merge + fleet.json.  `metrics` is
/// nullable and receives the parent-side campaign.merge_frames counter
/// (workers record into their own per-process registries and report
/// through pipes).  FleetReport::complete says whether every planned
/// cell is checkpointed in the merged store.
[[nodiscard]] FleetReport run_fleet(const CampaignPlan& plan,
                                    const RunConfig& cfg,
                                    obs::MetricsRegistry* metrics);

// --- campaign-directory layout helpers (shared with tests/bench) -------
[[nodiscard]] std::string shard_path(const std::string& dir, int slot);
[[nodiscard]] std::string merged_path(const std::string& dir);
[[nodiscard]] std::string claims_dir(const std::string& dir);
[[nodiscard]] std::string worker_pid_path(const std::string& dir, int slot);
[[nodiscard]] std::string fleet_json_path(const std::string& dir);
/// Existing shard stores under `dir`, sorted by slot-bearing name.
[[nodiscard]] std::vector<std::string> list_shards(const std::string& dir);

}  // namespace hi::campaign
