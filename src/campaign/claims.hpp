// hi-opt: hi::campaign — lease-based row claims for the fabric.
//
// The work-stealing dispatcher has no server process: coordination is
// files in `<shard-dir>/claims/`, and every atomic step is an O_EXCL
// create.  Per row token (plan.hpp::row_token) there are two kinds of
// file:
//
//   <token>.g<gen>   a claim at steal-generation `gen`.  Created with
//                    O_CREAT|O_EXCL — exactly one worker wins each
//                    generation.  The *highest* generation present is
//                    the current claim; lower generations are history.
//                    Content (written once): "pid slot run_id gen\n".
//                    The lease is the file's mtime: the owner renews by
//                    futimens(fd, now) — no rewrite, so readers never
//                    see a torn lease.
//   <token>.done     the row completed.  Created with O_EXCL by the
//                    finishing worker; never removed.  Every worker
//                    skips done rows, so a stolen row that *both*
//                    workers finish (the loser was only slow, not dead)
//                    records done exactly once and the loser's extra
//                    checkpoints fold away in the merge.
//
// A claim is STALE when its owner pid is gone (kill(pid,0) == ESRCH —
// the parent reaps children promptly so a SIGKILLed worker turns
// ESRCH fast) or its mtime is older than the lease.  Stealing a stale
// claim = winning the O_EXCL create of generation gen+1; losers see
// EEXIST and move on, so a row is never run twice concurrently.  A
// steal from a claim of the *same* run_id counts as a steal (live
// takeover); a different run_id counts as a recovery (a previous,
// crashed campaign's claim) — the fleet report separates the two.
//
// Correctness does not rest on the lease alone: even if two workers
// ever did run one row (say, a pathological clock), the evaluation
// store's idempotent puts and the merge's duplicate folding keep the
// merged store canonical.  The lease exists to keep the *work* — not
// the data — non-duplicated.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "obs/metrics.hpp"

namespace hi::campaign {

/// Outcome of ClaimBoard::try_claim().
enum class ClaimOutcome {
  kAcquired,   ///< won a fresh (generation-0) claim
  kStolen,     ///< took over a stale claim from this run
  kRecovered,  ///< took over a stale claim from a previous run
  kHeld,       ///< another live worker holds the row (or won the race)
  kDone,       ///< the row is already complete
};

[[nodiscard]] const char* to_string(ClaimOutcome o);

/// Decoded claim-file content + lease state; exposed for tests.
struct ClaimInfo {
  int pid = 0;
  int slot = -1;
  std::uint64_t run_id = 0;
  int gen = 0;
  std::uint64_t age_ms = 0;  ///< now - mtime at read time
};

/// What this board has observed/claimed so far; mirrors the campaign.*
/// counters and rides the worker's pipe report to the parent.
struct ClaimTally {
  std::uint64_t rows_claimed = 0;
  std::uint64_t steals = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t lease_expiries = 0;  ///< stale-by-age (owner pid alive)
};

/// One worker's handle on the claims directory.  Not thread-safe except
/// renew_all(), which may run on a dedicated renewal thread while the
/// owner claims/releases on the worker thread.
class ClaimBoard {
 public:
  /// `dir` is the claims directory (created if absent).  `lease_ms`
  /// bounds how long a silent owner keeps a row.
  ClaimBoard(std::string dir, std::uint64_t run_id, int slot, int lease_ms,
             obs::MetricsRegistry* metrics);
  ~ClaimBoard();

  ClaimBoard(const ClaimBoard&) = delete;
  ClaimBoard& operator=(const ClaimBoard&) = delete;

  /// Attempts to claim `token`; see the file comment for the protocol.
  /// On kAcquired/kStolen/kRecovered the caller owns the row until
  /// release().  `steal_allowed` = false never takes over stale claims
  /// (the --no-steal mode).
  [[nodiscard]] ClaimOutcome try_claim(const std::string& token,
                                       bool steal_allowed);

  /// Renews the lease (mtime) of every claim this board holds.
  void renew_all();

  /// Marks `token` complete (O_EXCL .done marker; losing the race to a
  /// co-finisher is fine) — call before release().
  void mark_done(const std::string& token);

  [[nodiscard]] bool is_done(const std::string& token) const;

  /// Drops ownership (closes the claim fd; the file stays as history).
  void release(const std::string& token);

  /// Reads the current (highest-generation) claim for `token`, if any.
  [[nodiscard]] std::optional<ClaimInfo> read_claim(
      const std::string& token) const;

  [[nodiscard]] const ClaimTally& tally() const { return tally_; }
  [[nodiscard]] const std::string& dir() const { return dir_; }

 private:
  [[nodiscard]] std::string path_of(const std::string& token, int gen) const;
  /// Scans for the highest generation of `token`; -1 when unclaimed.
  [[nodiscard]] int highest_gen(const std::string& token) const;
  /// O_EXCL-creates generation `gen`; returns false on EEXIST (lost).
  [[nodiscard]] bool create_claim(const std::string& token, int gen);

  std::string dir_;
  std::uint64_t run_id_;
  int slot_;
  int lease_ms_;
  obs::MetricsRegistry* metrics_;
  ClaimTally tally_;
  std::mutex held_mu_;              ///< guards held_ (renewal thread)
  std::map<std::string, int> held_; ///< token -> open claim fd
};

}  // namespace hi::campaign
