#include "campaign/runner.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <ostream>
#include <set>
#include <thread>

#include "campaign/claims.hpp"
#include "common/assert.hpp"

namespace hi::campaign {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

void mkdir_or_exist(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) != 0) {
    HI_REQUIRE(errno == EEXIST, "cannot create campaign directory '"
                                    << dir << "': " << std::strerror(errno));
  }
}

void print_recovery_warning(const RunConfig& cfg,
                            const store::EvalStore& store) {
  if (cfg.recovery_warnings != nullptr && !store.recovery().clean()) {
    *cfg.recovery_warnings
        << "store recovery: dropped " << store.recovery().corrupt_dropped
        << " corrupt record(s), truncated "
        << store.recovery().truncated_bytes << " trailing byte(s)\n";
  }
}

store::CellResult to_cell_result(const dse::ExplorationResult& res) {
  store::CellResult cr;
  cr.feasible = res.feasible;
  cr.best = res.best;
  cr.best_power_mw = res.best_power_mw;
  cr.best_pdr = res.best_pdr;
  cr.best_nlt_s = res.best_nlt_s;
  cr.simulations = res.simulations;
  cr.iterations = res.iterations;
  return cr;
}

/// A worker's whole life between fork and _exit; returns the exit code.
class Worker {
 public:
  Worker(const CampaignPlan& plan, const RunConfig& cfg, int slot,
         std::uint64_t run_id)
      : plan_(plan), cfg_(cfg), slot_(slot) {
    store::StoreOptions sopt;
    sopt.fsync = cfg.fsync;
    sopt.channel_tag = plan.spec().channel_tag;
    sopt.metrics = &metrics_;
    shard_ = std::make_unique<store::EvalStore>(
        shard_path(cfg.shard_dir, slot), sopt);
    board_ = std::make_unique<ClaimBoard>(claims_dir(cfg.shard_dir), run_id,
                                          slot, cfg.lease_ms, &metrics_);
  }

  int run(int report_fd) {
    const Clock::time_point t0 = Clock::now();
    start_renewal();
    dispatch_loop();
    stop_renewal();
    shard_->sync();
    send_report(report_fd, seconds_since(t0));
    return 0;
  }

 private:
  void start_renewal() {
    renewer_ = std::thread([this] {
      const auto period =
          std::chrono::milliseconds(std::max(1, cfg_.lease_ms / 4));
      std::unique_lock<std::mutex> lk(stop_mu_);
      while (!stop_cv_.wait_for(lk, period, [this] { return stop_; })) {
        board_->renew_all();
      }
    });
  }

  void stop_renewal() {
    {
      std::lock_guard<std::mutex> lk(stop_mu_);
      stop_ = true;
    }
    stop_cv_.notify_all();
    renewer_.join();
  }

  /// Claim rows until the whole grid is done (or, with stealing off,
  /// until nothing more is claimable).
  void dispatch_loop() {
    while (true) {
      bool any_held = false;
      bool claimed_any = false;
      for (std::size_t i = 0; i < plan_.rows().size(); ++i) {
        const std::string token = plan_.row_token(i);
        const ClaimOutcome oc = board_->try_claim(token, cfg_.steal);
        if (oc == ClaimOutcome::kDone) {
          continue;
        }
        if (oc == ClaimOutcome::kHeld) {
          any_held = true;
          continue;
        }
        claimed_any = true;
        run_row(i);
        board_->mark_done(token);
        board_->release(token);
      }
      if (!any_held) {
        return;  // every row is done
      }
      if (claimed_any) {
        continue;  // made progress; re-scan immediately
      }
      if (!cfg_.steal) {
        return;  // held rows remain but we may not take them over
      }
      // Held rows, nothing claimable yet: wait for a .done marker or a
      // lease expiry.  Bounded by the lease (a dead owner expires).
      std::this_thread::sleep_for(
          std::chrono::milliseconds(std::min(cfg_.lease_ms / 4, 100)));
    }
  }

  /// Runs every not-yet-checkpointed cell of one claimed row.
  void run_row(std::size_t row_index) {
    const PlanRow& row = plan_.rows()[row_index];
    dse::Evaluator eval(row.settings);
    const store::WarmStartStats warm =
        store::warm_start(eval, *shard_, plan_.spec().robust.realizations);
    HI_REQUIRE(warm.settings_fp == row.settings_fp,
               "plan/settings fingerprint drift on row '" << row.name << "'");
    // Cross-shard rescan: everything any other worker (this run or a
    // crashed previous one) already paid for is reused, not re-run.
    std::set<store::CellKey> foreign_cells;
    for (const std::string& other : list_shards(cfg_.shard_dir)) {
      if (other == shard_->path()) {
        continue;
      }
      preload_foreign(other, eval, row.settings_fp, foreign_cells);
    }
    struct ::stat st{};
    if (::stat(merged_path(cfg_.shard_dir).c_str(), &st) == 0) {
      // A previous run's merge survives shard compaction/cleanup.
      preload_foreign(merged_path(cfg_.shard_dir), eval, row.settings_fp,
                      foreign_cells);
    }
    for (const store::CellKey& key : row.cells) {
      metrics_.counter("campaign.cells_claimed").add(1);
      if (shard_->find_cell(key) || foreign_cells.count(key) > 0) {
        ++cells_skipped_;
        continue;
      }
      dse::ExplorationOptions run_opt = plan_.cell_options(key.pdr_min);
      run_opt.metrics = &metrics_;
      const dse::ExplorationResult res =
          plan_.explorer().run(row.scenario, eval, run_opt);
      shard_->put_cell(key, to_cell_result(res));
      ++cells_done_;
      fresh_sims_ += res.simulations;
      store_hits_ += res.metrics.counter("dse.store_hits");
      if (cfg_.kill_slot == slot_ && cells_done_ >= cfg_.kill_after_cells) {
        // Fault-injection hook: die the way a crashed worker dies —
        // checkpoint durable, claim unreleased, no report.
        ::raise(SIGKILL);
      }
      if (cfg_.cell_delay_ms > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(cfg_.cell_delay_ms));
      }
    }
  }

  void preload_foreign(const std::string& path, dse::Evaluator& eval,
                       const store::Digest& settings_fp,
                       std::set<store::CellKey>& cells) const {
    store::StoreOptions ro;
    ro.read_only = true;
    ro.channel_tag = plan_.spec().channel_tag;
    const store::EvalStore other(path, ro);
    other.preload_into(eval, settings_fp);
    // Realization children carry distinct channel seeds, so their rows
    // live under their own settings fingerprints.
    for (int k = 1; k < plan_.spec().robust.realizations; ++k) {
      dse::Evaluator& child = eval.realization(k);
      other.preload_into(
          child, store::settings_fingerprint(child.settings(),
                                             plan_.spec().channel_tag));
    }
    other.for_each_cell(
        [&cells](const store::CellKey& key, const store::CellResult&) {
          cells.insert(key);
        });
  }

  void send_report(int fd, double wall_s) const {
    WorkerReport rep;
    rep.slot = slot_;
    rep.pid = static_cast<std::int32_t>(::getpid());
    rep.rows_claimed = board_->tally().rows_claimed;
    rep.steals = board_->tally().steals;
    rep.recoveries = board_->tally().recoveries;
    rep.lease_expiries = board_->tally().lease_expiries;
    rep.cells_done = cells_done_;
    rep.cells_skipped = cells_skipped_;
    rep.fresh_simulations = fresh_sims_;
    rep.store_hits = store_hits_;
    rep.wall_s = wall_s;
    const std::string bytes = rep.encode();
    std::size_t written = 0;
    while (written < bytes.size()) {
      const ssize_t n =
          ::write(fd, bytes.data() + written, bytes.size() - written);
      if (n <= 0) {
        return;  // parent gone; nothing useful left to do
      }
      written += static_cast<std::size_t>(n);
    }
  }

  const CampaignPlan& plan_;
  const RunConfig& cfg_;
  int slot_;
  obs::MetricsRegistry metrics_;
  std::unique_ptr<store::EvalStore> shard_;
  std::unique_ptr<ClaimBoard> board_;
  std::thread renewer_;
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
  std::uint64_t cells_done_ = 0;
  std::uint64_t cells_skipped_ = 0;
  std::uint64_t fresh_sims_ = 0;
  std::uint64_t store_hits_ = 0;
};

std::uint64_t make_run_id() {
  timespec ts{};
  ::clock_gettime(CLOCK_REALTIME, &ts);
  return (static_cast<std::uint64_t>(ts.tv_sec) * 1000000000u +
          static_cast<std::uint64_t>(ts.tv_nsec)) ^
         (static_cast<std::uint64_t>(::getpid()) << 48);
}

/// Reads `fd` to EOF (the worker has exited; the report fits the pipe
/// buffer, so this never blocks a live writer).
std::string drain_pipe(int fd) {
  std::string out;
  char buf[512];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n <= 0) {
      break;
    }
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

}  // namespace

std::string shard_path(const std::string& dir, int slot) {
  return dir + "/shard-" + std::to_string(slot) + ".store";
}

std::string merged_path(const std::string& dir) {
  return dir + "/merged.store";
}

std::string claims_dir(const std::string& dir) { return dir + "/claims"; }

std::string worker_pid_path(const std::string& dir, int slot) {
  return dir + "/worker-" + std::to_string(slot) + ".pid";
}

std::string fleet_json_path(const std::string& dir) {
  return dir + "/fleet.json";
}

std::vector<std::string> list_shards(const std::string& dir) {
  std::vector<std::string> out;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return out;
  }
  while (const dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name.size() >= 13 && name.rfind("shard-", 0) == 0 &&
        name.compare(name.size() - 6, 6, ".store") == 0) {
      out.push_back(dir + "/" + name);
    }
  }
  ::closedir(d);
  std::sort(out.begin(), out.end());
  return out;
}

CampaignReport run_single(const CampaignPlan& plan, const RunConfig& cfg,
                          obs::MetricsRegistry* metrics) {
  HI_REQUIRE(!cfg.store_path.empty(), "run_single needs a store path");
  store::StoreOptions sopt;
  sopt.fsync = cfg.fsync;
  sopt.channel_tag = plan.spec().channel_tag;
  sopt.metrics = metrics;
  store::EvalStore store(cfg.store_path, sopt);
  print_recovery_warning(cfg, store);

  CampaignReport report;
  report.store_path = store.path();
  report.recovery = store.recovery();
  for (const PlanRow& row : plan.rows()) {
    dse::Evaluator eval(row.settings);
    const store::WarmStartStats warm =
        store::warm_start(eval, store, plan.spec().robust.realizations);
    HI_REQUIRE(warm.settings_fp == row.settings_fp,
               "plan/settings fingerprint drift on row '" << row.name << "'");
    for (const store::CellKey& key : row.cells) {
      CellReport cell;
      cell.scenario = row.name;
      cell.pdr_min = key.pdr_min;
      if (cfg.resume) {
        if (const auto done = store.find_cell(key)) {
          cell.skipped = true;
          cell.result = *done;
          report.cells.push_back(std::move(cell));
          continue;
        }
      }
      dse::ExplorationOptions run_opt = plan.cell_options(key.pdr_min);
      run_opt.metrics = metrics;
      const dse::ExplorationResult res =
          plan.explorer().run(row.scenario, eval, run_opt);
      cell.result = to_cell_result(res);
      cell.store_hits = res.metrics.counter("dse.store_hits");
      store.put_cell(key, cell.result);  // fsynced checkpoint
      report.cells.push_back(std::move(cell));
      if (cfg.cell_delay_ms > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(cfg.cell_delay_ms));
      }
    }
  }
  report.stored_evals = store.eval_count();
  report.stored_cells = store.cell_count();
  return report;
}

FleetReport run_fleet(const CampaignPlan& plan, const RunConfig& cfg,
                      obs::MetricsRegistry* metrics) {
  HI_REQUIRE(cfg.workers >= 1, "run_fleet needs at least one worker");
  HI_REQUIRE(!cfg.shard_dir.empty(), "run_fleet needs a campaign directory");
  mkdir_or_exist(cfg.shard_dir);
  mkdir_or_exist(claims_dir(cfg.shard_dir));
  const Clock::time_point t0 = Clock::now();
  const std::uint64_t run_id = make_run_id();

  // Fork the fleet.  The parent is single-threaded here, so each child
  // starts from a clean slate (its renewal thread is created post-fork).
  std::vector<pid_t> pids(static_cast<std::size_t>(cfg.workers), -1);
  std::vector<int> report_fds(static_cast<std::size_t>(cfg.workers), -1);
  for (int slot = 0; slot < cfg.workers; ++slot) {
    int fds[2];
    HI_REQUIRE(::pipe(fds) == 0,
               "worker pipe failed: " << std::strerror(errno));
    const pid_t pid = ::fork();
    HI_REQUIRE(pid >= 0, "worker fork failed: " << std::strerror(errno));
    if (pid == 0) {
      // Child: drop the parent ends, run the worker, never return.
      ::signal(SIGPIPE, SIG_IGN);  // a dead parent must not kill the work
      ::close(fds[0]);
      for (int f : report_fds) {
        if (f >= 0) {
          ::close(f);
        }
      }
      int code = 1;
      try {
        Worker worker(plan, cfg, slot, run_id);
        code = worker.run(fds[1]);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "worker %d: %s\n", slot, e.what());
      }
      ::close(fds[1]);
      ::_exit(code);
    }
    ::close(fds[1]);
    report_fds[static_cast<std::size_t>(slot)] = fds[0];
    pids[static_cast<std::size_t>(slot)] = pid;
    // Pid file: how tests (and operators) address one worker to kill.
    std::ofstream pidf(worker_pid_path(cfg.shard_dir, slot));
    pidf << pid << "\n";
  }

  // Reap promptly and in any order: a SIGKILLed worker must turn into
  // ESRCH fast so the survivors' pid-death staleness check fires before
  // the lease expires.
  FleetReport fleet;
  fleet.shard_dir = cfg.shard_dir;
  fleet.merged_path = merged_path(cfg.shard_dir);
  fleet.run_id = run_id;
  fleet.workers = cfg.workers;
  fleet.worker_reports.resize(static_cast<std::size_t>(cfg.workers));
  for (int remaining = cfg.workers; remaining > 0; --remaining) {
    int status = 0;
    const pid_t pid = ::waitpid(-1, &status, 0);
    HI_REQUIRE(pid > 0, "waitpid failed: " << std::strerror(errno));
    for (int slot = 0; slot < cfg.workers; ++slot) {
      if (pids[static_cast<std::size_t>(slot)] != pid) {
        continue;
      }
      WorkerReport& rep = fleet.worker_reports[static_cast<std::size_t>(slot)];
      rep.slot = slot;
      rep.pid = static_cast<std::int32_t>(pid);
      if (WIFEXITED(status)) {
        rep.exit_code = WEXITSTATUS(status);
      } else if (WIFSIGNALED(status)) {
        rep.term_signal = WTERMSIG(status);
      }
      break;
    }
  }
  for (int slot = 0; slot < cfg.workers; ++slot) {
    const int fd = report_fds[static_cast<std::size_t>(slot)];
    const std::string bytes = drain_pipe(fd);
    ::close(fd);
    WorkerReport& rep = fleet.worker_reports[static_cast<std::size_t>(slot)];
    WorkerReport decoded;
    if (WorkerReport::decode(bytes, &decoded)) {
      decoded.exit_code = rep.exit_code;
      decoded.term_signal = rep.term_signal;
      rep = decoded;  // a killed worker leaves rep.reported == false
    }
  }

  // Fold every shard into the canonical store and audit the plan
  // against it: complete == every planned cell is checkpointed.
  fleet.merge = store::EvalStore::merge(list_shards(cfg.shard_dir),
                                        fleet.merged_path);
  if (metrics != nullptr) {
    metrics->counter("campaign.merge_frames").add(fleet.merge.frames);
  }
  store::StoreOptions ro;
  ro.read_only = true;
  ro.channel_tag = plan.spec().channel_tag;
  const store::EvalStore merged(fleet.merged_path, ro);
  fleet.planned_cells = plan.cell_count();
  for (const PlanRow& row : plan.rows()) {
    for (const store::CellKey& key : row.cells) {
      if (merged.find_cell(key)) {
        ++fleet.checkpointed_cells;
      }
    }
  }
  fleet.complete = fleet.checkpointed_cells == fleet.planned_cells;
  fleet.wall_s = seconds_since(t0);

  std::ofstream json(fleet_json_path(cfg.shard_dir));
  json << fleet.to_json();
  return fleet;
}

}  // namespace hi::campaign
