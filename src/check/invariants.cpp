#include "check/invariants.hpp"

#include <cmath>
#include <cstdint>
#include <sstream>

#include "common/assert.hpp"
#include "common/units.hpp"
#include "obs/metrics.hpp"

namespace hi::check {

namespace {

/// Relative-or-absolute closeness for recomputed doubles.  The audited
/// quantities are recomputed with the same formulas the simulator uses,
/// so the slack only has to absorb reassociation, not modelling error.
bool close(double a, double b, double tol = 1e-9) {
  return std::fabs(a - b) <= tol * (1.0 + std::fabs(a) + std::fabs(b));
}

class Audit {
 public:
  Audit(const model::NetworkConfig& cfg, const net::SimParams& params,
        const net::SimResult& res, const obs::Snapshot& metrics,
        const std::vector<obs::TraceEvent>& trace)
      : cfg_(cfg), params_(params), res_(res), m_(metrics), trace_(trace) {}

  std::vector<std::string> run() {
    check_reliability();
    check_energy_power();
    check_conservation();
    check_trace();
    return std::move(violations_);
  }

 private:
  template <typename... Parts>
  void fail(Parts&&... parts) {
    std::ostringstream oss;
    (oss << ... << parts);
    violations_.push_back(oss.str());
  }

  void check_reliability() {
    if (!(res_.pdr >= 0.0 && res_.pdr <= 1.0)) {
      fail("network PDR ", res_.pdr, " outside [0, 1]");
    }
    double sum = 0.0;
    for (const net::NodeResult& nr : res_.nodes) {
      if (!(nr.pdr >= 0.0 && nr.pdr <= 1.0)) {
        fail("node ", nr.location, " PDR ", nr.pdr, " outside [0, 1]");
      }
      sum += nr.pdr;
    }
    if (!res_.nodes.empty() &&
        !close(res_.pdr, sum / static_cast<double>(res_.nodes.size()))) {
      fail("network PDR ", res_.pdr, " is not the mean of the node PDRs ",
           sum / static_cast<double>(res_.nodes.size()));
    }
  }

  void check_energy_power() {
    double worst = 0.0;
    for (const net::NodeResult& nr : res_.nodes) {
      if (nr.power_mw < cfg_.app.baseline_mw - 1e-12) {
        fail("node ", nr.location, " power ", nr.power_mw,
             " mW below the baseline ", cfg_.app.baseline_mw,
             " mW (negative radio energy)");
      }
      const bool is_coordinator =
          cfg_.routing.protocol == model::RoutingProtocol::kStar &&
          nr.location == cfg_.routing.coordinator;
      if (!is_coordinator) {
        worst = std::max(worst, nr.power_mw);
      }
    }
    if (!close(res_.worst_power_mw, worst)) {
      fail("worst power ", res_.worst_power_mw,
           " mW does not match the recomputed lifetime-relevant maximum ",
           worst, " mW");
    }
    if (worst > 0.0) {
      const double nlt = cfg_.battery_j / mw_to_w(worst);
      if (!close(res_.nlt_s, nlt)) {
        fail("network lifetime ", res_.nlt_s, " s does not match Eq. (4) ",
             nlt, " s");
      }
    }
  }

  void check_conservation() {
    const std::uint64_t n = res_.nodes.size();
    std::uint64_t mac_sent = 0, mac_enq = 0, mac_drop = 0, radio_tx = 0,
                  rx_outcomes = 0, originated = 0, delivered = 0, relayed = 0;
    for (const net::NodeResult& nr : res_.nodes) {
      mac_sent += nr.mac.sent;
      mac_enq += nr.mac.enqueued;
      mac_drop += nr.mac.dropped_buffer;
      radio_tx += nr.radio.tx_packets;
      rx_outcomes += nr.radio.rx_ok + nr.radio.rx_corrupted +
                     nr.radio.rx_missed + nr.radio.rx_aborted;
      originated += nr.routing.originated;
      delivered += nr.routing.delivered;
      relayed += nr.routing.relayed;
    }
    const net::MediumStats& med = res_.medium;
    if (mac_sent != radio_tx || radio_tx != med.transmissions) {
      fail("tx conservation: mac.sent ", mac_sent, " != radio.tx ", radio_tx,
           " != medium.transmissions ", med.transmissions);
    }
    if (n >= 1 && med.deliveries_offered + med.below_sensitivity !=
                      med.transmissions * (n - 1)) {
      fail("medium conservation: offered ", med.deliveries_offered,
           " + below_sensitivity ", med.below_sensitivity,
           " != transmissions * (N-1) = ", med.transmissions * (n - 1));
    }
    if (rx_outcomes > med.deliveries_offered) {
      fail("rx conservation: decode outcomes ", rx_outcomes,
           " exceed deliveries offered ", med.deliveries_offered);
    }
    if (mac_sent + mac_drop > mac_enq) {
      fail("mac conservation: sent ", mac_sent, " + dropped ", mac_drop,
           " exceed enqueued ", mac_enq);
    }
    if (mac_enq != originated + relayed) {
      fail("mac/routing conservation: enqueued ", mac_enq,
           " != originated ", originated, " + relayed ", relayed);
    }
    if (delivered > originated) {
      fail("app conservation: delivered ", delivered,
           " exceeds originated ", originated);
    }
    // The per-run metric counters must mirror the SimResult stats — one
    // source of truth, two transports.
    const auto counter_is = [&](const char* name, std::uint64_t want) {
      const std::uint64_t got = m_.counter(name);
      if (got != want) {
        fail("counter ", name, " = ", got, " but SimResult says ", want);
      }
    };
    counter_is("net.runs", 1);
    counter_is("des.events", res_.events);
    counter_is("net.medium.transmissions", med.transmissions);
    counter_is("net.medium.deliveries_offered", med.deliveries_offered);
    counter_is("net.medium.below_sensitivity", med.below_sensitivity);
    counter_is("net.radio.tx_packets", radio_tx);
    counter_is("net.mac.sent", mac_sent);
    counter_is("net.mac.enqueued", mac_enq);
    counter_is("net.mac.dropped_buffer", mac_drop);
  }

  void check_trace() {
    double last_t = 0.0;
    std::uint64_t tx = 0, rx_ok = 0, drops = 0, backoffs = 0, dwell = 0,
                  energy = 0, kernel = 0;
    std::uint64_t kernel_events = 0, kernel_cancelled = 0;
    double kernel_heap = 0.0;
    double energy_power_mismatch = -1.0;
    for (const obs::TraceEvent& e : trace_) {
      if (e.t_s < last_t - 1e-12) {
        fail("trace time went backwards: ", e.t_s, " after ", last_t,
             " (kind ", obs::to_string(e.kind), ")");
        break;  // one report is enough; later counts would be noise
      }
      last_t = std::max(last_t, e.t_s);
      if (e.t_s < 0.0 || e.t_s > params_.duration_s + 1e-12) {
        fail("trace time ", e.t_s, " outside [0, ", params_.duration_s, "]");
      }
      switch (e.kind) {
        case obs::TraceKind::kTx:
          ++tx;
          if (e.y <= 0.0) fail("tx with nonpositive airtime ", e.y);
          if (e.x <= 0.0) fail("tx with nonpositive size ", e.x);
          break;
        case obs::TraceKind::kRxOk:
          ++rx_ok;
          break;
        case obs::TraceKind::kRxCollision:
          break;
        case obs::TraceKind::kDropBuffer:
          ++drops;
          break;
        case obs::TraceKind::kBackoff:
          ++backoffs;
          if (e.x < 0.0) fail("backoff with negative wait ", e.x);
          break;
        case obs::TraceKind::kRadioDwell:
          ++dwell;
          if (e.x < -1e-12 || e.y < -1e-12) {
            fail("node ", e.node, " negative radio dwell tx=", e.x,
                 " rx=", e.y);
          }
          break;
        case obs::TraceKind::kNodeEnergy: {
          ++energy;
          if (e.x < 0.0 || e.y < 0.0) {
            fail("node ", e.node, " negative energy tx=", e.x, " rx=", e.y,
                 " mJ");
          }
          // Cross-check against the node's reported power.
          for (const net::NodeResult& nr : res_.nodes) {
            if (nr.location != e.node) continue;
            const double want =
                cfg_.app.baseline_mw + (e.x + e.y) / params_.duration_s;
            if (!close(nr.power_mw, want)) {
              energy_power_mismatch = want;
              fail("node ", e.node, " power ", nr.power_mw,
                   " mW does not match traced energy -> ", want, " mW");
            }
          }
          break;
        }
        case obs::TraceKind::kKernel:
          ++kernel;
          kernel_events = static_cast<std::uint64_t>(e.a);
          kernel_cancelled = static_cast<std::uint64_t>(e.x);
          kernel_heap = e.y;
          break;
      }
    }
    (void)energy_power_mismatch;
    const std::uint64_t n = res_.nodes.size();
    std::uint64_t want_rx = 0, want_drops = 0, want_backoffs = 0;
    for (const net::NodeResult& nr : res_.nodes) {
      want_rx += nr.radio.rx_ok;
      want_drops += nr.mac.dropped_buffer;
      want_backoffs += nr.mac.backoffs;
    }
    if (tx != res_.medium.transmissions) {
      fail("trace tx count ", tx, " != medium.transmissions ",
           res_.medium.transmissions);
    }
    if (rx_ok != want_rx) {
      fail("trace rx_ok count ", rx_ok, " != radio.rx_ok sum ", want_rx);
    }
    if (drops != want_drops) {
      fail("trace drop_buffer count ", drops, " != mac.dropped_buffer sum ",
           want_drops);
    }
    if (backoffs != want_backoffs) {
      fail("trace backoff count ", backoffs, " != mac.backoffs sum ",
           want_backoffs);
    }
    if (dwell != n || energy != n) {
      fail("expected one radio_dwell and one node_energy record per node (",
           n, "), saw ", dwell, " and ", energy);
    }
    if (kernel != 1) {
      fail("expected exactly one kernel summary record, saw ", kernel);
    } else {
      if (kernel_events != res_.events ||
          kernel_events != m_.counter("des.events")) {
        fail("kernel events disagree: trace ", kernel_events, ", SimResult ",
             res_.events, ", des.events counter ", m_.counter("des.events"));
      }
      if (kernel_cancelled != m_.counter("des.cancelled")) {
        fail("kernel cancels disagree: trace ", kernel_cancelled,
             ", des.cancelled counter ", m_.counter("des.cancelled"));
      }
      if (kernel_heap != m_.gauge("des.heap_highwater")) {
        fail("kernel heap high-water disagrees: trace ", kernel_heap,
             ", des.heap_highwater gauge ",
             m_.gauge("des.heap_highwater"));
      }
    }
  }

  const model::NetworkConfig& cfg_;
  const net::SimParams& params_;
  const net::SimResult& res_;
  const obs::Snapshot& m_;
  const std::vector<obs::TraceEvent>& trace_;
  std::vector<std::string> violations_;
};

}  // namespace

std::vector<std::string> audit_run(const model::NetworkConfig& cfg,
                                   const net::SimParams& params,
                                   const net::SimResult& res,
                                   const obs::Snapshot& metrics,
                                   const std::vector<obs::TraceEvent>& trace) {
  return Audit(cfg, params, res, metrics, trace).run();
}

AuditedRun audited_simulate(const model::NetworkConfig& cfg,
                            net::SimParams params,
                            const net::ChannelFactory& make_channel) {
  obs::MetricsRegistry registry;
  obs::MemoryTraceSink sink;
  const obs::RunTrace trace(&sink);
  params.metrics = &registry;
  params.trace = &trace;
  const std::uint64_t channel_seed =
      params.channel_seed != 0 ? params.channel_seed : params.seed;
  const auto channel = make_channel(channel_seed);
  AuditedRun out;
  out.result = net::simulate(cfg, *channel, params);
  out.metrics = registry.snapshot();
  out.trace = sink.events();
  out.violations =
      audit_run(cfg, params, out.result, out.metrics, out.trace);
  return out;
}

}  // namespace hi::check
