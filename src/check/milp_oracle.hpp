// hi-opt: exact MILP oracle — brute-force integer-box enumeration.
//
// For a milp::Model whose integral variables all have finite bounds, the
// oracle walks every integer assignment in the box (an odometer over the
// per-variable ranges), substitutes it into the rows, and either checks
// feasibility directly (pure-integer model) or solves the remaining
// continuous LP exactly with the vertex oracle (mixed model).  The
// result is the exact optimum plus the *complete set* of optimal
// integral assignments — which is precisely what
// milp::solve_all_optimal's no-good-cut pool claims to enumerate, so the
// two are differentially tested against each other.
//
// Scope: the box may contain at most `max_boxes` assignments (default
// 2^20); mixed models additionally inherit the LP oracle's limits per
// box.  Inside that envelope the verdict is exact.
#pragma once

#include <cstdint>
#include <vector>

#include "check/lp_oracle.hpp"
#include "milp/model.hpp"

namespace hi::check {

/// Outcome of an exact MILP solve.
struct MilpOracleResult {
  OracleStatus status = OracleStatus::kInfeasible;
  Rational objective;  ///< exact, in the model's own sense
  /// Every optimal assignment of the integral variables, in
  /// model.integral_variables() order, deduplicated, in odometer order.
  std::vector<std::vector<std::int64_t>> optimal_assignments;
  std::uint64_t boxes_checked = 0;
};

/// Solves `m` exactly.  Throws hi::ModelError when an integral variable
/// is unbounded or the box exceeds `max_boxes` assignments, and
/// check::OverflowError when the arithmetic outgrows the limbs.
[[nodiscard]] MilpOracleResult solve_milp_exact(
    const milp::Model& m, std::uint64_t max_boxes = 1u << 20);

}  // namespace hi::check
