// hi-opt: exact rational arithmetic for the hi::check oracles.
//
// A Rational is a normalized fraction num/den with 128-bit limbs
// (den > 0, gcd(num, den) = 1).  Every arithmetic step is
// overflow-checked: the oracles differential-test the floating-point
// solvers, so silently wrapping would defeat their whole purpose —
// an instance too large for the limbs throws check::OverflowError
// instead of producing a wrong "exact" answer.
//
// Doubles convert *exactly*: every finite double is the dyadic rational
// mantissa * 2^exponent, so from_double() is lossless whenever the
// result fits the limbs.  That is what lets the oracles consume the very
// same lp::Problem / milp::Model the floating-point solvers see, with no
// parallel "rational model" code path to drift out of sync.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "common/assert.hpp"

namespace hi::check {

/// Thrown when an exact computation exceeds the 128-bit limbs.  The
/// oracles treat this as "instance out of scope", never as a verdict.
class OverflowError : public Error {
 public:
  explicit OverflowError(const std::string& what) : Error(what) {}
};

namespace detail {
__extension__ using Limb = __int128;

[[noreturn]] void throw_overflow(const char* op);

inline Limb checked_add(Limb a, Limb b) {
  Limb r;
  if (__builtin_add_overflow(a, b, &r)) throw_overflow("+");
  return r;
}
inline Limb checked_sub(Limb a, Limb b) {
  Limb r;
  if (__builtin_sub_overflow(a, b, &r)) throw_overflow("-");
  return r;
}
inline Limb checked_mul(Limb a, Limb b) {
  Limb r;
  if (__builtin_mul_overflow(a, b, &r)) throw_overflow("*");
  return r;
}

[[nodiscard]] Limb gcd(Limb a, Limb b);
}  // namespace detail

/// See file comment.
class Rational {
 public:
  using Limb = detail::Limb;

  constexpr Rational() = default;
  Rational(std::int64_t n) : num_(n) {}  // NOLINT(google-explicit-constructor)
  Rational(std::int64_t n, std::int64_t d);

  /// Exact conversion of a finite double (throws hi::ModelError on
  /// NaN/inf, check::OverflowError when the dyadic form needs > 127
  /// bits — only possible for subnormals / huge magnitudes).
  [[nodiscard]] static Rational from_double(double v);

  [[nodiscard]] bool is_zero() const { return num_ == 0; }
  [[nodiscard]] int sign() const { return num_ < 0 ? -1 : num_ > 0 ? 1 : 0; }

  /// Nearest-double rendering (may round; exactness lives in the limbs).
  [[nodiscard]] double to_double() const;

  /// "num/den" (or just "num" when den == 1).
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] Rational operator-() const;
  [[nodiscard]] Rational operator+(const Rational& o) const;
  [[nodiscard]] Rational operator-(const Rational& o) const;
  [[nodiscard]] Rational operator*(const Rational& o) const;
  /// Throws hi::ModelError on division by zero.
  [[nodiscard]] Rational operator/(const Rational& o) const;
  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }
  Rational& operator/=(const Rational& o) { return *this = *this / o; }

  friend bool operator==(const Rational& a, const Rational& b) {
    // Normalized form makes equality structural.
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend bool operator!=(const Rational& a, const Rational& b) {
    return !(a == b);
  }
  friend bool operator<(const Rational& a, const Rational& b) {
    return a.compare(b) < 0;
  }
  friend bool operator<=(const Rational& a, const Rational& b) {
    return a.compare(b) <= 0;
  }
  friend bool operator>(const Rational& a, const Rational& b) {
    return a.compare(b) > 0;
  }
  friend bool operator>=(const Rational& a, const Rational& b) {
    return a.compare(b) >= 0;
  }

 private:
  Rational(Limb n, Limb d, bool normalize);
  /// -1 / 0 / +1 like a <=> b, exact.
  [[nodiscard]] int compare(const Rational& o) const;

  Limb num_ = 0;
  Limb den_ = 1;
};

std::ostream& operator<<(std::ostream& os, const Rational& r);

}  // namespace hi::check
