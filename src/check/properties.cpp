#include "check/properties.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <utility>

#include "check/invariants.hpp"
#include "check/lp_oracle.hpp"
#include "check/milp_oracle.hpp"
#include "check/robust_oracle.hpp"
#include "dse/explorer.hpp"
#include "dse/milp_encoding.hpp"
#include "lp/simplex.hpp"
#include "milp/solver.hpp"
#include "model/power.hpp"

namespace hi::check {

namespace {

/// Tolerance granted to the floating-point solvers against the exact
/// oracles.  The instances are tiny and dyadic, so this is generous.
constexpr double kSolverTol = 1e-6;

template <typename... Parts>
void fail(std::vector<std::string>& out, Parts&&... parts) {
  std::ostringstream oss;
  (oss << ... << parts);
  out.push_back(oss.str());
}

/// A double exactly representable as k/16 with k uniform in
/// [16*lo, 16*hi] — Rational::from_double round-trips it exactly.
double dyadic16(Rng& rng, double lo, double hi) {
  const auto klo = static_cast<std::int64_t>(std::lround(lo * 16.0));
  const auto khi = static_cast<std::int64_t>(std::lround(hi * 16.0));
  return static_cast<double>(rng.uniform_int(klo, khi)) / 16.0;
}

lp::Sense random_sense(Rng& rng) {
  const double u = rng.uniform();
  if (u < 0.2) return lp::Sense::kEqual;
  return u < 0.6 ? lp::Sense::kLessEqual : lp::Sense::kGreaterEqual;
}

/// Sparse row over `nv` variables with 1..nv distinct terms.
std::vector<lp::Term> random_row(Rng& rng, int nv) {
  std::vector<int> vars(static_cast<std::size_t>(nv));
  for (int v = 0; v < nv; ++v) vars[static_cast<std::size_t>(v)] = v;
  for (std::size_t i = vars.size(); i > 1; --i) {
    std::swap(vars[i - 1], vars[rng.uniform_index(i)]);
  }
  const int terms = static_cast<int>(rng.uniform_int(1, nv));
  std::vector<lp::Term> row;
  for (int t = 0; t < terms; ++t) {
    double c = dyadic16(rng, -2.0, 2.0);
    if (c == 0.0) c = 1.0;  // keep every term meaningful
    row.push_back(lp::Term{vars[static_cast<std::size_t>(t)], c});
  }
  return row;
}

std::vector<std::int64_t> rounded_assignment(const std::vector<int>& vars,
                                             const std::vector<double>& x) {
  std::vector<std::int64_t> a;
  a.reserve(vars.size());
  for (int v : vars) {
    a.push_back(std::llround(x[static_cast<std::size_t>(v)]));
  }
  return a;
}

}  // namespace

lp::Problem random_bounded_lp(Rng& rng, int max_vars) {
  lp::Problem p;
  const int nv = static_cast<int>(rng.uniform_int(2, max_vars));
  for (int v = 0; v < nv; ++v) {
    const double lo = dyadic16(rng, -3.0, 0.0);
    const double width = dyadic16(rng, 0.0, 3.0);  // 0 => fixed variable
    p.add_variable(lo, lo + width, dyadic16(rng, -2.0, 2.0));
  }
  p.set_objective(rng.bernoulli(0.5) ? lp::Objective::kMinimize
                                     : lp::Objective::kMaximize);
  const int rows = static_cast<int>(rng.uniform_int(1, nv + 1));
  for (int r = 0; r < rows; ++r) {
    p.add_constraint(random_row(rng, nv), random_sense(rng),
                     dyadic16(rng, -3.0, 3.0));
  }
  return p;
}

milp::Model random_small_milp(Rng& rng) {
  milp::Model m;
  const int nb = static_cast<int>(rng.uniform_int(2, 4));
  for (int v = 0; v < nb; ++v) {
    m.add_binary(dyadic16(rng, -2.0, 2.0));
  }
  if (rng.bernoulli(0.5)) {
    const int ni = static_cast<int>(rng.uniform_int(1, 2));
    for (int v = 0; v < ni; ++v) {
      const auto lo = static_cast<double>(rng.uniform_int(-2, 0));
      const auto up = lo + static_cast<double>(rng.uniform_int(1, 4));
      m.add_integer(lo, up, dyadic16(rng, -2.0, 2.0));
    }
  }
  if (rng.bernoulli(0.5)) {
    const int nc = static_cast<int>(rng.uniform_int(1, 2));
    for (int v = 0; v < nc; ++v) {
      const double lo = dyadic16(rng, -2.0, 0.0);
      m.add_continuous(lo, lo + dyadic16(rng, 0.5, 3.0),
                       dyadic16(rng, -2.0, 2.0));
    }
  }
  m.set_objective(rng.bernoulli(0.5) ? lp::Objective::kMinimize
                                     : lp::Objective::kMaximize);
  const int nv = m.num_variables();
  const int rows = static_cast<int>(rng.uniform_int(1, 4));
  for (int r = 0; r < rows; ++r) {
    m.add_constraint(random_row(rng, nv), random_sense(rng),
                     dyadic16(rng, -4.0, 6.0));
  }
  return m;
}

milp::Model random_pool_milp(Rng& rng) {
  milp::Model m;
  const int nb = static_cast<int>(rng.uniform_int(3, 5));
  for (int v = 0; v < nb; ++v) {
    // Costs from a 5-value set: ties (and so alternative optima) are the
    // point of this generator.
    m.add_binary(0.5 * static_cast<double>(rng.uniform_int(-2, 2)));
  }
  if (rng.bernoulli(0.3)) {
    m.add_continuous(0.0, 2.0, dyadic16(rng, -1.0, 1.0));
  }
  m.set_objective(rng.bernoulli(0.5) ? lp::Objective::kMinimize
                                     : lp::Objective::kMaximize);
  // A cardinality-style row keeps most instances feasible while still
  // cutting off part of the hypercube.
  std::vector<lp::Term> card;
  for (int v = 0; v < nb; ++v) card.push_back(lp::Term{v, 1.0});
  m.add_constraint(std::move(card),
                   rng.bernoulli(0.5) ? lp::Sense::kLessEqual
                                      : lp::Sense::kGreaterEqual,
                   static_cast<double>(rng.uniform_int(1, nb - 1)));
  if (rng.bernoulli(0.5)) {
    m.add_constraint(random_row(rng, m.num_variables()), random_sense(rng),
                     dyadic16(rng, -2.0, 4.0));
  }
  return m;
}

milp::Model random_tied_pool_milp(Rng& rng) {
  milp::Model m;
  const int nb = static_cast<int>(rng.uniform_int(3, 5));
  // One shared cost for every selectable binary: with the symmetric
  // cardinality row below, every k-subset is optimal, so the optimal set
  // has C(nb, k) >= nb members before the free bit doubles it.
  const double cost = 0.5 * static_cast<double>(rng.uniform_int(-2, 2));
  for (int v = 0; v < nb; ++v) {
    m.add_binary(cost);
  }
  // A zero-cost unconstrained binary mirrors the DSE encoding's MAC bit
  // (absent from Eq. (9)): it doubles every optimum.
  m.add_binary(0.0);
  m.set_objective(rng.bernoulli(0.5) ? lp::Objective::kMinimize
                                     : lp::Objective::kMaximize);
  std::vector<lp::Term> card;
  for (int v = 0; v < nb; ++v) card.push_back(lp::Term{v, 1.0});
  m.add_constraint(std::move(card), lp::Sense::kEqual,
                   static_cast<double>(rng.uniform_int(1, nb - 1)));
  return m;
}

std::vector<std::string> check_lp_against_oracle(const lp::Problem& p) {
  std::vector<std::string> out;
  const LpOracleResult oracle = solve_lp_exact(p);
  const lp::Solution sol = lp::solve_simplex(p);
  if (oracle.status == OracleStatus::kInfeasible) {
    if (sol.status != lp::Status::kInfeasible) {
      fail(out, "oracle says infeasible but simplex returned ",
           lp::to_string(sol.status));
    }
    return out;
  }
  if (sol.status != lp::Status::kOptimal) {
    fail(out, "oracle optimum ", oracle.objective.to_string(),
         " but simplex returned ", lp::to_string(sol.status));
    return out;
  }
  const double exact = oracle.objective.to_double();
  if (std::fabs(sol.objective - exact) > kSolverTol) {
    fail(out, "simplex objective ", sol.objective,
         " differs from exact optimum ", oracle.objective.to_string(), " = ",
         exact);
  }
  if (!p.is_feasible(sol.x, kSolverTol)) {
    fail(out, "simplex primal point violates the constraints");
  }
  if (std::fabs(p.objective_value(sol.x) - sol.objective) > kSolverTol) {
    fail(out, "simplex objective ", sol.objective,
         " does not match its own primal point value ",
         p.objective_value(sol.x));
  }
  return out;
}

std::vector<std::string> check_milp_against_oracle(const milp::Model& m) {
  std::vector<std::string> out;
  const MilpOracleResult oracle = solve_milp_exact(m);
  const milp::Solution sol = milp::solve(m);
  if (oracle.status == OracleStatus::kInfeasible) {
    if (sol.status != lp::Status::kInfeasible) {
      fail(out, "oracle says infeasible but milp::solve returned ",
           lp::to_string(sol.status));
    }
    return out;
  }
  if (sol.status != lp::Status::kOptimal) {
    fail(out, "oracle optimum ", oracle.objective.to_string(),
         " but milp::solve returned ", lp::to_string(sol.status));
    return out;
  }
  const double exact = oracle.objective.to_double();
  if (std::fabs(sol.objective - exact) > kSolverTol) {
    fail(out, "milp::solve objective ", sol.objective,
         " differs from exact optimum ", oracle.objective.to_string(), " = ",
         exact);
  }
  const std::vector<int> ints = m.integral_variables();
  for (int v : ints) {
    const double xv = sol.x[static_cast<std::size_t>(v)];
    if (std::fabs(xv - std::round(xv)) > 1e-5) {
      fail(out, "milp::solve variable ", v, " = ", xv, " is not integral");
    }
  }
  const std::vector<std::int64_t> a = rounded_assignment(ints, sol.x);
  if (std::find(oracle.optimal_assignments.begin(),
                oracle.optimal_assignments.end(),
                a) == oracle.optimal_assignments.end()) {
    fail(out,
         "milp::solve's integral assignment is not in the oracle's optimal "
         "set (",
         oracle.optimal_assignments.size(), " assignments)");
  }
  return out;
}

std::vector<std::string> check_pool_against_enumerator(const milp::Model& m) {
  std::vector<std::string> out;
  const MilpOracleResult oracle = solve_milp_exact(m);
  const milp::Pool pool = milp::solve_all_optimal(m);
  if (oracle.status == OracleStatus::kInfeasible) {
    if (pool.status != lp::Status::kInfeasible) {
      fail(out, "oracle says infeasible but the pool returned ",
           lp::to_string(pool.status));
    }
    return out;
  }
  if (pool.status != lp::Status::kOptimal) {
    fail(out, "oracle optimum ", oracle.objective.to_string(),
         " but the pool returned ", lp::to_string(pool.status));
    return out;
  }
  if (pool.truncated) {
    fail(out, "pool truncated on a small instance (",
         pool.solutions.size(), " solutions)");
  }
  if (std::fabs(pool.objective - oracle.objective.to_double()) > kSolverTol) {
    fail(out, "pool objective ", pool.objective,
         " differs from exact optimum ", oracle.objective.to_string());
  }
  const std::vector<int> ints = m.integral_variables();
  std::vector<std::vector<std::int64_t>> got;
  got.reserve(pool.solutions.size());
  for (const std::vector<double>& x : pool.solutions) {
    got.push_back(rounded_assignment(ints, x));
  }
  std::sort(got.begin(), got.end());
  if (std::adjacent_find(got.begin(), got.end()) != got.end()) {
    fail(out, "pool contains duplicate binary assignments");
  }
  std::vector<std::vector<std::int64_t>> want = oracle.optimal_assignments;
  std::sort(want.begin(), want.end());
  if (got != want) {
    fail(out, "pool enumerated ", got.size(),
         " optimal assignments but the oracle found ", want.size(),
         " (sets differ)");
  }
  return out;
}

std::vector<std::string> check_tied_pool_completeness(const milp::Model& m) {
  std::vector<std::string> out = check_pool_against_enumerator(m);
  if (!out.empty()) {
    return out;
  }
  // The set equality above is vacuous if the tie never materialized —
  // assert the construction actually produced alternative optima.
  const milp::Pool pool = milp::solve_all_optimal(m);
  if (pool.status == lp::Status::kOptimal && pool.solutions.size() < 2) {
    fail(out, "tied-cost instance yielded ", pool.solutions.size(),
         " optimum; the generator guarantees at least 2");
  }
  return out;
}

std::vector<std::string> check_alg1_matches_exhaustive(
    const model::Scenario& sc, dse::Evaluator& eval, double pdr_min) {
  std::vector<std::string> out;
  dse::ExplorationOptions opt;
  opt.pdr_min = pdr_min;
  opt.bound = dse::TerminationBound::kSoundFloor;
  const dse::ExplorationResult ex = dse::run_exhaustive(sc, eval, opt);
  eval.reset_counters();  // the cache stays; Algorithm 1 rides it
  const dse::ExplorationResult a1 = dse::run_algorithm1(sc, eval, opt);
  if (ex.feasible != a1.feasible) {
    fail(out, "feasibility disagrees at PDRmin ", pdr_min, ": exhaustive ",
         ex.feasible, ", algorithm1 ", a1.feasible);
    return out;
  }
  if (ex.feasible) {
    if (a1.best_power_mw != ex.best_power_mw) {
      fail(out, "optimal power disagrees at PDRmin ", pdr_min,
           ": exhaustive ", ex.best_power_mw, " mW (",
           ex.best.label(), "), algorithm1 ", a1.best_power_mw, " mW (",
           a1.best.label(), ")");
    }
    if (a1.best_pdr < pdr_min) {
      fail(out, "algorithm1 incumbent PDR ", a1.best_pdr,
           " misses PDRmin ", pdr_min);
    }
  }
  if (a1.simulations > ex.simulations) {
    fail(out, "algorithm1 needed ", a1.simulations,
         " simulations, more than exhaustive's ", ex.simulations);
  }
  return out;
}

std::vector<std::string> check_pdrmin_monotone(
    const model::Scenario& sc, dse::Evaluator& eval,
    const std::vector<double>& pdr_mins) {
  std::vector<std::string> out;
  bool was_infeasible = false;
  double prev_power = 0.0;
  double prev_target = 0.0;
  bool have_prev = false;
  for (const double target : pdr_mins) {
    if (have_prev && target < prev_target) {
      fail(out, "pdr_mins must be ascending");
      return out;
    }
    dse::ExplorationOptions opt;
    opt.pdr_min = target;
    const dse::ExplorationResult res = dse::run_exhaustive(sc, eval, opt);
    if (was_infeasible && res.feasible) {
      fail(out, "feasible at PDRmin ", target,
           " after infeasible at a lower target");
    }
    if (res.feasible) {
      if (have_prev && res.best_power_mw < prev_power - 1e-12) {
        fail(out, "optimal power dropped from ", prev_power, " mW to ",
             res.best_power_mw, " mW when PDRmin rose from ", prev_target,
             " to ", target);
      }
      prev_power = res.best_power_mw;
      prev_target = target;
      have_prev = true;
    } else {
      was_infeasible = true;
    }
  }
  return out;
}

std::vector<std::string> check_power_cuts_monotone(const model::Scenario& sc) {
  std::vector<std::string> out;
  dse::MilpEncoding enc(sc);
  const std::vector<double> levels = enc.achievable_power_levels();
  double prev = -1.0;
  for (int round = 0; round < 5; ++round) {
    const dse::MilpRound r = enc.run_milp();
    if (r.status != lp::Status::kOptimal) {
      break;  // cuts exhausted the grid — monotone by definition
    }
    if (round > 0 && r.power_mw <= prev) {
      fail(out, "round ", round, " optimum ", r.power_mw,
           " mW did not rise above the cut level ", prev, " mW");
    }
    const bool on_grid =
        std::any_of(levels.begin(), levels.end(), [&](double lvl) {
          return std::fabs(lvl - r.power_mw) <= 1e-9 * (1.0 + lvl);
        });
    if (!on_grid) {
      fail(out, "round ", round, " optimum ", r.power_mw,
           " mW is not an achievable power level");
    }
    if (r.candidates.empty()) {
      fail(out, "round ", round, " returned an optimum without candidates");
    }
    prev = r.power_mw;
    enc.add_power_cut_above(r.power_mw);
  }
  return out;
}

std::vector<std::string> check_no_good_cut_monotone(milp::Model m) {
  std::vector<std::string> out;
  const std::vector<int> bins = m.binary_variables();
  if (bins.empty()) return out;
  const bool maximize = m.lp().objective() == lp::Objective::kMaximize;
  milp::Solution prev = milp::solve(m);
  for (int round = 0; round < 3 && prev.status == lp::Status::kOptimal;
       ++round) {
    const std::vector<std::int64_t> cut_pattern =
        rounded_assignment(bins, prev.x);
    std::vector<double> assignment;
    assignment.reserve(bins.size());
    for (int v : bins) {
      assignment.push_back(prev.x[static_cast<std::size_t>(v)]);
    }
    m.add_no_good_cut(bins, assignment);
    const milp::Solution next = milp::solve(m);
    if (next.status == lp::Status::kInfeasible) {
      break;  // the cut emptied the binary space — cannot improve
    }
    if (next.status != lp::Status::kOptimal) {
      fail(out, "solve after no-good cut returned ",
           lp::to_string(next.status));
      break;
    }
    const double gain = maximize ? next.objective - prev.objective
                                 : prev.objective - next.objective;
    if (gain > kSolverTol) {
      fail(out, "objective improved from ", prev.objective, " to ",
           next.objective, " after a no-good cut");
    }
    if (rounded_assignment(bins, next.x) == cut_pattern) {
      fail(out, "solution after a no-good cut repeats the cut assignment");
    }
    prev = next;
  }
  return out;
}

std::vector<std::string> check_thread_determinism(const ScenarioSpec& spec,
                                                  int threads) {
  std::vector<std::string> out;
  const auto run_at = [&](int t) {
    dse::EvaluatorSettings s = spec.settings;
    s.threads = t;
    dse::Evaluator eval(s);
    dse::ExplorationOptions opt;
    opt.pdr_min = 0.8;
    return dse::run_exhaustive(spec.scenario, eval, opt);
  };
  const dse::ExplorationResult serial = run_at(0);
  const dse::ExplorationResult par = run_at(threads);
  if (serial.feasible != par.feasible) {
    fail(out, "feasibility differs at ", threads, " threads");
  }
  if (serial.feasible && serial.best.design_key() != par.best.design_key()) {
    fail(out, "best design differs at ", threads, " threads: ",
         serial.best.label(), " vs ", par.best.label());
  }
  // Exact double comparisons: determinism is bit-identical or broken.
  if (serial.best_power_mw != par.best_power_mw ||
      serial.best_pdr != par.best_pdr || serial.best_nlt_s != par.best_nlt_s) {
    fail(out, "best metrics differ at ", threads, " threads");
  }
  if (serial.simulations != par.simulations) {
    fail(out, "simulation counts differ at ", threads, " threads: ",
         serial.simulations, " vs ", par.simulations);
  }
  if (serial.history.size() != par.history.size()) {
    fail(out, "history lengths differ at ", threads, " threads");
  } else {
    for (std::size_t i = 0; i < serial.history.size(); ++i) {
      const dse::CandidateRecord& a = serial.history[i];
      const dse::CandidateRecord& b = par.history[i];
      if (a.cfg.design_key() != b.cfg.design_key() ||
          a.sim_pdr != b.sim_pdr || a.sim_power_mw != b.sim_power_mw ||
          a.sim_nlt_s != b.sim_nlt_s) {
        fail(out, "history entry ", i, " differs at ", threads, " threads");
        break;
      }
    }
  }
  // exec.* counters describe the scheduling itself (batches, queue
  // depths) and are legitimately thread-dependent; everything else must
  // match exactly.
  std::vector<std::string> counter_diffs =
      diff_counters(serial.metrics, par.metrics, {"exec."});
  out.insert(out.end(), counter_diffs.begin(), counter_diffs.end());
  return out;
}

RobustMilpInstance random_robust_milp(Rng& rng) {
  RobustMilpInstance inst;
  milp::Model& m = inst.model;
  const int nb = static_cast<int>(rng.uniform_int(3, 5));
  for (int v = 0; v < nb; ++v) {
    m.add_binary(dyadic16(rng, 0.0, 2.0));
  }
  m.set_objective(lp::Objective::kMinimize);
  // Forcing at least one selection keeps the all-zero point (on which
  // every Γ agrees trivially) out of the feasible set.
  std::vector<lp::Term> card;
  for (int v = 0; v < nb; ++v) card.push_back(lp::Term{v, 1.0});
  m.add_constraint(std::move(card), lp::Sense::kGreaterEqual,
                   static_cast<double>(rng.uniform_int(1, nb - 1)));
  if (rng.bernoulli(0.5)) {
    m.add_constraint(random_row(rng, nb), random_sense(rng),
                     dyadic16(rng, -2.0, 4.0));
  }
  for (int v = 0; v < nb; ++v) {
    if (rng.bernoulli(0.75)) {
      inst.deviations.push_back(
          milp::DeviationTerm{v, dyadic16(rng, 0.0, 2.0)});
    }
  }
  return inst;
}

std::vector<std::string> check_robust_counterpart(
    const RobustMilpInstance& inst) {
  std::vector<std::string> out;
  const int nb = inst.model.num_variables();
  std::vector<int> bins(static_cast<std::size_t>(nb));
  for (int v = 0; v < nb; ++v) bins[static_cast<std::size_t>(v)] = v;
  double prev = 0.0;
  bool have_prev = false;
  for (const int gamma : {0, 1, 2, nb}) {
    const RobustOracleResult oracle =
        solve_robust_exact(inst.model, inst.deviations, gamma);
    const milp::Model rc =
        milp::robust_counterpart(inst.model, inst.deviations, gamma);
    const milp::Solution sol = milp::solve(rc);
    if (!oracle.feasible) {
      if (sol.status != lp::Status::kInfeasible) {
        fail(out, "gamma ", gamma,
             ": oracle says infeasible but the counterpart returned ",
             lp::to_string(sol.status));
      }
      return out;  // feasibility is Γ-independent; nothing more to sweep
    }
    if (sol.status != lp::Status::kOptimal) {
      fail(out, "gamma ", gamma, ": oracle optimum ",
           oracle.objective.to_string(), " but the counterpart returned ",
           lp::to_string(sol.status));
      continue;
    }
    const double exact = oracle.objective.to_double();
    if (std::fabs(sol.objective - exact) > kSolverTol) {
      fail(out, "gamma ", gamma, ": counterpart objective ", sol.objective,
           " differs from the exact worst-case optimum ",
           oracle.objective.to_string(), " = ", exact);
    }
    // The counterpart appends its auxiliaries AFTER the original
    // binaries, so restricting x to [0, nb) recovers the design.
    const std::vector<std::int64_t> a = rounded_assignment(bins, sol.x);
    if (std::find(oracle.optimal_assignments.begin(),
                  oracle.optimal_assignments.end(),
                  a) == oracle.optimal_assignments.end()) {
      fail(out, "gamma ", gamma,
           ": the counterpart's binary assignment is not in the "
           "enumerator's optimal set (",
           oracle.optimal_assignments.size(), " assignments)");
    }
    if (have_prev && exact < prev - 1e-12) {
      fail(out, "robust optimum dropped from ", prev, " to ", exact,
           " when gamma rose to ", gamma);
    }
    prev = exact;
    have_prev = true;
  }
  return out;
}

std::vector<std::string> check_robust_alg1_matches_exhaustive(
    const model::Scenario& sc, dse::Evaluator& eval, double pdr_min,
    const dse::RobustnessOptions& robust) {
  std::vector<std::string> out;
  dse::ExplorationOptions opt;
  opt.pdr_min = pdr_min;
  opt.bound = dse::TerminationBound::kSoundFloor;
  opt.robust = robust;
  const dse::ExplorationResult ex = dse::run_exhaustive(sc, eval, opt);
  eval.reset_counters();  // caches (all realizations) stay; Alg 1 rides them
  const dse::ExplorationResult a1 = dse::run_algorithm1(sc, eval, opt);
  if (ex.feasible != a1.feasible) {
    fail(out, "robust feasibility disagrees at PDRmin ", pdr_min, ", gamma ",
         robust.gamma, ", K ", robust.realizations, ": exhaustive ",
         ex.feasible, ", algorithm1 ", a1.feasible);
    return out;
  }
  if (ex.feasible) {
    if (a1.best_power_mw != ex.best_power_mw) {
      fail(out, "robust optimal power disagrees at PDRmin ", pdr_min,
           ", gamma ", robust.gamma, ", K ", robust.realizations,
           ": exhaustive ", ex.best_power_mw, " mW (", ex.best.label(),
           "), algorithm1 ", a1.best_power_mw, " mW (", a1.best.label(),
           ")");
    }
    if (a1.best_pdr < pdr_min) {
      fail(out, "algorithm1 worst-case PDR ", a1.best_pdr, " misses PDRmin ",
           pdr_min);
    }
    if (a1.best_protection_mw !=
        model::robust_protection_mw(a1.best, robust.gamma)) {
      fail(out, "algorithm1 incumbent protection ", a1.best_protection_mw,
           " mW does not match the closed form for ", a1.best.label());
    }
  }
  if (a1.simulations > ex.simulations) {
    fail(out, "robust algorithm1 needed ", a1.simulations,
         " simulations, more than exhaustive's ", ex.simulations);
  }
  if (a1.realizations != robust.realizations ||
      ex.realizations != robust.realizations) {
    fail(out, "result realizations (", a1.realizations, ", ",
         ex.realizations, ") do not echo the requested K ",
         robust.realizations);
  }
  return out;
}

std::vector<std::string> check_robust_collapse(const ScenarioSpec& spec) {
  std::vector<std::string> out;
  dse::Evaluator eval(spec.settings);
  // Γ=0, K=1 forced through the robust machinery itself (the explorers
  // would route an inactive option set down the nominal path, which
  // collapses by construction — this checks the aggregation too).
  dse::RobustBatch rb(eval, 0, dse::RobustnessOptions{});
  const std::vector<model::NetworkConfig> configs =
      spec.scenario.feasible_configs();
  if (configs.empty()) {
    fail(out, "scenario has an empty feasible design space");
    return out;
  }
  Rng rng = Rng{spec.seed}.fork("check.robust.collapse");
  const int picks = std::min<int>(4, static_cast<int>(configs.size()));
  for (int i = 0; i < picks; ++i) {
    const model::NetworkConfig& cfg =
        configs[rng.uniform_index(configs.size())];
    const dse::RobustEvaluation rev = rb.evaluate_one(cfg);
    const dse::Evaluation& ev = eval.evaluate(cfg);  // cache hit
    if (rev.worst_pdr != ev.pdr || rev.robust_power_mw != ev.power_mw ||
        rev.worst_nlt_s != ev.nlt_s) {
      fail(out, cfg.label(),
           ": Γ=0/K=1 robust aggregate differs from the plain evaluation");
    }
    if (rev.protection_mw != 0.0) {
      fail(out, cfg.label(), ": Γ=0 protection is ", rev.protection_mw,
           " mW, want exactly 0");
    }
    if (rev.pdr_lo != ev.pdr || rev.pdr_hi != ev.pdr) {
      fail(out, cfg.label(), ": K=1 confidence interval [", rev.pdr_lo,
           ", ", rev.pdr_hi, "] is not degenerate at ", ev.pdr);
    }
  }
  // Encoding collapse: Γ=0 costs are bit-identical to the nominal ones.
  dse::MilpEncoding nominal(spec.scenario);
  dse::MilpEncoding robust0(spec.scenario, 0);
  const dse::MilpRound a = nominal.run_milp();
  const dse::MilpRound b = robust0.run_milp();
  if (a.status != b.status || a.power_mw != b.power_mw ||
      a.candidates.size() != b.candidates.size()) {
    fail(out, "Γ=0 MILP round differs from the nominal encoding's");
  } else {
    for (std::size_t i = 0; i < a.candidates.size(); ++i) {
      if (a.candidates[i].design_key() != b.candidates[i].design_key()) {
        fail(out, "Γ=0 MILP candidate ", i,
             " differs from the nominal encoding's");
        break;
      }
    }
  }
  return out;
}

std::vector<std::string> check_robust_monotone(
    const ScenarioSpec& spec, const std::vector<int>& gammas,
    const std::vector<int>& realizations) {
  std::vector<std::string> out;
  dse::Evaluator eval(spec.settings);
  const auto run = [&](int gamma, int k) {
    dse::ExplorationOptions opt;
    opt.pdr_min = 0.8;
    opt.robust.gamma = gamma;
    opt.robust.realizations = k;
    eval.reset_counters();  // caches persist — later runs are mostly free
    return dse::run_exhaustive(spec.scenario, eval, opt);
  };
  // Γ sweep at the smallest K: feasibility is Γ-independent (protection
  // only shifts the objective) and the optimum is nondecreasing.
  {
    const int k = realizations.empty() ? 1 : realizations.front();
    bool have_prev = false;
    bool prev_feasible = false;
    double prev_power = 0.0;
    int prev_gamma = 0;
    for (const int gamma : gammas) {
      if (have_prev && gamma < prev_gamma) {
        fail(out, "gammas must be ascending");
        return out;
      }
      const dse::ExplorationResult res = run(gamma, k);
      if (have_prev && res.feasible != prev_feasible) {
        fail(out, "feasibility changed from ", prev_feasible, " to ",
             res.feasible, " when gamma rose from ", prev_gamma, " to ",
             gamma, " (protection must not affect feasibility)");
      }
      if (res.feasible && have_prev && prev_feasible &&
          res.best_power_mw < prev_power - 1e-12) {
        fail(out, "robust optimum dropped from ", prev_power, " mW to ",
             res.best_power_mw, " mW when gamma rose from ", prev_gamma,
             " to ", gamma);
      }
      prev_feasible = res.feasible;
      prev_power = res.best_power_mw;
      prev_gamma = gamma;
      have_prev = true;
    }
  }
  // K sweep at the smallest Γ: realization seeds are nested, so a larger
  // K folds a superset of channels — feasibility can only be lost and
  // the optimum can only rise.
  {
    const int gamma = gammas.empty() ? 0 : gammas.front();
    bool have_prev = false;
    bool prev_feasible = false;
    double prev_power = 0.0;
    int prev_k = 0;
    for (const int k : realizations) {
      if (have_prev && k < prev_k) {
        fail(out, "realizations must be ascending");
        return out;
      }
      const dse::ExplorationResult res = run(gamma, k);
      if (have_prev && res.feasible && !prev_feasible) {
        fail(out, "feasible at K=", k, " after infeasible at K=", prev_k,
             " (nested realizations can only add constraints)");
      }
      if (res.feasible && have_prev && prev_feasible &&
          res.best_power_mw < prev_power - 1e-12) {
        fail(out, "robust optimum dropped from ", prev_power, " mW to ",
             res.best_power_mw, " mW when K rose from ", prev_k, " to ", k);
      }
      prev_feasible = res.feasible;
      prev_power = res.best_power_mw;
      prev_k = k;
      have_prev = true;
    }
  }
  return out;
}

std::vector<std::string> check_robust_thread_determinism(
    const ScenarioSpec& spec, int threads,
    const dse::RobustnessOptions& robust) {
  std::vector<std::string> out;
  const auto run_at = [&](int t) {
    dse::EvaluatorSettings s = spec.settings;
    s.threads = t;
    dse::Evaluator eval(s);
    dse::ExplorationOptions opt;
    opt.pdr_min = 0.8;
    opt.robust = robust;
    return dse::run_exhaustive(spec.scenario, eval, opt);
  };
  const dse::ExplorationResult serial = run_at(0);
  const dse::ExplorationResult par = run_at(threads);
  if (serial.feasible != par.feasible) {
    fail(out, "robust feasibility differs at ", threads, " threads");
  }
  if (serial.feasible && serial.best.design_key() != par.best.design_key()) {
    fail(out, "robust best design differs at ", threads, " threads: ",
         serial.best.label(), " vs ", par.best.label());
  }
  // Exact double comparisons: determinism is bit-identical or broken.
  if (serial.best_power_mw != par.best_power_mw ||
      serial.best_pdr != par.best_pdr ||
      serial.best_nlt_s != par.best_nlt_s ||
      serial.best_pdr_lo != par.best_pdr_lo ||
      serial.best_pdr_hi != par.best_pdr_hi ||
      serial.best_protection_mw != par.best_protection_mw) {
    fail(out, "robust best metrics (incl. CI) differ at ", threads,
         " threads");
  }
  if (serial.simulations != par.simulations) {
    fail(out, "simulation counts differ at ", threads, " threads: ",
         serial.simulations, " vs ", par.simulations);
  }
  if (serial.history.size() != par.history.size()) {
    fail(out, "history lengths differ at ", threads, " threads");
  } else {
    for (std::size_t i = 0; i < serial.history.size(); ++i) {
      const dse::CandidateRecord& a = serial.history[i];
      const dse::CandidateRecord& b = par.history[i];
      if (a.cfg.design_key() != b.cfg.design_key() ||
          a.sim_pdr != b.sim_pdr || a.sim_power_mw != b.sim_power_mw ||
          a.sim_nlt_s != b.sim_nlt_s || a.pdr_lo != b.pdr_lo ||
          a.pdr_hi != b.pdr_hi) {
        fail(out, "robust history entry ", i, " differs at ", threads,
             " threads");
        break;
      }
    }
  }
  std::vector<std::string> counter_diffs =
      diff_counters(serial.metrics, par.metrics, {"exec."});
  out.insert(out.end(), counter_diffs.begin(), counter_diffs.end());
  return out;
}

std::vector<std::string> check_robust_encoding_levels(
    const model::Scenario& sc, int gamma) {
  std::vector<std::string> out;
  dse::MilpEncoding enc(sc, gamma);
  double prev = -1.0;
  for (int round = 0; round < 4; ++round) {
    const dse::MilpRound r = enc.run_milp();
    if (r.status != lp::Status::kOptimal) {
      break;  // cuts exhausted the protected grid
    }
    if (round > 0 && r.power_mw <= prev) {
      fail(out, "gamma ", gamma, " round ", round, " optimum ", r.power_mw,
           " mW did not rise above the cut level ", prev, " mW");
    }
    for (const model::NetworkConfig& cfg : r.candidates) {
      const double expected = model::node_power_mw(cfg) +
                              model::robust_protection_mw(cfg, gamma);
      if (std::fabs(expected - r.power_mw) > 1e-9 * (1.0 + expected)) {
        fail(out, "gamma ", gamma, " round ", round, ": candidate ",
             cfg.label(), " protected analytic power ", expected,
             " mW disagrees with the round optimum ", r.power_mw, " mW");
      }
    }
    prev = r.power_mw;
    enc.add_power_cut_above(r.power_mw);
  }
  return out;
}

std::vector<std::string> check_sim_invariants(const ScenarioSpec& spec,
                                              int max_configs) {
  std::vector<std::string> out;
  const std::vector<model::NetworkConfig> configs =
      spec.scenario.feasible_configs();
  if (configs.empty()) {
    fail(out, "scenario has an empty feasible design space");
    return out;
  }
  Rng rng = Rng{spec.seed}.fork("check.invariants");
  const int picks =
      std::min<int>(max_configs, static_cast<int>(configs.size()));
  for (int i = 0; i < picks; ++i) {
    const model::NetworkConfig& cfg =
        configs[rng.uniform_index(configs.size())];
    net::SimParams params = spec.settings.sim;
    params.seed = rng.next_u64();
    const AuditedRun audited =
        audited_simulate(cfg, params, spec.settings.channel);
    for (const std::string& v : audited.violations) {
      fail(out, cfg.label(), ": ", v);
    }
  }
  return out;
}

std::vector<std::string> diff_counters(
    const obs::Snapshot& a, const obs::Snapshot& b,
    const std::vector<std::string>& ignore_prefixes) {
  std::vector<std::string> out;
  const auto ignored = [&](const std::string& name) {
    return std::any_of(ignore_prefixes.begin(), ignore_prefixes.end(),
                       [&](const std::string& p) {
                         return name.compare(0, p.size(), p) == 0;
                       });
  };
  for (const auto& [name, value] : a.counters) {
    if (ignored(name)) continue;
    if (b.counter(name) != value) {
      fail(out, "counter ", name, ": ", value, " vs ", b.counter(name));
    }
  }
  for (const auto& [name, value] : b.counters) {
    if (ignored(name)) continue;
    if (a.counters.find(name) == a.counters.end() && value != 0) {
      fail(out, "counter ", name, ": absent vs ", value);
    }
  }
  return out;
}

}  // namespace hi::check
