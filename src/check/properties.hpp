// hi-opt: the property library — differential and metamorphic checks.
//
// Every check returns a list of human-readable violations (empty = the
// property held), so gtest suites can assert emptiness and the fuzzer
// can aggregate them into a seed report.  Three families:
//
//   differential   the floating-point solvers against the exact rational
//                  oracles: simplex vs vertex enumeration, branch-and-
//                  bound vs integer-box enumeration, and the no-good-cut
//                  solution pool vs the oracle's complete optimum set.
//   metamorphic    known relations between whole DSE runs: Algorithm 1
//                  must land on the exhaustive optimum; raising PDRmin
//                  can never lower the optimal power; a power cut / a
//                  no-good cut can never improve the objective; thread
//                  count must not change any result bit.
//   invariant      audited_simulate (check/invariants.hpp) over sampled
//                  feasible configurations of a scenario.
//
// The random instance generators quantize every coefficient to 1/16
// steps, so Rational::from_double is exact and the oracles' 128-bit
// limbs never overflow on in-scope instances.
#pragma once

#include <string>
#include <vector>

#include "check/scenario_gen.hpp"
#include "common/rng.hpp"
#include "dse/evaluator.hpp"
#include "dse/robustness.hpp"
#include "lp/problem.hpp"
#include "milp/model.hpp"
#include "milp/robust.hpp"
#include "obs/snapshot.hpp"

namespace hi::check {

// --- random instance generators (dyadic coefficients) ------------------

/// A box-bounded LP with 2..max_vars variables and a few random rows
/// (mixed senses).  May be infeasible — that is part of the test space.
[[nodiscard]] lp::Problem random_bounded_lp(Rng& rng, int max_vars = 4);

/// A small MILP mixing binaries, general integers, and bounded
/// continuous variables.
[[nodiscard]] milp::Model random_small_milp(Rng& rng);

/// A pool-friendly MILP: binaries (plus optional continuous variables),
/// no general integers, with coarsely quantized costs so ties — and
/// hence multiple optima — are common.
[[nodiscard]] milp::Model random_pool_milp(Rng& rng);

/// A tied-cost MILP with alternative optima GUARANTEED by construction:
/// 3..5 equal-cost binaries under a symmetric equality cardinality row
/// (every k-subset is feasible and equally priced) plus one zero-cost
/// free binary — the same tie pattern the DSE encoding's MAC bit
/// produces, where the pool must enumerate both settings of a variable
/// the objective never sees.
[[nodiscard]] milp::Model random_tied_pool_milp(Rng& rng);

// --- differential properties (exact oracles) ---------------------------

/// solve_simplex(p) against the rational vertex oracle: same status,
/// matching objective, and a feasible primal point.
[[nodiscard]] std::vector<std::string> check_lp_against_oracle(
    const lp::Problem& p);

/// milp::solve(m) against the rational box oracle: same status, matching
/// objective, and the solver's integral assignment is one of the
/// oracle's optimal assignments.
[[nodiscard]] std::vector<std::string> check_milp_against_oracle(
    const milp::Model& m);

/// milp::solve_all_optimal(m) against the oracle: the pool's set of
/// binary optima must equal the enumerator's complete set exactly.
[[nodiscard]] std::vector<std::string> check_pool_against_enumerator(
    const milp::Model& m);

/// Pool completeness under objective ties: on a tied-cost instance
/// (random_tied_pool_milp) the pool must equal the enumerator's complete
/// optimal set AND that set must have at least two members — a pool that
/// silently drops tied alternatives would starve the frontier sweep of
/// candidates without failing any single-optimum differential.
[[nodiscard]] std::vector<std::string> check_tied_pool_completeness(
    const milp::Model& m);

// --- metamorphic DSE properties ----------------------------------------

/// Algorithm 1 (sound bound) and exhaustive search agree on feasibility
/// and on the optimal power, and Algorithm 1 never simulates more.
/// Runs share `eval`'s cache; counters are reset between runs.
[[nodiscard]] std::vector<std::string> check_alg1_matches_exhaustive(
    const model::Scenario& sc, dse::Evaluator& eval, double pdr_min);

/// Sweeping exhaustive search over ascending PDRmin targets: optimal
/// power is nondecreasing and feasibility is monotone (once infeasible,
/// stays infeasible).
[[nodiscard]] std::vector<std::string> check_pdrmin_monotone(
    const model::Scenario& sc, dse::Evaluator& eval,
    const std::vector<double>& pdr_mins);

/// MilpEncoding power cuts: each add_power_cut_above(optimum) round
/// yields a strictly larger optimum (or infeasibility), and every
/// optimum is one of achievable_power_levels().
[[nodiscard]] std::vector<std::string> check_power_cuts_monotone(
    const model::Scenario& sc);

/// Generic no-good-cut monotonicity on a random MILP: cutting the
/// incumbent binary assignment never improves the objective, and the
/// next solution differs in the binaries.
[[nodiscard]] std::vector<std::string> check_no_good_cut_monotone(
    milp::Model m);

/// Exhaustive search at `threads` workers vs serial: bit-identical
/// ExplorationResult (best point, metrics, history) and equal counter
/// snapshots (exec.* scheduling counters excluded — see DESIGN.md §8).
[[nodiscard]] std::vector<std::string> check_thread_determinism(
    const ScenarioSpec& spec, int threads);

// --- robustness properties ---------------------------------------------

/// A pure-binary minimization MILP plus per-variable objective
/// deviations — exactly the scope milp::robust_counterpart is exact on.
struct RobustMilpInstance {
  milp::Model model;
  std::vector<milp::DeviationTerm> deviations;
};

/// Dyadic random instance: 3..5 binaries, a cardinality row that keeps
/// the all-zero point out (so Γ actually bites), deviations on most
/// variables.  May be infeasible — that is part of the test space.
[[nodiscard]] RobustMilpInstance random_robust_milp(Rng& rng);

/// milp::robust_counterpart vs the brute-force worst-case enumerator
/// (check/robust_oracle) across Γ ∈ {0, 1, 2, all}: matching status and
/// objective, the solver's binary assignment is one of the enumerator's
/// optima, and the robust optimum is nondecreasing in Γ.
[[nodiscard]] std::vector<std::string> check_robust_counterpart(
    const RobustMilpInstance& inst);

/// Robust Algorithm 1 (sound bound) vs robust exhaustive search under
/// the same RobustnessOptions: same feasibility, same robust optimal
/// power, never more simulations.  Runs share `eval`'s caches.
[[nodiscard]] std::vector<std::string> check_robust_alg1_matches_exhaustive(
    const model::Scenario& sc, dse::Evaluator& eval, double pdr_min,
    const dse::RobustnessOptions& robust);

/// Γ = 0, K = 1 collapse: RobustBatch aggregation over sampled feasible
/// configs is bit-identical to the plain evaluator (zero protection,
/// degenerate CI), and the Γ=0 MILP encoding's first round matches the
/// nominal encoding's bit for bit.
[[nodiscard]] std::vector<std::string> check_robust_collapse(
    const ScenarioSpec& spec);

/// Monotonicity of the robust exhaustive optimum: nondecreasing in Γ at
/// fixed K (with Γ-independent feasibility), and nondecreasing in K at
/// fixed Γ (with monotone feasibility — nested realization seeds mean a
/// larger K can only add constraints).  Both lists must be ascending.
[[nodiscard]] std::vector<std::string> check_robust_monotone(
    const ScenarioSpec& spec, const std::vector<int>& gammas,
    const std::vector<int>& realizations);

/// Robust exhaustive search at `threads` workers vs serial:
/// bit-identical result (best point, CI bounds, protection, history,
/// counters; exec.* scheduling counters excluded).
[[nodiscard]] std::vector<std::string> check_robust_thread_determinism(
    const ScenarioSpec& spec, int threads,
    const dse::RobustnessOptions& robust);

/// Γ-protected MilpEncoding: round optima rise strictly under cuts, and
/// every candidate's analytic power + closed-form protection equals the
/// round optimum (the encoding and model::robust_protection_mw agree).
[[nodiscard]] std::vector<std::string> check_robust_encoding_levels(
    const model::Scenario& sc, int gamma);

// --- simulator invariants ----------------------------------------------

/// audited_simulate over up to `max_configs` sampled feasible
/// configurations of the scenario; returns all violations found.
[[nodiscard]] std::vector<std::string> check_sim_invariants(
    const ScenarioSpec& spec, int max_configs = 3);

// --- helpers ------------------------------------------------------------

/// Compares the counters of two snapshots, skipping names that start
/// with any of `ignore_prefixes`; returns one violation per mismatch.
[[nodiscard]] std::vector<std::string> diff_counters(
    const obs::Snapshot& a, const obs::Snapshot& b,
    const std::vector<std::string>& ignore_prefixes);

}  // namespace hi::check
