#include "check/scenario_gen.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "channel/locations.hpp"
#include "common/rng.hpp"

namespace hi::check {

namespace {

/// Full exhaustive sweeps must stay cheap enough to run hundreds of
/// times per fuzz session on one core, so a freshly drawn scenario is
/// auto-shrunk until its feasible design space fits this budget.
constexpr std::size_t kMaxFeasibleConfigs = 48;

/// Applies one shrink step in place; each level removes a strictly
/// positive amount of design space / simulated time but keeps the
/// instance in the same scenario family.
void shrink_once(ScenarioSpec& spec, int level) {
  model::Scenario& sc = spec.scenario;
  switch (level) {
    case 1:
      sc.max_nodes = sc.min_nodes;  // exactly one node per required role
      sc.dependencies.clear();
      if (sc.chip.tx_levels.size() > 2) sc.chip.tx_levels.resize(2);
      break;
    case 2:
      if (sc.coverage.size() > 1) sc.coverage.resize(1);
      sc.min_nodes = 1 + static_cast<int>(sc.coverage.size());
      sc.max_nodes = sc.min_nodes;
      if (sc.chip.tx_levels.size() > 1) sc.chip.tx_levels.resize(1);
      spec.settings.runs = 1;
      break;
    case 3:
      if (!sc.coverage.empty() && sc.coverage[0].locations.size() > 1) {
        sc.coverage[0].locations.resize(1);
      }
      spec.settings.sim.duration_s =
          std::max(0.75, 0.5 * spec.settings.sim.duration_s);
      sc.app.throughput_pps = std::min(sc.app.throughput_pps, 8.0);
      break;
    default:
      break;
  }
}

}  // namespace

ScenarioSpec make_scenario(std::uint64_t seed, int shrink_level) {
  shrink_level = std::clamp(shrink_level, 0, kMaxShrink);
  Rng rng = Rng{seed}.fork("check.scenario");

  ScenarioSpec spec;
  spec.seed = seed;
  spec.shrink_level = shrink_level;
  model::Scenario& sc = spec.scenario;

  // Component library: a synthetic chip in the CC2650's neighbourhood
  // with 2-3 monotone Tx levels (higher output, higher draw).
  sc.chip.name = "fuzz-radio";
  sc.chip.rx_dbm = rng.uniform(-99.0, -92.0);
  sc.chip.rx_mw = rng.uniform(12.0, 22.0);
  sc.chip.tx_levels.clear();
  const int levels = static_cast<int>(rng.uniform_int(2, 3));
  double dbm = rng.uniform(-22.0, -16.0);
  double mw = rng.uniform(8.0, 11.0);
  for (int l = 0; l < levels; ++l) {
    sc.chip.tx_levels.push_back(model::TxLevel{dbm, mw});
    dbm += rng.uniform(6.0, 11.0);
    mw += rng.uniform(3.0, 6.0);
  }

  // Application profile and battery.
  sc.app.packet_bytes = 40 + 20 * static_cast<int>(rng.uniform_int(0, 4));
  sc.app.throughput_pps = static_cast<double>(rng.uniform_int(5, 20));
  sc.app.baseline_mw = rng.uniform(0.05, 0.2);
  sc.battery_j = rng.uniform(1500.0, 3000.0);
  sc.mac_buffer_packets = 4 << rng.uniform_index(3);

  // Coverage groups: 1-2 disjoint at-least-one-of groups of size 1-2,
  // drawn from the nine non-coordinator locations.  The coordinator
  // (location 0) stays required, so every scenario admits the topology
  // {0} + one member per group — the design space is never empty.
  std::vector<int> pool;
  for (int loc = 1; loc < channel::kNumLocations; ++loc) pool.push_back(loc);
  for (std::size_t i = pool.size(); i > 1; --i) {
    std::swap(pool[i - 1], pool[rng.uniform_index(i)]);
  }
  sc.required_locations = {0};
  sc.coordinator = 0;
  sc.coverage.clear();
  std::size_t next = 0;
  const int groups = static_cast<int>(rng.uniform_int(1, 2));
  for (int g = 0; g < groups; ++g) {
    model::CoverageConstraint cov;
    cov.reason = "fuzz coverage group";
    const int size = static_cast<int>(rng.uniform_int(1, 2));
    for (int k = 0; k < size && next < pool.size(); ++k) {
      cov.locations.push_back(pool[next++]);
    }
    sc.coverage.push_back(std::move(cov));
  }
  sc.min_nodes = 1 + groups;
  sc.max_nodes = sc.min_nodes + static_cast<int>(rng.uniform_int(0, 1));
  sc.max_hops = static_cast<int>(rng.uniform_int(2, 3));

  // Optional placement dependency on a location outside every coverage
  // group: it only prunes topologies that spend an extra node there, so
  // the guaranteed minimal topology stays feasible.
  if (rng.bernoulli(0.3) && next + 1 < pool.size()) {
    model::DependencyConstraint dep;
    dep.if_used = pool[next];
    dep.then_used = pool[next + 1];
    dep.reason = "fuzz placement dependency";
    sc.dependencies.push_back(dep);
  }

  // Evaluation settings: short runs, one replication, seeded from the
  // scenario seed so the whole instance replays from (seed, shrink).
  spec.settings.sim.duration_s = 1.25 + 0.25 * rng.uniform_index(4);
  spec.settings.sim.gen_guard_s = 0.25;
  spec.settings.sim.seed = rng.next_u64();
  spec.settings.runs = 1;
  spec.settings.threads = 0;

  // Requested shrink first, then auto-shrink until the exhaustive ground
  // set fits the fuzz budget.  Both are deterministic in (seed, shrink).
  int applied = 0;
  for (; applied < shrink_level; ++applied) shrink_once(spec, applied + 1);
  while (applied < kMaxShrink &&
         sc.feasible_configs().size() > kMaxFeasibleConfigs) {
    shrink_once(spec, ++applied);
  }
  return spec;
}

std::string ScenarioSpec::summary() const {
  std::ostringstream oss;
  oss << "seed=" << seed << " shrink=" << shrink_level << ": "
      << scenario.coverage.size() << " coverage groups, nodes ["
      << scenario.min_nodes << "," << scenario.max_nodes << "], "
      << scenario.chip.tx_levels.size() << " tx levels, "
      << scenario.feasible_configs().size() << " feasible configs, Tsim="
      << settings.sim.duration_s << "s, " << scenario.app.packet_bytes
      << "B @ " << scenario.app.throughput_pps << "pps";
  return oss.str();
}

}  // namespace hi::check
