// hi-opt: the seed-replay fuzzer behind the fuzz_dse binary.
//
// run_fuzz walks a contiguous block of ScenarioGen seeds; for each seed
// it builds the scenario instance and runs a battery of properties
// (check/properties.hpp): the solver-vs-oracle differentials and the
// power-cut monotonicity every time, the simulator invariant audit every
// time, and one of the heavy whole-run metamorphic checks (Algorithm 1
// vs exhaustive + PDRmin monotonicity, or thread determinism) in
// rotation so a fuzz session covers both without doubling its cost.
//
// On a failure the fuzzer re-runs the failing property at increasing
// shrink levels (scenario_gen.hpp) and reports the deepest level that
// still reproduces, together with the exact replay command:
//
//     fuzz_dse --seed <S> --shrink <L> --scenarios 1
//
// Everything is deterministic in (seed, shrink), so the replay is exact.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace hi::check {

/// Fuzzer controls (mirrors the fuzz_dse command line).
struct FuzzOptions {
  std::uint64_t seed = 1;  ///< first scenario seed; seeds are contiguous
  int scenarios = 200;     ///< how many seeds to walk
  int shrink_level = 0;    ///< shrink level applied to every scenario
  int gamma = 1;           ///< Γ for the robust property battery
  int realizations = 2;    ///< K for the robust property battery
  bool verbose = false;    ///< per-seed progress lines
  std::ostream* out = nullptr;  ///< report stream (null = silent)
};

/// One property failure, shrunk to its smallest reproducing instance.
struct FuzzFailure {
  std::uint64_t seed = 0;
  int shrink_level = 0;      ///< deepest level that still reproduces
  std::string property;
  std::vector<std::string> violations;
  std::string scenario_summary;
  std::string replay;        ///< the exact reproduction command
};

/// Session outcome.
struct FuzzReport {
  int scenarios_run = 0;
  std::uint64_t properties_checked = 0;
  std::vector<FuzzFailure> failures;
  [[nodiscard]] bool ok() const { return failures.empty(); }
};

/// Runs the session described by `opt`; see the file comment.
[[nodiscard]] FuzzReport run_fuzz(const FuzzOptions& opt);

}  // namespace hi::check
