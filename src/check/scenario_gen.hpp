// hi-opt: seeded random-but-valid scenario generation for fuzzing.
//
// make_scenario(seed, shrink_level) deterministically samples a
// model::Scenario (component library, placement constraints, application
// profile) and matching dse::EvaluatorSettings from the design space the
// paper draws from: random radio chips (2-3 Tx levels), random packet
// sizes / rates / baselines, random coverage groups over disjoint body
// locations, optional placement dependencies, and a node-count window.
// Construction guarantees a nonempty feasible design space (the required
// coordinator plus one member per coverage group always fits the window)
// and caps the feasible-config count so a full exhaustive sweep stays
// cheap enough to run hundreds of times in the fuzzer.
//
// Shrinking: the same seed at a higher shrink_level yields a strictly
// smaller instance of the same scenario family (all random draws happen
// first, the shrink transform clamps afterwards), so the fuzzer can
// re-test a failing seed at increasing shrink levels and report the
// smallest reproducer.  `fuzz_dse --seed S --shrink L --scenarios 1`
// replays any reported instance exactly.
#pragma once

#include <cstdint>
#include <string>

#include "dse/evaluator.hpp"
#include "model/design_space.hpp"

namespace hi::check {

/// Deepest supported shrink level (0 = unshrunken).
inline constexpr int kMaxShrink = 3;

/// A generated instance: the scenario plus how to evaluate it.
struct ScenarioSpec {
  model::Scenario scenario;
  dse::EvaluatorSettings settings;
  std::uint64_t seed = 0;
  int shrink_level = 0;
  /// One-line description for failure reports.
  [[nodiscard]] std::string summary() const;
};

/// Deterministically samples the instance for (seed, shrink_level); see
/// the file comment.  shrink_level outside [0, kMaxShrink] is clamped.
[[nodiscard]] ScenarioSpec make_scenario(std::uint64_t seed,
                                         int shrink_level = 0);

}  // namespace hi::check
