#include "check/robust_oracle.hpp"

#include <algorithm>
#include <cstddef>

#include "common/assert.hpp"

namespace hi::check {

RobustOracleResult solve_robust_exact(
    const milp::Model& m, const std::vector<milp::DeviationTerm>& devs,
    int gamma, std::uint64_t max_boxes) {
  const lp::Problem& p = m.lp();
  const int nv = p.num_variables();
  HI_REQUIRE(gamma >= 0, "gamma must be >= 0, got " << gamma);
  HI_REQUIRE(p.objective() == lp::Objective::kMinimize,
             "robust oracle requires a minimization model");
  HI_REQUIRE(static_cast<int>(m.binary_variables().size()) == nv,
             "robust oracle requires a pure-binary model");
  HI_REQUIRE(nv < 63, "robust oracle: binary box exceeds 2^62 assignments");
  HI_REQUIRE((std::uint64_t{1} << nv) <= max_boxes,
             "robust oracle: binary box exceeds " << max_boxes
                                                  << " assignments");
  for (const milp::DeviationTerm& t : devs) {
    HI_REQUIRE(t.var >= 0 && t.var < nv,
               "deviation references variable " << t.var << " of " << nv);
    HI_REQUIRE(t.dev >= 0.0, "deviation must be >= 0, got " << t.dev);
  }

  // Exact dense rows and costs.
  struct ExactRow {
    std::vector<Rational> a;
    Rational b;
    lp::Sense sense = lp::Sense::kLessEqual;
  };
  std::vector<ExactRow> rows(static_cast<std::size_t>(p.num_constraints()));
  for (int r = 0; r < p.num_constraints(); ++r) {
    const lp::Constraint& c = p.constraint(r);
    ExactRow& row = rows[static_cast<std::size_t>(r)];
    row.a.assign(static_cast<std::size_t>(nv), Rational{});
    for (const lp::Term& t : c.terms) {
      row.a[static_cast<std::size_t>(t.var)] += Rational::from_double(t.coeff);
    }
    row.b = Rational::from_double(c.rhs);
    row.sense = c.sense;
  }
  std::vector<Rational> cost(static_cast<std::size_t>(nv));
  for (int v = 0; v < nv; ++v) {
    cost[static_cast<std::size_t>(v)] =
        Rational::from_double(p.variable(v).cost);
  }

  const auto sense_holds = [](const Rational& lhs, lp::Sense sense,
                              const Rational& rhs) {
    switch (sense) {
      case lp::Sense::kLessEqual:
        return lhs <= rhs;
      case lp::Sense::kEqual:
        return lhs == rhs;
      case lp::Sense::kGreaterEqual:
        return lhs >= rhs;
    }
    return false;
  };

  RobustOracleResult result;
  std::vector<std::int64_t> assign(static_cast<std::size_t>(nv), 0);
  std::vector<Rational> selected;  // deviations active under this x
  for (;;) {
    ++result.boxes_checked;
    bool feasible = true;
    for (const ExactRow& row : rows) {
      Rational lhs;
      for (int v = 0; v < nv; ++v) {
        if (assign[static_cast<std::size_t>(v)] != 0) {
          lhs += row.a[static_cast<std::size_t>(v)];
        }
      }
      if (!sense_holds(lhs, row.sense, row.b)) {
        feasible = false;
        break;
      }
    }
    if (feasible) {
      Rational obj;
      for (int v = 0; v < nv; ++v) {
        if (assign[static_cast<std::size_t>(v)] != 0) {
          obj += cost[static_cast<std::size_t>(v)];
        }
      }
      // Worst Γ-subset: the Γ largest deviations among the selected.
      selected.clear();
      for (const milp::DeviationTerm& t : devs) {
        if (assign[static_cast<std::size_t>(t.var)] != 0) {
          selected.push_back(Rational::from_double(t.dev));
        }
      }
      std::sort(selected.begin(), selected.end(),
                [](const Rational& a, const Rational& b) { return b < a; });
      const std::size_t take =
          std::min(selected.size(), static_cast<std::size_t>(gamma));
      for (std::size_t j = 0; j < take; ++j) {
        obj += selected[j];
      }
      if (!result.feasible || obj < result.objective) {
        result.feasible = true;
        result.objective = obj;
        result.optimal_assignments.clear();
        result.optimal_assignments.push_back(assign);
      } else if (obj == result.objective) {
        result.optimal_assignments.push_back(assign);
      }
    }
    // Odometer step over {0,1}^nv.
    std::size_t k = 0;
    while (k < assign.size()) {
      if (assign[k] == 0) {
        assign[k] = 1;
        break;
      }
      assign[k] = 0;
      ++k;
    }
    if (k == assign.size()) break;
  }
  return result;
}

}  // namespace hi::check
