#include "check/fuzz.hpp"

#include <exception>
#include <functional>
#include <ostream>
#include <sstream>
#include <utility>

#include "check/properties.hpp"
#include "check/scenario_gen.hpp"
#include "common/rng.hpp"

namespace hi::check {

namespace {

/// One named property over a scenario instance.  The closure must be
/// deterministic in the spec (all randomness derived from spec.seed) so
/// shrink re-runs and seed replay reproduce it exactly.
struct Property {
  const char* name;
  std::function<std::vector<std::string>(const ScenarioSpec&)> run;
};

std::vector<std::string> run_guarded(const Property& prop,
                                     const ScenarioSpec& spec) {
  try {
    return prop.run(spec);
  } catch (const std::exception& e) {
    // An oracle/solver throw inside the fuzz scope is itself a finding.
    return {std::string("unexpected exception: ") + e.what()};
  }
}

std::vector<std::string> solver_differentials(const ScenarioSpec& spec) {
  std::vector<std::string> out;
  Rng rng = Rng{spec.seed}.fork("check.fuzz.solvers");
  for (int i = 0; i < 3; ++i) {
    Rng gen = rng.fork(static_cast<std::uint64_t>(i));
    for (std::string& v : check_lp_against_oracle(random_bounded_lp(gen))) {
      out.push_back("lp[" + std::to_string(i) + "]: " + std::move(v));
    }
  }
  for (int i = 0; i < 2; ++i) {
    Rng gen = rng.fork(static_cast<std::uint64_t>(100 + i));
    for (std::string& v : check_milp_against_oracle(random_small_milp(gen))) {
      out.push_back("milp[" + std::to_string(i) + "]: " + std::move(v));
    }
  }
  {
    Rng gen = rng.fork("pool");
    for (std::string& v :
         check_pool_against_enumerator(random_pool_milp(gen))) {
      out.push_back("pool: " + std::move(v));
    }
  }
  {
    Rng gen = rng.fork("tied_pool");
    for (std::string& v :
         check_tied_pool_completeness(random_tied_pool_milp(gen))) {
      out.push_back("tied_pool: " + std::move(v));
    }
  }
  {
    Rng gen = rng.fork("cut");
    for (std::string& v :
         check_no_good_cut_monotone(random_small_milp(gen))) {
      out.push_back("no_good_cut: " + std::move(v));
    }
  }
  return out;
}

std::vector<std::string> dse_metamorphic(const ScenarioSpec& spec) {
  std::vector<std::string> out;
  dse::Evaluator eval(spec.settings);
  out = check_alg1_matches_exhaustive(spec.scenario, eval, 0.8);
  eval.reset_counters();
  // The sweep rides the exhaustive run's cache, so the extra targets are
  // nearly free.
  std::vector<std::string> mono =
      check_pdrmin_monotone(spec.scenario, eval, {0.3, 0.6, 0.9});
  out.insert(out.end(), mono.begin(), mono.end());
  return out;
}

/// Cheap solver-side robustness checks: the Bertsimas–Sim counterpart
/// differential plus the Γ-protected encoding consistency.
std::vector<std::string> robust_differentials(const ScenarioSpec& spec,
                                              int gamma) {
  std::vector<std::string> out;
  Rng rng = Rng{spec.seed}.fork("check.fuzz.robust");
  for (int i = 0; i < 2; ++i) {
    Rng gen = rng.fork(static_cast<std::uint64_t>(i));
    for (std::string& v : check_robust_counterpart(random_robust_milp(gen))) {
      out.push_back("counterpart[" + std::to_string(i) + "]: " +
                    std::move(v));
    }
  }
  for (std::string& v : check_robust_encoding_levels(spec.scenario, gamma)) {
    out.push_back("encoding: " + std::move(v));
  }
  return out;
}

std::string replay_command(std::uint64_t seed, int shrink, int gamma,
                           int realizations) {
  std::ostringstream oss;
  oss << "fuzz_dse --seed " << seed << " --shrink " << shrink
      << " --scenarios 1 --gamma " << gamma << " --realizations "
      << realizations;
  return oss.str();
}

}  // namespace

FuzzReport run_fuzz(const FuzzOptions& opt) {
  FuzzReport report;
  const dse::RobustnessOptions robust{opt.gamma, opt.realizations, 0.95};
  const std::vector<Property> every_seed = {
      {"solver_differentials", solver_differentials},
      {"power_cuts_monotone",
       [](const ScenarioSpec& s) {
         return check_power_cuts_monotone(s.scenario);
       }},
      {"sim_invariants",
       [](const ScenarioSpec& s) { return check_sim_invariants(s, 2); }},
      {"robust_differentials",
       [&robust](const ScenarioSpec& s) {
         return robust_differentials(s, robust.gamma);
       }},
      {"robust_collapse",
       [](const ScenarioSpec& s) { return check_robust_collapse(s); }},
  };
  const std::vector<Property> rotated = {
      {"alg1_vs_exhaustive+pdrmin_monotone", dse_metamorphic},
      {"thread_determinism",
       [](const ScenarioSpec& s) { return check_thread_determinism(s, 4); }},
      {"robust_alg1_vs_exhaustive",
       [&robust](const ScenarioSpec& s) {
         dse::Evaluator eval(s.settings);
         return check_robust_alg1_matches_exhaustive(s.scenario, eval, 0.8,
                                                     robust);
       }},
      {"robust_monotone+thread_determinism",
       [&robust](const ScenarioSpec& s) {
         std::vector<std::string> out = check_robust_monotone(
             s, {0, robust.gamma}, {1, robust.realizations});
         std::vector<std::string> det =
             check_robust_thread_determinism(s, 4, robust);
         out.insert(out.end(), det.begin(), det.end());
         return out;
       }},
  };

  for (int i = 0; i < opt.scenarios; ++i) {
    const std::uint64_t seed = opt.seed + static_cast<std::uint64_t>(i);
    const ScenarioSpec spec = make_scenario(seed, opt.shrink_level);
    if (opt.verbose && opt.out != nullptr) {
      *opt.out << "[fuzz] " << spec.summary() << "\n";
    }
    std::vector<Property> battery = every_seed;
    battery.push_back(rotated[static_cast<std::size_t>(i) % rotated.size()]);
    for (const Property& prop : battery) {
      ++report.properties_checked;
      std::vector<std::string> violations = run_guarded(prop, spec);
      if (violations.empty()) continue;

      // Shrink: walk deeper levels while the property still fails; the
      // deepest failing level is the smallest reproducer this generator
      // can offer.
      FuzzFailure failure;
      failure.seed = seed;
      failure.shrink_level = spec.shrink_level;
      failure.property = prop.name;
      failure.violations = std::move(violations);
      failure.scenario_summary = spec.summary();
      for (int level = spec.shrink_level + 1; level <= kMaxShrink; ++level) {
        const ScenarioSpec smaller = make_scenario(seed, level);
        std::vector<std::string> again = run_guarded(prop, smaller);
        if (again.empty()) break;
        failure.shrink_level = level;
        failure.violations = std::move(again);
        failure.scenario_summary = smaller.summary();
      }
      failure.replay = replay_command(seed, failure.shrink_level, opt.gamma,
                                      opt.realizations);
      if (opt.out != nullptr) {
        *opt.out << "[fuzz] FAIL " << failure.property << " at seed " << seed
                 << "\n       " << failure.scenario_summary << "\n";
        for (const std::string& v : failure.violations) {
          *opt.out << "       violation: " << v << "\n";
        }
        *opt.out << "       replay: " << failure.replay << "\n";
      }
      report.failures.push_back(std::move(failure));
    }
    ++report.scenarios_run;
  }
  if (opt.out != nullptr) {
    *opt.out << "[fuzz] " << report.scenarios_run << " scenarios, "
             << report.properties_checked << " properties, "
             << report.failures.size() << " failures\n";
  }
  return report;
}

}  // namespace hi::check
