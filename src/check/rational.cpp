#include "check/rational.hpp"

#include <cmath>
#include <ostream>
#include <sstream>

namespace hi::check {

namespace detail {

void throw_overflow(const char* op) {
  throw OverflowError(std::string("check::Rational: 128-bit overflow in '") +
                      op + "'");
}

Limb gcd(Limb a, Limb b) {
  if (a < 0) a = -a;  // |INT128_MIN| cannot appear: normalized values
  if (b < 0) b = -b;  // entered through checked ops stay representable
  while (b != 0) {
    const Limb t = a % b;
    a = b;
    b = t;
  }
  return a;
}

}  // namespace detail

using detail::checked_add;
using detail::checked_mul;
using detail::checked_sub;
using detail::Limb;

Rational::Rational(Limb n, Limb d, bool normalize) : num_(n), den_(d) {
  HI_REQUIRE(den_ != 0, "check::Rational: zero denominator");
  if (normalize) {
    if (den_ < 0) {
      num_ = checked_sub(0, num_);
      den_ = checked_sub(0, den_);
    }
    if (num_ == 0) {
      den_ = 1;
    } else if (const Limb g = detail::gcd(num_, den_); g > 1) {
      num_ /= g;
      den_ /= g;
    }
  }
}

Rational::Rational(std::int64_t n, std::int64_t d)
    : Rational(Limb{n}, Limb{d}, /*normalize=*/true) {}

Rational Rational::from_double(double v) {
  HI_REQUIRE(std::isfinite(v),
             "check::Rational::from_double: non-finite value " << v);
  if (v == 0.0) {
    return Rational{};
  }
  int exp = 0;
  const double m = std::frexp(v, &exp);  // v = m * 2^exp, 0.5 <= |m| < 1
  auto num = static_cast<Limb>(std::llround(std::ldexp(m, 53)));
  exp -= 53;  // v = num * 2^exp with |num| < 2^53
  Limb den = 1;
  if (exp >= 0) {
    if (exp > 70) detail::throw_overflow("from_double shift");
    for (int i = 0; i < exp; ++i) num = checked_mul(num, 2);
  } else {
    if (exp < -120) detail::throw_overflow("from_double shift");
    den = Limb{1} << -exp;
  }
  return Rational(num, den, /*normalize=*/true);
}

double Rational::to_double() const {
  return static_cast<double>(num_) / static_cast<double>(den_);
}

std::string Rational::to_string() const {
  // __int128 has no operator<<; render via chunks of digits.
  const auto render = [](Limb v) {
    if (v == 0) return std::string("0");
    const bool neg = v < 0;
    __extension__ unsigned __int128 u =
        neg ? static_cast<unsigned __int128>(-(v + 1)) + 1
            : static_cast<unsigned __int128>(v);
    std::string s;
    while (u != 0) {
      s.push_back(static_cast<char>('0' + static_cast<int>(u % 10)));
      u /= 10;
    }
    if (neg) s.push_back('-');
    return std::string(s.rbegin(), s.rend());
  };
  if (den_ == 1) {
    return render(num_);
  }
  return render(num_) + "/" + render(den_);
}

Rational Rational::operator-() const {
  return Rational(checked_sub(0, num_), den_, /*normalize=*/false);
}

Rational Rational::operator+(const Rational& o) const {
  // a/b + c/d = (a*(d/g) + c*(b/g)) / (b*(d/g)) with g = gcd(b, d): the
  // reduced-denominator form keeps intermediates as small as possible.
  const Limb g = detail::gcd(den_, o.den_);
  const Limb db = den_ / g;
  const Limb dd = o.den_ / g;
  const Limb n =
      checked_add(checked_mul(num_, dd), checked_mul(o.num_, db));
  return Rational(n, checked_mul(den_, dd), /*normalize=*/true);
}

Rational Rational::operator-(const Rational& o) const { return *this + (-o); }

Rational Rational::operator*(const Rational& o) const {
  // Cross-reduce before multiplying to delay overflow.
  const Limb g1 = detail::gcd(num_, o.den_);
  const Limb g2 = detail::gcd(o.num_, den_);
  return Rational(checked_mul(num_ / g1, o.num_ / g2),
                  checked_mul(den_ / g2, o.den_ / g1), /*normalize=*/false);
}

Rational Rational::operator/(const Rational& o) const {
  HI_REQUIRE(o.num_ != 0, "check::Rational: division by zero");
  return *this * Rational(o.den_, o.num_, /*normalize=*/true);
}

int Rational::compare(const Rational& o) const {
  // Cheap path: different signs decide without multiplying.
  const int sa = sign();
  const int sb = o.sign();
  if (sa != sb) return sa < sb ? -1 : 1;
  const Limb lhs = checked_mul(num_, o.den_);
  const Limb rhs = checked_mul(o.num_, den_);
  return lhs < rhs ? -1 : lhs > rhs ? 1 : 0;
}

std::ostream& operator<<(std::ostream& os, const Rational& r) {
  return os << r.to_string();
}

}  // namespace hi::check
