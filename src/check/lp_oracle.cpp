#include "check/lp_oracle.hpp"

#include <cmath>
#include <cstddef>
#include <utility>

namespace hi::check {

const char* to_string(OracleStatus s) {
  switch (s) {
    case OracleStatus::kOptimal:
      return "optimal";
    case OracleStatus::kInfeasible:
      return "infeasible";
  }
  return "?";
}

namespace {

/// One candidate active hyperplane a'x = b.
struct Hyperplane {
  std::vector<Rational> a;
  Rational b;
};

/// One exact feasibility row a'x (sense) b.
struct ExactRow {
  std::vector<Rational> a;
  Rational b;
  lp::Sense sense = lp::Sense::kLessEqual;
};

/// Solves the n-by-n rational system rows[pick] * x = rhs[pick] by
/// Gauss-Jordan elimination.  Returns false when singular.
bool solve_square(const std::vector<const Hyperplane*>& pick,
                  std::vector<Rational>& x) {
  const int n = static_cast<int>(pick.size());
  // Augmented matrix [A | b].
  std::vector<std::vector<Rational>> m(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    m[static_cast<std::size_t>(r)] = pick[static_cast<std::size_t>(r)]->a;
    m[static_cast<std::size_t>(r)].push_back(
        pick[static_cast<std::size_t>(r)]->b);
  }
  for (int col = 0; col < n; ++col) {
    int piv = -1;
    for (int r = col; r < n; ++r) {
      if (!m[static_cast<std::size_t>(r)][static_cast<std::size_t>(col)]
               .is_zero()) {
        piv = r;
        break;
      }
    }
    if (piv < 0) {
      return false;  // singular: the chosen hyperplanes are dependent
    }
    std::swap(m[static_cast<std::size_t>(col)],
              m[static_cast<std::size_t>(piv)]);
    const Rational inv =
        Rational{1} /
        m[static_cast<std::size_t>(col)][static_cast<std::size_t>(col)];
    for (int j = col; j <= n; ++j) {
      m[static_cast<std::size_t>(col)][static_cast<std::size_t>(j)] *= inv;
    }
    for (int r = 0; r < n; ++r) {
      if (r == col) continue;
      const Rational f =
          m[static_cast<std::size_t>(r)][static_cast<std::size_t>(col)];
      if (f.is_zero()) continue;
      for (int j = col; j <= n; ++j) {
        m[static_cast<std::size_t>(r)][static_cast<std::size_t>(j)] -=
            f * m[static_cast<std::size_t>(col)][static_cast<std::size_t>(j)];
      }
    }
  }
  x.resize(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    x[static_cast<std::size_t>(r)] =
        m[static_cast<std::size_t>(r)][static_cast<std::size_t>(n)];
  }
  return true;
}

/// Binomial coefficient with saturation (scope pre-check only).
std::uint64_t choose_saturating(std::uint64_t h, std::uint64_t n) {
  std::uint64_t r = 1;
  for (std::uint64_t i = 1; i <= n; ++i) {
    if (r > kMaxOracleSystems) return r;  // saturate: caller only compares
    r = r * (h - n + i) / i;
  }
  return r;
}

}  // namespace

LpOracleResult solve_lp_exact(const lp::Problem& p) {
  const int n = p.num_variables();
  HI_REQUIRE(n >= 1 && n <= kMaxOracleVars,
             "lp oracle: " << n << " variables outside [1, " << kMaxOracleVars
                           << "]");

  // Exact feasibility rows: user constraints first, then the box.
  std::vector<ExactRow> rows;
  rows.reserve(static_cast<std::size_t>(p.num_constraints() + 2 * n));
  for (int r = 0; r < p.num_constraints(); ++r) {
    const lp::Constraint& c = p.constraint(r);
    ExactRow row;
    row.a.assign(static_cast<std::size_t>(n), Rational{});
    for (const lp::Term& t : c.terms) {
      row.a[static_cast<std::size_t>(t.var)] += Rational::from_double(t.coeff);
    }
    row.b = Rational::from_double(c.rhs);
    row.sense = c.sense;
    rows.push_back(std::move(row));
  }
  std::vector<Rational> lo(static_cast<std::size_t>(n));
  std::vector<Rational> hi(static_cast<std::size_t>(n));
  std::vector<Rational> cost(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    const lp::Variable& v = p.variable(j);
    HI_REQUIRE(std::isfinite(v.lower) && std::isfinite(v.upper),
               "lp oracle: variable " << j
                                      << " is unbounded; the vertex oracle "
                                         "requires a finite box");
    lo[static_cast<std::size_t>(j)] = Rational::from_double(v.lower);
    hi[static_cast<std::size_t>(j)] = Rational::from_double(v.upper);
    cost[static_cast<std::size_t>(j)] = Rational::from_double(v.cost);
  }

  // Candidate active hyperplanes: every row as an equality, plus the
  // bound faces.  (An equality row is its own hyperplane; inequality
  // rows contribute their boundary.)
  std::vector<Hyperplane> planes;
  planes.reserve(rows.size() + 2 * static_cast<std::size_t>(n));
  for (const ExactRow& r : rows) {
    planes.push_back(Hyperplane{r.a, r.b});
  }
  for (int j = 0; j < n; ++j) {
    Hyperplane lo_face;
    lo_face.a.assign(static_cast<std::size_t>(n), Rational{});
    lo_face.a[static_cast<std::size_t>(j)] = Rational{1};
    lo_face.b = lo[static_cast<std::size_t>(j)];
    planes.push_back(lo_face);
    if (!(lo[static_cast<std::size_t>(j)] == hi[static_cast<std::size_t>(j)])) {
      Hyperplane hi_face = lo_face;
      hi_face.b = hi[static_cast<std::size_t>(j)];
      planes.push_back(std::move(hi_face));
    }
  }

  const std::uint64_t combos =
      choose_saturating(planes.size(), static_cast<std::uint64_t>(n));
  HI_REQUIRE(combos <= kMaxOracleSystems,
             "lp oracle: " << planes.size() << " hyperplanes in " << n
                           << " variables need > " << kMaxOracleSystems
                           << " candidate systems");

  const bool maximize = p.objective() == lp::Objective::kMaximize;
  const auto feasible = [&](const std::vector<Rational>& x) {
    for (int j = 0; j < n; ++j) {
      if (x[static_cast<std::size_t>(j)] < lo[static_cast<std::size_t>(j)] ||
          x[static_cast<std::size_t>(j)] > hi[static_cast<std::size_t>(j)]) {
        return false;
      }
    }
    for (const ExactRow& r : rows) {
      Rational lhs;
      for (int j = 0; j < n; ++j) {
        if (r.a[static_cast<std::size_t>(j)].is_zero()) continue;
        lhs += r.a[static_cast<std::size_t>(j)] * x[static_cast<std::size_t>(j)];
      }
      switch (r.sense) {
        case lp::Sense::kLessEqual:
          if (lhs > r.b) return false;
          break;
        case lp::Sense::kEqual:
          if (lhs != r.b) return false;
          break;
        case lp::Sense::kGreaterEqual:
          if (lhs < r.b) return false;
          break;
      }
    }
    return true;
  };

  LpOracleResult result;
  std::vector<const Hyperplane*> pick(static_cast<std::size_t>(n));
  std::vector<Rational> x;
  bool any = false;
  // Enumerate n-subsets of planes (lexicographic index recursion).
  std::vector<int> idx(static_cast<std::size_t>(n));
  const int h = static_cast<int>(planes.size());
  const auto consider = [&]() {
    for (int k = 0; k < n; ++k) {
      pick[static_cast<std::size_t>(k)] =
          &planes[static_cast<std::size_t>(idx[static_cast<std::size_t>(k)])];
    }
    ++result.systems_solved;
    if (!solve_square(pick, x)) return;
    if (!feasible(x)) return;
    Rational obj;
    for (int j = 0; j < n; ++j) {
      if (cost[static_cast<std::size_t>(j)].is_zero()) continue;
      obj += cost[static_cast<std::size_t>(j)] * x[static_cast<std::size_t>(j)];
    }
    const bool better =
        !any || (maximize ? obj > result.objective : obj < result.objective);
    if (better) {
      any = true;
      result.objective = obj;
      result.x = x;
    }
  };
  // Iterative combination walk.
  for (int k = 0; k < n; ++k) idx[static_cast<std::size_t>(k)] = k;
  if (n <= h) {
    for (;;) {
      consider();
      int k = n - 1;
      while (k >= 0 && idx[static_cast<std::size_t>(k)] == h - n + k) --k;
      if (k < 0) break;
      ++idx[static_cast<std::size_t>(k)];
      for (int j = k + 1; j < n; ++j) {
        idx[static_cast<std::size_t>(j)] = idx[static_cast<std::size_t>(j - 1)] + 1;
      }
    }
  }

  result.status = any ? OracleStatus::kOptimal : OracleStatus::kInfeasible;
  return result;
}

}  // namespace hi::check
