// hi-opt: exact LP oracle — rational vertex enumeration.
//
// For a *box-bounded* lp::Problem (every variable has finite lower and
// upper bounds, so the feasible region is a polytope) the optimum, when
// one exists, is attained at a vertex, and every vertex is the
// intersection of n linearly independent active constraints drawn from
// the rows plus the bound hyperplanes.  The oracle enumerates all
// n-subsets of those hyperplanes, solves each n-by-n system in exact
// rational arithmetic (check::Rational), keeps the feasible solutions,
// and returns the exact optimum — or kInfeasible when no feasible
// vertex exists (a nonempty bounded polytope always has one).
//
// This is O(C(m + 2n, n) * n^3) rational operations: exhaustive, not
// fast.  Scope limits (enforced with hi::ModelError): n <= kMaxVars
// variables and at most kMaxSystems candidate systems.  Within that
// envelope the verdict is *exact* — the differential tests use it as
// ground truth for hi::lp::solve_simplex at n >= 3, generalizing the
// 2-D line-intersection oracle that tests/test_lp_exact.cpp grew up
// with.
#pragma once

#include <cstdint>
#include <vector>

#include "check/rational.hpp"
#include "lp/problem.hpp"

namespace hi::check {

/// Exact verdicts.  Unbounded cannot occur: the oracle requires a
/// bounded box, and rejects problems that do not have one.
enum class OracleStatus { kOptimal, kInfeasible };

[[nodiscard]] const char* to_string(OracleStatus s);

/// Outcome of an exact LP solve.
struct LpOracleResult {
  OracleStatus status = OracleStatus::kInfeasible;
  Rational objective;        ///< exact, in the problem's own sense
  std::vector<Rational> x;   ///< one optimal vertex
  std::uint64_t systems_solved = 0;  ///< n-by-n systems attempted
};

/// Scope limits (see file comment).
inline constexpr int kMaxOracleVars = 6;
inline constexpr std::uint64_t kMaxOracleSystems = 500'000;

/// Solves `p` exactly by vertex enumeration.  Throws hi::ModelError when
/// a variable is unbounded or the instance exceeds the scope limits, and
/// check::OverflowError when the arithmetic outgrows the 128-bit limbs.
[[nodiscard]] LpOracleResult solve_lp_exact(const lp::Problem& p);

}  // namespace hi::check
