// hi-opt: exact Γ-robust oracle — brute-force worst-case enumeration.
//
// The Bertsimas–Sim counterpart (milp::robust_counterpart) claims that
// its single-level LP reformulation computes, for every binary x,
//
//   robust_obj(x) = c·x + (sum of the Γ largest d_j among {j : x_j = 1}).
//
// This oracle computes that definition DIRECTLY: it walks every binary
// assignment (odometer), checks the original rows exactly in rational
// arithmetic, evaluates c·x exactly, and adds the worst Γ-subset of the
// selected deviations by sorting them — no duality, no auxiliary
// variables.  The differential property check_robust_counterpart then
// demands that the counterpart's MILP optimum equals this ground truth
// on random dyadic instances.
//
// Scope: pure-binary minimization models only (that is what the
// counterpart is exact for), at most `max_boxes` assignments.
#pragma once

#include <cstdint>
#include <vector>

#include "check/rational.hpp"
#include "milp/model.hpp"
#include "milp/robust.hpp"

namespace hi::check {

/// Outcome of an exact robust solve.
struct RobustOracleResult {
  bool feasible = false;
  Rational objective;  ///< exact worst-case minimum
  /// Every optimal binary assignment, in m.binary_variables() order,
  /// in odometer order.
  std::vector<std::vector<std::int64_t>> optimal_assignments;
  std::uint64_t boxes_checked = 0;
};

/// Solves min_x robust_obj(x) over the feasible binary assignments of
/// `m` by direct enumeration.  Requires: `m` minimizes, every variable
/// of `m` is binary, every deviation references a variable of `m` with
/// dev >= 0, gamma >= 0.  Throws hi::ModelError outside that scope or
/// when the box exceeds `max_boxes`.
[[nodiscard]] RobustOracleResult solve_robust_exact(
    const milp::Model& m, const std::vector<milp::DeviationTerm>& devs,
    int gamma, std::uint64_t max_boxes = 1u << 20);

}  // namespace hi::check
