#include "check/milp_oracle.hpp"

#include <cmath>
#include <cstddef>
#include <utility>

namespace hi::check {

namespace {

/// Exact row view shared by both the pure-integer check and the
/// mixed-model reduction.
struct ExactRow {
  std::vector<Rational> a;  ///< dense over all model variables
  Rational b;
  lp::Sense sense = lp::Sense::kLessEqual;
};

bool sense_holds(const Rational& lhs, lp::Sense sense, const Rational& rhs) {
  switch (sense) {
    case lp::Sense::kLessEqual:
      return lhs <= rhs;
    case lp::Sense::kEqual:
      return lhs == rhs;
    case lp::Sense::kGreaterEqual:
      return lhs >= rhs;
  }
  return false;
}

}  // namespace

MilpOracleResult solve_milp_exact(const milp::Model& m,
                                  std::uint64_t max_boxes) {
  const lp::Problem& p = m.lp();
  const int nv = p.num_variables();
  const std::vector<int> ints = m.integral_variables();
  std::vector<bool> is_int(static_cast<std::size_t>(nv), false);
  for (int v : ints) is_int[static_cast<std::size_t>(v)] = true;
  std::vector<int> conts;
  for (int v = 0; v < nv; ++v) {
    if (!is_int[static_cast<std::size_t>(v)]) conts.push_back(v);
  }

  // Integer ranges; the box size gates the whole enumeration.
  std::vector<std::int64_t> lo(ints.size());
  std::vector<std::int64_t> hi(ints.size());
  std::uint64_t boxes = 1;
  for (std::size_t k = 0; k < ints.size(); ++k) {
    const lp::Variable& v = p.variable(ints[k]);
    HI_REQUIRE(std::isfinite(v.lower) && std::isfinite(v.upper),
               "milp oracle: integral variable " << ints[k]
                                                 << " is unbounded");
    lo[k] = static_cast<std::int64_t>(std::ceil(v.lower - 1e-9));
    hi[k] = static_cast<std::int64_t>(std::floor(v.upper + 1e-9));
    if (lo[k] > hi[k]) {
      return MilpOracleResult{};  // empty box: trivially infeasible
    }
    const std::uint64_t width = static_cast<std::uint64_t>(hi[k] - lo[k]) + 1;
    HI_REQUIRE(boxes <= max_boxes / width,
               "milp oracle: integer box exceeds " << max_boxes
                                                   << " assignments");
    boxes *= width;
  }

  // Exact rows and costs over the full variable set.
  std::vector<ExactRow> rows(static_cast<std::size_t>(p.num_constraints()));
  for (int r = 0; r < p.num_constraints(); ++r) {
    const lp::Constraint& c = p.constraint(r);
    ExactRow& row = rows[static_cast<std::size_t>(r)];
    row.a.assign(static_cast<std::size_t>(nv), Rational{});
    for (const lp::Term& t : c.terms) {
      row.a[static_cast<std::size_t>(t.var)] += Rational::from_double(t.coeff);
    }
    row.b = Rational::from_double(c.rhs);
    row.sense = c.sense;
  }
  std::vector<Rational> cost(static_cast<std::size_t>(nv));
  for (int v = 0; v < nv; ++v) {
    cost[static_cast<std::size_t>(v)] =
        Rational::from_double(p.variable(v).cost);
  }
  const bool maximize = p.objective() == lp::Objective::kMaximize;

  MilpOracleResult result;
  bool any = false;
  std::vector<std::int64_t> assign(ints.size());
  for (std::size_t k = 0; k < ints.size(); ++k) assign[k] = lo[k];

  const auto consider = [&]() {
    ++result.boxes_checked;
    // Integer-part contributions.
    Rational obj_int;
    for (std::size_t k = 0; k < ints.size(); ++k) {
      obj_int += cost[static_cast<std::size_t>(ints[k])] *
                 Rational{assign[k]};
    }
    Rational obj;
    if (conts.empty()) {
      for (const ExactRow& row : rows) {
        Rational lhs;
        for (std::size_t k = 0; k < ints.size(); ++k) {
          lhs += row.a[static_cast<std::size_t>(ints[k])] * Rational{assign[k]};
        }
        if (!sense_holds(lhs, row.sense, row.b)) {
          return;
        }
      }
      obj = obj_int;
    } else {
      // Reduce to an LP over the continuous variables: substitute the
      // integer assignment into every row's rhs and re-solve exactly.
      lp::Problem sub;
      for (int v : conts) {
        const lp::Variable& var = p.variable(v);
        sub.add_variable(var.lower, var.upper, var.cost);
      }
      sub.set_objective(p.objective());
      std::vector<int> cont_index(static_cast<std::size_t>(nv), -1);
      for (std::size_t c = 0; c < conts.size(); ++c) {
        cont_index[static_cast<std::size_t>(conts[c])] = static_cast<int>(c);
      }
      for (int r = 0; r < p.num_constraints(); ++r) {
        const lp::Constraint& c = p.constraint(r);
        Rational fixed;
        std::vector<lp::Term> terms;
        for (const lp::Term& t : c.terms) {
          if (is_int[static_cast<std::size_t>(t.var)]) {
            // The assignment values and the double coefficients are both
            // exact; accumulate the fixed part rationally and push it to
            // the rhs.  rhs' = rhs - fixed must stay a representable
            // double for the sub-problem — guaranteed for the small
            // integer instances inside the oracle scope.
            std::size_t k = 0;
            while (ints[k] != t.var) ++k;
            fixed += Rational::from_double(t.coeff) * Rational{assign[k]};
          } else {
            terms.push_back(
                lp::Term{cont_index[static_cast<std::size_t>(t.var)], t.coeff});
          }
        }
        const Rational rhs = Rational::from_double(c.rhs) - fixed;
        sub.add_constraint(std::move(terms), c.sense, rhs.to_double());
      }
      const LpOracleResult sub_result = solve_lp_exact(sub);
      if (sub_result.status != OracleStatus::kOptimal) {
        return;
      }
      obj = obj_int + sub_result.objective;
    }
    if (!any || (maximize ? obj > result.objective : obj < result.objective)) {
      any = true;
      result.objective = obj;
      result.optimal_assignments.clear();
      result.optimal_assignments.push_back(assign);
    } else if (obj == result.objective) {
      result.optimal_assignments.push_back(assign);
    }
  };

  if (ints.empty()) {
    consider();
  } else {
    for (;;) {
      consider();
      // Odometer step.
      std::size_t k = 0;
      while (k < ints.size()) {
        if (assign[k] < hi[k]) {
          ++assign[k];
          break;
        }
        assign[k] = lo[k];
        ++k;
      }
      if (k == ints.size()) break;
    }
  }

  result.status = any ? OracleStatus::kOptimal : OracleStatus::kInfeasible;
  if (!any) {
    result.optimal_assignments.clear();
  }
  return result;
}

}  // namespace hi::check
