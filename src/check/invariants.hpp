// hi-opt: simulator invariant auditing through the hi::obs plane.
//
// audited_simulate() runs the *real* net::simulate with a
// MemoryTraceSink and a MetricsRegistry attached — the same hooks every
// production run can use — and then cross-examines the three views of
// the run (SimResult, metric counters, trace stream) against each other
// and against conservation laws.  There is no parallel "checked
// simulator": a violation means the shipping code path broke.
//
// Invariant inventory (see DESIGN.md §9 for the contract):
//   conservation   every MAC send is a radio transmission is a medium
//                  transmission (three equal counters); each transmission
//                  is offered to, or below sensitivity of, every other
//                  node; decode outcomes never exceed offers; packets
//                  handed to the app never exceed packets originated;
//                  sends + drops never exceed enqueues.
//   reliability    per-node and network PDR lie in [0, 1]; the network
//                  PDR is the mean of the per-node PDRs.
//   energy/power   per-node tx/rx energies are nonnegative (energy is a
//                  monotone sum of nonnegative airtime charges; the trace
//                  exposes the per-transmission airtimes, all positive);
//                  node power equals baseline + energy / duration; the
//                  worst lifetime-relevant power and the Eq. (4) lifetime
//                  are recomputed and must match.
//   DES ordering   trace timestamps are nondecreasing and within
//                  [0, duration]; the kernel summary (events, cancels,
//                  heap high-water) agrees with the des.* metrics.
//   trace/counter  per-kind trace event counts equal the corresponding
//                  net.* counters (tx, rx_ok, buffer drops, backoffs),
//                  and the per-node summary records appear exactly once.
#pragma once

#include <string>
#include <vector>

#include "model/config.hpp"
#include "net/network.hpp"
#include "obs/snapshot.hpp"
#include "obs/trace.hpp"

namespace hi::check {

/// One simulation run plus everything the auditor looked at.
struct AuditedRun {
  net::SimResult result;
  obs::Snapshot metrics;               ///< the run's counter snapshot
  std::vector<obs::TraceEvent> trace;  ///< full event stream
  std::vector<std::string> violations; ///< empty = all invariants hold
};

/// Runs one net::simulate of `cfg` with tracing + metrics attached and
/// audits it.  `params.metrics` / `params.trace` are overridden; the
/// channel comes from `make_channel(params.channel_seed or params.seed)`
/// like a simulate_averaged replication would.
[[nodiscard]] AuditedRun audited_simulate(
    const model::NetworkConfig& cfg, net::SimParams params,
    const net::ChannelFactory& make_channel = net::default_channel_factory());

/// The audit itself, exposed so tests can feed tampered inputs and prove
/// the auditor catches what it claims to catch.  Expects the views of a
/// *single* run (metrics must be the run's own snapshot).
[[nodiscard]] std::vector<std::string> audit_run(
    const model::NetworkConfig& cfg, const net::SimParams& params,
    const net::SimResult& res, const obs::Snapshot& metrics,
    const std::vector<obs::TraceEvent>& trace);

}  // namespace hi::check
