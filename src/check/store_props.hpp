// hi-opt: durability properties for hi::store (DESIGN.md §10).
//
// Three checks, same contract as properties.hpp (a list of violations;
// empty = the property held):
//
//   round-trip     scenario → JSON → scenario is a fingerprint-preserving
//                  fixed point, so a campaign definition on disk denotes
//                  the same design space forever.
//   warm start     a store-warmed Algorithm 1 run is bit-identical to the
//                  cold run that populated the store — optima, history,
//                  milp.* counters — except for the documented accounting
//                  shift: dse.simulations(warm) + dse.store_hits(warm)
//                  == dse.simulations(cold).  Checked at a caller-chosen
//                  thread count, because the store layering must not
//                  disturb the thread-determinism guarantee either.
//   recovery       random corruption (truncation, bit flips, garbage
//                  tails) of a populated store file must never crash the
//                  reader, never surface an evaluation that differs from
//                  what was stored, and always leave a compactable file
//                  that audits clean afterwards.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/scenario_gen.hpp"
#include "model/design_space.hpp"

namespace hi::check {

/// scenario_to_json / scenario_from_json round-trip: parse succeeds, the
/// scenario fingerprint survives, and serialize-of-parse is a fixed
/// point (reason strings are cosmetic and excluded by contract).
[[nodiscard]] std::vector<std::string> check_scenario_roundtrip(
    const model::Scenario& sc);

/// Cold vs store-warmed Algorithm 1 on `spec` at `threads` workers; see
/// the file comment.  Creates (and overwrites) the store at
/// `store_path`; the caller owns cleanup.
[[nodiscard]] std::vector<std::string> check_warm_start_determinism(
    const ScenarioSpec& spec, const std::string& store_path, int threads);

/// Builds a store of fabricated evaluations for the generator scenario
/// of `seed`, then runs `trials` random corruption rounds against copies
/// under `scratch_dir` (created files are removed on success); see the
/// file comment for the properties enforced.
[[nodiscard]] std::vector<std::string> check_store_recovery(
    std::uint64_t seed, const std::string& scratch_dir, int trials = 8);

}  // namespace hi::check
