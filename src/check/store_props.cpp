#include "check/store_props.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "check/properties.hpp"
#include "common/assert.hpp"
#include "common/rng.hpp"
#include "dse/explorer.hpp"
#include "store/serialize.hpp"
#include "store/store.hpp"

namespace hi::check {

namespace {

template <typename... Parts>
void fail(std::vector<std::string>& out, Parts&&... parts) {
  std::ostringstream oss;
  (oss << ... << parts);
  out.push_back(oss.str());
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

void write_file(const std::string& path, std::string_view data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

/// Canonical byte form of an evaluation — "bit-identical" made testable.
std::string eval_bytes(const dse::Evaluation& ev) {
  store::ByteWriter w;
  store::write_evaluation(w, ev);
  return w.take();
}

}  // namespace

std::vector<std::string> check_scenario_roundtrip(const model::Scenario& sc) {
  std::vector<std::string> out;
  const store::Digest fp = store::scenario_fingerprint(sc);
  const std::string json = store::scenario_to_json(sc);
  std::string err;
  const auto parsed = store::scenario_from_json(json, &err);
  if (!parsed) {
    fail(out, "scenario JSON failed to parse back: ", err);
    return out;
  }
  if (store::scenario_fingerprint(*parsed) != fp) {
    fail(out, "scenario fingerprint changed across the JSON round-trip");
  }
  // Parse → serialize → parse must be a fixed point (the first trip may
  // legitimately drop cosmetic reason strings; after that, nothing may
  // change).
  const std::string json2 = store::scenario_to_json(*parsed);
  const auto parsed2 = store::scenario_from_json(json2, &err);
  if (!parsed2) {
    fail(out, "re-serialized scenario JSON failed to parse: ", err);
    return out;
  }
  if (store::scenario_to_json(*parsed2) != json2) {
    fail(out, "scenario JSON is not a fixed point under parse/serialize");
  }
  if (store::scenario_fingerprint(*parsed2) != fp) {
    fail(out, "scenario fingerprint changed on the second round-trip");
  }
  return out;
}

std::vector<std::string> check_warm_start_determinism(
    const ScenarioSpec& spec, const std::string& store_path, int threads) {
  std::vector<std::string> out;
  std::remove(store_path.c_str());
  dse::ExplorationOptions opt;
  opt.pdr_min = 0.8;
  opt.threads = threads;

  // Cold run, write-through into a fresh store.
  dse::ExplorationResult cold;
  std::size_t stored = 0;
  {
    store::EvalStore st(store_path, {});
    dse::Evaluator eval(spec.settings);
    const store::WarmStartStats warm = store::warm_start(eval, st);
    if (warm.preloaded != 0) {
      fail(out, "fresh store preloaded ", warm.preloaded, " evaluations");
    }
    cold = dse::run_algorithm1(spec.scenario, eval, opt);
    if (cold.metrics.counter("dse.store_hits") != 0) {
      fail(out, "cold run reported ", cold.metrics.counter("dse.store_hits"),
           " store hits");
    }
    stored = st.eval_count();
  }
  if (stored != cold.simulations) {
    fail(out, "write-through stored ", stored, " evaluations but the cold run",
         " simulated ", cold.simulations);
  }

  // Warmed run: a fresh evaluator (a new process, morally) preloaded
  // from the store the cold run left behind.
  dse::ExplorationResult warm;
  {
    store::EvalStore st(store_path, {});
    if (!st.recovery().clean()) {
      fail(out, "store written by the cold run did not recover clean");
    }
    dse::Evaluator eval(spec.settings);
    const store::WarmStartStats ws = store::warm_start(eval, st);
    if (ws.preloaded != stored) {
      fail(out, "preloaded ", ws.preloaded, " of ", stored,
           " stored evaluations");
    }
    warm = dse::run_algorithm1(spec.scenario, eval, opt);
    if (st.eval_count() != stored) {
      fail(out, "warmed run grew the store: ", stored, " -> ",
           st.eval_count(), " evaluations (write-through re-announced a",
           " preloaded point)");
    }
  }

  // Bit-identical outcome.  Exact double comparisons throughout:
  // determinism is bit-identical or broken.
  if (cold.feasible != warm.feasible) {
    fail(out, "feasibility differs warm vs cold");
  }
  if (cold.feasible && cold.best.design_key() != warm.best.design_key()) {
    fail(out, "best design differs warm vs cold: ", cold.best.label(),
         " vs ", warm.best.label());
  }
  if (cold.best_power_mw != warm.best_power_mw ||
      cold.best_pdr != warm.best_pdr || cold.best_nlt_s != warm.best_nlt_s) {
    fail(out, "best metrics differ warm vs cold");
  }
  if (cold.iterations != warm.iterations) {
    fail(out, "iteration counts differ warm vs cold: ", cold.iterations,
         " vs ", warm.iterations);
  }
  if (cold.milp_bnb_nodes != warm.milp_bnb_nodes) {
    fail(out, "milp_bnb_nodes differ warm vs cold");
  }
  if (cold.history.size() != warm.history.size()) {
    fail(out, "history lengths differ warm vs cold: ", cold.history.size(),
         " vs ", warm.history.size());
  } else {
    for (std::size_t i = 0; i < cold.history.size(); ++i) {
      const dse::CandidateRecord& a = cold.history[i];
      const dse::CandidateRecord& b = warm.history[i];
      if (a.cfg.design_key() != b.cfg.design_key() || a.sim_pdr != b.sim_pdr ||
          a.sim_power_mw != b.sim_power_mw || a.sim_nlt_s != b.sim_nlt_s) {
        fail(out, "history entry ", i, " differs warm vs cold");
        break;
      }
    }
  }

  // The accounting shift — and nothing but the accounting shift.
  const std::uint64_t hits = warm.metrics.counter("dse.store_hits");
  if (warm.simulations + hits != cold.simulations) {
    fail(out, "accounting broken: warm simulations (", warm.simulations,
         ") + store hits (", hits, ") != cold simulations (",
         cold.simulations, ")");
  }
  if (warm.simulations != 0) {
    fail(out, "warmed replay of an identical run paid for ",
         warm.simulations, " fresh simulations");
  }
  // net.* / des.* scale with the simulations actually executed and
  // exec.* with scheduling; everything else (milp.*, dse.cache_hits, …)
  // must match exactly.
  std::vector<std::string> diffs =
      diff_counters(cold.metrics, warm.metrics,
                    {"net.", "des.", "exec.", "dse.simulations",
                     "dse.store_hits"});
  out.insert(out.end(), diffs.begin(), diffs.end());
  return out;
}

std::vector<std::string> check_store_recovery(std::uint64_t seed,
                                              const std::string& scratch_dir,
                                              int trials) {
  std::vector<std::string> out;
  Rng rng = Rng{seed}.fork("check.store.recovery");
  const ScenarioSpec spec = make_scenario(seed, /*shrink_level=*/2);
  const store::Digest fp =
      store::settings_fingerprint(spec.settings, "default");

  // Fabricate a store: real configs, synthetic evaluation values (the
  // recovery machinery never interprets them, it only frames bytes).
  std::vector<std::pair<model::NetworkConfig, dse::Evaluation>> originals;
  {
    const std::vector<model::NetworkConfig> configs =
        spec.scenario.feasible_configs();
    if (configs.empty()) {
      fail(out, "scenario has an empty feasible design space");
      return out;
    }
    const std::size_t n = std::min<std::size_t>(configs.size(), 12);
    for (std::size_t i = 0; i < n; ++i) {
      dse::Evaluation ev;
      ev.pdr = rng.uniform();
      ev.power_mw = rng.uniform(0.1, 20.0);
      ev.nlt_s = rng.uniform(1e3, 1e7);
      originals.emplace_back(configs[i], ev);
    }
  }
  // The pid keeps concurrent fuzzers (ctest -j runs the smoke and
  // extended sweeps side by side) off each other's scratch files.
  const std::string base_path = scratch_dir + "/recovery-" +
                                std::to_string(::getpid()) + "-" +
                                std::to_string(seed) + ".store";
  std::remove(base_path.c_str());
  {
    store::EvalStore st(base_path, {});
    for (const auto& [cfg, ev] : originals) {
      st.put(fp, cfg, ev);
    }
    store::CellKey key{store::scenario_fingerprint(spec.scenario), fp,
                       store::Digest{}, 0.9};
    store::CellResult res;
    res.feasible = true;
    res.best = originals.front().first;
    st.put_cell(key, res);
  }
  const std::string base = read_file(base_path);
  constexpr std::size_t kFileHeader = 12;  // magic + format version
  if (base.size() <= kFileHeader) {
    fail(out, "fabricated store is implausibly small: ", base.size(),
         " bytes");
    return out;
  }

  const std::string trial_path = base_path + ".trial";
  for (int t = 0; t < trials; ++t) {
    std::string hurt = base;
    const int mode = static_cast<int>(rng.uniform_index(4));
    std::string what;
    bool header_damage = false;
    if (mode == 0) {  // torn write: cut anywhere after the file header
      const std::size_t cut =
          kFileHeader + 1 +
          rng.uniform_index(hurt.size() - kFileHeader - 1);
      hurt.resize(cut);
      what = "truncate@" + std::to_string(cut);
    } else if (mode == 1) {  // bit flip in the record region
      const std::size_t at =
          kFileHeader + rng.uniform_index(hurt.size() - kFileHeader);
      hurt[at] = static_cast<char>(
          hurt[at] ^ static_cast<char>(1u << rng.uniform_index(8)));
      what = "bitflip@" + std::to_string(at);
    } else if (mode == 2) {  // bit flip anywhere, file header included
      const std::size_t at = rng.uniform_index(hurt.size());
      header_damage = at < kFileHeader;
      hurt[at] = static_cast<char>(
          hurt[at] ^ static_cast<char>(1u << rng.uniform_index(8)));
      what = "headerflip@" + std::to_string(at);
    } else {  // garbage tail (a torn append of noise)
      const std::size_t extra = 1 + rng.uniform_index(64);
      for (std::size_t i = 0; i < extra; ++i) {
        hurt.push_back(static_cast<char>(rng.uniform_index(256)));
      }
      what = "garbage+" + std::to_string(extra);
    }
    write_file(trial_path, hurt);

    try {
      obs::MetricsRegistry metrics;
      store::StoreOptions opt;
      opt.metrics = &metrics;
      store::EvalStore st(trial_path, opt);
      const store::RecoveryStats& rec = st.recovery();
      if (st.eval_count() > originals.size()) {
        fail(out, what, ": recovery invented evaluations (",
             st.eval_count(), " > ", originals.size(), ")");
      }
      for (const auto& [cfg, ev] : originals) {
        const dse::Evaluation* got = st.find(fp, cfg);
        if (got != nullptr && eval_bytes(*got) != eval_bytes(ev)) {
          fail(out, what, ": recovered evaluation for ", cfg.label(),
               " differs from what was stored");
        }
      }
      const std::uint64_t dropped =
          metrics.snapshot().counter("store.corrupt_dropped");
      if (dropped != rec.corrupt_dropped) {
        fail(out, what, ": store.corrupt_dropped counter (", dropped,
             ") != recovery stats (", rec.corrupt_dropped, ")");
      }
      // The write-mode open truncated tail damage; a compaction pass
      // must flush the rest and leave a byte-clean file.
      const std::size_t live = st.eval_count() + st.cell_count();
      const auto cstats = store::EvalStore::compact(trial_path);
      if (cstats.records_after != live) {
        fail(out, what, ": compaction kept ", cstats.records_after,
             " records, expected ", live);
      }
      const store::RecoveryStats audit = store::EvalStore::audit(trial_path);
      if (!audit.clean() || audit.records != live) {
        fail(out, what, ": compacted store does not audit clean");
      }
    } catch (const Error& e) {
      // Refusing a damaged *file header* is the documented behaviour;
      // anything else must recover, not throw.
      if (!header_damage) {
        fail(out, what, ": open threw: ", e.what());
      }
    }
  }
  if (out.empty()) {
    std::remove(trial_path.c_str());
    std::remove(base_path.c_str());
  }
  return out;
}

}  // namespace hi::check
