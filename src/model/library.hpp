// hi-opt: the component library the mapping problem draws from
// (platform-based design, Sec. 2): radio chips with their selectable Tx
// power levels, and the MAC / routing protocol options implemented by the
// simulator.
#pragma once

#include <string>
#include <vector>

#include "model/config.hpp"

namespace hi::model {

/// One selectable transmitter power level of a radio chip.
struct TxLevel {
  double dbm = 0.0;  ///< output power
  double mw = 0.0;   ///< transmitter power consumption at this level
};

/// A radio chip datasheet entry.
struct RadioChip {
  std::string name;
  double fc_hz = 2.4e9;
  double bit_rate_bps = 1.024e6;
  double rx_dbm = -97.0;  ///< receiver sensitivity
  double rx_mw = 17.7;    ///< receiver power consumption
  std::vector<TxLevel> tx_levels;

  /// Radio configuration with Tx level `index` selected.
  [[nodiscard]] RadioConfig configure(int index) const;

  /// Number of selectable Tx levels.
  [[nodiscard]] int num_tx_levels() const {
    return static_cast<int>(tx_levels.size());
  }
};

/// The TI CC2650 used in the design example (paper Table 1):
/// fc = 2.4 GHz, BR = 1024 kbps, Rx: -97 dBm @ 17.7 mW,
/// Tx levels: (-20 dBm, 9.55 mW), (-10 dBm, 11.56 mW), (0 dBm, 18.3 mW).
[[nodiscard]] const RadioChip& cc2650();

}  // namespace hi::model
