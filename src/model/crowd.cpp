#include "model/crowd.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace hi::model {

int CrowdScenario::effective_cols() const {
  if (cols > 0) {
    return cols;
  }
  return static_cast<int>(
      std::ceil(std::sqrt(static_cast<double>(bodies))));
}

std::vector<BodyPlacement> CrowdScenario::positions() const {
  if (!placement.empty()) {
    return placement;
  }
  const int c = effective_cols();
  std::vector<BodyPlacement> out;
  out.reserve(static_cast<std::size_t>(bodies));
  for (int b = 0; b < bodies; ++b) {
    out.push_back(BodyPlacement{spacing_m * (b % c), spacing_m * (b / c)});
  }
  return out;
}

void CrowdScenario::validate() const {
  HI_REQUIRE(bodies >= 1, "crowd scenario: need at least one body");
  HI_REQUIRE(bodies <= 64,
             "crowd scenario: at most 64 bodies (store row limit), got "
                 << bodies);
  HI_REQUIRE(spacing_m > 0.0, "crowd scenario: spacing must be positive");
  HI_REQUIRE(cols >= 0, "crowd scenario: cols must be non-negative");
  HI_REQUIRE(placement.empty() ||
                 placement.size() == static_cast<std::size_t>(bodies),
             "crowd scenario: placement list has "
                 << placement.size() << " entries for " << bodies
                 << " bodies");
  HI_REQUIRE(inter.d0_m > 0.0 && inter.exponent > 0.0 &&
                 inter.min_distance_m > 0.0,
             "crowd scenario: inter-body law parameters must be positive");
  HI_REQUIRE(inter.sigma_db >= 0.0 && inter.tau_s > 0.0,
             "crowd scenario: inter-body fade parameters out of range");
  HI_REQUIRE(cfg.topology.count() >= 2,
             "crowd scenario: per-body topology needs at least 2 nodes");
}

}  // namespace hi::model
