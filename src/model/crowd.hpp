// hi-opt: crowd scenario — M identical human intranets sharing a medium.
//
// A CrowdScenario fixes one per-body design point (ν, χ) and describes
// how M copies of it stand in a room: a 2-D grid placement (spacing ×
// columns) or an explicit per-body position list, plus the inter-body
// propagation parameters the crowd channel folds into every cross-body
// link.  hi::crowd turns this into a CrowdChannel + M node stacks; the
// JSON codec and fingerprints live in store/crowd_codec.hpp so crowd
// sweeps are durable and resumable like every other workload.
#pragma once

#include <cstdint>
#include <vector>

#include "model/config.hpp"

namespace hi::model {

/// Where one body stands on the floor plane (meters).
struct BodyPlacement {
  double x_m = 0.0;
  double y_m = 0.0;

  friend bool operator==(const BodyPlacement&, const BodyPlacement&) = default;
};

/// Inter-body propagation knobs (mirrors channel::InterBodyParams; kept
/// as plain doubles here so hi::model stays independent of the channel's
/// fade machinery).
struct InterBodyModel {
  double pl0_db = 55.0;
  double d0_m = 1.0;
  double exponent = 3.0;
  double shadow_db = 7.0;
  double sigma_db = 6.0;
  double tau_s = 1.0;
  double min_distance_m = 0.2;

  friend bool operator==(const InterBodyModel&, const InterBodyModel&) =
      default;
};

/// See file comment.
struct CrowdScenario {
  NetworkConfig cfg;   ///< the per-body design point (all bodies identical)
  int bodies = 1;      ///< M
  double spacing_m = 1.0;  ///< grid pitch
  int cols = 0;            ///< grid columns; 0 = square-ish (ceil sqrt M)
  /// Explicit placement override; when non-empty its size must equal
  /// `bodies` and the grid knobs are ignored.
  std::vector<BodyPlacement> placement;
  InterBodyModel inter;

  /// Effective per-body positions: the explicit list when given, else
  /// the row-major grid — body b at (col·spacing, row·spacing) with
  /// col = b % columns, row = b / columns.  Grid order is already
  /// canonical (sorted by (y, x)), which the crowd simulator relies on
  /// for its body-relabeling invariance (DESIGN.md §15).
  [[nodiscard]] std::vector<BodyPlacement> positions() const;

  /// Grid columns actually used (cols, or ceil(sqrt(bodies)) when 0).
  [[nodiscard]] int effective_cols() const;

  /// Throws (HI_REQUIRE) on an invalid scenario: bodies < 1 or > 64
  /// (the store's per-record row limit), non-positive spacing, or a
  /// placement list of the wrong size.
  void validate() const;

  friend bool operator==(const CrowdScenario&, const CrowdScenario&) = default;
};

}  // namespace hi::model
