#include "model/power.hpp"

#include "common/assert.hpp"
#include "common/units.hpp"

namespace hi::model {

double packet_duration_s(const RadioConfig& radio, const AppConfig& app) {
  HI_REQUIRE(radio.bit_rate_bps > 0.0, "bit rate must be positive");
  HI_REQUIRE(app.packet_bytes > 0, "packet length must be positive");
  return hi::packet_duration_s(app.packet_bytes, radio.bit_rate_bps);
}

double mesh_retx_bound(int n_nodes) {
  HI_REQUIRE(n_nodes >= 2, "need at least two nodes, got " << n_nodes);
  const double n = n_nodes;
  return n * n - 4.0 * n + 5.0;
}

double per_round_radio_mw(const RadioConfig& radio, int n_nodes) {
  HI_REQUIRE(n_nodes >= 2, "need at least two nodes, got " << n_nodes);
  return radio.tx_mw + (n_nodes - 1) * radio.rx_mw;
}

double radio_power_mw(const RadioConfig& radio, const AppConfig& app,
                      RoutingProtocol routing, int n_nodes) {
  const double tpkt = packet_duration_s(radio, app);
  const double duty = app.throughput_pps * tpkt;
  if (routing == RoutingProtocol::kStar) {
    return duty * (radio.tx_mw + 2.0 * (n_nodes - 1) * radio.rx_mw);
  }
  return duty * mesh_retx_bound(n_nodes) *
         (radio.tx_mw + (n_nodes - 1) * radio.rx_mw);
}

double node_power_mw(const NetworkConfig& cfg) {
  return cfg.app.baseline_mw +
         radio_power_mw(cfg.radio, cfg.app, cfg.routing.protocol,
                        cfg.topology.count());
}

double lifetime_s(double battery_j, double power_mw) {
  HI_REQUIRE(battery_j > 0.0, "battery energy must be positive");
  HI_REQUIRE(power_mw > 0.0, "power must be positive");
  return battery_j / mw_to_w(power_mw);
}

double analytic_nlt_s(const NetworkConfig& cfg) {
  return lifetime_s(cfg.battery_j, node_power_mw(cfg));
}

double power_lower_bound_mw(const NetworkConfig& cfg, double pdr_min,
                            double kappa) {
  HI_REQUIRE(pdr_min >= 0.0 && pdr_min <= 1.0,
             "pdr_min must be in [0,1], got " << pdr_min);
  HI_REQUIRE(kappa > 0.0 && kappa <= 1.0,
             "kappa must be in (0,1], got " << kappa);
  // Routing-free floor with undiscounted own transmissions (see header).
  const int n = cfg.topology.count();
  const double duty =
      cfg.app.throughput_pps * packet_duration_s(cfg.radio, cfg.app);
  return cfg.app.baseline_mw +
         duty * (cfg.radio.tx_mw +
                 kappa * pdr_min * 2.0 * (n - 1) * cfg.radio.rx_mw);
}

double measured_power_floor_mw(const NetworkConfig& cfg, double pdr_min,
                               double duration_s, double gen_guard_s) {
  HI_REQUIRE(pdr_min >= 0.0 && pdr_min <= 1.0,
             "pdr_min must be in [0,1], got " << pdr_min);
  HI_REQUIRE(duration_s > gen_guard_s,
             "duration " << duration_s << " s must exceed the guard "
                         << gen_guard_s << " s");
  const int n = cfg.topology.count();
  const double airtime = packet_duration_s(cfg.radio, cfg.app);
  const double window_s = duration_s - gen_guard_s;
  // Worst-phase periodic generation over the guarded window, then the
  // round-robin split across the N-1 peers (floor of the worst case).
  const double sent_node_min =
      std::max(0.0, window_s * cfg.app.throughput_pps - 1.0);
  const double sent_pair_min =
      std::floor(std::max(0.0, (sent_node_min - (n - 2)) / (n - 1)));
  if (sent_pair_min <= 0.0) {
    return cfg.app.baseline_mw;  // too short to force any traffic
  }
  // Every pair saw at least sent_pair_min originals, so a network PDR of
  // pdr_min forces this many distinct deliveries in total ...
  const double delivered_min = pdr_min * n * (n - 1) * sent_pair_min;
  // ... each costing its origin one transmission and its destination one
  // full-airtime decode.  Under star routing the coordinator's radio is
  // excluded from the lifetime metric: subtract the deliveries it could
  // have originated (<= its generation count) and those addressed to it
  // (<= (N-1) worst-phase pair maxima).
  const double sent_node_max = window_s * cfg.app.throughput_pps + 1.0;
  double tx_packets = delivered_min;
  double rx_packets = delivered_min;
  double metered_nodes = n;
  if (cfg.routing.protocol == RoutingProtocol::kStar) {
    metered_nodes = n - 1;
    tx_packets -= sent_node_max;
    rx_packets -= sent_node_max + (n - 2);
  }
  const double energy_mj =
      airtime * (std::max(0.0, tx_packets) * cfg.radio.tx_mw +
                 std::max(0.0, rx_packets) * cfg.radio.rx_mw);
  return cfg.app.baseline_mw + energy_mj / (metered_nodes * duration_s);
}

int robust_link_count(RoutingProtocol routing, int n_nodes) {
  HI_REQUIRE(n_nodes >= 2, "need at least two nodes, got " << n_nodes);
  return routing == RoutingProtocol::kStar ? n_nodes - 1
                                           : n_nodes * (n_nodes - 1) / 2;
}

double robust_link_deviation_mw(const RadioConfig& radio, const AppConfig& app,
                                int n_nodes) {
  return kRobustLossDeviation * app.throughput_pps *
         packet_duration_s(radio, app) * per_round_radio_mw(radio, n_nodes);
}

double robust_protection_mw(const RadioConfig& radio, const AppConfig& app,
                            RoutingProtocol routing, int n_nodes, int gamma) {
  if (gamma <= 0) {
    return 0.0;
  }
  const int budget = std::min(gamma, robust_link_count(routing, n_nodes));
  return budget * robust_link_deviation_mw(radio, app, n_nodes);
}

double robust_protection_mw(const NetworkConfig& cfg, int gamma) {
  return robust_protection_mw(cfg.radio, cfg.app, cfg.routing.protocol,
                              cfg.topology.count(), gamma);
}

double alpha_factor(const NetworkConfig& cfg, double pdr_min, double kappa) {
  const double p = node_power_mw(cfg);
  const double lb = power_lower_bound_mw(cfg, pdr_min, kappa);
  HI_ASSERT(lb > 0.0);
  HI_ASSERT_MSG(p >= lb, "analytic power " << p << " below lower bound "
                                           << lb);
  return p / lb;
}

}  // namespace hi::model
