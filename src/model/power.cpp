#include "model/power.hpp"

#include "common/assert.hpp"
#include "common/units.hpp"

namespace hi::model {

double packet_duration_s(const RadioConfig& radio, const AppConfig& app) {
  HI_REQUIRE(radio.bit_rate_bps > 0.0, "bit rate must be positive");
  HI_REQUIRE(app.packet_bytes > 0, "packet length must be positive");
  return hi::packet_duration_s(app.packet_bytes, radio.bit_rate_bps);
}

double mesh_retx_bound(int n_nodes) {
  HI_REQUIRE(n_nodes >= 2, "need at least two nodes, got " << n_nodes);
  const double n = n_nodes;
  return n * n - 4.0 * n + 5.0;
}

double per_round_radio_mw(const RadioConfig& radio, int n_nodes) {
  HI_REQUIRE(n_nodes >= 2, "need at least two nodes, got " << n_nodes);
  return radio.tx_mw + (n_nodes - 1) * radio.rx_mw;
}

double radio_power_mw(const RadioConfig& radio, const AppConfig& app,
                      RoutingProtocol routing, int n_nodes) {
  const double tpkt = packet_duration_s(radio, app);
  const double duty = app.throughput_pps * tpkt;
  if (routing == RoutingProtocol::kStar) {
    return duty * (radio.tx_mw + 2.0 * (n_nodes - 1) * radio.rx_mw);
  }
  return duty * mesh_retx_bound(n_nodes) *
         (radio.tx_mw + (n_nodes - 1) * radio.rx_mw);
}

double node_power_mw(const NetworkConfig& cfg) {
  return cfg.app.baseline_mw +
         radio_power_mw(cfg.radio, cfg.app, cfg.routing.protocol,
                        cfg.topology.count());
}

double lifetime_s(double battery_j, double power_mw) {
  HI_REQUIRE(battery_j > 0.0, "battery energy must be positive");
  HI_REQUIRE(power_mw > 0.0, "power must be positive");
  return battery_j / mw_to_w(power_mw);
}

double analytic_nlt_s(const NetworkConfig& cfg) {
  return lifetime_s(cfg.battery_j, node_power_mw(cfg));
}

double power_lower_bound_mw(const NetworkConfig& cfg, double pdr_min,
                            double kappa) {
  HI_REQUIRE(pdr_min >= 0.0 && pdr_min <= 1.0,
             "pdr_min must be in [0,1], got " << pdr_min);
  HI_REQUIRE(kappa > 0.0 && kappa <= 1.0,
             "kappa must be in (0,1], got " << kappa);
  // Routing-free floor with undiscounted own transmissions (see header).
  const int n = cfg.topology.count();
  const double duty =
      cfg.app.throughput_pps * packet_duration_s(cfg.radio, cfg.app);
  return cfg.app.baseline_mw +
         duty * (cfg.radio.tx_mw +
                 kappa * pdr_min * 2.0 * (n - 1) * cfg.radio.rx_mw);
}

double alpha_factor(const NetworkConfig& cfg, double pdr_min, double kappa) {
  const double p = node_power_mw(cfg);
  const double lb = power_lower_bound_mw(cfg, pdr_min, kappa);
  HI_ASSERT(lb > 0.0);
  HI_ASSERT_MSG(p >= lb, "analytic power " << p << " below lower bound "
                                           << lb);
  return p / lb;
}

}  // namespace hi::model
