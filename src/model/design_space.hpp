// hi-opt: the design-space description of the Sec. 4.1 experiment —
// topological constraints, configuration options, and exhaustive
// enumeration of the raw and feasible configuration sets.
#pragma once

#include <cstddef>
#include <vector>

#include "model/config.hpp"
#include "model/library.hpp"

namespace hi::model {

/// An "at least one node among these locations" requirement
/// (e.g. n1 + n2 >= 1 for gait analysis at the hip).
struct CoverageConstraint {
  std::vector<int> locations;
  const char* reason = "";
};

/// A placement dependency, the paper's Sec. 2.1 example of an additional
/// topological constraint: "location i be used if location j is used",
/// written n_j - n_i <= 0.
struct DependencyConstraint {
  int if_used = 0;    ///< j: the trigger location
  int then_used = 0;  ///< i: must also carry a node
  const char* reason = "";
};

/// The full scenario: component library plus application requirements.
/// Defaults reproduce the design example of Sec. 4.1.
struct Scenario {
  RadioChip chip = cc2650();
  AppConfig app{};                 ///< 100 B @ 10 pkt/s, Pbl = 100 µW
  double battery_j = 2430.0;       ///< CR2032: 225 mAh @ 3 V
  int coordinator = 0;             ///< chest node doubles as star hub
  int max_hops = 2;                ///< mesh flooding depth
  double tdma_slot_s = 1e-3;
  int mac_buffer_packets = 16;

  /// Locations that must carry a node (paper: chest).
  std::vector<int> required_locations{0};

  /// At-least-one-of groups (paper: hip, foot, wrist pairs).
  std::vector<CoverageConstraint> coverage{
      {{1, 2}, "gait analysis (hip)"},
      {{3, 4}, "gait analysis (foot)"},
      {{5, 6}, "vital signs (wrist)"},
  };

  /// Placement dependencies (none in the paper's base example).
  std::vector<DependencyConstraint> dependencies{};

  /// Node-count window: the four required roles plus up to two extra
  /// nodes for mesh connectivity.
  int min_nodes = 4;
  int max_nodes = 6;

  /// True when ν satisfies all topological constraints.
  [[nodiscard]] bool topology_feasible(const Topology& t) const;

  /// Builds the full design point for the given discrete choices.
  [[nodiscard]] NetworkConfig make_config(const Topology& t, int tx_level,
                                          MacProtocol mac,
                                          RoutingProtocol routing) const;

  /// All topologies satisfying topology_feasible().
  [[nodiscard]] std::vector<Topology> feasible_topologies() const;

  /// All design points satisfying the topological + configuration
  /// constraints (the exhaustive-search ground set).
  [[nodiscard]] std::vector<NetworkConfig> feasible_configs() const;

  /// Size of the raw design space before constraints:
  /// 2^M topologies x |Tx levels| x |MAC| x |routing|  (paper: 12,288).
  [[nodiscard]] std::size_t raw_design_space_size() const;
};

}  // namespace hi::model
