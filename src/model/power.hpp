// hi-opt: analytic (coarse) power and lifetime models, Eqs. (3)-(5), (9)
// of the paper.  These are the expressions the MILP optimizes; the
// discrete-event simulator provides the accurate counterparts.
#pragma once

#include "model/config.hpp"

namespace hi::model {

/// Packet air time Tpkt = 8 L / BR in seconds.
[[nodiscard]] double packet_duration_s(const RadioConfig& radio,
                                       const AppConfig& app);

/// Upper bound on per-packet transmissions in a 2-hop mesh flood:
/// NreTx = N^2 - 4N + 5 (paper, Sec. 4.1).
[[nodiscard]] double mesh_retx_bound(int n_nodes);

/// Per-round radio power, Eq. (3): Prd/tx = TxmW + (N-1) RxmW.
[[nodiscard]] double per_round_radio_mw(const RadioConfig& radio, int n_nodes);

/// Average radio power of a non-coordinator node, Eq. (5):
///   star:  φ Tpkt (TxmW + 2 (N-1) RxmW)
///   mesh:  φ Tpkt NreTx (TxmW + (N-1) RxmW)
[[nodiscard]] double radio_power_mw(const RadioConfig& radio,
                                    const AppConfig& app,
                                    RoutingProtocol routing, int n_nodes);

/// Total node power, Eq. (9): P̄ = Pbl + radio power.
[[nodiscard]] double node_power_mw(const NetworkConfig& cfg);

/// Network lifetime of a single node, Eq. (4) specialized to equal
/// batteries: NLT = Ebat / P̄, in seconds.
[[nodiscard]] double lifetime_s(double battery_j, double power_mw);

/// Analytic network lifetime of a configuration in seconds.
[[nodiscard]] double analytic_nlt_s(const NetworkConfig& cfg);

/// Safety factor of the packet-loss power discount (see
/// power_lower_bound_mw).  kappa = 1 is the paper's literal P̄lb reading
/// ("the minimum power a node must consume for the specified PDR
/// bound"); values below 1 make the bound — and therefore Algorithm 1's
/// α-termination — more conservative.  bench_ablation_alpha sweeps this.
inline constexpr double kLossDiscountKappa = 1.0;

/// Analytic lower bound P̄lb on the power a node must consume while the
/// network still meets `pdr_min` (Sec. 3, the α-termination):
///
///   P̄lb = Pbl + φ Tpkt (TxmW + kappa * pdr_min * 2 (N-1) RxmW).
///
/// Two deliberate choices make this safe for every routing scheme:
///
///  * the radio term is *routing-free* (the star expression, the
///    cheapest per-round transaction pattern): a mesh configuration's
///    relay traffic can collapse almost entirely — CSMA relay storms
///    collide, faded copies are never rebroadcast — so only the
///    own-traffic + reception floor common to every scheme is assumed;
///  * only the receptions are discounted by the delivery ratio; own
///    originals keep full duty, which is what the paper's α reading
///    implies but is NOT a guarantee the simulator honors — saturated
///    CSMA access can drop packets before they are ever transmitted, and
///    the fuzzer found cells whose measured power sits below this value.
///    Use it for the paper-faithful α factor; Algorithm 1's sound
///    termination compares against measured_power_floor_mw instead.
[[nodiscard]] double power_lower_bound_mw(const NetworkConfig& cfg,
                                          double pdr_min,
                                          double kappa = kLossDiscountKappa);

/// α(S, PDRmin) = P̄ / P̄lb >= 1 used by Algorithm 1's termination test.
[[nodiscard]] double alpha_factor(const NetworkConfig& cfg, double pdr_min,
                                  double kappa = kLossDiscountKappa);

/// Floor on the power the simulator can *measure* for any configuration
/// in the (radio, routing, N) cell of `cfg` that still meets `pdr_min`
/// — the bound Algorithm 1's kSoundFloor termination compares against
/// incumbent simulated powers.
///
/// Unlike power_lower_bound_mw (the paper's P̄lb, which assumes full
/// own-traffic duty and 2(N-1) receptions per packet), this is derived
/// from what a delivery *provably* costs in the simulator's energy
/// accounting:
///
///  * routing deduplicates, so every counted delivery is a distinct
///    unicast packet — its origin charged >= one full packet airtime of
///    TxmW (a packet dropped in a MAC queue is never delivered), and its
///    destination >= one full airtime of RxmW (the final-hop decode);
///  * a network PDR >= pdr_min forces >= pdr_min * N (N-1) * Smin
///    such deliveries, with Smin the worst-phase round-robin per-pair
///    generation count over the guarded window;
///  * the star coordinator's radio is excluded from the lifetime metric,
///    so deliveries it originates or terminates are discounted;
///  * the worst metered node consumes at least the metered-node mean.
///
/// The bound is convex in the delivery ratio, so it also holds for the
/// evaluator's multi-run averages.  Degenerates to Pbl (never triggers
/// early termination) when the window is too short to force traffic.
[[nodiscard]] double measured_power_floor_mw(const NetworkConfig& cfg,
                                             double pdr_min,
                                             double duration_s,
                                             double gen_guard_s);

/// Fractional per-link loss deviation of the Γ-robust uncertainty model
/// (DESIGN.md §13): an adversarially degraded link costs its endpoints
/// up to this fraction of one extra per-round radio transaction, Eq.
/// (3), per generated packet — one retransmission round every 1/0.25 =
/// 4 packets at the deviation's extreme.  The deviations of the
/// Bertsimas–Sim budget are all scaled by this constant.
inline constexpr double kRobustLossDeviation = 0.25;

/// Number of links the uncertainty set can degrade in an N-node
/// network: N-1 for a star (spokes), N(N-1)/2 for a mesh (all pairs).
[[nodiscard]] int robust_link_count(RoutingProtocol routing, int n_nodes);

/// Worst-case per-node power deviation of ONE degraded link (mW):
///   δ = kRobustLossDeviation · φ · Tpkt · (TxmW + (N-1) RxmW).
/// Identical for every link of a cell, which is what makes the
/// budgeted-uncertainty protection below a closed form.
[[nodiscard]] double robust_link_deviation_mw(const RadioConfig& radio,
                                              const AppConfig& app,
                                              int n_nodes);

/// Bertsimas–Sim protection term of a (radio, app, routing, N) cell
/// under a deviation budget of Γ links: the worst sum of Γ per-link
/// deviations, which — all links of a cell deviating identically — is
/// simply min(Γ, link count) · δ.  Zero (exactly, no FP residue) for
/// Γ <= 0, and monotone non-decreasing in Γ; the Γ-robust MILP adds it
/// to every cell cost and robust Algorithm 1 to every power floor.
[[nodiscard]] double robust_protection_mw(const RadioConfig& radio,
                                          const AppConfig& app,
                                          RoutingProtocol routing, int n_nodes,
                                          int gamma);

/// Convenience overload on a full configuration.
[[nodiscard]] double robust_protection_mw(const NetworkConfig& cfg, int gamma);

}  // namespace hi::model
