// hi-opt: network configuration types (Sec. 2.1 of the paper).
//
// A full design point is the pair (ν, χ): a Topology ν choosing which of
// the M = 10 body locations carry a node, and the layer configuration
// vectors χ = (χrd, χMAC, χrt, χapp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "channel/locations.hpp"

namespace hi::model {

/// MAC protocol choice (χMAC.PMAC).
enum class MacProtocol { kCsma, kTdma };

/// CSMA access mode (χMAC.AM).  The paper's design example uses the
/// non-persistent TunableMAC mode; persistent is provided for ablations.
enum class CsmaAccessMode { kNonPersistent, kPersistent };

/// Routing protocol choice (χrt.Prt): 0 = star, 1 = mesh flooding.
enum class RoutingProtocol { kStar, kMesh };

[[nodiscard]] const char* to_string(MacProtocol p);
[[nodiscard]] const char* to_string(RoutingProtocol p);
[[nodiscard]] const char* to_string(CsmaAccessMode m);

/// Radio configuration χrd = (fc, BR, TxdBm, TxmW, RxdBm, RxmW), Eq. (2).
struct RadioConfig {
  double fc_hz = 2.4e9;          ///< carrier frequency
  double bit_rate_bps = 1.024e6; ///< BR
  double tx_dbm = 0.0;           ///< transmitter output power
  double tx_mw = 18.3;           ///< transmitter power consumption
  double rx_dbm = -97.0;         ///< receiver sensitivity
  double rx_mw = 17.7;           ///< receiver power consumption

  friend bool operator==(const RadioConfig&, const RadioConfig&) = default;
};

/// MAC configuration χMAC = (PMAC, BMAC, AM, Tslot).
struct MacConfig {
  MacProtocol protocol = MacProtocol::kCsma;
  int buffer_packets = 16;       ///< BMAC
  CsmaAccessMode access_mode = CsmaAccessMode::kNonPersistent;
  double slot_s = 1e-3;          ///< Tslot (TDMA)

  friend bool operator==(const MacConfig&, const MacConfig&) = default;
};

/// Routing configuration χrt = (Prt, ncoor, Nhops).
struct RoutingConfig {
  RoutingProtocol protocol = RoutingProtocol::kStar;
  int coordinator = 0;           ///< ncoor (star only; a location id)
  int max_hops = 2;              ///< Nhops (mesh only)

  friend bool operator==(const RoutingConfig&, const RoutingConfig&) = default;
};

/// Application configuration χapp = (Pbl, Lpkt, φ).
struct AppConfig {
  double baseline_mw = 0.1;      ///< Pbl = 100 µW
  int packet_bytes = 100;        ///< Lpkt
  double throughput_pps = 10.0;  ///< φ (packets per second per node)

  friend bool operator==(const AppConfig&, const AppConfig&) = default;
};

/// Topology ν = (n0, ..., n9): which locations carry a node.
class Topology {
 public:
  Topology() = default;

  /// Builds from an explicit location list (duplicates rejected).
  static Topology from_locations(const std::vector<int>& locs);

  /// Builds from a bitmask (bit i set <=> location i used).
  static Topology from_mask(std::uint16_t mask);

  /// Adds / removes a location.
  void set(int loc, bool present);

  /// True when location loc carries a node.
  [[nodiscard]] bool has(int loc) const;

  /// Number of nodes N.
  [[nodiscard]] int count() const;

  /// Sorted list of used locations.
  [[nodiscard]] std::vector<int> locations() const;

  /// Bitmask form.
  [[nodiscard]] std::uint16_t mask() const { return mask_; }

  /// Compact rendering, e.g. "[0,1,3,6]".
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Topology&, const Topology&) = default;

 private:
  std::uint16_t mask_ = 0;
};

/// A full design point (ν, χ) plus the per-node battery energy.
struct NetworkConfig {
  Topology topology;
  RadioConfig radio;
  int tx_level_index = 0;  ///< index into the radio chip's Tx levels
  MacConfig mac;
  RoutingConfig routing;
  AppConfig app;
  double battery_j = 2430.0;  ///< Ebat of a non-coordinator node (CR2032)

  /// Paper-style label, e.g. "[0,1,3,6], Star, CSMA, -10dBm".
  [[nodiscard]] std::string label() const;

  /// Stable identity of the full design point (for caches/dedup): a hash
  /// of the topology mask and tx level plus every parameter that changes
  /// simulation behaviour (radio powers, MAC protocol/buffer/slot,
  /// routing scheme/coordinator/hop limit, application profile).  Two
  /// configs from different scenarios therefore never collide silently.
  [[nodiscard]] std::uint64_t design_key() const;

  /// Exact design-point equality — the ground truth design_key()
  /// approximates; the evaluator cache uses it to reject key collisions.
  friend bool operator==(const NetworkConfig&, const NetworkConfig&) = default;
};

}  // namespace hi::model
