#include "model/design_space.hpp"

#include "common/assert.hpp"

namespace hi::model {

bool Scenario::topology_feasible(const Topology& t) const {
  const int n = t.count();
  if (n < min_nodes || n > max_nodes) {
    return false;
  }
  for (int loc : required_locations) {
    if (!t.has(loc)) {
      return false;
    }
  }
  for (const CoverageConstraint& c : coverage) {
    bool ok = false;
    for (int loc : c.locations) {
      if (t.has(loc)) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      return false;
    }
  }
  for (const DependencyConstraint& d : dependencies) {
    if (t.has(d.if_used) && !t.has(d.then_used)) {
      return false;
    }
  }
  return true;
}

NetworkConfig Scenario::make_config(const Topology& t, int tx_level,
                                    MacProtocol mac,
                                    RoutingProtocol routing) const {
  HI_REQUIRE(8.0 * app.packet_bytes / chip.bit_rate_bps <= tdma_slot_s,
             "a " << app.packet_bytes << "-byte packet takes "
                  << 8.0 * app.packet_bytes / chip.bit_rate_bps
                  << " s on the air but the TDMA slot is only "
                  << tdma_slot_s << " s; enlarge Scenario::tdma_slot_s");
  NetworkConfig cfg;
  cfg.topology = t;
  cfg.radio = chip.configure(tx_level);
  cfg.tx_level_index = tx_level;
  cfg.mac.protocol = mac;
  cfg.mac.buffer_packets = mac_buffer_packets;
  cfg.mac.slot_s = tdma_slot_s;
  cfg.routing.protocol = routing;
  cfg.routing.coordinator = coordinator;
  cfg.routing.max_hops = max_hops;
  cfg.app = app;
  cfg.battery_j = battery_j;
  return cfg;
}

std::vector<Topology> Scenario::feasible_topologies() const {
  std::vector<Topology> out;
  const std::uint16_t limit = 1u << channel::kNumLocations;
  for (std::uint32_t mask = 0; mask < limit; ++mask) {
    const Topology t = Topology::from_mask(static_cast<std::uint16_t>(mask));
    if (topology_feasible(t)) {
      out.push_back(t);
    }
  }
  return out;
}

std::vector<NetworkConfig> Scenario::feasible_configs() const {
  std::vector<NetworkConfig> out;
  for (const Topology& t : feasible_topologies()) {
    for (int lvl = 0; lvl < chip.num_tx_levels(); ++lvl) {
      for (MacProtocol mac : {MacProtocol::kCsma, MacProtocol::kTdma}) {
        for (RoutingProtocol rt :
             {RoutingProtocol::kStar, RoutingProtocol::kMesh}) {
          out.push_back(make_config(t, lvl, mac, rt));
        }
      }
    }
  }
  return out;
}

std::size_t Scenario::raw_design_space_size() const {
  return (std::size_t{1} << channel::kNumLocations) *
         static_cast<std::size_t>(chip.num_tx_levels()) * 2 /*MAC*/ *
         2 /*routing*/;
}

}  // namespace hi::model
