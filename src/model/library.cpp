#include "model/library.hpp"

#include "common/assert.hpp"

namespace hi::model {

RadioConfig RadioChip::configure(int index) const {
  HI_REQUIRE(index >= 0 && index < num_tx_levels(),
             "radio '" << name << "': bad Tx level index " << index);
  RadioConfig cfg;
  cfg.fc_hz = fc_hz;
  cfg.bit_rate_bps = bit_rate_bps;
  cfg.rx_dbm = rx_dbm;
  cfg.rx_mw = rx_mw;
  cfg.tx_dbm = tx_levels[static_cast<std::size_t>(index)].dbm;
  cfg.tx_mw = tx_levels[static_cast<std::size_t>(index)].mw;
  return cfg;
}

const RadioChip& cc2650() {
  static const RadioChip chip{
      "TI CC2650",
      2.4e9,
      1.024e6,
      -97.0,
      17.7,
      {{-20.0, 9.55}, {-10.0, 11.56}, {0.0, 18.3}},
  };
  return chip;
}

}  // namespace hi::model
