#include "model/config.hpp"

#include <bit>
#include <sstream>

#include "common/assert.hpp"
#include "common/table.hpp"

namespace hi::model {

const char* to_string(MacProtocol p) {
  return p == MacProtocol::kCsma ? "CSMA" : "TDMA";
}

const char* to_string(RoutingProtocol p) {
  return p == RoutingProtocol::kStar ? "Star" : "Mesh";
}

const char* to_string(CsmaAccessMode m) {
  return m == CsmaAccessMode::kNonPersistent ? "non-persistent" : "persistent";
}

Topology Topology::from_locations(const std::vector<int>& locs) {
  Topology t;
  for (int loc : locs) {
    HI_REQUIRE(!t.has(loc), "duplicate location " << loc);
    t.set(loc, true);
  }
  return t;
}

Topology Topology::from_mask(std::uint16_t mask) {
  HI_REQUIRE(mask < (1u << channel::kNumLocations),
             "mask " << mask << " has bits beyond location "
                     << channel::kNumLocations - 1);
  Topology t;
  t.mask_ = mask;
  return t;
}

void Topology::set(int loc, bool present) {
  HI_REQUIRE(loc >= 0 && loc < channel::kNumLocations,
             "bad location " << loc);
  if (present) {
    mask_ = static_cast<std::uint16_t>(mask_ | (1u << loc));
  } else {
    mask_ = static_cast<std::uint16_t>(mask_ & ~(1u << loc));
  }
}

bool Topology::has(int loc) const {
  HI_REQUIRE(loc >= 0 && loc < channel::kNumLocations,
             "bad location " << loc);
  return (mask_ >> loc) & 1u;
}

int Topology::count() const { return std::popcount(mask_); }

std::vector<int> Topology::locations() const {
  std::vector<int> out;
  for (int i = 0; i < channel::kNumLocations; ++i) {
    if (has(i)) {
      out.push_back(i);
    }
  }
  return out;
}

std::string Topology::to_string() const {
  std::ostringstream oss;
  oss << '[';
  bool first = true;
  for (int loc : locations()) {
    if (!first) oss << ',';
    first = false;
    oss << loc;
  }
  oss << ']';
  return oss.str();
}

std::string NetworkConfig::label() const {
  std::ostringstream oss;
  oss << topology.to_string() << ", " << model::to_string(routing.protocol)
      << ", " << model::to_string(mac.protocol) << ", "
      << fmt_double(radio.tx_dbm, 0) << "dBm";
  return oss.str();
}

namespace {

/// FNV-1a accumulation helpers for the design key.
void mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v;
  h *= 0x100000001B3ULL;
}

void mix_double(std::uint64_t& h, double v) {
  mix(h, std::bit_cast<std::uint64_t>(v));
}

}  // namespace

std::uint64_t NetworkConfig::design_key() const {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  mix(h, topology.mask());
  mix(h, static_cast<std::uint64_t>(tx_level_index));
  mix_double(h, radio.fc_hz);
  mix_double(h, radio.bit_rate_bps);
  mix_double(h, radio.tx_dbm);
  mix_double(h, radio.tx_mw);
  mix_double(h, radio.rx_dbm);
  mix_double(h, radio.rx_mw);
  mix(h, mac.protocol == MacProtocol::kTdma);
  mix(h, static_cast<std::uint64_t>(mac.buffer_packets));
  mix(h, mac.access_mode == CsmaAccessMode::kPersistent);
  mix_double(h, mac.slot_s);
  mix(h, routing.protocol == RoutingProtocol::kMesh);
  mix(h, static_cast<std::uint64_t>(routing.coordinator));
  mix(h, static_cast<std::uint64_t>(routing.max_hops));
  mix_double(h, app.baseline_mw);
  mix(h, static_cast<std::uint64_t>(app.packet_bytes));
  mix_double(h, app.throughput_pps);
  mix_double(h, battery_j);
  return h;
}

}  // namespace hi::model
