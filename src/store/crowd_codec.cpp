#include "store/crowd_codec.hpp"

#include <utility>

#include "store/json.hpp"

namespace hi::store {

Digest crowd_fingerprint(const model::CrowdScenario& sc) {
  ByteWriter w;
  w.put_string("hi.crowd.v1");
  write_config(w, sc.cfg);
  w.put_i32(sc.bodies);
  // Canonical over the effective positions: grid and equivalent explicit
  // placements hash identically, and relabeling-invariance (the crowd
  // simulator sorts bodies canonically) means position *order* is the
  // only thing left to pin — positions() already fixes it.
  for (const model::BodyPlacement& p : sc.positions()) {
    w.put_f64(p.x_m);
    w.put_f64(p.y_m);
  }
  w.put_f64(sc.inter.pl0_db);
  w.put_f64(sc.inter.d0_m);
  w.put_f64(sc.inter.exponent);
  w.put_f64(sc.inter.shadow_db);
  w.put_f64(sc.inter.sigma_db);
  w.put_f64(sc.inter.tau_s);
  w.put_f64(sc.inter.min_distance_m);
  return sha256(w.bytes());
}

Digest crowd_point_fingerprint(const model::CrowdScenario& sc,
                               const net::SimParams& sim, int runs) {
  ByteWriter w;
  w.put_string("hi.crowd.point.v1");
  w.put_digest(crowd_fingerprint(sc));
  w.put_f64(sim.duration_s);
  w.put_f64(sim.gen_guard_s);
  w.put_u64(sim.seed);
  w.put_u64(sim.channel_seed);
  w.put_f64(sim.capture_db);
  w.put_f64(sim.csma.turnaround_s);
  w.put_f64(sim.csma.backoff_max_s);
  w.put_f64(sim.csma.persistent_poll_s);
  w.put_i32(runs);
  return sha256(w.bytes());
}

// --- JSON ---------------------------------------------------------------

namespace {

using detail::JsonParser;
using detail::JsonValue;
using detail::ObjectReader;
using detail::fmt_double;

}  // namespace

std::string crowd_scenario_to_json(const model::CrowdScenario& sc) {
  const model::NetworkConfig& c = sc.cfg;
  std::string out;
  out += "{\n  \"format\": \"hi-crowd-scenario-v1\",\n";
  out += "  \"config\": {\n";
  out += "    \"topology_mask\": " + std::to_string(c.topology.mask()) + ",\n";
  out += "    \"fc_hz\": " + fmt_double(c.radio.fc_hz);
  out += ",\n    \"bit_rate_bps\": " + fmt_double(c.radio.bit_rate_bps);
  out += ",\n    \"tx_dbm\": " + fmt_double(c.radio.tx_dbm);
  out += ",\n    \"tx_mw\": " + fmt_double(c.radio.tx_mw);
  out += ",\n    \"rx_dbm\": " + fmt_double(c.radio.rx_dbm);
  out += ",\n    \"rx_mw\": " + fmt_double(c.radio.rx_mw);
  out += ",\n    \"tx_level_index\": " + std::to_string(c.tx_level_index);
  out += ",\n    \"mac\": \"";
  out += c.mac.protocol == model::MacProtocol::kTdma ? "tdma" : "csma";
  out += "\",\n    \"mac_buffer_packets\": " +
         std::to_string(c.mac.buffer_packets);
  out += ",\n    \"csma_persistent\": ";
  out += c.mac.access_mode == model::CsmaAccessMode::kPersistent ? "true"
                                                                 : "false";
  out += ",\n    \"tdma_slot_s\": " + fmt_double(c.mac.slot_s);
  out += ",\n    \"routing\": \"";
  out += c.routing.protocol == model::RoutingProtocol::kMesh ? "mesh" : "star";
  out += "\",\n    \"coordinator\": " + std::to_string(c.routing.coordinator);
  out += ",\n    \"max_hops\": " + std::to_string(c.routing.max_hops);
  out += ",\n    \"baseline_mw\": " + fmt_double(c.app.baseline_mw);
  out += ",\n    \"packet_bytes\": " + std::to_string(c.app.packet_bytes);
  out += ",\n    \"throughput_pps\": " + fmt_double(c.app.throughput_pps);
  out += ",\n    \"battery_j\": " + fmt_double(c.battery_j);
  out += "\n  },\n";
  out += "  \"bodies\": " + std::to_string(sc.bodies) + ",\n";
  out += "  \"spacing_m\": " + fmt_double(sc.spacing_m) + ",\n";
  out += "  \"cols\": " + std::to_string(sc.cols) + ",\n";
  out += "  \"placement\": [";
  for (std::size_t i = 0; i < sc.placement.size(); ++i) {
    if (i > 0) out += ", ";
    out += "{\"x_m\": " + fmt_double(sc.placement[i].x_m) +
           ", \"y_m\": " + fmt_double(sc.placement[i].y_m) + "}";
  }
  out += "],\n";
  out += "  \"inter\": {\"pl0_db\": " + fmt_double(sc.inter.pl0_db) +
         ", \"d0_m\": " + fmt_double(sc.inter.d0_m) +
         ", \"exponent\": " + fmt_double(sc.inter.exponent) +
         ", \"shadow_db\": " + fmt_double(sc.inter.shadow_db) +
         ", \"sigma_db\": " + fmt_double(sc.inter.sigma_db) +
         ", \"tau_s\": " + fmt_double(sc.inter.tau_s) +
         ", \"min_distance_m\": " + fmt_double(sc.inter.min_distance_m) +
         "}\n}\n";
  return out;
}

std::optional<model::CrowdScenario> crowd_scenario_from_json(
    std::string_view json, std::string* error) {
  std::optional<JsonValue> root = JsonParser(json).parse(error);
  if (!root) return std::nullopt;
  ObjectReader b(error);
  if (root->kind != JsonValue::Kind::kObject) {
    b.fail("top-level JSON value must be an object");
    return std::nullopt;
  }
  b.check_keys(*root, {"format", "config", "bodies", "spacing_m", "cols",
                       "placement", "inter"});
  if (b.str(*root, "format") != "hi-crowd-scenario-v1" && !b.failed()) {
    b.fail("unsupported format (want \"hi-crowd-scenario-v1\")");
  }

  model::CrowdScenario sc;
  if (const JsonValue* cfg = b.require(*root, "config"); cfg != nullptr) {
    b.check_keys(*cfg,
                 {"topology_mask", "fc_hz", "bit_rate_bps", "tx_dbm", "tx_mw",
                  "rx_dbm", "rx_mw", "tx_level_index", "mac",
                  "mac_buffer_packets", "csma_persistent", "tdma_slot_s",
                  "routing", "coordinator", "max_hops", "baseline_mw",
                  "packet_bytes", "throughput_pps", "battery_j"});
    model::NetworkConfig& c = sc.cfg;
    const int mask = b.integer(*cfg, "topology_mask");
    if (!b.failed() && (mask < 0 || mask > 0xFFFF)) {
      b.fail("topology_mask out of range");
    }
    c.topology =
        model::Topology::from_mask(static_cast<std::uint16_t>(mask));
    c.radio.fc_hz = b.num(*cfg, "fc_hz");
    c.radio.bit_rate_bps = b.num(*cfg, "bit_rate_bps");
    c.radio.tx_dbm = b.num(*cfg, "tx_dbm");
    c.radio.tx_mw = b.num(*cfg, "tx_mw");
    c.radio.rx_dbm = b.num(*cfg, "rx_dbm");
    c.radio.rx_mw = b.num(*cfg, "rx_mw");
    c.tx_level_index = b.integer(*cfg, "tx_level_index");
    const std::string mac = b.str(*cfg, "mac");
    if (!b.failed() && mac != "csma" && mac != "tdma") {
      b.fail("field 'mac' must be \"csma\" or \"tdma\"");
    }
    c.mac.protocol =
        mac == "tdma" ? model::MacProtocol::kTdma : model::MacProtocol::kCsma;
    c.mac.buffer_packets = b.integer(*cfg, "mac_buffer_packets");
    if (const JsonValue* p = b.require(*cfg, "csma_persistent");
        p != nullptr) {
      if (p->kind != JsonValue::Kind::kBool) {
        b.fail("field 'csma_persistent' must be a boolean");
      } else {
        c.mac.access_mode = p->boolean
                                ? model::CsmaAccessMode::kPersistent
                                : model::CsmaAccessMode::kNonPersistent;
      }
    }
    c.mac.slot_s = b.num(*cfg, "tdma_slot_s");
    const std::string routing = b.str(*cfg, "routing");
    if (!b.failed() && routing != "star" && routing != "mesh") {
      b.fail("field 'routing' must be \"star\" or \"mesh\"");
    }
    c.routing.protocol = routing == "mesh" ? model::RoutingProtocol::kMesh
                                           : model::RoutingProtocol::kStar;
    c.routing.coordinator = b.integer(*cfg, "coordinator");
    c.routing.max_hops = b.integer(*cfg, "max_hops");
    c.app.baseline_mw = b.num(*cfg, "baseline_mw");
    c.app.packet_bytes = b.integer(*cfg, "packet_bytes");
    c.app.throughput_pps = b.num(*cfg, "throughput_pps");
    c.battery_j = b.num(*cfg, "battery_j");
  }
  sc.bodies = b.integer(*root, "bodies");
  sc.spacing_m = b.num(*root, "spacing_m");
  sc.cols = b.integer(*root, "cols");
  if (const JsonValue* pl = b.require(*root, "placement"); pl != nullptr) {
    if (pl->kind != JsonValue::Kind::kArray) {
      b.fail("field 'placement' must be an array");
    } else {
      for (const JsonValue& p : pl->items) {
        b.check_keys(p, {"x_m", "y_m"});
        model::BodyPlacement bp;
        bp.x_m = b.num(p, "x_m");
        bp.y_m = b.num(p, "y_m");
        sc.placement.push_back(bp);
      }
    }
  }
  if (const JsonValue* in = b.require(*root, "inter"); in != nullptr) {
    b.check_keys(*in, {"pl0_db", "d0_m", "exponent", "shadow_db", "sigma_db",
                       "tau_s", "min_distance_m"});
    sc.inter.pl0_db = b.num(*in, "pl0_db");
    sc.inter.d0_m = b.num(*in, "d0_m");
    sc.inter.exponent = b.num(*in, "exponent");
    sc.inter.shadow_db = b.num(*in, "shadow_db");
    sc.inter.sigma_db = b.num(*in, "sigma_db");
    sc.inter.tau_s = b.num(*in, "tau_s");
    sc.inter.min_distance_m = b.num(*in, "min_distance_m");
  }
  if (b.failed()) return std::nullopt;
  return sc;
}

}  // namespace hi::store
