// hi-opt: the store's in-house JSON kit, shared by every codec that
// emits or parses an hi-*/v1 interchange document (scenarios, crowd
// scenarios, CLI reports).
//
// Deliberately small: objects, arrays, strings, numbers,
// true/false/null — exactly what the writers emit.  Doubles are printed
// shortest-round-trip (std::to_chars) and parsed with strtod, so a
// serialize → parse → serialize cycle is a fixed point and fingerprints
// computed over parsed values survive the trip.  Lives in
// hi::store::detail: tools may use it, but it is not a supported public
// parsing API.
#pragma once

#include <algorithm>
#include <array>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hi::store::detail {

/// Shortest exact decimal rendering of a double (std::to_chars), so the
/// JSON form round-trips bit for bit through strtod.
inline std::string fmt_double(double v) {
  std::array<char, 40> buf{};
  const auto [end, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  if (ec != std::errc{}) return "0";
  return std::string(buf.data(), end);
}

inline void put_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char esc[8];
          std::snprintf(esc, sizeof esc, "\\u%04x", c);
          out += esc;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

/// Parsed JSON tree node; see the file comment for the supported grammar.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> fields;

  [[nodiscard]] const JsonValue* find(std::string_view key) const {
    for (const auto& [k, v] : fields) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view s) : s_(s) {}

  std::optional<JsonValue> parse(std::string* error) {
    std::optional<JsonValue> v = value();
    skip_ws();
    if (v && pos_ != s_.size()) {
      fail("trailing characters after JSON value");
      v.reset();
    }
    if (!v && error != nullptr) *error = error_;
    return v;
  }

 private:
  void fail(std::string_view msg) {
    if (error_.empty()) {
      error_ = std::string(msg) + " at offset " + std::to_string(pos_);
    }
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::optional<JsonValue> value() {
    skip_ws();
    if (pos_ >= s_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    const char c = s_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_value();
    if (c == 't' || c == 'f' || c == 'n') return keyword();
    return number();
  }

  std::optional<JsonValue> object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    if (consume('}')) return v;
    while (true) {
      skip_ws();
      std::optional<std::string> key = raw_string();
      if (!key) return std::nullopt;
      if (!consume(':')) {
        fail("expected ':' after object key");
        return std::nullopt;
      }
      std::optional<JsonValue> item = value();
      if (!item) return std::nullopt;
      v.fields.emplace_back(std::move(*key), std::move(*item));
      if (consume(',')) continue;
      if (consume('}')) return v;
      fail("expected ',' or '}' in object");
      return std::nullopt;
    }
  }

  std::optional<JsonValue> array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    if (consume(']')) return v;
    while (true) {
      std::optional<JsonValue> item = value();
      if (!item) return std::nullopt;
      v.items.push_back(std::move(*item));
      if (consume(',')) continue;
      if (consume(']')) return v;
      fail("expected ',' or ']' in array");
      return std::nullopt;
    }
  }

  std::optional<std::string> raw_string() {
    if (pos_ >= s_.size() || s_[pos_] != '"') {
      fail("expected string");
      return std::nullopt;
    }
    ++pos_;
    std::string out;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= s_.size()) break;
        const char e = s_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            if (s_.size() - pos_ < 4) {
              fail("truncated \\u escape");
              return std::nullopt;
            }
            unsigned code = 0;
            const auto res = std::from_chars(
                s_.data() + pos_, s_.data() + pos_ + 4, code, 16);
            if (res.ec != std::errc{} || res.ptr != s_.data() + pos_ + 4) {
              fail("bad \\u escape");
              return std::nullopt;
            }
            pos_ += 4;
            if (code > 0x7F) {
              fail("non-ASCII \\u escape unsupported");
              return std::nullopt;
            }
            out.push_back(static_cast<char>(code));
            break;
          }
          default:
            fail("unknown escape");
            return std::nullopt;
        }
      } else {
        out.push_back(c);
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<JsonValue> string_value() {
    std::optional<std::string> s = raw_string();
    if (!s) return std::nullopt;
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    v.text = std::move(*s);
    return v;
  }

  std::optional<JsonValue> keyword() {
    JsonValue v;
    if (s_.substr(pos_, 4) == "true") {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      pos_ += 4;
    } else if (s_.substr(pos_, 5) == "false") {
      v.kind = JsonValue::Kind::kBool;
      pos_ += 5;
    } else if (s_.substr(pos_, 4) == "null") {
      pos_ += 4;
    } else {
      fail("unknown keyword");
      return std::nullopt;
    }
    return v;
  }

  std::optional<JsonValue> number() {
    // Copy a bounded window: the string_view need not be
    // null-terminated, which strtod requires.  strtod accepts exactly
    // the JSON number grammar plus a few extensions (hex, inf, nan)
    // that the writers never emit.
    const std::string window(
        s_.substr(pos_, std::min<std::size_t>(64, s_.size() - pos_)));
    char* end = nullptr;
    const double d = std::strtod(window.c_str(), &end);
    if (end == window.c_str()) {
      fail("expected a number");
      return std::nullopt;
    }
    pos_ += static_cast<std::size_t>(end - window.c_str());
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = d;
    return v;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
  std::string error_;
};

/// Typed accessors over a parsed tree; the first mismatch latches an
/// error message and every later access short-circuits.
class ObjectReader {
 public:
  explicit ObjectReader(std::string* error) : error_(error) {}

  [[nodiscard]] bool failed() const { return failed_; }

  void fail(std::string msg) {
    if (!failed_ && error_ != nullptr) *error_ = std::move(msg);
    failed_ = true;
  }

  double num(const JsonValue& obj, std::string_view key) {
    const JsonValue* v = require(obj, key);
    if (v == nullptr) return 0.0;
    if (v->kind != JsonValue::Kind::kNumber) {
      fail("field '" + std::string(key) + "' must be a number");
      return 0.0;
    }
    return v->number;
  }

  int integer(const JsonValue& obj, std::string_view key) {
    const double d = num(obj, key);
    if (failed_) return 0;
    if (d != std::floor(d) || std::abs(d) > 1e9) {
      fail("field '" + std::string(key) + "' must be an integer");
      return 0;
    }
    return static_cast<int>(d);
  }

  std::string str(const JsonValue& obj, std::string_view key) {
    const JsonValue* v = require(obj, key);
    if (v == nullptr) return {};
    if (v->kind != JsonValue::Kind::kString) {
      fail("field '" + std::string(key) + "' must be a string");
      return {};
    }
    return v->text;
  }

  const JsonValue* require(const JsonValue& obj, std::string_view key) {
    if (failed_) return nullptr;
    const JsonValue* v = obj.find(key);
    if (v == nullptr) {
      fail("missing field '" + std::string(key) + "'");
    }
    return v;
  }

  std::vector<int> int_array(const JsonValue& obj, std::string_view key) {
    std::vector<int> out;
    const JsonValue* v = require(obj, key);
    if (v == nullptr) return out;
    if (v->kind != JsonValue::Kind::kArray) {
      fail("field '" + std::string(key) + "' must be an array");
      return out;
    }
    for (const JsonValue& item : v->items) {
      if (item.kind != JsonValue::Kind::kNumber ||
          item.number != std::floor(item.number)) {
        fail("field '" + std::string(key) + "' must hold integers");
        return out;
      }
      out.push_back(static_cast<int>(item.number));
    }
    return out;
  }

  /// Rejects keys outside `allowed` so a typo'd field fails loudly
  /// instead of silently keeping the default.
  void check_keys(const JsonValue& obj,
                  std::initializer_list<std::string_view> allowed) {
    if (failed_) return;
    for (const auto& [k, v] : obj.fields) {
      bool known = false;
      for (std::string_view a : allowed) {
        known = known || a == k;
      }
      if (!known) {
        fail("unknown field '" + k + "'");
        return;
      }
    }
  }

 private:
  std::string* error_;
  bool failed_ = false;
};

}  // namespace hi::store::detail
